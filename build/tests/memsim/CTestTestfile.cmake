# CMake generated Testfile for 
# Source directory: /root/repo/tests/memsim
# Build directory: /root/repo/build/tests/memsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/memsim/test_storage[1]_include.cmake")
include("/root/repo/build/tests/memsim/test_fault_injection[1]_include.cmake")
