# CMake generated Testfile for 
# Source directory: /root/repo/tests/device
# Build directory: /root/repo/build/tests/device
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/device/test_processor[1]_include.cmake")
include("/root/repo/build/tests/device/test_parallel_exec[1]_include.cmake")
