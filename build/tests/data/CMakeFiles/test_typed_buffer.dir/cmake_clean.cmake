file(REMOVE_RECURSE
  "CMakeFiles/test_typed_buffer.dir/test_typed_buffer.cpp.o"
  "CMakeFiles/test_typed_buffer.dir/test_typed_buffer.cpp.o.d"
  "test_typed_buffer"
  "test_typed_buffer.pdb"
  "test_typed_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_typed_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
