# Empty compiler generated dependencies file for test_typed_buffer.
# This may be replaced when dependencies are built.
