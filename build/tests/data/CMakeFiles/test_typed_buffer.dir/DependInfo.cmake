
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data/test_typed_buffer.cpp" "tests/data/CMakeFiles/test_typed_buffer.dir/test_typed_buffer.cpp.o" "gcc" "tests/data/CMakeFiles/test_typed_buffer.dir/test_typed_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algos/CMakeFiles/northup_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/northup_core.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/northup_device.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/northup_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/northup_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/northup_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/northup_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/northup_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/northup_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/northup_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
