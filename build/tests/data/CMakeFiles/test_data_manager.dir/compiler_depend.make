# Empty compiler generated dependencies file for test_data_manager.
# This may be replaced when dependencies are built.
