# CMake generated Testfile for 
# Source directory: /root/repo/tests/data
# Build directory: /root/repo/build/tests/data
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/data/test_data_manager[1]_include.cmake")
include("/root/repo/build/tests/data/test_layout[1]_include.cmake")
include("/root/repo/build/tests/data/test_typed_buffer[1]_include.cmake")
