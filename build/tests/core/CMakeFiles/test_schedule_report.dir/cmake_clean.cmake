file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_report.dir/test_schedule_report.cpp.o"
  "CMakeFiles/test_schedule_report.dir/test_schedule_report.cpp.o.d"
  "test_schedule_report"
  "test_schedule_report.pdb"
  "test_schedule_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
