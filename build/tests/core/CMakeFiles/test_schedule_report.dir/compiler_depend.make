# Empty compiler generated dependencies file for test_schedule_report.
# This may be replaced when dependencies are built.
