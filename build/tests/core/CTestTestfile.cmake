# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/core/test_balancer[1]_include.cmake")
include("/root/repo/build/tests/core/test_grid[1]_include.cmake")
include("/root/repo/build/tests/core/test_schedule_report[1]_include.cmake")
