# Empty dependencies file for test_hotspot_temporal.
# This may be replaced when dependencies are built.
