file(REMOVE_RECURSE
  "CMakeFiles/test_hotspot_temporal.dir/test_hotspot_temporal.cpp.o"
  "CMakeFiles/test_hotspot_temporal.dir/test_hotspot_temporal.cpp.o.d"
  "test_hotspot_temporal"
  "test_hotspot_temporal.pdb"
  "test_hotspot_temporal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hotspot_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
