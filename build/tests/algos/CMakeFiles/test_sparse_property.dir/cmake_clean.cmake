file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_property.dir/test_sparse_property.cpp.o"
  "CMakeFiles/test_sparse_property.dir/test_sparse_property.cpp.o.d"
  "test_sparse_property"
  "test_sparse_property.pdb"
  "test_sparse_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
