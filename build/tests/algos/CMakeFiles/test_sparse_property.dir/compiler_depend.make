# Empty compiler generated dependencies file for test_sparse_property.
# This may be replaced when dependencies are built.
