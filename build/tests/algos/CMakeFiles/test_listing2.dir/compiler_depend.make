# Empty compiler generated dependencies file for test_listing2.
# This may be replaced when dependencies are built.
