file(REMOVE_RECURSE
  "CMakeFiles/test_listing2.dir/test_listing2.cpp.o"
  "CMakeFiles/test_listing2.dir/test_listing2.cpp.o.d"
  "test_listing2"
  "test_listing2.pdb"
  "test_listing2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_listing2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
