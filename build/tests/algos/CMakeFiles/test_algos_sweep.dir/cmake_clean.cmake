file(REMOVE_RECURSE
  "CMakeFiles/test_algos_sweep.dir/test_algos_sweep.cpp.o"
  "CMakeFiles/test_algos_sweep.dir/test_algos_sweep.cpp.o.d"
  "test_algos_sweep"
  "test_algos_sweep.pdb"
  "test_algos_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algos_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
