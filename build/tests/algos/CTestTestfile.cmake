# CMake generated Testfile for 
# Source directory: /root/repo/tests/algos
# Build directory: /root/repo/build/tests/algos
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/algos/test_gemm[1]_include.cmake")
include("/root/repo/build/tests/algos/test_hotspot[1]_include.cmake")
include("/root/repo/build/tests/algos/test_spmv[1]_include.cmake")
include("/root/repo/build/tests/algos/test_sparse_property[1]_include.cmake")
include("/root/repo/build/tests/algos/test_algos_sweep[1]_include.cmake")
include("/root/repo/build/tests/algos/test_listing2[1]_include.cmake")
include("/root/repo/build/tests/algos/test_hotspot_temporal[1]_include.cmake")
