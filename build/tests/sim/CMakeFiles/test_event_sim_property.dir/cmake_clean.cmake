file(REMOVE_RECURSE
  "CMakeFiles/test_event_sim_property.dir/test_event_sim_property.cpp.o"
  "CMakeFiles/test_event_sim_property.dir/test_event_sim_property.cpp.o.d"
  "test_event_sim_property"
  "test_event_sim_property.pdb"
  "test_event_sim_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_sim_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
