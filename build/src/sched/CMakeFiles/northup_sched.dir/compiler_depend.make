# Empty compiler generated dependencies file for northup_sched.
# This may be replaced when dependencies are built.
