file(REMOVE_RECURSE
  "CMakeFiles/northup_sched.dir/pool.cpp.o"
  "CMakeFiles/northup_sched.dir/pool.cpp.o.d"
  "CMakeFiles/northup_sched.dir/steal_sim.cpp.o"
  "CMakeFiles/northup_sched.dir/steal_sim.cpp.o.d"
  "CMakeFiles/northup_sched.dir/work_queue.cpp.o"
  "CMakeFiles/northup_sched.dir/work_queue.cpp.o.d"
  "libnorthup_sched.a"
  "libnorthup_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/northup_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
