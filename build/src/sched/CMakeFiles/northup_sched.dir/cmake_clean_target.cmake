file(REMOVE_RECURSE
  "libnorthup_sched.a"
)
