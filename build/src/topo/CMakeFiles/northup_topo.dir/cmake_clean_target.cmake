file(REMOVE_RECURSE
  "libnorthup_topo.a"
)
