# Empty dependencies file for northup_topo.
# This may be replaced when dependencies are built.
