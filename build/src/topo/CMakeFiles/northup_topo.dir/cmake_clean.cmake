file(REMOVE_RECURSE
  "CMakeFiles/northup_topo.dir/config.cpp.o"
  "CMakeFiles/northup_topo.dir/config.cpp.o.d"
  "CMakeFiles/northup_topo.dir/presets.cpp.o"
  "CMakeFiles/northup_topo.dir/presets.cpp.o.d"
  "CMakeFiles/northup_topo.dir/tree.cpp.o"
  "CMakeFiles/northup_topo.dir/tree.cpp.o.d"
  "libnorthup_topo.a"
  "libnorthup_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/northup_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
