file(REMOVE_RECURSE
  "CMakeFiles/northup_algos.dir/common.cpp.o"
  "CMakeFiles/northup_algos.dir/common.cpp.o.d"
  "CMakeFiles/northup_algos.dir/csr_adaptive.cpp.o"
  "CMakeFiles/northup_algos.dir/csr_adaptive.cpp.o.d"
  "CMakeFiles/northup_algos.dir/dense.cpp.o"
  "CMakeFiles/northup_algos.dir/dense.cpp.o.d"
  "CMakeFiles/northup_algos.dir/gemm.cpp.o"
  "CMakeFiles/northup_algos.dir/gemm.cpp.o.d"
  "CMakeFiles/northup_algos.dir/hotspot.cpp.o"
  "CMakeFiles/northup_algos.dir/hotspot.cpp.o.d"
  "CMakeFiles/northup_algos.dir/hotspot_temporal.cpp.o"
  "CMakeFiles/northup_algos.dir/hotspot_temporal.cpp.o.d"
  "CMakeFiles/northup_algos.dir/listing2.cpp.o"
  "CMakeFiles/northup_algos.dir/listing2.cpp.o.d"
  "CMakeFiles/northup_algos.dir/sparse.cpp.o"
  "CMakeFiles/northup_algos.dir/sparse.cpp.o.d"
  "libnorthup_algos.a"
  "libnorthup_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/northup_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
