
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/common.cpp" "src/algos/CMakeFiles/northup_algos.dir/common.cpp.o" "gcc" "src/algos/CMakeFiles/northup_algos.dir/common.cpp.o.d"
  "/root/repo/src/algos/csr_adaptive.cpp" "src/algos/CMakeFiles/northup_algos.dir/csr_adaptive.cpp.o" "gcc" "src/algos/CMakeFiles/northup_algos.dir/csr_adaptive.cpp.o.d"
  "/root/repo/src/algos/dense.cpp" "src/algos/CMakeFiles/northup_algos.dir/dense.cpp.o" "gcc" "src/algos/CMakeFiles/northup_algos.dir/dense.cpp.o.d"
  "/root/repo/src/algos/gemm.cpp" "src/algos/CMakeFiles/northup_algos.dir/gemm.cpp.o" "gcc" "src/algos/CMakeFiles/northup_algos.dir/gemm.cpp.o.d"
  "/root/repo/src/algos/hotspot.cpp" "src/algos/CMakeFiles/northup_algos.dir/hotspot.cpp.o" "gcc" "src/algos/CMakeFiles/northup_algos.dir/hotspot.cpp.o.d"
  "/root/repo/src/algos/hotspot_temporal.cpp" "src/algos/CMakeFiles/northup_algos.dir/hotspot_temporal.cpp.o" "gcc" "src/algos/CMakeFiles/northup_algos.dir/hotspot_temporal.cpp.o.d"
  "/root/repo/src/algos/listing2.cpp" "src/algos/CMakeFiles/northup_algos.dir/listing2.cpp.o" "gcc" "src/algos/CMakeFiles/northup_algos.dir/listing2.cpp.o.d"
  "/root/repo/src/algos/sparse.cpp" "src/algos/CMakeFiles/northup_algos.dir/sparse.cpp.o" "gcc" "src/algos/CMakeFiles/northup_algos.dir/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/northup_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/northup_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/northup_data.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/northup_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/northup_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/northup_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/northup_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/northup_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/northup_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
