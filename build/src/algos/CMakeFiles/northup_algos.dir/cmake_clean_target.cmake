file(REMOVE_RECURSE
  "libnorthup_algos.a"
)
