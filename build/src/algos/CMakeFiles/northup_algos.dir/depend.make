# Empty dependencies file for northup_algos.
# This may be replaced when dependencies are built.
