file(REMOVE_RECURSE
  "CMakeFiles/northup_data.dir/data_manager.cpp.o"
  "CMakeFiles/northup_data.dir/data_manager.cpp.o.d"
  "CMakeFiles/northup_data.dir/layout.cpp.o"
  "CMakeFiles/northup_data.dir/layout.cpp.o.d"
  "CMakeFiles/northup_data.dir/view.cpp.o"
  "CMakeFiles/northup_data.dir/view.cpp.o.d"
  "libnorthup_data.a"
  "libnorthup_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/northup_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
