file(REMOVE_RECURSE
  "libnorthup_data.a"
)
