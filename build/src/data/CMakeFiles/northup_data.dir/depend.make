# Empty dependencies file for northup_data.
# This may be replaced when dependencies are built.
