# Empty dependencies file for northup_util.
# This may be replaced when dependencies are built.
