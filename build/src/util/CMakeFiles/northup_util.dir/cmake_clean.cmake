file(REMOVE_RECURSE
  "CMakeFiles/northup_util.dir/bytes.cpp.o"
  "CMakeFiles/northup_util.dir/bytes.cpp.o.d"
  "CMakeFiles/northup_util.dir/flags.cpp.o"
  "CMakeFiles/northup_util.dir/flags.cpp.o.d"
  "CMakeFiles/northup_util.dir/log.cpp.o"
  "CMakeFiles/northup_util.dir/log.cpp.o.d"
  "CMakeFiles/northup_util.dir/stats.cpp.o"
  "CMakeFiles/northup_util.dir/stats.cpp.o.d"
  "CMakeFiles/northup_util.dir/table.cpp.o"
  "CMakeFiles/northup_util.dir/table.cpp.o.d"
  "libnorthup_util.a"
  "libnorthup_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/northup_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
