file(REMOVE_RECURSE
  "libnorthup_util.a"
)
