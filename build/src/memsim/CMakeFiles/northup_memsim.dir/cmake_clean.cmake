file(REMOVE_RECURSE
  "CMakeFiles/northup_memsim.dir/fault_injection.cpp.o"
  "CMakeFiles/northup_memsim.dir/fault_injection.cpp.o.d"
  "CMakeFiles/northup_memsim.dir/projection.cpp.o"
  "CMakeFiles/northup_memsim.dir/projection.cpp.o.d"
  "CMakeFiles/northup_memsim.dir/storage.cpp.o"
  "CMakeFiles/northup_memsim.dir/storage.cpp.o.d"
  "libnorthup_memsim.a"
  "libnorthup_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/northup_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
