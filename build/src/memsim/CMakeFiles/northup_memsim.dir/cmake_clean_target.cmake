file(REMOVE_RECURSE
  "libnorthup_memsim.a"
)
