
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/fault_injection.cpp" "src/memsim/CMakeFiles/northup_memsim.dir/fault_injection.cpp.o" "gcc" "src/memsim/CMakeFiles/northup_memsim.dir/fault_injection.cpp.o.d"
  "/root/repo/src/memsim/projection.cpp" "src/memsim/CMakeFiles/northup_memsim.dir/projection.cpp.o" "gcc" "src/memsim/CMakeFiles/northup_memsim.dir/projection.cpp.o.d"
  "/root/repo/src/memsim/storage.cpp" "src/memsim/CMakeFiles/northup_memsim.dir/storage.cpp.o" "gcc" "src/memsim/CMakeFiles/northup_memsim.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/northup_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/northup_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/northup_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
