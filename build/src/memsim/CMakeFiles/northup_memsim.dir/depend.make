# Empty dependencies file for northup_memsim.
# This may be replaced when dependencies are built.
