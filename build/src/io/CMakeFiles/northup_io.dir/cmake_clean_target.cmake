file(REMOVE_RECURSE
  "libnorthup_io.a"
)
