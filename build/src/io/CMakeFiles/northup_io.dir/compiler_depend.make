# Empty compiler generated dependencies file for northup_io.
# This may be replaced when dependencies are built.
