file(REMOVE_RECURSE
  "CMakeFiles/northup_io.dir/chunked_store.cpp.o"
  "CMakeFiles/northup_io.dir/chunked_store.cpp.o.d"
  "CMakeFiles/northup_io.dir/posix_file.cpp.o"
  "CMakeFiles/northup_io.dir/posix_file.cpp.o.d"
  "libnorthup_io.a"
  "libnorthup_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/northup_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
