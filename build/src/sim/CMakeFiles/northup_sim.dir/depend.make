# Empty dependencies file for northup_sim.
# This may be replaced when dependencies are built.
