file(REMOVE_RECURSE
  "CMakeFiles/northup_sim.dir/event_sim.cpp.o"
  "CMakeFiles/northup_sim.dir/event_sim.cpp.o.d"
  "libnorthup_sim.a"
  "libnorthup_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/northup_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
