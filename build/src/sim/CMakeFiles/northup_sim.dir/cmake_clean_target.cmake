file(REMOVE_RECURSE
  "libnorthup_sim.a"
)
