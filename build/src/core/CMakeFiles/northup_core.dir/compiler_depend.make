# Empty compiler generated dependencies file for northup_core.
# This may be replaced when dependencies are built.
