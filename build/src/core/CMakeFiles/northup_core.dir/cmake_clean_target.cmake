file(REMOVE_RECURSE
  "libnorthup_core.a"
)
