file(REMOVE_RECURSE
  "CMakeFiles/northup_core.dir/adaptive.cpp.o"
  "CMakeFiles/northup_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/northup_core.dir/balancer.cpp.o"
  "CMakeFiles/northup_core.dir/balancer.cpp.o.d"
  "CMakeFiles/northup_core.dir/chunking.cpp.o"
  "CMakeFiles/northup_core.dir/chunking.cpp.o.d"
  "CMakeFiles/northup_core.dir/grid.cpp.o"
  "CMakeFiles/northup_core.dir/grid.cpp.o.d"
  "CMakeFiles/northup_core.dir/profiler.cpp.o"
  "CMakeFiles/northup_core.dir/profiler.cpp.o.d"
  "CMakeFiles/northup_core.dir/runtime.cpp.o"
  "CMakeFiles/northup_core.dir/runtime.cpp.o.d"
  "CMakeFiles/northup_core.dir/schedule_report.cpp.o"
  "CMakeFiles/northup_core.dir/schedule_report.cpp.o.d"
  "libnorthup_core.a"
  "libnorthup_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/northup_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
