file(REMOVE_RECURSE
  "libnorthup_device.a"
)
