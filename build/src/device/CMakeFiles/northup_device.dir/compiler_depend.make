# Empty compiler generated dependencies file for northup_device.
# This may be replaced when dependencies are built.
