file(REMOVE_RECURSE
  "CMakeFiles/northup_device.dir/processor.cpp.o"
  "CMakeFiles/northup_device.dir/processor.cpp.o.d"
  "CMakeFiles/northup_device.dir/stream.cpp.o"
  "CMakeFiles/northup_device.dir/stream.cpp.o.d"
  "libnorthup_device.a"
  "libnorthup_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/northup_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
