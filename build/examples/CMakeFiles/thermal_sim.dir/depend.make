# Empty dependencies file for thermal_sim.
# This may be replaced when dependencies are built.
