file(REMOVE_RECURSE
  "CMakeFiles/outofcore_gemm.dir/outofcore_gemm.cpp.o"
  "CMakeFiles/outofcore_gemm.dir/outofcore_gemm.cpp.o.d"
  "outofcore_gemm"
  "outofcore_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outofcore_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
