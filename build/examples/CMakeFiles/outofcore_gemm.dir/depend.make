# Empty dependencies file for outofcore_gemm.
# This may be replaced when dependencies are built.
