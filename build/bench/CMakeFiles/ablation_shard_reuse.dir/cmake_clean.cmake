file(REMOVE_RECURSE
  "CMakeFiles/ablation_shard_reuse.dir/ablation_shard_reuse.cpp.o"
  "CMakeFiles/ablation_shard_reuse.dir/ablation_shard_reuse.cpp.o.d"
  "ablation_shard_reuse"
  "ablation_shard_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shard_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
