file(REMOVE_RECURSE
  "CMakeFiles/overhead_runtime.dir/overhead_runtime.cpp.o"
  "CMakeFiles/overhead_runtime.dir/overhead_runtime.cpp.o.d"
  "overhead_runtime"
  "overhead_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
