# Empty compiler generated dependencies file for overhead_runtime.
# This may be replaced when dependencies are built.
