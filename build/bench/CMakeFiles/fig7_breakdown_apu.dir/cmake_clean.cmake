file(REMOVE_RECURSE
  "CMakeFiles/fig7_breakdown_apu.dir/fig7_breakdown_apu.cpp.o"
  "CMakeFiles/fig7_breakdown_apu.dir/fig7_breakdown_apu.cpp.o.d"
  "fig7_breakdown_apu"
  "fig7_breakdown_apu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_breakdown_apu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
