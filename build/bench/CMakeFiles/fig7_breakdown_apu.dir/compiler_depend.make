# Empty compiler generated dependencies file for fig7_breakdown_apu.
# This may be replaced when dependencies are built.
