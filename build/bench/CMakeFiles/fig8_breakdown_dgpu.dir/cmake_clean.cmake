file(REMOVE_RECURSE
  "CMakeFiles/fig8_breakdown_dgpu.dir/fig8_breakdown_dgpu.cpp.o"
  "CMakeFiles/fig8_breakdown_dgpu.dir/fig8_breakdown_dgpu.cpp.o.d"
  "fig8_breakdown_dgpu"
  "fig8_breakdown_dgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_breakdown_dgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
