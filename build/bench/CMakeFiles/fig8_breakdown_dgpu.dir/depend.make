# Empty dependencies file for fig8_breakdown_dgpu.
# This may be replaced when dependencies are built.
