file(REMOVE_RECURSE
  "CMakeFiles/fig9_faster_storage.dir/fig9_faster_storage.cpp.o"
  "CMakeFiles/fig9_faster_storage.dir/fig9_faster_storage.cpp.o.d"
  "fig9_faster_storage"
  "fig9_faster_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_faster_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
