# Empty dependencies file for fig9_faster_storage.
# This may be replaced when dependencies are built.
