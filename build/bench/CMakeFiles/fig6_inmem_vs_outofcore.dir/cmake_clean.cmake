file(REMOVE_RECURSE
  "CMakeFiles/fig6_inmem_vs_outofcore.dir/fig6_inmem_vs_outofcore.cpp.o"
  "CMakeFiles/fig6_inmem_vs_outofcore.dir/fig6_inmem_vs_outofcore.cpp.o.d"
  "fig6_inmem_vs_outofcore"
  "fig6_inmem_vs_outofcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_inmem_vs_outofcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
