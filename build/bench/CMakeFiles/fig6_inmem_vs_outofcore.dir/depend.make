# Empty dependencies file for fig6_inmem_vs_outofcore.
# This may be replaced when dependencies are built.
