# Empty dependencies file for bench_deep_hierarchy.
# This may be replaced when dependencies are built.
