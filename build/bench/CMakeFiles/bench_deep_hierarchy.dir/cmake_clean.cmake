file(REMOVE_RECURSE
  "CMakeFiles/bench_deep_hierarchy.dir/bench_deep_hierarchy.cpp.o"
  "CMakeFiles/bench_deep_hierarchy.dir/bench_deep_hierarchy.cpp.o.d"
  "bench_deep_hierarchy"
  "bench_deep_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deep_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
