file(REMOVE_RECURSE
  "CMakeFiles/ablation_balancer.dir/ablation_balancer.cpp.o"
  "CMakeFiles/ablation_balancer.dir/ablation_balancer.cpp.o.d"
  "ablation_balancer"
  "ablation_balancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
