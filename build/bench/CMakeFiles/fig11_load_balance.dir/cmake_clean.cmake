file(REMOVE_RECURSE
  "CMakeFiles/fig11_load_balance.dir/fig11_load_balance.cpp.o"
  "CMakeFiles/fig11_load_balance.dir/fig11_load_balance.cpp.o.d"
  "fig11_load_balance"
  "fig11_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
