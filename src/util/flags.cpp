#include "northup/util/flags.hpp"

#include <cstdlib>

#include "northup/util/assert.hpp"
#include "northup/util/bytes.hpp"

namespace northup::util {

Flags::Flags(int argc, const char* const* argv) {
  NU_CHECK(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    NU_CHECK(!body.empty() && body[0] != '=',
             "malformed flag '" + arg + "'");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";  // bare boolean
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Flags::get(const std::string& name,
                       const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const auto v = std::strtoll(it->second.c_str(), &end, 10);
  NU_CHECK(end != nullptr && *end == '\0' && !it->second.empty(),
           "flag --" + name + " expects an integer, got '" + it->second +
               "'");
  return v;
}

double Flags::get_double(const std::string& name,
                         double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  NU_CHECK(end != nullptr && *end == '\0' && !it->second.empty(),
           "flag --" + name + " expects a number, got '" + it->second + "'");
  return v;
}

bool Flags::get_bool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  NU_CHECK(false, "flag --" + name + " expects a boolean, got '" + v + "'");
}

std::uint64_t Flags::get_bytes(const std::string& name,
                               std::uint64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return parse_bytes(it->second);
}

}  // namespace northup::util
