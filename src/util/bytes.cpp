#include "northup/util/bytes.hpp"

#include <array>
#include <cctype>
#include <cstdio>

#include "northup/util/assert.hpp"

namespace northup::util {

std::uint64_t parse_bytes(std::string_view text) {
  NU_CHECK(!text.empty(), "empty byte-size string");
  std::size_t pos = 0;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) ||
          text[pos] == '.')) {
    ++pos;
  }
  NU_CHECK(pos > 0, "byte-size string must start with a number: '" +
                        std::string(text) + "'");
  const double value = std::stod(std::string(text.substr(0, pos)));
  NU_CHECK(value >= 0.0, "byte size must be non-negative");

  std::string suffix;
  for (std::size_t i = pos; i < text.size(); ++i) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    suffix += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  // Accept "K", "KB", "KIB" uniformly as binary multipliers.
  if (!suffix.empty() && suffix.back() == 'B') suffix.pop_back();
  if (!suffix.empty() && suffix.back() == 'I') suffix.pop_back();

  double multiplier = 1.0;
  if (suffix.empty()) {
    multiplier = 1.0;
  } else if (suffix == "K") {
    multiplier = 1024.0;
  } else if (suffix == "M") {
    multiplier = 1024.0 * 1024.0;
  } else if (suffix == "G") {
    multiplier = 1024.0 * 1024.0 * 1024.0;
  } else if (suffix == "T") {
    multiplier = 1024.0 * 1024.0 * 1024.0 * 1024.0;
  } else {
    NU_CHECK(false, "unknown byte-size suffix: '" + std::string(text) + "'");
  }
  return static_cast<std::uint64_t>(value * multiplier);
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < kUnits.size()) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  }
  return buf;
}

std::string format_bandwidth(double bytes_per_second) {
  char buf[64];
  if (bytes_per_second >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB/s", bytes_per_second / 1e9);
  } else if (bytes_per_second >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1f MB/s", bytes_per_second / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B/s", bytes_per_second);
  }
  return buf;
}

}  // namespace northup::util
