#include "northup/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "northup/util/assert.hpp"

namespace northup::util {

void TextTable::set_header(std::vector<std::string> header) {
  NU_CHECK(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  NU_CHECK(row.size() == header_.size(),
           "row arity does not match header arity");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace northup::util
