#include "northup/util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "northup/util/assert.hpp"

namespace northup::util::json {

namespace {

const Value kNull{};

class Parser {
 public:
  Parser(const std::string& text, const std::string& origin)
      : text_(text), origin_(origin) {}

  Value parse() {
    Value v = value();
    ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw util::Error("malformed JSON from " + origin_ + ": " + why +
                      " at byte " + std::to_string(pos_));
  }

  void ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value value() {
    ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.string = string();
        return v;
      }
      case 't':
        literal("true");
        return make_bool(true);
      case 'f':
        literal("false");
        return make_bool(false);
      case 'n':
        literal("null");
        return Value{};
      default: return number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind = Value::Kind::Bool;
    v.boolean = b;
    return v;
  }

  void literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) fail("bad literal");
    pos_ += len;
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    Value v;
    v.kind = Value::Kind::Number;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto res = std::from_chars(first, last, v.number);
    if (res.ec != std::errc() || res.ptr != last) fail("bad number");
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are beyond
          // what any caller emits; keep them as replacement-free bytes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      ws();
      std::string key = string();
      ws();
      expect(':');
      v.object[std::move(key)] = value();
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& text_;
  const std::string& origin_;
  std::size_t pos_ = 0;
};

}  // namespace

double Value::num(const std::string& key, double fallback) const {
  auto it = object.find(key);
  return kind == Kind::Object && it != object.end() &&
                 it->second.kind == Kind::Number
             ? it->second.number
             : fallback;
}

std::uint64_t Value::u64(const std::string& key, std::uint64_t fallback) const {
  const double d = num(key, -1.0);
  if (d < 0.0) return fallback;
  return static_cast<std::uint64_t>(d);
}

bool Value::boolean_or(const std::string& key, bool fallback) const {
  auto it = object.find(key);
  return kind == Kind::Object && it != object.end() &&
                 it->second.kind == Kind::Bool
             ? it->second.boolean
             : fallback;
}

std::string Value::str(const std::string& key,
                       const std::string& fallback) const {
  auto it = object.find(key);
  return kind == Kind::Object && it != object.end() &&
                 it->second.kind == Kind::String
             ? it->second.string
             : fallback;
}

const Value& Value::at(const std::string& key) const {
  auto it = object.find(key);
  return kind == Kind::Object && it != object.end() ? it->second : kNull;
}

Value parse(const std::string& text, const std::string& origin) {
  Parser parser(text, origin);
  return parser.parse();
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

}  // namespace northup::util::json
