#include "northup/util/crc32.hpp"

#include <array>

namespace northup::util {

namespace {

/// Four 256-entry tables: table[0] is the classic byte-at-a-time CRC32
/// table, table[k] pre-folds k additional zero bytes so four input bytes
/// fold in one step.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t;

  Tables() {
    constexpr std::uint32_t kPoly = 0xEDB88320u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int b = 0; b < 8; ++b) c = (c >> 1) ^ ((c & 1u) ? kPoly : 0u);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (std::size_t k = 1; k < 4; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& t = tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  while (size >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  return ~crc;
}

}  // namespace northup::util
