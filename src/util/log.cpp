#include "northup/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace northup::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_write_mutex;
}  // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

const char* Log::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

void Log::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[northup %-5s] %s\n", level_name(level),
               message.c_str());
}

}  // namespace northup::util
