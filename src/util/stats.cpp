#include "northup/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "northup/util/assert.hpp"

namespace northup::util {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  NU_CHECK(!values.empty(), "percentile of empty sample");
  NU_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double geomean(const std::vector<double>& values) {
  NU_CHECK(!values.empty(), "geomean of empty sample");
  double log_sum = 0.0;
  for (double v : values) {
    NU_CHECK(v > 0.0, "geomean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace northup::util
