#include "northup/sim/event_sim.hpp"

#include <algorithm>

namespace northup::sim {

ResourceId EventSim::add_resource(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  resource_names_.push_back(std::move(name));
  resource_available_.push_back(0.0);
  resource_last_task_.push_back(kInvalidTask);
  return static_cast<ResourceId>(resource_names_.size() - 1);
}

TaskId EventSim::add_task(TaskSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  NU_CHECK(spec.resource < resource_names_.size(),
           "task references unknown resource");
  NU_CHECK(spec.duration >= 0.0, "task duration must be non-negative");
  const auto id = static_cast<TaskId>(tasks_.size());

  double start = resource_available_[spec.resource];
  TaskId determiner = resource_last_task_[spec.resource];
  for (TaskId dep : spec.deps) {
    NU_CHECK(dep < id, "dependency must reference an earlier task");
    if (timings_[dep].finish > start) {
      start = timings_[dep].finish;
      determiner = dep;
    }
  }

  const double finish = start + spec.duration;
  resource_available_[spec.resource] = finish;
  resource_last_task_[spec.resource] = id;
  makespan_ = std::max(makespan_, finish);

  tasks_.push_back(std::move(spec));
  timings_.push_back({start, finish});
  start_determiner_.push_back(determiner);
  return id;
}

TaskId EventSim::add_task(std::string label, std::string phase,
                          ResourceId resource, double duration,
                          std::vector<TaskId> deps) {
  return add_task(TaskSpec{std::move(label), std::move(phase), resource,
                           duration, std::move(deps)});
}

const TaskSpec& EventSim::task(TaskId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  NU_CHECK(id < tasks_.size(), "unknown task id");
  return tasks_[id];
}

TaskTiming EventSim::timing(TaskId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  NU_CHECK(id < timings_.size(), "unknown task id");
  return timings_[id];
}

const std::string& EventSim::resource_name(ResourceId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  NU_CHECK(id < resource_names_.size(), "unknown resource id");
  return resource_names_[id];
}

double EventSim::resource_busy(ResourceId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  NU_CHECK(id < resource_names_.size(), "unknown resource id");
  double busy = 0.0;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].resource == id) busy += tasks_[i].duration;
  }
  return busy;
}

std::map<std::string, double> EventSim::phase_totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> totals;
  for (const auto& t : tasks_) totals[t.phase] += t.duration;
  return totals;
}

std::vector<TaskId> EventSim::critical_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (tasks_.empty()) return {};
  // Start from the latest-finishing task and walk start-determiners back.
  TaskId cur = 0;
  for (TaskId i = 1; i < tasks_.size(); ++i) {
    if (timings_[i].finish > timings_[cur].finish) cur = i;
  }
  std::vector<TaskId> path;
  while (cur != kInvalidTask) {
    path.push_back(cur);
    // Skip predecessors that merely precede us with slack: the determiner
    // chain already points at whichever predecessor set our start time.
    cur = start_determiner_[cur];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void EventSim::reset_tasks() {
  std::lock_guard<std::mutex> lock(mu_);
  tasks_.clear();
  timings_.clear();
  start_determiner_.clear();
  makespan_ = 0.0;
  std::fill(resource_available_.begin(), resource_available_.end(), 0.0);
  std::fill(resource_last_task_.begin(), resource_last_task_.end(),
            kInvalidTask);
}

}  // namespace northup::sim
