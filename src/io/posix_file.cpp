#include "northup/io/posix_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "northup/util/assert.hpp"
#include "northup/util/log.hpp"

namespace northup::io {

namespace {
/// The errno is captured on the IoError so the resilience layer can
/// classify the failure structurally (transient vs permanent) instead of
/// parsing the message.
[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  const int err = errno;
  throw util::IoError(
      what + " failed for '" + path + "': " + std::strerror(err), err);
}
}  // namespace

PosixFile::PosixFile(const std::string& path, OpenOptions options)
    : path_(path) {
  int flags = O_RDWR;
  if (options.create) flags |= O_CREAT;
  if (options.truncate) flags |= O_TRUNC;
#ifdef O_DIRECT
  if (options.direct) flags |= O_DIRECT | O_SYNC;
#endif
  fd_ = ::open(path.c_str(), flags, 0644);
#ifdef O_DIRECT
  if (options.direct) {
    if (fd_ >= 0) {
      direct_ = true;
    } else {
      // tmpfs and some filesystems reject O_DIRECT; fall back to buffered
      // I/O so the functional path still works (timing comes from the
      // model).
      flags &= ~(O_DIRECT | O_SYNC);
      fd_ = ::open(path.c_str(), flags, 0644);
    }
  }
#endif
  if (fd_ < 0) throw_errno("open", path);
}

void PosixFile::reopen_buffered() {
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_RDWR, 0644);
  direct_ = false;
  if (fd_ < 0) throw_errno("reopen", path_);
}

PosixFile::PosixFile(PosixFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)),
      direct_(std::exchange(other.direct_, false)) {}

PosixFile& PosixFile::operator=(PosixFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    direct_ = std::exchange(other.direct_, false);
  }
  return *this;
}

PosixFile::~PosixFile() { close(); }

void PosixFile::close() {
  if (fd_ >= 0) {
    // A failing close can mean lost writeback (NFS, some flash devices).
    // This runs from destructors so it must not throw, but it must not
    // go unnoticed either.
    if (::close(fd_) != 0) {
      NU_LOG_WARN << "close failed for '" << path_
                  << "': " << std::strerror(errno);
    }
    fd_ = -1;
  }
}

void PosixFile::pread_exact(void* dst, std::size_t size,
                            std::uint64_t offset) const {
  NU_CHECK(is_open(), "pread on closed file");
  auto* out = static_cast<char*>(dst);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pread(fd_, out + done, size - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EINVAL && direct_) {
        // Unaligned access under O_DIRECT: degrade to buffered I/O.
        const_cast<PosixFile*>(this)->reopen_buffered();
        continue;
      }
      throw_errno("pread", path_);
    }
    if (n == 0) {
      // Reading past EOF means the file is shorter than the allocation
      // claims — a structural problem retrying will not fix.
      throw util::IoError("pread hit EOF at offset " +
                              std::to_string(offset + done) + " in '" + path_ +
                              "'",
                          /*errno_value=*/0, /*transient=*/false);
    }
    done += static_cast<std::size_t>(n);
  }
}

void PosixFile::pwrite_exact(const void* src, std::size_t size,
                             std::uint64_t offset) {
  NU_CHECK(is_open(), "pwrite on closed file");
  const auto* in = static_cast<const char*>(src);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pwrite(fd_, in + done, size - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EINVAL && direct_) {
        // Unaligned access under O_DIRECT: degrade to buffered I/O.
        reopen_buffered();
        continue;
      }
      throw_errno("pwrite", path_);
    }
    done += static_cast<std::size_t>(n);
  }
}

void PosixFile::truncate(std::uint64_t size) {
  NU_CHECK(is_open(), "truncate on closed file");
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    throw_errno("ftruncate", path_);
  }
}

std::uint64_t PosixFile::size() const {
  NU_CHECK(is_open(), "size on closed file");
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) throw_errno("lseek", path_);
  return static_cast<std::uint64_t>(end);
}

void PosixFile::fsync_file() {
  NU_CHECK(is_open(), "fsync on closed file");
  if (::fsync(fd_) != 0) throw_errno("fsync", path_);
}

TempDir::TempDir(const std::string& tag) {
  static std::atomic<std::uint64_t> counter{0};
  const char* base_env = std::getenv("TMPDIR");
  const std::filesystem::path base = base_env ? base_env : "/tmp";
  const auto unique =
      tag + "-" + std::to_string(::getpid()) + "-" +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  const auto dir = base / unique;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw util::IoError("failed to create temp dir '" + dir.string() +
                            "': " + ec.message(),
                        ec.value());
  }
  path_ = dir.string();
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
  // Destructor: swallow errors; scratch cleanup is best-effort.
}

std::string TempDir::file(const std::string& name) const {
  return (std::filesystem::path(path_) / name).string();
}

}  // namespace northup::io
