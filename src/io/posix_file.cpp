#include "northup/io/posix_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "northup/util/assert.hpp"
#include "northup/util/log.hpp"

namespace northup::io {

namespace {
/// The errno is captured on the IoError so the resilience layer can
/// classify the failure structurally (transient vs permanent) instead of
/// parsing the message.
[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  const int err = errno;
  throw util::IoError(
      what + " failed for '" + path + "': " + std::strerror(err), err);
}
}  // namespace

const char* to_string(Advice advice) {
  switch (advice) {
    case Advice::kNormal: return "normal";
    case Advice::kSequential: return "sequential";
    case Advice::kRandom: return "random";
    case Advice::kWillNeed: return "willneed";
    case Advice::kDontNeed: return "dontneed";
  }
  return "?";
}

PosixFile::PosixFile(const std::string& path, OpenOptions options)
    : path_(path) {
  int flags = O_RDWR;
  if (options.create) flags |= O_CREAT;
  if (options.truncate) flags |= O_TRUNC;
#ifdef O_DIRECT
  if (options.direct) flags |= O_DIRECT | O_SYNC;
#endif
  fd_ = ::open(path.c_str(), flags, 0644);
#ifdef O_DIRECT
  if (options.direct) {
    if (fd_ >= 0) {
      direct_ = true;
    } else {
      // tmpfs and some filesystems reject O_DIRECT; fall back to buffered
      // I/O so the functional path still works (timing comes from the
      // model).
      flags &= ~(O_DIRECT | O_SYNC);
      fd_ = ::open(path.c_str(), flags, 0644);
    }
  }
#endif
  if (fd_ < 0) throw_errno("open", path);
}

void PosixFile::reopen_buffered() {
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_RDWR, 0644);
  direct_ = false;
  if (fd_ < 0) throw_errno("reopen", path_);
}

PosixFile::PosixFile(PosixFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)),
      direct_(std::exchange(other.direct_, false)) {}

PosixFile& PosixFile::operator=(PosixFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    direct_ = std::exchange(other.direct_, false);
  }
  return *this;
}

PosixFile::~PosixFile() { close(); }

void PosixFile::close() {
  if (fd_ >= 0) {
    // A failing close can mean lost writeback (NFS, some flash devices).
    // This runs from destructors so it must not throw, but it must not
    // go unnoticed either.
    if (::close(fd_) != 0) {
      NU_LOG_WARN << "close failed for '" << path_
                  << "': " << std::strerror(errno);
    }
    fd_ = -1;
  }
}

void PosixFile::pread_exact(void* dst, std::size_t size,
                            std::uint64_t offset) const {
  NU_CHECK(is_open(), "pread on closed file");
  auto* out = static_cast<char*>(dst);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pread(fd_, out + done, size - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EINVAL && direct_) {
        // Unaligned access under O_DIRECT: degrade to buffered I/O.
        const_cast<PosixFile*>(this)->reopen_buffered();
        continue;
      }
      throw_errno("pread", path_);
    }
    if (n == 0) {
      // Reading past EOF means the file is shorter than the allocation
      // claims — a structural problem retrying will not fix.
      throw util::IoError("pread hit EOF at offset " +
                              std::to_string(offset + done) + " (requested " +
                              std::to_string(size) + " B, got " +
                              std::to_string(done) + " B) in '" + path_ + "'",
                          /*errno_value=*/0, /*transient=*/false);
    }
    done += static_cast<std::size_t>(n);
  }
}

void PosixFile::pwrite_exact(const void* src, std::size_t size,
                             std::uint64_t offset) {
  NU_CHECK(is_open(), "pwrite on closed file");
  const auto* in = static_cast<const char*>(src);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pwrite(fd_, in + done, size - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EINVAL && direct_) {
        // Unaligned access under O_DIRECT: degrade to buffered I/O.
        reopen_buffered();
        continue;
      }
      throw_errno("pwrite", path_);
    }
    done += static_cast<std::size_t>(n);
  }
}

void PosixFile::truncate(std::uint64_t size) {
  NU_CHECK(is_open(), "truncate on closed file");
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    throw_errno("ftruncate", path_);
  }
}

std::uint64_t PosixFile::size() const {
  NU_CHECK(is_open(), "size on closed file");
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) throw_errno("lseek", path_);
  return static_cast<std::uint64_t>(end);
}

void PosixFile::fsync_file() {
  NU_CHECK(is_open(), "fsync on closed file");
  if (::fsync(fd_) != 0) throw_errno("fsync", path_);
}

bool PosixFile::fadvise(Advice advice, std::uint64_t offset,
                        std::uint64_t len) {
  NU_CHECK(is_open(), "fadvise on closed file");
#ifdef POSIX_FADV_NORMAL
  int value = POSIX_FADV_NORMAL;
  switch (advice) {
    case Advice::kNormal: value = POSIX_FADV_NORMAL; break;
    case Advice::kSequential: value = POSIX_FADV_SEQUENTIAL; break;
    case Advice::kRandom: value = POSIX_FADV_RANDOM; break;
    case Advice::kWillNeed: value = POSIX_FADV_WILLNEED; break;
    case Advice::kDontNeed: value = POSIX_FADV_DONTNEED; break;
  }
  // posix_fadvise returns the error directly (not via errno). Hints are
  // never a correctness requirement, so rejection only means "dropped".
  return ::posix_fadvise(fd_, static_cast<off_t>(offset),
                         static_cast<off_t>(len), value) == 0;
#else
  (void)advice;
  (void)offset;
  (void)len;
  return false;  // platform lacks posix_fadvise: hint dropped
#endif
}

bool PosixFile::preallocate(std::uint64_t size) {
  NU_CHECK(is_open(), "preallocate on closed file");
#ifdef POSIX_FADV_NORMAL  // same feature generation as posix_fallocate
  const int err = ::posix_fallocate(fd_, 0, static_cast<off_t>(size));
  if (err == 0) return true;
  if (err != EOPNOTSUPP && err != EINVAL) {
    throw util::IoError("posix_fallocate failed for '" + path_ +
                            "': " + std::strerror(err),
                        err);
  }
#endif
  // No real block reservation available: at least extend the logical size
  // so later positional writes stay within the file.
  if (this->size() < size) truncate(size);
  return false;
}

TempDir::TempDir(const std::string& tag) {
  static std::atomic<std::uint64_t> counter{0};
  const char* base_env = std::getenv("TMPDIR");
  const std::filesystem::path base = base_env ? base_env : "/tmp";
  const auto unique =
      tag + "-" + std::to_string(::getpid()) + "-" +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  const auto dir = base / unique;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw util::IoError("failed to create temp dir '" + dir.string() +
                            "': " + ec.message(),
                        ec.value());
  }
  path_ = dir.string();
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
  // Destructor: swallow errors; scratch cleanup is best-effort.
}

std::string TempDir::file(const std::string& name) const {
  return (std::filesystem::path(path_) / name).string();
}

}  // namespace northup::io
