#include "northup/io/chunked_store.hpp"

#include <charconv>
#include <filesystem>
#include <string_view>
#include <vector>

#include "northup/util/assert.hpp"

namespace northup::io {

ChunkedFileStore::ChunkedFileStore(std::string dir) : dir_(std::move(dir)) {
  NU_CHECK(std::filesystem::is_directory(dir_),
           "chunk store directory does not exist: '" + dir_ + "'");
  // Reopening an existing store: adopt every chunk_<id>.bin already in the
  // directory (preprocessing runs once; later runs reuse its output).
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string fname = entry.path().filename().string();
    constexpr std::string_view kPrefix = "chunk_";
    constexpr std::string_view kSuffix = ".bin";
    if (!entry.is_regular_file() || fname.size() <= kPrefix.size() + kSuffix.size() ||
        fname.compare(0, kPrefix.size(), kPrefix) != 0 ||
        fname.compare(fname.size() - kSuffix.size(), kSuffix.size(),
                      kSuffix) != 0) {
      continue;
    }
    const std::string digits = fname.substr(
        kPrefix.size(), fname.size() - kPrefix.size() - kSuffix.size());
    std::uint64_t id = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), id);
    if (ec != std::errc{} || ptr != digits.data() + digits.size()) continue;
    files_.emplace(id, PosixFile(entry.path().string(),
                                 {.create = false, .truncate = false}));
  }
}

PosixFile& ChunkedFileStore::open_chunk(std::uint64_t id, bool create) const {
  auto it = files_.find(id);
  if (it != files_.end()) return it->second;
  NU_CHECK(create, "chunk " + std::to_string(id) + " does not exist");
  const auto path =
      (std::filesystem::path(dir_) / ("chunk_" + std::to_string(id) + ".bin"))
          .string();
  auto [pos, inserted] =
      files_.emplace(id, PosixFile(path, {.create = true, .truncate = true}));
  NU_ASSERT(inserted);
  return pos->second;
}

void ChunkedFileStore::write_chunk(std::uint64_t id, const void* data,
                                   std::size_t bytes) {
  PosixFile& f = open_chunk(id, /*create=*/true);
  f.truncate(bytes);
  f.pwrite_exact(data, bytes, 0);
}

void ChunkedFileStore::read_chunk(std::uint64_t id, void* dst,
                                  std::size_t bytes,
                                  std::uint64_t offset) const {
  const PosixFile& f = open_chunk(id, /*create=*/false);
  f.pread_exact(dst, bytes, offset);
}

std::uint64_t ChunkedFileStore::chunk_bytes(std::uint64_t id) const {
  return open_chunk(id, /*create=*/false).size();
}

bool ChunkedFileStore::has_chunk(std::uint64_t id) const {
  return files_.count(id) != 0;
}

void ChunkedFileStore::erase_chunk(std::uint64_t id) {
  auto it = files_.find(id);
  NU_CHECK(it != files_.end(),
           "erase of unknown chunk " + std::to_string(id));
  const std::string path = it->second.path();
  files_.erase(it);
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

std::size_t write_tiled_matrix(ChunkedFileStore& store, const void* data,
                               std::size_t rows, std::size_t cols,
                               std::size_t elem_size, std::size_t tile_rows,
                               std::size_t tile_cols) {
  NU_CHECK(tile_rows > 0 && tile_cols > 0, "tile dims must be positive");
  const std::size_t tiles_r = (rows + tile_rows - 1) / tile_rows;
  const std::size_t tiles_c = (cols + tile_cols - 1) / tile_cols;
  const auto* src = static_cast<const std::byte*>(data);

  std::vector<std::byte> staging(tile_rows * tile_cols * elem_size);
  for (std::size_t tr = 0; tr < tiles_r; ++tr) {
    for (std::size_t tc = 0; tc < tiles_c; ++tc) {
      const std::size_t r0 = tr * tile_rows;
      const std::size_t c0 = tc * tile_cols;
      const std::size_t h = std::min(tile_rows, rows - r0);
      const std::size_t w = std::min(tile_cols, cols - c0);
      for (std::size_t r = 0; r < h; ++r) {
        const std::byte* row_src =
            src + ((r0 + r) * cols + c0) * elem_size;
        std::copy(row_src, row_src + w * elem_size,
                  staging.data() + r * w * elem_size);
      }
      store.write_chunk(tr * tiles_c + tc, staging.data(),
                        h * w * elem_size);
    }
  }
  return tiles_r * tiles_c;
}

void read_matrix_tile(const ChunkedFileStore& store, void* dst,
                      std::size_t rows, std::size_t cols,
                      std::size_t elem_size, std::size_t tile_rows,
                      std::size_t tile_cols, std::size_t tr, std::size_t tc) {
  const std::size_t tiles_c = (cols + tile_cols - 1) / tile_cols;
  const std::size_t r0 = tr * tile_rows;
  const std::size_t c0 = tc * tile_cols;
  NU_CHECK(r0 < rows && c0 < cols, "tile index out of range");
  const std::size_t h = std::min(tile_rows, rows - r0);
  const std::size_t w = std::min(tile_cols, cols - c0);
  store.read_chunk(tr * tiles_c + tc, dst, h * w * elem_size);
}

}  // namespace northup::io
