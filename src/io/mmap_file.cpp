#include "northup/io/mmap_file.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace northup::io {

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  const int err = errno;
  throw util::IoError(what + " failed for '" + path + "': " +
                          std::strerror(err),
                      err);
}

/// Maps `advice` to the platform's madvise constant, or -1 when the
/// platform does not define it (the caller then no-ops).
int madvise_value(Advice advice) {
  switch (advice) {
    case Advice::kNormal: return MADV_NORMAL;
    case Advice::kSequential: return MADV_SEQUENTIAL;
    case Advice::kRandom: return MADV_RANDOM;
#ifdef MADV_WILLNEED
    case Advice::kWillNeed: return MADV_WILLNEED;
#endif
#ifdef MADV_DONTNEED
    case Advice::kDontNeed: return MADV_DONTNEED;
#endif
    default: return -1;
  }
}

}  // namespace

std::uint64_t MmapFile::page_size() {
  static const std::uint64_t page =
      static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

MmapFile::MmapFile(const std::string& path, std::uint64_t size,
                   OpenOptions options)
    : file_(path, options), size_(size) {
  NU_CHECK(size > 0, "MmapFile requires a positive size");
  if (file_.size() < size) file_.truncate(size);
  map_now();
}

MmapFile::MmapFile(PosixFile file, std::uint64_t size)
    : file_(std::move(file)), size_(size) {
  NU_CHECK(size > 0, "MmapFile requires a positive size");
  NU_CHECK(file_.is_open(), "MmapFile requires an open file");
  if (file_.size() < size) file_.truncate(size);
  map_now();
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : file_(std::move(other.file_)),
      data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    close();
    file_ = std::move(other.file_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MmapFile::~MmapFile() { close(); }

void MmapFile::map_now() {
  void* addr = ::mmap(nullptr, static_cast<std::size_t>(size_),
                      PROT_READ | PROT_WRITE, MAP_SHARED, file_.fd(), 0);
  if (addr == MAP_FAILED) throw_errno("mmap", file_.path());
  data_ = static_cast<std::byte*>(addr);
}

void MmapFile::resize(std::uint64_t new_size) {
  NU_CHECK(new_size > 0, "MmapFile resize to zero");
  NU_CHECK(file_.is_open(), "resize of a closed MmapFile");
  unmap();
  file_.truncate(new_size);
  size_ = new_size;
  map_now();
}

MmapFile::Range MmapFile::page_range(std::uint64_t offset,
                                     std::uint64_t len) const {
  NU_CHECK(is_mapped(), "page range on an unmapped MmapFile");
  NU_CHECK(offset <= size_, "range start past the end of '" + path() + "'");
  if (len == 0) len = size_ - offset;
  NU_CHECK(offset + len <= size_, "range past the end of '" + path() + "'");
  const std::uint64_t mask = page_size() - 1;
  const std::uint64_t start = offset & ~mask;
  return {data_ + start, static_cast<std::size_t>(len + (offset - start))};
}

void MmapFile::sync(std::uint64_t offset, std::uint64_t len, bool wait) {
  const Range r = page_range(offset, len);
  if (::msync(r.addr, r.len, wait ? MS_SYNC : MS_ASYNC) != 0) {
    throw_errno("msync", file_.path());
  }
}

bool MmapFile::advise(Advice advice, std::uint64_t offset, std::uint64_t len) {
  const int value = madvise_value(advice);
  if (value < 0) return false;  // platform lacks this advice: hint dropped
  const Range r = page_range(offset, len);
  // Advice is an optimization, never a correctness requirement: a kernel
  // that rejects the hint (EINVAL on exotic mappings, ENOMEM on partial
  // unmap races) leaves the data intact, so failure only means "not
  // accepted".
  return ::madvise(r.addr, r.len, value) == 0;
}

std::uint64_t MmapFile::prefetch(std::uint64_t offset, std::uint64_t len) {
  advise(Advice::kWillNeed, offset, len);
  const Range r = page_range(offset, len);
  const std::uint64_t page = page_size();
  // Touch one byte per page so the faults happen now. The volatile sink
  // keeps the loop from being optimized away; reads are enough — pages
  // arrive resident and clean.
  volatile std::byte sink{};
  for (std::size_t i = 0; i < r.len; i += page) sink = r.addr[i];
  (void)sink;
  return r.len;
}

void MmapFile::unmap() {
  if (data_ != nullptr) {
    // munmap failure leaks address space but the destructor path must not
    // throw; mirror PosixFile::close and carry on.
    ::munmap(data_, static_cast<std::size_t>(size_));
    data_ = nullptr;
  }
}

void MmapFile::close() {
  unmap();
  size_ = 0;
  file_.close();
}

}  // namespace northup::io
