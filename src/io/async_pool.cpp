#include "northup/io/async_pool.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

#ifdef NORTHUP_HAVE_IO_URING
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#endif

namespace northup::io {

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path,
                              int err) {
  throw util::IoError(what + " failed for '" + path + "': " +
                          std::strerror(err),
                      err);
}

/// Exact positional read/write loops over a raw descriptor — the worker
/// backend and the io_uring short-op fallback share them. EOF on a read
/// is a structural (non-transient) error, mirroring PosixFile.
void pread_fd(int fd, void* dst, std::size_t bytes, std::uint64_t offset,
              const std::string& path) {
  auto* out = static_cast<char*>(dst);
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t n = ::pread(fd, out + done, bytes - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("async pread", path, errno);
    }
    if (n == 0) {
      throw util::IoError("async pread hit EOF at offset " +
                              std::to_string(offset + done) + " (requested " +
                              std::to_string(bytes) + " B, got " +
                              std::to_string(done) + " B) in '" + path + "'",
                          /*errno_value=*/0, /*transient=*/false);
    }
    done += static_cast<std::size_t>(n);
  }
}

void pwrite_fd(int fd, const void* src, std::size_t bytes,
               std::uint64_t offset, const std::string& path) {
  const auto* in = static_cast<const char*>(src);
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t n = ::pwrite(fd, in + done, bytes - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("async pwrite", path, errno);
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace

// --- IoFuture --------------------------------------------------------------

bool IoFuture::ready() const {
  NU_CHECK(valid(), "ready() on an empty IoFuture");
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

void IoFuture::wait() const {
  NU_CHECK(valid(), "wait() on an empty IoFuture");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
}

void IoFuture::get() const {
  wait();
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->error) std::rethrow_exception(state_->error);
}

// --- io_uring backend ------------------------------------------------------

#ifdef NORTHUP_HAVE_IO_URING

/// Minimal raw-syscall io_uring wrapper (no liburing dependency): one
/// ring, used for synchronous batches — fill sqes for every stripe of a
/// transfer, one io_uring_enter submits and waits for all completions.
/// Callers serialize on AsyncIoPool::uring_mu_, so the ring sees a single
/// thread at a time; the kernel-shared indices still need atomic access
/// (the kernel side updates them concurrently).
class AsyncIoPool::Uring {
 public:
  struct Op {
    bool write = false;
    int fd = -1;
    void* addr = nullptr;
    std::size_t len = 0;
    std::uint64_t offset = 0;
    std::size_t done = 0;  ///< bytes completed so far (short-op resume)
    int error = 0;         ///< first errno seen (0 = ok)
  };

  static std::unique_ptr<Uring> create(unsigned entries) {
    auto ring = std::unique_ptr<Uring>(new Uring());
    if (!ring->init(entries)) return nullptr;
    return ring;
  }

  ~Uring() {
    if (sq_ring_ != MAP_FAILED) ::munmap(sq_ring_, sq_ring_bytes_);
    if (cq_ring_ != MAP_FAILED && cq_ring_ != sq_ring_) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    if (sqes_ != MAP_FAILED) ::munmap(sqes_, sqe_bytes_);
    if (fd_ >= 0) ::close(fd_);
  }

  unsigned entries() const { return params_.sq_entries; }

  /// Drives every op to completion (submitting in ring-sized rounds,
  /// resuming short reads/writes). Ops that still fail carry their errno
  /// in Op::error; the caller turns those into IoErrors with file names.
  void run_batch(std::vector<Op>& ops) {
    std::vector<std::size_t> pending;
    pending.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) pending.push_back(i);
    while (!pending.empty()) {
      const unsigned round = static_cast<unsigned>(
          std::min<std::size_t>(pending.size(), entries()));
      submit_round(ops, pending, round);
      // Ops past `round` didn't fit this ring-full; they go first in the
      // next one, followed by any short/retryable ops the reap re-queues.
      std::vector<std::size_t> next(pending.begin() + round, pending.end());
      reap_round(ops, round, next, pending);
      pending = std::move(next);
    }
  }

 private:
  Uring() = default;

  bool init(unsigned entries) {
    std::memset(&params_, 0, sizeof(params_));
    const long fd = ::syscall(__NR_io_uring_setup, entries, &params_);
    if (fd < 0) return false;  // EPERM/ENOSYS: sandboxed or old kernel
    fd_ = static_cast<int>(fd);

    sq_ring_bytes_ =
        params_.sq_off.array + params_.sq_entries * sizeof(unsigned);
    cq_ring_bytes_ =
        params_.cq_off.cqes + params_.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap =
        (params_.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) {
      sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
    }
    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) return false;
    cq_ring_ = single_mmap
                   ? sq_ring_
                   : ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, fd_,
                            IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) return false;
    sqe_bytes_ = params_.sq_entries * sizeof(io_uring_sqe);
    sqes_ = ::mmap(nullptr, sqe_bytes_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_SQES);
    if (sqes_ == MAP_FAILED) return false;

    auto* sq = static_cast<char*>(sq_ring_);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.tail);
    sq_mask_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.array);
    auto* cq = static_cast<char*>(cq_ring_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params_.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params_.cq_off.tail);
    cq_mask_ = reinterpret_cast<unsigned*>(cq + params_.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params_.cq_off.cqes);
    return true;
  }

  /// Queues sqes for the first `round` pending ops and submits them with
  /// one io_uring_enter that also waits for all their completions.
  void submit_round(std::vector<Op>& ops,
                    const std::vector<std::size_t>& pending, unsigned round) {
    const unsigned mask = *sq_mask_;
    unsigned tail = std::atomic_ref<unsigned>(*sq_tail_).load(
        std::memory_order_relaxed);
    for (unsigned i = 0; i < round; ++i) {
      Op& op = ops[pending[i]];
      const unsigned idx = tail & mask;
      auto* sqe = static_cast<io_uring_sqe*>(sqes_) + idx;
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = op.write ? IORING_OP_WRITE : IORING_OP_READ;
      sqe->fd = op.fd;
      sqe->addr = reinterpret_cast<std::uint64_t>(
          static_cast<char*>(op.addr) + op.done);
      sqe->len = static_cast<unsigned>(op.len - op.done);
      sqe->off = op.offset + op.done;
      sqe->user_data = pending[i];
      sq_array_[idx] = idx;
      ++tail;
    }
    std::atomic_ref<unsigned>(*sq_tail_).store(tail,
                                               std::memory_order_release);
    unsigned submitted = 0;
    while (submitted < round) {
      const long n = ::syscall(__NR_io_uring_enter, fd_, round - submitted,
                               round - submitted, IORING_ENTER_GETEVENTS,
                               nullptr, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("io_uring_enter", "<ring>", errno);
      }
      submitted += static_cast<unsigned>(n);
    }
  }

  /// Consumes exactly `round` completions, scheduling short ops for
  /// another round and recording errors.
  void reap_round(std::vector<Op>& ops, unsigned round,
                  std::vector<std::size_t>& next,
                  const std::vector<std::size_t>& pending) {
    const unsigned mask = *cq_mask_;
    unsigned seen = 0;
    unsigned head =
        std::atomic_ref<unsigned>(*cq_head_).load(std::memory_order_relaxed);
    while (seen < round) {
      const unsigned tail = std::atomic_ref<unsigned>(*cq_tail_).load(
          std::memory_order_acquire);
      while (head != tail && seen < round) {
        const io_uring_cqe& cqe = cqes_[head & mask];
        Op& op = ops[cqe.user_data];
        if (cqe.res < 0) {
          if (cqe.res == -EINTR || cqe.res == -EAGAIN) {
            next.push_back(cqe.user_data);  // retryable: resubmit as-is
          } else if (op.error == 0) {
            op.error = -cqe.res;
          }
        } else if (cqe.res == 0 && !op.write) {
          op.error = op.error != 0 ? op.error : -1;  // EOF sentinel
        } else {
          op.done += static_cast<std::size_t>(cqe.res);
          if (op.done < op.len) next.push_back(cqe.user_data);
        }
        ++head;
        ++seen;
      }
      std::atomic_ref<unsigned>(*cq_head_).store(head,
                                                 std::memory_order_release);
      if (seen < round) {
        const long n = ::syscall(__NR_io_uring_enter, fd_, 0, 1,
                                 IORING_ENTER_GETEVENTS, nullptr, 0);
        if (n < 0 && errno != EINTR) {
          throw_errno("io_uring_enter", "<ring>", errno);
        }
        head = std::atomic_ref<unsigned>(*cq_head_).load(
            std::memory_order_relaxed);
      }
    }
    (void)pending;
  }

  int fd_ = -1;
  io_uring_params params_{};
  void* sq_ring_ = MAP_FAILED;
  void* cq_ring_ = MAP_FAILED;
  void* sqes_ = MAP_FAILED;
  std::size_t sq_ring_bytes_ = 0;
  std::size_t cq_ring_bytes_ = 0;
  std::size_t sqe_bytes_ = 0;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;
};

bool AsyncIoPool::io_uring_supported() {
  static const bool supported = [] {
    auto probe = Uring::create(4);
    return probe != nullptr;
  }();
  return supported;
}

bool AsyncIoPool::run_uring_batch(std::vector<Request>& stripes) {
  if (uring_ == nullptr) return false;
  std::vector<Uring::Op> ops;
  ops.reserve(stripes.size());
  for (const Request& r : stripes) {
    ops.push_back({r.write, r.fd,
                   r.write ? const_cast<void*>(r.src) : r.dst, r.bytes,
                   r.offset, 0, 0});
  }
  {
    std::lock_guard<std::mutex> lock(uring_mu_);
    uring_->run_batch(ops);
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Uring::Op& op = ops[i];
    if (op.error == -1) {
      throw util::IoError("io_uring read hit EOF at offset " +
                              std::to_string(op.offset + op.done) +
                              " (requested " + std::to_string(op.len) +
                              " B, got " + std::to_string(op.done) +
                              " B) in '" + stripes[i].path + "'",
                          /*errno_value=*/0, /*transient=*/false);
    }
    if (op.error != 0) {
      throw_errno(op.write ? "io_uring write" : "io_uring read",
                  stripes[i].path, op.error);
    }
  }
  if (metrics_.uring_batches != nullptr) metrics_.uring_batches->increment();
  return true;
}

#else  // !NORTHUP_HAVE_IO_URING

class AsyncIoPool::Uring {};

bool AsyncIoPool::io_uring_supported() { return false; }

bool AsyncIoPool::run_uring_batch(std::vector<Request>&) { return false; }

#endif  // NORTHUP_HAVE_IO_URING

// --- AsyncIoPool -----------------------------------------------------------

AsyncIoPool::AsyncIoPool(Options options) : options_(options) {
  NU_CHECK(options_.stripe_bytes > 0, "stripe_bytes must be positive");
#ifdef NORTHUP_HAVE_IO_URING
  if (options_.try_io_uring) {
    uring_ = Uring::create(std::max(1u, options_.uring_entries));
  }
#endif
  workers_.reserve(options_.threads);
  for (std::size_t i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AsyncIoPool::~AsyncIoPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Workers drain the queue before exiting, so no future is left pending.
}

void AsyncIoPool::attach_metrics(obs::MetricsRegistry& registry) {
  metrics_.requests = &registry.counter("io.async.requests");
  metrics_.bytes_read = &registry.counter("io.async.bytes_read");
  metrics_.bytes_written = &registry.counter("io.async.bytes_written");
  metrics_.uring_batches = &registry.counter("io.async.uring_batches");
  metrics_.inline_ops = &registry.counter("io.async.inline_ops");
  metrics_.queue_high_water = &registry.gauge("io.async.queue_high_water");
}

void AsyncIoPool::complete(const std::shared_ptr<IoFuture::State>& state,
                           std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->done = true;
    state->error = std::move(error);
  }
  state->cv.notify_all();
}

void AsyncIoPool::perform(const Request& request) {
  std::exception_ptr error;
  try {
    if (request.write) {
      pwrite_fd(request.fd, request.src, request.bytes, request.offset,
                request.path);
    } else {
      pread_fd(request.fd, request.dst, request.bytes, request.offset,
               request.path);
    }
  } catch (...) {
    error = std::current_exception();
  }
  complete(request.state, std::move(error));
}

void AsyncIoPool::worker_loop() {
  for (;;) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      request = std::move(queue_.front());
      queue_.pop_front();
    }
    perform(request);
  }
}

IoFuture AsyncIoPool::enqueue(Request request) {
  request.state = std::make_shared<IoFuture::State>();
  IoFuture future(request.state);
  if (metrics_.requests != nullptr) {
    metrics_.requests->increment();
    (request.write ? metrics_.bytes_written : metrics_.bytes_read)
        ->add(request.bytes);
  }
  if (workers_.empty()) {
    if (metrics_.inline_ops != nullptr) metrics_.inline_ops->increment();
    perform(request);
    return future;
  }
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    NU_CHECK(!stopping_, "submit on a stopping AsyncIoPool");
    queue_.push_back(std::move(request));
    depth = queue_.size();
  }
  queue_cv_.notify_one();
  if (metrics_.queue_high_water != nullptr) {
    metrics_.queue_high_water->record_max(static_cast<double>(depth));
  }
  return future;
}

IoFuture AsyncIoPool::submit_read(const PosixFile& file, void* dst,
                                  std::size_t bytes, std::uint64_t offset) {
  NU_CHECK(file.is_open(), "submit_read on a closed file");
  Request r;
  r.write = false;
  r.fd = file.fd();
  r.dst = dst;
  r.bytes = bytes;
  r.offset = offset;
  r.path = file.path();
  return enqueue(std::move(r));
}

IoFuture AsyncIoPool::submit_write(PosixFile& file, const void* src,
                                   std::size_t bytes, std::uint64_t offset) {
  NU_CHECK(file.is_open(), "submit_write on a closed file");
  Request r;
  r.write = true;
  r.fd = file.fd();
  r.src = src;
  r.bytes = bytes;
  r.offset = offset;
  r.path = file.path();
  return enqueue(std::move(r));
}

std::vector<AsyncIoPool::Request> AsyncIoPool::make_stripes(
    bool write, const PosixFile& file, void* dst, const void* src,
    std::size_t bytes, std::uint64_t offset) const {
  std::vector<Request> stripes;
  const std::size_t stripe = options_.stripe_bytes;
  std::size_t at = 0;
  do {
    const std::size_t len = std::min(stripe, bytes - at);
    Request r;
    r.write = write;
    r.fd = file.fd();
    r.dst = dst != nullptr ? static_cast<char*>(dst) + at : nullptr;
    r.src = src != nullptr ? static_cast<const char*>(src) + at : nullptr;
    r.bytes = len;
    r.offset = offset + at;
    r.path = file.path();
    stripes.push_back(std::move(r));
    at += len;
  } while (at < bytes);
  return stripes;
}

void AsyncIoPool::join_all(const std::vector<IoFuture>& futures) {
  // Wait for every stripe before rethrowing: the buffers they target go
  // out of scope when this frame unwinds.
  for (const IoFuture& f : futures) f.wait();
  for (const IoFuture& f : futures) f.get();
}

void AsyncIoPool::pread_parallel(const PosixFile& file, void* dst,
                                 std::size_t bytes, std::uint64_t offset) {
  NU_CHECK(file.is_open(), "pread_parallel on a closed file");
  if (bytes == 0) return;
  std::vector<Request> stripes =
      make_stripes(false, file, dst, nullptr, bytes, offset);
  if (metrics_.requests != nullptr) {
    metrics_.requests->add(stripes.size());
    metrics_.bytes_read->add(bytes);
  }
  if (run_uring_batch(stripes)) return;
  if (workers_.empty() || stripes.size() == 1) {
    if (metrics_.inline_ops != nullptr) metrics_.inline_ops->increment();
    pread_fd(file.fd(), dst, bytes, offset, file.path());
    return;
  }
  std::vector<IoFuture> futures;
  futures.reserve(stripes.size());
  for (Request& r : stripes) {
    r.state = std::make_shared<IoFuture::State>();
    futures.emplace_back(IoFuture(r.state));
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    NU_CHECK(!stopping_, "pread_parallel on a stopping AsyncIoPool");
    for (Request& r : stripes) queue_.push_back(std::move(r));
    if (metrics_.queue_high_water != nullptr) {
      metrics_.queue_high_water->record_max(
          static_cast<double>(queue_.size()));
    }
  }
  queue_cv_.notify_all();
  join_all(futures);
}

void AsyncIoPool::pwrite_parallel(PosixFile& file, const void* src,
                                  std::size_t bytes, std::uint64_t offset) {
  NU_CHECK(file.is_open(), "pwrite_parallel on a closed file");
  if (bytes == 0) return;
  std::vector<Request> stripes =
      make_stripes(true, file, nullptr, src, bytes, offset);
  if (metrics_.requests != nullptr) {
    metrics_.requests->add(stripes.size());
    metrics_.bytes_written->add(bytes);
  }
  if (run_uring_batch(stripes)) return;
  if (workers_.empty() || stripes.size() == 1) {
    if (metrics_.inline_ops != nullptr) metrics_.inline_ops->increment();
    pwrite_fd(file.fd(), src, bytes, offset, file.path());
    return;
  }
  std::vector<IoFuture> futures;
  futures.reserve(stripes.size());
  for (Request& r : stripes) {
    r.state = std::make_shared<IoFuture::State>();
    futures.emplace_back(IoFuture(r.state));
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    NU_CHECK(!stopping_, "pwrite_parallel on a stopping AsyncIoPool");
    for (Request& r : stripes) queue_.push_back(std::move(r));
    if (metrics_.queue_high_water != nullptr) {
      metrics_.queue_high_water->record_max(
          static_cast<double>(queue_.size()));
    }
  }
  queue_cv_.notify_all();
  join_all(futures);
}

}  // namespace northup::io
