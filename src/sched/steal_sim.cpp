#include "northup/sched/steal_sim.hpp"

#include <algorithm>
#include <limits>

namespace northup::sched {

std::size_t StealSim::add_worker(SimWorker worker) {
  NU_CHECK(worker.speed > 0.0, "worker speed must be positive");
  workers_.push_back(std::move(worker));
  queues_.emplace_back();
  return workers_.size() - 1;
}

void StealSim::add_task(std::size_t worker, double cost) {
  NU_CHECK(worker < workers_.size(), "unknown worker");
  NU_CHECK(cost > 0.0, "task cost must be positive");
  queues_[worker].push_back(cost);
  ++total_tasks_;
}

StealSimResult StealSim::run(bool stealing) const {
  const std::size_t n = workers_.size();
  NU_CHECK(n > 0, "no workers");

  std::vector<std::deque<double>> queues = queues_;
  std::vector<double> now(n, 0.0);
  StealSimResult result;
  result.busy.assign(n, 0.0);
  result.executed.assign(n, 0);

  std::size_t remaining = total_tasks_;
  while (remaining > 0) {
    // Advance the worker that is free earliest and can acquire a task.
    // Deterministic tie-break: lowest index.
    std::size_t chosen = n;
    double best_time = std::numeric_limits<double>::infinity();
    for (std::size_t w = 0; w < n; ++w) {
      const bool has_own = !queues[w].empty();
      const bool may_steal = stealing && workers_[w].can_steal;
      if (!has_own && !may_steal) continue;
      if (!has_own) {
        // Verify there is actually something to steal.
        bool victim_exists = false;
        for (std::size_t v = 0; v < n && !victim_exists; ++v) {
          victim_exists = (v != w) && !queues[v].empty();
        }
        if (!victim_exists) continue;
      }
      if (now[w] < best_time) {
        best_time = now[w];
        chosen = w;
      }
    }
    NU_ASSERT(chosen < n);  // remaining > 0 implies someone can make progress

    double cost = 0.0;
    if (!queues[chosen].empty()) {
      // Owner pops from the tail of its local queue (Fig 10).
      cost = queues[chosen].back();
      queues[chosen].pop_back();
    } else {
      // Steal from the head of the longest victim queue.
      std::size_t victim = n;
      std::size_t victim_len = 0;
      for (std::size_t v = 0; v < n; ++v) {
        if (v == chosen) continue;
        if (queues[v].size() > victim_len) {
          victim_len = queues[v].size();
          victim = v;
        }
      }
      NU_ASSERT(victim < n);
      cost = queues[victim].front();
      queues[victim].pop_front();
      ++result.steals;
    }

    const double duration = cost / workers_[chosen].speed;
    now[chosen] += duration;
    result.busy[chosen] += duration;
    ++result.executed[chosen];
    --remaining;
  }

  result.makespan = *std::max_element(now.begin(), now.end());
  return result;
}

}  // namespace northup::sched
