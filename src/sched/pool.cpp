#include "northup/sched/pool.hpp"

#include <chrono>

#include "northup/obs/event_log.hpp"

namespace northup::sched {

thread_local std::size_t WorkStealingPool::tls_worker_index_ = 0;
thread_local WorkStealingPool* WorkStealingPool::tls_pool_ = nullptr;

WorkStealingPool::WorkStealingPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  wait_idle();
  stop_.store(true, std::memory_order_release);
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void WorkStealingPool::submit(std::function<void()> fn) {
  // Causal-span propagation: a task inherits the submitter's current
  // EventLog span, so flight-recorder events emitted on the worker attach
  // to the same job -> phase -> chunk chain. No-span submitters skip the
  // extra indirection entirely.
  if (const obs::EventLog::Context ctx = obs::EventLog::current_context();
      ctx.log != nullptr && ctx.span != obs::kNoSpan) {
    fn = [ctx, inner = std::move(fn)] {
      obs::SpanAdopt adopt(ctx);
      inner();
    };
  }
  auto* task = new std::function<void()>(std::move(fn));
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (tls_pool_ == this) {
    // Nested spawn from a worker: push to the owner's deque (LIFO).
    if (workers_[tls_worker_index_]->deque.push_bottom(task)) {
      work_cv_.notify_one();
      return;
    }
    // Deque full: overflow into the injector.
  }
  injector_.push(QueueTask{0, [task, this] { run_task(task); }});
  work_cv_.notify_one();
}

void WorkStealingPool::run_task(std::function<void()>* task) {
  (*task)();
  delete task;
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    idle_cv_.notify_all();
  }
}

std::function<void()>* WorkStealingPool::try_acquire(std::size_t self) {
  std::function<void()>* task = nullptr;
  if (workers_[self]->deque.pop_bottom(task)) return task;
  // Steal round-robin starting after self.
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    const std::size_t victim = (self + k) % workers_.size();
    if (workers_[victim]->deque.steal_top(task)) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void WorkStealingPool::worker_loop(std::size_t index) {
  tls_worker_index_ = index;
  tls_pool_ = this;
  while (true) {
    // Own deque, then steal, then the injector.
    if (auto* task = try_acquire(index)) {
      run_task(task);
      continue;
    }
    QueueTask injected;
    if (injector_.pop(injected)) {
      injected.body();  // body wraps run_task
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lock(idle_mutex_);
    work_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void WorkStealingPool::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace northup::sched
