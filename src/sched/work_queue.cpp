#include "northup/sched/work_queue.hpp"

namespace northup::sched {

void WorkQueue::push(QueueTask task) {
  std::lock_guard<std::mutex> lock(mutex_);
  tasks_.push_back(std::move(task));
  ++enqueued_total_;
  if (push_counter_ != nullptr) push_counter_->increment();
}

bool WorkQueue::pop(QueueTask& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tasks_.empty()) return false;
  out = std::move(tasks_.front());
  tasks_.pop_front();
  if (pop_counter_ != nullptr) pop_counter_->increment();
  return true;
}

bool WorkQueue::pop_back(QueueTask& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tasks_.empty()) return false;
  out = std::move(tasks_.back());
  tasks_.pop_back();
  if (pop_counter_ != nullptr) pop_counter_->increment();
  return true;
}

void WorkQueue::attach_metrics(obs::MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  push_counter_ = &registry.counter("queue." + name_ + ".pushes");
  pop_counter_ = &registry.counter("queue." + name_ + ".pops");
}

std::size_t WorkQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

std::uint64_t WorkQueue::enqueued_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enqueued_total_;
}

void NodeQueueSet::create_queues(topo::NodeId node, std::size_t count) {
  NU_CHECK(node < tree_.node_count(), "create_queues: unknown node");
  auto& list = queues_[node];
  while (list.size() < count) {
    list.push_back(std::make_unique<WorkQueue>(
        tree_.node(node).name + "/q" + std::to_string(list.size())));
    if (metrics_ != nullptr) list.back()->attach_metrics(*metrics_);
  }
}

void NodeQueueSet::attach_metrics(obs::MetricsRegistry& registry) {
  metrics_ = &registry;
  for (auto& [node, list] : queues_) {
    for (auto& queue : list) queue->attach_metrics(registry);
  }
}

std::size_t NodeQueueSet::queue_count(topo::NodeId node) const {
  auto it = queues_.find(node);
  return it == queues_.end() ? 0 : it->second.size();
}

WorkQueue& NodeQueueSet::queue(topo::NodeId node, std::size_t index) {
  auto it = queues_.find(node);
  NU_CHECK(it != queues_.end() && index < it->second.size(),
           "queue index out of range");
  return *it->second[index];
}

std::size_t NodeQueueSet::subtree_pending(topo::NodeId node) const {
  NU_CHECK(node < tree_.node_count(), "subtree_pending: unknown node");
  std::size_t pending = 0;
  std::vector<topo::NodeId> stack{node};
  while (!stack.empty()) {
    const topo::NodeId cur = stack.back();
    stack.pop_back();
    auto it = queues_.find(cur);
    if (it != queues_.end()) {
      for (const auto& q : it->second) pending += q->size();
    }
    for (topo::NodeId child : tree_.get_children_list(cur)) {
      stack.push_back(child);
    }
  }
  return pending;
}

}  // namespace northup::sched
