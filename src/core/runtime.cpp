#include "northup/core/runtime.hpp"

#include <filesystem>

#include "northup/memsim/mmap_storage.hpp"
#include "northup/util/log.hpp"

namespace northup::core {

namespace {
/// Phase key for runtime bookkeeping (tree lookups, queue ops).
constexpr const char* kRuntimePhase = "runtime";
}  // namespace

Runtime::Runtime(topo::TopoTree tree, RuntimeOptions options)
    : tree_(std::move(tree)), options_(std::move(options)) {
  tree_.validate();
  spawn_counter_ = &metrics_.counter("runtime.spawns");
  spawn_depth_gauge_ = &metrics_.gauge("runtime.max_spawn_depth");
  if (options_.enable_sim) sim_ = std::make_unique<sim::EventSim>();
  resil_ = std::make_unique<resil::ResilienceManager>(tree_,
                                                      options_.resilience);
  dm_ = std::make_unique<data::DataManager>(tree_, sim_.get());
  dm_->attach_metrics(&metrics_);
  dm_->set_resilience(resil_.get());
  if (options_.external_event_log != nullptr) {
    elog_ = options_.external_event_log;
  } else if (options_.enable_event_log) {
    elog_owned_ = std::make_unique<obs::EventLog>(options_.event_log_capacity);
    elog_ = elog_owned_.get();
  }
  if (elog_ != nullptr) {
    elog_runtime_phase_ = elog_->intern(kRuntimePhase);
    elog_run_name_ = elog_->intern("run");
    spawn_span_names_.resize(tree_.node_count());
    for (topo::NodeId id = 0; id < tree_.node_count(); ++id) {
      elog_->set_node_name(id, tree_.node(id).name);
      spawn_span_names_[id] = elog_->intern("spawn->" + tree_.node(id).name);
    }
    dm_->set_event_log(elog_);
    resil_->set_event_log(elog_);
  }
  queues_ = std::make_unique<sched::NodeQueueSet>(tree_);
  queues_->attach_metrics(metrics_);
  bind_all_storages();
  if (options_.enable_shard_cache) {
    cache_ = std::make_unique<cache::CacheManager>(
        *dm_, cache::CacheManager::Options{options_.cache_hit_time_s});
  }
  create_processors();
  if (options_.pipeline_threads > 0) {
    exec_pool_ =
        std::make_unique<sched::WorkStealingPool>(options_.pipeline_threads);
  }
  // One default work queue per memory node (Listing 1's work_queue links).
  for (topo::NodeId id = 0; id < tree_.node_count(); ++id) {
    queues_->create_queues(id, 1);
  }
}

Runtime::~Runtime() = default;

void Runtime::bind_all_storages() {
  if (options_.io_threads > 0 && !options_.mmap_storage) {
    io::AsyncIoPool::Options popts;
    popts.threads = options_.io_threads;
    io_pool_ = std::make_unique<io::AsyncIoPool>(popts);
    io_pool_->attach_metrics(metrics_);
  }
  for (topo::NodeId id = 0; id < tree_.node_count(); ++id) {
    const auto& info = tree_.memory(id);
    const std::string name = tree_.node(id).name;
    std::unique_ptr<mem::Storage> storage;
    if (mem::is_file_backed(info.storage_type)) {
      std::string dir = options_.file_dir;
      if (dir.empty()) {
        if (!temp_dir_) temp_dir_ = std::make_unique<io::TempDir>("northup-rt");
        dir = temp_dir_->path();
      }
      if (options_.mmap_storage) {
        auto mapped = std::make_unique<mem::MmapStorage>(
            name, info.storage_type, info.capacity, info.model, dir);
        if (options_.trace_io) mapped->set_trace_enabled(true);
        if (options_.paced_storage) mapped->set_paced(true);
        storage = std::move(mapped);
      } else {
        auto file = std::make_unique<mem::FileStorage>(
            name, info.storage_type, info.capacity, info.model, dir,
            options_.direct_io);
        if (options_.trace_io) file->set_trace_enabled(true);
        if (options_.paced_storage) file->set_paced(true);
        if (io_pool_ != nullptr) file->set_async_pool(io_pool_.get());
        storage = std::move(file);
      }
    } else {
      storage = std::make_unique<mem::HostStorage>(
          name, info.storage_type, info.capacity, info.model);
    }
    if (options_.storage_decorator) {
      storage = options_.storage_decorator(id, tree_, std::move(storage));
      NU_CHECK(storage != nullptr, "storage_decorator returned null for '" +
                                       name + "'");
    }
    dm_->bind_storage(id, std::move(storage));
  }
}

void Runtime::create_processors() {
  if (options_.parallel_leaf_threads > 0) {
    leaf_pool_ = std::make_unique<sched::WorkStealingPool>(
        options_.parallel_leaf_threads);
  }
  for (topo::NodeId id = 0; id < tree_.node_count(); ++id) {
    for (const auto& pinfo : tree_.processors(id)) {
      auto proc = std::make_unique<device::Processor>(pinfo, sim_.get());
      if (leaf_pool_) proc->set_parallel_executor(leaf_pool_.get());
      if (elog_ != nullptr) proc->set_event_log(elog_, id);
      processors_[id].push_back(std::move(proc));
    }
  }
}

std::vector<device::Processor*> Runtime::processors_at(topo::NodeId node) {
  std::vector<device::Processor*> result;
  auto it = processors_.find(node);
  if (it == processors_.end()) return result;
  for (auto& p : it->second) result.push_back(p.get());
  return result;
}

device::Processor* Runtime::processor_at(topo::NodeId node,
                                         topo::ProcessorType type) {
  auto it = processors_.find(node);
  if (it == processors_.end()) return nullptr;
  for (auto& p : it->second) {
    if (p->type() == type) return p.get();
  }
  return nullptr;
}

device::Processor* Runtime::find_processor(topo::ProcessorType type) {
  for (topo::NodeId id : tree_.preorder()) {
    if (auto* p = processor_at(id, type)) return p;
  }
  return nullptr;
}

void Runtime::run(const std::function<void(ExecContext&)>& fn) {
  run_from(tree_.root(), fn);
}

void Runtime::run_from(topo::NodeId node,
                       const std::function<void(ExecContext&)>& fn) {
  NU_CHECK(node < tree_.node_count(), "run_from: unknown node");
  // Root causal span of the whole program: every spawn/move/kernel event
  // below chains back here through its parent span.
  NU_CHECK(graph_ == nullptr, "Runtime::run is not reentrant");
  obs::SpanScope run_span(elog_, elog_run_name_, elog_runtime_phase_, node);
  // The run's continuation DAG lives on this frame; with pipeline_threads
  // set its nodes execute on exec_pool_, otherwise inline at submission.
  exec::TaskGraph graph(exec_pool_.get());
  graph_ = &graph;
  ExecContext ctx(*this, node);
  try {
    fn(ctx);
  } catch (...) {
    // Abandon what has not started and join what has, so no node body
    // outlives the program lambda's frame it may reference.
    graph.cancel();
    graph.wait_all();
    graph_ = nullptr;
    throw;
  }
  graph.wait_all();
  graph_ = nullptr;
  // A failed node fails the run: rethrow the root-cause error exactly as
  // the blocking call it replaced would have thrown from the planner.
  if (auto error = graph.first_error()) std::rethrow_exception(error);
}

double Runtime::makespan() const { return sim_ ? sim_->makespan() : 0.0; }

obs::TraceLayout Runtime::trace_layout() {
  obs::TraceLayout layout;
  for (topo::NodeId id = 0; id < tree_.node_count(); ++id) {
    layout.process_names[id] = tree_.node(id).name;
    if (sim_ && dm_->is_bound(id)) {
      layout.tracks[dm_->resource_for(id)] = {id, 0};
    }
    std::uint32_t tid = 1;
    for (auto* proc : processors_at(id)) {
      if (sim_) layout.tracks[proc->resource()] = {id, tid};
      ++tid;
    }
  }
  return layout;
}

void Runtime::write_chrome_trace(const std::string& path) {
  if (sim_) {
    obs::TraceWriter(*sim_, trace_layout()).write_file(path);
  } else {
    const sim::EventSim empty;
    obs::TraceWriter(empty, {}).write_file(path);
  }
}

void Runtime::stamp_gauges() {
  metrics_.gauge("sim.makespan_seconds").set(makespan());
  if (sim_) {
    metrics_.gauge("sim.tasks").set(static_cast<double>(sim_->task_count()));
    for (const auto& [phase, seconds] : sim_->phase_totals()) {
      metrics_.gauge("phase." + phase + ".seconds").set(seconds);
    }
  }
  metrics_.gauge("runtime.bookkeeping_wall_seconds")
      .set(bookkeeping_wall_seconds());
  if (leaf_pool_) {
    metrics_.gauge("pool.steals")
        .set(static_cast<double>(leaf_pool_->steal_count()));
  }
  if (elog_ != nullptr) {
    metrics_.gauge("eventlog.dropped")
        .set(static_cast<double>(elog_->dropped()));
  }
}

void Runtime::write_metrics_json(const std::string& path) {
  stamp_gauges();
  metrics_.write_json(path);
}

void Runtime::write_prometheus(const std::string& path) {
  stamp_gauges();
  metrics_.write_prometheus(path);
}

void Runtime::write_event_log(const std::string& path) {
  if (elog_ != nullptr) {
    elog_->write_file(path);
  } else {
    const obs::EventLog empty(1);
    empty.write_file(path);
  }
}

topo::NodeId ExecContext::healthy_child() const {
  const auto& kids = rt_.tree().get_children_list(node_);
  NU_CHECK(!kids.empty(), "healthy_child at leaf node '" +
                              rt_.tree().node(node_).name + "'");
  if (auto* resil = rt_.dm().resilience()) {
    for (topo::NodeId kid : kids) {
      if (resil->breaker_state(kid) != resil::BreakerState::Open) return kid;
    }
  }
  return kids.front();
}

topo::NodeId ExecContext::child(std::size_t index) const {
  const auto& kids = rt_.tree().get_children_list(node_);
  NU_CHECK(index < kids.size(), "child index out of range at node '" +
                                    rt_.tree().node(node_).name + "'");
  return kids[index];
}

void ExecContext::northup_spawn(topo::NodeId child_node,
                                const std::function<void(ExecContext&)>& fn) {
  NU_CHECK(rt_.tree().get_parent(child_node) == node_,
           "northup_spawn target must be a child of the current node");

  // Flight-recorder span for the whole spawned chunk: nested under the
  // caller's span (run -> spawn -> spawn -> ... mirrors the recursive
  // descent), so every move/kernel below attributes to this chunk.
  obs::SpanScope spawn_span(
      rt_.elog_,
      rt_.elog_ != nullptr ? rt_.spawn_span_names_[child_node] : 0,
      rt_.elog_runtime_phase_, child_node);

  // Bookkeeping: the recursive task goes through the child node's work
  // queue (push, then pop-and-run). We time the real cost of this
  // machinery and also charge the modeled cost into the sim so the
  // <1%-overhead claim is visible in virtual time too (§V-B). The spawn
  // lock keeps the push/pop pair atomic when pipelined DAG workers spawn
  // concurrently (and guards the shared bookkeeping timer); the spawned
  // body itself runs outside the lock so chunks still overlap.
  sched::QueueTask task;
  {
    std::lock_guard<std::mutex> spawn_lock(rt_.spawn_mu_);
    util::ScopedTimer timed(rt_.bookkeeping_);
    sched::WorkQueue& queue = rt_.queues().queue(child_node, 0);
    ExecContext child_ctx(rt_, child_node);
    queue.push(sched::QueueTask{
        rt_.spawn_count_.fetch_add(1, std::memory_order_relaxed),
        [&fn, child_ctx]() mutable { fn(child_ctx); }});
    rt_.spawn_counter_->increment();
    rt_.spawn_depth_gauge_->record_max(
        static_cast<double>(rt_.tree().get_level(child_node)));
    if (auto* es = rt_.event_sim()) {
      es->add_task("spawn->" + rt_.tree().node(child_node).name,
                   kRuntimePhase, rt_.dm().resource_for(child_node),
                   rt_.options().spawn_overhead_s);
    }

    // Drain the queue entry (deterministic depth-first execution; §III-C
    // notes chunks may execute sequentially due to limited lower-level
    // capacity). Popping under the lock pairs each pop with its push.
    const bool popped = queue.pop(task);
    NU_CHECK(popped, "work queue lost a task");
  }
  task.body();
}

// --- ExecContext async DAG API ---------------------------------------------

namespace {

/// Converts a non-kOk run status into the exception its futures carry.
[[noreturn]] void rethrow_status(exec::RunStatus status) {
  if (status == exec::RunStatus::kCancelled) {
    throw exec::CancelledError("exec task cancelled before it ran");
  }
  throw exec::DependencyError("an upstream exec task failed");
}

/// Canonical node-body shape: run `work` and fulfill `promise` with its
/// result, or on any failure (bad status, thrown error) run `cleanup`,
/// complete the promise with the error, and rethrow so the graph marks
/// the node failed and poisons dependents. BackoffYield passes through
/// untouched — the promise stays pending across the re-arm.
template <typename T, typename Work, typename Cleanup>
void complete_node(const exec::Promise<T>& promise, exec::RunStatus status,
                   Work&& work, Cleanup&& cleanup) {
  try {
    if (status != exec::RunStatus::kOk) rethrow_status(status);
    promise.set_value(work());
  } catch (const exec::BackoffYield&) {
    throw;  // the timer re-runs this body; nothing is complete yet
  } catch (...) {
    cleanup();
    promise.set_exception(std::current_exception());
    throw;
  }
}

}  // namespace

exec::TaskGraph& ExecContext::graph() {
  NU_CHECK(rt_.graph_ != nullptr,
           "ExecContext DAG API used outside Runtime::run");
  return *rt_.graph_;
}

bool ExecContext::pipelined() const {
  return rt_.graph_ != nullptr && rt_.graph_->is_async();
}

exec::Future<exec::Unit> ExecContext::submit(
    std::function<void()> fn, std::vector<exec::TaskHandle> deps) {
  NU_CHECK(fn != nullptr, "submit requires a body");
  exec::Promise<exec::Unit> promise;
  exec::TaskHandle task = graph().add(
      [promise, fn = std::move(fn)](exec::RunStatus status) {
        complete_node(
            promise, status,
            [&] {
              // An arbitrary body is not safe to re-run from the top, so
              // retries inside it must sleep rather than yield.
              exec::YieldInhibitScope no_yield;
              fn();
              return exec::Unit{};
            },
            [] {});
      },
      std::move(deps));
  return promise.future(task);
}

exec::Future<data::ScopedBuffer> ExecContext::move_down_async(
    const data::Buffer& src, topo::NodeId dst_node, data::CopySpec spec,
    std::vector<exec::TaskHandle> deps) {
  NU_CHECK(spec.size > 0, "move_down_async requires spec.size");
  data::DataManager& dm = rt_.dm();
  // Claim the staging space on the submitting thread (see header): the
  // node performs only the copy. The shared_ptr keeps the buffer alive
  // through a BackoffYield re-arm; ownership moves out through the
  // promise on success.
  auto staged = std::make_shared<data::ScopedBuffer>(
      dm, spec.dst_offset + spec.size, dst_node);
  exec::Promise<data::ScopedBuffer> promise;
  exec::TaskHandle task = graph().add(
      [promise, staged, &dm, src, spec](exec::RunStatus status) {
        complete_node(
            promise, status,
            [&] {
              dm.move_data_down(staged->get(), src, spec);
              return std::move(*staged);
            },
            [&] { staged->reset(); });
      },
      std::move(deps));
  return promise.future(task);
}

exec::Future<data::ScopedShard> ExecContext::move_down_cached_async(
    const data::Buffer& src, topo::NodeId child, std::uint64_t size,
    std::uint64_t src_offset, std::vector<exec::TaskHandle> deps) {
  data::DataManager& dm = rt_.dm();
  exec::Promise<data::ScopedShard> promise;
  exec::TaskHandle task = graph().add(
      [promise, &dm, src, child, size, src_offset](exec::RunStatus status) {
        complete_node(
            promise, status,
            [&] {
              // A cache acquisition is not re-runnable mid-fill, so
              // retries inside it must sleep rather than yield.
              exec::YieldInhibitScope no_yield;
              data::Buffer* shard =
                  dm.move_data_down_cached(src, child, size, src_offset);
              return data::ScopedShard(dm, shard);
            },
            [] {});
      },
      std::move(deps));
  return promise.future(task);
}

exec::Future<exec::Unit> ExecContext::move_up_async(
    data::Buffer& dst, data::ScopedBuffer src, data::CopySpec spec,
    std::vector<exec::TaskHandle> deps) {
  NU_CHECK(src.valid(), "move_up_async requires a valid source buffer");
  if (spec.size == 0) spec.size = src.size() - spec.src_offset;
  data::DataManager& dm = rt_.dm();
  auto held = std::make_shared<data::ScopedBuffer>(std::move(src));
  data::Buffer* dst_ptr = &dst;  // the caller keeps dst alive across the run
  exec::Promise<exec::Unit> promise;
  exec::TaskHandle task = graph().add(
      [promise, held, &dm, dst_ptr, spec](exec::RunStatus status) {
        complete_node(
            promise, status,
            [&] {
              dm.move_data_up(*dst_ptr, held->get(), spec);
              held->reset();  // staging slot freed the moment the copy lands
              return exec::Unit{};
            },
            [&] { held->reset(); });
      },
      std::move(deps));
  return promise.future(task);
}

exec::Future<exec::Unit> ExecContext::run_async(
    topo::NodeId child_node, std::function<void(ExecContext&)> fn,
    std::vector<exec::TaskHandle> deps) {
  NU_CHECK(fn != nullptr, "run_async requires a body");
  Runtime* rt = &rt_;
  const topo::NodeId node = node_;
  exec::Promise<exec::Unit> promise;
  exec::TaskHandle task = graph().add(
      [promise, rt, node, child_node,
       fn = std::move(fn)](exec::RunStatus status) {
        complete_node(
            promise, status,
            [&] {
              // The spawned chunk is one unit of work: re-running the
              // body would re-spawn it, so retries inside must sleep
              // rather than yield the worker.
              exec::YieldInhibitScope no_yield;
              ExecContext parent(*rt, node);
              parent.northup_spawn(child_node, fn);
              return exec::Unit{};
            },
            [] {});
      },
      std::move(deps));
  return promise.future(task);
}

exec::Future<exec::Unit> ExecContext::launch_async(
    device::Processor& proc, std::string label, std::uint32_t num_groups,
    device::KernelFn kernel, device::KernelCost cost,
    std::vector<sim::TaskId> sim_deps, std::vector<exec::TaskHandle> deps) {
  exec::Promise<exec::Unit> promise;
  exec::TaskHandle task = graph().add(
      [promise, &proc, label = std::move(label), num_groups,
       kernel = std::move(kernel), cost,
       sim_deps = std::move(sim_deps)](exec::RunStatus status) {
        complete_node(
            promise, status,
            [&] {
              exec::YieldInhibitScope no_yield;
              proc.launch(label, num_groups, kernel, cost, sim_deps);
              return exec::Unit{};
            },
            [] {});
      },
      std::move(deps));
  return promise.future(task);
}

}  // namespace northup::core
