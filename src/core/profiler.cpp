#include "northup/core/profiler.hpp"

#include <sstream>

#include "northup/util/bytes.hpp"

namespace northup::core {

Breakdown Breakdown::from(const sim::EventSim& sim) {
  Breakdown b;
  for (const auto& [phase, total] : sim.phase_totals()) {
    if (phase == "cpu") b.cpu = total;
    else if (phase == "gpu") b.gpu = total;
    else if (phase == "setup") b.setup = total;
    else if (phase == "transfer") b.transfer = total;
    else if (phase == "io") b.io = total;
    else if (phase == "runtime") b.runtime = total;
  }
  b.makespan = sim.makespan();
  return b;
}

double Breakdown::component_total() const {
  return cpu + gpu + setup + transfer + io + runtime;
}

std::map<std::string, double> Breakdown::shares() const {
  const double total = component_total();
  std::map<std::string, double> result;
  if (total <= 0.0) return result;
  result["cpu"] = cpu / total;
  result["gpu"] = gpu / total;
  result["setup"] = setup / total;
  result["transfer"] = transfer / total;
  result["io"] = io / total;
  result["runtime"] = runtime / total;
  return result;
}

double Breakdown::runtime_overhead_fraction() const {
  const double total = component_total();
  return total > 0.0 ? runtime / total : 0.0;
}

std::string Breakdown::to_string() const {
  std::ostringstream os;
  os << "makespan=" << util::format_seconds(makespan)
     << " cpu=" << util::format_seconds(cpu)
     << " gpu=" << util::format_seconds(gpu)
     << " setup=" << util::format_seconds(setup)
     << " transfer=" << util::format_seconds(transfer)
     << " io=" << util::format_seconds(io)
     << " runtime=" << util::format_seconds(runtime);
  return os.str();
}

}  // namespace northup::core
