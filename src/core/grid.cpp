#include "northup/core/grid.hpp"

namespace northup::core {

void grid_map(ExecContext& ctx, const GridJob& job, const data::MatView& in,
              const data::MatView& out, const GridLeafFn& leaf) {
  NU_CHECK(job.rows > 0 && job.cols > 0 && job.elem_size > 0,
           "grid_map on empty job");

  if (ctx.is_leaf()) {
    NU_CHECK(in.buf != nullptr && out.buf != nullptr, "null grid view");
    // At the leaf the views are dense chunk buffers by construction.
    leaf(ctx, *in.buf, *out.buf, job.rows, job.cols);
    return;
  }

  auto& dm = ctx.dm();
  const topo::NodeId child = ctx.child(0);
  // Listing 3: the chunk grid (get_x() x get_y()) follows from the
  // child's free capacity; two buffers (in + out) travel per chunk.
  const GridDims grid =
      choose_grid(job.rows, job.cols, job.elem_size, 2,
                  ctx.available_bytes(child), job.capacity_safety);

  const std::uint64_t chunk_r = ceil_div(job.rows, grid.x);
  const std::uint64_t chunk_c = ceil_div(job.cols, grid.y);

  for (std::uint64_t gi = 0; gi < grid.x; ++gi) {
    for (std::uint64_t gj = 0; gj < grid.y; ++gj) {
      const std::uint64_t r0 = gi * chunk_r;
      const std::uint64_t c0 = gj * chunk_c;
      if (r0 >= job.rows || c0 >= job.cols) continue;
      const std::uint64_t h = std::min(chunk_r, job.rows - r0);
      const std::uint64_t w = std::min(chunk_c, job.cols - c0);
      const std::uint64_t row_bytes = w * job.elem_size;

      // setup_buffer(): space for the chunk at the child level.
      data::Buffer cin = dm.alloc(h * row_bytes, child);
      data::Buffer cout = dm.alloc(h * row_bytes, child);

      // data_down(): index() locates the chunk in the parent view.
      const data::MatView src{in.buf,
                               in.offset + r0 * in.pitch + c0 * job.elem_size,
                               in.pitch};
      data::move_submatrix(dm, {&cin, 0, row_bytes}, src, h, row_bytes);

      // northup_spawn(myfunction(...)): recurse with the chunk as the
      // child's whole (dense) dataset.
      ctx.northup_spawn(child, [&](ExecContext& cctx) {
        GridJob sub = job;
        sub.rows = h;
        sub.cols = w;
        grid_map(cctx, sub, {&cin, 0, row_bytes}, {&cout, 0, row_bytes},
                 leaf);
      });

      // data_up(): result back into the parent's output view.
      const data::MatView dst{
          out.buf, out.offset + r0 * out.pitch + c0 * job.elem_size,
          out.pitch};
      data::move_submatrix(dm, dst, {&cout, 0, row_bytes}, h, row_bytes);

      dm.release(cin);
      dm.release(cout);
    }
  }
}

void grid_map(ExecContext& ctx, const GridJob& job, data::Buffer& in,
              data::Buffer& out, const GridLeafFn& leaf) {
  const std::uint64_t pitch = job.cols * job.elem_size;
  NU_CHECK(in.size() >= job.rows * pitch && out.size() >= job.rows * pitch,
           "grid buffers smaller than the dataset");
  grid_map(ctx, job, data::MatView{&in, 0, pitch},
           data::MatView{&out, 0, pitch}, leaf);
}

}  // namespace northup::core
