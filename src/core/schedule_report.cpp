#include "northup/core/schedule_report.hpp"

#include <algorithm>
#include <sstream>

#include "northup/util/bytes.hpp"
#include "northup/util/table.hpp"

namespace northup::core {

ScheduleReport ScheduleReport::from(const sim::EventSim& sim) {
  ScheduleReport report;
  report.makespan = sim.makespan();

  for (sim::ResourceId r = 0; r < sim.resource_count(); ++r) {
    ResourceUtilization u;
    u.name = sim.resource_name(r);
    u.busy_seconds = sim.resource_busy(r);
    u.utilization =
        report.makespan > 0.0 ? u.busy_seconds / report.makespan : 0.0;
    report.serialized_total += u.busy_seconds;
    report.resources.push_back(std::move(u));
  }
  std::sort(report.resources.begin(), report.resources.end(),
            [](const auto& a, const auto& b) {
              return a.busy_seconds > b.busy_seconds;
            });
  report.parallelism = report.makespan > 0.0
                           ? report.serialized_total / report.makespan
                           : 0.0;

  const auto path = sim.critical_path();
  report.critical_path_length = path.size();
  for (const auto id : path) {
    const auto& spec = sim.task(id);
    report.critical_path_by_phase[spec.phase] += spec.duration;
  }
  return report;
}

std::string ScheduleReport::to_string() const {
  std::ostringstream os;
  os << "makespan " << util::format_seconds(makespan) << ", serialized "
     << util::format_seconds(serialized_total) << ", parallelism "
     << util::TextTable::num(parallelism, 2) << "x\n";

  util::TextTable engines;
  engines.set_header({"engine", "busy", "utilization"});
  for (const auto& r : resources) {
    engines.add_row({r.name, util::format_seconds(r.busy_seconds),
                     util::TextTable::num(r.utilization * 100.0, 1) + "%"});
  }
  os << engines.render();

  os << "critical path (" << critical_path_length << " tasks):";
  for (const auto& [phase, seconds] : critical_path_by_phase) {
    os << ' ' << phase << '='
       << util::TextTable::num(
              makespan > 0.0 ? seconds / makespan * 100.0 : 0.0, 1)
       << '%';
  }
  os << '\n';
  return os.str();
}

}  // namespace northup::core
