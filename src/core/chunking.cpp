#include "northup/core/chunking.hpp"

namespace northup::core {

std::uint64_t choose_chunk_count(std::uint64_t total_bytes,
                                 std::uint64_t child_available,
                                 std::uint64_t copies, double safety) {
  NU_CHECK(total_bytes > 0, "empty working set");
  NU_CHECK(copies > 0, "copies must be positive");
  NU_CHECK(safety > 0.0 && safety <= 1.0, "safety must be in (0, 1]");
  const auto budget = static_cast<std::uint64_t>(
      static_cast<double>(child_available) * safety);
  NU_CHECK(budget >= copies, "child capacity too small for any chunk");
  const std::uint64_t per_chunk_budget = budget / copies;
  return ceil_div(total_bytes, per_chunk_budget);
}

GridDims choose_grid(std::uint64_t rows, std::uint64_t cols,
                     std::uint64_t elem_bytes,
                     std::uint64_t buffers_per_chunk,
                     std::uint64_t child_available, double safety) {
  NU_CHECK(rows > 0 && cols > 0 && elem_bytes > 0, "empty matrix");
  NU_CHECK(buffers_per_chunk > 0, "buffers_per_chunk must be positive");
  NU_CHECK(safety > 0.0 && safety <= 1.0, "safety must be in (0, 1]");

  const double budget = static_cast<double>(child_available) * safety /
                        static_cast<double>(buffers_per_chunk);
  NU_CHECK(budget >= static_cast<double>(elem_bytes),
           "child capacity too small for a single element");

  GridDims grid;
  auto chunk_bytes = [&](const GridDims& g) {
    return static_cast<double>(ceil_div(rows, g.x)) *
           static_cast<double>(ceil_div(cols, g.y)) *
           static_cast<double>(elem_bytes);
  };
  while (chunk_bytes(grid) > budget) {
    // Split the dimension whose chunk extent is currently longer; ties
    // split x. Stop refining a dimension once it is down to single rows
    // or columns.
    const std::uint64_t chunk_r = ceil_div(rows, grid.x);
    const std::uint64_t chunk_c = ceil_div(cols, grid.y);
    if (chunk_r >= chunk_c && chunk_r > 1) {
      ++grid.x;
    } else if (chunk_c > 1) {
      ++grid.y;
    } else if (chunk_r > 1) {
      ++grid.x;
    } else {
      NU_CHECK(false, "cannot decompose to fit child capacity");
    }
  }
  return grid;
}

}  // namespace northup::core
