#include "northup/core/balancer.hpp"

#include <algorithm>

namespace northup::core {

topo::NodeId SubtreeBalancer::pick_child(topo::NodeId node) {
  const auto& children = rt_.tree().get_children_list(node);
  NU_CHECK(!children.empty(), "pick_child on a leaf node");

  topo::NodeId best = children.front();
  std::size_t best_pending = rt_.queues().subtree_pending(best);
  // Dispatch history breaks the all-queues-empty tie (the synchronous
  // runtime drains each queue immediately, so pending alone would always
  // route to the first child).
  std::uint64_t best_dispatched = dispatch_counts_[best];
  std::uint64_t best_avail = rt_.dm().storage(best).available();

  for (std::size_t i = 1; i < children.size(); ++i) {
    const topo::NodeId child = children[i];
    const std::size_t pending = rt_.queues().subtree_pending(child);
    const std::uint64_t dispatched = dispatch_counts_[child];
    const std::uint64_t avail = rt_.dm().storage(child).available();
    const bool better =
        pending < best_pending ||
        (pending == best_pending &&
         (dispatched < best_dispatched ||
          (dispatched == best_dispatched && avail > best_avail)));
    if (better) {
      best = child;
      best_pending = pending;
      best_dispatched = dispatched;
      best_avail = avail;
    }
  }
  return best;
}

void SubtreeBalancer::balanced_spawn(
    ExecContext& ctx, std::uint64_t chunk_count,
    const std::function<void(ExecContext&, std::uint64_t)>& body) {
  for (std::uint64_t i = 0; i < chunk_count; ++i) {
    const topo::NodeId target = pick_child(ctx.get_cur_treenode());
    ++dispatch_counts_[target];
    ctx.northup_spawn(target, [&body, i](ExecContext& child_ctx) {
      body(child_ctx, i);
    });
  }
}

void SubtreeBalancer::balanced_spawn_weighted(
    ExecContext& ctx, std::uint64_t chunk_count, double work_per_chunk,
    const std::map<topo::NodeId, double>& speeds,
    const std::function<void(ExecContext&, std::uint64_t)>& body) {
  const auto& children = rt_.tree().get_children_list(ctx.get_cur_treenode());
  NU_CHECK(!children.empty(), "balanced_spawn_weighted on a leaf node");
  NU_CHECK(work_per_chunk > 0.0, "chunk work must be positive");
  for (const topo::NodeId child : children) {
    NU_CHECK(speeds.count(child) != 0 && speeds.at(child) > 0.0,
             "missing or non-positive speed for child '" +
                 rt_.tree().node(child).name + "'");
  }

  for (std::uint64_t i = 0; i < chunk_count; ++i) {
    topo::NodeId best = children.front();
    double best_finish =
        (assigned_work_[best] + work_per_chunk) / speeds.at(best);
    for (std::size_t k = 1; k < children.size(); ++k) {
      const topo::NodeId child = children[k];
      const double finish =
          (assigned_work_[child] + work_per_chunk) / speeds.at(child);
      if (finish < best_finish) {
        best = child;
        best_finish = finish;
      }
    }
    assigned_work_[best] += work_per_chunk;
    ++dispatch_counts_[best];
    ctx.northup_spawn(best, [&body, i](ExecContext& child_ctx) {
      body(child_ctx, i);
    });
  }
}

double subtree_speed(Runtime& rt, topo::NodeId node,
                     const device::KernelCost& cost) {
  topo::NodeId cur = node;
  while (true) {
    const auto procs = rt.processors_at(cur);
    if (!procs.empty()) {
      // Prefer the fastest processor at this node for the given cost.
      double best = 0.0;
      for (auto* proc : procs) {
        const double t = proc->kernel_seconds(16, cost);
        best = std::max(best, 1.0 / t);
      }
      return best;
    }
    const auto& kids = rt.tree().get_children_list(cur);
    if (kids.empty()) {
      throw util::TopologyError("no processor below node '" +
                                rt.tree().node(cur).name + "'");
    }
    cur = kids.front();
  }
}

}  // namespace northup::core
