#include "northup/core/adaptive.hpp"

#include "northup/util/assert.hpp"

namespace northup::core {

AdaptiveMapper::AdaptiveMapper(double alpha) : alpha_(alpha) {
  NU_CHECK(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
}

void AdaptiveMapper::observe(const device::Processor* proc,
                             double work_units, double seconds) {
  NU_CHECK(proc != nullptr, "observe on null processor");
  NU_CHECK(seconds > 0.0 && work_units > 0.0,
           "observation must have positive work and time");
  Entry& e = entries_[proc];
  const double sample = work_units / seconds;
  e.throughput = e.count == 0
                     ? sample
                     : (1.0 - alpha_) * e.throughput + alpha_ * sample;
  ++e.count;
}

device::Processor* AdaptiveMapper::pick(
    const std::vector<device::Processor*>& candidates) {
  NU_CHECK(!candidates.empty(), "pick from empty candidate set");
  // Probe any unprofiled processor first.
  for (auto* proc : candidates) {
    if (entries_.find(proc) == entries_.end()) return proc;
  }
  device::Processor* best = candidates.front();
  double best_tp = entries_[best].throughput;
  for (auto* proc : candidates) {
    const double tp = entries_[proc].throughput;
    if (tp > best_tp) {
      best = proc;
      best_tp = tp;
    }
  }
  return best;
}

double AdaptiveMapper::throughput(const device::Processor* proc) const {
  auto it = entries_.find(proc);
  return it == entries_.end() ? 0.0 : it->second.throughput;
}

std::size_t AdaptiveMapper::observations(
    const device::Processor* proc) const {
  auto it = entries_.find(proc);
  return it == entries_.end() ? 0 : it->second.count;
}

}  // namespace northup::core
