#include "northup/core/observability.hpp"

namespace northup::core {

namespace {

/// Tags come from free-form run labels ("ssd 1400/600"); keep them
/// filename-safe.
std::string sanitize_tag(const std::string& tag) {
  std::string out;
  out.reserve(tag.size());
  for (char c : tag) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '-');
  }
  return out;
}

std::string with_tag(const std::string& path, const std::string& raw_tag) {
  const std::string tag = sanitize_tag(raw_tag);
  if (tag.empty()) return path;
  const auto slash = path.find_last_of('/');
  const auto dot = path.rfind('.');
  if (dot == std::string::npos || dot == 0 ||
      (slash != std::string::npos && dot < slash)) {
    return path + "." + tag;
  }
  return path.substr(0, dot) + "." + tag + path.substr(dot);
}

}  // namespace

void dump_observability(Runtime& rt, const util::Flags& flags,
                        const std::string& tag) {
  const std::string trace = flags.get("trace-out");
  if (!trace.empty()) rt.write_chrome_trace(with_tag(trace, tag));
  const std::string metrics = flags.get("metrics-out");
  if (!metrics.empty()) rt.write_metrics_json(with_tag(metrics, tag));
  const std::string eventlog = flags.get("eventlog-out");
  if (!eventlog.empty()) rt.write_event_log(with_tag(eventlog, tag));
  const std::string prom = flags.get("prom-out");
  if (!prom.empty()) rt.write_prometheus(with_tag(prom, tag));
}

}  // namespace northup::core
