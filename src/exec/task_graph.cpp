#include "northup/exec/task_graph.hpp"

#include <algorithm>

namespace northup::exec {

namespace {

/// Thread-local identity of the node body currently executing on this
/// thread (BackoffYield / resume-state support).
struct RunningNode {
  TaskGraph* graph = nullptr;
  std::shared_ptr<TaskGraph::ResumeState>* resume_slot = nullptr;
  bool can_yield = false;
};

thread_local RunningNode tls_running;

/// RAII installer for tls_running around a body invocation.
class RunningScope {
 public:
  RunningScope(TaskGraph* graph, std::shared_ptr<TaskGraph::ResumeState>* slot,
               bool can_yield) {
    prev_ = tls_running;
    tls_running = RunningNode{graph, slot, can_yield};
  }
  ~RunningScope() { tls_running = prev_; }
  RunningScope(const RunningScope&) = delete;
  RunningScope& operator=(const RunningScope&) = delete;

 private:
  RunningNode prev_;
};

}  // namespace

YieldInhibitScope::YieldInhibitScope() : prev_(tls_running.can_yield) {
  tls_running.can_yield = false;
}

YieldInhibitScope::~YieldInhibitScope() { tls_running.can_yield = prev_; }

TaskGraph::TaskGraph(sched::WorkStealingPool* pool) : pool_(pool) {}

TaskGraph::~TaskGraph() {
  wait_all();
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timer_stop_ = true;
    timer_cv_.notify_all();
  }
  if (timer_thread_.joinable()) timer_thread_.join();
}

bool TaskGraph::current_can_yield() { return tls_running.can_yield; }

TaskGraph::ResumeState* TaskGraph::current_resume() {
  if (tls_running.resume_slot == nullptr) return nullptr;
  if (!*tls_running.resume_slot) {
    *tls_running.resume_slot = std::make_shared<ResumeState>();
  }
  return tls_running.resume_slot->get();
}

std::size_t TaskGraph::task_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.size();
}

std::exception_ptr TaskGraph::first_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

TaskHandle TaskGraph::add(Body body, std::vector<TaskHandle> deps) {
  NU_CHECK(body != nullptr, "exec::TaskGraph::add requires a body");
  std::uint32_t idx = 0;
  bool ready = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
    Node& n = nodes_.back();
    n.body = std::move(body);
    n.build_ctx = obs::EventLog::current_context();
    if (cancelled_) n.cancelled = true;
    for (const TaskHandle& d : deps) {
      if (!d.valid()) continue;  // "previous iteration" sentinel
      NU_CHECK(d.graph == this,
               "exec dependency handle belongs to another TaskGraph");
      NU_CHECK(d.node < idx, "exec dependency on a later node");
      Node& dep = nodes_[d.node];
      if (dep.done) {
        if (dep.failed) n.poisoned = true;
      } else {
        ++n.pending;
        dep.dependents.push_back(idx);
      }
    }
    ready = n.pending == 0;
    ++outstanding_;
  }
  if (ready) dispatch({idx});
  return TaskHandle{this, idx};
}

void TaskGraph::dispatch(const std::vector<std::uint32_t>& ready) {
  std::exception_ptr pending_throw;
  for (std::uint32_t idx : ready) {
    if (pool_ != nullptr) {
      pool_->submit([this, idx] { run_node(idx); });
    } else {
      // Inline mode: run on the thread that made the node ready. A chain
      // of dependents unwinds recursively through finish_node/dispatch,
      // preserving program order exactly. A genuine body failure rethrows
      // out of run_node so the submitting caller aborts at the submission
      // site, like the blocking call it replaced — but only after every
      // already-ready sibling has drained (their state must settle before
      // the error unwinds).
      try {
        run_node(idx);
      } catch (...) {
        if (!pending_throw) pending_throw = std::current_exception();
      }
    }
  }
  if (pending_throw) std::rethrow_exception(pending_throw);
}

void TaskGraph::run_node(std::uint32_t idx) {
  RunStatus status = RunStatus::kOk;
  obs::EventLog::Context ctx;
  Node* n = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = &nodes_[idx];
    n->started = true;
    if (n->cancelled || cancelled_) {
      status = RunStatus::kCancelled;
    } else if (n->poisoned) {
      status = RunStatus::kDepFailed;
    }
    ctx = n->has_ready_ctx ? n->ready_ctx : n->build_ctx;
  }
  bool failed = status != RunStatus::kOk;
  std::exception_ptr own_error;
  {
    // Span parents follow DAG edges: run under the last-finishing
    // dependency's span (falling back to the submit-site span).
    obs::SpanAdopt adopt(ctx);
    RunningScope running(this, &n->resume_state, pool_ != nullptr);
    try {
      n->body(status);
    } catch (const BackoffYield& yield) {
      arm_timer(idx, yield.delay_s);
      return;  // node not finished; the timer re-runs it
    } catch (...) {
      failed = true;
      // Only a body that failed with satisfied dependencies is a root
      // cause; poisoned/cancelled bodies rethrow their status and are
      // downstream symptoms.
      if (status == RunStatus::kOk) own_error = std::current_exception();
    }
  }
  if (own_error) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = own_error;
  }
  finish_node(idx, failed, ctx);
  // Inline mode keeps blocking-call failure semantics: the error unwinds
  // through add() to the submitting caller (dependents were poisoned and
  // drained by finish_node above).
  if (own_error && pool_ == nullptr) std::rethrow_exception(own_error);
}

void TaskGraph::finish_node(std::uint32_t idx, bool failed,
                            const obs::EventLog::Context& ran_under) {
  std::vector<std::uint32_t> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Node& n = nodes_[idx];
    n.done = true;
    n.failed = failed;
    n.body = nullptr;  // release captures (buffers, promises) promptly
    n.resume_state.reset();
    for (std::uint32_t d : n.dependents) {
      Node& dn = nodes_[d];
      if (failed) dn.poisoned = true;
      // Last-finishing dependency wins: by the time the dependent is
      // ready this field holds the span that actually gated its start.
      dn.ready_ctx = ran_under;
      dn.has_ready_ctx = true;
      NU_ASSERT(dn.pending > 0);
      if (--dn.pending == 0) ready.push_back(d);
    }
    NU_ASSERT(outstanding_ > 0);
    --outstanding_;
    cv_.notify_all();
  }
  dispatch(ready);
}

void TaskGraph::wait(TaskHandle task) {
  NU_CHECK(task.graph == this && task.node != kInvalidTaskNode,
           "exec::TaskGraph::wait on a foreign or invalid handle");
  std::unique_lock<std::mutex> lock(mu_);
  NU_CHECK(task.node < nodes_.size(), "exec wait on an unknown node");
  cv_.wait(lock, [&] { return nodes_[task.node].done; });
}

void TaskGraph::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return outstanding_ == 0; });
}

void TaskGraph::cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_ = true;
  for (Node& n : nodes_) {
    if (!n.started) n.cancelled = true;
  }
}

void TaskGraph::cancel_node(std::uint32_t node) {
  std::lock_guard<std::mutex> lock(mu_);
  NU_CHECK(node < nodes_.size(), "exec cancel of an unknown node");
  if (!nodes_[node].started) nodes_[node].cancelled = true;
}

void TaskGraph::arm_timer(std::uint32_t idx, double delay_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(delay_s, 0.0)));
  std::lock_guard<std::mutex> lock(timer_mu_);
  timed_.emplace(deadline, idx);
  if (!timer_thread_.joinable()) {
    timer_thread_ = std::thread([this] { timer_loop(); });
  }
  timer_cv_.notify_all();
}

void TaskGraph::timer_loop() {
  std::unique_lock<std::mutex> lock(timer_mu_);
  while (true) {
    if (timer_stop_ && timed_.empty()) return;
    if (timed_.empty()) {
      timer_cv_.wait(lock, [&] { return timer_stop_ || !timed_.empty(); });
      continue;
    }
    const auto deadline = timed_.begin()->first;
    if (timer_cv_.wait_until(lock, deadline, [&] {
          return timed_.empty() || timed_.begin()->first < deadline;
        })) {
      continue;  // earlier deadline arrived (or everything drained)
    }
    std::vector<std::uint32_t> due;
    const auto now = std::chrono::steady_clock::now();
    while (!timed_.empty() && timed_.begin()->first <= now) {
      due.push_back(timed_.begin()->second);
      timed_.erase(timed_.begin());
    }
    lock.unlock();
    try {
      dispatch(due);
    } catch (...) {
      // Inline re-dispatch off the timer thread has no caller to unwind
      // to; the failure is already recorded as the run's first_error_.
    }
    lock.lock();
  }
}

}  // namespace northup::exec
