#include "northup/memsim/projection.hpp"

#include "northup/util/assert.hpp"

namespace northup::mem {

double replay_trace_time(const std::vector<IoRecord>& trace,
                         const sim::BandwidthModel& model) {
  double total = 0.0;
  for (const auto& rec : trace) {
    total += rec.is_write ? model.write_time(rec.bytes)
                          : model.read_time(rec.bytes);
  }
  return total;
}

ProjectionPoint project_storage(const std::vector<IoRecord>& trace,
                                const sim::BandwidthModel& new_model,
                                double baseline_io_time,
                                double baseline_total_time,
                                std::string label) {
  NU_CHECK(baseline_total_time >= baseline_io_time,
           "total time cannot be smaller than its I/O component");
  ProjectionPoint point;
  point.label = std::move(label);
  point.io_time = replay_trace_time(trace, new_model);
  point.overall_time =
      (baseline_total_time - baseline_io_time) + point.io_time;
  return point;
}

std::vector<sim::BandwidthModel> fig9_storage_sweep() {
  return {
      sim::ModelPresets::ssd(1400, 600),  sim::ModelPresets::ssd(2000, 1000),
      sim::ModelPresets::ssd(2600, 1500), sim::ModelPresets::ssd(3100, 1800),
      sim::ModelPresets::ssd(3500, 2100),
  };
}

std::vector<std::string> fig9_storage_labels() {
  return {"1400/600", "2000/1000", "2600/1500", "3100/1800", "3500/2100"};
}

}  // namespace northup::mem
