#include "northup/memsim/fault_injection.hpp"

namespace northup::mem {

FaultInjectingStorage::FaultInjectingStorage(std::unique_ptr<Storage> inner)
    : Storage(inner->name() + "+faults", inner->kind(), inner->capacity(),
              inner->model()),
      inner_(std::move(inner)) {}

void FaultInjectingStorage::arm(FaultKind kind, std::uint64_t countdown) {
  NU_CHECK(countdown > 0, "fault countdown must be positive");
  armed_ = true;
  kind_ = kind;
  countdown_ = countdown;
}

void FaultInjectingStorage::disarm() { armed_ = false; }

void FaultInjectingStorage::maybe_fire(FaultKind kind) {
  if (!armed_ || kind != kind_) return;
  if (--countdown_ == 0) {
    armed_ = false;
    ++fired_;
    throw util::IoError("injected " +
                        std::string(kind == FaultKind::Read    ? "read"
                                    : kind == FaultKind::Write ? "write"
                                                               : "alloc") +
                        " fault on '" + name() + "'");
  }
}

std::uint64_t FaultInjectingStorage::do_alloc(std::uint64_t size) {
  maybe_fire(FaultKind::Alloc);
  // Drive the inner backend through its public API and remember the
  // resulting allocation keyed by its handle.
  const Allocation allocation = inner_->alloc(size);
  allocations_.emplace(allocation.handle, allocation);
  return allocation.handle;
}

void FaultInjectingStorage::do_release(std::uint64_t handle) {
  auto it = allocations_.find(handle);
  NU_CHECK(it != allocations_.end(), "unknown handle in fault wrapper");
  inner_->release(it->second);
  allocations_.erase(it);
}

void FaultInjectingStorage::do_read(void* dst, std::uint64_t handle,
                                    std::uint64_t offset,
                                    std::uint64_t size) {
  maybe_fire(FaultKind::Read);
  auto it = allocations_.find(handle);
  NU_CHECK(it != allocations_.end(), "unknown handle in fault wrapper");
  inner_->read(dst, it->second, offset, size);
}

void FaultInjectingStorage::do_write(std::uint64_t handle,
                                     std::uint64_t offset, const void* src,
                                     std::uint64_t size) {
  maybe_fire(FaultKind::Write);
  auto it = allocations_.find(handle);
  NU_CHECK(it != allocations_.end(), "unknown handle in fault wrapper");
  inner_->write(it->second, offset, src, size);
}

}  // namespace northup::mem
