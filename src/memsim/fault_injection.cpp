#include "northup/memsim/fault_injection.hpp"

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

namespace northup::mem {

namespace {

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::Read:
      return "read";
    case FaultKind::Write:
      return "write";
    case FaultKind::Alloc:
      return "alloc";
  }
  return "?";
}

double rate_for(const FaultPlan& plan, FaultKind kind) {
  switch (kind) {
    case FaultKind::Read:
      return plan.read_fault_rate;
    case FaultKind::Write:
      return plan.write_fault_rate;
    case FaultKind::Alloc:
      return plan.alloc_fault_rate;
  }
  return 0.0;
}

}  // namespace

FaultInjectingStorage::FaultInjectingStorage(std::unique_ptr<Storage> inner)
    : Storage(inner->name() + "+faults", inner->kind(), inner->capacity(),
              inner->model()),
      inner_(std::move(inner)) {}

void FaultInjectingStorage::arm(FaultKind kind, std::uint64_t countdown) {
  NU_CHECK(countdown > 0, "fault countdown must be positive");
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = true;
  kind_ = kind;
  countdown_ = countdown;
}

void FaultInjectingStorage::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
}

void FaultInjectingStorage::set_plan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  rng_ = util::Xoshiro256(plan.seed);
  plan_fired_ = 0;
  burst_remaining_ = 0;
}

void FaultInjectingStorage::throw_fault(FaultKind kind, bool permanent) {
  fired_.fetch_add(1, std::memory_order_relaxed);
  // ENXIO ("no such device or address") is permanent-class per
  // util::errno_transient; EIO is transient — the retry loop absorbs it.
  const int err = permanent ? ENXIO : EIO;
  throw util::IoError("injected " + std::string(kind_name(kind)) +
                          " fault on '" + name() + "'",
                      err);
}

void FaultInjectingStorage::maybe_fire_locked(FaultKind kind) {
  // Legacy single-shot trigger: always permanent-class so failure
  // propagation and whole-job retry tests see exactly one fault.
  if (armed_ && kind == kind_ && --countdown_ == 0) {
    armed_ = false;
    throw_fault(kind, /*permanent=*/true);
  }
  if (!plan_.enabled()) return;
  if (plan_.latency_spike_rate > 0.0 && kind != FaultKind::Alloc &&
      rng_.uniform() < plan_.latency_spike_rate) {
    spiked_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(plan_.latency_spike_s));
  }
  if (burst_remaining_ > 0 && kind == burst_kind_) {
    --burst_remaining_;
    throw_fault(kind, plan_.permanent);
  }
  if (plan_.max_faults != 0 && plan_fired_ >= plan_.max_faults) return;
  const double rate = rate_for(plan_, kind);
  if (rate > 0.0 && rng_.uniform() < rate) {
    ++plan_fired_;
    if (plan_.transient_ops > 1) {
      burst_remaining_ = plan_.transient_ops - 1;
      burst_kind_ = kind;
    }
    throw_fault(kind, plan_.permanent);
  }
}

bool FaultInjectingStorage::plan_corrupts_locked(double rate) {
  if (!plan_.enabled() || rate <= 0.0) return false;
  if (plan_.max_faults != 0 && plan_fired_ >= plan_.max_faults) return false;
  if (rng_.uniform() >= rate) return false;
  ++plan_fired_;
  corrupted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultInjectingStorage::flip_bit_locked(std::byte* buf,
                                            std::uint64_t size) {
  const std::uint64_t bit = rng_.bounded(size * 8);
  buf[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
}

std::uint64_t FaultInjectingStorage::do_alloc(std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  maybe_fire_locked(FaultKind::Alloc);
  // Drive the inner backend through its public API and remember the
  // resulting allocation keyed by its handle.
  const Allocation allocation = inner_->alloc(size);
  allocations_.emplace(allocation.handle, allocation);
  return allocation.handle;
}

void FaultInjectingStorage::do_release(std::uint64_t handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = allocations_.find(handle);
  NU_CHECK(it != allocations_.end(), "unknown handle in fault wrapper");
  inner_->release(it->second);
  allocations_.erase(it);
}

void FaultInjectingStorage::do_read(void* dst, std::uint64_t handle,
                                    std::uint64_t offset,
                                    std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  maybe_fire_locked(FaultKind::Read);
  auto it = allocations_.find(handle);
  NU_CHECK(it != allocations_.end(), "unknown handle in fault wrapper");
  inner_->read(dst, it->second, offset, size);
  if (size > 0 && plan_corrupts_locked(plan_.read_corrupt_rate)) {
    flip_bit_locked(static_cast<std::byte*>(dst), size);
  }
}

void FaultInjectingStorage::do_write(std::uint64_t handle,
                                     std::uint64_t offset, const void* src,
                                     std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  maybe_fire_locked(FaultKind::Write);
  auto it = allocations_.find(handle);
  NU_CHECK(it != allocations_.end(), "unknown handle in fault wrapper");
  if (size > 0 && plan_corrupts_locked(plan_.write_corrupt_rate)) {
    std::vector<std::byte> tainted(size);
    std::memcpy(tainted.data(), src, size);
    flip_bit_locked(tainted.data(), size);
    inner_->write(it->second, offset, tainted.data(), size);
    return;
  }
  inner_->write(it->second, offset, src, size);
}

}  // namespace northup::mem
