#include "northup/memsim/mmap_storage.hpp"

#include <cstring>
#include <filesystem>

namespace northup::mem {

MmapStorage::MmapStorage(std::string name, StorageKind kind,
                         std::uint64_t capacity, sim::BandwidthModel model,
                         std::string dir, Options options)
    : Storage(std::move(name), kind, capacity, model), dir_(std::move(dir)),
      options_(options) {
  NU_CHECK(is_file_backed(kind), "MmapStorage requires a file-backed kind");
  NU_CHECK(std::filesystem::is_directory(dir_),
           "MmapStorage directory does not exist: '" + dir_ + "'");
}

void MmapStorage::attach_metrics(obs::MetricsRegistry& registry) {
  Storage::attach_metrics(registry);
  std::lock_guard<std::mutex> lock(map_mu_);
  mmap_metrics_.maps = &registry.counter("io.mmap.maps");
  mmap_metrics_.unmaps = &registry.counter("io.mmap.unmaps");
  mmap_metrics_.prefetches = &registry.counter("io.mmap.prefetches");
  mmap_metrics_.prefetched_bytes =
      &registry.counter("io.mmap.prefetched_bytes");
  mmap_metrics_.advices = &registry.counter("io.mmap.advices");
  mmap_metrics_.syncs = &registry.counter("io.mmap.syncs");
  mmap_metrics_.mapped_bytes = &registry.gauge("io.mmap.mapped_bytes");
  mmap_metrics_.mapped_bytes->set(static_cast<double>(mapped_bytes_));
}

io::MmapFile& MmapStorage::map_for(std::uint64_t handle) {
  std::lock_guard<std::mutex> lock(map_mu_);
  auto it = maps_.find(handle);
  NU_CHECK(it != maps_.end(), "unknown allocation handle on '" + name() +
                                  "'");
  return it->second;
}

std::byte* MmapStorage::mapped(const Allocation& allocation) {
  NU_CHECK(allocation.valid, "mapped() on invalid allocation");
  return map_for(allocation.handle).data();
}

bool MmapStorage::advise(const Allocation& allocation, io::Advice advice,
                         std::uint64_t offset, std::uint64_t len) {
  NU_CHECK(allocation.valid, "advise() on invalid allocation");
  const bool accepted = map_for(allocation.handle).advise(advice, offset, len);
  std::lock_guard<std::mutex> lock(map_mu_);
  if (mmap_metrics_.advices != nullptr) mmap_metrics_.advices->increment();
  return accepted;
}

std::uint64_t MmapStorage::prefetch(const Allocation& allocation,
                                    std::uint64_t offset, std::uint64_t len) {
  NU_CHECK(allocation.valid, "prefetch() on invalid allocation");
  const std::uint64_t walked =
      map_for(allocation.handle).prefetch(offset, len);
  std::lock_guard<std::mutex> lock(map_mu_);
  if (mmap_metrics_.prefetches != nullptr) {
    mmap_metrics_.prefetches->increment();
    mmap_metrics_.prefetched_bytes->add(walked);
  }
  return walked;
}

void MmapStorage::sync(const Allocation& allocation, bool wait) {
  NU_CHECK(allocation.valid, "sync() on invalid allocation");
  map_for(allocation.handle).sync(0, 0, wait);
  std::lock_guard<std::mutex> lock(map_mu_);
  if (mmap_metrics_.syncs != nullptr) mmap_metrics_.syncs->increment();
}

std::uint64_t MmapStorage::do_alloc(std::uint64_t size) {
  std::unique_lock<std::mutex> lock(map_mu_);
  const std::uint64_t handle = next_handle_++;
  lock.unlock();
  const auto path = (std::filesystem::path(dir_) /
                     (name() + "_map_" + std::to_string(handle) + ".bin"))
                        .string();
  io::MmapFile map(path, size, {.create = true, .truncate = true});
  if (options_.default_advice != io::Advice::kNormal) {
    map.advise(options_.default_advice);
  }
  if (options_.prefetch_on_alloc) map.prefetch();
  lock.lock();
  maps_.emplace(handle, std::move(map));
  mapped_bytes_ += size;
  if (mmap_metrics_.maps != nullptr) {
    mmap_metrics_.maps->increment();
    mmap_metrics_.mapped_bytes->set(static_cast<double>(mapped_bytes_));
    if (options_.prefetch_on_alloc) {
      mmap_metrics_.prefetches->increment();
      mmap_metrics_.prefetched_bytes->add(size);
    }
    if (options_.default_advice != io::Advice::kNormal) {
      mmap_metrics_.advices->increment();
    }
  }
  return handle;
}

void MmapStorage::do_release(std::uint64_t handle) {
  std::unique_lock<std::mutex> lock(map_mu_);
  auto it = maps_.find(handle);
  NU_CHECK(it != maps_.end(), "double release on '" + name() + "'");
  io::MmapFile map = std::move(it->second);
  maps_.erase(it);
  NU_ASSERT(mapped_bytes_ >= map.size());
  mapped_bytes_ -= map.size();
  if (mmap_metrics_.unmaps != nullptr) {
    mmap_metrics_.unmaps->increment();
    mmap_metrics_.mapped_bytes->set(static_cast<double>(mapped_bytes_));
  }
  lock.unlock();
  if (options_.drop_on_release) map.advise(io::Advice::kDontNeed);
  const std::string path = map.path();
  map.close();
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

void MmapStorage::do_read(void* dst, std::uint64_t handle,
                          std::uint64_t offset, std::uint64_t size) {
  std::memcpy(dst, map_for(handle).data() + offset, size);
}

void MmapStorage::do_write(std::uint64_t handle, std::uint64_t offset,
                           const void* src, std::uint64_t size) {
  std::memcpy(map_for(handle).data() + offset, src, size);
}

}  // namespace northup::mem
