#include "northup/memsim/storage.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <thread>

#include "northup/io/async_pool.hpp"

namespace northup::mem {

const char* to_string(StorageKind kind) {
  switch (kind) {
    case StorageKind::Dram: return "dram";
    case StorageKind::Nvm: return "nvm";
    case StorageKind::Ssd: return "ssd";
    case StorageKind::Hdd: return "hdd";
    case StorageKind::DeviceMem: return "device";
    case StorageKind::Scratchpad: return "scratchpad";
  }
  return "?";
}

bool is_file_backed(StorageKind kind) {
  return kind == StorageKind::Ssd || kind == StorageKind::Hdd;
}

bool is_host_addressable(StorageKind kind) {
  return kind == StorageKind::Dram || kind == StorageKind::Nvm;
}

namespace {

/// Stamps the failing backend's name on an escaping IoError (innermost
/// origin wins — a decorator re-throwing keeps the real source) so the
/// resilience layer can attribute the failure to a tree node.
template <typename Fn>
decltype(auto) with_origin(const std::string& name, Fn&& fn) {
  try {
    return fn();
  } catch (util::IoError& e) {
    if (e.origin().empty()) e.set_origin(name);
    throw;
  }
}

}  // namespace

Storage::Storage(std::string name, StorageKind kind, std::uint64_t capacity,
                 sim::BandwidthModel model)
    : name_(std::move(name)), kind_(kind), capacity_(capacity),
      model_(model) {
  NU_CHECK(capacity_ > 0, "storage capacity must be positive");
}

void Storage::attach_metrics(obs::MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string prefix = "storage." + name_ + ".";
  metrics_.bytes_read = &registry.counter(prefix + "bytes_read");
  metrics_.bytes_written = &registry.counter(prefix + "bytes_written");
  metrics_.reads = &registry.counter(prefix + "reads");
  metrics_.writes = &registry.counter(prefix + "writes");
  metrics_.allocs = &registry.counter(prefix + "allocs");
  metrics_.releases = &registry.counter(prefix + "releases");
  metrics_.peak_used = &registry.gauge(prefix + "peak_used_bytes");
  metrics_.peak_used->record_max(static_cast<double>(stats_.peak_used));
}

Allocation Storage::alloc(std::uint64_t size) {
  NU_CHECK(size > 0, "zero-byte allocation on '" + name_ + "'");
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t in_use = used_.load(std::memory_order_relaxed);
  if (in_use + size > capacity_) {
    throw util::CapacityError(
        "allocation of " + std::to_string(size) + " B exceeds capacity of '" +
        name_ + "' (" + std::to_string(capacity_ - in_use) + " B available)");
  }
  const std::uint64_t handle = with_origin(name_, [&] { return do_alloc(size); });
  used_.store(in_use + size, std::memory_order_relaxed);
  ++stats_.num_allocs;
  stats_.peak_used = std::max(stats_.peak_used, in_use + size);
  if (metrics_.allocs != nullptr) {
    metrics_.allocs->increment();
    metrics_.peak_used->record_max(static_cast<double>(stats_.peak_used));
  }
  return Allocation{handle, size, true};
}

void Storage::release(Allocation& allocation) {
  NU_CHECK(allocation.valid, "release of invalid allocation on '" + name_ +
                                 "'");
  std::lock_guard<std::mutex> lock(mu_);
  do_release(allocation.handle);
  NU_ASSERT(used_.load(std::memory_order_relaxed) >= allocation.size);
  used_.fetch_sub(allocation.size, std::memory_order_relaxed);
  ++stats_.num_releases;
  if (metrics_.releases != nullptr) metrics_.releases->increment();
  allocation = {};
}

void Storage::pace_until(std::chrono::steady_clock::time_point deadline) const {
  std::this_thread::sleep_until(deadline);  // past deadlines return at once
}

std::byte* Storage::mapped(const Allocation&) { return nullptr; }

void Storage::note_access(bool is_write, std::uint64_t bytes) {
  if (paced()) {
    const double cost =
        is_write ? model_.write_time(bytes) : model_.read_time(bytes);
    pace_until(std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(cost)));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (is_write) {
    stats_.bytes_written += bytes;
    ++stats_.num_writes;
    if (metrics_.writes != nullptr) {
      metrics_.writes->increment();
      metrics_.bytes_written->add(bytes);
    }
  } else {
    stats_.bytes_read += bytes;
    ++stats_.num_reads;
    if (metrics_.reads != nullptr) {
      metrics_.reads->increment();
      metrics_.bytes_read->add(bytes);
    }
  }
  if (trace_enabled_) trace_.push_back({is_write, bytes});
}

void Storage::read(void* dst, const Allocation& src, std::uint64_t offset,
                   std::uint64_t size) {
  NU_CHECK(src.valid, "read from invalid allocation on '" + name_ + "'");
  NU_CHECK(offset + size <= src.size,
           "read past end of allocation on '" + name_ + "'");
  const bool paced = this->paced();
  const auto deadline =
      paced ? std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(model_.read_time(size)))
            : std::chrono::steady_clock::time_point{};
  // The actual copy runs unlocked so concurrent accesses overlap; only
  // the accounting below serializes.
  with_origin(name_, [&] { do_read(dst, src.handle, offset, size); });
  if (paced) pace_until(deadline);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_read += size;
  ++stats_.num_reads;
  if (metrics_.reads != nullptr) {
    metrics_.reads->increment();
    metrics_.bytes_read->add(size);
  }
  if (trace_enabled_) trace_.push_back({false, size});
}

void Storage::write(Allocation& dst, std::uint64_t offset, const void* src,
                    std::uint64_t size) {
  NU_CHECK(dst.valid, "write to invalid allocation on '" + name_ + "'");
  NU_CHECK(offset + size <= dst.size,
           "write past end of allocation on '" + name_ + "'");
  const bool paced = this->paced();
  const auto deadline =
      paced ? std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(model_.write_time(size)))
            : std::chrono::steady_clock::time_point{};
  with_origin(name_, [&] { do_write(dst.handle, offset, src, size); });
  if (paced) pace_until(deadline);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_written += size;
  ++stats_.num_writes;
  if (metrics_.writes != nullptr) {
    metrics_.writes->increment();
    metrics_.bytes_written->add(size);
  }
  if (trace_enabled_) trace_.push_back({true, size});
}

// --- HostStorage -----------------------------------------------------------

HostStorage::HostStorage(std::string name, StorageKind kind,
                         std::uint64_t capacity, sim::BandwidthModel model)
    : Storage(std::move(name), kind, capacity, model) {
  NU_CHECK(!is_file_backed(kind),
           "HostStorage cannot back a file-based kind");
}

std::byte* HostStorage::bytes_for(std::uint64_t handle) {
  std::lock_guard<std::mutex> lock(map_mu_);
  auto it = buffers_.find(handle);
  NU_CHECK(it != buffers_.end(), "unknown allocation handle on '" + name() +
                                     "'");
  return it->second.data();
}

std::byte* HostStorage::raw(const Allocation& allocation) {
  NU_CHECK(allocation.valid, "raw() on invalid allocation");
  return bytes_for(allocation.handle);
}

std::byte* HostStorage::mapped(const Allocation& allocation) {
  return raw(allocation);
}

std::uint64_t HostStorage::do_alloc(std::uint64_t size) {
  util::AlignedBuffer buffer(size);
  std::lock_guard<std::mutex> lock(map_mu_);
  const std::uint64_t handle = next_handle_++;
  buffers_.emplace(handle, std::move(buffer));
  return handle;
}

void HostStorage::do_release(std::uint64_t handle) {
  std::lock_guard<std::mutex> lock(map_mu_);
  const auto erased = buffers_.erase(handle);
  NU_CHECK(erased == 1, "double release on '" + name() + "'");
}

void HostStorage::do_read(void* dst, std::uint64_t handle,
                          std::uint64_t offset, std::uint64_t size) {
  std::memcpy(dst, bytes_for(handle) + offset, size);
}

void HostStorage::do_write(std::uint64_t handle, std::uint64_t offset,
                           const void* src, std::uint64_t size) {
  std::memcpy(bytes_for(handle) + offset, src, size);
}

// --- FileStorage -----------------------------------------------------------

FileStorage::FileStorage(std::string name, StorageKind kind,
                         std::uint64_t capacity, sim::BandwidthModel model,
                         std::string dir, bool direct_io)
    : Storage(std::move(name), kind, capacity, model), dir_(std::move(dir)),
      direct_io_(direct_io) {
  NU_CHECK(is_file_backed(kind), "FileStorage requires a file-backed kind");
  NU_CHECK(std::filesystem::is_directory(dir_),
           "FileStorage directory does not exist: '" + dir_ + "'");
}

io::PosixFile& FileStorage::file_for(std::uint64_t handle) {
  std::lock_guard<std::mutex> lock(map_mu_);
  auto it = files_.find(handle);
  NU_CHECK(it != files_.end(), "unknown allocation handle on '" + name() +
                                   "'");
  return it->second;
}

std::uint64_t FileStorage::do_alloc(std::uint64_t size) {
  std::unique_lock<std::mutex> lock(map_mu_);
  const std::uint64_t handle = next_handle_++;
  lock.unlock();
  const auto path = (std::filesystem::path(dir_) /
                     (name() + "_alloc_" + std::to_string(handle) + ".bin"))
                        .string();
  io::PosixFile file(path,
                     {.create = true, .truncate = true, .direct = direct_io_});
  file.truncate(size);
  lock.lock();
  files_.emplace(handle, std::move(file));
  return handle;
}

void FileStorage::do_release(std::uint64_t handle) {
  std::unique_lock<std::mutex> lock(map_mu_);
  auto it = files_.find(handle);
  NU_CHECK(it != files_.end(), "double release on '" + name() + "'");
  const std::string path = it->second.path();
  files_.erase(it);
  lock.unlock();
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

void FileStorage::set_async_pool(io::AsyncIoPool* pool,
                                 std::uint64_t min_bytes) {
  pool_min_bytes_ = min_bytes;
  pool_.store(pool, std::memory_order_release);
}

void FileStorage::do_read(void* dst, std::uint64_t handle,
                          std::uint64_t offset, std::uint64_t size) {
  io::PosixFile& file = file_for(handle);
  io::AsyncIoPool* pool = pool_.load(std::memory_order_acquire);
  if (pool != nullptr && !file.is_direct() && size >= pool_min_bytes_) {
    pool->pread_parallel(file, dst, size, offset);
    return;
  }
  file.pread_exact(dst, size, offset);
}

void FileStorage::do_write(std::uint64_t handle, std::uint64_t offset,
                           const void* src, std::uint64_t size) {
  io::PosixFile& file = file_for(handle);
  io::AsyncIoPool* pool = pool_.load(std::memory_order_acquire);
  if (pool != nullptr && !file.is_direct() && size >= pool_min_bytes_) {
    pool->pwrite_parallel(file, src, size, offset);
    return;
  }
  file.pwrite_exact(src, size, offset);
}

}  // namespace northup::mem
