#include "northup/obs/sampler.hpp"

#include <sstream>

#include "northup/util/json.hpp"

namespace northup::obs {

void MetricsSampler::Ring::push(const Sample& s, std::size_t cap) {
  if (buf.size() < cap) {
    buf.push_back(s);
    return;
  }
  buf[head] = s;
  head = (head + 1) % buf.size();
}

MetricsSampler::Series MetricsSampler::Ring::unroll() const {
  Series out;
  out.reserve(buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    out.push_back(buf[(head + i) % buf.size()]);
  }
  return out;
}

MetricsSampler::MetricsSampler(const MetricsRegistry& registry,
                               std::chrono::milliseconds interval,
                               std::size_t max_samples,
                               bool include_counters)
    : registry_(registry),
      interval_(interval.count() > 0 ? interval
                                     : std::chrono::milliseconds(1)),
      max_samples_(max_samples == 0 ? 1 : max_samples),
      include_counters_(include_counters),
      epoch_(std::chrono::steady_clock::now()) {}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::start() {
  std::lock_guard<std::mutex> lock(wake_mu_);
  if (thread_.joinable()) return;
  stopping_ = false;
  thread_ = std::thread([this] { run(); });
}

void MetricsSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

double MetricsSampler::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void MetricsSampler::sample_once() {
  const auto gauges = registry_.gauge_values();
  std::map<std::string, std::uint64_t> counters;
  if (include_counters_) counters = registry_.counter_values();
  std::lock_guard<std::mutex> lock(mu_);
  // Timestamp under the lock: pushes are serialized against a monotonic
  // clock, so rings stay time-ordered even with concurrent samplers.
  const double t = now_seconds();
  for (const auto& [name, value] : gauges) {
    series_[name].push({t, value}, max_samples_);
  }
  for (const auto& [name, value] : counters) {
    series_[name].push({t, static_cast<double>(value)}, max_samples_);
  }
  sweeps_.fetch_add(1, std::memory_order_relaxed);
}

void MetricsSampler::run() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stopping_) {
    lock.unlock();
    sample_once();
    lock.lock();
    wake_.wait_for(lock, interval_, [this] { return stopping_; });
  }
}

std::map<std::string, MetricsSampler::Series> MetricsSampler::series() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Series> out;
  for (const auto& [name, ring] : series_) out[name] = ring.unroll();
  return out;
}

std::string MetricsSampler::to_json() const {
  namespace json = util::json;
  const auto all = series();
  std::ostringstream os;
  os << "{\n  \"interval_ms\": " << interval_.count() << ",\n  \"series\": {";
  bool first = true;
  for (const auto& [name, samples] : all) {
    os << (first ? "\n" : ",\n") << "    \"" << json::escape(name) << "\": [";
    for (std::size_t i = 0; i < samples.size(); ++i) {
      os << (i ? ", " : "") << '[' << json::format_double(samples[i].t_seconds)
         << ", " << json::format_double(samples[i].value) << ']';
    }
    os << ']';
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace northup::obs
