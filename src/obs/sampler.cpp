#include "northup/obs/sampler.hpp"

#include <charconv>
#include <cmath>
#include <sstream>

namespace northup::obs {

namespace {

std::string fmt_double(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

MetricsSampler::MetricsSampler(const MetricsRegistry& registry,
                               std::chrono::milliseconds interval,
                               std::size_t max_samples)
    : registry_(registry),
      interval_(interval.count() > 0 ? interval
                                     : std::chrono::milliseconds(1)),
      max_samples_(max_samples == 0 ? 1 : max_samples),
      epoch_(std::chrono::steady_clock::now()) {}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::start() {
  std::lock_guard<std::mutex> lock(wake_mu_);
  if (thread_.joinable()) return;
  stopping_ = false;
  thread_ = std::thread([this] { run(); });
}

void MetricsSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MetricsSampler::sample_once() {
  const double t = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - epoch_)
                       .count();
  const auto gauges = registry_.gauge_values();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : gauges) {
    Series& s = series_[name];
    s.push_back({t, value});
    if (s.size() > max_samples_) s.erase(s.begin());
  }
  sweeps_.fetch_add(1, std::memory_order_relaxed);
}

void MetricsSampler::run() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stopping_) {
    lock.unlock();
    sample_once();
    lock.lock();
    wake_.wait_for(lock, interval_, [this] { return stopping_; });
  }
}

std::map<std::string, MetricsSampler::Series> MetricsSampler::series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_;
}

std::string MetricsSampler::to_json() const {
  const auto all = series();
  std::ostringstream os;
  os << "{\n  \"interval_ms\": " << interval_.count() << ",\n  \"series\": {";
  bool first = true;
  for (const auto& [name, samples] : all) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": [";
    for (std::size_t i = 0; i < samples.size(); ++i) {
      os << (i ? ", " : "") << '[' << fmt_double(samples[i].t_seconds) << ", "
         << fmt_double(samples[i].value) << ']';
    }
    os << ']';
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace northup::obs
