#include "northup/obs/event_log.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>

#include "northup/util/assert.hpp"

namespace northup::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t next_log_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local span state. Tracks which log the current span belongs to
/// (pointer + uid) so a span from a destroyed log is never re-entered.
/// begin_span pushes the previous frame; end_span pops it — spans nest
/// strictly on a thread (SpanScope enforces this).
struct TlsFrame {
  EventLog* log = nullptr;
  std::uint64_t uid = 0;
  SpanId span = kNoSpan;
};
thread_local TlsFrame tls_span;
thread_local std::vector<TlsFrame> tls_span_stack;

}  // namespace

/// One recording thread's ring. Only its owner thread writes; snapshot()
/// reads `head` with acquire and copies the stable prefix.
struct EventLog::ThreadLog {
  explicit ThreadLog(std::size_t capacity, std::uint32_t tid)
      : ring(capacity), tid(tid) {}

  std::vector<Event> ring;
  std::atomic<std::uint64_t> head{0};  ///< total events ever written
  const std::uint32_t tid;
};

namespace {

/// Per-thread cache of (log uid -> ThreadLog*). A thread may record into
/// several EventLogs over its lifetime (svc spins up per-job runtimes);
/// the list stays tiny, and uids never repeat, so a stale entry can never
/// be confused with a live log.
struct TlsRings {
  struct Entry {
    std::uint64_t uid;
    EventLog::ThreadLog* ring;
  };
  std::vector<Entry> entries;
};
thread_local TlsRings tls_rings;

}  // namespace

EventLog::EventLog(std::size_t capacity_per_thread)
    : uid_(next_log_uid()),
      capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      epoch_ns_(steady_ns()) {
  // Id 0 is reserved so that a zero-initialized Event prints as "".
  names_.emplace_back("");
  name_ids_.emplace("", 0);
}

EventLog::~EventLog() = default;

std::uint32_t EventLog::intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(names_mu_);
  auto it = name_ids_.find(s);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(s);
  name_ids_.emplace(names_.back(), id);
  return id;
}

void EventLog::set_node_name(std::uint32_t node, std::string name) {
  std::lock_guard<std::mutex> lock(names_mu_);
  node_names_[node] = std::move(name);
}

std::uint64_t EventLog::now_ns() const { return steady_ns() - epoch_ns_; }

EventLog::ThreadLog& EventLog::local() {
  for (const auto& e : tls_rings.entries) {
    if (e.uid == uid_) return *e.ring;
  }
  std::lock_guard<std::mutex> lock(threads_mu_);
  const auto tid = static_cast<std::uint32_t>(threads_.size());
  threads_.push_back(std::make_unique<ThreadLog>(capacity_, tid));
  ThreadLog* ring = threads_.back().get();
  tls_rings.entries.push_back({uid_, ring});
  return *ring;
}

void EventLog::record(const Event& e) {
  ThreadLog& t = local();
  const std::uint64_t h = t.head.load(std::memory_order_relaxed);
  Event& slot = t.ring[h % t.ring.size()];
  slot = e;
  slot.tid = t.tid;
  t.head.store(h + 1, std::memory_order_release);
}

void EventLog::instant(EventKind kind, std::uint32_t name_id,
                       std::uint32_t node, std::uint64_t value,
                       std::uint8_t aux) {
  Event e;
  e.ts_ns = now_ns();
  e.kind = kind;
  e.name = name_id;
  e.node = node;
  e.value = value;
  e.aux = aux;
  e.span = current_span();
  record(e);
}

SpanId EventLog::begin_span(std::uint32_t name_id, std::uint32_t phase_id,
                            std::uint32_t node) {
  const SpanId parent =
      (tls_span.log == this && tls_span.uid == uid_) ? tls_span.span : kNoSpan;
  const SpanId id = next_span_.fetch_add(1, std::memory_order_relaxed);
  Event e;
  e.ts_ns = now_ns();
  e.kind = EventKind::kSpanBegin;
  e.span = id;
  e.parent = parent;
  e.name = name_id;
  e.phase = phase_id;
  e.node = node;
  record(e);
  tls_span_stack.push_back(tls_span);
  tls_span = {this, uid_, id};
  return id;
}

void EventLog::end_span(SpanId span) {
  Event e;
  e.ts_ns = now_ns();
  e.kind = EventKind::kSpanEnd;
  e.span = span;
  record(e);
  if (tls_span.log == this && tls_span.uid == uid_ && tls_span.span == span &&
      !tls_span_stack.empty()) {
    tls_span = tls_span_stack.back();
    tls_span_stack.pop_back();
  }
}

SpanId EventLog::current_span() const {
  return (tls_span.log == this && tls_span.uid == uid_) ? tls_span.span
                                                        : kNoSpan;
}

EventLog::Context EventLog::current_context() {
  return {tls_span.log, tls_span.uid, tls_span.span};
}

std::uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(threads_mu_);
  std::uint64_t total = 0;
  for (const auto& t : threads_) {
    const std::uint64_t h = t->head.load(std::memory_order_acquire);
    if (h > t->ring.size()) total += h - t->ring.size();
  }
  return total;
}

RecordedRun EventLog::snapshot() const {
  RecordedRun run;
  {
    std::lock_guard<std::mutex> lock(names_mu_);
    run.names = names_;
    run.node_names = node_names_;
  }
  std::lock_guard<std::mutex> lock(threads_mu_);
  run.thread_count = static_cast<std::uint32_t>(threads_.size());
  for (const auto& t : threads_) {
    const std::uint64_t h = t->head.load(std::memory_order_acquire);
    const std::uint64_t cap = t->ring.size();
    if (h > cap) run.dropped += h - cap;
    const std::uint64_t count = std::min(h, cap);
    // Oldest surviving event first.
    for (std::uint64_t i = h - count; i < h; ++i) {
      run.events.push_back(t->ring[i % cap]);
    }
  }
  std::stable_sort(run.events.begin(), run.events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     return a.dur_ns > b.dur_ns;  // enclosing spans first
                   });
  return run;
}

// --- Binary .nulog format v1 ------------------------------------------------
//
//   magic "NULG" | u32 version=1 | u64 dropped | u32 thread_count
//   u32 name_count     | per name:  u32 len, bytes
//   u32 node_count     | per node:  u32 node id, u32 len, bytes
//   u64 event_count    | event_count * sizeof(Event) raw records
//
// Fixed little-endian-ish host layout: the reader checks magic+version and
// sizeof(Event), which is enough for the single-machine record->analyze
// round trip this format exists for.

namespace {

template <typename T>
void put(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::ifstream& in, const std::string& path) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in.good()) {
    throw util::Error("truncated event log '" + path + "'");
  }
  return v;
}

std::string get_string(std::ifstream& in, const std::string& path) {
  const auto len = get<std::uint32_t>(in, path);
  if (len > (std::uint32_t{1} << 24)) {
    throw util::Error("corrupt string length in event log '" + path + "'");
  }
  std::string s(len, '\0');
  in.read(s.data(), len);
  if (!in.good()) {
    throw util::Error("truncated event log '" + path + "'");
  }
  return s;
}

constexpr char kMagic[4] = {'N', 'U', 'L', 'G'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

void EventLog::write_file(const std::string& path) const {
  const RecordedRun run = snapshot();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    throw util::Error("cannot open event log output file '" + path + "'");
  }
  out.write(kMagic, sizeof(kMagic));
  put(out, kVersion);
  put(out, run.dropped);
  put(out, run.thread_count);
  put(out, static_cast<std::uint32_t>(run.names.size()));
  for (const auto& name : run.names) {
    put(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  put(out, static_cast<std::uint32_t>(run.node_names.size()));
  for (const auto& [node, name] : run.node_names) {
    put(out, node);
    put(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  put(out, static_cast<std::uint64_t>(run.events.size()));
  out.write(reinterpret_cast<const char*>(run.events.data()),
            static_cast<std::streamsize>(run.events.size() * sizeof(Event)));
  out.flush();
  if (!out.good()) {
    throw util::Error("failed writing event log file '" + path + "'");
  }
}

RecordedRun EventLog::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw util::Error("cannot open event log file '" + path + "'");
  }
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw util::Error("not a .nulog event log: '" + path + "'");
  }
  const auto version = get<std::uint32_t>(in, path);
  if (version != kVersion) {
    throw util::Error("unsupported event log version " +
                      std::to_string(version) + " in '" + path + "'");
  }
  RecordedRun run;
  run.dropped = get<std::uint64_t>(in, path);
  run.thread_count = get<std::uint32_t>(in, path);
  const auto name_count = get<std::uint32_t>(in, path);
  run.names.reserve(name_count);
  for (std::uint32_t i = 0; i < name_count; ++i) {
    run.names.push_back(get_string(in, path));
  }
  const auto node_count = get<std::uint32_t>(in, path);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    const auto node = get<std::uint32_t>(in, path);
    run.node_names[node] = get_string(in, path);
  }
  const auto event_count = get<std::uint64_t>(in, path);
  run.events.resize(event_count);
  in.read(reinterpret_cast<char*>(run.events.data()),
          static_cast<std::streamsize>(event_count * sizeof(Event)));
  if (!in.good()) {
    throw util::Error("truncated event log '" + path + "'");
  }
  return run;
}

// --- SpanAdopt --------------------------------------------------------------

SpanAdopt::SpanAdopt(const EventLog::Context& ctx) {
  if (ctx.log == nullptr || ctx.span == kNoSpan) return;
  adopted_ = true;
  prev_log_ = tls_span.log;
  prev_uid_ = tls_span.uid;
  prev_span_ = tls_span.span;
  tls_span = {ctx.log, ctx.log_uid, ctx.span};
}

SpanAdopt::~SpanAdopt() {
  if (adopted_) tls_span = {prev_log_, prev_uid_, prev_span_};
}

}  // namespace northup::obs
