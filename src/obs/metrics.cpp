#include "northup/obs/metrics.hpp"

#include <algorithm>
#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "northup/util/assert.hpp"

namespace northup::obs {

namespace {

/// JSON string escape (quotes, backslashes, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trip double formatting via std::to_chars: locale
/// independent (no LC_NUMERIC decimal commas) and byte-stable for equal
/// values. Non-finite values (never expected from well-behaved metrics)
/// are clamped to 0 so the JSON stays parseable.
std::string fmt_double(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

/// Relaxed atomic-double accumulate / min / max via CAS loops.
void atomic_add(std::atomic<double>& slot, double delta) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& slot, double value) {
  double cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double value) {
  double cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_of(double value) {
  if (!(value > kLowest)) return 0;
  const int b = static_cast<int>(std::log2(value / kLowest) *
                                 static_cast<double>(kSubBuckets));
  return std::clamp(b, 0, kBuckets - 1);
}

double Histogram::bucket_mid(int bucket) {
  // Geometric midpoint of [lo * 2^(b/S), lo * 2^((b+1)/S)).
  return kLowest * std::exp2((static_cast<double>(bucket) + 0.5) /
                             static_cast<double>(kSubBuckets));
}

void Histogram::record(double value) {
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) {
    // First sample seeds the envelope; racing recorders converge through
    // the min/max CAS loops below.
    double zero = 0.0;
    min_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
  }
  atomic_min(min_, value);
  atomic_max(max_, value);
}

double Histogram::min() const {
  return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based (nearest-rank definition).
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(n))));
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cum += buckets_[b].load(std::memory_order_relaxed);
    if (cum >= rank) {
      return std::clamp(bucket_mid(b), min(), max());
    }
  }
  return max();
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> MetricsRegistry::gauge_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::map<std::string, Histogram::Snapshot> MetricsRegistry::histogram_values()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, Histogram::Snapshot> out;
  for (const auto& [name, hist] : histograms_) out[name] = hist->snapshot();
  return out;
}

std::uint64_t MetricsRegistry::counter_sum(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t sum = 0;
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    sum += it->second->value();
  }
  return sum;
}

std::string MetricsRegistry::to_json() const {
  const auto counters = counter_values();
  const auto gauges = gauge_values();
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << fmt_double(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "}";
  const auto histograms = histogram_values();
  if (!histograms.empty()) {
    os << ",\n  \"histograms\": {";
    first = true;
    for (const auto& [name, s] : histograms) {
      os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
         << "\": {\"count\": " << s.count << ", \"sum\": " << fmt_double(s.sum)
         << ", \"min\": " << fmt_double(s.min)
         << ", \"max\": " << fmt_double(s.max)
         << ", \"p50\": " << fmt_double(s.p50)
         << ", \"p90\": " << fmt_double(s.p90)
         << ", \"p95\": " << fmt_double(s.p95)
         << ", \"p99\": " << fmt_double(s.p99) << "}";
      first = false;
    }
    os << (first ? "" : "\n  ") << "}";
  }
  os << "\n}\n";
  return os.str();
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    throw util::Error("cannot open metrics output file '" + path + "'");
  }
  out << to_json();
  out.flush();
  if (!out.good()) {
    throw util::Error("failed writing metrics to '" + path + "'");
  }
}

std::string prom_sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out += '_';
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string prom_escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

/// Splits a registered name into its sanitized base and its label pairs
/// (empty when the name carries no `{...}` block). Malformed label
/// blocks (no '=', unterminated) degrade gracefully: the offending text
/// is folded into the base name through prom_sanitize_name, so the
/// exposition stays parseable no matter what was registered.
struct PromName {
  std::string base;
  std::vector<std::pair<std::string, std::string>> labels;
};

PromName split_prom_name(const std::string& name) {
  PromName out;
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    out.base = prom_sanitize_name(name);
    return out;
  }
  out.base = prom_sanitize_name(name.substr(0, brace));
  const std::string block = name.substr(brace + 1,
                                        name.size() - brace - 2);
  std::size_t pos = 0;
  while (pos < block.size()) {
    std::size_t comma = block.find(',', pos);
    if (comma == std::string::npos) comma = block.size();
    const std::string pair = block.substr(pos, comma - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      // Malformed pair: fold it into the base name rather than emit
      // invalid exposition syntax.
      out.base += prom_sanitize_name("_" + pair);
    } else {
      out.labels.emplace_back(prom_sanitize_name(pair.substr(0, eq)),
                              pair.substr(eq + 1));
    }
    pos = comma + 1;
  }
  return out;
}

/// Renders `{k="v",...}` with escaped values; `extra` appends one more
/// pair (the summary quantile). Empty when there are no labels at all.
std::string label_block(const PromName& n, const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (n.labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : n.labels) {
    if (!first) out += ',';
    out += key + "=\"" + prom_escape_label_value(value) + "\"";
    first = false;
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + prom_escape_label_value(extra_value) + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  // One TYPE line per *base* name, and every family's samples emitted
  // as one contiguous block: labeled series of the same family (e.g.
  // svc.tenant.e2e{tenant=a} / {tenant=b}) share one declaration even
  // when an unrelated registered name sorts between them (`.` orders
  // before `{`, so adjacency in the registry map is not enough).
  std::map<std::string, std::string> families;
  for (const auto& [name, value] : counter_values()) {
    const PromName n = split_prom_name(name);
    std::string& body = families[n.base];
    if (body.empty()) body = "# TYPE " + n.base + " counter\n";
    body += n.base + label_block(n) + ' ' + std::to_string(value) + '\n';
  }
  for (const auto& [name, value] : gauge_values()) {
    const PromName n = split_prom_name(name);
    std::string& body = families[n.base];
    if (body.empty()) body = "# TYPE " + n.base + " gauge\n";
    body += n.base + label_block(n) + ' ' + fmt_double(value) + '\n';
  }
  for (const auto& [name, s] : histogram_values()) {
    const PromName n = split_prom_name(name);
    std::string& body = families[n.base];
    if (body.empty()) body = "# TYPE " + n.base + " summary\n";
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", s.p50}, {"0.9", s.p90}, {"0.95", s.p95}, {"0.99", s.p99}};
    for (const auto& [q, value] : quantiles) {
      body += n.base + label_block(n, "quantile", q) + ' ' +
              fmt_double(value) + '\n';
    }
    body += n.base + "_sum" + label_block(n) + ' ' + fmt_double(s.sum) + '\n';
    body += n.base + "_count" + label_block(n) + ' ' +
            std::to_string(s.count) + '\n';
  }
  std::string out;
  for (const auto& [base, body] : families) out += body;
  return out;
}

void MetricsRegistry::write_prometheus(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    throw util::Error("cannot open prometheus output file '" + path + "'");
  }
  out << to_prometheus();
  out.flush();
  if (!out.good()) {
    throw util::Error("failed writing prometheus text to '" + path + "'");
  }
}

}  // namespace northup::obs
