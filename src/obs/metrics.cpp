#include "northup/obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "northup/util/assert.hpp"

namespace northup::obs {

namespace {

/// JSON string escape (quotes, backslashes, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> MetricsRegistry::gauge_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::uint64_t MetricsRegistry::counter_sum(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t sum = 0;
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    sum += it->second->value();
  }
  return sum;
}

std::string MetricsRegistry::to_json() const {
  const auto counters = counter_values();
  const auto gauges = gauge_values();
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << buf;
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  NU_CHECK(out.good(), "cannot open metrics output file '" + path + "'");
  out << to_json();
  NU_CHECK(out.good(), "failed writing metrics to '" + path + "'");
}

}  // namespace northup::obs
