#include "northup/obs/trace_writer.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "northup/util/assert.hpp"

namespace northup::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

/// One rendered trace event, sortable by timestamp. Metadata events keep
/// rank 0 so they precede all timed events; ties between timed events
/// break on emission order, keeping the output deterministic.
struct Event {
  double ts = 0.0;
  int rank = 0;
  std::size_t order = 0;
  std::string json;
};

}  // namespace

void TraceWriter::write(std::ostream& os) const {
  // Resolve the fallback process for resources outside the layout.
  std::uint32_t fallback_pid = 0;
  for (const auto& [pid, name] : layout_.process_names) {
    fallback_pid = std::max(fallback_pid, pid + 1);
  }
  bool fallback_used = false;
  const auto track_of = [&](sim::ResourceId rid) {
    auto it = layout_.tracks.find(rid);
    if (it != layout_.tracks.end()) return it->second;
    fallback_used = true;
    return TraceLayout::Track{fallback_pid, rid};
  };

  std::vector<Event> events;
  events.reserve(3 * sim_.task_count() + sim_.resource_count() +
                 layout_.process_names.size());
  std::size_t order = 0;
  const auto push = [&](double ts, int rank, std::string json) {
    events.push_back({ts, rank, order++, std::move(json)});
  };

  // Thread-name metadata: one per EventSim resource.
  for (sim::ResourceId rid = 0; rid < sim_.resource_count(); ++rid) {
    const auto track = track_of(rid);
    std::ostringstream e;
    e << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << track.pid
      << ",\"tid\":" << track.tid << ",\"args\":{\"name\":\""
      << json_escape(sim_.resource_name(rid)) << "\"}}";
    push(0.0, 0, e.str());
  }

  // Complete ("X") events: one per task, and flow arrows per dependency.
  std::uint64_t flow_id = 0;
  for (sim::TaskId id = 0; id < sim_.task_count(); ++id) {
    const auto& spec = sim_.task(id);
    const auto timing = sim_.timing(id);
    const auto track = track_of(spec.resource);
    if (spec.phase == "cache" && timing.finish == timing.start) {
      // Zero-duration cache events (hits, evictions with free transfer)
      // render as thread-scoped instants — an "X" of dur 0 is invisible.
      std::ostringstream e;
      e << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << json_escape(spec.label)
        << "\",\"cat\":\"cache\",\"ts\":" << fmt_us(timing.start)
        << ",\"pid\":" << track.pid << ",\"tid\":" << track.tid
        << ",\"args\":{\"task\":" << id << "}}";
      push(timing.start, 1, e.str());
    } else {
      std::ostringstream e;
      e << "{\"ph\":\"X\",\"name\":\"" << json_escape(spec.label)
        << "\",\"cat\":\""
        << json_escape(spec.phase.empty() ? "task" : spec.phase)
        << "\",\"ts\":" << fmt_us(timing.start)
        << ",\"dur\":" << fmt_us(timing.finish - timing.start)
        << ",\"pid\":" << track.pid << ",\"tid\":" << track.tid
        << ",\"args\":{\"task\":" << id << "}}";
      push(timing.start, 1, e.str());
    }
    for (const sim::TaskId dep : spec.deps) {
      const auto& dep_spec = sim_.task(dep);
      const auto dep_timing = sim_.timing(dep);
      const auto dep_track = track_of(dep_spec.resource);
      ++flow_id;
      std::ostringstream s;
      s << "{\"ph\":\"s\",\"name\":\"dep\",\"cat\":\"dep\",\"id\":" << flow_id
        << ",\"ts\":" << fmt_us(dep_timing.finish)
        << ",\"pid\":" << dep_track.pid << ",\"tid\":" << dep_track.tid
        << "}";
      push(dep_timing.finish, 1, s.str());
      std::ostringstream f;
      f << "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"dep\",\"cat\":\"dep\","
        << "\"id\":" << flow_id << ",\"ts\":" << fmt_us(timing.start)
        << ",\"pid\":" << track.pid << ",\"tid\":" << track.tid << "}";
      push(timing.start, 1, f.str());
    }
  }

  // Process-name metadata (prepended after the fact so the fallback
  // process only appears when a resource actually landed in it).
  std::vector<Event> meta;
  for (const auto& [pid, name] : layout_.process_names) {
    std::ostringstream e;
    e << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
    meta.push_back({0.0, 0, 0, e.str()});
  }
  if (fallback_used) {
    std::ostringstream e;
    e << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << fallback_pid
      << ",\"tid\":0,\"args\":{\"name\":\"sim\"}}";
    meta.push_back({0.0, 0, 0, e.str()});
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.rank != b.rank) return a.rank < b.rank;
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.order < b.order;
                   });

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& e : meta) {
    os << (first ? "\n" : ",\n") << e.json;
    first = false;
  }
  for (const auto& e : events) {
    os << (first ? "\n" : ",\n") << e.json;
    first = false;
  }
  os << "\n]}\n";
}

std::string TraceWriter::to_json() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void TraceWriter::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    throw util::Error("cannot open trace output file '" + path + "'");
  }
  write(out);
  out.flush();
  if (!out.good()) {
    throw util::Error("failed writing trace to '" + path + "'");
  }
}

}  // namespace northup::obs
