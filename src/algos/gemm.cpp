#include "northup/algos/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "northup/core/chunking.hpp"
#include "northup/plan/auto_tuner.hpp"
#include "northup/util/timer.hpp"

namespace northup::algos {

namespace {

constexpr std::uint64_t kF = sizeof(float);

/// Pointer to a view's (0,0) on a host-addressable node.
float* view_ptr(data::DataManager& dm, const MatView& v) {
  return reinterpret_cast<float*>(dm.host_view(*v.buf) + v.offset);
}

/// The leaf-level block size a level-1 block of `b` decomposes into,
/// simulating gemm_recurse's per-level choose_gemm_block down the
/// planned child chain. The k-segmentation at the *leaves* decides the
/// float accumulation order into C, so the tuned planner only diverges
/// from the hand block size when both candidates provably land on the
/// same leaf block (bit-identical results).
std::uint64_t gemm_leaf_block(core::Runtime& rt, topo::NodeId node,
                              std::uint64_t b, const GemmConfig& config) {
  while (!rt.tree().is_leaf(node)) {
    const topo::NodeId child = planned_child(rt, node);
    b = choose_gemm_block(b, config.leaf_tile, planned_available(rt, child),
                          config.shard_reuse, config.capacity_safety);
    node = child;
  }
  return b;
}

/// What the level-0 GEMM loop moves and computes with level-1 block `b`:
/// A misses once per (i, kk) through the shard cache, B streams once per
/// (i, j, kk), one C block uploads per (i, j); compute is the full 2n^3
/// at the leaf device's roofline.
plan::Workload gemm_level_workload(core::Runtime& rt, std::uint64_t n,
                                   std::uint64_t b, const GemmConfig& config,
                                   topo::NodeId l1) {
  const std::uint64_t g = n / b;
  const std::uint64_t leaf_b = gemm_leaf_block(rt, l1, b, config);
  const std::uint64_t gx = leaf_b / config.leaf_tile;
  plan::Workload w;
  w.down_bytes = (g * g + g * g * g) * b * b * kF;
  w.up_bytes = g * g * b * b * kF;
  w.chunks = g * g * g;
  w.down_accesses_per_chunk =
      static_cast<double>(g * g + g * g * g) / static_cast<double>(w.chunks);
  w.up_accesses_per_chunk =
      static_cast<double>(g * g) / static_cast<double>(w.chunks);
  w.compute_flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                    static_cast<double>(n);
  w.launches = (n / leaf_b) * (n / leaf_b) * (n / leaf_b);
  w.compute_bytes =
      static_cast<double>(w.launches) * static_cast<double>(kF) *
      (2.0 * static_cast<double>(leaf_b * leaf_b) * static_cast<double>(gx) +
       2.0 * static_cast<double>(leaf_b * leaf_b));
  w.groups_per_launch = static_cast<double>(gx * gx);
  w.compute_node = planned_leaf(rt, l1);
  return w;
}

}  // namespace

std::uint64_t choose_gemm_block(std::uint64_t n, std::uint64_t leaf_tile,
                                std::uint64_t child_available, bool reuse,
                                double safety) {
  NU_CHECK(n >= leaf_tile && n % leaf_tile == 0,
           "matrix dim must be a multiple of the leaf tile");
  const double budget = static_cast<double>(child_available) * safety;
  // Try the largest block first: b = n, n/2, n/4, ... down to leaf_tile.
  for (std::uint64_t b = n; b >= leaf_tile; b /= 2) {
    if (n % b != 0) continue;
    const double blocks_resident =
        reuse ? static_cast<double>(n / b) + 2.0  // row strip of A + B + C
              : 3.0;                              // A + B + C blocks
    const double bytes = blocks_resident * static_cast<double>(b) *
                         static_cast<double>(b) * kF;
    if (bytes <= budget) return b;
  }
  throw util::CapacityError("no GEMM block size fits the child capacity (" +
                            std::to_string(child_available) + " B free)");
}

void gemm_leaf(core::ExecContext& ctx, const MatView& a, const MatView& b,
               const MatView& c, std::uint64_t m, std::uint64_t n,
               std::uint64_t k, std::uint64_t tile) {
  auto& rt = ctx.runtime();
  auto& dm = ctx.dm();
  device::Processor* proc = leaf_processor(rt, ctx.get_cur_treenode());

  const std::uint64_t t = tile;
  const std::uint64_t groups_x = core::ceil_div(n, t);
  const std::uint64_t groups_y = core::ceil_div(m, t);
  const auto num_groups = static_cast<std::uint32_t>(groups_x * groups_y);

  float* pa = view_ptr(dm, a);
  float* pb = view_ptr(dm, b);
  float* pc = view_ptr(dm, c);
  const std::uint64_t lda = a.pitch / kF;
  const std::uint64_t ldb = b.pitch / kF;
  const std::uint64_t ldc = c.pitch / kF;

  // The paper's tiled kernel: each workgroup owns one t x t tile of C,
  // staging t x t tiles of A and B through local memory while walking K.
  device::KernelFn kernel = [=](device::WorkGroupCtx& wg) {
    const std::uint64_t gi = wg.group_id / groups_x;
    const std::uint64_t gj = wg.group_id % groups_x;
    const std::uint64_t r0 = gi * t;
    const std::uint64_t c0 = gj * t;
    const std::uint64_t th = std::min(t, m - r0);
    const std::uint64_t tw = std::min(t, n - c0);

    float* la = wg.local_array<float>(t * t, 0);
    float* lb = wg.local_array<float>(t * t, t * t * kF);
    std::vector<float> acc(th * tw, 0.0f);

    for (std::uint64_t k0 = 0; k0 < k; k0 += t) {
      const std::uint64_t td = std::min(t, k - k0);
      for (std::uint64_t r = 0; r < th; ++r) {
        std::memcpy(la + r * td, pa + (r0 + r) * lda + k0, td * kF);
      }
      for (std::uint64_t r = 0; r < td; ++r) {
        std::memcpy(lb + r * tw, pb + (k0 + r) * ldb + c0, tw * kF);
      }
      for (std::uint64_t r = 0; r < th; ++r) {
        for (std::uint64_t kk = 0; kk < td; ++kk) {
          const float av = la[r * td + kk];
          const float* brow = lb + kk * tw;
          float* arow = acc.data() + r * tw;
          for (std::uint64_t cc = 0; cc < tw; ++cc) arow[cc] += av * brow[cc];
        }
      }
    }
    for (std::uint64_t r = 0; r < th; ++r) {
      float* crow = pc + (r0 + r) * ldc + c0;
      for (std::uint64_t cc = 0; cc < tw; ++cc) crow[cc] += acc[r * tw + cc];
    }
  };

  // Roofline traffic: A is re-read once per column tile group, B once per
  // row tile group (local-memory reuse inside a tile), C read+written once.
  device::KernelCost cost;
  cost.flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
               static_cast<double>(k);
  cost.bytes = kF * (static_cast<double>(m) * static_cast<double>(k) *
                         static_cast<double>(groups_x) +
                     static_cast<double>(k) * static_cast<double>(n) *
                         static_cast<double>(groups_y) +
                     2.0 * static_cast<double>(m) * static_cast<double>(n));

  std::vector<sim::TaskId> deps;
  for (const auto* v : {&a, &b, &c}) {
    if (v->buf->ready != sim::kInvalidTask) deps.push_back(v->buf->ready);
  }
  auto launch = proc->launch("gemm_leaf", num_groups, kernel, cost, deps);
  c.buf->ready = launch.task;
}

void gemm_recurse(core::ExecContext& ctx, const MatView& a, const MatView& b,
                  const MatView& c, std::uint64_t m, std::uint64_t n,
                  std::uint64_t k, const GemmConfig& config) {
  if (ctx.is_leaf()) {
    gemm_leaf(ctx, a, b, c, m, n, k, config.leaf_tile);
    return;
  }
  NU_CHECK(m == n && n == k, "gemm_recurse handles square blocks");

  auto& dm = ctx.dm();
  // Online adaptation: with a tuner the descent re-ranks children by
  // observed bandwidth at every level (planned_child); the hand path
  // keeps the declared first child.
  const topo::NodeId child_node =
      planned_child(ctx.runtime(), ctx.get_cur_treenode());
  const std::uint64_t blk =
      choose_gemm_block(m, config.leaf_tile, ctx.available_bytes(child_node),
                        config.shard_reuse, config.capacity_safety);
  const std::uint64_t g = m / blk;
  const std::uint64_t row_bytes = blk * kF;

  auto src_block = [&](const MatView& v, std::uint64_t bi, std::uint64_t bj) {
    return MatView{v.buf, v.offset + bi * blk * v.pitch + bj * blk * kF,
                   v.pitch};
  };

  // With shard reuse (§IV-A) the row strip of A stays resident at the
  // child for the whole j loop. The runtime ShardCache provides that:
  // block (i,kk) misses once at j == 0 and hits for every later j, and
  // the pool evicts the previous row's strip when capacity demands it.
  const bool cached = config.shard_reuse && dm.has_shard_cache(child_node);
  for (std::uint64_t i = 0; i < g; ++i) {
    for (std::uint64_t j = 0; j < g; ++j) {
      data::Buffer cb = dm.alloc(blk * blk * kF, child_node);
      move_submatrix(dm, MatView{&cb, 0, row_bytes}, src_block(c, i, j), blk,
                     row_bytes);
      for (std::uint64_t kk = 0; kk < g; ++kk) {
        data::Buffer ab_local;
        data::Buffer* ab = nullptr;
        if (cached) {
          const MatView sa = src_block(a, i, kk);
          ab = dm.move_block_2d_down_cached(*sa.buf, child_node, blk,
                                            row_bytes, sa.offset, sa.pitch);
        } else {
          ab_local = dm.alloc(blk * blk * kF, child_node);
          move_submatrix(dm, MatView{&ab_local, 0, row_bytes},
                         src_block(a, i, kk), blk, row_bytes);
          ab = &ab_local;
        }
        data::Buffer bb = dm.alloc(blk * blk * kF, child_node);
        move_submatrix(dm, MatView{&bb, 0, row_bytes}, src_block(b, kk, j),
                       blk, row_bytes);

        ctx.northup_spawn(child_node, [&](core::ExecContext& child_ctx) {
          gemm_recurse(child_ctx, MatView{ab, 0, row_bytes},
                       MatView{&bb, 0, row_bytes}, MatView{&cb, 0, row_bytes},
                       blk, blk, blk, config);
        });

        dm.release(bb);
        if (cached) {
          dm.release_cached(ab);
        } else {
          dm.release(ab_local);
        }
      }
      move_submatrix(dm, src_block(c, i, j), MatView{&cb, 0, row_bytes}, blk,
                     row_bytes);
      dm.release(cb);
    }
  }
}

namespace {

/// Per-element sampled verification: recompute `samples` random dot
/// products exactly and compare. O(samples * n) instead of O(n^3).
void verify_gemm(RunStats& stats, const Matrix& a, const Matrix& b,
                 const std::function<float(std::uint64_t, std::uint64_t)>& c_at,
                 const GemmConfig& config) {
  if (config.verify_samples == 0) return;
  util::Xoshiro256 rng(config.seed ^ 0x5eedULL);
  double worst = 0.0;
  for (std::uint64_t s = 0; s < config.verify_samples; ++s) {
    const auto r = rng.bounded(config.n);
    const auto c = rng.bounded(config.n);
    double expect = 0.0;
    for (std::uint64_t kk = 0; kk < config.n; ++kk) {
      expect += static_cast<double>(a.at(r, kk)) *
                static_cast<double>(b.at(kk, c));
    }
    const double got = static_cast<double>(c_at(r, c));
    const double denom = std::max(1.0, std::abs(expect));
    worst = std::max(worst, std::abs(expect - got) / denom);
  }
  stats.max_rel_err = worst;
  stats.verified = worst < kVerifyTolerance;
}

RunStats collect_stats(core::Runtime& rt, double wall_seconds) {
  RunStats stats;
  if (auto* es = rt.event_sim()) stats.breakdown = core::Breakdown::from(*es);
  stats.makespan = stats.breakdown.makespan;
  stats.bytes_moved = rt.dm().bytes_moved();
  stats.wall_seconds = wall_seconds;
  stats.spawns = rt.spawn_count();
  return stats;
}

}  // namespace

RunStats gemm_inmemory(core::Runtime& rt, const GemmConfig& config) {
  const std::uint64_t n = config.n;
  const topo::NodeId home = inmemory_home(rt);
  auto& dm = rt.dm();

  Matrix ha = random_matrix(n, n, config.seed);
  Matrix hb = random_matrix(n, n, config.seed + 1);

  data::Buffer a = dm.alloc(n * n * kF, home);
  data::Buffer b = dm.alloc(n * n * kF, home);
  data::Buffer c = dm.alloc(n * n * kF, home);
  dm.write_from_host(a, ha.data(), n * n * kF);
  dm.write_from_host(b, hb.data(), n * n * kF);
  dm.fill(c, std::byte{0}, n * n * kF);

  // The in-memory baseline excludes data-staging from its measurement
  // (§V-D: "assumes all the data is ready in DRAM and excludes I/O").
  reset_measurement(rt, {&a, &b, &c});

  util::Timer wall;
  rt.run_from(home, [&](core::ExecContext& ctx) {
    const std::uint64_t pitch = n * kF;
    gemm_recurse(ctx, MatView{&a, 0, pitch}, MatView{&b, 0, pitch},
                 MatView{&c, 0, pitch}, n, n, n, config);
  });
  RunStats stats = collect_stats(rt, wall.seconds());

  verify_gemm(
      stats, ha, hb,
      [&](std::uint64_t r, std::uint64_t cc) {
        float v = 0.0f;
        dm.read_to_host(&v, c, kF, (r * n + cc) * kF);
        return v;
      },
      config);
  if (config.hash_result) stats.result_hash = hash_buffer(rt, c, n * n * kF);

  dm.release(a);
  dm.release(b);
  dm.release(c);
  return stats;
}

RunStats gemm_northup(core::Runtime& rt, const GemmConfig& config) {
  const std::uint64_t n = config.n;
  auto& dm = rt.dm();
  const topo::NodeId root = rt.tree().root();
  NU_CHECK(!rt.tree().get_children_list(root).empty(),
           "out-of-core GEMM needs at least two tree levels");
  const topo::NodeId l1 = planned_child(rt, root);

  // Level-1 block size decides both the recursion grid and the
  // preprocessed block-major layout on the root storage (§V-B).
  const std::uint64_t l1_avail =
      dm.storage(l1).available() + dm.reclaimable_bytes(l1);
  const bool can_pipeline = rt.options().pipeline_threads > 0;
  // A pipelined run stages up to two chunks ahead of the compute chain:
  // the hand plan always halves the child budget so the in-flight
  // staging of neighbouring steps fits beside the current working set.
  // With a tuner, that halving becomes a *choice*: on a slow edge the
  // fat serial block moves strictly fewer bytes (GEMM traffic scales as
  // 1/blk) and the tuner keeps the serial plan when its modeled makespan
  // beats the overlapped one — but only when both candidates decompose
  // to the same leaf block, which fixes the float accumulation order and
  // keeps the result bit-identical to the hand plan's.
  const plan::AutoTuner* tuner = auto_tuner(rt);
  bool dbuf = can_pipeline;  // window-2 double buffering in the run loop
  std::uint64_t blk;
  if (tuner == nullptr) {
    blk = choose_gemm_block(n, config.leaf_tile,
                            can_pipeline ? l1_avail / 2 : l1_avail,
                            config.shard_reuse, config.capacity_safety);
  } else {
    const std::uint64_t b_serial =
        choose_gemm_block(n, config.leaf_tile, l1_avail, config.shard_reuse,
                          config.capacity_safety);
    if (!can_pipeline) {
      blk = b_serial;
    } else {
      const std::uint64_t b_pipe =
          choose_gemm_block(n, config.leaf_tile, l1_avail / 2,
                            config.shard_reuse, config.capacity_safety);
      blk = b_pipe;
      if (b_serial != b_pipe &&
          gemm_leaf_block(rt, l1, b_serial, config) ==
              gemm_leaf_block(rt, l1, b_pipe, config)) {
        const plan::Mode mode = tuner->choose_mode(
            root, l1, gemm_level_workload(rt, n, b_serial, config, l1),
            gemm_level_workload(rt, n, b_pipe, config, l1), true);
        if (mode == plan::Mode::kSerial) {
          blk = b_serial;
          dbuf = false;
        }
      }
    }
  }
  const std::uint64_t g = n / blk;
  const std::uint64_t blk_bytes = blk * blk * kF;
  const std::uint64_t row_bytes = blk * kF;

  Matrix ha = random_matrix(n, n, config.seed);
  Matrix hb = random_matrix(n, n, config.seed + 1);

  data::Buffer a = dm.alloc(n * n * kF, root);
  data::Buffer b = dm.alloc(n * n * kF, root);
  data::Buffer c = dm.alloc(n * n * kF, root);

  // Preprocess: write A and B block-major (block (i,j) is one contiguous
  // extent), zero C. One-time cost, excluded from the measured run like
  // the paper's file reorganization.
  {
    std::vector<float> staging(blk * blk);
    auto write_blocked = [&](data::Buffer& dst, const Matrix& src) {
      for (std::uint64_t bi = 0; bi < g; ++bi) {
        for (std::uint64_t bj = 0; bj < g; ++bj) {
          for (std::uint64_t r = 0; r < blk; ++r) {
            std::memcpy(staging.data() + r * blk,
                        src.data() + (bi * blk + r) * n + bj * blk,
                        row_bytes);
          }
          dm.write_from_host(dst, staging.data(), blk_bytes,
                             (bi * g + bj) * blk_bytes);
        }
      }
    };
    write_blocked(a, ha);
    write_blocked(b, hb);
    std::fill(staging.begin(), staging.end(), 0.0f);
    for (std::uint64_t i = 0; i < g * g; ++i) {
      dm.write_from_host(c, staging.data(), blk_bytes, i * blk_bytes);
    }
  }
  reset_measurement(rt, {&a, &b, &c});

  auto block_view = [&](data::Buffer& buf, std::uint64_t bi,
                        std::uint64_t bj) {
    return MatView{&buf, (bi * g + bj) * blk_bytes, row_bytes};
  };

  util::Timer wall;
  rt.run([&](core::ExecContext& ctx) {
    // Level-0 loop over C blocks with the §IV-A shard schedule: block
    // (i,kk) of A is downloaded through the runtime ShardCache, so it is
    // fetched once per i (at j == 0) and served as a hit for every later
    // j; the pool evicts the previous row's strip as capacity demands.
    //
    // Expressed as a continuation DAG: every download, chunk compute, and
    // block upload is a graph node. Computes chain on each other — float
    // accumulation order into each C block is fixed, and there is one
    // leaf device anyway — so in a pipelined run the overlap comes from
    // step kk+1's downloads and block (i,j-1)'s upload riding alongside
    // step kk's compute. The planner throttles itself to kWindow chunks
    // of staging in flight, which the halved planning budget above
    // accounts for. In an inline (non-pipelined) run each node executes
    // at submission, reproducing the blocking schedule exactly.
    const bool cached = config.shard_reuse && dm.has_shard_cache(l1);
    // Double-buffered plans keep two chunks in flight; a tuner-chosen
    // serial plan throttles to one (its fat blocks already fill the
    // staging level, so overlapped staging would overrun capacity).
    const std::size_t window = dbuf ? 2 : 1;
    std::vector<exec::TaskHandle> computes;
    computes.reserve(static_cast<std::size_t>(g * g * g));
    for (std::uint64_t i = 0; i < g; ++i) {
      for (std::uint64_t j = 0; j < g; ++j) {
        auto cb = std::make_shared<data::ScopedBuffer>(dm, blk_bytes, l1);
        exec::TaskHandle chain =
            ctx.submit([&dm, cb, blk_bytes] {
                 dm.fill(cb->get(), std::byte{0}, blk_bytes);
               })
                .task();
        for (std::uint64_t kk = 0; kk < g; ++kk) {
          if (computes.size() >= window) {
            ctx.graph().wait(computes[computes.size() - window]);
          }
          const std::uint64_t a_off = (i * g + kk) * blk_bytes;
          const std::uint64_t b_off = (kk * g + j) * blk_bytes;
          const exec::TaskHandle prev =
              computes.empty() ? exec::TaskHandle{} : computes.back();
          exec::TaskHandle compute;
          if (cached) {
            auto ab_fut = ctx.move_down_cached_async(a, l1, blk_bytes, a_off);
            auto bb_fut = ctx.move_down_async(
                b, l1, {.size = blk_bytes, .src_offset = b_off});
            compute =
                ctx.run_async(
                       l1,
                       [ab_fut, bb_fut, cb, row_bytes, blk,
                        &config](core::ExecContext& cctx) mutable {
                         data::ScopedShard ab = ab_fut.get();
                         data::ScopedBuffer bb = bb_fut.get();
                         gemm_recurse(cctx, MatView{ab.get(), 0, row_bytes},
                                      MatView{&bb.get(), 0, row_bytes},
                                      MatView{&cb->get(), 0, row_bytes}, blk,
                                      blk, blk, config);
                         // bb then ab drop here, freeing the staging right
                         // after this chunk's compute as the blocking
                         // schedule did.
                       },
                       {ab_fut.task(), bb_fut.task(), chain, prev})
                    .task();
          } else {
            auto ab_fut = ctx.move_down_async(
                a, l1, {.size = blk_bytes, .src_offset = a_off});
            auto bb_fut = ctx.move_down_async(
                b, l1, {.size = blk_bytes, .src_offset = b_off});
            compute =
                ctx.run_async(
                       l1,
                       [ab_fut, bb_fut, cb, row_bytes, blk,
                        &config](core::ExecContext& cctx) mutable {
                         data::ScopedBuffer ab = ab_fut.get();
                         data::ScopedBuffer bb = bb_fut.get();
                         gemm_recurse(cctx, MatView{&ab.get(), 0, row_bytes},
                                      MatView{&bb.get(), 0, row_bytes},
                                      MatView{&cb->get(), 0, row_bytes}, blk,
                                      blk, blk, config);
                       },
                       {ab_fut.task(), bb_fut.task(), chain, prev})
                    .task();
          }
          chain = compute;
          computes.push_back(compute);
        }
        // Result block back up to storage (Fig 3's data_up), then the
        // staging slot frees. Behind the block's compute chain, so C's
        // root extent is written in the legacy order.
        const std::uint64_t c_off = block_view(c, i, j).offset;
        data::Buffer* croot = block_view(c, i, j).buf;
        auto upload = ctx.submit(
            [&dm, cb, croot, blk_bytes, c_off] {
              dm.move_data_up(*croot, cb->get(),
                              {.size = blk_bytes, .dst_offset = c_off});
              cb->reset();
            },
            {chain});
        // Serial mode allocates the next block's staging at submission,
        // so the upload must land (freeing this block's slot) first.
        if (!dbuf) ctx.graph().wait(upload.task());
      }
    }
  });
  RunStats stats = collect_stats(rt, wall.seconds());

  verify_gemm(
      stats, ha, hb,
      [&](std::uint64_t r, std::uint64_t cc) {
        const std::uint64_t bi = r / blk;
        const std::uint64_t bj = cc / blk;
        const std::uint64_t off = (bi * g + bj) * blk_bytes +
                                  ((r % blk) * blk + (cc % blk)) * kF;
        float v = 0.0f;
        dm.read_to_host(&v, c, kF, off);
        return v;
      },
      config);
  // Hash in logical row-major order so runs that picked different
  // level-1 blockings (hand vs tuned) compare bit-for-bit.
  if (config.hash_result) {
    stats.result_hash = hash_blocked_matrix(rt, c, n, blk);
  }

  dm.release(a);
  dm.release(b);
  dm.release(c);
  return stats;
}

}  // namespace northup::algos
