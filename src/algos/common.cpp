#include "northup/algos/common.hpp"

#include <algorithm>
#include <vector>

#include "northup/plan/auto_tuner.hpp"
#include "northup/util/crc32.hpp"

namespace northup::algos {

std::uint64_t hash_buffer(core::Runtime& rt, data::Buffer& buf,
                          std::uint64_t bytes) {
  constexpr std::uint64_t kChunk = 1ULL << 20;
  std::vector<std::byte> staging(std::min(bytes, kChunk));
  std::uint32_t crc = 0;
  for (std::uint64_t off = 0; off < bytes; off += kChunk) {
    const std::uint64_t len = std::min(kChunk, bytes - off);
    rt.dm().read_to_host(staging.data(), buf, len, off);
    crc = util::crc32(staging.data(), len, crc);
  }
  return crc;
}

std::uint64_t hash_blocked_matrix(core::Runtime& rt, data::Buffer& buf,
                                  std::uint64_t n, std::uint64_t blk) {
  const std::uint64_t g = n / blk;
  const std::uint64_t blk_bytes = blk * blk * 4;
  // One block row (g blocks = n * blk floats) staged host-side at a time.
  std::vector<std::byte> staging(g * blk_bytes);
  std::uint32_t crc = 0;
  for (std::uint64_t bi = 0; bi < g; ++bi) {
    rt.dm().read_to_host(staging.data(), buf, g * blk_bytes,
                         bi * g * blk_bytes);
    for (std::uint64_t r = 0; r < blk; ++r) {
      for (std::uint64_t bj = 0; bj < g; ++bj) {
        crc = util::crc32(staging.data() + bj * blk_bytes + r * blk * 4,
                          blk * 4, crc);
      }
    }
  }
  return crc;
}

topo::NodeId gpu_node(core::Runtime& rt) {
  const auto& tree = rt.tree();
  for (topo::NodeId id : tree.preorder()) {
    if (rt.processor_at(id, topo::ProcessorType::Gpu) != nullptr) return id;
  }
  throw util::TopologyError("no GPU processor in the topology");
}

topo::NodeId inmemory_home(core::Runtime& rt) {
  const auto& tree = rt.tree();
  topo::NodeId node = gpu_node(rt);
  while (node != topo::kInvalidNode) {
    const auto kind = tree.fetch_node_type(node);
    if (kind == mem::StorageKind::Dram || kind == mem::StorageKind::Nvm) {
      return node;
    }
    node = tree.get_parent(node);
  }
  throw util::TopologyError("no DRAM/NVM node above the GPU leaf");
}

device::Processor* leaf_processor(core::Runtime& rt, topo::NodeId node) {
  if (auto* gpu = rt.processor_at(node, topo::ProcessorType::Gpu)) return gpu;
  if (auto* cpu = rt.processor_at(node, topo::ProcessorType::Cpu)) return cpu;
  topo::NodeId cur = rt.tree().get_parent(node);
  while (cur != topo::kInvalidNode) {
    if (auto* gpu = rt.processor_at(cur, topo::ProcessorType::Gpu)) return gpu;
    cur = rt.tree().get_parent(cur);
  }
  throw util::TopologyError("no processor available for leaf node '" +
                            rt.tree().node(node).name + "'");
}

const plan::AutoTuner* auto_tuner(core::Runtime& rt) {
  return rt.options().auto_tune;
}

topo::NodeId planned_child(core::Runtime& rt, topo::NodeId node) {
  const std::vector<topo::NodeId>& children =
      rt.tree().get_children_list(node);
  if (children.empty()) return topo::kInvalidNode;
  const plan::AutoTuner* tuner = auto_tuner(rt);
  if (tuner == nullptr) return children[0];
  const std::vector<std::uint32_t> ranked =
      tuner->rank_children(node, children);
  for (topo::NodeId child : ranked) {
    if (rt.dm().health_scale(child) > 0.0) return child;
  }
  return children[0];
}

topo::NodeId planned_leaf(core::Runtime& rt, topo::NodeId node) {
  while (!rt.tree().is_leaf(node)) node = planned_child(rt, node);
  return node;
}

std::uint64_t planned_available(core::Runtime& rt, topo::NodeId node) {
  auto& dm = rt.dm();
  const std::uint64_t raw =
      dm.storage(node).available() + dm.reclaimable_bytes(node);
  const double scale = dm.health_scale(node);
  return scale >= 1.0
             ? raw
             : static_cast<std::uint64_t>(static_cast<double>(raw) * scale);
}

void reset_measurement(core::Runtime& rt,
                       std::initializer_list<data::Buffer*> buffers) {
  if (auto* es = rt.event_sim()) es->reset_tasks();
  for (topo::NodeId id = 0; id < rt.tree().node_count(); ++id) {
    rt.dm().storage(id).reset_stats();
  }
  for (data::Buffer* b : buffers) b->ready = sim::kInvalidTask;
}

}  // namespace northup::algos
