#include "northup/algos/common.hpp"

#include <algorithm>
#include <vector>

#include "northup/util/crc32.hpp"

namespace northup::algos {

std::uint64_t hash_buffer(core::Runtime& rt, data::Buffer& buf,
                          std::uint64_t bytes) {
  constexpr std::uint64_t kChunk = 1ULL << 20;
  std::vector<std::byte> staging(std::min(bytes, kChunk));
  std::uint32_t crc = 0;
  for (std::uint64_t off = 0; off < bytes; off += kChunk) {
    const std::uint64_t len = std::min(kChunk, bytes - off);
    rt.dm().read_to_host(staging.data(), buf, len, off);
    crc = util::crc32(staging.data(), len, crc);
  }
  return crc;
}

topo::NodeId gpu_node(core::Runtime& rt) {
  const auto& tree = rt.tree();
  for (topo::NodeId id : tree.preorder()) {
    if (rt.processor_at(id, topo::ProcessorType::Gpu) != nullptr) return id;
  }
  throw util::TopologyError("no GPU processor in the topology");
}

topo::NodeId inmemory_home(core::Runtime& rt) {
  const auto& tree = rt.tree();
  topo::NodeId node = gpu_node(rt);
  while (node != topo::kInvalidNode) {
    const auto kind = tree.fetch_node_type(node);
    if (kind == mem::StorageKind::Dram || kind == mem::StorageKind::Nvm) {
      return node;
    }
    node = tree.get_parent(node);
  }
  throw util::TopologyError("no DRAM/NVM node above the GPU leaf");
}

device::Processor* leaf_processor(core::Runtime& rt, topo::NodeId node) {
  if (auto* gpu = rt.processor_at(node, topo::ProcessorType::Gpu)) return gpu;
  if (auto* cpu = rt.processor_at(node, topo::ProcessorType::Cpu)) return cpu;
  topo::NodeId cur = rt.tree().get_parent(node);
  while (cur != topo::kInvalidNode) {
    if (auto* gpu = rt.processor_at(cur, topo::ProcessorType::Gpu)) return gpu;
    cur = rt.tree().get_parent(cur);
  }
  throw util::TopologyError("no processor available for leaf node '" +
                            rt.tree().node(node).name + "'");
}

void reset_measurement(core::Runtime& rt,
                       std::initializer_list<data::Buffer*> buffers) {
  if (auto* es = rt.event_sim()) es->reset_tasks();
  for (topo::NodeId id = 0; id < rt.tree().node_count(); ++id) {
    rt.dm().storage(id).reset_stats();
  }
  for (data::Buffer* b : buffers) b->ready = sim::kInvalidTask;
}

}  // namespace northup::algos
