#include "northup/algos/hotspot.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "northup/core/chunking.hpp"
#include "northup/plan/auto_tuner.hpp"
#include "northup/util/timer.hpp"

namespace northup::algos {

namespace {

constexpr std::uint64_t kF = sizeof(float);

// Halo slot offsets (floats) within a packed halo extent of dimension d.
constexpr std::uint64_t halo_n(std::uint64_t) { return 0; }
constexpr std::uint64_t halo_s(std::uint64_t d) { return d; }
constexpr std::uint64_t halo_w(std::uint64_t d) { return 2 * d; }
constexpr std::uint64_t halo_e(std::uint64_t d) { return 3 * d; }

float* buf_ptr(data::DataManager& dm, data::Buffer& b) {
  return reinterpret_cast<float*>(dm.host_view(b));
}

}  // namespace

std::uint64_t choose_hotspot_block(std::uint64_t n, std::uint64_t leaf_tile,
                                   std::uint64_t child_available,
                                   double safety) {
  NU_CHECK(n >= leaf_tile && n % leaf_tile == 0,
           "grid dim must be a multiple of the leaf tile");
  const double budget = static_cast<double>(child_available) * safety;
  for (std::uint64_t b = n; b >= leaf_tile; b /= 2) {
    if (n % b != 0) continue;
    const double bytes =
        (3.0 * static_cast<double>(b) * static_cast<double>(b) +
         4.0 * static_cast<double>(b)) *
        kF;
    if (bytes <= budget) return b;
  }
  throw util::CapacityError(
      "no HotSpot block size fits the child capacity (" +
      std::to_string(child_available) + " B free)");
}

namespace {

/// Leaf kernel: one workgroup per t x t tile; each stages a (t+2)^2
/// halo'ed temperature tile through local memory (Rodinia's structure).
void hotspot_leaf(core::ExecContext& ctx, const StencilBlock& block,
                  const HotspotConfig& config) {
  auto& rt = ctx.runtime();
  auto& dm = ctx.dm();
  device::Processor* proc = leaf_processor(rt, ctx.get_cur_treenode());

  const std::uint64_t d = block.dim;
  const std::uint64_t t = config.leaf_tile;
  const std::uint64_t groups_x = core::ceil_div(d, t);
  const auto num_groups = static_cast<std::uint32_t>(groups_x * groups_x);
  const HotSpotParams p = config.params;

  float* tin = buf_ptr(dm, *block.temp_in);
  float* pow_ = buf_ptr(dm, *block.power);
  float* hal = buf_ptr(dm, *block.halo);
  float* tout = buf_ptr(dm, *block.temp_out);

  device::KernelFn kernel = [=](device::WorkGroupCtx& wg) {
    const std::uint64_t gi = wg.group_id / groups_x;
    const std::uint64_t gj = wg.group_id % groups_x;
    const std::uint64_t r0 = gi * t;
    const std::uint64_t c0 = gj * t;
    const std::uint64_t th = std::min(t, d - r0);
    const std::uint64_t tw = std::min(t, d - c0);
    const std::uint64_t lw = tw + 2;

    // (th+2) x (tw+2) local tile with halo.
    float* lt = wg.local_array<float>((t + 2) * (t + 2), 0);
    auto block_at = [&](std::int64_t r, std::int64_t c) -> float {
      // Resolve a block-relative coordinate, falling into the packed halo
      // vectors when one step outside the block. Corner probes (outside
      // in both axes) fill halo-tile cells the 5-point stencil never
      // reads, so clamp the in-vector index instead of running off the
      // ends of the packed vectors.
      const auto ci = static_cast<std::uint64_t>(
          std::clamp<std::int64_t>(c, 0, static_cast<std::int64_t>(d) - 1));
      const auto ri = static_cast<std::uint64_t>(
          std::clamp<std::int64_t>(r, 0, static_cast<std::int64_t>(d) - 1));
      if (r < 0) return hal[halo_n(d) + ci];
      if (r >= static_cast<std::int64_t>(d)) return hal[halo_s(d) + ci];
      if (c < 0) return hal[halo_w(d) + ri];
      if (c >= static_cast<std::int64_t>(d)) return hal[halo_e(d) + ri];
      return tin[ri * d + ci];
    };
    for (std::uint64_t r = 0; r < th + 2; ++r) {
      for (std::uint64_t c = 0; c < tw + 2; ++c) {
        lt[r * lw + c] =
            block_at(static_cast<std::int64_t>(r0 + r) - 1,
                     static_cast<std::int64_t>(c0 + c) - 1);
      }
    }
    for (std::uint64_t r = 0; r < th; ++r) {
      for (std::uint64_t c = 0; c < tw; ++c) {
        const float v = lt[(r + 1) * lw + (c + 1)];
        const float north = lt[r * lw + (c + 1)];
        const float south = lt[(r + 2) * lw + (c + 1)];
        const float west = lt[(r + 1) * lw + c];
        const float east = lt[(r + 1) * lw + (c + 2)];
        const float delta =
            p.cap_inv *
            (pow_[(r0 + r) * d + (c0 + c)] +
             (north + south - 2.0f * v) * p.ry_inv +
             (east + west - 2.0f * v) * p.rx_inv +
             (p.ambient - v) * p.rz_inv);
        tout[(r0 + r) * d + (c0 + c)] = v + delta;
      }
    }
  };

  // ~12 flops per cell; traffic: read temp+power (with halo re-reads at
  // tile edges), write out once.
  device::KernelCost cost;
  const double cells = static_cast<double>(d) * static_cast<double>(d);
  cost.flops = 12.0 * cells;
  // in + power + out + halo overlap, scaled by the effective-bandwidth
  // calibration factor (see HotspotConfig::device_traffic_factor).
  cost.bytes = kF * cells * 3.2 * config.device_traffic_factor;

  std::vector<sim::TaskId> deps;
  for (data::Buffer* b :
       {block.temp_in, block.power, block.halo, block.temp_out}) {
    if (b->ready != sim::kInvalidTask) deps.push_back(b->ready);
  }
  auto launch = proc->launch("hotspot_leaf", num_groups, kernel, cost, deps);
  block.temp_out->ready = launch.task;
}

/// Packs one column of a block buffer into a contiguous vector on the
/// same node (the paper's border packing), then returns that buffer.
void pack_column(data::DataManager& dm, data::Buffer& dst,
                 std::uint64_t dst_off_floats, data::Buffer& src,
                 std::uint64_t dim, std::uint64_t col) {
  dm.move_block_2d(dst, src, dim, kF, dst_off_floats * kF, kF, col * kF,
                   dim * kF);
}

/// The leaf-level block dimension a level-1 block of `b` decomposes
/// into, simulating hotspot_recurse's per-level choose_hotspot_block
/// down the planned child chain (used to model leaf launch counts).
std::uint64_t hotspot_leaf_block(core::Runtime& rt, topo::NodeId node,
                                 std::uint64_t b,
                                 const HotspotConfig& config) {
  while (!rt.tree().is_leaf(node)) {
    const topo::NodeId child = planned_child(rt, node);
    b = choose_hotspot_block(b, config.leaf_tile,
                             planned_available(rt, child),
                             config.capacity_safety);
    node = child;
  }
  return b;
}

/// What the level-0 sweep loop moves and computes with level-1 block
/// `bd`: per block per sweep, three downloads (temperature, power, halo
/// extent) and five uploads (the t_next block plus four halo publishes);
/// compute is the leaf kernel's declared roofline cost over the grid.
plan::Workload hotspot_level_workload(core::Runtime& rt, std::uint64_t n,
                                      std::uint64_t bd,
                                      const HotspotConfig& config,
                                      topo::NodeId l1) {
  const std::uint64_t g = n / bd;
  const std::uint64_t blk_bytes = bd * bd * kF;
  const std::uint64_t halo_bytes = 4 * bd * kF;
  const std::uint64_t leaf_bd = hotspot_leaf_block(rt, l1, bd, config);
  const std::uint64_t gx = core::ceil_div(leaf_bd, config.leaf_tile);
  plan::Workload w;
  w.chunks = config.iterations * g * g;
  w.down_bytes = w.chunks * (2 * blk_bytes + halo_bytes);
  w.up_bytes = w.chunks * (blk_bytes + halo_bytes);
  w.down_accesses_per_chunk = 3.0;
  w.up_accesses_per_chunk = 5.0;
  const double cells = static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(config.iterations);
  w.compute_flops = 12.0 * cells;
  w.compute_bytes =
      static_cast<double>(kF) * cells * 3.2 * config.device_traffic_factor;
  w.launches =
      config.iterations * (n / leaf_bd) * (n / leaf_bd);
  w.groups_per_launch = static_cast<double>(gx * gx);
  w.compute_node = planned_leaf(rt, l1);
  return w;
}

}  // namespace

void hotspot_recurse(core::ExecContext& ctx, const StencilBlock& block,
                     const HotspotConfig& config) {
  if (ctx.is_leaf()) {
    hotspot_leaf(ctx, block, config);
    return;
  }
  auto& dm = ctx.dm();
  // Online adaptation: with a tuner the descent re-ranks children by
  // observed bandwidth at every level (planned_child); the hand path
  // keeps the declared first child.
  const topo::NodeId child_node =
      planned_child(ctx.runtime(), ctx.get_cur_treenode());
  const std::uint64_t d = block.dim;
  const std::uint64_t sd = choose_hotspot_block(
      d, config.leaf_tile, ctx.available_bytes(child_node),
      config.capacity_safety);
  if (sd == d) {
    // The whole block fits the child: move it down wholesale. The inputs
    // go through the shard cache when one is attached — an unchanged
    // power block or halo extent re-descending in a later sweep becomes
    // a hit (writes upstream invalidate stale temperature entries).
    const bool cached = dm.has_shard_cache(child_node);
    data::Buffer tin_local, pw_local, hal_local;
    data::Buffer* tin = nullptr;
    data::Buffer* pw = nullptr;
    data::Buffer* hal = nullptr;
    if (cached) {
      tin = dm.move_data_down_cached(*block.temp_in, child_node, d * d * kF);
      pw = dm.move_data_down_cached(*block.power, child_node, d * d * kF);
      hal = dm.move_data_down_cached(*block.halo, child_node, 4 * d * kF);
    } else {
      tin_local = dm.alloc(d * d * kF, child_node);
      pw_local = dm.alloc(d * d * kF, child_node);
      hal_local = dm.alloc(4 * d * kF, child_node);
      dm.move_data_down(tin_local, *block.temp_in, {.size = d * d * kF});
      dm.move_data_down(pw_local, *block.power, {.size = d * d * kF});
      dm.move_data_down(hal_local, *block.halo, {.size = 4 * d * kF});
      tin = &tin_local;
      pw = &pw_local;
      hal = &hal_local;
    }
    data::Buffer tout = dm.alloc(d * d * kF, child_node);
    ctx.northup_spawn(child_node, [&](core::ExecContext& cctx) {
      StencilBlock sub{tin, pw, hal, &tout, d};
      hotspot_recurse(cctx, sub, config);
    });
    dm.move_data_up(*block.temp_out, tout, {.size = d * d * kF});
    if (cached) {
      for (auto* b : {tin, pw, hal}) dm.release_cached(b);
    } else {
      for (auto* b : {&tin_local, &pw_local, &hal_local}) dm.release(*b);
    }
    dm.release(tout);
    return;
  }

  const std::uint64_t g = d / sd;
  for (std::uint64_t si = 0; si < g; ++si) {
    for (std::uint64_t sj = 0; sj < g; ++sj) {
      const std::uint64_t r0 = si * sd;
      const std::uint64_t c0 = sj * sd;
      data::Buffer tin = dm.alloc(sd * sd * kF, child_node);
      data::Buffer pw = dm.alloc(sd * sd * kF, child_node);
      data::Buffer hal = dm.alloc(4 * sd * kF, child_node);
      data::Buffer tout = dm.alloc(sd * sd * kF, child_node);

      // Interior + power: strided 2-D extraction from the parent block.
      dm.move_block_2d(tin, *block.temp_in, sd, sd * kF, 0, sd * kF,
                       (r0 * d + c0) * kF, d * kF);
      dm.move_block_2d(pw, *block.power, sd, sd * kF, 0, sd * kF,
                       (r0 * d + c0) * kF, d * kF);

      // Halo rows: one row of the parent block, or the parent halo slice.
      if (si > 0) {
        dm.move_data(hal, *block.temp_in,
                     {.size = sd * kF,
                      .dst_offset = halo_n(sd) * kF,
                      .src_offset = ((r0 - 1) * d + c0) * kF});
      } else {
        dm.move_data(hal, *block.halo,
                     {.size = sd * kF,
                      .dst_offset = halo_n(sd) * kF,
                      .src_offset = (halo_n(d) + c0) * kF});
      }
      if (si + 1 < g) {
        dm.move_data(hal, *block.temp_in,
                     {.size = sd * kF,
                      .dst_offset = halo_s(sd) * kF,
                      .src_offset = ((r0 + sd) * d + c0) * kF});
      } else {
        dm.move_data(hal, *block.halo,
                     {.size = sd * kF,
                      .dst_offset = halo_s(sd) * kF,
                      .src_offset = (halo_s(d) + c0) * kF});
      }
      // Halo columns: packed from the parent block (strided) or sliced
      // from the parent halo (already packed).
      if (sj > 0) {
        dm.move_block_2d(hal, *block.temp_in, sd, kF, halo_w(sd) * kF, kF,
                         (r0 * d + (c0 - 1)) * kF, d * kF);
      } else {
        dm.move_data(hal, *block.halo,
                     {.size = sd * kF,
                      .dst_offset = halo_w(sd) * kF,
                      .src_offset = (halo_w(d) + r0) * kF});
      }
      if (sj + 1 < g) {
        dm.move_block_2d(hal, *block.temp_in, sd, kF, halo_e(sd) * kF, kF,
                         (r0 * d + (c0 + sd)) * kF, d * kF);
      } else {
        dm.move_data(hal, *block.halo,
                     {.size = sd * kF,
                      .dst_offset = halo_e(sd) * kF,
                      .src_offset = (halo_e(d) + r0) * kF});
      }

      ctx.northup_spawn(child_node, [&](core::ExecContext& cctx) {
        StencilBlock sub{&tin, &pw, &hal, &tout, sd};
        hotspot_recurse(cctx, sub, config);
      });

      dm.move_block_2d(*block.temp_out, tout, sd, sd * kF,
                       (r0 * d + c0) * kF, d * kF, 0, sd * kF);
      for (auto* b : {&tin, &pw, &hal, &tout}) dm.release(*b);
    }
  }
}

namespace {

RunStats collect(core::Runtime& rt, double wall) {
  RunStats s;
  if (auto* es = rt.event_sim()) s.breakdown = core::Breakdown::from(*es);
  s.makespan = s.breakdown.makespan;
  s.bytes_moved = rt.dm().bytes_moved();
  s.wall_seconds = wall;
  s.spawns = rt.spawn_count();
  return s;
}

Matrix reference_iterated(const Matrix& temp, const Matrix& power,
                          const HotspotConfig& config) {
  Matrix cur = temp;
  Matrix next(temp.rows(), temp.cols());
  for (std::uint64_t i = 0; i < config.iterations; ++i) {
    hotspot_step(cur, power, next, config.params);
    std::swap(cur, next);
  }
  return cur;
}

}  // namespace

RunStats hotspot_inmemory(core::Runtime& rt, const HotspotConfig& config) {
  const std::uint64_t n = config.n;
  auto& dm = rt.dm();
  const topo::NodeId home = inmemory_home(rt);

  Matrix temp = random_matrix(n, n, config.seed);
  // Shift temperatures into a physical range and make power non-negative.
  for (std::size_t i = 0; i < temp.size(); ++i) temp.data()[i] += 80.0f;
  Matrix power = random_matrix(n, n, config.seed + 1);
  for (std::size_t i = 0; i < power.size(); ++i) {
    power.data()[i] = std::abs(power.data()[i]);
  }

  data::Buffer tin = dm.alloc(n * n * kF, home);
  data::Buffer pw = dm.alloc(n * n * kF, home);
  data::Buffer hal = dm.alloc(4 * n * kF, home);
  data::Buffer tout = dm.alloc(n * n * kF, home);
  dm.write_from_host(tin, temp.data(), n * n * kF);
  dm.write_from_host(pw, power.data(), n * n * kF);

  reset_measurement(rt, {&tin, &pw, &hal, &tout});

  util::Timer wall;
  rt.run_from(home, [&](core::ExecContext& ctx) {
    for (std::uint64_t it = 0; it < config.iterations; ++it) {
      // Clamp halos: the grid's own edge rows/columns.
      dm.move_data(hal, tin, {.size = n * kF, .dst_offset = halo_n(n) * kF});
      dm.move_data(hal, tin,
                   {.size = n * kF,
                    .dst_offset = halo_s(n) * kF,
                    .src_offset = (n - 1) * n * kF});
      pack_column(dm, hal, halo_w(n), tin, n, 0);
      pack_column(dm, hal, halo_e(n), tin, n, n - 1);

      StencilBlock blk{&tin, &pw, &hal, &tout, n};
      hotspot_recurse(ctx, blk, config);
      std::swap(tin, tout);
    }
  });
  RunStats stats = collect(rt, wall.seconds());

  if (config.verify) {
    const Matrix expect = reference_iterated(temp, power, config);
    Matrix got(n, n);
    dm.read_to_host(got.data(), tin, n * n * kF);  // result after swap
    stats.max_rel_err = max_rel_diff(expect, got);
    stats.verified = stats.max_rel_err < kVerifyTolerance;
  }
  if (config.hash_result) {
    stats.result_hash = hash_buffer(rt, tin, n * n * kF);  // result after swap
  }

  for (auto* b : {&tin, &pw, &hal, &tout}) dm.release(*b);
  return stats;
}

RunStats hotspot_northup(core::Runtime& rt, const HotspotConfig& config) {
  const std::uint64_t n = config.n;
  auto& dm = rt.dm();
  const topo::NodeId root = rt.tree().root();
  NU_CHECK(!rt.tree().get_children_list(root).empty(),
           "out-of-core HotSpot needs at least two tree levels");
  const topo::NodeId l1 = planned_child(rt, root);

  const std::uint64_t l1_avail =
      dm.storage(l1).available() + dm.reclaimable_bytes(l1);
  const bool can_pipeline = rt.options().pipeline_threads > 0;
  // A pipelined run stages up to two blocks ahead of the compute chain:
  // the hand plan always halves the child budget so neighbouring blocks'
  // in-flight staging fits beside the current working set. With a tuner
  // the halving becomes a *choice*: on a slow, high-latency root edge
  // the fat serial block issues far fewer per-block halo publishes, and
  // the tuner keeps the serial plan when its modeled makespan beats the
  // overlapped one. The stencil produces bit-identical cell values under
  // any blocking (halos are exact copies, no accumulation-order change),
  // so the block size is free to diverge from the hand plan's.
  const plan::AutoTuner* tuner = auto_tuner(rt);
  bool dbuf = can_pipeline;  // window-2 double buffering in the run loop
  std::uint64_t bd;
  if (tuner == nullptr) {
    bd = choose_hotspot_block(n, config.leaf_tile,
                              can_pipeline ? l1_avail / 2 : l1_avail,
                              config.capacity_safety);
  } else {
    const std::uint64_t b_serial = choose_hotspot_block(
        n, config.leaf_tile, l1_avail, config.capacity_safety);
    if (!can_pipeline) {
      bd = b_serial;
    } else {
      const std::uint64_t b_pipe = choose_hotspot_block(
          n, config.leaf_tile, l1_avail / 2, config.capacity_safety);
      bd = b_pipe;
      if (b_serial != b_pipe) {
        const plan::Mode mode = tuner->choose_mode(
            root, l1, hotspot_level_workload(rt, n, b_serial, config, l1),
            hotspot_level_workload(rt, n, b_pipe, config, l1), true);
        if (mode == plan::Mode::kSerial) {
          bd = b_serial;
          dbuf = false;
        }
      }
    }
  }
  const std::uint64_t g = n / bd;
  const std::uint64_t blk_bytes = bd * bd * kF;
  const std::uint64_t halo_bytes = 4 * bd * kF;

  Matrix temp = random_matrix(n, n, config.seed);
  for (std::size_t i = 0; i < temp.size(); ++i) temp.data()[i] += 80.0f;
  Matrix power = random_matrix(n, n, config.seed + 1);
  for (std::size_t i = 0; i < power.size(); ++i) {
    power.data()[i] = std::abs(power.data()[i]);
  }

  // Root storage: block-tiled temp (double-buffered), block-tiled power,
  // and per-block packed halo extents (double-buffered).
  data::Buffer t_cur = dm.alloc(n * n * kF, root);
  data::Buffer t_next = dm.alloc(n * n * kF, root);
  data::Buffer pw_blocks = dm.alloc(n * n * kF, root);
  data::Buffer h_cur = dm.alloc(g * g * halo_bytes, root);
  data::Buffer h_next = dm.alloc(g * g * halo_bytes, root);

  auto block_off = [&](std::uint64_t bi, std::uint64_t bj) {
    return (bi * g + bj) * blk_bytes;
  };
  auto halo_off = [&](std::uint64_t bi, std::uint64_t bj) {
    return (bi * g + bj) * halo_bytes;
  };

  // Preprocessing (§V-B): reorganize into block files + initial halos.
  {
    std::vector<float> staging(bd * bd);
    auto write_blocked = [&](data::Buffer& dst, const Matrix& src) {
      for (std::uint64_t bi = 0; bi < g; ++bi) {
        for (std::uint64_t bj = 0; bj < g; ++bj) {
          for (std::uint64_t r = 0; r < bd; ++r) {
            std::memcpy(staging.data() + r * bd,
                        src.data() + (bi * bd + r) * n + bj * bd, bd * kF);
          }
          dm.write_from_host(dst, staging.data(), blk_bytes,
                             block_off(bi, bj));
        }
      }
    };
    write_blocked(t_cur, temp);
    write_blocked(pw_blocks, power);

    std::vector<float> halo(4 * bd);
    auto gv = [&](std::int64_t r, std::int64_t c) {
      // Grid value with clamping at the global boundary.
      const auto rr = static_cast<std::uint64_t>(
          std::clamp<std::int64_t>(r, 0, static_cast<std::int64_t>(n) - 1));
      const auto cc = static_cast<std::uint64_t>(
          std::clamp<std::int64_t>(c, 0, static_cast<std::int64_t>(n) - 1));
      return temp.at(rr, cc);
    };
    for (std::uint64_t bi = 0; bi < g; ++bi) {
      for (std::uint64_t bj = 0; bj < g; ++bj) {
        const auto r0 = static_cast<std::int64_t>(bi * bd);
        const auto c0 = static_cast<std::int64_t>(bj * bd);
        for (std::uint64_t i = 0; i < bd; ++i) {
          halo[halo_n(bd) + i] = gv(r0 - 1, c0 + static_cast<std::int64_t>(i));
          halo[halo_s(bd) + i] =
              gv(r0 + static_cast<std::int64_t>(bd), c0 + static_cast<std::int64_t>(i));
          halo[halo_w(bd) + i] = gv(r0 + static_cast<std::int64_t>(i), c0 - 1);
          halo[halo_e(bd) + i] =
              gv(r0 + static_cast<std::int64_t>(i), c0 + static_cast<std::int64_t>(bd));
        }
        dm.write_from_host(h_cur, halo.data(), halo_bytes, halo_off(bi, bj));
      }
    }
  }
  reset_measurement(rt, {&t_cur, &t_next, &pw_blocks, &h_cur, &h_next});

  util::Timer wall;
  rt.run([&](core::ExecContext& ctx) {
    // With a shard cache at l1, the static inputs hit from the second
    // sweep on: power blocks never change, so every re-download after the
    // first sweep is free. Temperature and halo blocks are re-keyed each
    // sweep by the double-buffer swap, and writes through move_data_up /
    // move_data invalidate the stale generation's entries.
    //
    // Expressed as a continuation DAG: per block, three downloads feed a
    // compute node, whose output feeds one "post" node doing the t_next
    // upload and the four halo publishes. Post nodes chain on each other
    // (they write shared root extents — neighbouring blocks publish into
    // the same halo buffer) and the next sweep's downloads wait on the
    // previous sweep's final post, so the data the cache re-keys on is
    // settled. Within a sweep block k+1's downloads overlap block k's
    // compute in a pipelined run; the planner keeps at most `window`
    // blocks in flight, which the planning budget above accounts
    // for. Node bodies capture the current/next buffer roles by pointer
    // value at submission, so the planner-side role flip between sweeps
    // never retargets an already-submitted node; the structs themselves
    // are swapped after the run when the iteration count is odd.
    const bool cached = dm.has_shard_cache(l1);
    // Double-buffered plans keep two blocks in flight; a tuner-chosen
    // serial plan throttles to one (its fat blocks already fill the
    // staging level, so overlapped staging would overrun capacity).
    const std::size_t window = dbuf ? 2 : 1;
    data::Buffer* tc = &t_cur;
    data::Buffer* tn = &t_next;
    data::Buffer* hc = &h_cur;
    data::Buffer* hn = &h_next;
    std::vector<exec::TaskHandle> posts;
    posts.reserve(static_cast<std::size_t>(config.iterations * g * g));
    exec::TaskHandle up_chain{};       // serializes root-extent writers
    exec::TaskHandle compute_chain{};  // one leaf device: computes chain
    exec::TaskHandle sweep_barrier{};  // previous sweep's final post
    for (std::uint64_t it = 0; it < config.iterations; ++it) {
      for (std::uint64_t bi = 0; bi < g; ++bi) {
        for (std::uint64_t bj = 0; bj < g; ++bj) {
          if (posts.size() >= window) {
            ctx.graph().wait(posts[posts.size() - window]);
          }
          const std::uint64_t boff = block_off(bi, bj);
          const std::uint64_t hoff = halo_off(bi, bj);
          const std::vector<exec::TaskHandle> dl_deps = {sweep_barrier};
          std::shared_ptr<data::ScopedBuffer> tout;
          exec::TaskHandle compute;
          if (cached) {
            auto tin_fut =
                ctx.move_down_cached_async(*tc, l1, blk_bytes, boff, dl_deps);
            auto pw_fut = ctx.move_down_cached_async(pw_blocks, l1, blk_bytes,
                                                     boff, dl_deps);
            auto hal_fut =
                ctx.move_down_cached_async(*hc, l1, halo_bytes, hoff, dl_deps);
            tout = std::make_shared<data::ScopedBuffer>(dm, blk_bytes, l1);
            compute =
                ctx.run_async(
                       l1,
                       [tin_fut, pw_fut, hal_fut, tout, bd,
                        &config](core::ExecContext& cctx) mutable {
                         data::ScopedShard tin = tin_fut.get();
                         data::ScopedShard pw = pw_fut.get();
                         data::ScopedShard hal = hal_fut.get();
                         StencilBlock blk{tin.get(), pw.get(), hal.get(),
                                          &tout->get(), bd};
                         hotspot_recurse(cctx, blk, config);
                         // The pinned shards drop here, right after this
                         // block's compute as in the blocking schedule.
                       },
                       {tin_fut.task(), pw_fut.task(), hal_fut.task(),
                        compute_chain})
                    .task();
          } else {
            auto tin_fut = ctx.move_down_async(
                *tc, l1, {.size = blk_bytes, .src_offset = boff}, dl_deps);
            auto pw_fut = ctx.move_down_async(
                pw_blocks, l1, {.size = blk_bytes, .src_offset = boff},
                dl_deps);
            auto hal_fut = ctx.move_down_async(
                *hc, l1, {.size = halo_bytes, .src_offset = hoff}, dl_deps);
            tout = std::make_shared<data::ScopedBuffer>(dm, blk_bytes, l1);
            compute =
                ctx.run_async(
                       l1,
                       [tin_fut, pw_fut, hal_fut, tout, bd,
                        &config](core::ExecContext& cctx) mutable {
                         data::ScopedBuffer tin = tin_fut.get();
                         data::ScopedBuffer pw = pw_fut.get();
                         data::ScopedBuffer hal = hal_fut.get();
                         StencilBlock blk{&tin.get(), &pw.get(), &hal.get(),
                                          &tout->get(), bd};
                         hotspot_recurse(cctx, blk, config);
                       },
                       {tin_fut.task(), pw_fut.task(), hal_fut.task(),
                        compute_chain})
                    .task();
          }
          compute_chain = compute;

          // Post: t_next upload plus the four halo publishes into the
          // next-sweep slots (clamped blocks feed their own slot at the
          // grid boundary). Rows are contiguous; columns are packed in
          // DRAM first. Chained behind the previous post because the
          // publishes of neighbouring blocks write the same root buffer.
          const std::uint64_t top_dst =
              bi > 0 ? halo_off(bi - 1, bj) + halo_s(bd) * kF
                     : halo_off(bi, bj) + halo_n(bd) * kF;
          const std::uint64_t bot_dst =
              bi + 1 < g ? halo_off(bi + 1, bj) + halo_n(bd) * kF
                         : halo_off(bi, bj) + halo_s(bd) * kF;
          const std::uint64_t left_dst =
              bj > 0 ? halo_off(bi, bj - 1) + halo_e(bd) * kF
                     : halo_off(bi, bj) + halo_w(bd) * kF;
          const std::uint64_t right_dst =
              bj + 1 < g ? halo_off(bi, bj + 1) + halo_w(bd) * kF
                         : halo_off(bi, bj) + halo_e(bd) * kF;
          const auto post = ctx.submit(
              [&dm, tout, tn, hn, bd, blk_bytes, boff, top_dst, bot_dst,
               left_dst, right_dst, l1] {
                dm.move_data_up(*tn, tout->get(),
                                {.size = blk_bytes, .dst_offset = boff});
                dm.move_data(*hn, tout->get(),
                             {.size = bd * kF, .dst_offset = top_dst});
                dm.move_data(*hn, tout->get(),
                             {.size = bd * kF,
                              .dst_offset = bot_dst,
                              .src_offset = (bd - 1) * bd * kF});
                data::ScopedBuffer packed(dm, bd * kF, l1);
                pack_column(dm, packed.get(), 0, tout->get(), bd, 0);
                dm.move_data(*hn, packed.get(),
                             {.size = bd * kF, .dst_offset = left_dst});
                pack_column(dm, packed.get(), 0, tout->get(), bd, bd - 1);
                dm.move_data(*hn, packed.get(),
                             {.size = bd * kF, .dst_offset = right_dst});
                tout->reset();
              },
              {compute, up_chain});
          up_chain = post.task();
          posts.push_back(post.task());
        }
      }
      std::swap(tc, tn);
      std::swap(hc, hn);
      sweep_barrier = up_chain;
    }
  });
  // The node bodies flipped pointer roles, not the structs: with an odd
  // iteration count the final temperatures sit in t_next's storage, so
  // swap the structs to keep the t_cur-reads below (and the caller-visible
  // layout) identical to the blocking version.
  if (config.iterations % 2 == 1) {
    std::swap(t_cur, t_next);
    std::swap(h_cur, h_next);
  }
  RunStats stats = collect(rt, wall.seconds());

  if (config.verify) {
    const Matrix expect = reference_iterated(temp, power, config);
    Matrix got(n, n);
    std::vector<float> staging(bd * bd);
    for (std::uint64_t bi = 0; bi < g; ++bi) {
      for (std::uint64_t bj = 0; bj < g; ++bj) {
        dm.read_to_host(staging.data(), t_cur, blk_bytes, block_off(bi, bj));
        for (std::uint64_t r = 0; r < bd; ++r) {
          std::memcpy(got.data() + (bi * bd + r) * n + bj * bd,
                      staging.data() + r * bd, bd * kF);
        }
      }
    }
    stats.max_rel_err = max_rel_diff(expect, got);
    stats.verified = stats.max_rel_err < kVerifyTolerance;
  }
  // Hash in logical row-major order so runs that picked different
  // level-1 blockings (hand vs tuned) compare bit-for-bit.
  if (config.hash_result) {
    stats.result_hash = hash_blocked_matrix(rt, t_cur, n, bd);
  }

  for (auto* b : {&t_cur, &t_next, &pw_blocks, &h_cur, &h_next}) {
    dm.release(*b);
  }
  return stats;
}

}  // namespace northup::algos
