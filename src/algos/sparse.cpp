#include "northup/algos/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace northup::algos {

void Csr::validate() const {
  NU_CHECK(row_ptr.size() == static_cast<std::size_t>(rows) + 1,
           "row_ptr length must be rows + 1");
  NU_CHECK(row_ptr.front() == 0, "row_ptr must start at 0");
  NU_CHECK(row_ptr.back() == col_id.size(), "row_ptr must end at nnz");
  NU_CHECK(col_id.size() == data.size(), "col_id/data length mismatch");
  for (std::uint32_t r = 0; r < rows; ++r) {
    NU_CHECK(row_ptr[r] <= row_ptr[r + 1], "row_ptr must be monotone");
    for (std::uint32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      NU_CHECK(col_id[i] < cols, "column id out of range");
      if (i > row_ptr[r]) {
        NU_CHECK(col_id[i - 1] < col_id[i], "columns must be sorted");
      }
    }
  }
}

namespace {

/// Builds a CSR from per-row column sets with random values.
Csr assemble(std::uint32_t rows, std::uint32_t cols,
             const std::vector<std::vector<std::uint32_t>>& row_cols,
             util::Xoshiro256& rng) {
  Csr m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.reserve(rows + 1);
  m.row_ptr.push_back(0);
  std::uint64_t total = 0;
  for (const auto& rc : row_cols) total += rc.size();
  m.col_id.reserve(total);
  m.data.reserve(total);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c : row_cols[r]) {
      m.col_id.push_back(c);
      m.data.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
    }
    m.row_ptr.push_back(static_cast<std::uint32_t>(m.col_id.size()));
  }
  return m;
}

/// Draws `count` distinct sorted columns from [0, cols). Oversample +
/// sort + dedupe, which is far faster than a std::set for the millions of
/// rows the benchmark inputs generate.
std::vector<std::uint32_t> draw_columns(std::uint32_t cols,
                                        std::uint32_t count,
                                        util::Xoshiro256& rng) {
  count = std::min(count, cols);
  std::vector<std::uint32_t> chosen;
  chosen.reserve(count + count / 4 + 4);
  while (true) {
    while (chosen.size() < count + count / 4 + 4 &&
           chosen.size() < 2 * static_cast<std::size_t>(count) + 8) {
      chosen.push_back(static_cast<std::uint32_t>(rng.bounded(cols)));
    }
    std::sort(chosen.begin(), chosen.end());
    chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
    if (chosen.size() >= count) {
      chosen.resize(count);
      return chosen;
    }
  }
}

}  // namespace

Csr banded_matrix(std::uint32_t rows, std::uint32_t half_band,
                  std::uint64_t seed) {
  NU_CHECK(rows > 0 && half_band > 0, "empty banded matrix");
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<std::uint32_t>> row_cols(rows);
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::uint32_t lo = r >= half_band ? r - half_band : 0;
    const std::uint32_t hi = std::min(rows - 1, r + half_band);
    for (std::uint32_t c = lo; c <= hi; ++c) row_cols[r].push_back(c);
  }
  return assemble(rows, rows, row_cols, rng);
}

Csr uniform_matrix(std::uint32_t rows, std::uint32_t cols,
                   std::uint32_t avg_nnz, std::uint64_t seed) {
  NU_CHECK(rows > 0 && cols > 0 && avg_nnz > 0, "empty uniform matrix");
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<std::uint32_t>> row_cols(rows);
  for (std::uint32_t r = 0; r < rows; ++r) {
    // Row length jitters +/- 50% around the mean.
    const auto len = static_cast<std::uint32_t>(std::max<std::int64_t>(
        1, rng.range(static_cast<std::int64_t>(avg_nnz) / 2,
                     static_cast<std::int64_t>(avg_nnz) * 3 / 2)));
    row_cols[r] = draw_columns(cols, len, rng);
  }
  return assemble(rows, cols, row_cols, rng);
}

Csr powerlaw_matrix(std::uint32_t rows, std::uint32_t cols,
                    std::uint32_t avg_nnz, double alpha, std::uint64_t seed) {
  NU_CHECK(alpha > 1.0, "power-law shape must exceed 1");
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<std::uint32_t>> row_cols(rows);
  // Pareto(xm, alpha) has mean xm * alpha / (alpha - 1); pick xm so the
  // expected row length is ~avg_nnz.
  const double xm = static_cast<double>(avg_nnz) * (alpha - 1.0) / alpha;
  for (std::uint32_t r = 0; r < rows; ++r) {
    const double u = std::max(rng.uniform(), 1e-12);
    const double len = xm / std::pow(u, 1.0 / alpha);
    const auto capped = static_cast<std::uint32_t>(
        std::min<double>(len, cols));
    row_cols[r] = draw_columns(cols, std::max(1u, capped), rng);
  }
  return assemble(rows, cols, row_cols, rng);
}

Csr dense_rows_matrix(std::uint32_t rows, std::uint32_t cols,
                      std::uint32_t avg_nnz, std::uint32_t num_dense,
                      std::uint32_t dense_len, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<std::uint32_t>> row_cols(rows);
  for (std::uint32_t r = 0; r < rows; ++r) {
    row_cols[r] = draw_columns(cols, std::max(1u, avg_nnz), rng);
  }
  for (std::uint32_t i = 0; i < num_dense; ++i) {
    const auto r = static_cast<std::uint32_t>(rng.bounded(rows));
    row_cols[r] = draw_columns(cols, dense_len, rng);
  }
  return assemble(rows, cols, row_cols, rng);
}

std::vector<float> random_vector(std::uint32_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

std::vector<float> spmv_reference(const Csr& a, const std::vector<float>& x) {
  NU_CHECK(x.size() == a.cols, "vector length mismatch");
  std::vector<float> y(a.rows, 0.0f);
  for (std::uint32_t r = 0; r < a.rows; ++r) {
    float acc = 0.0f;
    for (std::uint32_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      acc += a.data[i] * x[a.col_id[i]];
    }
    y[r] = acc;
  }
  return y;
}

double max_rel_diff(const std::vector<float>& a, const std::vector<float>& b) {
  NU_CHECK(a.size() == b.size(), "vector length mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double denom = std::max(1.0, std::abs(static_cast<double>(a[i])));
    worst = std::max(worst, std::abs(static_cast<double>(a[i]) -
                                     static_cast<double>(b[i])) /
                                denom);
  }
  return worst;
}

}  // namespace northup::algos
