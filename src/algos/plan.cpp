#include "northup/algos/plan.hpp"

namespace northup::algos {

namespace {

class GemmPlan final : public Plan {
 public:
  explicit GemmPlan(GemmConfig config) : config_(std::move(config)) {}
  std::string name() const override { return "gemm"; }
  RunStats run(core::Runtime& rt) const override {
    return gemm_northup(rt, config_);
  }

 private:
  GemmConfig config_;
};

class HotspotPlan final : public Plan {
 public:
  explicit HotspotPlan(HotspotConfig config) : config_(std::move(config)) {}
  std::string name() const override { return "hotspot"; }
  RunStats run(core::Runtime& rt) const override {
    return hotspot_northup(rt, config_);
  }

 private:
  HotspotConfig config_;
};

class SpmvPlan final : public Plan {
 public:
  explicit SpmvPlan(SpmvConfig config) : config_(std::move(config)) {}
  std::string name() const override { return "spmv"; }
  RunStats run(core::Runtime& rt) const override {
    return spmv_northup(rt, config_);
  }

 private:
  SpmvConfig config_;
};

}  // namespace

exec::Future<RunStats> Plan::build(core::Runtime& rt, exec::TaskGraph& graph,
                                   std::vector<exec::TaskHandle> deps) const {
  exec::Promise<RunStats> promise;
  const auto task = graph.add(
      [this, &rt, promise](exec::RunStatus status) {
        try {
          if (status == exec::RunStatus::kCancelled) {
            throw exec::CancelledError("plan '" + name() +
                                       "' cancelled before it ran");
          }
          if (status != exec::RunStatus::kOk) {
            throw exec::DependencyError("plan '" + name() +
                                        "' dependency failed");
          }
          promise.set_value(run(rt));
        } catch (...) {
          promise.set_exception(std::current_exception());
          throw;  // poison dependent plans
        }
      },
      std::move(deps));
  return promise.future(task);
}

std::unique_ptr<Plan> make_plan(GemmConfig config) {
  return std::make_unique<GemmPlan>(std::move(config));
}
std::unique_ptr<Plan> make_plan(HotspotConfig config) {
  return std::make_unique<HotspotPlan>(std::move(config));
}
std::unique_ptr<Plan> make_plan(SpmvConfig config) {
  return std::make_unique<SpmvPlan>(std::move(config));
}

}  // namespace northup::algos
