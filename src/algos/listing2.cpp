#include "northup/algos/listing2.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "northup/util/timer.hpp"

namespace northup::algos {

namespace {
constexpr std::uint64_t kF = sizeof(float);
}  // namespace

RunStats gemm_listing2(core::Runtime& rt, const GemmConfig& config) {
  // --- The brittleness Listing 2 encodes: the system shape is baked into
  //     the program. Anything else is rejected up front.
  const auto& tree = rt.tree();
  if (tree.node_count() != 2 || tree.get_max_treelevel() != 1) {
    throw util::TopologyError(
        "gemm_listing2 is hard-coded for a 2-level system (storage + DRAM); "
        "this tree has " + std::to_string(tree.node_count()) + " nodes");
  }
  const topo::NodeId l0 = tree.root();
  const topo::NodeId l1 = tree.get_children_list(l0)[0];
  if (!mem::is_file_backed(tree.fetch_node_type(l0)) ||
      tree.fetch_node_type(l1) != mem::StorageKind::Dram) {
    throw util::TopologyError(
        "gemm_listing2 requires file storage at level 0 and DRAM at level 1");
  }
  device::Processor* gpu = rt.processor_at(l1, topo::ProcessorType::Gpu);
  if (gpu == nullptr) {
    throw util::TopologyError("gemm_listing2 requires a GPU at the DRAM level");
  }

  auto& dm = rt.dm();
  const std::uint64_t n = config.n;
  const std::uint64_t blk = choose_gemm_block(
      n, config.leaf_tile, dm.storage(l1).available(), /*reuse=*/false,
      config.capacity_safety);
  const std::uint64_t g = n / blk;
  const std::uint64_t blk_bytes = blk * blk * kF;

  Matrix ha = random_matrix(n, n, config.seed);
  Matrix hb = random_matrix(n, n, config.seed + 1);

  // "file_open / file_read" region: block-major files at level 0.
  data::Buffer fa = dm.alloc(n * n * kF, l0);
  data::Buffer fb = dm.alloc(n * n * kF, l0);
  data::Buffer fc = dm.alloc(n * n * kF, l0);
  {
    std::vector<float> staging(blk * blk);
    auto write_blocked = [&](data::Buffer& dst, const Matrix& src) {
      for (std::uint64_t bi = 0; bi < g; ++bi) {
        for (std::uint64_t bj = 0; bj < g; ++bj) {
          for (std::uint64_t r = 0; r < blk; ++r) {
            std::memcpy(staging.data() + r * blk,
                        src.data() + (bi * blk + r) * n + bj * blk,
                        blk * kF);
          }
          dm.write_from_host(dst, staging.data(), blk_bytes,
                             (bi * g + bj) * blk_bytes);
        }
      }
    };
    write_blocked(fa, ha);
    write_blocked(fb, hb);
  }
  reset_measurement(rt, {&fa, &fb, &fc});

  util::Timer wall;
  // --- Listing 2's explicit two-level loop nest: the level-0 chunk loop
  //     with malloc + file_read, then the level-1 device loop with
  //     dMalloc + dCopyBlockH2D + dLaunchComputation + dCopyBlockD2H.
  //     Note no recursion, no tree queries, no capacity planner: every
  //     size and level is spelled out by hand.
  for (std::uint64_t i = 0; i < g; ++i) {
    for (std::uint64_t j = 0; j < g; ++j) {
      data::Buffer cb = dm.alloc(blk_bytes, l1);
      dm.fill(cb, std::byte{0}, blk_bytes);
      for (std::uint64_t kk = 0; kk < g; ++kk) {
        data::Buffer ab = dm.alloc(blk_bytes, l1);
        data::Buffer bb = dm.alloc(blk_bytes, l1);
        dm.move_data(
            ab, fa,
            {.size = blk_bytes, .src_offset = (i * g + kk) * blk_bytes});
        dm.move_data(
            bb, fb,
            {.size = blk_bytes, .src_offset = (kk * g + j) * blk_bytes});

        // dLaunchComputation: the same tiled kernel, launched directly.
        rt.run_from(l1, [&](core::ExecContext& ctx) {
          gemm_leaf(ctx, {&ab, 0, blk * kF}, {&bb, 0, blk * kF},
                    {&cb, 0, blk * kF}, blk, blk, blk, config.leaf_tile);
        });

        dm.release(ab);
        dm.release(bb);
      }
      // file_write of the result chunk.
      dm.move_data(
          fc, cb,
          {.size = blk_bytes, .dst_offset = (i * g + j) * blk_bytes});
      dm.release(cb);
    }
  }

  RunStats stats;
  if (auto* es = rt.event_sim()) stats.breakdown = core::Breakdown::from(*es);
  stats.makespan = stats.breakdown.makespan;
  stats.bytes_moved = rt.dm().bytes_moved();
  stats.wall_seconds = wall.seconds();
  stats.spawns = rt.spawn_count();

  if (config.verify_samples > 0) {
    util::Xoshiro256 rng(config.seed ^ 0x5eedULL);
    double worst = 0.0;
    for (std::uint64_t s = 0; s < config.verify_samples; ++s) {
      const auto r = rng.bounded(n);
      const auto c = rng.bounded(n);
      double expect = 0.0;
      for (std::uint64_t kk = 0; kk < n; ++kk) {
        expect += static_cast<double>(ha.at(r, kk)) *
                  static_cast<double>(hb.at(kk, c));
      }
      const std::uint64_t off =
          ((r / blk) * g + (c / blk)) * blk_bytes +
          ((r % blk) * blk + (c % blk)) * kF;
      float got = 0.0f;
      dm.read_to_host(&got, fc, kF, off);
      worst = std::max(worst, std::abs(expect - static_cast<double>(got)) /
                                  std::max(1.0, std::abs(expect)));
    }
    stats.max_rel_err = worst;
    stats.verified = worst < kVerifyTolerance;
  }

  for (auto* b : {&fa, &fb, &fc}) dm.release(*b);
  return stats;
}

}  // namespace northup::algos
