#include "northup/algos/hotspot_temporal.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "northup/core/chunking.hpp"
#include "northup/util/timer.hpp"

namespace northup::algos {

namespace {

constexpr std::uint64_t kF = sizeof(float);

/// Which global grid edges a block touches (compute clamps there).
struct EdgeFlags {
  bool north = false;
  bool south = false;
  bool west = false;
  bool east = false;
};

/// Largest block dim b | n (b >= tile) whose temporal working set fits:
/// two (b+2k)^2 temp regions + one (b+2k)^2 power region.
std::uint64_t choose_temporal_block(std::uint64_t n, std::uint64_t tile,
                                    std::uint64_t k,
                                    std::uint64_t child_available,
                                    double safety) {
  NU_CHECK(n >= tile && n % tile == 0,
           "grid dim must be a multiple of the leaf tile");
  const double budget = static_cast<double>(child_available) * safety;
  for (std::uint64_t b = n; b >= tile; b /= 2) {
    if (n % b != 0) continue;
    const double ext = static_cast<double>(b + 2 * k);
    if (3.0 * ext * ext * kF <= budget) return b;
  }
  throw util::CapacityError(
      "no temporal-blocking block size fits the child capacity");
}

/// One stencil sweep over the extended region: computes rows
/// [row_lo, row_hi) x cols [col_lo, col_hi), reading `in` with clamping
/// at global edges, writing `out`. One workgroup per 16-row band.
void temporal_sweep(core::ExecContext& ctx, data::Buffer& in,
                    data::Buffer& out, data::Buffer& power,
                    std::uint64_t dim_e, std::uint64_t k,
                    std::uint64_t row_lo, std::uint64_t row_hi,
                    std::uint64_t col_lo, std::uint64_t col_hi,
                    const EdgeFlags& edges, const HotspotConfig& config) {
  auto& rt = ctx.runtime();
  auto& dm = ctx.dm();
  device::Processor* proc = leaf_processor(rt, ctx.get_cur_treenode());
  const HotSpotParams p = config.params;

  float* tin = reinterpret_cast<float*>(dm.host_view(in));
  float* tout = reinterpret_cast<float*>(dm.host_view(out));
  float* pw = reinterpret_cast<float*>(dm.host_view(power));

  const std::uint64_t rows = row_hi - row_lo;
  const auto num_groups =
      static_cast<std::uint32_t>(core::ceil_div(rows, std::uint64_t{16}));

  device::KernelFn kernel = [=](device::WorkGroupCtx& wg) {
    // Clamp a coordinate at global edges only: the grid's true boundary
    // sits k cells inside the extended region on edge-touching sides.
    auto clamp_r = [&](std::int64_t r) -> std::uint64_t {
      if (edges.north && r < static_cast<std::int64_t>(k)) return k;
      if (edges.south && r >= static_cast<std::int64_t>(dim_e - k)) {
        return dim_e - k - 1;
      }
      return static_cast<std::uint64_t>(r);
    };
    auto clamp_c = [&](std::int64_t c) -> std::uint64_t {
      if (edges.west && c < static_cast<std::int64_t>(k)) return k;
      if (edges.east && c >= static_cast<std::int64_t>(dim_e - k)) {
        return dim_e - k - 1;
      }
      return static_cast<std::uint64_t>(c);
    };

    const std::uint64_t r0 = row_lo + wg.group_id * 16ULL;
    const std::uint64_t r1 = std::min(r0 + 16, row_hi);
    for (std::uint64_t r = r0; r < r1; ++r) {
      for (std::uint64_t c = col_lo; c < col_hi; ++c) {
        const float v = tin[r * dim_e + c];
        const float north =
            tin[clamp_r(static_cast<std::int64_t>(r) - 1) * dim_e + c];
        const float south =
            tin[clamp_r(static_cast<std::int64_t>(r) + 1) * dim_e + c];
        const float west =
            tin[r * dim_e + clamp_c(static_cast<std::int64_t>(c) - 1)];
        const float east =
            tin[r * dim_e + clamp_c(static_cast<std::int64_t>(c) + 1)];
        const float delta =
            p.cap_inv * (pw[r * dim_e + c] +
                         (north + south - 2.0f * v) * p.ry_inv +
                         (east + west - 2.0f * v) * p.rx_inv +
                         (p.ambient - v) * p.rz_inv);
        tout[r * dim_e + c] = v + delta;
      }
    }
  };

  const double cells =
      static_cast<double>(rows) * static_cast<double>(col_hi - col_lo);
  device::KernelCost cost;
  cost.flops = 12.0 * cells;
  cost.bytes = kF * cells * 3.2 * config.device_traffic_factor;

  std::vector<sim::TaskId> deps;
  for (data::Buffer* b : {&in, &power, &out}) {
    if (b->ready != sim::kInvalidTask) deps.push_back(b->ready);
  }
  auto launch =
      proc->launch("hotspot_temporal", num_groups, kernel, cost, deps);
  out.ready = launch.task;
}

}  // namespace

RunStats hotspot_temporal_northup(core::Runtime& rt,
                                  const HotspotConfig& config,
                                  std::uint64_t sweeps_per_load) {
  const std::uint64_t n = config.n;
  const std::uint64_t k = sweeps_per_load;
  NU_CHECK(k >= 1, "sweeps_per_load must be at least 1");
  NU_CHECK(config.iterations % k == 0,
           "iterations must be a multiple of sweeps_per_load");
  auto& dm = rt.dm();
  const topo::NodeId root = rt.tree().root();
  NU_CHECK(!rt.tree().get_children_list(root).empty(),
           "temporal blocking needs at least two tree levels");
  const topo::NodeId l1 = rt.tree().get_children_list(root)[0];

  const std::uint64_t bd = choose_temporal_block(
      n, config.leaf_tile, k, dm.storage(l1).available(),
      config.capacity_safety);
  NU_CHECK(k <= bd, "halo width must not exceed the block dim");
  const std::uint64_t g = n / bd;
  const std::uint64_t blk_bytes = bd * bd * kF;
  const std::uint64_t dim_e = bd + 2 * k;
  const std::uint64_t ext_bytes = dim_e * dim_e * kF;

  Matrix temp = random_matrix(n, n, config.seed);
  for (std::size_t i = 0; i < temp.size(); ++i) temp.data()[i] += 80.0f;
  Matrix power = random_matrix(n, n, config.seed + 1);
  for (std::size_t i = 0; i < power.size(); ++i) {
    power.data()[i] = std::abs(power.data()[i]);
  }

  data::Buffer t_cur = dm.alloc(n * n * kF, root);
  data::Buffer t_next = dm.alloc(n * n * kF, root);
  data::Buffer pw_blocks = dm.alloc(n * n * kF, root);

  auto block_off = [&](std::uint64_t bi, std::uint64_t bj) {
    return (bi * g + bj) * blk_bytes;
  };

  // Preprocessing: block-tiled layout, as in hotspot_northup.
  {
    std::vector<float> staging(bd * bd);
    auto write_blocked = [&](data::Buffer& dst, const Matrix& src) {
      for (std::uint64_t bi = 0; bi < g; ++bi) {
        for (std::uint64_t bj = 0; bj < g; ++bj) {
          for (std::uint64_t r = 0; r < bd; ++r) {
            std::memcpy(staging.data() + r * bd,
                        src.data() + (bi * bd + r) * n + bj * bd, bd * kF);
          }
          dm.write_from_host(dst, staging.data(), blk_bytes,
                             block_off(bi, bj));
        }
      }
    };
    write_blocked(t_cur, temp);
    write_blocked(pw_blocks, power);
  }
  reset_measurement(rt, {&t_cur, &t_next, &pw_blocks});

  // Assembles the extended region of `src_blocks` for block (bi, bj) into
  // `dst` (a DRAM buffer of dim_e^2 floats). The block and the N/S strips
  // are contiguous extents in block-tiled storage; E/W strips and corners
  // are strided (and charged per row).
  auto assemble = [&](data::Buffer& dst, data::Buffer& src_blocks,
                      std::uint64_t bi, std::uint64_t bj) {
    const std::uint64_t pitch_e = dim_e * kF;
    const std::uint64_t pitch_b = bd * kF;
    // Center block.
    dm.move_block_2d(dst, src_blocks, bd, bd * kF, (k * dim_e + k) * kF,
                     pitch_e, block_off(bi, bj), pitch_b);
    // North strip: bottom k rows of (bi-1, bj) — contiguous source run.
    if (bi > 0) {
      dm.move_block_2d(dst, src_blocks, k, bd * kF, k * kF, pitch_e,
                       block_off(bi - 1, bj) + (bd - k) * bd * kF, pitch_b);
    }
    // South strip: top k rows of (bi+1, bj).
    if (bi + 1 < g) {
      dm.move_block_2d(dst, src_blocks, k, bd * kF,
                       ((k + bd) * dim_e + k) * kF, pitch_e,
                       block_off(bi + 1, bj), pitch_b);
    }
    // West strip: right k cols of (bi, bj-1) — strided source.
    if (bj > 0) {
      dm.move_block_2d(dst, src_blocks, bd, k * kF, (k * dim_e) * kF,
                       pitch_e, block_off(bi, bj - 1) + (bd - k) * kF,
                       pitch_b);
    }
    // East strip: left k cols of (bi, bj+1).
    if (bj + 1 < g) {
      dm.move_block_2d(dst, src_blocks, bd, k * kF,
                       (k * dim_e + k + bd) * kF, pitch_e,
                       block_off(bi, bj + 1), pitch_b);
    }
    // Corners (needed only when both adjacent strips exist).
    if (bi > 0 && bj > 0) {  // NW: bottom-right k x k of (bi-1, bj-1)
      dm.move_block_2d(dst, src_blocks, k, k * kF, 0, pitch_e,
                       block_off(bi - 1, bj - 1) + ((bd - k) * bd + bd - k) *
                                                       kF,
                       pitch_b);
    }
    if (bi > 0 && bj + 1 < g) {  // NE: bottom-left of (bi-1, bj+1)
      dm.move_block_2d(dst, src_blocks, k, k * kF, (k + bd) * kF, pitch_e,
                       block_off(bi - 1, bj + 1) + (bd - k) * bd * kF,
                       pitch_b);
    }
    if (bi + 1 < g && bj > 0) {  // SW: top-right of (bi+1, bj-1)
      dm.move_block_2d(dst, src_blocks, k, k * kF,
                       ((k + bd) * dim_e) * kF, pitch_e,
                       block_off(bi + 1, bj - 1) + (bd - k) * kF, pitch_b);
    }
    if (bi + 1 < g && bj + 1 < g) {  // SE: top-left of (bi+1, bj+1)
      dm.move_block_2d(dst, src_blocks, k, k * kF,
                       ((k + bd) * dim_e + k + bd) * kF, pitch_e,
                       block_off(bi + 1, bj + 1), pitch_b);
    }
  };

  util::Timer wall;
  rt.run([&](core::ExecContext& ctx) {
    const std::uint64_t rounds = config.iterations / k;
    for (std::uint64_t round = 0; round < rounds; ++round) {
      for (std::uint64_t bi = 0; bi < g; ++bi) {
        for (std::uint64_t bj = 0; bj < g; ++bj) {
          const EdgeFlags edges{bi == 0, bi + 1 == g, bj == 0, bj + 1 == g};

          data::Buffer ea = dm.alloc(ext_bytes, l1);
          data::Buffer eb = dm.alloc(ext_bytes, l1);
          data::Buffer ep = dm.alloc(ext_bytes, l1);
          assemble(ea, t_cur, bi, bj);
          assemble(ep, pw_blocks, bi, bj);

          ctx.northup_spawn(l1, [&](core::ExecContext& cctx) {
            data::Buffer* in = &ea;
            data::Buffer* out = &eb;
            for (std::uint64_t s = 1; s <= k; ++s) {
              // The valid region shrinks by one ring per sweep on sides
              // fed by halo data; global-edge sides stay pinned at the
              // real boundary (k) with clamped reads.
              const std::uint64_t row_lo = edges.north ? k : s;
              const std::uint64_t row_hi = edges.south ? dim_e - k
                                                       : dim_e - s;
              const std::uint64_t col_lo = edges.west ? k : s;
              const std::uint64_t col_hi = edges.east ? dim_e - k
                                                      : dim_e - s;
              temporal_sweep(cctx, *in, *out, ep, dim_e, k, row_lo, row_hi,
                             col_lo, col_hi, edges, config);
              std::swap(in, out);
            }
            if (in != &ea) std::swap(ea, eb);  // result lives in `ea`
          });

          // Central block back to storage (one write per k sweeps).
          dm.move_block_2d(t_next, ea, bd, bd * kF, block_off(bi, bj),
                           bd * kF, (k * dim_e + k) * kF, dim_e * kF);
          for (auto* b : {&ea, &eb, &ep}) dm.release(*b);
        }
      }
      std::swap(t_cur, t_next);
    }
  });

  RunStats stats;
  if (auto* es = rt.event_sim()) stats.breakdown = core::Breakdown::from(*es);
  stats.makespan = stats.breakdown.makespan;
  stats.bytes_moved = rt.dm().bytes_moved();
  stats.wall_seconds = wall.seconds();
  stats.spawns = rt.spawn_count();

  if (config.verify) {
    Matrix cur = temp;
    Matrix next(n, n);
    for (std::uint64_t i = 0; i < config.iterations; ++i) {
      hotspot_step(cur, power, next, config.params);
      std::swap(cur, next);
    }
    Matrix got(n, n);
    std::vector<float> staging(bd * bd);
    for (std::uint64_t bi = 0; bi < g; ++bi) {
      for (std::uint64_t bj = 0; bj < g; ++bj) {
        dm.read_to_host(staging.data(), t_cur, blk_bytes, block_off(bi, bj));
        for (std::uint64_t r = 0; r < bd; ++r) {
          std::memcpy(got.data() + (bi * bd + r) * n + bj * bd,
                      staging.data() + r * bd, bd * kF);
        }
      }
    }
    stats.max_rel_err = max_rel_diff(cur, got);
    stats.verified = stats.max_rel_err < kVerifyTolerance;
  }

  for (auto* b : {&t_cur, &t_next, &pw_blocks}) dm.release(*b);
  return stats;
}

}  // namespace northup::algos
