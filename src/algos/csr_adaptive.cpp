#include "northup/algos/csr_adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "northup/plan/auto_tuner.hpp"
#include "northup/util/timer.hpp"

namespace northup::algos {

namespace {
constexpr std::uint64_t kU = sizeof(std::uint32_t);
constexpr std::uint64_t kF = sizeof(float);
}  // namespace

Csr SpmvConfig::make_matrix() const {
  switch (pattern) {
    case Pattern::Banded:
      return banded_matrix(rows, std::max(1u, avg_nnz / 2), seed);
    case Pattern::Uniform:
      return uniform_matrix(rows, rows, avg_nnz, seed);
    case Pattern::PowerLaw:
      return powerlaw_matrix(rows, rows, avg_nnz, 1.8, seed);
    case Pattern::DenseRows:
      return dense_rows_matrix(rows, rows, avg_nnz, std::max(1u, rows / 512),
                               std::min(rows, avg_nnz * 64), seed);
  }
  NU_CHECK(false, "unknown sparse pattern");
}

std::vector<RowBlock> bin_rows(const std::uint32_t* row_ptr,
                               std::uint32_t rows,
                               std::uint32_t nnz_per_workgroup) {
  NU_CHECK(nnz_per_workgroup > 0, "nnz_per_workgroup must be positive");
  std::vector<RowBlock> blocks;
  std::uint32_t r = 0;
  while (r < rows) {
    const std::uint32_t len = row_ptr[r + 1] - row_ptr[r];
    if (len > nnz_per_workgroup) {
      // A long row gets a workgroup to itself: CSR-Vector.
      blocks.push_back({r, 1, RowBlockKind::Vector});
      ++r;
      continue;
    }
    // Greedily extend a CSR-Stream block while the combined nnz fits.
    std::uint32_t end = r;
    std::uint32_t acc = 0;
    while (end < rows) {
      const std::uint32_t rl = row_ptr[end + 1] - row_ptr[end];
      if (rl > nnz_per_workgroup) break;  // next long row starts its own block
      if (acc + rl > nnz_per_workgroup) break;
      acc += rl;
      ++end;
    }
    blocks.push_back({r, end - r, RowBlockKind::Stream});
    r = end;
  }
  return blocks;
}

namespace {

/// Leaf execution: CPU binning pass, then one GPU launch with a
/// workgroup per row block.
void spmv_leaf(core::ExecContext& ctx, const SpmvShard& shard,
               const SpmvConfig& config) {
  auto& rt = ctx.runtime();
  auto& dm = ctx.dm();
  const topo::NodeId node = ctx.get_cur_treenode();

  auto* rp = reinterpret_cast<std::uint32_t*>(dm.host_view(*shard.row_ptr));
  auto* ci = reinterpret_cast<std::uint32_t*>(dm.host_view(*shard.col_id));
  auto* va = reinterpret_cast<float*>(dm.host_view(*shard.data));
  auto* x = reinterpret_cast<float*>(dm.host_view(*shard.x));
  auto* y = reinterpret_cast<float*>(dm.host_view(*shard.y));
  const std::uint32_t nnz_base = shard.nnz_base;

  // Binning runs on the CPU (§V-C): a couple of passes over row_ptr plus
  // the block list write.
  std::vector<RowBlock> blocks;
  {
    device::Processor* cpu = leaf_processor(rt, node);
    // Prefer the true CPU for binning even when the leaf also has a GPU.
    if (auto* c = rt.processor_at(node, topo::ProcessorType::Cpu)) cpu = c;
    if (cpu->type() != topo::ProcessorType::Cpu) {
      if (auto* c = rt.find_processor(topo::ProcessorType::Cpu)) cpu = c;
    }
    std::vector<sim::TaskId> deps;
    if (shard.row_ptr->ready != sim::kInvalidTask) {
      deps.push_back(shard.row_ptr->ready);
    }
    device::KernelCost bin_cost;
    // Binning is a streaming pass over row_ptr: memory-bound on the CPU.
    bin_cost.flops = 2.0 * static_cast<double>(shard.rows);
    bin_cost.bytes =
        16.0 * static_cast<double>(shard.rows) * config.cpu_binning_factor;
    if (config.count_binning) {
      const auto bin_launch =
          cpu->launch_costed("csr_bin", 1, bin_cost, std::move(deps));
      // The GPU kernel depends on the binning output.
      shard.row_ptr->ready = bin_launch.task;
    }
    blocks = bin_rows(rp, shard.rows, config.nnz_per_workgroup);
  }
  if (blocks.empty()) return;

  device::Processor* proc = leaf_processor(rt, node);
  const std::uint32_t wg_nnz_cap = config.nnz_per_workgroup;
  const RowBlock* block_arr = blocks.data();

  device::KernelFn kernel = [=](device::WorkGroupCtx& wg) {
    const RowBlock& blk = block_arr[wg.group_id];
    if (blk.kind == RowBlockKind::Stream &&
        wg.local_mem_bytes >= wg_nnz_cap * kF) {
      // CSR-Stream: stage the block's nnz through local memory, then
      // reduce each row out of the staged values. (A CPU leaf without a
      // scratchpad falls through to the direct path below.)
      const std::uint32_t lo = rp[blk.first_row] - nnz_base;
      const std::uint32_t hi = rp[blk.first_row + blk.row_count] - nnz_base;
      float* lv = wg.local_array<float>(wg_nnz_cap, 0);
      for (std::uint32_t i = lo; i < hi; ++i) {
        lv[i - lo] = va[i] * x[ci[i]];
      }
      for (std::uint32_t r = 0; r < blk.row_count; ++r) {
        const std::uint32_t row = blk.first_row + r;
        float acc = 0.0f;
        for (std::uint32_t i = rp[row] - nnz_base; i < rp[row + 1] - nnz_base;
             ++i) {
          acc += lv[i - lo];
        }
        y[row] = acc;
      }
    } else if (blk.kind == RowBlockKind::Stream) {
      for (std::uint32_t r = 0; r < blk.row_count; ++r) {
        const std::uint32_t row = blk.first_row + r;
        float acc = 0.0f;
        for (std::uint32_t i = rp[row] - nnz_base; i < rp[row + 1] - nnz_base;
             ++i) {
          acc += va[i] * x[ci[i]];
        }
        y[row] = acc;
      }
    } else {
      // CSR-Vector: the whole workgroup reduces one long row.
      const std::uint32_t row = blk.first_row;
      float acc = 0.0f;
      for (std::uint32_t i = rp[row] - nnz_base; i < rp[row + 1] - nnz_base;
           ++i) {
        acc += va[i] * x[ci[i]];
      }
      y[row] = acc;
    }
  };

  const double nnz = static_cast<double>(rp[shard.rows] - rp[0]);
  device::KernelCost cost;
  cost.flops = 2.0 * nnz;
  // col_id + data + gathered x per nnz, row_ptr + y per row, scaled by
  // the gather-efficiency calibration factor.
  cost.bytes = (nnz * 12.0 + static_cast<double>(shard.rows) * 8.0) *
               config.device_traffic_factor;

  std::vector<sim::TaskId> deps;
  for (data::Buffer* b :
       {shard.row_ptr, shard.col_id, shard.data, shard.x, shard.y}) {
    if (b->ready != sim::kInvalidTask) deps.push_back(b->ready);
  }
  auto launch =
      proc->launch("spmv_adaptive", static_cast<std::uint32_t>(blocks.size()),
                   kernel, cost, std::move(deps));
  shard.y->ready = launch.task;
}

/// Reads the absolute row_ptr slice of a shard back to the host for
/// split planning ("This information can be easily calculated", §IV-C).
std::vector<std::uint32_t> fetch_row_ptr(data::DataManager& dm,
                                         const SpmvShard& shard) {
  std::vector<std::uint32_t> rp(shard.rows + 1);
  dm.read_to_host(rp.data(), *shard.row_ptr, rp.size() * kU);
  return rp;
}

/// Aggregate transfer/compute of one split level over `rows` rows and
/// `nnz` nonzeros, for the tuner's chunk-size model. Chunk count and
/// occupancy are left at defaults: tune_chunk_bytes only consumes the
/// edge estimate and the level's total compute time.
plan::Workload spmv_level_workload(core::Runtime& rt, std::uint64_t rows,
                                   std::uint64_t nnz,
                                   const SpmvConfig& config,
                                   topo::NodeId child_node) {
  plan::Workload w;
  w.down_bytes = (rows + 1) * kU + nnz * (kU + kF);
  w.up_bytes = rows * kF;
  w.down_accesses_per_chunk = 3.0;  // row_ptr + col_id + data slices
  w.up_accesses_per_chunk = 1.0;    // y slice
  w.compute_flops = 2.0 * static_cast<double>(nnz);
  w.compute_bytes = (static_cast<double>(nnz) * 12.0 +
                     static_cast<double>(rows) * 8.0) *
                    config.device_traffic_factor;
  w.compute_node = planned_leaf(rt, child_node);
  return w;
}

/// The tuned byte cap for one split level: the hand plan packs shards up
/// to the full staging budget; the tuner may cut that down to the
/// latency-amortization point of the parent→child edge (never below
/// `floor`, never above the budget).
double tuned_split_cap(core::Runtime& rt, topo::NodeId parent,
                       topo::NodeId child, std::uint64_t rows,
                       std::uint64_t nnz, const SpmvConfig& config,
                       double budget, bool overlapped) {
  const plan::AutoTuner* tuner = auto_tuner(rt);
  if (tuner == nullptr || budget <= 0.0) return budget;
  constexpr std::uint64_t kFloor = 1ULL << 12;
  const std::uint64_t cap = tuner->tune_chunk_bytes(
      parent, child, spmv_level_workload(rt, rows, nnz, config, child),
      static_cast<std::uint64_t>(budget), kFloor, overlapped);
  return std::min(budget, static_cast<double>(cap));
}

/// Per-shard leaf config: with a tuner, the CSR-Adaptive cutoff is
/// re-tuned for the sub-shard about to descend (smaller shards get a
/// smaller cutoff so they still fill the leaf device with workgroups —
/// bit-identical y either way, since each row reduces in row order).
SpmvConfig tuned_child_config(core::Runtime& rt, topo::NodeId child_node,
                              std::uint64_t nnz_s,
                              const SpmvConfig& config) {
  const plan::AutoTuner* tuner = auto_tuner(rt);
  if (tuner == nullptr) return config;
  SpmvConfig tuned = config;
  tuned.nnz_per_workgroup = static_cast<std::uint32_t>(
      tuner->tune_nnz_cutoff(planned_leaf(rt, child_node), nnz_s,
                             config.nnz_per_workgroup));
  return tuned;
}

}  // namespace

void spmv_recurse(core::ExecContext& ctx, const SpmvShard& shard,
                  const SpmvConfig& config) {
  if (ctx.is_leaf()) {
    spmv_leaf(ctx, shard, config);
    return;
  }
  auto& dm = ctx.dm();
  // Online adaptation: with a tuner the descent re-ranks children by
  // observed bandwidth at every level (planned_child); the hand path
  // keeps the declared first child.
  const topo::NodeId child_node =
      planned_child(ctx.runtime(), ctx.get_cur_treenode());

  const std::vector<std::uint32_t> rp = fetch_row_ptr(dm, shard);
  const double budget = static_cast<double>(ctx.available_bytes(child_node)) *
                        config.capacity_safety;
  // Tuned shard-byte cap for this level (== budget without a tuner). A
  // single row larger than the cap still forms its own shard, checked
  // against the real capacity budget below.
  const double cap = tuned_split_cap(
      ctx.runtime(), ctx.get_cur_treenode(), child_node, shard.rows,
      rp[shard.rows] - rp[0], config, budget, /*overlapped=*/false);

  std::uint32_t first = 0;
  while (first < shard.rows) {
    // Greedy nnz-aware split: extend the sub-shard while its arrays fit.
    std::uint32_t last = first;
    while (last < shard.rows) {
      const std::uint64_t nnz_s = rp[last + 1] - rp[first];
      const std::uint64_t rows_s = last + 1 - first;
      const double bytes =
          static_cast<double>((rows_s + 1) * kU + nnz_s * (kU + kF) +
                              rows_s * kF);
      if (bytes > cap && last > first) break;
      NU_CHECK(bytes <= budget || last == first,
               "single row exceeds child capacity");
      ++last;
    }
    const std::uint32_t rows_s = last - first;
    const std::uint32_t nnz_s = rp[last] - rp[first];

    // The read-only CSR slices ride the shard cache when one is attached:
    // an iterative solver re-descending the same rows (SpmvConfig::repeats)
    // gets them as hits. The y slice is written, so it stays a plain
    // per-shard allocation.
    const bool cached = dm.has_shard_cache(child_node);
    data::Buffer rp_local, ci_local, va_local;
    data::Buffer* c_rp = nullptr;
    data::Buffer* c_ci = nullptr;
    data::Buffer* c_va = nullptr;
    if (cached) {
      c_rp = dm.move_data_down_cached(*shard.row_ptr, child_node,
                                      (rows_s + 1) * kU, first * kU);
    } else {
      rp_local = dm.alloc((rows_s + 1) * kU, child_node);
      dm.move_data_down(rp_local, *shard.row_ptr,
                        {.size = (rows_s + 1) * kU, .src_offset = first * kU});
      c_rp = &rp_local;
    }
    if (nnz_s > 0 && cached) {
      c_ci = dm.move_data_down_cached(*shard.col_id, child_node, nnz_s * kU,
                                      (rp[first] - shard.nnz_base) * kU);
      c_va = dm.move_data_down_cached(*shard.data, child_node, nnz_s * kF,
                                      (rp[first] - shard.nnz_base) * kF);
    } else if (nnz_s > 0) {
      ci_local = dm.alloc(nnz_s * kU, child_node);
      dm.move_data_down(
          ci_local, *shard.col_id,
          {.size = nnz_s * kU,
           .src_offset = (rp[first] - shard.nnz_base) * kU});
      va_local = dm.alloc(nnz_s * kF, child_node);
      dm.move_data_down(
          va_local, *shard.data,
          {.size = nnz_s * kF,
           .src_offset = (rp[first] - shard.nnz_base) * kF});
      c_ci = &ci_local;
      c_va = &va_local;
    } else {
      // Degenerate empty shard: allocate 1-element placeholders so the
      // leaf still has valid buffers.
      ci_local = dm.alloc(kU, child_node);
      va_local = dm.alloc(kF, child_node);
      c_ci = &ci_local;
      c_va = &va_local;
    }
    data::Buffer c_y = dm.alloc(std::max<std::uint64_t>(rows_s, 1) * kF,
                                child_node);

    const SpmvConfig child_config =
        tuned_child_config(ctx.runtime(), child_node, nnz_s, config);
    ctx.northup_spawn(child_node, [&](core::ExecContext& cctx) {
      SpmvShard sub{c_rp, c_ci, c_va, shard.x, &c_y, rows_s, rp[first]};
      spmv_recurse(cctx, sub, child_config);
    });

    dm.move_data_up(*shard.y, c_y,
                    {.size = rows_s * kF, .dst_offset = first * kF});
    if (cached) {
      dm.release_cached(c_rp);
      if (nnz_s > 0) {
        dm.release_cached(c_ci);
        dm.release_cached(c_va);
      } else {
        dm.release(ci_local);
        dm.release(va_local);
      }
    } else {
      for (auto* b : {&rp_local, &ci_local, &va_local}) {
        if (b->valid()) dm.release(*b);
      }
    }
    dm.release(c_y);
    first = last;
  }
}

namespace {

RunStats collect(core::Runtime& rt, double wall) {
  RunStats s;
  if (auto* es = rt.event_sim()) s.breakdown = core::Breakdown::from(*es);
  s.makespan = s.breakdown.makespan;
  s.bytes_moved = rt.dm().bytes_moved();
  s.wall_seconds = wall;
  s.spawns = rt.spawn_count();
  return s;
}

/// Stages the dense vector x down the first-child chain to the compute
/// leaf, one move per level, releasing intermediate copies. Returns the
/// resident leaf buffer (the paper's requirement that the fastest memory
/// hold the vector).
data::Buffer stage_x_to_leaf(core::Runtime& rt, topo::NodeId from,
                             data::Buffer& x_at_from, std::uint64_t bytes) {
  auto& dm = rt.dm();
  const auto& tree = rt.tree();
  topo::NodeId node = from;
  data::Buffer cur;  // invalid: x_at_from owned by caller
  data::Buffer* src = &x_at_from;
  while (!tree.is_leaf(node)) {
    const topo::NodeId child = planned_child(rt, node);
    data::Buffer next = dm.alloc(bytes, child);
    dm.move_data_down(next, *src, {.size = bytes});
    if (cur.valid()) dm.release(cur);
    cur = std::move(next);
    src = &cur;
    node = child;
  }
  if (!cur.valid()) {
    // `from` is already the leaf: keep a copy so ownership is uniform.
    cur = dm.alloc(bytes, node);
    dm.move_data(cur, x_at_from, {.size = bytes});
  }
  return cur;
}

}  // namespace

RunStats spmv_inmemory(core::Runtime& rt, const SpmvConfig& config_in) {
  // The baseline bins once at load time (§V-B preprocessing analogue).
  SpmvConfig config = config_in;
  config.count_binning = false;
  auto& dm = rt.dm();
  const topo::NodeId home = inmemory_home(rt);
  const Csr a = config.make_matrix();
  const std::vector<float> x = random_vector(a.cols, config.seed + 1);

  data::Buffer b_rp = dm.alloc((a.rows + 1) * kU, home);
  data::Buffer b_ci = dm.alloc(a.nnz() * kU, home);
  data::Buffer b_va = dm.alloc(a.nnz() * kF, home);
  data::Buffer b_x = dm.alloc(a.cols * kF, home);
  data::Buffer b_y = dm.alloc(a.rows * kF, home);
  dm.write_from_host(b_rp, a.row_ptr.data(), (a.rows + 1) * kU);
  dm.write_from_host(b_ci, a.col_id.data(), a.nnz() * kU);
  dm.write_from_host(b_va, a.data.data(), a.nnz() * kF);
  dm.write_from_host(b_x, x.data(), a.cols * kF);

  reset_measurement(rt, {&b_rp, &b_ci, &b_va, &b_x, &b_y});

  util::Timer wall;
  data::Buffer x_leaf;
  rt.run_from(home, [&](core::ExecContext& ctx) {
    x_leaf = stage_x_to_leaf(rt, home, b_x, a.cols * kF);
    SpmvShard shard{&b_rp, &b_ci, &b_va, &x_leaf, &b_y, a.rows, 0};
    for (std::uint32_t rep = 0;
         rep < std::max<std::uint32_t>(1, config.repeats); ++rep) {
      spmv_recurse(ctx, shard, config);
    }
  });
  RunStats stats = collect(rt, wall.seconds());

  if (config.verify) {
    const auto expect = spmv_reference(a, x);
    std::vector<float> got(a.rows);
    dm.read_to_host(got.data(), b_y, a.rows * kF);
    stats.max_rel_err = max_rel_diff(expect, got);
    stats.verified = stats.max_rel_err < kVerifyTolerance;
  }
  if (config.hash_result) {
    stats.result_hash = hash_buffer(rt, b_y, a.rows * kF);
  }

  dm.release(x_leaf);
  for (auto* b : {&b_rp, &b_ci, &b_va, &b_x, &b_y}) dm.release(*b);
  return stats;
}

RunStats spmv_northup(core::Runtime& rt, const SpmvConfig& config) {
  auto& dm = rt.dm();
  const topo::NodeId root = rt.tree().root();
  NU_CHECK(!rt.tree().get_children_list(root).empty(),
           "out-of-core SpMV needs at least two tree levels");
  const Csr a = config.make_matrix();
  const std::vector<float> x = random_vector(a.cols, config.seed + 1);

  data::Buffer b_rp = dm.alloc((a.rows + 1) * kU, root);
  data::Buffer b_ci = dm.alloc(a.nnz() * kU, root);
  data::Buffer b_va = dm.alloc(a.nnz() * kF, root);
  data::Buffer b_x = dm.alloc(a.cols * kF, root);
  data::Buffer b_y = dm.alloc(a.rows * kF, root);
  dm.write_from_host(b_rp, a.row_ptr.data(), (a.rows + 1) * kU);
  dm.write_from_host(b_ci, a.col_id.data(), a.nnz() * kU);
  dm.write_from_host(b_va, a.data.data(), a.nnz() * kF);
  dm.write_from_host(b_x, x.data(), a.cols * kF);

  reset_measurement(rt, {&b_rp, &b_ci, &b_va, &b_x, &b_y});

  util::Timer wall;
  data::Buffer x_leaf;
  rt.run([&](core::ExecContext& ctx) {
    x_leaf = stage_x_to_leaf(rt, root, b_x, a.cols * kF);
    // Top-level split loop of spmv_recurse, expressed as a continuation
    // DAG (deeper recursion levels inside the compute nodes stay
    // blocking). Per sub-shard the CSR slice downloads feed one compute
    // node and one upload node; uploads chain on each other — disjoint y
    // slices, but a shared root buffer — and computes chain because there
    // is one leaf device. Pipelined, shard k+1's downloads overlap shard
    // k's compute and shard k-1's upload; the planner keeps at most
    // kWindow shards in flight, which the halved split budget accounts
    // for. Repeats need no extra barrier: the CSR inputs are read-only
    // and the repeated y writes serialize through the upload chain.
    const topo::NodeId l1 = planned_child(rt, ctx.get_cur_treenode());
    const bool cached = dm.has_shard_cache(l1);
    constexpr std::size_t kWindow = 2;
    std::vector<exec::TaskHandle> posts;
    exec::TaskHandle up_chain{};
    exec::TaskHandle compute_chain{};
    data::Buffer* x_ptr = &x_leaf;
    data::Buffer* y_root = &b_y;
    for (std::uint32_t rep = 0;
         rep < std::max<std::uint32_t>(1, config.repeats); ++rep) {
      // Split planning reads the row_ptr slice back to the host, exactly
      // as the recursive planner's fetch_row_ptr does.
      std::vector<std::uint32_t> rp(a.rows + 1);
      dm.read_to_host(rp.data(), b_rp, rp.size() * kU);
      double budget = static_cast<double>(ctx.available_bytes(l1)) *
                      config.capacity_safety;
      if (ctx.pipelined()) budget *= 0.5;
      // Tuned shard-byte cap (== budget without a tuner); re-queried
      // every repeat so a mid-run breaker degradation shrinks the next
      // sweep's shards. Oversized single rows still check against the
      // real capacity budget.
      const double cap =
          tuned_split_cap(rt, ctx.get_cur_treenode(), l1, a.rows,
                          rp[a.rows] - rp[0], config, budget,
                          ctx.pipelined());

      std::uint32_t first = 0;
      while (first < a.rows) {
        // Greedy nnz-aware split: extend the sub-shard while its arrays
        // fit (same rule as spmv_recurse).
        std::uint32_t last = first;
        while (last < a.rows) {
          const std::uint64_t nnz_w = rp[last + 1] - rp[first];
          const std::uint64_t rows_w = last + 1 - first;
          const double bytes = static_cast<double>(
              (rows_w + 1) * kU + nnz_w * (kU + kF) + rows_w * kF);
          if (bytes > cap && last > first) break;
          NU_CHECK(bytes <= budget || last == first,
                   "single row exceeds child capacity");
          ++last;
        }
        const std::uint32_t rows_s = last - first;
        const std::uint32_t nnz_s = rp[last] - rp[first];

        if (posts.size() >= kWindow) {
          ctx.graph().wait(posts[posts.size() - kWindow]);
        }

        // The read-only CSR slices ride the shard cache when one is
        // attached (repeats hit); the y slice is a plain allocation.
        exec::Future<data::ScopedShard> rp_sh, ci_sh, va_sh;
        exec::Future<data::ScopedBuffer> rp_pl, ci_pl, va_pl;
        std::shared_ptr<data::ScopedBuffer> ci_stub, va_stub;
        std::vector<exec::TaskHandle> deps;
        if (cached) {
          rp_sh = ctx.move_down_cached_async(b_rp, l1, (rows_s + 1) * kU,
                                             first * kU);
          deps.push_back(rp_sh.task());
        } else {
          rp_pl = ctx.move_down_async(
              b_rp, l1,
              {.size = (rows_s + 1) * kU, .src_offset = first * kU});
          deps.push_back(rp_pl.task());
        }
        if (nnz_s > 0 && cached) {
          ci_sh = ctx.move_down_cached_async(b_ci, l1, nnz_s * kU,
                                             rp[first] * kU);
          va_sh = ctx.move_down_cached_async(b_va, l1, nnz_s * kF,
                                             rp[first] * kF);
          deps.push_back(ci_sh.task());
          deps.push_back(va_sh.task());
        } else if (nnz_s > 0) {
          ci_pl = ctx.move_down_async(
              b_ci, l1, {.size = nnz_s * kU, .src_offset = rp[first] * kU});
          va_pl = ctx.move_down_async(
              b_va, l1, {.size = nnz_s * kF, .src_offset = rp[first] * kF});
          deps.push_back(ci_pl.task());
          deps.push_back(va_pl.task());
        } else {
          // Degenerate empty shard: 1-element placeholders so the leaf
          // still has valid buffers.
          ci_stub = std::make_shared<data::ScopedBuffer>(dm, kU, l1);
          va_stub = std::make_shared<data::ScopedBuffer>(dm, kF, l1);
        }
        auto c_y = std::make_shared<data::ScopedBuffer>(
            dm, std::max<std::uint64_t>(rows_s, 1) * kF, l1);

        deps.push_back(compute_chain);
        // Per-shard leaf config: the CSR-Adaptive cutoff re-tuned for
        // this shard's nnz (a no-op without a tuner).
        const SpmvConfig shard_config =
            tuned_child_config(rt, l1, nnz_s, config);
        const auto compute = ctx.run_async(
            l1,
            [rp_sh, ci_sh, va_sh, rp_pl, ci_pl, va_pl, ci_stub, va_stub,
             c_y, x_ptr, rows_s, nnz_base = rp[first],
             shard_config](core::ExecContext& cctx) mutable {
              data::ScopedShard rp_s, ci_s, va_s;
              data::ScopedBuffer rp_b, ci_b, va_b;
              data::Buffer* c_rp = nullptr;
              data::Buffer* c_ci = nullptr;
              data::Buffer* c_va = nullptr;
              if (rp_sh.valid()) {
                rp_s = rp_sh.get();
                c_rp = rp_s.get();
              } else {
                rp_b = rp_pl.get();
                c_rp = &rp_b.get();
              }
              if (ci_sh.valid()) {
                ci_s = ci_sh.get();
                va_s = va_sh.get();
                c_ci = ci_s.get();
                c_va = va_s.get();
              } else if (ci_pl.valid()) {
                ci_b = ci_pl.get();
                va_b = va_pl.get();
                c_ci = &ci_b.get();
                c_va = &va_b.get();
              } else {
                c_ci = &ci_stub->get();
                c_va = &va_stub->get();
              }
              SpmvShard sub{c_rp, c_ci, c_va, x_ptr, &c_y->get(), rows_s,
                            nnz_base};
              spmv_recurse(cctx, sub, shard_config);
              // Staging slices drop here, right after this shard's
              // compute as in the blocking schedule.
            },
            deps);
        compute_chain = compute.task();

        const std::uint64_t y_off = std::uint64_t{first} * kF;
        const auto post = ctx.submit(
            [&dm, c_y, y_root, rows_s, y_off] {
              dm.move_data_up(*y_root, c_y->get(),
                              {.size = rows_s * kF, .dst_offset = y_off});
              c_y->reset();
            },
            {compute.task(), up_chain});
        up_chain = post.task();
        posts.push_back(post.task());

        first = last;
      }
    }
  });
  RunStats stats = collect(rt, wall.seconds());

  if (config.verify) {
    const auto expect = spmv_reference(a, x);
    std::vector<float> got(a.rows);
    dm.read_to_host(got.data(), b_y, a.rows * kF);
    stats.max_rel_err = max_rel_diff(expect, got);
    stats.verified = stats.max_rel_err < kVerifyTolerance;
  }
  if (config.hash_result) {
    stats.result_hash = hash_buffer(rt, b_y, a.rows * kF);
  }

  dm.release(x_leaf);
  for (auto* b : {&b_rp, &b_ci, &b_va, &b_x, &b_y}) dm.release(*b);
  return stats;
}

}  // namespace northup::algos
