#include "northup/algos/dense.hpp"

#include <algorithm>
#include <cmath>

namespace northup::algos {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return m;
}

Matrix gemm_reference(const Matrix& a, const Matrix& b) {
  NU_CHECK(a.cols() == b.rows(), "gemm shape mismatch");
  Matrix c(a.rows(), b.cols(), 0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a.at(i, k);
      const float* brow = b.data() + k * b.cols();
      float* crow = c.data() + i * c.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  NU_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
           "shape mismatch in max_abs_diff");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(a.data()[i]) -
                                     static_cast<double>(b.data()[i])));
  }
  return worst;
}

double max_rel_diff(const Matrix& a, const Matrix& b) {
  NU_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
           "shape mismatch in max_rel_diff");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double denom =
        std::max(1.0, std::abs(static_cast<double>(a.data()[i])));
    worst = std::max(worst, std::abs(static_cast<double>(a.data()[i]) -
                                     static_cast<double>(b.data()[i])) /
                                denom);
  }
  return worst;
}

void hotspot_step(const Matrix& temp, const Matrix& power, Matrix& out,
                  const HotSpotParams& p) {
  NU_CHECK(temp.rows() == power.rows() && temp.cols() == power.cols(),
           "hotspot input shape mismatch");
  NU_CHECK(out.rows() == temp.rows() && out.cols() == temp.cols(),
           "hotspot output shape mismatch");
  const std::size_t rows = temp.rows();
  const std::size_t cols = temp.cols();
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const float t = temp.at(r, c);
      const float north = r > 0 ? temp.at(r - 1, c) : t;
      const float south = r + 1 < rows ? temp.at(r + 1, c) : t;
      const float west = c > 0 ? temp.at(r, c - 1) : t;
      const float east = c + 1 < cols ? temp.at(r, c + 1) : t;
      const float delta =
          p.cap_inv * (power.at(r, c) + (north + south - 2.0f * t) * p.ry_inv +
                       (east + west - 2.0f * t) * p.rx_inv +
                       (p.ambient - t) * p.rz_inv);
      out.at(r, c) = t + delta;
    }
  }
}

Matrix hotspot_reference(const Matrix& temp, const Matrix& power,
                         const HotSpotParams& params) {
  Matrix out(temp.rows(), temp.cols());
  hotspot_step(temp, power, out, params);
  return out;
}

}  // namespace northup::algos
