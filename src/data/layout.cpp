#include "northup/data/layout.hpp"

#include <algorithm>
#include <vector>

namespace northup::data {

namespace {

/// Runs a staged transform: read the source range to host, permute into a
/// second staging buffer, write to the destination, then charge (a) the
/// byte movement between the nodes and (b) the CPU-side permutation pass.
template <typename Permute>
void staged_transform(DataManager& dm, Buffer& dst, const Buffer& src,
                      std::uint64_t bytes, std::uint64_t dst_offset,
                      std::uint64_t src_offset,
                      const TransformCostModel& cost, const char* label,
                      Permute&& permute) {
  NU_CHECK(src.valid() && dst.valid(), "transforming move on invalid buffer");
  NU_CHECK(cost.bytes_per_s > 0.0, "transform bandwidth must be positive");

  std::vector<std::byte> in(bytes), out(bytes);
  dm.storage(src.node).read(in.data(), src.allocation, src_offset, bytes);
  permute(in.data(), out.data());
  dm.storage(dst.node).write(dst.allocation, dst_offset, out.data(), bytes);

  auto* sim = dm.event_sim();
  if (sim == nullptr) return;
  // Movement legs (same classification as move_data): model by issuing a
  // zero-byte "shadow" move is not possible, so charge directly — one leg
  // on the source node's engine for the read and one CPU-style transform
  // task, then the destination write. We reuse the node models.
  std::vector<sim::TaskId> deps;
  if (src.ready != sim::kInvalidTask) deps.push_back(src.ready);
  if (dst.ready != sim::kInvalidTask) deps.push_back(dst.ready);

  const auto read_task = sim->add_task(
      std::string(label) + ":read",
      mem::is_file_backed(dm.tree().fetch_node_type(src.node))
          ? phase::kIo
          : phase::kTransfer,
      dm.resource_for(src.node),
      dm.storage(src.node).model().read_time(bytes), deps);
  const auto xform_task = sim->add_task(
      std::string(label) + ":permute", phase::kCpu,
      dm.resource_for(src.node),  // staged on the host side of the source
      static_cast<double>(bytes) / cost.bytes_per_s, {read_task});
  const auto write_task = sim->add_task(
      std::string(label) + ":write",
      mem::is_file_backed(dm.tree().fetch_node_type(dst.node))
          ? phase::kIo
          : phase::kTransfer,
      dm.resource_for(dst.node),
      dm.storage(dst.node).model().write_time(bytes), {xform_task});
  dst.ready = write_task;
}

}  // namespace

void move_transposed(DataManager& dm, Buffer& dst, const Buffer& src,
                     std::uint64_t rows, std::uint64_t cols,
                     std::uint64_t elem_size, std::uint64_t dst_offset,
                     std::uint64_t src_offset,
                     const TransformCostModel& cost) {
  NU_CHECK(rows > 0 && cols > 0 && elem_size > 0, "empty transpose");
  const std::uint64_t bytes = rows * cols * elem_size;
  staged_transform(
      dm, dst, src, bytes, dst_offset, src_offset, cost, "transpose",
      [&](const std::byte* in, std::byte* out) {
        for (std::uint64_t r = 0; r < rows; ++r) {
          for (std::uint64_t c = 0; c < cols; ++c) {
            const std::byte* s = in + (r * cols + c) * elem_size;
            std::byte* d = out + (c * rows + r) * elem_size;
            std::copy(s, s + elem_size, d);
          }
        }
      });
}

void move_reinterleaved(DataManager& dm, Buffer& dst, const Buffer& src,
                        std::uint64_t records, std::uint64_t fields,
                        std::uint64_t field_size, LayoutTransform transform,
                        std::uint64_t dst_offset, std::uint64_t src_offset,
                        const TransformCostModel& cost) {
  NU_CHECK(records > 0 && fields > 0 && field_size > 0, "empty reinterleave");
  NU_CHECK(transform == LayoutTransform::AosToSoa ||
               transform == LayoutTransform::SoaToAos,
           "move_reinterleaved requires AosToSoa or SoaToAos");
  const std::uint64_t bytes = records * fields * field_size;
  const bool to_soa = transform == LayoutTransform::AosToSoa;
  staged_transform(
      dm, dst, src, bytes, dst_offset, src_offset, cost,
      to_soa ? "aos->soa" : "soa->aos",
      [&](const std::byte* in, std::byte* out) {
        for (std::uint64_t rec = 0; rec < records; ++rec) {
          for (std::uint64_t f = 0; f < fields; ++f) {
            const std::uint64_t aos = (rec * fields + f) * field_size;
            const std::uint64_t soa = (f * records + rec) * field_size;
            const std::uint64_t from = to_soa ? aos : soa;
            const std::uint64_t to = to_soa ? soa : aos;
            std::copy(in + from, in + from + field_size, out + to);
          }
        }
      });
}

}  // namespace northup::data
