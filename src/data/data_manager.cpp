#include "northup/data/data_manager.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "northup/util/assert.hpp"
#include "northup/util/crc32.hpp"

namespace northup::data {

namespace {

bool involves_file(mem::StorageKind kind) { return mem::is_file_backed(kind); }

bool is_device_like(mem::StorageKind kind) {
  return kind == mem::StorageKind::DeviceMem ||
         kind == mem::StorageKind::Scratchpad;
}

}  // namespace

DataManager::DataManager(const topo::TopoTree& tree, sim::EventSim* sim)
    : tree_(tree), sim_(sim) {}

void DataManager::bind_storage(topo::NodeId node,
                               std::unique_ptr<mem::Storage> storage) {
  NU_CHECK(node < tree_.node_count(), "bind_storage: unknown node");
  NU_CHECK(storage != nullptr, "bind_storage: null backend");
  NU_CHECK(storage->kind() == tree_.fetch_node_type(node),
           "backend kind does not match the node's storage_type");
  if (metrics_ != nullptr) storage->attach_metrics(*metrics_);
  storages_[node] = std::move(storage);
}

bool DataManager::is_bound(topo::NodeId node) const {
  return storages_.count(node) != 0;
}

mem::Storage& DataManager::storage(topo::NodeId node) {
  auto it = storages_.find(node);
  NU_CHECK(it != storages_.end(),
           "no storage bound for node '" + tree_.node(node).name + "'");
  return *it->second;
}

const mem::Storage& DataManager::storage(topo::NodeId node) const {
  auto it = storages_.find(node);
  NU_CHECK(it != storages_.end(),
           "no storage bound for node '" + tree_.node(node).name + "'");
  return *it->second;
}

void DataManager::attach_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (resil_ != nullptr) resil_->attach_metrics(registry);
  if (registry == nullptr) return;
  for (auto& [node, storage] : storages_) storage->attach_metrics(*registry);
}

void DataManager::set_event_log(obs::EventLog* log) {
  elog_ = log;
  if (elog_ != nullptr) {
    elog_io_phase_ = elog_->intern(phase::kIo);
    elog_transfer_phase_ = elog_->intern(phase::kTransfer);
  }
}

void DataManager::log_move(topo::NodeId src_node, topo::NodeId dst_node,
                           std::uint64_t bytes, const std::string& label,
                           std::uint64_t t0_ns) {
  if (elog_ == nullptr) return;
  const std::uint64_t t1 = elog_->now_ns();
  const std::uint64_t dur = t1 > t0_ns ? t1 - t0_ns : 0;
  const bool src_file = src_node != obs::kNoNode &&
                        involves_file(tree_.fetch_node_type(src_node));
  const bool dst_file = dst_node != obs::kNoNode &&
                        involves_file(tree_.fetch_node_type(dst_node));
  obs::Event e;
  e.ts_ns = t0_ns;
  e.dur_ns = dur;
  e.kind = obs::EventKind::kMove;
  e.value = bytes;
  e.node = src_node;
  e.node2 = dst_node;
  e.name = elog_->intern(label);
  e.phase = (src_file || dst_file) ? elog_io_phase_ : elog_transfer_phase_;
  e.span = elog_->current_span();
  elog_->record(e);
  if (!src_file && !dst_file) return;
  // Each file-backed side is a kIo event: the measured IoRecord stream
  // the what-if re-cost replays through mem::project_storage. When both
  // sides hit files the wall time is split evenly — the staging copy
  // reads fully before writing, so halves are the honest attribution.
  obs::Event io = e;
  io.kind = obs::EventKind::kIo;
  if (src_file && dst_file) {
    io.node = src_node;
    io.node2 = obs::kNoNode;
    io.dur_ns = dur / 2;
    io.aux = 0;
    elog_->record(io);
    io.ts_ns = t0_ns + dur / 2;
    io.dur_ns = dur - dur / 2;
    io.node = dst_node;
    io.aux = 1;
    elog_->record(io);
  } else {
    io.node = src_file ? src_node : dst_node;
    io.node2 = obs::kNoNode;
    io.aux = src_file ? 0 : 1;
    elog_->record(io);
  }
}

void DataManager::set_resilience(resil::ResilienceManager* resil) {
  resil_ = resil;
  if (resil_ == nullptr) return;
  if (metrics_ != nullptr) resil_->attach_metrics(metrics_);
  resil_->set_event_hook([this](const std::string& label, topo::NodeId node) {
    if (sim_ == nullptr || node >= tree_.node_count()) return;
    // Zero-duration task: the TraceWriter renders it as an instant on
    // the node's memory-engine track.
    sim_->add_task(label, phase::kResil, resource_for(node), 0.0);
  });
}

void DataManager::run_guarded(topo::NodeId src, topo::NodeId dst,
                              const std::string& label,
                              const std::function<void()>& op) {
  if (resil_ != nullptr) {
    resil_->run_op(src, dst, label, op);
  } else {
    op();
  }
}

obs::Counter& DataManager::edge_counter(const std::string& src_name,
                                        const std::string& dst_name) {
  return metrics_->counter("bytes_moved." + src_name + "->" + dst_name);
}

sim::ResourceId DataManager::resource_for(topo::NodeId node) {
  NU_CHECK(sim_ != nullptr, "resource_for requires an EventSim");
  std::lock_guard<std::mutex> lock(resources_mu_);
  auto it = resources_.find(node);
  if (it != resources_.end()) return it->second;
  const auto id = sim_->add_resource("mem:" + tree_.node(node).name);
  resources_.emplace(node, id);
  return id;
}

Buffer DataManager::alloc(std::uint64_t size, topo::NodeId tree_node) {
  mem::Storage& st = storage(tree_node);
  if (st.available() < size && backend_ != nullptr &&
      backend_->manages(tree_node)) {
    // Pool-managed node under pressure: evict unpinned cached shards
    // (writing dirty ones back to the parent) until the request fits.
    backend_->make_room(tree_node, size);
  }
  if (st.available() < size) {
    throw util::CapacityError(
        "alloc of " + std::to_string(size) + " B on node '" +
        tree_.node(tree_node).name + "' exceeds its capacity: " +
        std::to_string(st.used()) + " of " + std::to_string(st.capacity()) +
        " B in use, " + std::to_string(st.available()) + " B remaining");
  }
  Buffer buffer;
  buffer.node = tree_node;
  buffer.id = next_buffer_id_.fetch_add(1, std::memory_order_relaxed);
  // Guarded: a transient allocation fault (flaky driver call) is retried
  // like any other data-plane operation; CapacityError stays permanent.
  run_guarded(tree_node, tree_node,
              "alloc@" + tree_.node(tree_node).name,
              [&] { buffer.allocation = st.alloc(size); });
  if (metrics_ != nullptr) metrics_->counter("dm.allocs").increment();
  if (elog_ != nullptr) {
    elog_->instant(obs::EventKind::kAlloc,
                   elog_->intern("alloc@" + tree_.node(tree_node).name),
                   tree_node, size);
  }
  if (backend_ != nullptr) backend_->note_alloc(tree_node);
  charge_setup(tree_node, setup_costs_.alloc_time(st.kind()),
               "alloc@" + tree_.node(tree_node).name, &buffer);
  return buffer;
}

void DataManager::release(Buffer& buffer) {
  NU_CHECK(buffer.valid(), "release of invalid buffer");
  if (backend_ != nullptr && buffer.id != 0) backend_->on_released(buffer);
  storage(buffer.node).release(buffer.allocation);
  if (metrics_ != nullptr) metrics_->counter("dm.releases").increment();
  charge_setup(buffer.node, setup_costs_.release_s,
               "release@" + tree_.node(buffer.node).name, nullptr);
  buffer = Buffer{};
}

void DataManager::notify_written(const Buffer& dst, std::uint64_t offset,
                                 std::uint64_t size) {
  if (backend_ != nullptr && dst.id != 0) backend_->on_written(dst, offset, size);
}

Buffer* DataManager::move_data_down_cached(const Buffer& src,
                                           topo::NodeId child,
                                           std::uint64_t size,
                                           std::uint64_t src_offset) {
  return move_block_2d_down_cached(src, child, 1, size, src_offset, size);
}

Buffer* DataManager::move_block_2d_down_cached(const Buffer& src,
                                               topo::NodeId child,
                                               std::uint64_t rows,
                                               std::uint64_t row_bytes,
                                               std::uint64_t src_offset,
                                               std::uint64_t src_pitch) {
  NU_CHECK(src.valid(), "cached download from invalid buffer");
  NU_CHECK(has_shard_cache(child), "no shard cache at node '" +
                                       tree_.node(child).name + "'");
  NU_CHECK(tree_.get_parent(child) == src.node,
           "cached download target is not a child of the source's node");
  return backend_->acquire(src, child, rows, row_bytes, src_offset, src_pitch);
}

void DataManager::release_cached(Buffer* shard, bool dirty) {
  NU_CHECK(backend_ != nullptr, "release_cached without a cache backend");
  backend_->release_shard(shard, dirty);
}

void DataManager::charge_setup(topo::NodeId node, double seconds,
                               const std::string& label, Buffer* buffer) {
  if (sim_ == nullptr) return;
  const auto task =
      sim_->add_task(label, phase::kSetup, resource_for(node), seconds);
  if (buffer != nullptr) buffer->ready = task;
}

void DataManager::copy_bytes(Buffer& dst, const Buffer& src,
                             std::uint64_t size, std::uint64_t dst_offset,
                             std::uint64_t src_offset) {
  mem::Storage& s = storage(src.node);
  mem::Storage& d = storage(dst.node);
  if (!verify_enabled()) {
    // Zero-copy fast paths: when a side exposes its bytes directly
    // (HostStorage heap, MmapStorage file mapping), skip the staging
    // vector and copy straight across; note_access keeps stats, metrics,
    // the §V-D replay trace, and pacing identical to the staged path.
    // The verified path below stays on staging on purpose — its double
    // reads are how read-path corruption is caught.
    std::byte* const smap = s.mapped(src.allocation);
    std::byte* const dmap = d.mapped(dst.allocation);
    if (smap != nullptr && dmap != nullptr) {
      std::memcpy(dmap + dst_offset, smap + src_offset, size);
      s.note_access(/*is_write=*/false, size);
      d.note_access(/*is_write=*/true, size);
      note_zero_copy();
      return;
    }
    if (smap != nullptr) {
      d.write(dst.allocation, dst_offset, smap + src_offset, size);
      s.note_access(/*is_write=*/false, size);
      note_zero_copy();
      return;
    }
    if (dmap != nullptr) {
      s.read(dmap + dst_offset, src.allocation, src_offset, size);
      d.note_access(/*is_write=*/true, size);
      note_zero_copy();
      return;
    }
    std::vector<std::byte> staging(size);
    s.read(staging.data(), src.allocation, src_offset, size);
    d.write(dst.allocation, dst_offset, staging.data(), size);
    return;
  }
  std::vector<std::byte> staging(size);
  s.read(staging.data(), src.allocation, src_offset, size);
  const std::uint32_t expected = util::crc32(staging.data(), size);
  std::vector<std::byte> check(size);
  s.read(check.data(), src.allocation, src_offset, size);
  if (util::crc32(check.data(), size) != expected) {
    throw util::CorruptionError(
        "read checksum mismatch on '" + s.name() + "'", s.name());
  }
  d.write(dst.allocation, dst_offset, staging.data(), size);
  d.read(check.data(), dst.allocation, dst_offset, size);
  if (util::crc32(check.data(), size) != expected) {
    throw util::CorruptionError(
        "write-back checksum mismatch on '" + d.name() + "'", d.name());
  }
}

void DataManager::charge_move(Buffer& dst, const Buffer& src,
                              std::uint64_t bytes,
                              std::uint64_t src_accesses,
                              std::uint64_t dst_accesses,
                              const std::string& label,
                              std::vector<sim::TaskId> extra_deps) {
  bytes_moved_.fetch_add(bytes, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    edge_counter(tree_.node(src.node).name, tree_.node(dst.node).name)
        .add(bytes);
    metrics_->counter("dm.moves").increment();
    // Every access beyond the first on either side is a fragment — the
    // strided-I/O penalty of §V-B, worth watching per run.
    metrics_->counter("dm.fragmented_accesses")
        .add((src_accesses - 1) + (dst_accesses - 1));
  }
  if (sim_ == nullptr) return;

  const auto sk = tree_.fetch_node_type(src.node);
  const auto dk = tree_.fetch_node_type(dst.node);
  const auto& smodel = storage(src.node).model();
  const auto& dmodel = storage(dst.node).model();

  // The per-access latency penalty applies to file-backed storage (each
  // fragment is a separate I/O syscall, §V-B's "variable buffer sizes"
  // penalty) and only on the side that is actually fragmented; DMA
  // engines and memcpy gather strided copies, so byte-addressable legs
  // are charged as a single access.
  const std::uint64_t src_acc = src_accesses;
  const std::uint64_t dst_acc = dst_accesses;
  constexpr std::uint64_t kDmaAcc = 1;

  std::vector<Leg> legs;
  if (involves_file(sk) && involves_file(dk)) {
    legs.push_back({src.node, phase::kIo, smodel.read_time(bytes, src_acc)});
    legs.push_back({dst.node, phase::kIo, dmodel.write_time(bytes, dst_acc)});
  } else if (involves_file(sk) && is_device_like(dk)) {
    // Staged: storage -> DRAM (I/O engine), then DRAM -> device (DMA).
    legs.push_back({src.node, phase::kIo, smodel.read_time(bytes, src_acc)});
    legs.push_back(
        {dst.node, phase::kTransfer, dmodel.write_time(bytes, kDmaAcc)});
  } else if (is_device_like(sk) && involves_file(dk)) {
    legs.push_back(
        {src.node, phase::kTransfer, smodel.read_time(bytes, kDmaAcc)});
    legs.push_back({dst.node, phase::kIo, dmodel.write_time(bytes, dst_acc)});
  } else if (involves_file(sk)) {
    legs.push_back({src.node, phase::kIo, smodel.read_time(bytes, src_acc)});
  } else if (involves_file(dk)) {
    legs.push_back({dst.node, phase::kIo, dmodel.write_time(bytes, dst_acc)});
  } else if (is_device_like(dk)) {
    legs.push_back(
        {dst.node, phase::kTransfer, dmodel.write_time(bytes, kDmaAcc)});
  } else if (is_device_like(sk)) {
    legs.push_back(
        {src.node, phase::kTransfer, smodel.read_time(bytes, kDmaAcc)});
  } else {
    // Host-to-host (DRAM/NVM): the slower of the two sides bounds the copy.
    const double read_t = smodel.read_time(bytes, kDmaAcc);
    const double write_t = dmodel.write_time(bytes, kDmaAcc);
    const topo::NodeId bottleneck = read_t >= write_t ? src.node : dst.node;
    legs.push_back({bottleneck, phase::kTransfer, std::max(read_t, write_t)});
  }

  std::vector<sim::TaskId> deps = std::move(extra_deps);
  if (src.ready != sim::kInvalidTask) deps.push_back(src.ready);
  if (dst.ready != sim::kInvalidTask) deps.push_back(dst.ready);
  sim::TaskId last = sim::kInvalidTask;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    std::vector<sim::TaskId> leg_deps =
        (i == 0) ? deps : std::vector<sim::TaskId>{last};
    last = sim_->add_task(label, legs[i].phase,
                          resource_for(legs[i].resource_node),
                          legs[i].seconds, std::move(leg_deps));
  }
  dst.ready = last;
}

void DataManager::move_data(Buffer& dst, const Buffer& src, CopySpec spec) {
  NU_CHECK(src.valid() && dst.valid(), "move_data with invalid buffer");
  NU_CHECK(&dst != &src, "move_data src and dst alias the same handle");
  const std::string label = "move " + tree_.node(src.node).name + "->" +
                            tree_.node(dst.node).name;
  const std::uint64_t t0 = elog_ != nullptr ? elog_->now_ns() : 0;
  run_guarded(src.node, dst.node, label, [&] {
    copy_bytes(dst, src, spec.size, spec.dst_offset, spec.src_offset);
  });
  log_move(src.node, dst.node, spec.size, label, t0);
  charge_move(dst, src, spec.size, 1, 1, label, std::move(spec.deps));
  notify_written(dst, spec.dst_offset, spec.size);
}

void DataManager::move_data_down(Buffer& dst, const Buffer& src,
                                 CopySpec spec) {
  NU_CHECK(tree_.get_parent(dst.node) == src.node,
           "move_data_down: destination is not on a child of the source");
  move_data(dst, src, std::move(spec));
}

void DataManager::move_data_up(Buffer& dst, const Buffer& src,
                               CopySpec spec) {
  NU_CHECK(tree_.get_parent(src.node) == dst.node,
           "move_data_up: destination is not the source's parent");
  move_data(dst, src, std::move(spec));
}

void DataManager::move_block_2d(Buffer& dst, const Buffer& src,
                                std::uint64_t rows, std::uint64_t row_bytes,
                                std::uint64_t dst_offset,
                                std::uint64_t dst_pitch,
                                std::uint64_t src_offset,
                                std::uint64_t src_pitch,
                                std::vector<sim::TaskId> extra_deps) {
  NU_CHECK(src.valid() && dst.valid(), "move_block_2d with invalid buffer");
  NU_CHECK(src_pitch >= row_bytes && dst_pitch >= row_bytes,
           "move_block_2d pitch smaller than row");
  mem::Storage& s = storage(src.node);
  mem::Storage& d = storage(dst.node);
  const std::string label = "block2d " + tree_.node(src.node).name + "->" +
                            tree_.node(dst.node).name;
  const std::uint64_t t0 = elog_ != nullptr ? elog_->now_ns() : 0;
  run_guarded(src.node, dst.node, label, [&] {
    if (!verify_enabled()) {
      // Same zero-copy dispatch as copy_bytes, kept row-granular so the
      // per-row IoRecord stream (the fragmentation signal the §V-B
      // analysis depends on) matches the staged path exactly.
      std::byte* const smap = s.mapped(src.allocation);
      std::byte* const dmap = d.mapped(dst.allocation);
      if (smap != nullptr && dmap != nullptr) {
        for (std::uint64_t r = 0; r < rows; ++r) {
          std::memcpy(dmap + dst_offset + r * dst_pitch,
                      smap + src_offset + r * src_pitch, row_bytes);
          s.note_access(/*is_write=*/false, row_bytes);
          d.note_access(/*is_write=*/true, row_bytes);
        }
        note_zero_copy();
        return;
      }
      if (smap != nullptr) {
        for (std::uint64_t r = 0; r < rows; ++r) {
          d.write(dst.allocation, dst_offset + r * dst_pitch,
                  smap + src_offset + r * src_pitch, row_bytes);
          s.note_access(/*is_write=*/false, row_bytes);
        }
        note_zero_copy();
        return;
      }
      if (dmap != nullptr) {
        for (std::uint64_t r = 0; r < rows; ++r) {
          s.read(dmap + dst_offset + r * dst_pitch, src.allocation,
                 src_offset + r * src_pitch, row_bytes);
          d.note_access(/*is_write=*/true, row_bytes);
        }
        note_zero_copy();
        return;
      }
      std::vector<std::byte> staging(row_bytes);
      for (std::uint64_t r = 0; r < rows; ++r) {
        s.read(staging.data(), src.allocation, src_offset + r * src_pitch,
               row_bytes);
        d.write(dst.allocation, dst_offset + r * dst_pitch, staging.data(),
                row_bytes);
      }
      return;
    }
    // Verified path: the whole block is one end-to-end unit. Densify the
    // source, re-read to catch read-path corruption, write, read back.
    const std::uint64_t total = rows * row_bytes;
    auto read_region = [&](mem::Storage& st, const Buffer& b,
                           std::uint64_t offset, std::uint64_t pitch,
                           std::byte* out) {
      for (std::uint64_t r = 0; r < rows; ++r) {
        st.read(out + r * row_bytes, b.allocation, offset + r * pitch,
                row_bytes);
      }
    };
    std::vector<std::byte> staging(total);
    read_region(s, src, src_offset, src_pitch, staging.data());
    const std::uint32_t expected = util::crc32(staging.data(), total);
    std::vector<std::byte> check(total);
    read_region(s, src, src_offset, src_pitch, check.data());
    if (util::crc32(check.data(), total) != expected) {
      throw util::CorruptionError(
          "read checksum mismatch on '" + s.name() + "'", s.name());
    }
    for (std::uint64_t r = 0; r < rows; ++r) {
      d.write(dst.allocation, dst_offset + r * dst_pitch,
              staging.data() + r * row_bytes, row_bytes);
    }
    read_region(d, dst, dst_offset, dst_pitch, check.data());
    if (util::crc32(check.data(), total) != expected) {
      throw util::CorruptionError(
          "write-back checksum mismatch on '" + d.name() + "'", d.name());
    }
  });
  log_move(src.node, dst.node, rows * row_bytes, label, t0);
  // Per-side fragmentation: a dense side (pitch == row) is one request.
  const std::uint64_t src_acc = src_pitch == row_bytes ? 1 : rows;
  const std::uint64_t dst_acc = dst_pitch == row_bytes ? 1 : rows;
  charge_move(dst, src, rows * row_bytes, src_acc, dst_acc, label,
              std::move(extra_deps));
  // Conservative invalidation span: first to last byte touched.
  notify_written(dst, dst_offset, (rows - 1) * dst_pitch + row_bytes);
}

void DataManager::fill(Buffer& dst, std::byte value, std::uint64_t size,
                       std::uint64_t dst_offset) {
  NU_CHECK(dst.valid(), "fill of invalid buffer");
  mem::Storage& d = storage(dst.node);
  const std::uint64_t t0 = elog_ != nullptr ? elog_->now_ns() : 0;
  if (!verify_enabled()) {
    if (std::byte* const dmap = d.mapped(dst.allocation); dmap != nullptr) {
      // In-place memset into the mapping: no staging vector at all.
      std::memset(dmap + dst_offset, static_cast<int>(value), size);
      d.note_access(/*is_write=*/true, size);
      note_zero_copy();
    } else {
      std::vector<std::byte> staging(size, value);
      run_guarded(dst.node, dst.node,
                  "fill@" + tree_.node(dst.node).name, [&] {
        d.write(dst.allocation, dst_offset, staging.data(), size);
      });
    }
    log_move(obs::kNoNode, dst.node, size,
             "fill@" + tree_.node(dst.node).name, t0);
    if (sim_ != nullptr) {
      std::vector<sim::TaskId> deps;
      if (dst.ready != sim::kInvalidTask) deps.push_back(dst.ready);
      dst.ready = sim_->add_task(
          "fill@" + tree_.node(dst.node).name, phase::kTransfer,
          resource_for(dst.node), storage(dst.node).model().write_time(size),
          std::move(deps));
    }
    notify_written(dst, dst_offset, size);
    return;
  }
  std::vector<std::byte> staging(size, value);
  run_guarded(dst.node, dst.node, "fill@" + tree_.node(dst.node).name, [&] {
    d.write(dst.allocation, dst_offset, staging.data(), size);
    const std::uint32_t expected = util::crc32(staging.data(), size);
    std::vector<std::byte> check(size);
    d.read(check.data(), dst.allocation, dst_offset, size);
    if (util::crc32(check.data(), size) != expected) {
      throw util::CorruptionError(
          "fill checksum mismatch on '" + d.name() + "'", d.name());
    }
  });
  log_move(obs::kNoNode, dst.node, size,
           "fill@" + tree_.node(dst.node).name, t0);
  if (sim_ != nullptr) {
    std::vector<sim::TaskId> deps;
    if (dst.ready != sim::kInvalidTask) deps.push_back(dst.ready);
    dst.ready = sim_->add_task(
        "fill@" + tree_.node(dst.node).name, phase::kTransfer,
        resource_for(dst.node), storage(dst.node).model().write_time(size),
        std::move(deps));
  }
  notify_written(dst, dst_offset, size);
}

void DataManager::write_from_host(Buffer& dst, const void* src,
                                  std::uint64_t size,
                                  std::uint64_t dst_offset) {
  NU_CHECK(dst.valid(), "write_from_host to invalid buffer");
  mem::Storage& d = storage(dst.node);
  const std::uint64_t t0 = elog_ != nullptr ? elog_->now_ns() : 0;
  run_guarded(dst.node, dst.node,
              "host->" + tree_.node(dst.node).name, [&] {
    d.write(dst.allocation, dst_offset, src, size);
    if (!verify_enabled()) return;
    const std::uint32_t expected = util::crc32(src, size);
    std::vector<std::byte> check(size);
    d.read(check.data(), dst.allocation, dst_offset, size);
    if (util::crc32(check.data(), size) != expected) {
      throw util::CorruptionError(
          "write-back checksum mismatch on '" + d.name() + "'", d.name());
    }
  });
  log_move(obs::kNoNode, dst.node, size,
           "host->" + tree_.node(dst.node).name, t0);
  if (sim_ != nullptr) {
    const auto kind = tree_.fetch_node_type(dst.node);
    const char* ph = involves_file(kind) ? phase::kIo : phase::kTransfer;
    std::vector<sim::TaskId> deps;
    if (dst.ready != sim::kInvalidTask) deps.push_back(dst.ready);
    dst.ready = sim_->add_task(
        "host->" + tree_.node(dst.node).name, ph, resource_for(dst.node),
        storage(dst.node).model().write_time(size), std::move(deps));
  }
  bytes_moved_.fetch_add(size, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    edge_counter("host", tree_.node(dst.node).name).add(size);
  }
  notify_written(dst, dst_offset, size);
}

void DataManager::read_to_host(void* dst, const Buffer& src,
                               std::uint64_t size, std::uint64_t src_offset) {
  NU_CHECK(src.valid(), "read_to_host from invalid buffer");
  mem::Storage& s = storage(src.node);
  const std::uint64_t t0 = elog_ != nullptr ? elog_->now_ns() : 0;
  run_guarded(src.node, src.node,
              tree_.node(src.node).name + "->host", [&] {
    s.read(dst, src.allocation, src_offset, size);
    if (!verify_enabled()) return;
    const std::uint32_t expected = util::crc32(dst, size);
    std::vector<std::byte> check(size);
    s.read(check.data(), src.allocation, src_offset, size);
    if (util::crc32(check.data(), size) != expected) {
      throw util::CorruptionError(
          "read checksum mismatch on '" + s.name() + "'", s.name());
    }
  });
  log_move(src.node, obs::kNoNode, size,
           tree_.node(src.node).name + "->host", t0);
  if (sim_ != nullptr) {
    const auto kind = tree_.fetch_node_type(src.node);
    const char* ph = involves_file(kind) ? phase::kIo : phase::kTransfer;
    std::vector<sim::TaskId> deps;
    if (src.ready != sim::kInvalidTask) deps.push_back(src.ready);
    sim_->add_task(tree_.node(src.node).name + "->host", ph,
                   resource_for(src.node),
                   storage(src.node).model().read_time(size), std::move(deps));
  }
  bytes_moved_.fetch_add(size, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    edge_counter(tree_.node(src.node).name, "host").add(size);
  }
}

std::byte* DataManager::try_host_view(const Buffer& buffer) {
  NU_CHECK(buffer.valid(), "host_view of invalid buffer");
  return storage(buffer.node).mapped(buffer.allocation);
}

std::byte* DataManager::host_view(const Buffer& buffer) {
  std::byte* const view = try_host_view(buffer);
  NU_CHECK(view != nullptr,
           "host_view requires a byte-addressable or mmap-backed node; '" +
               tree_.node(buffer.node).name +
               "' copies through staged I/O and has no host mapping");
  return view;
}

}  // namespace northup::data
