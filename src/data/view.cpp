#include "northup/data/view.hpp"

namespace northup::data {

void move_submatrix(DataManager& dm, const MatView& dst, const MatView& src,
                    std::uint64_t rows, std::uint64_t row_bytes) {
  NU_CHECK(dst.buf != nullptr && src.buf != nullptr, "null view");
  if (dst.pitch == row_bytes && src.pitch == row_bytes) {
    dm.move_data(*dst.buf, *src.buf,
                 {.size = rows * row_bytes,
                  .dst_offset = dst.offset,
                  .src_offset = src.offset});
  } else {
    dm.move_block_2d(*dst.buf, *src.buf, rows, row_bytes, dst.offset,
                     dst.pitch, src.offset, src.pitch);
  }
}

}  // namespace northup::data
