#include "northup/resil/node_health.hpp"

#include <chrono>

namespace northup::resil {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::Closed:
      return "closed";
    case BreakerState::HalfOpen:
      return "half-open";
    case BreakerState::Open:
      return "open";
  }
  return "unknown";
}

NodeHealth::NodeHealth(HealthOptions options) : options_(options) {
  if (options_.window == 0) options_.window = 1;
  window_.resize(options_.window);
}

void NodeHealth::set_observer(StateObserver observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(observer);
}

void NodeHealth::transition_locked(BreakerState next) {
  state_ = next;
  switch (next) {
    case BreakerState::Open:
      open_since_s_ = now_s();
      ++trips_;
      probe_successes_ = 0;
      break;
    case BreakerState::HalfOpen:
    case BreakerState::Closed:
      // The window restarts so probe-era outcomes are judged on their
      // own, not against the failures that tripped the breaker.
      probe_successes_ = 0;
      next_ = 0;
      filled_ = 0;
      break;
  }
}

double NodeHealth::failure_rate_locked() const {
  if (filled_ == 0) return 0.0;
  std::size_t failures = 0;
  for (std::size_t i = 0; i < filled_; ++i) {
    if (!window_[i].ok) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(filled_);
}

void NodeHealth::record_success(double latency_s) {
  StateObserver notify;
  BreakerState changed_to = BreakerState::Closed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    window_[next_] = Outcome{true, latency_s};
    next_ = (next_ + 1) % window_.size();
    if (filled_ < window_.size()) ++filled_;
    if (state_ == BreakerState::HalfOpen &&
        ++probe_successes_ >= options_.half_open_probes) {
      transition_locked(BreakerState::Closed);
      notify = observer_;
      changed_to = BreakerState::Closed;
    }
  }
  if (notify) notify(changed_to);
}

void NodeHealth::record_failure() {
  StateObserver notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    window_[next_] = Outcome{false, 0.0};
    next_ = (next_ + 1) % window_.size();
    if (filled_ < window_.size()) ++filled_;
    const bool reopen = state_ == BreakerState::HalfOpen;
    const bool trip = state_ == BreakerState::Closed &&
                      filled_ >= options_.min_samples &&
                      failure_rate_locked() >= options_.failure_threshold;
    if (reopen || trip) {
      transition_locked(BreakerState::Open);
      notify = observer_;
    }
  }
  if (notify) notify(BreakerState::Open);
}

BreakerState NodeHealth::state() {
  StateObserver notify;
  BreakerState result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == BreakerState::Open &&
        now_s() - open_since_s_ >= options_.open_cooldown_s) {
      transition_locked(BreakerState::HalfOpen);
      notify = observer_;
    }
    result = state_;
  }
  if (notify) notify(BreakerState::HalfOpen);
  return result;
}

bool NodeHealth::allow() { return state() != BreakerState::Open; }

double NodeHealth::capacity_scale() {
  switch (state()) {
    case BreakerState::Open:
      return 0.0;
    case BreakerState::HalfOpen:
      return options_.degrade_factor;
    case BreakerState::Closed:
      break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return failure_rate_locked() > options_.failure_threshold * 0.5
             ? options_.degrade_factor
             : 1.0;
}

double NodeHealth::failure_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failure_rate_locked();
}

double NodeHealth::mean_latency() const {
  std::lock_guard<std::mutex> lock(mu_);
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < filled_; ++i) {
    if (window_[i].ok) {
      sum += window_[i].latency_s;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

std::uint64_t NodeHealth::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

}  // namespace northup::resil
