#include "northup/resil/resilience.hpp"

#include <algorithm>
#include <thread>

#include "northup/exec/task_graph.hpp"
#include "northup/util/assert.hpp"
#include "northup/util/log.hpp"

namespace northup::resil {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double seconds_until(Clock::time_point deadline) {
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

/// Storage origin stamped on the error, empty when there is none.
std::string origin_of(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const util::CorruptionError& e) {
    return e.origin();
  } catch (const util::IoError& e) {
    return e.origin();
  } catch (...) {
    return {};
  }
}

std::string message_of(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

/// Attempt-loop progress parked across an exec::BackoffYield re-arm: the
/// node body re-runs from its start after the backoff delay, and the
/// retry loop resumes at the attempt it yielded after instead of getting
/// a fresh budget.
struct RetryResume {
  std::uint32_t attempts_done = 0;
  double elapsed_s = 0.0;  ///< op wall time consumed before the yield
};

}  // namespace

ResilienceManager::ResilienceManager(const topo::TopoTree& tree,
                                     ResilOptions options)
    : tree_(tree), options_(options), rng_(options.seed) {}

void ResilienceManager::attach_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
}

obs::Counter* ResilienceManager::counter(const char* name) {
  return metrics_ ? &metrics_->counter(name) : nullptr;
}

void ResilienceManager::emit_instant(const std::string& label,
                                     topo::NodeId node) {
  if (event_hook_) event_hook_(label, node);
}

topo::NodeId ResilienceManager::node_of_origin(
    const std::string& origin) const {
  if (origin.empty()) return topo::kInvalidNode;
  const topo::NodeId exact = tree_.find(origin);
  if (exact != topo::kInvalidNode) return exact;
  // Decorators suffix the inner storage's name ("dram+faults"): strip
  // the suffix and retry the lookup.
  const auto plus = origin.find('+');
  if (plus == std::string::npos) return topo::kInvalidNode;
  return tree_.find(origin.substr(0, plus));
}

NodeHealth& ResilienceManager::health(topo::NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  return health_locked(node);
}

NodeHealth& ResilienceManager::health_locked(topo::NodeId node) {
  auto it = healths_.find(node);
  if (it != healths_.end()) return *it->second;
  auto created = std::make_unique<NodeHealth>(options_.health);
  const std::string name = tree_.node(node).name;
  created->set_observer([this, node, name](BreakerState next) {
    if (metrics_) {
      metrics_->gauge("resil.breaker_state." + name)
          .set(static_cast<double>(next));
    }
    if (elog_ != nullptr) {
      elog_->instant(obs::EventKind::kBreaker,
                     elog_->intern("breaker@" + name), node, 0,
                     static_cast<std::uint8_t>(next));
    }
    switch (next) {
      case BreakerState::Open:
        if (auto* c = counter("resil.breaker.trips")) c->increment();
        NU_LOG_WARN << "resil: node '" << name
                    << "' quarantined (breaker open)";
        emit_instant("quarantine@" + name, node);
        break;
      case BreakerState::HalfOpen:
        emit_instant("probe@" + name, node);
        break;
      case BreakerState::Closed:
        if (auto* c = counter("resil.breaker.recoveries")) c->increment();
        NU_LOG_WARN << "resil: node '" << name << "' restored (breaker closed)";
        emit_instant("restore@" + name, node);
        break;
    }
  });
  auto [pos, inserted] = healths_.emplace(node, std::move(created));
  NU_ASSERT(inserted);
  return *pos->second;
}

void ResilienceManager::record_failure_at(topo::NodeId node) {
  if (node == topo::kInvalidNode) return;
  health(node).record_failure();
}

void ResilienceManager::sleep_with_abort(double seconds) {
  if (seconds <= 0.0) return;
  if (sleeper_) {
    sleeper_(seconds);
    return;
  }
  // Sleep in small slices so a job cancellation lands mid-backoff
  // instead of after it.
  constexpr double kSliceS = 1e-3;
  const auto start = Clock::now();
  while (true) {
    const double remaining = seconds - seconds_since(start);
    if (remaining <= 0.0) return;
    if (abort_check_ && abort_check_()) return;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::min(remaining, kSliceS)));
  }
}

void ResilienceManager::run_op(topo::NodeId src, topo::NodeId dst,
                               const std::string& label,
                               const std::function<void()>& op) {
  const RetryPolicy& policy = options_.retry;
  // Inside a pool-backed DAG node a backoff must not sleep the worker:
  // the loop parks its progress in the node's resume state and throws
  // exec::BackoffYield, and the graph re-arms the node after the delay.
  // A custom sleeper (tests) keeps the in-place behavior.
  const bool yield_backoff = !sleeper_ && exec::TaskGraph::current_can_yield();
  const std::string resume_key = "resil:" + label;
  auto op_start = Clock::now();
  std::uint32_t attempt = 1;
  if (yield_backoff) {
    if (auto* rs = exec::TaskGraph::current_resume()) {
      const auto it = rs->slots.find(resume_key);
      if (it != rs->slots.end()) {
        const auto* parked = static_cast<const RetryResume*>(it->second.get());
        attempt = parked->attempts_done + 1;
        op_start = Clock::now() -
                   std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(parked->elapsed_s));
        rs->slots.erase(it);
      }
    }
  }
  for (;; ++attempt) {
    std::exception_ptr error;
    const auto attempt_start = Clock::now();
    try {
      op();
    } catch (...) {
      error = std::current_exception();
    }
    if (!error) {
      const double latency = seconds_since(attempt_start);
      health(src).record_success(latency);
      if (dst != src) health(dst).record_success(latency);
      return;
    }

    const ErrorClass cls = classify(error);
    const topo::NodeId fail_node = node_of_origin(origin_of(error));
    if (fail_node != topo::kInvalidNode) {
      record_failure_at(fail_node);
    } else {
      // No storage attribution: blame both endpoints of the transfer.
      record_failure_at(src);
      if (dst != src) record_failure_at(dst);
    }
    const topo::NodeId blame = fail_node != topo::kInvalidNode ? fail_node
                               : dst != topo::kInvalidNode     ? dst
                                                               : src;
    const std::string blame_name =
        blame != topo::kInvalidNode ? tree_.node(blame).name : "?";
    if (cls == ErrorClass::Corruption) {
      ++corruption_detected_;
      if (auto* c = counter("resil.corruption.detected")) c->increment();
      emit_instant("corruption@" + blame_name, blame);
    }

    bool retry = cls != ErrorClass::Permanent && attempt < policy.max_attempts;
    if (retry && policy.op_deadline_s > 0.0 &&
        seconds_since(op_start) >= policy.op_deadline_s) {
      if (auto* c = counter("resil.deadline_giveups")) c->increment();
      retry = false;
    }
    if (retry && deadline_ && seconds_until(*deadline_) <= 0.0) {
      if (auto* c = counter("resil.deadline_giveups")) c->increment();
      retry = false;
    }
    if (retry && abort_check_ && abort_check_()) retry = false;
    if (!retry) {
      if (cls != ErrorClass::Permanent) {
        if (auto* c = counter("resil.giveups")) c->increment();
        NU_LOG_WARN << "resil: giving up on " << label << " after " << attempt
                    << " attempt(s): " << message_of(error);
      }
      std::rethrow_exception(error);
    }

    ++retries_;
    if (auto* c = counter(cls == ErrorClass::Corruption
                              ? "resil.retries.corruption"
                              : "resil.retries.io")) {
      c->increment();
    }
    emit_instant("retry@" + blame_name, blame);
    if (elog_ != nullptr) {
      elog_->instant(obs::EventKind::kRetry,
                     elog_->intern("retry@" + blame_name),
                     blame != topo::kInvalidNode ? blame : obs::kNoNode, 0,
                     cls == ErrorClass::Corruption ? 1 : 0);
    }

    double sleep_s = policy.backoff_for(attempt);
    if (policy.jitter > 0.0 && sleep_s > 0.0) {
      std::lock_guard<std::mutex> lock(mu_);
      sleep_s *= rng_.uniform(1.0 - policy.jitter, 1.0 + policy.jitter);
    }
    // Never sleep past either deadline: the retry should fire while
    // there is still budget to run it.
    if (policy.op_deadline_s > 0.0) {
      sleep_s = std::min(
          sleep_s, policy.op_deadline_s - seconds_since(op_start));
    }
    if (deadline_) sleep_s = std::min(sleep_s, seconds_until(*deadline_));
    if (sleep_s > 0.0 && yield_backoff) {
      if (auto* rs = exec::TaskGraph::current_resume()) {
        auto parked = std::make_shared<RetryResume>();
        parked->attempts_done = attempt;
        parked->elapsed_s = seconds_since(op_start);
        rs->slots[resume_key] = std::move(parked);
        throw exec::BackoffYield{sleep_s};
      }
    }
    sleep_with_abort(sleep_s);
  }
}

}  // namespace northup::resil
