#include "northup/resil/retry.hpp"

#include <algorithm>
#include <cmath>

#include "northup/util/assert.hpp"

namespace northup::resil {

const char* to_string(ErrorClass cls) {
  switch (cls) {
    case ErrorClass::TransientIo:
      return "transient-io";
    case ErrorClass::Corruption:
      return "corruption";
    case ErrorClass::Permanent:
      return "permanent";
  }
  return "unknown";
}

ErrorClass classify(const std::exception_ptr& error) {
  if (!error) return ErrorClass::Permanent;
  try {
    std::rethrow_exception(error);
  } catch (const util::CorruptionError&) {
    return ErrorClass::Corruption;
  } catch (const util::IoError& e) {
    return e.transient() ? ErrorClass::TransientIo : ErrorClass::Permanent;
  } catch (...) {
    return ErrorClass::Permanent;
  }
}

double RetryPolicy::backoff_for(std::uint32_t attempt) const {
  if (attempt == 0) return 0.0;
  const double raw =
      base_backoff_s *
      std::pow(backoff_multiplier, static_cast<double>(attempt - 1));
  return std::clamp(raw, 0.0, max_backoff_s);
}

}  // namespace northup::resil
