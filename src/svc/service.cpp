#include "northup/svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "northup/algos/plan.hpp"
#include "northup/sim/models.hpp"
#include "northup/util/assert.hpp"
#include "northup/util/log.hpp"

namespace northup::svc {

namespace {

double seconds_since(std::chrono::steady_clock::time_point then) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - then)
      .count();
}

}  // namespace

// ---------------------------------------------------------------- JobHandle

JobState JobHandle::state() const {
  NU_CHECK(control_, "state() on an invalid JobHandle");
  std::lock_guard<std::mutex> lock(control_->mu);
  return control_->result.state;
}

bool JobHandle::done() const {
  NU_CHECK(control_, "done() on an invalid JobHandle");
  std::lock_guard<std::mutex> lock(control_->mu);
  return control_->done;
}

const JobResult& JobHandle::wait() const {
  NU_CHECK(control_, "wait() on an invalid JobHandle");
  std::unique_lock<std::mutex> lock(control_->mu);
  control_->cv.wait(lock, [this] { return control_->done; });
  return control_->result;
}

const JobResult& JobHandle::result() const {
  NU_CHECK(control_, "result() on an invalid JobHandle");
  std::lock_guard<std::mutex> lock(control_->mu);
  NU_CHECK(control_->done, "result() before the job finished; use wait()");
  return control_->result;
}

JobResult JobHandle::snapshot() const {
  NU_CHECK(control_, "snapshot() on an invalid JobHandle");
  std::lock_guard<std::mutex> lock(control_->mu);
  return control_->result;
}

JobState JobHandle::wait_for_change(JobState last,
                                    std::chrono::milliseconds timeout) const {
  NU_CHECK(control_, "wait_for_change() on an invalid JobHandle");
  std::unique_lock<std::mutex> lock(control_->mu);
  control_->cv.wait_for(lock, timeout, [this, last] {
    return control_->done || control_->result.state != last;
  });
  return control_->result.state;
}

bool JobHandle::cancel() {
  NU_CHECK(control_ && service_, "cancel() on an invalid JobHandle");
  return service_->cancel(control_);
}

// ---------------------------------------------------------------- JobService

JobService::JobService(ServiceOptions options)
    : options_(std::move(options)),
      machine_(std::make_unique<core::Runtime>(
          make_tree(options_.machine),
          core::RuntimeOptions{.enable_sim = false,
                               .file_dir = options_.file_dir,
                               // The ledger needs the BufferPools.
                               .enable_shard_cache = true})),
      admission_(*machine_),
      feasibility_(make_feasibility()),
      overload_(options_.overload, &machine_->metrics()),
      pool_(std::max<std::size_t>(1, options_.workers)),
      scheduler_(options_.policy) {
  NU_CHECK(options_.machine_levels == 2 || options_.machine_levels == 3,
           "machine_levels must be 2 (APU) or 3 (discrete GPU)");
  NU_CHECK(options_.max_queue_depth > 0, "max_queue_depth must be positive");
  auto& metrics = machine_->metrics();
  metrics.gauge("svc.queue.depth").set(0.0);
  metrics.gauge("svc.queue.high_water").set(0.0);
  metrics.gauge("svc.running").set(0.0);
  metrics.gauge("svc.jobs.active").set(0.0);
}

JobService::~JobService() { wait_all(); }

topo::TopoTree JobService::make_tree(const topo::PresetOptions& preset) const {
  return options_.machine_levels == 2
             ? topo::apu_two_level(options_.file_kind, preset)
             : topo::dgpu_three_level(options_.file_kind, preset);
}

plan::FeasibilityEstimator JobService::make_feasibility() const {
  if (options_.overload.machine_profile != nullptr) {
    // Calibrated profile (e.g. a plan::Calibrator run over recorded
    // .nulogs of this machine): measured edge bandwidths sharpen the
    // estimate; the chain stays the machine ledger's.
    std::vector<std::uint32_t> chain;
    const auto& tree = machine_->tree();
    topo::NodeId node = tree.root();
    chain.push_back(node);
    while (!tree.is_leaf(node)) {
      node = tree.get_children_list(node)[0];
      chain.push_back(node);
    }
    return plan::FeasibilityEstimator(*options_.overload.machine_profile,
                                      std::move(chain));
  }
  return plan::FeasibilityEstimator::from_tree(machine_->tree());
}

std::size_t JobService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scheduler_.depth();
}

std::size_t JobService::running_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

std::size_t JobService::job_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_jobs_;
}

std::size_t JobService::active_tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_by_tenant_.size();
}

JobHandle JobService::find_job(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  return it != jobs_.end() ? JobHandle(it->second, this) : JobHandle();
}

std::vector<std::uint64_t> JobService::job_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(id);
  return out;
}

void JobService::update_active_gauge_locked() {
  machine_->metrics()
      .gauge("svc.jobs.active")
      .set(static_cast<double>(active_jobs_));
}

void JobService::register_job_locked(const std::shared_ptr<JobControl>& job) {
  jobs_[job->id] = job;
  bool terminal;
  {
    std::lock_guard<std::mutex> job_lock(job->mu);
    terminal = job->done;
  }
  if (terminal) {
    // Rejected-at-submit jobs go straight into the retention queue.
    finished_order_.push_back(job->id);
  } else {
    ++active_jobs_;
    ++active_by_tenant_[job->request.tenant];
    update_active_gauge_locked();
  }
  while (finished_order_.size() > options_.max_finished_jobs) {
    jobs_.erase(finished_order_.front());
    finished_order_.erase(finished_order_.begin());
  }
}

void JobService::note_terminal_locked(const std::shared_ptr<JobControl>& job) {
  NU_CHECK(active_jobs_ > 0, "terminal publication without an active job");
  --active_jobs_;
  auto it = active_by_tenant_.find(job->request.tenant);
  if (it != active_by_tenant_.end() && --it->second == 0) {
    active_by_tenant_.erase(it);
  }
  update_active_gauge_locked();
  finished_order_.push_back(job->id);
  while (finished_order_.size() > options_.max_finished_jobs) {
    jobs_.erase(finished_order_.front());
    finished_order_.erase(finished_order_.begin());
  }
}

JobHandle JobService::submit(JobRequest request) {
  return submit_impl(std::move(request), /*blocking=*/true);
}

JobHandle JobService::try_submit(JobRequest request) {
  return submit_impl(std::move(request), /*blocking=*/false);
}

JobHandle JobService::reject(std::shared_ptr<JobControl> job,
                             RejectReason reason, const std::string& error) {
  auto& metrics = machine_->metrics();
  metrics.counter(std::string("svc.rejected.") + reason_name(reason))
      .increment();
  {
    std::lock_guard<std::mutex> job_lock(job->mu);
    job->done = true;
    job->result.state = JobState::Rejected;
    job->result.reject = reason;
    job->result.error = error;
    job->cv.notify_all();
  }
  // Rejections stay findable by id (the HTTP plane returns the id to the
  // client before the client can ask about it). Callers hold mu_.
  register_job_locked(job);
  return JobHandle(std::move(job), this);
}

JobHandle JobService::submit_impl(JobRequest request, bool blocking) {
  auto job = make_control(std::move(request));
  std::unique_lock<std::mutex> lock(mu_);
  JobHandle handle = enqueue_impl(std::move(job), blocking, lock);
  dispatch_locked();
  return handle;
}

std::vector<JobHandle> JobService::try_submit_batch(
    std::vector<JobRequest> requests) {
  // Footprint/work estimation happens before the service lock; the whole
  // batch then enqueues under ONE lock acquisition and pays ONE dispatch
  // scan — the admission amortization batched HTTP submissions buy.
  std::vector<std::shared_ptr<JobControl>> controls;
  controls.reserve(requests.size());
  for (JobRequest& request : requests) {
    controls.push_back(make_control(std::move(request)));
  }
  std::vector<JobHandle> handles;
  handles.reserve(controls.size());
  std::unique_lock<std::mutex> lock(mu_);
  for (auto& job : controls) {
    handles.push_back(enqueue_impl(std::move(job), /*blocking=*/false, lock));
  }
  dispatch_locked();
  return handles;
}

std::shared_ptr<JobControl> JobService::make_control(JobRequest request) {
  machine_->metrics().counter("svc.jobs.submitted").increment();
  auto job = std::make_shared<JobControl>();
  job->kind = kind_of(request);
  job->preferred = estimate_footprint(request);
  job->floor = min_footprint(request);
  job->work = work_estimate(request);
  job->request = std::move(request);
  return job;
}

JobHandle JobService::enqueue_impl(std::shared_ptr<JobControl> job,
                                   bool blocking,
                                   std::unique_lock<std::mutex>& lock) {
  auto& metrics = machine_->metrics();
  job->id = next_id_++;
  if (job->request.name.empty()) {
    job->request.name =
        std::string(kind_name(job->kind)) + "-" + std::to_string(job->id);
  }

  // Fast rejection: a floor that exceeds some node's total capacity can
  // never be admitted, full stop.
  const std::string impossible = admission_.impossible_reason(job->floor);
  if (!impossible.empty()) {
    return reject(std::move(job), RejectReason::FootprintTooLarge, impossible);
  }

  if (overload_.enabled()) {
    // Deadline feasibility: a job that cannot meet its deadline even on
    // an otherwise idle machine (lower-bound estimate) is rejected here,
    // in microseconds, instead of expiring after queueing.
    const auto& oo = overload_.options();
    const double deadline = job->request.deadline_s;
    if (oo.reject_infeasible_deadlines && deadline > 0.0) {
      const double queue_delay = oo.feasibility_includes_queue_delay
                                     ? overload_.expected_queue_delay()
                                     : 0.0;
      if (!feasibility_.feasible(job->work, deadline, oo.feasibility_margin,
                                 queue_delay)) {
        const plan::CostEstimate cost = feasibility_.estimate(job->work);
        return reject(
            std::move(job), RejectReason::InfeasibleDeadline,
            "deadline of " + std::to_string(deadline) +
                " s is infeasible: estimated " + std::to_string(cost.total_s()) +
                " s execution (transfer " + std::to_string(cost.transfer_s) +
                " s, compute " + std::to_string(cost.compute_s) +
                " s) plus " + std::to_string(queue_delay) +
                " s expected queue delay");
      }
    }

    // Per-tenant token bucket, cost charged in estimated job bytes.
    if (!overload_.try_charge(job->request.tenant, job->work.total_bytes(),
                              std::chrono::steady_clock::now())) {
      const TenantLimit limit = overload_.limit_for(job->request.tenant);
      return reject(
          std::move(job), RejectReason::RateLimited,
          "tenant '" + job->request.tenant + "' is over its admission rate (" +
              std::to_string(job->work.total_bytes()) + " job bytes against " +
              std::to_string(limit.rate_bytes_per_s) + " B/s, burst " +
              std::to_string(limit.burst_bytes) + " B)");
    }
  }

  // Bounded queue: block (submit) or reject (try_submit) when full.
  if (blocking) {
    queue_space_cv_.wait(
        lock, [this] { return scheduler_.depth() < options_.max_queue_depth; });
  } else if (scheduler_.depth() >= options_.max_queue_depth) {
    return reject(std::move(job), RejectReason::QueueFull,
                  "queue full (" + std::to_string(options_.max_queue_depth) +
                      " jobs already waiting)");
  }

  job->seq = next_seq_++;
  job->submit_time = std::chrono::steady_clock::now();
  metrics.counter("svc.jobs.admitted").increment();
  scheduler_.enqueue(job);
  register_job_locked(job);
  const double depth = static_cast<double>(scheduler_.depth());
  queue_high_water_ = std::max(queue_high_water_, depth);
  metrics.gauge("svc.queue.depth").set(depth);
  metrics.gauge("svc.queue.high_water").set(queue_high_water_);

  return JobHandle(std::move(job), this);
}

void JobService::finalize_unrun_locked(const std::shared_ptr<JobControl>& job,
                                       JobState state,
                                       const std::string& error) {
  auto& metrics = machine_->metrics();
  metrics.gauge("svc.queue.depth")
      .set(static_cast<double>(scheduler_.depth()));
  {
    std::lock_guard<std::mutex> job_lock(job->mu);
    job->done = true;
    job->result.state = state;
    job->result.error = error;
    job->result.latency_s = seconds_since(job->submit_time);
    job->result.queue_wait_s = job->result.latency_s;
    job->cv.notify_all();
  }
  note_terminal_locked(job);
  trace_.record_instant(job->request.tenant, job->id, job->request.name,
                        state_name(state), trace_.now());
  queue_space_cv_.notify_all();
  drain_cv_.notify_all();
}

void JobService::shed_locked() {
  if (!overload_.enabled()) return;
  auto& metrics = machine_->metrics();
  const auto now = std::chrono::steady_clock::now();
  while (scheduler_.depth() > 0 && overload_.take_shed(now)) {
    // Shed from the tail of dispatch-preference order: the job the
    // policy wants least (lowest priority, most over-quota tenant).
    const auto ordered = scheduler_.ordered();
    const auto& victim = ordered.back();
    scheduler_.erase(victim.get());
    overload_.note_shed();
    metrics.counter("svc.rejected.shed").increment();
    metrics.counter("svc.shed.bytes")
        .add(static_cast<std::uint64_t>(victim->work.total_bytes()));
    {
      std::lock_guard<std::mutex> job_lock(victim->mu);
      victim->result.reject = RejectReason::Shed;
    }
    finalize_unrun_locked(
        victim, JobState::Rejected,
        "shed under overload (queue delay above " +
            std::to_string(overload_.options().target_queue_delay_s) +
            " s target)");
  }
}

void JobService::dispatch_locked() {
  auto& metrics = machine_->metrics();
  if (overload_.enabled()) {
    // Refresh the two pressure signals at every dispatch point, then
    // let the CoDel law decide whether (and how fast) to shed.
    double oldest_wait = 0.0;
    for (const auto& job : scheduler_.ordered()) {
      oldest_wait = std::max(oldest_wait, seconds_since(job->submit_time));
    }
    overload_.update(std::chrono::steady_clock::now(), oldest_wait,
                     admission_.reserved_fraction());
    shed_locked();
  }
  const double grant_scale = overload_.grant_scale();
  for (const auto& job : scheduler_.ordered()) {
    if (job->cancel_requested.load(std::memory_order_relaxed)) {
      scheduler_.erase(job.get());
      metrics.counter("svc.jobs.cancelled").increment();
      finalize_unrun_locked(job, JobState::Cancelled, "cancelled while queued");
      continue;
    }
    const double deadline = job->request.deadline_s;
    if (deadline > 0.0 && seconds_since(job->submit_time) > deadline) {
      scheduler_.erase(job.get());
      metrics.counter("svc.jobs.expired").increment();
      finalize_unrun_locked(job, JobState::Expired,
                            "deadline of " + std::to_string(deadline) +
                                " s passed while queued");
      continue;
    }
    // Brownout: shrink grants toward the floor before shedding anything
    // — degraded (smaller-block, more-I/O) service beats no service.
    JobFootprint preferred = job->preferred;
    if (grant_scale < 1.0) {
      auto scale = [&](std::uint64_t want, std::uint64_t need) {
        if (want <= need) return want;
        return need + static_cast<std::uint64_t>(
                          static_cast<double>(want - need) * grant_scale);
      };
      preferred.root_bytes = scale(job->preferred.root_bytes,
                                   job->floor.root_bytes);
      preferred.staging_bytes = scale(job->preferred.staging_bytes,
                                      job->floor.staging_bytes);
      preferred.device_bytes = scale(job->preferred.device_bytes,
                                     job->floor.device_bytes);
    }
    JobFootprint granted;
    if (admission_.try_reserve(preferred, job->floor, granted)) {
      scheduler_.erase(job.get());
      {
        std::lock_guard<std::mutex> job_lock(job->mu);
        job->result.state = JobState::Running;
        job->result.granted = granted;
        // State transitions wake event-stream watchers, not just the
        // terminal publication.
        job->cv.notify_all();
      }
      ++running_;
      metrics.gauge("svc.running").set(static_cast<double>(running_));
      metrics.gauge("svc.queue.depth")
          .set(static_cast<double>(scheduler_.depth()));
      queue_space_cv_.notify_all();
      pool_.submit([this, job, granted] { run_job(job, granted); });
    } else if (scheduler_.head_of_line_blocking()) {
      // FIFO: nothing younger may overtake a head that does not fit.
      break;
    }
  }
}

void JobService::run_job(std::shared_ptr<JobControl> job,
                         JobFootprint granted) {
  auto& metrics = machine_->metrics();
  const std::string& tenant = job->request.tenant;
  const std::string& name = job->request.name;

  // Close the dequeue-to-dispatch race: the deadline may pass while this
  // pool task waits behind other jobs for a worker thread. Running such a
  // job to completion wastes the machine on work nobody will consume —
  // finish it Expired before building a runtime.
  {
    const double deadline = job->request.deadline_s;
    if (deadline > 0.0 && seconds_since(job->submit_time) > deadline) {
      metrics.counter("svc.jobs.expired").increment();
      admission_.release(granted);
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      metrics.gauge("svc.running").set(static_cast<double>(running_));
      {
        std::lock_guard<std::mutex> job_lock(job->mu);
        job->done = true;
        job->result.state = JobState::Expired;
        job->result.error = "deadline of " + std::to_string(deadline) +
                            " s passed between dequeue and dispatch";
        job->result.latency_s = seconds_since(job->submit_time);
        job->result.queue_wait_s = job->result.latency_s;
        job->cv.notify_all();
      }
      note_terminal_locked(job);
      trace_.record_instant(tenant, job->id, name, "expired", trace_.now());
      drain_cv_.notify_all();
      dispatch_locked();
      return;
    }
  }

  // Machine-wide flight-recorder span for the whole job: per-attempt
  // runtimes record into the same log (external_event_log below), so
  // every chunk/move event chains job -> run -> spawn -> move.
  obs::SpanScope job_span(machine_->event_log(),
                          "job:" + tenant + "/" + name, "job");

  const double queue_wait = seconds_since(job->submit_time);
  metrics.histogram("svc.latency.queue_wait").record(queue_wait);
  metrics.counter("svc.tenant." + tenant + ".dispatched").increment();
  if (overload_.enabled()) {
    std::lock_guard<std::mutex> lock(mu_);
    overload_.observe_queue_wait(queue_wait);
  }
  const double dispatch_ts = trace_.now();
  trace_.record_span(tenant, job->id, name, "queue", "queue",
                     std::max(0.0, dispatch_ts - queue_wait), dispatch_ts);

  topo::PresetOptions job_preset = options_.machine;
  job_preset.root_capacity = granted.root_bytes;
  job_preset.staging_capacity = granted.staging_bytes;
  if (options_.machine_levels >= 3) {
    job_preset.device_capacity = granted.device_bytes;
  }

  JobState state = JobState::Failed;
  std::string error;
  algos::RunStats stats;
  std::uint32_t attempt = 0;
  double exec_seconds = 0.0;
  std::uint64_t chunk_retries = 0;
  std::uint64_t corruptions = 0;
  const std::uint32_t max_attempts = 1 + job->request.max_retries;
  const double deadline = job->request.deadline_s;

  // Folds one attempt's resil.* counters into the machine metrics and the
  // job's totals, then tears the attempt runtime down.
  auto fold_resil = [&](std::unique_ptr<core::Runtime>& rt) {
    if (!rt) return;
    for (const auto& [cname, value] : rt->metrics().counter_values()) {
      if (value == 0 || cname.rfind("resil.", 0) != 0) continue;
      metrics.counter(cname).add(value);
    }
    chunk_retries += rt->resilience().retries();
    corruptions += rt->resilience().corruption_detected();
    rt.reset();
  };

  while (attempt < max_attempts) {
    ++attempt;
    if (job->cancel_requested.load(std::memory_order_relaxed)) {
      state = JobState::Cancelled;
      error = "cancelled before attempt " + std::to_string(attempt);
      metrics.counter("svc.jobs.cancelled").increment();
      trace_.record_instant(tenant, job->id, name, "cancelled", trace_.now());
      break;
    }
    const double attempt_start = trace_.now();
    const auto attempt_timer = std::chrono::steady_clock::now();
    std::unique_ptr<core::Runtime> rt;
    try {
      core::RuntimeOptions rt_options{
          .enable_sim = options_.enable_sim,
          .file_dir = options_.file_dir,
          .paced_storage = options_.paced_storage,
          .enable_shard_cache = options_.enable_shard_cache,
          .resilience = options_.resilience,
          .external_event_log = machine_->event_log()};
      if (overload_.checksums_disabled() &&
          rt_options.resilience.verify_checksums) {
        // Brownout level >= 2: trade end-to-end integrity checks for
        // throughput before resorting to shedding.
        rt_options.resilience.verify_checksums = false;
        metrics.counter("svc.brownout.checksums_skipped").increment();
      }
      if (job->request.chaos.enabled()) {
        // Seeded chaos on the deep-storage root of every attempt.
        const mem::FaultPlan chaos = job->request.chaos;
        rt_options.storage_decorator =
            [chaos](topo::NodeId node, const topo::TopoTree& tree,
                    std::unique_ptr<mem::Storage> storage)
            -> std::unique_ptr<mem::Storage> {
          if (node != tree.root()) return storage;
          auto wrapped = std::make_unique<mem::FaultInjectingStorage>(
              std::move(storage));
          wrapped->set_plan(chaos);
          return wrapped;
        };
      }
      rt = std::make_unique<core::Runtime>(make_tree(job_preset), rt_options);
      // Chunk retries stop promptly on cancellation (mid-backoff too) and
      // never sleep past the job's deadline.
      rt->resilience().set_abort_check([job] {
        return job->cancel_requested.load(std::memory_order_relaxed);
      });
      if (deadline > 0.0) {
        rt->resilience().set_deadline(
            job->submit_time + std::chrono::duration_cast<
                                   std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(deadline)));
      }
      if (attempt <= job->request.fault.failing_attempts) {
        // Deterministic failure testing: wrap the DRAM staging node in a
        // faulting decorator armed per the job's plan.
        const topo::NodeId dram = rt->tree().find("dram");
        NU_CHECK(dram != topo::kInvalidNode,
                 "fault plan needs a 'dram' node in the job tree");
        auto wrapped = std::make_unique<mem::FaultInjectingStorage>(
            std::make_unique<mem::HostStorage>(
                "dram", mem::StorageKind::Dram,
                rt->tree().memory(dram).capacity, sim::ModelPresets::dram()));
        wrapped->arm(job->request.fault.kind, job->request.fault.countdown);
        rt->dm().bind_storage(dram, std::move(wrapped));
      }
      // One dispatch signature for every planner (algos::Plan).
      const auto plan = std::visit(
          [](const auto& config) { return algos::make_plan(config); },
          job->request.config);
      stats = plan->run(*rt);
      exec_seconds += seconds_since(attempt_timer);
      fold_resil(rt);
      trace_.record_span(tenant, job->id, name,
                         "run#" + std::to_string(attempt), "run",
                         attempt_start, trace_.now());
      state = JobState::Done;
      error.clear();
      break;
    } catch (const util::IoError& e) {
      exec_seconds += seconds_since(attempt_timer);
      fold_resil(rt);
      trace_.record_span(tenant, job->id, name,
                         "run#" + std::to_string(attempt) + " (I/O fault)",
                         "run", attempt_start, trace_.now());
      metrics.counter("svc.jobs.io_faults").increment();
      error = e.what();
      if (job->cancel_requested.load(std::memory_order_relaxed)) {
        state = JobState::Cancelled;
        error = "cancelled during attempt " + std::to_string(attempt);
        metrics.counter("svc.jobs.cancelled").increment();
        trace_.record_instant(tenant, job->id, name, "cancelled",
                              trace_.now());
        break;
      }
      if (deadline > 0.0 && seconds_since(job->submit_time) >= deadline) {
        // Whole-job retries must not outlive the deadline either.
        error = "deadline of " + std::to_string(deadline) +
                " s passed during attempt " + std::to_string(attempt) + ": " +
                error;
        break;
      }
      if (attempt < max_attempts) {
        metrics.counter("svc.jobs.retries").increment();
        trace_.record_instant(tenant, job->id, name, "retry", trace_.now());
        continue;
      }
      error = "I/O fault persisted through " + std::to_string(attempt) +
              " attempts: " + error;
    } catch (const std::exception& e) {
      // Capacity and logic errors are not transient; fail immediately.
      exec_seconds += seconds_since(attempt_timer);
      fold_resil(rt);
      trace_.record_span(tenant, job->id, name,
                         "run#" + std::to_string(attempt) + " (error)", "run",
                         attempt_start, trace_.now());
      error = e.what();
      break;
    }
  }
  if (state == JobState::Failed) {
    metrics.counter("svc.jobs.failed").increment();
    trace_.record_instant(tenant, job->id, name, "failed", trace_.now());
  } else if (state == JobState::Done) {
    metrics.counter("svc.jobs.completed").increment();
  }

  const double latency = seconds_since(job->submit_time);
  metrics.histogram("svc.latency.e2e").record(latency);
  metrics.histogram("svc.latency.exec").record(exec_seconds);
  metrics.histogram("svc.tenant." + tenant + ".e2e").record(latency);
  if (state == JobState::Done) {
    metrics.counter("svc.tenant." + tenant + ".completed").increment();
  }

  admission_.release(granted);
  {
    std::lock_guard<std::mutex> lock(mu_);
    scheduler_.charge(job->request.tenant, job->request.weight, exec_seconds);
    --running_;
    metrics.gauge("svc.running").set(static_cast<double>(running_));
    {
      std::lock_guard<std::mutex> job_lock(job->mu);
      job->done = true;
      job->result.state = state;
      job->result.error = error;
      job->result.stats = stats;
      job->result.queue_wait_s = queue_wait;
      job->result.latency_s = latency;
      job->result.attempts = attempt;
      job->result.chunk_retries = chunk_retries;
      job->result.corruptions = corruptions;
      job->cv.notify_all();
    }
    note_terminal_locked(job);
    drain_cv_.notify_all();
    dispatch_locked();  // freed capacity may admit waiting jobs
  }
}

bool JobService::cancel(const std::shared_ptr<JobControl>& job) {
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> job_lock(job->mu);
    if (job->done) return false;
  }
  job->cancel_requested.store(true, std::memory_order_relaxed);
  if (scheduler_.erase(job.get())) {
    machine_->metrics().counter("svc.jobs.cancelled").increment();
    finalize_unrun_locked(job, JobState::Cancelled, "cancelled while queued");
    dispatch_locked();  // cancellation is a dispatch point
  }
  // A running job observes the flag before its next attempt; its current
  // attempt runs to completion (attempts are not interruptible).
  return true;
}

void JobService::kick() {
  std::lock_guard<std::mutex> lock(mu_);
  dispatch_locked();
}

void JobService::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock,
                 [this] { return scheduler_.depth() == 0 && running_ == 0; });
}

}  // namespace northup::svc
