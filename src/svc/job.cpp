#include "northup/svc/job.hpp"

#include <algorithm>

#include "northup/util/assert.hpp"

namespace northup::svc {

namespace {

constexpr std::uint64_t kF = sizeof(float);

/// Safety divisor mirroring the algorithms' capacity_safety defaults: a
/// reservation of `bytes / kSafety` lets the chunk planners fit `bytes`
/// of working set at their 0.85 budget factor.
constexpr double kSafety = 0.85;
/// Extra slop on preferred grants: shard-cache bookkeeping, transient
/// double-residency while a block is being swapped.
constexpr double kHeadroom = 1.25;

std::uint64_t with_safety(double bytes, double headroom = 1.0) {
  return static_cast<std::uint64_t>(bytes / kSafety * headroom) + 4096;
}

/// Largest divisor of `n` in the halving chain n, n/2, ... that is still
/// >= max(floor, n/4) — the level-1 block the bench harnesses target.
std::uint64_t preferred_block(std::uint64_t n, std::uint64_t floor) {
  std::uint64_t b = n;
  while (b / 2 >= floor && b / 2 >= n / 4 && n % (b / 2) == 0) b /= 2;
  return b;
}

JobFootprint gemm_footprint(const algos::GemmConfig& c, bool preferred) {
  NU_CHECK(c.n >= c.leaf_tile && c.n % c.leaf_tile == 0,
           "GEMM job dimension must be a multiple of its leaf tile");
  JobFootprint fp;
  // Root holds A, B, C exactly (block-major preprocessing is in-place
  // sized).
  fp.root_bytes = 3 * c.n * c.n * kF + 4096;

  const std::uint64_t b =
      preferred ? preferred_block(c.n, c.leaf_tile) : c.leaf_tile;
  // Resident level-1 set: C block + B block + (with reuse) the cached row
  // strip of A, i.e. n/b blocks; without reuse a single A block.
  const double resident =
      (c.shard_reuse ? static_cast<double>(c.n / b) + 2.0 : 3.0) *
      static_cast<double>(b * b) * kF;
  fp.staging_bytes = with_safety(resident, preferred ? kHeadroom : 1.0);

  // Device level re-splits b into sub-blocks; 3 leaf-tile blocks is the
  // floor, a quarter-split strip the preferred shape.
  const std::uint64_t t = preferred
                              ? std::max<std::uint64_t>(c.leaf_tile, b / 4)
                              : c.leaf_tile;
  const double dev_resident =
      (c.shard_reuse && t < b ? static_cast<double>(b / t) + 2.0 : 3.0) *
      static_cast<double>(t * t) * kF;
  fp.device_bytes = with_safety(dev_resident, preferred ? kHeadroom : 1.0);
  return fp;
}

JobFootprint hotspot_footprint(const algos::HotspotConfig& c, bool preferred) {
  NU_CHECK(c.n >= c.leaf_tile && c.n % c.leaf_tile == 0,
           "HotSpot job dimension must be a multiple of its leaf tile");
  JobFootprint fp;
  // Root: temp_in/temp_out/power grids plus two packed halo arrays whose
  // size grows as blocks shrink; bound with the smallest block (the leaf
  // tile), giving 2 * (16 n^2 / b) <= 2 n^2 extra bytes.
  const double halo_bound =
      2.0 * 16.0 * static_cast<double>(c.n * c.n) /
      static_cast<double>(c.leaf_tile);
  fp.root_bytes = static_cast<std::uint64_t>(
                      3.0 * static_cast<double>(c.n * c.n) * kF + halo_bound) +
                  4096;

  const std::uint64_t b =
      preferred ? preferred_block(c.n, c.leaf_tile) : c.leaf_tile;
  // In-flight block set: temp in/out, power, halo and the packed border
  // vectors (~4 b^2 + 9 b floats), plus cross-sweep cached power blocks
  // which stay evictable and need no reservation.
  const double resident =
      (4.0 * static_cast<double>(b * b) + 9.0 * static_cast<double>(b)) * kF;
  fp.staging_bytes = with_safety(resident, preferred ? kHeadroom : 1.0);

  const std::uint64_t t = preferred
                              ? std::max<std::uint64_t>(c.leaf_tile, b / 4)
                              : c.leaf_tile;
  const double dev_resident =
      (4.0 * static_cast<double>(t * t) + 9.0 * static_cast<double>(t)) * kF;
  fp.device_bytes = with_safety(dev_resident, preferred ? kHeadroom : 1.0);
  return fp;
}

JobFootprint spmv_footprint(const algos::SpmvConfig& c, bool preferred) {
  JobFootprint fp;
  const double rows = static_cast<double>(c.rows);
  // Generators draw ~avg_nnz entries per row; power-law tails overshoot
  // the mean, so budget with a 1.35 margin.
  const double nnz_est = rows * static_cast<double>(c.avg_nnz) * 1.35 + rows;
  const double x_bytes = rows * kF;  // generators emit square matrices
  const double csr_bytes = (rows + 1.0) * 4.0 + nnz_est * 8.0 + rows * kF;
  fp.root_bytes =
      static_cast<std::uint64_t>((csr_bytes + x_bytes) * 1.05) + 4096;

  // The dense vector stays resident at every level below the root ("the
  // fastest memory has to be big enough to hold the vector"); shards
  // stream through whatever is left, so the reservation is x (twice at
  // staging: the in-flight copy plus the one being forwarded) plus a
  // shard budget the planner can subdivide freely.
  const double shard_budget =
      preferred ? std::clamp(csr_bytes / 4.0, 512.0 * 1024, 6.0 * 1024 * 1024)
                : 256.0 * 1024;
  fp.staging_bytes =
      with_safety(2.0 * x_bytes + shard_budget, preferred ? kHeadroom : 1.0);
  fp.device_bytes =
      with_safety(2.0 * x_bytes + shard_budget, preferred ? kHeadroom : 1.0);
  return fp;
}

JobFootprint footprint_for(const JobRequest& request, bool preferred) {
  if (!request.footprint.zero()) return request.footprint;
  return std::visit(
      [&](const auto& config) -> JobFootprint {
        using T = std::decay_t<decltype(config)>;
        if constexpr (std::is_same_v<T, algos::GemmConfig>) {
          return gemm_footprint(config, preferred);
        } else if constexpr (std::is_same_v<T, algos::HotspotConfig>) {
          return hotspot_footprint(config, preferred);
        } else {
          return spmv_footprint(config, preferred);
        }
      },
      request.config);
}

}  // namespace

const char* kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::Gemm: return "gemm";
    case JobKind::Hotspot: return "hotspot";
    case JobKind::Spmv: return "spmv";
  }
  return "?";
}

JobKind kind_of(const JobRequest& request) {
  if (std::holds_alternative<algos::GemmConfig>(request.config)) {
    return JobKind::Gemm;
  }
  if (std::holds_alternative<algos::HotspotConfig>(request.config)) {
    return JobKind::Hotspot;
  }
  return JobKind::Spmv;
}

JobFootprint estimate_footprint(const JobRequest& request) {
  return footprint_for(request, /*preferred=*/true);
}

JobFootprint min_footprint(const JobRequest& request) {
  return footprint_for(request, /*preferred=*/false);
}

plan::WorkEstimate work_estimate(const JobRequest& request) {
  plan::WorkEstimate w;
  std::visit(
      [&](const auto& config) {
        using T = std::decay_t<decltype(config)>;
        if constexpr (std::is_same_v<T, algos::GemmConfig>) {
          const double n = static_cast<double>(config.n);
          w.down_bytes = 2.0 * n * n * kF;  // A and B enter once
          w.up_bytes = n * n * kF;          // C returns
          w.flops = 2.0 * n * n * n;
          w.compute_bytes = 3.0 * n * n * kF;
        } else if constexpr (std::is_same_v<T, algos::HotspotConfig>) {
          const double n = static_cast<double>(config.n);
          const double sweeps = static_cast<double>(config.iterations);
          w.down_bytes = 2.0 * n * n * kF * sweeps;  // temp + power per sweep
          w.up_bytes = n * n * kF * sweeps;          // next temp per sweep
          w.flops = 10.0 * n * n * sweeps;           // 5-point stencil + scale
          w.compute_bytes = 3.0 * n * n * kF * sweeps;
        } else {
          const double rows = static_cast<double>(config.rows);
          const double nnz = rows * static_cast<double>(config.avg_nnz);
          const double csr_bytes = (rows + 1.0) * 4.0 + nnz * 8.0 + rows * kF;
          w.down_bytes = csr_bytes + rows * kF;  // matrix shards + x
          w.up_bytes = rows * kF;                // y
          w.flops = 2.0 * nnz;
          w.compute_bytes = csr_bytes + 2.0 * rows * kF;
        }
      },
      request.config);
  return w;
}

}  // namespace northup::svc
