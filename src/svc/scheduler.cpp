#include "northup/svc/scheduler.hpp"

#include <algorithm>

#include "northup/util/assert.hpp"

namespace northup::svc {

const char* state_name(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Rejected: return "rejected";
    case JobState::Cancelled: return "cancelled";
    case JobState::Expired: return "expired";
  }
  return "?";
}

const char* reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::None: return "none";
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::RateLimited: return "rate_limited";
    case RejectReason::InfeasibleDeadline: return "infeasible_deadline";
    case RejectReason::Shed: return "shed";
    case RejectReason::FootprintTooLarge: return "footprint_too_large";
  }
  return "?";
}

const char* policy_name(SchedulingPolicy policy) {
  return policy == SchedulingPolicy::Fifo ? "fifo" : "fair";
}

void JobScheduler::enqueue(std::shared_ptr<JobControl> job) {
  NU_CHECK(job->request.weight > 0.0, "job weight must be positive");
  if (policy_ == SchedulingPolicy::WeightedFair) {
    // A tenant (re)joining the active set starts at the floor of the
    // currently waiting tenants' clocks: it competes fairly from now on
    // but earns no credit for the time it sat idle.
    double floor = 0.0;
    bool any = false;
    for (const auto& pending : pending_) {
      const double vt = virtual_time_[pending->request.tenant];
      floor = any ? std::min(floor, vt) : vt;
      any = true;
    }
    auto [it, inserted] = virtual_time_.try_emplace(job->request.tenant, 0.0);
    if (any) it->second = std::max(it->second, floor);
  }
  pending_.push_back(std::move(job));
}

bool JobScheduler::erase(const JobControl* job) {
  const auto it = std::find_if(
      pending_.begin(), pending_.end(),
      [job](const std::shared_ptr<JobControl>& p) { return p.get() == job; });
  if (it == pending_.end()) return false;
  pending_.erase(it);
  return true;
}

std::vector<std::shared_ptr<JobControl>> JobScheduler::ordered() const {
  std::vector<std::shared_ptr<JobControl>> out = pending_;
  if (policy_ == SchedulingPolicy::WeightedFair) {
    std::stable_sort(
        out.begin(), out.end(),
        [this](const std::shared_ptr<JobControl>& a,
               const std::shared_ptr<JobControl>& b) {
          if (a->request.priority != b->request.priority) {
            return a->request.priority > b->request.priority;
          }
          const auto vt = [this](const std::shared_ptr<JobControl>& j) {
            const auto it = virtual_time_.find(j->request.tenant);
            return it != virtual_time_.end() ? it->second : 0.0;
          };
          const double va = vt(a);
          const double vb = vt(b);
          if (va != vb) return va < vb;
          return a->seq < b->seq;
        });
  }
  return out;
}

void JobScheduler::charge(const std::string& tenant, double weight,
                          double seconds) {
  if (policy_ != SchedulingPolicy::WeightedFair) return;
  NU_CHECK(weight > 0.0, "job weight must be positive");
  virtual_time_[tenant] += seconds / weight;
}

double JobScheduler::virtual_time(const std::string& tenant) const {
  const auto it = virtual_time_.find(tenant);
  return it != virtual_time_.end() ? it->second : 0.0;
}

}  // namespace northup::svc
