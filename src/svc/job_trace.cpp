#include "northup/svc/job_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "northup/util/assert.hpp"

namespace northup::svc {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::uint32_t JobTraceRecorder::tenant_pid_locked(
    const std::string& tenant) const {
  const auto [it, inserted] =
      pids_.try_emplace(tenant, static_cast<std::uint32_t>(pids_.size() + 1));
  return it->second;
}

void JobTraceRecorder::record_span(const std::string& tenant,
                                   std::uint64_t job_id,
                                   const std::string& job_name,
                                   const std::string& label, const char* phase,
                                   double start_s, double end_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(Event{tenant, job_id, job_name, label, phase, start_s,
                          std::max(0.0, end_s - start_s), false});
}

void JobTraceRecorder::record_instant(const std::string& tenant,
                                      std::uint64_t job_id,
                                      const std::string& job_name,
                                      const std::string& label, double at_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(
      Event{tenant, job_id, job_name, label, "", at_s, 0.0, true});
}

std::size_t JobTraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string JobTraceRecorder::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> events = events_;
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.start_s < b.start_s;
                   });

  std::ostringstream os;
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    os << (first ? "" : ",\n") << line;
    first = false;
  };

  // Metadata: process per tenant, thread per job (named after the job).
  std::set<std::pair<std::uint32_t, std::uint64_t>> named_threads;
  for (const Event& e : events) {
    const std::uint32_t pid = tenant_pid_locked(e.tenant);
    char buf[64];
    if (named_threads.insert({pid, 0}).second) {
      emit("{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " +
           std::to_string(pid) + ", \"args\": {\"name\": \"tenant:" +
           json_escape(e.tenant) + "\"}}");
    }
    if (named_threads.insert({pid, e.job_id}).second) {
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(e.job_id));
      emit("{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " +
           std::to_string(pid) + ", \"tid\": " + buf +
           ", \"args\": {\"name\": \"" + json_escape(e.job_name) + "\"}}");
    }
  }

  for (const Event& e : events) {
    const std::uint32_t pid = tenant_pid_locked(e.tenant);
    char ts[64];
    std::snprintf(ts, sizeof(ts), "%.3f", e.start_s * 1e6);
    if (e.instant) {
      emit("{\"ph\": \"i\", \"pid\": " + std::to_string(pid) +
           ", \"tid\": " + std::to_string(e.job_id) + ", \"ts\": " + ts +
           ", \"name\": \"" + json_escape(e.label) + "\", \"s\": \"t\"}");
    } else {
      char dur[64];
      std::snprintf(dur, sizeof(dur), "%.3f", e.dur_s * 1e6);
      emit("{\"ph\": \"X\", \"pid\": " + std::to_string(pid) +
           ", \"tid\": " + std::to_string(e.job_id) + ", \"ts\": " + ts +
           ", \"dur\": " + dur + ", \"name\": \"" + json_escape(e.label) +
           "\", \"cat\": \"" + json_escape(e.phase) + "\"}");
    }
  }
  os << "\n]\n}\n";
  return os.str();
}

void JobTraceRecorder::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  NU_CHECK(out.good(), "cannot open job-trace output file '" + path + "'");
  out << to_json();
  NU_CHECK(out.good(), "failed writing job trace to '" + path + "'");
}

}  // namespace northup::svc
