#include "northup/svc/admission.hpp"

#include <algorithm>

#include "northup/util/assert.hpp"

namespace northup::svc {

AdmissionController::AdmissionController(core::Runtime& machine)
    : machine_(machine) {
  const auto& tree = machine_.tree();
  topo::NodeId node = tree.root();
  chain_.push_back(node);
  while (!tree.is_leaf(node)) {
    node = tree.get_children_list(node)[0];
    chain_.push_back(node);
  }
  for (const topo::NodeId n : chain_) {
    NU_CHECK(machine_.pool_at(n) != nullptr,
             "admission control needs the machine runtime's buffer pools "
             "(enable_shard_cache)");
  }
  refresh_gauges_locked();
}

std::uint64_t AdmissionController::footprint_at(const JobFootprint& fp,
                                                std::size_t level) const {
  if (level == 0) return fp.root_bytes;
  if (level + 1 == chain_.size() && chain_.size() > 2) return fp.device_bytes;
  return fp.staging_bytes;
}

std::uint64_t AdmissionController::level_capacity(std::size_t level) const {
  return machine_.pool_at(chain_[level])->capacity();
}

std::uint64_t AdmissionController::reserved_bytes(std::size_t level) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return machine_.pool_at(chain_[level])->pinned_bytes();
}

double AdmissionController::reserved_fraction() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double fraction = 0.0;
  for (const topo::NodeId node : chain_) {
    const cache::BufferPool& pool = *machine_.pool_at(node);
    if (pool.capacity() == 0) continue;
    fraction = std::max(fraction, static_cast<double>(pool.pinned_bytes()) /
                                      static_cast<double>(pool.capacity()));
  }
  return fraction;
}

std::string AdmissionController::impossible_reason(
    const JobFootprint& floor) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t level = 0; level < chain_.size(); ++level) {
    const cache::BufferPool& pool = *machine_.pool_at(chain_[level]);
    const std::uint64_t need = footprint_at(floor, level);
    if (need > pool.capacity()) {
      const std::uint64_t remaining = pool.capacity() - pool.pinned_bytes();
      return "job needs " + std::to_string(need) + " B on node '" +
             machine_.tree().node(chain_[level]).name +
             "' but its capacity is " + std::to_string(pool.capacity()) +
             " B (" + std::to_string(remaining) +
             " B currently unreserved); it can never be admitted";
    }
  }
  return "";
}

bool AdmissionController::try_reserve(const JobFootprint& preferred,
                                      const JobFootprint& floor,
                                      JobFootprint& granted) {
  std::lock_guard<std::mutex> lock(mutex_);
  JobFootprint grant;
  for (std::size_t level = 0; level < chain_.size(); ++level) {
    const cache::BufferPool& pool = *machine_.pool_at(chain_[level]);
    const std::uint64_t free = pool.capacity() - pool.pinned_bytes();
    const std::uint64_t want = footprint_at(preferred, level);
    const std::uint64_t need = footprint_at(floor, level);
    const std::uint64_t grant_bytes = std::min(want, free);
    if (grant_bytes < need) return false;
    if (level == 0) {
      grant.root_bytes = grant_bytes;
    } else if (level + 1 == chain_.size() && chain_.size() > 2) {
      grant.device_bytes = grant_bytes;
    } else {
      // Chains deeper than three levels share one staging figure; keep
      // the most constrained grant so every middle node can honor it.
      grant.staging_bytes = grant.staging_bytes
                                ? std::min(grant.staging_bytes, grant_bytes)
                                : grant_bytes;
    }
  }
  for (std::size_t level = 0; level < chain_.size(); ++level) {
    machine_.pool_at(chain_[level])->pin(footprint_at(grant, level));
  }
  granted = grant;
  refresh_gauges_locked();
  return true;
}

void AdmissionController::release(const JobFootprint& granted) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t level = 0; level < chain_.size(); ++level) {
    machine_.pool_at(chain_[level])->unpin(footprint_at(granted, level));
  }
  refresh_gauges_locked();
}

void AdmissionController::refresh_gauges_locked() {
  auto& metrics = machine_.metrics();
  for (const topo::NodeId node : chain_) {
    metrics.gauge("svc.reserved." + machine_.tree().node(node).name)
        .set(static_cast<double>(machine_.pool_at(node)->pinned_bytes()));
  }
}

}  // namespace northup::svc
