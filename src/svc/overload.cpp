#include "northup/svc/overload.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "northup/util/assert.hpp"

namespace northup::svc {

// --------------------------------------------------------------- TokenBucket

TokenBucket::TokenBucket(double rate_bytes_per_s, double burst_bytes,
                         Clock::time_point now)
    : rate_(rate_bytes_per_s),
      burst_(burst_bytes),
      tokens_(burst_bytes),  // buckets start full: an idle tenant may burst
      last_(now) {}

void TokenBucket::refill(Clock::time_point now) {
  if (now <= last_) return;
  const double elapsed = std::chrono::duration<double>(now - last_).count();
  tokens_ = std::min(burst_, tokens_ + rate_ * elapsed);
  last_ = now;
}

double TokenBucket::available(Clock::time_point now) {
  refill(now);
  return tokens_;
}

bool TokenBucket::try_charge(double cost_bytes, Clock::time_point now) {
  if (rate_ <= 0.0) return true;  // unlimited
  refill(now);
  if (tokens_ < cost_bytes) return false;
  tokens_ -= cost_bytes;
  return true;
}

// ------------------------------------------------------- OverloadController

OverloadController::OverloadController(OverloadOptions options,
                                       obs::MetricsRegistry* metrics)
    : options_(std::move(options)), metrics_(metrics) {
  NU_CHECK(options_.feasibility_margin > 0.0,
           "feasibility_margin must be positive");
  if (metrics_ != nullptr && options_.enable) {
    metrics_->gauge("svc.brownout").set(0.0);
  }
}

TenantLimit OverloadController::limit_for(const std::string& tenant) const {
  TenantLimit limit{options_.default_rate_bytes_per_s,
                    options_.default_burst_bytes};
  const auto it = options_.tenant_limits.find(tenant);
  if (it != options_.tenant_limits.end()) {
    if (it->second.rate_bytes_per_s != 0.0) {
      limit.rate_bytes_per_s = it->second.rate_bytes_per_s;
    }
    if (it->second.burst_bytes != 0.0) {
      limit.burst_bytes = it->second.burst_bytes;
    }
  }
  return limit;
}

bool OverloadController::try_charge(const std::string& tenant,
                                    double cost_bytes,
                                    Clock::time_point now) {
  if (!options_.enable) return true;
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    const TenantLimit limit = limit_for(tenant);
    it = buckets_
             .emplace(tenant, TokenBucket(limit.rate_bytes_per_s,
                                          limit.burst_bytes, now))
             .first;
  }
  const bool ok = it->second.try_charge(cost_bytes, now);
  if (metrics_ != nullptr) {
    if (ok) {
      metrics_->counter("svc.ratelimit.charged_bytes")
          .add(static_cast<std::uint64_t>(std::max(0.0, cost_bytes)));
    } else {
      metrics_->counter("svc.ratelimit.rejected." + tenant).increment();
    }
  }
  return ok;
}

void OverloadController::set_level(BrownoutLevel level,
                                   Clock::time_point now) {
  if (level == level_) return;
  level_ = level;
  level_since_ = now;
  if (metrics_ != nullptr) {
    metrics_->gauge("svc.brownout").set(static_cast<double>(level_));
    metrics_->counter("svc.brownout.transitions").increment();
  }
}

void OverloadController::update(Clock::time_point now, double oldest_wait_s,
                                double reserved_fraction) {
  if (!options_.enable) return;

  const double target = options_.target_queue_delay_s;
  const double watermark = options_.reserved_pressure_watermark;
  double pressure = 0.0;
  if (target > 0.0) pressure = oldest_wait_s / target;
  if (watermark > 0.0) {
    pressure = std::max(pressure, reserved_fraction / watermark);
  }
  pressure_ = pressure;
  if (metrics_ != nullptr) {
    metrics_->gauge("svc.queue.oldest_wait").set(oldest_wait_s);
  }

  // CoDel arming: the sojourn must stay above target for a full interval
  // before the first shed; dipping below target disarms and resets the
  // control law.
  if (target > 0.0) {
    if (oldest_wait_s < target) {
      first_above_.reset();
      shedding_ = false;
      shed_count_ = 0;
    } else if (!first_above_) {
      first_above_ = now + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   options_.shed_interval_s));
    }
  }

  // Ladder target from instantaneous pressure. Steps up are immediate;
  // steps down wait out the dwell and descend one level at a time so a
  // noisy signal cannot flap grants.
  int target_level = 0;
  if (pressure >= 1.0) {
    target_level = 3;
  } else if (pressure >= 0.75) {
    target_level = 2;
  } else if (pressure >= 0.5) {
    target_level = 1;
  }
  if (!options_.enable_brownout && target_level < 3) {
    target_level = 0;  // no degraded grades, only normal vs shedding
  }
  const int current = static_cast<int>(level_);
  if (target_level > current) {
    set_level(static_cast<BrownoutLevel>(target_level), now);
  } else if (target_level < current &&
             now - level_since_ >=
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(options_.brownout_hold_s))) {
    set_level(static_cast<BrownoutLevel>(current - 1), now);
  }
}

bool OverloadController::take_shed(Clock::time_point now) {
  if (!options_.enable || options_.target_queue_delay_s <= 0.0) return false;
  if (!first_above_ || now < *first_above_) return false;
  if (!shedding_) {
    shedding_ = true;
    shed_count_ = 0;
    next_shed_ = now;  // first shed fires as soon as the interval elapsed
  }
  if (now < next_shed_) return false;
  ++shed_count_;
  // The CoDel control law: persistent pressure sheds at an accelerating
  // cadence, interval / sqrt(drop count).
  next_shed_ =
      now + std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(
                    options_.shed_interval_s /
                    std::sqrt(static_cast<double>(shed_count_))));
  return true;
}

void OverloadController::note_shed() {
  if (metrics_ != nullptr) metrics_->counter("svc.shed.jobs").increment();
}

double OverloadController::grant_scale() const {
  switch (level_) {
    case BrownoutLevel::kNormal: return 1.0;
    case BrownoutLevel::kShrunkGrants: return 0.5;
    case BrownoutLevel::kFloorGrants:
    case BrownoutLevel::kShedding: return 0.0;
  }
  return 1.0;
}

bool OverloadController::checksums_disabled() const {
  return options_.enable && options_.enable_brownout &&
         static_cast<int>(level_) >= static_cast<int>(
                                         BrownoutLevel::kFloorGrants);
}

void OverloadController::observe_queue_wait(double seconds) {
  constexpr double kAlpha = 0.2;  // ~5-sample memory
  queue_delay_ewma_ = queue_delay_ewma_ == 0.0
                          ? seconds
                          : (1.0 - kAlpha) * queue_delay_ewma_ +
                                kAlpha * seconds;
}

}  // namespace northup::svc
