#include "northup/analyze/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "northup/util/assert.hpp"

namespace northup::analyze {

namespace {

constexpr double kNsPerS = 1e9;

/// Span tree reconstructed from kSpanBegin/kSpanEnd events.
struct SpanInfo {
  obs::SpanId id = obs::kNoSpan;
  obs::SpanId parent = obs::kNoSpan;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  bool closed = false;
  std::uint32_t name = 0;
  std::uint32_t phase = 0;
  std::uint32_t node = obs::kNoNode;
  std::uint32_t tid = 0;
  std::vector<std::size_t> child_spans;   ///< indices into SpanForest::spans
  std::vector<std::size_t> child_events;  ///< indices into run.events
};

struct SpanForest {
  std::vector<SpanInfo> spans;
  std::unordered_map<obs::SpanId, std::size_t> index;
  std::vector<std::size_t> roots;        ///< spans with no (known) parent
  std::vector<std::size_t> root_events;  ///< duration events outside spans
  std::uint64_t t_min = 0;
  std::uint64_t t_max = 0;
};

/// True for event kinds that represent measured work time on the
/// critical path. kIo is excluded: each kIo mirrors a slice of its kMove,
/// so counting both would double-charge the path.
bool is_duration_kind(obs::EventKind kind) {
  return kind == obs::EventKind::kMove || kind == obs::EventKind::kCompute;
}

SpanForest build_forest(const obs::RecordedRun& run) {
  SpanForest f;
  if (run.events.empty()) return f;
  f.t_min = run.events.front().ts_ns;
  f.t_max = f.t_min;
  for (const obs::Event& e : run.events) {
    f.t_min = std::min(f.t_min, e.ts_ns);
    f.t_max = std::max(f.t_max, e.ts_ns + e.dur_ns);
  }
  for (const obs::Event& e : run.events) {
    if (e.kind != obs::EventKind::kSpanBegin) continue;
    SpanInfo s;
    s.id = e.span;
    s.parent = e.parent;
    s.begin_ns = e.ts_ns;
    s.end_ns = f.t_max;  // patched by the matching kSpanEnd
    s.name = e.name;
    s.phase = e.phase;
    s.node = e.node;
    s.tid = e.tid;
    f.index.emplace(s.id, f.spans.size());
    f.spans.push_back(s);
  }
  for (std::size_t i = 0; i < run.events.size(); ++i) {
    const obs::Event& e = run.events[i];
    if (e.kind == obs::EventKind::kSpanEnd) {
      if (auto it = f.index.find(e.span); it != f.index.end()) {
        f.spans[it->second].end_ns = e.ts_ns;
        f.spans[it->second].closed = true;
      }
      continue;
    }
    if (e.kind == obs::EventKind::kSpanBegin || !is_duration_kind(e.kind) ||
        e.dur_ns == 0) {
      continue;
    }
    if (auto it = f.index.find(e.span); it != f.index.end()) {
      f.spans[it->second].child_events.push_back(i);
    } else {
      f.root_events.push_back(i);
    }
  }
  for (std::size_t i = 0; i < f.spans.size(); ++i) {
    const SpanInfo& s = f.spans[i];
    auto it = f.index.find(s.parent);
    if (s.parent != obs::kNoSpan && it != f.index.end()) {
      f.spans[it->second].child_spans.push_back(i);
    } else {
      f.roots.push_back(i);
    }
  }
  return f;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds with sub-ns kept (Chrome traces are microsecond-based).
std::string fmt_us(std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ns) / 1000.0);
  return buf;
}

std::string fmt_g(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

Summary summarize(const obs::RecordedRun& run) {
  Summary s;
  s.events = run.events.size();
  s.dropped = run.dropped;
  s.thread_count = run.thread_count;
  std::uint64_t t_min = 0;
  std::uint64_t t_max = 0;
  bool first = true;
  for (const obs::Event& e : run.events) {
    switch (e.kind) {
      case obs::EventKind::kSpanBegin: ++s.spans; break;
      case obs::EventKind::kSpanEnd: break;
      case obs::EventKind::kMove:
        ++s.moves;
        s.bytes_moved += e.value;
        break;
      case obs::EventKind::kIo: ++s.ios; break;
      case obs::EventKind::kCompute: ++s.computes; break;
      case obs::EventKind::kCacheHit: ++s.cache_hits; break;
      case obs::EventKind::kCacheMiss: ++s.cache_misses; break;
      case obs::EventKind::kRetry: ++s.retries; break;
      case obs::EventKind::kBreaker: ++s.breaker_transitions; break;
      case obs::EventKind::kAlloc: ++s.allocs; break;
      case obs::EventKind::kInstant: break;
    }
    if (first) {
      t_min = e.ts_ns;
      t_max = e.ts_ns + e.dur_ns;
      first = false;
    } else {
      t_min = std::min(t_min, e.ts_ns);
      t_max = std::max(t_max, e.ts_ns + e.dur_ns);
    }
  }
  s.wall_seconds = static_cast<double>(t_max - t_min) / kNsPerS;
  return s;
}

ValidationReport validate(const obs::RecordedRun& run) {
  ValidationReport r;
  std::unordered_map<obs::SpanId, bool> spans;  // id -> closed
  for (const obs::Event& e : run.events) {
    if (e.kind == obs::EventKind::kSpanBegin) spans.emplace(e.span, false);
  }
  constexpr std::size_t kMaxProblems = 32;
  auto problem = [&](std::string text) {
    if (r.problems.size() < kMaxProblems) r.problems.push_back(std::move(text));
  };
  for (const obs::Event& e : run.events) {
    switch (e.kind) {
      case obs::EventKind::kSpanBegin:
        if (e.parent != obs::kNoSpan && spans.find(e.parent) == spans.end()) {
          ++r.orphan_parents;
          problem("span " + std::to_string(e.span) + " ('" +
                  run.name_of(e.name) + "') has unknown parent " +
                  std::to_string(e.parent));
        }
        break;
      case obs::EventKind::kSpanEnd:
        if (auto it = spans.find(e.span); it != spans.end()) {
          it->second = true;
        } else {
          ++r.orphan_events;
          problem("span end for unknown span " + std::to_string(e.span));
        }
        break;
      default:
        if (e.span != obs::kNoSpan && spans.find(e.span) == spans.end()) {
          ++r.orphan_events;
          problem("event '" + run.name_of(e.name) +
                  "' owned by unknown span " + std::to_string(e.span));
        }
        break;
    }
  }
  for (const auto& [id, closed] : spans) {
    if (!closed) {
      ++r.unclosed_spans;
      problem("span " + std::to_string(id) + " never closed");
    }
  }
  r.ok = r.orphan_parents == 0 && r.orphan_events == 0 &&
         r.unclosed_spans == 0;
  return r;
}

namespace {

/// The backward greedy walk shared by every span level: cover
/// [begin, end] with the latest-finishing children, attributing gaps to
/// `own` (the enclosing span). Times in ns so the cover is exact.
struct PathBuilder {
  const obs::RecordedRun& run;
  const SpanForest& f;
  std::vector<PathSegment> segments;          // built back-to-front
  std::map<std::string, std::uint64_t> phase_ns;

  void emit(std::uint64_t b, std::uint64_t e, const std::string& name,
            const std::string& phase, std::uint32_t node) {
    if (e <= b) return;
    PathSegment seg;
    seg.begin_s = static_cast<double>(b - f.t_min) / kNsPerS;
    seg.end_s = static_cast<double>(e - f.t_min) / kNsPerS;
    seg.name = name;
    seg.phase = phase;
    seg.node = node;
    segments.push_back(std::move(seg));
    phase_ns[phase] += e - b;
  }

  /// One candidate child interval of the current window.
  struct Child {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    bool is_span = false;
    std::size_t index = 0;  ///< span index or event index
  };

  void walk(std::uint64_t begin, std::uint64_t end,
            const std::vector<std::size_t>& child_spans,
            const std::vector<std::size_t>& child_events,
            const std::string& own_name, const std::string& own_phase,
            std::uint32_t own_node) {
    std::vector<Child> kids;
    kids.reserve(child_spans.size() + child_events.size());
    for (std::size_t si : child_spans) {
      const SpanInfo& s = f.spans[si];
      kids.push_back({s.begin_ns, s.end_ns, true, si});
    }
    for (std::size_t ei : child_events) {
      const obs::Event& e = run.events[ei];
      kids.push_back({e.ts_ns, e.ts_ns + e.dur_ns, false, ei});
    }
    std::uint64_t cursor = end;
    while (cursor > begin) {
      const Child* best = nullptr;
      for (const Child& c : kids) {
        if (c.begin >= cursor) continue;  // entirely after the cursor
        if (best == nullptr || c.end > best->end ||
            (c.end == best->end && c.begin > best->begin)) {
          best = &c;
        }
      }
      if (best == nullptr) {
        emit(begin, cursor, own_name, own_phase, own_node);
        return;
      }
      const std::uint64_t c_end = std::min(best->end, cursor);
      const std::uint64_t c_begin = std::max(best->begin, begin);
      // Gap after the child ends: the enclosing span's own time.
      emit(c_end, cursor, own_name, own_phase, own_node);
      if (best->is_span) {
        const SpanInfo& s = f.spans[best->index];
        walk(c_begin, c_end, s.child_spans, s.child_events,
             run.name_of(s.name), run.name_of(s.phase), s.node);
      } else {
        const obs::Event& e = run.events[best->index];
        emit(c_begin, c_end, run.name_of(e.name), run.name_of(e.phase),
             e.node != obs::kNoNode ? e.node : e.node2);
      }
      cursor = c_begin;
    }
  }
};

}  // namespace

CriticalPath measured_critical_path(const obs::RecordedRun& run) {
  CriticalPath cp;
  const SpanForest f = build_forest(run);
  if (run.events.empty() || f.t_max <= f.t_min) return cp;
  PathBuilder builder{run, f, {}, {}};
  std::vector<std::size_t> root_spans = f.roots;
  builder.walk(f.t_min, f.t_max, root_spans, f.root_events, "(idle)", "idle",
               obs::kNoNode);
  std::reverse(builder.segments.begin(), builder.segments.end());
  cp.segments = std::move(builder.segments);
  cp.length_s = static_cast<double>(f.t_max - f.t_min) / kNsPerS;
  for (const auto& [phase, ns] : builder.phase_ns) {
    cp.phase_seconds[phase] = static_cast<double>(ns) / kNsPerS;
  }
  return cp;
}

std::string chrome_trace_json(const obs::RecordedRun& run) {
  const SpanForest f = build_forest(run);
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    os << (first ? "  " : ",\n  ") << line;
    first = false;
  };

  // Metadata: pid 1 = span tree by recording thread, pid 2 = memory nodes.
  emit("{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
       "\"args\": {\"name\": \"measured spans\"}}");
  emit("{\"ph\": \"M\", \"pid\": 2, \"name\": \"process_name\", "
       "\"args\": {\"name\": \"memory nodes\"}}");
  std::uint32_t max_tid = 0;
  for (const SpanInfo& s : f.spans) max_tid = std::max(max_tid, s.tid);
  for (std::uint32_t t = 0; t <= max_tid && !f.spans.empty(); ++t) {
    emit("{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(t) +
         ", \"name\": \"thread_name\", \"args\": {\"name\": \"thread " +
         std::to_string(t) + "\"}}");
  }
  for (const auto& [node, name] : run.node_names) {
    emit("{\"ph\": \"M\", \"pid\": 2, \"tid\": " + std::to_string(node) +
         ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
         json_escape(name) + "\"}}");
  }

  // Span tree with flow arrows along parent links.
  for (const SpanInfo& s : f.spans) {
    emit("{\"ph\": \"X\", \"pid\": 1, \"tid\": " + std::to_string(s.tid) +
         ", \"ts\": " + fmt_us(s.begin_ns - f.t_min) +
         ", \"dur\": " + fmt_us(s.end_ns - s.begin_ns) + ", \"name\": \"" +
         json_escape(run.name_of(s.name)) + "\", \"cat\": \"" +
         json_escape(run.name_of(s.phase)) + "\", \"args\": {\"span\": " +
         std::to_string(s.id) + ", \"parent\": " + std::to_string(s.parent) +
         "}}");
    auto pit = f.index.find(s.parent);
    if (s.parent == obs::kNoSpan || pit == f.index.end()) continue;
    const SpanInfo& p = f.spans[pit->second];
    const std::string id = std::to_string(s.id);
    emit("{\"ph\": \"s\", \"pid\": 1, \"tid\": " + std::to_string(p.tid) +
         ", \"ts\": " + fmt_us(s.begin_ns - f.t_min) +
         ", \"id\": " + id + ", \"name\": \"span\", \"cat\": \"span\"}");
    emit("{\"ph\": \"f\", \"bp\": \"e\", \"pid\": 1, \"tid\": " +
         std::to_string(s.tid) + ", \"ts\": " + fmt_us(s.begin_ns - f.t_min) +
         ", \"id\": " + id + ", \"name\": \"span\", \"cat\": \"span\"}");
  }

  // Node activity: moves as X slices, the rest as instants.
  for (const obs::Event& e : run.events) {
    const std::uint32_t node = e.node != obs::kNoNode ? e.node : e.node2;
    if (node == obs::kNoNode) continue;
    const std::string tid = std::to_string(node);
    const std::string ts = fmt_us(e.ts_ns - f.t_min);
    switch (e.kind) {
      case obs::EventKind::kMove:
        emit("{\"ph\": \"X\", \"pid\": 2, \"tid\": " + tid +
             ", \"ts\": " + ts + ", \"dur\": " + fmt_us(e.dur_ns) +
             ", \"name\": \"" + json_escape(run.name_of(e.name)) +
             "\", \"cat\": \"" + json_escape(run.name_of(e.phase)) +
             "\", \"args\": {\"bytes\": " + std::to_string(e.value) + "}}");
        break;
      case obs::EventKind::kCacheHit:
      case obs::EventKind::kCacheMiss:
      case obs::EventKind::kRetry:
      case obs::EventKind::kBreaker:
      case obs::EventKind::kInstant:
        emit("{\"ph\": \"i\", \"pid\": 2, \"tid\": " + tid +
             ", \"ts\": " + ts + ", \"s\": \"t\", \"name\": \"" +
             json_escape(run.name_of(e.name)) + "\"}");
        break;
      default:
        break;
    }
  }

  // Windowed per-node counter tracks: incoming bandwidth + busy fraction.
  constexpr std::uint64_t kBucketCount = 100;
  const std::uint64_t window = f.t_max > f.t_min ? f.t_max - f.t_min : 0;
  const std::uint64_t bucket_ns =
      window > 0 ? std::max<std::uint64_t>(1, window / kBucketCount) : 0;
  if (bucket_ns > 0) {
    struct NodeBuckets {
      std::vector<std::uint64_t> bytes;
      std::vector<std::uint64_t> busy_ns;
    };
    std::map<std::uint32_t, NodeBuckets> per_node;
    const std::size_t n_buckets =
        static_cast<std::size_t>(window / bucket_ns) + 1;
    for (const obs::Event& e : run.events) {
      if (e.kind != obs::EventKind::kMove) continue;
      const std::uint32_t node = e.node2 != obs::kNoNode ? e.node2 : e.node;
      if (node == obs::kNoNode) continue;
      NodeBuckets& nb = per_node[node];
      if (nb.bytes.empty()) {
        nb.bytes.assign(n_buckets, 0);
        nb.busy_ns.assign(n_buckets, 0);
      }
      // Spread bytes and busy time across the buckets the move overlaps.
      const std::uint64_t b0 = (e.ts_ns - f.t_min) / bucket_ns;
      const std::uint64_t b1 = (e.ts_ns + e.dur_ns - f.t_min) / bucket_ns;
      for (std::uint64_t b = b0; b <= b1 && b < n_buckets; ++b) {
        const std::uint64_t lo = std::max(e.ts_ns - f.t_min, b * bucket_ns);
        const std::uint64_t hi =
            std::min(e.ts_ns + e.dur_ns - f.t_min, (b + 1) * bucket_ns);
        const std::uint64_t overlap = hi > lo ? hi - lo : 0;
        nb.busy_ns[b] += overlap;
        if (e.dur_ns > 0) {
          nb.bytes[b] += static_cast<std::uint64_t>(
              static_cast<double>(e.value) * static_cast<double>(overlap) /
              static_cast<double>(e.dur_ns));
        } else if (b == b0) {
          nb.bytes[b] += e.value;
        }
      }
    }
    for (const auto& [node, nb] : per_node) {
      const std::string name = run.node_name(node);
      for (std::size_t b = 0; b < nb.bytes.size(); ++b) {
        const double secs = static_cast<double>(bucket_ns) / kNsPerS;
        const double mbps =
            static_cast<double>(nb.bytes[b]) / secs / (1024.0 * 1024.0);
        const double occ = std::min(
            1.0, static_cast<double>(nb.busy_ns[b]) /
                     static_cast<double>(bucket_ns));
        emit("{\"ph\": \"C\", \"pid\": 2, \"ts\": " +
             fmt_us(b * bucket_ns) + ", \"name\": \"bw " +
             json_escape(name) + "\", \"args\": {\"MB_per_s\": " +
             fmt_g(mbps) + "}}");
        emit("{\"ph\": \"C\", \"pid\": 2, \"ts\": " +
             fmt_us(b * bucket_ns) + ", \"name\": \"occupancy " +
             json_escape(name) + "\", \"args\": {\"busy\": " + fmt_g(occ) +
             "}}");
      }
    }
  }

  os << "\n]}\n";
  return os.str();
}

void write_chrome_trace(const obs::RecordedRun& run,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    throw util::Error("cannot open trace output file '" + path + "'");
  }
  out << chrome_trace_json(run);
  out.flush();
  if (!out.good()) {
    throw util::Error("failed writing trace to '" + path + "'");
  }
}

std::vector<mem::IoRecord> io_records(const obs::RecordedRun& run) {
  std::vector<mem::IoRecord> records;
  for (const obs::Event& e : run.events) {
    if (e.kind != obs::EventKind::kIo) continue;
    records.push_back({e.aux == 1, e.value});
  }
  return records;
}

double measured_io_seconds(const obs::RecordedRun& run) {
  std::uint64_t total_ns = 0;
  for (const obs::Event& e : run.events) {
    if (e.kind == obs::EventKind::kIo) total_ns += e.dur_ns;
  }
  return static_cast<double>(total_ns) / kNsPerS;
}

sim::BandwidthModel identity_model(const obs::RecordedRun& run) {
  std::uint64_t read_bytes = 0;
  std::uint64_t read_ns = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t write_ns = 0;
  for (const obs::Event& e : run.events) {
    if (e.kind != obs::EventKind::kIo) continue;
    if (e.aux == 1) {
      write_bytes += e.value;
      write_ns += e.dur_ns;
    } else {
      read_bytes += e.value;
      read_ns += e.dur_ns;
    }
  }
  // bytes / (effective bandwidth) replays to exactly the measured wall
  // time per class. Degenerate cases (no traffic, or traffic too fast to
  // measure) pick a bandwidth that keeps the replay at ~zero cost.
  auto effective = [](std::uint64_t bytes, std::uint64_t ns) {
    if (ns == 0) return bytes > 0 ? 1e18 : 1.0;
    return static_cast<double>(bytes) /
           (static_cast<double>(ns) / kNsPerS);
  };
  sim::BandwidthModel model;
  model.read_bytes_per_s = std::max(effective(read_bytes, read_ns), 1e-12);
  model.write_bytes_per_s = std::max(effective(write_bytes, write_ns), 1e-12);
  model.access_latency_s = 0.0;
  return model;
}

WhatIf whatif_storage(const obs::RecordedRun& run) {
  WhatIf w;
  const std::vector<mem::IoRecord> trace = io_records(run);
  w.measured_io_s = measured_io_seconds(run);
  // Concurrent I/O on several threads can sum past the wall window, and
  // project_storage requires total >= io; the serialized lower bound is
  // the honest baseline then.
  w.measured_total_s = std::max(summarize(run).wall_seconds, w.measured_io_s);
  w.identity = mem::project_storage(trace, identity_model(run),
                                    w.measured_io_s, w.measured_total_s,
                                    "identity");
  const auto models = mem::fig9_storage_sweep();
  const auto labels = mem::fig9_storage_labels();
  for (std::size_t i = 0; i < models.size(); ++i) {
    w.sweep.push_back(mem::project_storage(
        trace, models[i], w.measured_io_s, w.measured_total_s,
        i < labels.size() ? labels[i] : "sweep" + std::to_string(i)));
  }
  return w;
}

std::string report(const obs::RecordedRun& run) {
  std::ostringstream os;
  const Summary s = summarize(run);
  os << "recorded run: " << s.events << " events, " << s.spans << " spans, "
     << s.thread_count << " thread(s), " << fmt_g(s.wall_seconds)
     << " s wall, " << s.dropped << " dropped\n";
  os << "  moves " << s.moves << " (" << s.bytes_moved << " B), io " << s.ios
     << ", compute " << s.computes << ", cache " << s.cache_hits << "/"
     << s.cache_misses << " hit/miss, retries " << s.retries
     << ", breaker transitions " << s.breaker_transitions << ", allocs "
     << s.allocs << "\n";

  const ValidationReport v = validate(run);
  os << "validation: " << (v.ok ? "ok" : "PROBLEMS") << " ("
     << v.orphan_parents << " orphan parents, " << v.orphan_events
     << " orphan events, " << v.unclosed_spans << " unclosed spans)\n";
  for (const std::string& p : v.problems) os << "  ! " << p << "\n";

  const CriticalPath cp = measured_critical_path(run);
  os << "critical path: " << fmt_g(cp.length_s) << " s over "
     << cp.segments.size() << " segment(s)\n";
  for (const auto& [phase, secs] : cp.phase_seconds) {
    os << "  " << phase << ": " << fmt_g(secs) << " s ("
       << fmt_g(cp.length_s > 0 ? 100.0 * secs / cp.length_s : 0.0)
       << "%)\n";
  }

  const WhatIf w = whatif_storage(run);
  os << "what-if storage re-cost (measured io " << fmt_g(w.measured_io_s)
     << " s of " << fmt_g(w.measured_total_s) << " s total):\n";
  os << "  identity: io " << fmt_g(w.identity.io_time) << " s, overall "
     << fmt_g(w.identity.overall_time) << " s\n";
  for (const auto& p : w.sweep) {
    os << "  " << p.label << " MB/s: io " << fmt_g(p.io_time)
       << " s, overall " << fmt_g(p.overall_time) << " s\n";
  }
  return os.str();
}

double EdgeMoveStats::fitted_bytes_per_s() const {
  const double n = static_cast<double>(samples);
  const double det = n * sum_xx - sum_x * sum_x;
  if (samples >= 2 && det > 0.0) {
    const double slope = (n * sum_xy - sum_x * sum_y) / det;
    if (slope > 0.0) return 1.0 / slope;
  }
  // Degenerate fit (single sample, identical sizes, or a non-positive
  // slope from timer noise): fall back to the aggregate ratio.
  if (seconds > 0.0) return static_cast<double>(bytes) / seconds;
  return bytes > 0 ? 1e18 : 0.0;
}

double EdgeMoveStats::fitted_latency_s() const {
  const double n = static_cast<double>(samples);
  const double det = n * sum_xx - sum_x * sum_x;
  if (samples >= 2 && det > 0.0) {
    const double slope = (n * sum_xy - sum_x * sum_y) / det;
    if (slope > 0.0) {
      const double intercept = (sum_y - slope * sum_x) / n;
      return std::max(intercept, 0.0);
    }
  }
  return 0.0;
}

std::vector<EdgeMoveStats> edge_move_stats(const obs::RecordedRun& run) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, EdgeMoveStats> by_edge;
  for (const obs::Event& e : run.events) {
    if (e.kind != obs::EventKind::kMove) continue;
    const std::uint32_t src = e.node;
    const std::uint32_t dst = e.node2;
    EdgeMoveStats& s = by_edge[{src, dst}];
    if (s.samples == 0) {
      s.src = src;
      s.dst = dst;
      s.src_name = run.node_name(src);
      s.dst_name = run.node_name(dst);
    }
    const double x = static_cast<double>(e.value);
    const double y = static_cast<double>(e.dur_ns) / kNsPerS;
    s.samples += 1;
    s.bytes += e.value;
    s.seconds += y;
    s.sum_x += x;
    s.sum_y += y;
    s.sum_xx += x * x;
    s.sum_xy += x * y;
  }
  std::vector<EdgeMoveStats> out;
  out.reserve(by_edge.size());
  for (auto& [key, stats] : by_edge) out.push_back(std::move(stats));
  return out;
}

std::vector<ComputeStats> compute_stats(const obs::RecordedRun& run) {
  std::map<std::uint32_t, ComputeStats> by_node;
  for (const obs::Event& e : run.events) {
    if (e.kind != obs::EventKind::kCompute) continue;
    ComputeStats& s = by_node[e.node];
    if (s.launches == 0) {
      s.node = e.node;
      s.node_name = run.node_name(e.node);
    }
    s.launches += 1;
    s.groups += e.value;
    s.seconds += static_cast<double>(e.dur_ns) / kNsPerS;
  }
  std::vector<ComputeStats> out;
  out.reserve(by_node.size());
  for (auto& [node, stats] : by_node) out.push_back(std::move(stats));
  return out;
}

std::string summary_json(const obs::RecordedRun& run) {
  const Summary s = summarize(run);
  const CriticalPath cp = measured_critical_path(run);
  const std::vector<EdgeMoveStats> edges = edge_move_stats(run);
  const std::vector<ComputeStats> computes = compute_stats(run);

  // Per-node traffic: bytes/seconds into (as kMove destination) and out
  // of (as source) each tree node.
  struct NodeTraffic {
    std::uint64_t in_bytes = 0, out_bytes = 0;
    double in_seconds = 0.0, out_seconds = 0.0;
  };
  std::map<std::uint32_t, NodeTraffic> traffic;
  for (const EdgeMoveStats& e : edges) {
    if (e.src != obs::kNoNode) {
      traffic[e.src].out_bytes += e.bytes;
      traffic[e.src].out_seconds += e.seconds;
    }
    if (e.dst != obs::kNoNode) {
      traffic[e.dst].in_bytes += e.bytes;
      traffic[e.dst].in_seconds += e.seconds;
    }
  }

  std::uint64_t read_bytes = 0, write_bytes = 0;
  std::uint64_t read_ns = 0, write_ns = 0;
  for (const obs::Event& e : run.events) {
    if (e.kind != obs::EventKind::kIo) continue;
    (e.aux == 1 ? write_bytes : read_bytes) += e.value;
    (e.aux == 1 ? write_ns : read_ns) += e.dur_ns;
  }

  std::ostringstream os;
  os << "{\n  \"northup_summary\": 1,\n";
  os << "  \"wall_seconds\": " << fmt_g(s.wall_seconds) << ",\n";
  os << "  \"events\": " << s.events << ",\n  \"dropped\": " << s.dropped
     << ",\n  \"thread_count\": " << s.thread_count << ",\n";
  os << "  \"critical_path\": {\n    \"length_s\": " << fmt_g(cp.length_s)
     << ",\n    \"phases\": {";
  bool first = true;
  for (const auto& [phase, secs] : cp.phase_seconds) {
    os << (first ? "" : ",") << "\n      \"" << json_escape(phase)
       << "\": " << fmt_g(secs);
    first = false;
  }
  os << "\n    }\n  },\n  \"nodes\": [";
  first = true;
  for (const auto& [node, t] : traffic) {
    auto rate = [](std::uint64_t bytes, double secs) {
      return secs > 0.0 ? static_cast<double>(bytes) / secs : 0.0;
    };
    os << (first ? "" : ",") << "\n    {\"node\": " << node
       << ", \"name\": \"" << json_escape(run.node_name(node))
       << "\", \"in_bytes\": " << t.in_bytes
       << ", \"in_seconds\": " << fmt_g(t.in_seconds)
       << ", \"in_bytes_per_s\": " << fmt_g(rate(t.in_bytes, t.in_seconds))
       << ", \"out_bytes\": " << t.out_bytes
       << ", \"out_seconds\": " << fmt_g(t.out_seconds)
       << ", \"out_bytes_per_s\": " << fmt_g(rate(t.out_bytes, t.out_seconds))
       << "}";
    first = false;
  }
  os << "\n  ],\n  \"edges\": [";
  first = true;
  for (const EdgeMoveStats& e : edges) {
    os << (first ? "" : ",") << "\n    {\"src\": "
       << (e.src == obs::kNoNode ? -1 : static_cast<std::int64_t>(e.src))
       << ", \"dst\": "
       << (e.dst == obs::kNoNode ? -1 : static_cast<std::int64_t>(e.dst))
       << ", \"src_name\": \"" << json_escape(e.src_name)
       << "\", \"dst_name\": \"" << json_escape(e.dst_name)
       << "\", \"samples\": " << e.samples << ", \"bytes\": " << e.bytes
       << ", \"seconds\": " << fmt_g(e.seconds)
       << ", \"bytes_per_s\": " << fmt_g(e.fitted_bytes_per_s())
       << ", \"latency_s\": " << fmt_g(e.fitted_latency_s()) << "}";
    first = false;
  }
  os << "\n  ],\n  \"io\": {\"read_bytes\": " << read_bytes
     << ", \"read_seconds\": "
     << fmt_g(static_cast<double>(read_ns) / kNsPerS)
     << ", \"write_bytes\": " << write_bytes << ", \"write_seconds\": "
     << fmt_g(static_cast<double>(write_ns) / kNsPerS) << "},\n";
  os << "  \"computes\": [";
  first = true;
  for (const ComputeStats& c : computes) {
    os << (first ? "" : ",") << "\n    {\"node\": " << c.node
       << ", \"name\": \"" << json_escape(c.node_name)
       << "\", \"launches\": " << c.launches << ", \"groups\": " << c.groups
       << ", \"seconds\": " << fmt_g(c.seconds) << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
  return os.str();
}

void write_summary_json(const obs::RecordedRun& run,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    throw util::Error("cannot open summary output file '" + path + "'");
  }
  out << summary_json(run);
  out.flush();
  if (!out.good()) {
    throw util::Error("failed writing summary to '" + path + "'");
  }
}

}  // namespace northup::analyze
