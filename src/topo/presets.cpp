#include "northup/topo/presets.hpp"

namespace northup::topo {

namespace {

sim::BandwidthModel storage_model_for(mem::StorageKind kind,
                                      const PresetOptions& options) {
  if (options.storage_model.read_bytes_per_s > 0.0) {
    return options.storage_model;
  }
  switch (kind) {
    case mem::StorageKind::Ssd: return sim::ModelPresets::ssd();
    case mem::StorageKind::Hdd: return sim::ModelPresets::hdd();
    case mem::StorageKind::Nvm: return sim::ModelPresets::nvm();
    default: return sim::ModelPresets::dram();
  }
}

MemoryInfo file_root(mem::StorageKind kind, const PresetOptions& options) {
  NU_CHECK(mem::is_file_backed(kind),
           "root of the preset topologies must be file-backed");
  return MemoryInfo{kind, options.root_capacity,
                    storage_model_for(kind, options), 0};
}

MemoryInfo dram_node(std::uint64_t capacity) {
  return MemoryInfo{mem::StorageKind::Dram, capacity,
                    sim::ModelPresets::dram(), 1};
}

MemoryInfo device_node(std::uint64_t capacity) {
  // Device memory is reached over PCIe through the OpenCL copy path
  // (pageable host buffers), which bounds transfer cost in practice.
  return MemoryInfo{mem::StorageKind::DeviceMem, capacity,
                    sim::ModelPresets::pcie_opencl(), 2};
}

}  // namespace

ProcessorInfo preset_cpu(double flops_scale) {
  ProcessorInfo p;
  p.type = ProcessorType::Cpu;
  p.name = "a10-cpu";
  p.model = sim::ModelPresets::cpu();
  p.model.flops_per_s *= flops_scale;
  p.llc_bytes = 4ULL << 20;
  p.compute_units = 4;
  return p;
}

ProcessorInfo preset_apu_gpu(double flops_scale) {
  ProcessorInfo p;
  p.type = ProcessorType::Gpu;
  p.name = "apu-gpu";
  p.model = sim::ModelPresets::apu_gpu();
  p.model.flops_per_s *= flops_scale;
  p.llc_bytes = 512ULL << 10;
  p.compute_units = 8;
  p.local_mem_bytes = 32ULL << 10;
  return p;
}

ProcessorInfo preset_dgpu(double flops_scale) {
  ProcessorInfo p;
  p.type = ProcessorType::Gpu;
  p.name = "w9100";
  p.model = sim::ModelPresets::dgpu();
  p.model.flops_per_s *= flops_scale;
  p.llc_bytes = 1ULL << 20;
  p.compute_units = 44;
  p.local_mem_bytes = 32ULL << 10;
  return p;
}

TopoTree apu_two_level(mem::StorageKind file_kind,
                       const PresetOptions& options) {
  TopoTree tree;
  const NodeId root = tree.add_root("storage", file_root(file_kind, options));
  const NodeId dram =
      tree.add_child(root, "dram", dram_node(options.staging_capacity));
  tree.attach_processor(dram, preset_cpu(options.proc_flops_scale));
  tree.attach_processor(dram, preset_apu_gpu(options.proc_flops_scale));
  tree.validate();
  return tree;
}

TopoTree dgpu_three_level(mem::StorageKind file_kind,
                          const PresetOptions& options) {
  TopoTree tree;
  const NodeId root = tree.add_root("storage", file_root(file_kind, options));
  const NodeId dram =
      tree.add_child(root, "dram", dram_node(options.staging_capacity));
  // The CPU attaches to the non-leaf DRAM node in a discrete-GPU system.
  tree.attach_processor(dram, preset_cpu(options.proc_flops_scale));
  const NodeId dev =
      tree.add_child(dram, "gpu-mem", device_node(options.device_capacity));
  tree.attach_processor(dev, preset_dgpu(options.proc_flops_scale));
  tree.validate();
  return tree;
}

TopoTree nvm_root_two_level(const PresetOptions& options) {
  TopoTree tree;
  MemoryInfo nvm{mem::StorageKind::Nvm, options.root_capacity,
                 options.storage_model.read_bytes_per_s > 0.0
                     ? options.storage_model
                     : sim::ModelPresets::nvm(),
                 0};
  const NodeId root = tree.add_root("nvm", nvm);
  const NodeId dram =
      tree.add_child(root, "dram", dram_node(options.staging_capacity));
  tree.attach_processor(dram, preset_cpu(options.proc_flops_scale));
  tree.attach_processor(dram, preset_apu_gpu(options.proc_flops_scale));
  tree.validate();
  return tree;
}

TopoTree deep_four_level(const PresetOptions& options) {
  TopoTree tree;
  const NodeId root =
      tree.add_root("hdd", file_root(mem::StorageKind::Hdd, options));
  MemoryInfo nvm{mem::StorageKind::Nvm, options.root_capacity / 4,
                 sim::ModelPresets::nvm(), 1};
  const NodeId nvm_id = tree.add_child(root, "nvm", nvm);
  const NodeId dram =
      tree.add_child(nvm_id, "dram", dram_node(options.staging_capacity));
  tree.attach_processor(dram, preset_cpu(options.proc_flops_scale));
  const NodeId dev =
      tree.add_child(dram, "gpu-mem", device_node(options.device_capacity));
  tree.attach_processor(dev, preset_dgpu(options.proc_flops_scale));
  tree.validate();
  return tree;
}

TopoTree asymmetric_fig2() {
  // Fig 2's shape: the root has two children; the left subtree is one
  // level deep (a CPU leaf), the right subtree is two levels deep with two
  // heterogeneous leaves (a GPU and a CPU).
  TopoTree tree;
  constexpr std::uint64_t kCap = 64ULL << 20;
  MemoryInfo dram{mem::StorageKind::Dram, kCap, sim::ModelPresets::dram(), 0};
  const NodeId n0 = tree.add_root("n0", dram);
  const NodeId n1 = tree.add_child(n0, "n1", dram);
  const NodeId n2 = tree.add_child(n0, "n2", dram);
  tree.attach_processor(n1, preset_cpu());
  const NodeId n3 = tree.add_child(n2, "n3", dram);
  const NodeId n4 = tree.add_child(n2, "n4", dram);
  MemoryInfo dev{mem::StorageKind::DeviceMem, kCap,
                 sim::ModelPresets::pcie3_x16(), 1};
  const NodeId n5 = tree.add_child(n3, "n5", dev);
  tree.attach_processor(n5, preset_dgpu());
  tree.attach_processor(n4, preset_cpu());
  tree.validate();
  return tree;
}

}  // namespace northup::topo
