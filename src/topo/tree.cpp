#include "northup/topo/tree.hpp"

#include <algorithm>
#include <sstream>

#include "northup/util/bytes.hpp"

namespace northup::topo {

const char* to_string(ProcessorType type) {
  switch (type) {
    case ProcessorType::Cpu: return "cpu";
    case ProcessorType::Gpu: return "gpu";
    case ProcessorType::Fpga: return "fpga";
  }
  return "?";
}

NodeId TopoTree::add_root(std::string name, MemoryInfo memory) {
  NU_CHECK(nodes_.empty(), "tree already has a root");
  Node node;
  node.name = std::move(name);
  node.memory = memory;
  node.level = 0;
  nodes_.push_back(std::move(node));
  return 0;
}

NodeId TopoTree::add_child(NodeId parent, std::string name,
                           MemoryInfo memory) {
  const Node& p = checked(parent);
  Node node;
  node.name = std::move(name);
  node.memory = memory;
  node.parent = parent;
  node.level = p.level + 1;
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  return id;
}

void TopoTree::attach_processor(NodeId node, ProcessorInfo processor) {
  checked(node);
  nodes_[node].processors.push_back(std::move(processor));
}

const Node& TopoTree::checked(NodeId id) const {
  if (id >= nodes_.size()) {
    throw util::TopologyError("unknown node id " + std::to_string(id));
  }
  return nodes_[id];
}

NodeId TopoTree::root() const {
  NU_CHECK(!nodes_.empty(), "empty topology");
  return 0;
}

NodeId TopoTree::get_parent(NodeId node) const { return checked(node).parent; }

const std::vector<NodeId>& TopoTree::get_children_list(NodeId node) const {
  return checked(node).children;
}

int TopoTree::get_level(NodeId node) const { return checked(node).level; }

int TopoTree::get_max_treelevel() const {
  int max_level = 0;
  for (const auto& n : nodes_) max_level = std::max(max_level, n.level);
  return max_level;
}

bool TopoTree::is_leaf(NodeId node) const {
  return checked(node).children.empty();
}

mem::StorageKind TopoTree::fetch_node_type(NodeId node) const {
  return checked(node).memory.storage_type;
}

const Node& TopoTree::node(NodeId id) const { return checked(id); }

const MemoryInfo& TopoTree::memory(NodeId id) const {
  return checked(id).memory;
}

const std::vector<ProcessorInfo>& TopoTree::processors(NodeId id) const {
  return checked(id).processors;
}

NodeId TopoTree::find(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<NodeId>(i);
  }
  return kInvalidNode;
}

std::vector<NodeId> TopoTree::leaves() const {
  std::vector<NodeId> result;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].children.empty()) result.push_back(static_cast<NodeId>(i));
  }
  return result;
}

std::vector<NodeId> TopoTree::preorder() const {
  std::vector<NodeId> order;
  if (nodes_.empty()) return order;
  std::vector<NodeId> stack{root()};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    order.push_back(id);
    const auto& kids = nodes_[id].children;
    // Push in reverse so preorder visits children left-to-right.
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return order;
}

std::string TopoTree::dump() const {
  std::ostringstream os;
  for (NodeId id : preorder()) {
    const Node& n = nodes_[id];
    os << std::string(static_cast<std::size_t>(n.level) * 2, ' ');
    os << "[L" << n.level << " #" << id << "] " << n.name << " ("
       << mem::to_string(n.memory.storage_type) << ", "
       << util::format_bytes(n.memory.capacity) << ")";
    for (const auto& p : n.processors) {
      os << " +" << to_string(p.type) << ":" << p.name;
    }
    os << '\n';
  }
  return os.str();
}

void TopoTree::validate() const {
  if (nodes_.empty()) throw util::TopologyError("empty topology");
  std::size_t rootless = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.parent == kInvalidNode) {
      ++rootless;
      if (i != 0) throw util::TopologyError("non-first node lacks a parent");
      if (n.level != 0) throw util::TopologyError("root level must be 0");
    } else {
      if (n.parent >= nodes_.size()) {
        throw util::TopologyError("node '" + n.name + "' has invalid parent");
      }
      if (n.level != nodes_[n.parent].level + 1) {
        throw util::TopologyError("node '" + n.name +
                                  "' level inconsistent with parent");
      }
      const auto& siblings = nodes_[n.parent].children;
      if (std::count(siblings.begin(), siblings.end(),
                     static_cast<NodeId>(i)) != 1) {
        throw util::TopologyError("node '" + n.name +
                                  "' missing from parent's child list");
      }
    }
    if (n.memory.capacity == 0) {
      throw util::TopologyError("node '" + n.name + "' has zero capacity");
    }
    for (NodeId child : n.children) {
      if (child >= nodes_.size() || nodes_[child].parent != i) {
        throw util::TopologyError("node '" + n.name +
                                  "' has inconsistent child link");
      }
    }
  }
  if (rootless != 1) throw util::TopologyError("tree must have exactly one root");
  // Reachability: preorder from the root must visit every node.
  if (preorder().size() != nodes_.size()) {
    throw util::TopologyError("tree has unreachable nodes");
  }
}

}  // namespace northup::topo
