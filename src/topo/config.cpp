#include "northup/topo/config.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "northup/util/bytes.hpp"

namespace northup::topo {

namespace {

[[noreturn]] void parse_error(int line_no, const std::string& message) {
  throw util::TopologyError("topology config line " + std::to_string(line_no) +
                            ": " + message);
}

/// Splits "key=value" tokens after the directive and name.
std::map<std::string, std::string> parse_kv(
    const std::vector<std::string>& tokens, std::size_t first, int line_no) {
  std::map<std::string, std::string> kv;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= tokens[i].size()) {
      parse_error(line_no, "expected key=value, got '" + tokens[i] + "'");
    }
    kv[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
  }
  return kv;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;
    tokens.push_back(tok);
  }
  return tokens;
}

mem::StorageKind parse_kind(const std::string& text, int line_no) {
  if (text == "dram") return mem::StorageKind::Dram;
  if (text == "nvm") return mem::StorageKind::Nvm;
  if (text == "ssd") return mem::StorageKind::Ssd;
  if (text == "hdd") return mem::StorageKind::Hdd;
  if (text == "device") return mem::StorageKind::DeviceMem;
  if (text == "scratchpad") return mem::StorageKind::Scratchpad;
  parse_error(line_no, "unknown storage kind '" + text + "'");
}

ProcessorType parse_proc_type(const std::string& text, int line_no) {
  if (text == "cpu") return ProcessorType::Cpu;
  if (text == "gpu") return ProcessorType::Gpu;
  if (text == "fpga") return ProcessorType::Fpga;
  parse_error(line_no, "unknown processor type '" + text + "'");
}

sim::BandwidthModel default_model(mem::StorageKind kind) {
  switch (kind) {
    case mem::StorageKind::Ssd: return sim::ModelPresets::ssd();
    case mem::StorageKind::Hdd: return sim::ModelPresets::hdd();
    case mem::StorageKind::Nvm: return sim::ModelPresets::nvm();
    case mem::StorageKind::DeviceMem: return sim::ModelPresets::pcie3_x16();
    default: return sim::ModelPresets::dram();
  }
}

sim::RooflineModel default_proc_model(ProcessorType type) {
  return type == ProcessorType::Cpu ? sim::ModelPresets::cpu()
                                    : sim::ModelPresets::dgpu();
}

}  // namespace

TopoTree parse_config(std::string_view text) {
  TopoTree tree;
  std::istringstream stream{std::string(text)};
  std::string line;
  int line_no = 0;

  while (std::getline(stream, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;

    if (tokens[0] == "node") {
      if (tokens.size() < 2) parse_error(line_no, "node requires a name");
      const std::string& name = tokens[1];
      if (tree.find(name) != kInvalidNode) {
        parse_error(line_no, "duplicate node name '" + name + "'");
      }
      auto kv = parse_kv(tokens, 2, line_no);
      if (!kv.count("kind")) parse_error(line_no, "node requires kind=");
      if (!kv.count("cap")) parse_error(line_no, "node requires cap=");

      MemoryInfo info;
      info.storage_type = parse_kind(kv["kind"], line_no);
      info.capacity = util::parse_bytes(kv["cap"]);
      info.model = default_model(info.storage_type);
      if (kv.count("read")) {
        info.model.read_bytes_per_s =
            static_cast<double>(util::parse_bytes(kv["read"]));
      }
      if (kv.count("write")) {
        info.model.write_bytes_per_s =
            static_cast<double>(util::parse_bytes(kv["write"]));
      }
      if (kv.count("latency")) info.model.access_latency_s = std::stod(kv["latency"]);

      if (kv.count("parent")) {
        const NodeId parent = tree.find(kv["parent"]);
        if (parent == kInvalidNode) {
          parse_error(line_no, "unknown parent '" + kv["parent"] + "'");
        }
        tree.add_child(parent, name, info);
      } else {
        if (!tree.empty()) {
          parse_error(line_no,
                      "second root '" + name + "' (missing parent=?)");
        }
        tree.add_root(name, info);
      }
    } else if (tokens[0] == "proc") {
      if (tokens.size() < 2) parse_error(line_no, "proc requires a name");
      auto kv = parse_kv(tokens, 2, line_no);
      if (!kv.count("node")) parse_error(line_no, "proc requires node=");
      if (!kv.count("type")) parse_error(line_no, "proc requires type=");
      const NodeId node = tree.find(kv["node"]);
      if (node == kInvalidNode) {
        parse_error(line_no, "unknown node '" + kv["node"] + "'");
      }

      ProcessorInfo proc;
      proc.name = tokens[1];
      proc.type = parse_proc_type(kv["type"], line_no);
      proc.model = default_proc_model(proc.type);
      if (kv.count("gflops")) proc.model.flops_per_s = std::stod(kv["gflops"]) * 1e9;
      if (kv.count("membw")) {
        proc.model.mem_bytes_per_s =
            static_cast<double>(util::parse_bytes(kv["membw"]));
      }
      if (kv.count("cus")) proc.compute_units = std::stoi(kv["cus"]);
      if (kv.count("llc")) proc.llc_bytes = util::parse_bytes(kv["llc"]);
      if (kv.count("localmem")) proc.local_mem_bytes = util::parse_bytes(kv["localmem"]);
      tree.attach_processor(node, proc);
    } else {
      parse_error(line_no, "unknown directive '" + tokens[0] + "'");
    }
  }

  if (tree.empty()) throw util::TopologyError("topology config defines no nodes");
  tree.validate();
  return tree;
}

TopoTree load_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::TopologyError("cannot open topology file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_config(buffer.str());
}

std::string to_config(const TopoTree& tree) {
  std::ostringstream os;
  for (NodeId id : tree.preorder()) {
    const Node& n = tree.node(id);
    os << "node " << n.name;
    if (n.parent != kInvalidNode) {
      os << " parent=" << tree.node(n.parent).name;
    }
    os << " kind=" << mem::to_string(n.memory.storage_type);
    os << " cap=" << n.memory.capacity;
    char buf[96];
    std::snprintf(buf, sizeof(buf), " read=%.0f write=%.0f latency=%g",
                  n.memory.model.read_bytes_per_s,
                  n.memory.model.write_bytes_per_s,
                  n.memory.model.access_latency_s);
    os << buf << '\n';
    for (const auto& p : n.processors) {
      std::snprintf(buf, sizeof(buf),
                    " gflops=%.1f membw=%.0f cus=%d llc=%llu localmem=%llu",
                    p.model.flops_per_s / 1e9, p.model.mem_bytes_per_s,
                    p.compute_units,
                    static_cast<unsigned long long>(p.llc_bytes),
                    static_cast<unsigned long long>(p.local_mem_bytes));
      os << "proc " << p.name << " node=" << n.name
         << " type=" << to_string(p.type) << buf << '\n';
    }
  }
  return os.str();
}

}  // namespace northup::topo
