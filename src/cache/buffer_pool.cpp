#include "northup/cache/buffer_pool.hpp"

#include <utility>

#include "northup/util/assert.hpp"

namespace northup::cache {

BufferPool::BufferPool(data::DataManager& dm, topo::NodeId node)
    : dm_(dm), node_(node) {
  if (auto* reg = dm_.metrics()) {
    high_water_gauge_ =
        &reg->gauge("pool.high_water." + dm_.tree().node(node_).name);
    view_bytes_gauge_ =
        &reg->gauge("pool.view_bytes." + dm_.tree().node(node_).name);
  }
  note_usage();
}

bool BufferPool::make_room(std::uint64_t bytes) {
  const mem::Storage& st = std::as_const(dm_).storage(node_);
  while (st.available() < bytes) {
    if (!evict_one_ || !evict_one_()) return false;
  }
  return true;
}

data::Buffer BufferPool::alloc(std::uint64_t size) {
  data::Buffer buffer = dm_.alloc(size, node_);
  note_usage();
  return buffer;
}

void BufferPool::release(data::Buffer& buffer) {
  NU_CHECK(buffer.node == node_, "pool release of a foreign buffer");
  dm_.release(buffer);
}

void BufferPool::pin(std::uint64_t bytes) {
  pinned_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

void BufferPool::unpin(std::uint64_t bytes) {
  NU_CHECK(bytes <= pinned_bytes_.load(std::memory_order_relaxed),
           "pool unpin without matching pin");
  pinned_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

std::byte* BufferPool::pin_view(const data::Buffer& buffer) {
  NU_CHECK(buffer.node == node_, "pool view of a foreign buffer");
  std::byte* const view = dm_.host_view(buffer);  // throws when unmappable
  pin(buffer.size());
  const std::uint64_t live =
      view_bytes_.fetch_add(buffer.size(), std::memory_order_relaxed) +
      buffer.size();
  if (view_bytes_gauge_ != nullptr) {
    view_bytes_gauge_->set(static_cast<double>(live));
  }
  return view;
}

void BufferPool::unpin_view(const data::Buffer& buffer) {
  NU_CHECK(buffer.node == node_, "pool view unpin of a foreign buffer");
  NU_CHECK(buffer.size() <= view_bytes_.load(std::memory_order_relaxed),
           "pool unpin_view without matching pin_view");
  const std::uint64_t live =
      view_bytes_.fetch_sub(buffer.size(), std::memory_order_relaxed) -
      buffer.size();
  unpin(buffer.size());
  if (view_bytes_gauge_ != nullptr) {
    view_bytes_gauge_->set(static_cast<double>(live));
  }
}

std::uint64_t BufferPool::bytes_in_use() const {
  return std::as_const(dm_).storage(node_).used();
}

std::uint64_t BufferPool::capacity() const {
  return std::as_const(dm_).storage(node_).capacity();
}

void BufferPool::note_usage() {
  const std::uint64_t used = bytes_in_use();
  std::uint64_t seen = high_water_.load(std::memory_order_relaxed);
  while (used > seen &&
         !high_water_.compare_exchange_weak(seen, used,
                                            std::memory_order_relaxed)) {
  }
  if (high_water_gauge_ != nullptr) {
    high_water_gauge_->record_max(static_cast<double>(used));
  }
}

}  // namespace northup::cache
