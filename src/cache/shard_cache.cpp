#include "northup/cache/shard_cache.hpp"

#include <string>
#include <vector>

#include "northup/util/assert.hpp"

namespace northup::cache {

ShardCache::ShardCache(data::DataManager& dm, BufferPool& pool,
                       topo::NodeId node, double hit_time_s)
    : dm_(dm), pool_(pool), node_(node), hit_time_s_(hit_time_s) {
  NU_CHECK(pool.node() == node, "shard cache and pool disagree on the node");
  if (auto* reg = dm_.metrics()) {
    const std::string& name = dm_.tree().node(node_).name;
    hit_counter_ = &reg->counter("cache.hits." + name);
    miss_counter_ = &reg->counter("cache.misses." + name);
    eviction_counter_ = &reg->counter("cache.evictions." + name);
  }
}

ShardCache::~ShardCache() {
  // Teardown: drop everything, pinned or not, without writeback — the
  // owner flushes first when it wants dirty data persisted.
  while (!store_.empty()) {
    Entry* e = store_.begin()->second.get();
    if (e->pins > 0) {
      pool_.unpin(e->buf.size());
      e->pins = 0;
    }
    if (e->live) index_.erase(e->key);
    e->live = false;
    destroy(e);
  }
}

ShardKey ShardCache::normalize(const data::Buffer& src, std::uint64_t rows,
                               std::uint64_t row_bytes,
                               std::uint64_t src_offset,
                               std::uint64_t src_pitch) {
  if (rows <= 1 || src_pitch == row_bytes) {
    // Dense region: a 2-D request with touching rows is the same bytes as
    // a contiguous one, so both forms share a key.
    return ShardKey{src.id, src_offset, rows * row_bytes, 1, rows * row_bytes};
  }
  return ShardKey{src.id, src_offset, src_pitch, rows, row_bytes};
}

void ShardCache::charge_cache_task(const std::string& label, Entry& entry) {
  auto* sim = dm_.event_sim();
  if (sim == nullptr) return;
  std::vector<sim::TaskId> deps;
  if (entry.buf.ready != sim::kInvalidTask) deps.push_back(entry.buf.ready);
  entry.buf.ready =
      sim->add_task(label, data::phase::kCache, dm_.resource_for(node_),
                    hit_time_s_, std::move(deps));
}

data::Buffer* ShardCache::acquire(const data::Buffer& src, std::uint64_t rows,
                                  std::uint64_t row_bytes,
                                  std::uint64_t src_offset,
                                  std::uint64_t src_pitch) {
  NU_CHECK(src.valid() && src.id != 0,
           "cached download from an invalid or unidentified buffer");
  NU_CHECK(rows > 0 && row_bytes > 0, "cached download of zero bytes");
  const ShardKey key = normalize(src, rows, row_bytes, src_offset, src_pitch);
  ++clock_;

  if (auto it = index_.find(key); it != index_.end()) {
    Entry& e = *it->second;
    e.stamp = clock_;
    if (e.pins++ == 0) pool_.pin(e.buf.size());
    ++hits_;
    if (hit_counter_ != nullptr) hit_counter_->increment();
    if (auto* elog = dm_.event_log()) {
      elog->instant(obs::EventKind::kCacheHit,
                    elog->intern("cache hit@" + dm_.tree().node(node_).name),
                    node_, rows * row_bytes);
    }
    charge_cache_task("cache hit " + dm_.tree().node(src.node).name + "->" +
                          dm_.tree().node(node_).name,
                      e);
    return &e.buf;
  }

  // Miss: real download into a fresh pool allocation (which may evict LRU
  // entries of this very cache to make room).
  auto entry = std::make_unique<Entry>();
  entry->key = key;
  entry->src = src;
  entry->stamp = clock_;
  entry->pins = 1;
  entry->buf = pool_.alloc(key.rows * key.row_bytes);
  if (key.rows == 1) {
    dm_.move_data_down(entry->buf, src,
                       {.size = key.row_bytes, .src_offset = key.src_offset});
  } else {
    dm_.move_block_2d(entry->buf, src, key.rows, key.row_bytes, 0,
                      key.row_bytes, key.src_offset, key.src_pitch);
  }
  pool_.pin(entry->buf.size());
  ++misses_;
  if (miss_counter_ != nullptr) miss_counter_->increment();
  if (auto* elog = dm_.event_log()) {
    elog->instant(obs::EventKind::kCacheMiss,
                  elog->intern("cache miss@" + dm_.tree().node(node_).name),
                  node_, rows * row_bytes);
  }

  Entry* raw = entry.get();
  index_[key] = raw;
  store_[&raw->buf] = std::move(entry);
  return &raw->buf;
}

void ShardCache::release(data::Buffer* shard, bool dirty) {
  auto it = store_.find(shard);
  NU_CHECK(it != store_.end(), "release of a buffer this cache does not own");
  Entry& e = *it->second;
  NU_CHECK(e.pins > 0, "cache release without a matching acquire");
  if (dirty) e.dirty = true;
  if (--e.pins == 0) {
    pool_.unpin(e.buf.size());
    // A zombie (invalidated while pinned) frees on its last release; its
    // dirty bytes are discarded — the source was overwritten or is gone.
    if (!e.live) destroy(&e);
  }
}

bool ShardCache::owns(const data::Buffer* shard) const {
  return store_.count(shard) != 0;
}

bool ShardCache::evict_one() {
  Entry* victim = nullptr;
  for (auto& [key, e] : index_) {
    if (e->pins == 0 && (victim == nullptr || e->stamp < victim->stamp)) {
      victim = e;
    }
  }
  if (victim == nullptr) return false;
  index_.erase(victim->key);
  victim->live = false;
  if (victim->dirty) write_back(*victim);
  ++evictions_;
  if (eviction_counter_ != nullptr) eviction_counter_->increment();
  charge_cache_task("cache evict@" + dm_.tree().node(node_).name, *victim);
  destroy(victim);
  return true;
}

void ShardCache::write_back(Entry& entry) {
  // The snapshot handle still names a live allocation: entries sourced
  // from a released buffer are dropped by invalidate_source before this
  // could run.
  data::Buffer parent = entry.src;
  if (entry.key.rows == 1) {
    dm_.move_data_up(parent, entry.buf,
                     {.size = entry.key.row_bytes,
                      .dst_offset = entry.key.src_offset});
  } else {
    dm_.move_block_2d(parent, entry.buf, entry.key.rows, entry.key.row_bytes,
                      entry.key.src_offset, entry.key.src_pitch, 0,
                      entry.key.row_bytes);
  }
  entry.dirty = false;
}

void ShardCache::invalidate_overlap(std::uint64_t src_id, std::uint64_t offset,
                                    std::uint64_t size) {
  if (size == 0) return;
  std::vector<Entry*> victims;
  for (auto& [key, e] : index_) {
    if (key.src_id != src_id) continue;
    const std::uint64_t lo = key.src_offset;
    const std::uint64_t hi =
        key.src_offset + (key.rows - 1) * key.src_pitch + key.row_bytes;
    if (lo < offset + size && offset < hi) victims.push_back(e);
  }
  for (Entry* e : victims) drop(e);
}

void ShardCache::invalidate_source(std::uint64_t src_id) {
  std::vector<Entry*> victims;
  for (auto& [key, e] : index_) {
    if (key.src_id == src_id) victims.push_back(e);
  }
  for (Entry* e : victims) drop(e);
}

void ShardCache::flush() {
  // Fresh scan per round: a dirty writeback can invalidate siblings.
  for (;;) {
    Entry* next = nullptr;
    for (auto& [key, e] : index_) {
      if (e->pins == 0) {
        next = e;
        break;
      }
    }
    if (next == nullptr) return;
    index_.erase(next->key);
    next->live = false;
    if (next->dirty) write_back(*next);
    destroy(next);
  }
}

std::uint64_t ShardCache::cached_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [key, e] : index_) total += e->buf.size();
  return total;
}

std::uint64_t ShardCache::evictable_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [key, e] : index_) {
    if (e->pins == 0) total += e->buf.size();
  }
  return total;
}

void ShardCache::drop(Entry* entry) {
  if (entry->live) index_.erase(entry->key);
  entry->live = false;
  // Pinned entries stay as zombies until the last release; their stale
  // bytes remain readable through the already-handed-out pointer.
  if (entry->pins == 0) destroy(entry);
}

void ShardCache::destroy(Entry* entry) {
  NU_CHECK(entry->pins == 0, "destroying a pinned cache entry");
  const data::Buffer* handle = &entry->buf;
  if (entry->buf.valid()) pool_.release(entry->buf);
  store_.erase(handle);
}

}  // namespace northup::cache
