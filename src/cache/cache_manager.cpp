#include "northup/cache/cache_manager.hpp"

#include "northup/util/assert.hpp"

namespace northup::cache {

CacheManager::CacheManager(data::DataManager& dm, Options options)
    : dm_(dm), options_(options) {
  const topo::TopoTree& tree = dm_.tree();
  for (topo::NodeId id = 0; id < tree.node_count(); ++id) {
    auto pool = std::make_unique<BufferPool>(dm_, id);
    if (id != tree.root()) {
      // The root has no parent to cache from; it still gets a pool for
      // capacity accounting (its make_room has nothing to evict).
      auto cache = std::make_unique<ShardCache>(dm_, *pool, id,
                                                options_.hit_time_s);
      pool->set_evictor([c = cache.get()] { return c->evict_one(); });
      caches_[id] = std::move(cache);
    }
    pools_[id] = std::move(pool);
  }
  dm_.set_cache_backend(this);
}

CacheManager::~CacheManager() {
  // Write back dirty unpinned entries while the object is fully alive,
  // then detach: the remaining per-cache teardown (each ShardCache drops
  // its own buffers in its destructor) must not notify a half-destroyed
  // backend.
  flush();
  if (dm_.cache_backend() == this) dm_.set_cache_backend(nullptr);
}

BufferPool* CacheManager::pool(topo::NodeId node) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = pools_.find(node);
  return it != pools_.end() ? it->second.get() : nullptr;
}

ShardCache* CacheManager::shard_cache(topo::NodeId node) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = caches_.find(node);
  return it != caches_.end() ? it->second.get() : nullptr;
}

void CacheManager::flush() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Deepest caches first: a child's dirty writeback lands in its parent's
  // buffer before that buffer is itself dropped.
  for (auto it = caches_.rbegin(); it != caches_.rend(); ++it) {
    it->second->flush();
  }
}

bool CacheManager::manages(topo::NodeId node) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return pools_.count(node) != 0;
}

bool CacheManager::caches(topo::NodeId node) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return caches_.count(node) != 0;
}

bool CacheManager::make_room(topo::NodeId node, std::uint64_t bytes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = pools_.find(node);
  return it != pools_.end() && it->second->make_room(bytes);
}

std::uint64_t CacheManager::evictable_bytes(topo::NodeId node) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = caches_.find(node);
  return it != caches_.end() ? it->second->evictable_bytes() : 0;
}

data::Buffer* CacheManager::acquire(const data::Buffer& src,
                                    topo::NodeId child, std::uint64_t rows,
                                    std::uint64_t row_bytes,
                                    std::uint64_t src_offset,
                                    std::uint64_t src_pitch) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = caches_.find(child);
  NU_CHECK(it != caches_.end(), "no shard cache at the requested node");
  return it->second->acquire(src, rows, row_bytes, src_offset, src_pitch);
}

void CacheManager::release_shard(data::Buffer* shard, bool dirty) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  NU_CHECK(shard != nullptr && shard->valid(),
           "release of a null or invalid cached shard");
  auto it = caches_.find(shard->node);
  NU_CHECK(it != caches_.end() && it->second->owns(shard),
           "released shard is not owned by any cache");
  it->second->release(shard, dirty);
}

void CacheManager::on_written(const data::Buffer& dst, std::uint64_t offset,
                              std::uint64_t size) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Only caches on dst's children can hold shards sourced from it.
  for (const topo::NodeId child : dm_.tree().get_children_list(dst.node)) {
    if (auto* cache = shard_cache(child)) {
      cache->invalidate_overlap(dst.id, offset, size);
    }
  }
}

void CacheManager::on_released(const data::Buffer& buffer) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (const topo::NodeId child : dm_.tree().get_children_list(buffer.node)) {
    if (auto* cache = shard_cache(child)) {
      cache->invalidate_source(buffer.id);
    }
  }
}

void CacheManager::note_alloc(topo::NodeId node) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (auto* p = pool(node)) p->note_usage();
}

}  // namespace northup::cache
