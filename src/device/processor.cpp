#include "northup/device/processor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "northup/data/data_manager.hpp"

namespace northup::device {

const char* phase_for(topo::ProcessorType type) {
  switch (type) {
    case topo::ProcessorType::Cpu: return data::phase::kCpu;
    case topo::ProcessorType::Gpu: return data::phase::kGpu;
    case topo::ProcessorType::Fpga: return data::phase::kGpu;
  }
  return data::phase::kCpu;
}

Processor::Processor(topo::ProcessorInfo info, sim::EventSim* sim)
    : info_(std::move(info)), sim_(sim) {
  if (sim_ != nullptr) {
    resource_ = sim_->add_resource("proc:" + info_.name);
  }
  const std::uint64_t local_bytes =
      info_.local_mem_bytes > 0 ? info_.local_mem_bytes : 0;
  if (local_bytes > 0) {
    local_mem_ = util::AlignedBuffer(local_bytes, util::kCacheLineSize);
  }
}

double Processor::occupancy(std::uint32_t num_groups) const {
  NU_CHECK(num_groups > 0, "kernel launch with zero workgroups");
  const double full =
      2.0 * static_cast<double>(std::max(info_.compute_units, 1));
  const double ratio = static_cast<double>(num_groups) / full;
  return ratio >= 1.0 ? 1.0 : ratio;
}

double Processor::kernel_seconds(std::uint32_t num_groups,
                                 const KernelCost& cost) const {
  return info_.model.kernel_time(cost.flops, cost.bytes,
                                 occupancy(num_groups));
}

LaunchResult Processor::launch(const std::string& label,
                               std::uint32_t num_groups,
                               const KernelFn& kernel, const KernelCost& cost,
                               std::vector<sim::TaskId> deps) {
  NU_CHECK(num_groups > 0, "kernel launch with zero workgroups");
  // One kernel at a time per processor (the serial path shares the
  // local-memory arena, and real devices run one grid per queue anyway).
  std::lock_guard<std::mutex> launch_lock(launch_mu_);
  const std::uint64_t t0 = elog_ != nullptr ? elog_->now_ns() : 0;
  if (pool_ != nullptr && num_groups > 1) {
    // Parallel functional pass: every workgroup becomes a pool task with
    // its own local-memory arena (concurrent groups cannot share one, as
    // on hardware each resident group owns a scratchpad slice).
    const std::uint64_t local_bytes = local_mem_.size();
    std::atomic<std::uint32_t> remaining{num_groups};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    for (std::uint32_t g = 0; g < num_groups; ++g) {
      pool_->submit([&, g] {
        std::vector<std::byte> arena(local_bytes);
        WorkGroupCtx ctx;
        ctx.group_id = g;
        ctx.group_count = num_groups;
        ctx.local_mem = arena.data();
        ctx.local_mem_bytes = local_bytes;
        kernel(ctx);
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(done_mutex);
          done_cv.notify_all();
        }
      });
    }
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] {
      return remaining.load(std::memory_order_acquire) == 0;
    });
  } else {
    // Serial functional pass: one WorkGroupCtx per group, sharing the
    // local-memory arena (safe when groups run one at a time; local
    // memory is undefined at group start, as on hardware).
    for (std::uint32_t g = 0; g < num_groups; ++g) {
      WorkGroupCtx ctx;
      ctx.group_id = g;
      ctx.group_count = num_groups;
      ctx.local_mem = local_mem_.data();
      ctx.local_mem_bytes = local_mem_.size();
      kernel(ctx);
    }
  }
  if (elog_ != nullptr) {
    const std::uint64_t t1 = elog_->now_ns();
    obs::Event e;
    e.ts_ns = t0;
    e.dur_ns = t1 > t0 ? t1 - t0 : 0;
    e.kind = obs::EventKind::kCompute;
    e.name = elog_->intern(label);
    e.phase = elog_phase_;
    e.node = elog_node_;
    e.value = num_groups;
    e.span = elog_->current_span();
    elog_->record(e);
  }
  return launch_costed(label, num_groups, cost, std::move(deps));
}

LaunchResult Processor::launch_costed(const std::string& label,
                                      std::uint32_t num_groups,
                                      const KernelCost& cost,
                                      std::vector<sim::TaskId> deps) {
  launch_count_.fetch_add(1, std::memory_order_relaxed);
  LaunchResult result;
  result.sim_seconds = kernel_seconds(num_groups, cost);
  if (sim_ != nullptr) {
    result.task = sim_->add_task(label, phase_for(info_.type), resource_,
                                 result.sim_seconds, std::move(deps));
  }
  return result;
}

}  // namespace northup::device
