#include "northup/device/stream.hpp"

namespace northup::device {

Stream::Stream(Processor& processor, data::DataManager& dm, std::string name)
    : processor_(processor), dm_(dm), name_(std::move(name)) {}

std::vector<sim::TaskId> Stream::chain_deps(std::vector<sim::TaskId> extra) {
  if (last_ != sim::kInvalidTask) extra.push_back(last_);
  extra.insert(extra.end(), pending_waits_.begin(), pending_waits_.end());
  pending_waits_.clear();
  return extra;
}

void Stream::copy(data::Buffer& dst, const data::Buffer& src,
                  std::uint64_t size, std::uint64_t dst_offset,
                  std::uint64_t src_offset) {
  dm_.move_data(dst, src,
                {.size = size,
                 .dst_offset = dst_offset,
                 .src_offset = src_offset,
                 .deps = chain_deps({})});
  if (dst.ready != sim::kInvalidTask) last_ = dst.ready;
}

LaunchResult Stream::launch(const std::string& label,
                            std::uint32_t num_groups, const KernelFn& kernel,
                            const KernelCost& cost,
                            std::vector<sim::TaskId> input_ready) {
  auto result = processor_.launch(name_ + ":" + label, num_groups, kernel,
                                  cost, chain_deps(std::move(input_ready)));
  if (result.task != sim::kInvalidTask) last_ = result.task;
  return result;
}

void Stream::wait(sim::TaskId task) {
  if (task != sim::kInvalidTask) pending_waits_.push_back(task);
}

}  // namespace northup::device
