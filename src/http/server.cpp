#include "northup/http/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "northup/util/assert.hpp"
#include "northup/util/log.hpp"

namespace northup::http {

namespace {

const char* reason_phrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 302: return "Found";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < path.size()) {
    if (path[pos] == '/') {
      ++pos;
      continue;
    }
    std::size_t next = path.find('/', pos);
    if (next == std::string::npos) next = path.size();
    out.push_back(path.substr(pos, next - pos));
    pos = next;
  }
  return out;
}

/// Blocks until `fd` is readable, the peer hangs up, or `timeout_ms`
/// passes. Returns true when readable.
bool wait_readable(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0;
}

}  // namespace

std::string url_decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() &&
               std::isxdigit(static_cast<unsigned char>(s[i + 1])) != 0 &&
               std::isxdigit(static_cast<unsigned char>(s[i + 2])) != 0) {
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return c - 'A' + 10;
      };
      out += static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

// ---------------------------------------------------------- ResponseWriter

void ResponseWriter::set_header(const std::string& name,
                                const std::string& value) {
  headers_.emplace_back(name, value);
}

void ResponseWriter::reply(int code, const std::string& content_type,
                           std::string body) {
  set_status(code);
  set_header("Content-Type", content_type);
  write(std::move(body));
}

bool ResponseWriter::send_all(const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      peer_gone_ = true;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool ResponseWriter::begin_stream() {
  if (streaming_) return !peer_gone_;
  streaming_ = true;
  std::ostringstream os;
  os << "HTTP/1.1 " << status_ << ' ' << reason_phrase(status_) << "\r\n";
  bool have_type = false;
  for (const auto& [name, value] : headers_) {
    if (lower(name) == "content-type") have_type = true;
    os << name << ": " << value << "\r\n";
  }
  if (!have_type) os << "Content-Type: text/event-stream\r\n";
  os << "Cache-Control: no-cache\r\nConnection: close\r\n\r\n";
  const std::string head = os.str();
  return send_all(head.data(), head.size());
}

bool ResponseWriter::write_chunk(const std::string& data) {
  NU_CHECK(streaming_, "write_chunk() before begin_stream()");
  if (peer_gone_) return false;
  return send_all(data.data(), data.size());
}

// --------------------------------------------------------------- HttpServer

HttpServer::HttpServer(ServerOptions options, obs::MetricsRegistry* metrics)
    : options_(std::move(options)), metrics_(metrics) {
  NU_CHECK(options_.workers > 0, "HttpServer needs at least one worker");
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(const std::string& method, const std::string& pattern,
                        Handler handler) {
  NU_CHECK(!running(), "register routes before start()");
  Route route;
  route.method = method;
  route.segments = split_path(pattern);
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

void HttpServer::start() {
  NU_CHECK(!running(), "start() called twice");
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    throw util::Error(std::string("socket() failed: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd);
    throw util::Error("invalid bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd);
    throw util::Error("cannot listen on " + options_.bind_address + ":" +
                      std::to_string(options_.port) + ": " + why);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(listen_fd, std::memory_order_release);

  pool_ = std::make_unique<sched::WorkStealingPool>(options_.workers);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Closing the listener breaks the blocking accept().
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // In-flight connections see EOF immediately instead of waiting out
    // their poll timeout.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const int fd : conns_) ::shutdown(fd, SHUT_RDWR);
  }
  pool_.reset();  // drains and joins the connection workers
}

std::string HttpServer::url() const {
  return "http://" + options_.bind_address + ":" + std::to_string(port_);
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd =
        ::accept(listen_fd_.load(std::memory_order_acquire), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (stop) or fatal error
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::size_t open = 0;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.insert(fd);
      open = conns_.size();
    }
    if (metrics_ != nullptr) {
      metrics_->counter("http.connections").increment();
      metrics_->gauge("http.active_connections")
          .set(static_cast<double>(open));
    }
    pool_->submit([this, fd] { serve_connection(fd); });
  }
}

int HttpServer::read_request(int fd, Request& out) {
  std::string buf;
  std::size_t header_end = std::string::npos;
  while (true) {
    header_end = buf.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (buf.size() > options_.max_request_bytes) return 413;
    if (!wait_readable(fd, options_.idle_timeout_ms)) {
      return buf.empty() ? -1 : 408;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return -1;
    buf.append(chunk, static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP target SP HTTP/1.x
  const std::size_t line_end = buf.find("\r\n");
  {
    std::istringstream line(buf.substr(0, line_end));
    std::string version;
    if (!(line >> out.method >> out.target >> version) ||
        version.rfind("HTTP/1.", 0) != 0) {
      return 400;
    }
  }
  // Headers, keys lower-cased.
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = buf.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    const std::string line = buf.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string key = lower(line.substr(0, colon));
      std::size_t vstart = colon + 1;
      while (vstart < line.size() && line[vstart] == ' ') ++vstart;
      out.headers[key] = line.substr(vstart);
    }
    pos = eol + 2;
  }

  if (out.headers.count("transfer-encoding") > 0) return 501;
  std::size_t content_length = 0;
  if (auto it = out.headers.find("content-length"); it != out.headers.end()) {
    try {
      content_length = static_cast<std::size_t>(std::stoull(it->second));
    } catch (...) {
      return 400;
    }
  }
  if (content_length > options_.max_request_bytes) return 413;

  std::string body = buf.substr(header_end + 4);
  while (body.size() < content_length) {
    if (!wait_readable(fd, options_.idle_timeout_ms)) return 408;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return -1;
    body.append(chunk, static_cast<std::size_t>(n));
  }
  out.body = body.substr(0, content_length);

  // Split the target into decoded path + query pairs.
  const std::size_t qmark = out.target.find('?');
  out.path = url_decode(out.target.substr(0, qmark));
  if (qmark != std::string::npos) {
    const std::string qs = out.target.substr(qmark + 1);
    std::size_t qpos = 0;
    while (qpos < qs.size()) {
      std::size_t amp = qs.find('&', qpos);
      if (amp == std::string::npos) amp = qs.size();
      const std::string pair = qs.substr(qpos, amp - qpos);
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        out.query[url_decode(pair)] = "";
      } else {
        out.query[url_decode(pair.substr(0, eq))] =
            url_decode(pair.substr(eq + 1));
      }
      qpos = amp + 1;
    }
  }
  return 0;
}

const HttpServer::Route* HttpServer::match(
    const Request& request, bool& path_seen,
    std::map<std::string, std::string>& params) const {
  path_seen = false;
  // Split the RAW path and decode per segment: an encoded slash inside
  // a capture ("/jobs/a%2Fb") must not change the route shape.
  std::vector<std::string> segments =
      split_path(request.target.substr(0, request.target.find('?')));
  for (std::string& segment : segments) segment = url_decode(segment);
  for (const Route& route : routes_) {
    if (route.segments.size() != segments.size()) continue;
    std::map<std::string, std::string> captured;
    bool ok = true;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const std::string& pat = route.segments[i];
      if (pat.size() >= 2 && pat.front() == '{' && pat.back() == '}') {
        captured[pat.substr(1, pat.size() - 2)] = segments[i];
      } else if (pat != segments[i]) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    path_seen = true;
    if (route.method != request.method) continue;
    params = std::move(captured);
    return &route;
  }
  return nullptr;
}

void HttpServer::note_response(int status) {
  if (metrics_ == nullptr) return;
  metrics_->counter("http.requests").increment();
  metrics_->counter("http.responses." + std::to_string(status / 100) + "xx")
      .increment();
}

void HttpServer::finish_response(const Request& request,
                                 ResponseWriter& w) {
  std::ostringstream os;
  os << "HTTP/1.1 " << w.status_ << ' ' << reason_phrase(w.status_) << "\r\n";
  bool have_type = false;
  for (const auto& [name, value] : w.headers_) {
    if (lower(name) == "content-type") have_type = true;
    os << name << ": " << value << "\r\n";
  }
  if (!have_type && !w.body_.empty()) {
    os << "Content-Type: text/plain; charset=utf-8\r\n";
  }
  os << "Content-Length: " << w.body_.size() << "\r\n\r\n";
  std::string head = os.str();
  w.send_all(head.data(), head.size());
  if (request.method != "HEAD" && !w.body_.empty()) {
    w.send_all(w.body_.data(), w.body_.size());
  }
  if (metrics_ != nullptr) {
    metrics_->counter("http.bytes_out").add(head.size() + w.body_.size());
  }
}

void HttpServer::serve_connection(int fd) {
  for (int served = 0; served < options_.max_keepalive_requests; ++served) {
    if (stopping_.load(std::memory_order_acquire)) break;
    Request request;
    const int rc = read_request(fd, request);
    if (rc == -1) break;  // EOF / timeout with nothing buffered
    ResponseWriter w(fd);
    if (rc != 0) {
      w.reply(rc, "text/plain; charset=utf-8",
              std::string(reason_phrase(rc)) + "\n");
      note_response(rc);
      finish_response(request, w);
      break;  // framing may be lost; close
    }

    bool path_seen = false;
    std::map<std::string, std::string> params;
    const Route* route = match(request, path_seen, params);
    if (route == nullptr) {
      const int code = path_seen ? 405 : 404;
      w.reply(code, "text/plain; charset=utf-8",
              std::string(reason_phrase(code)) + "\n");
    } else {
      request.params = std::move(params);
      try {
        route->handler(request, w);
      } catch (const std::exception& e) {
        if (!w.streaming()) {
          ResponseWriter fresh(fd);
          fresh.reply(500, "text/plain; charset=utf-8",
                      std::string("internal error: ") + e.what() + "\n");
          w = fresh;
        }
        NU_LOG_WARN << "http: handler for " << request.path
                    << " threw: " << e.what();
      }
    }
    note_response(w.status());
    if (w.streaming()) break;  // Connection: close framing
    finish_response(request, w);
    if (w.peer_gone_) break;
    auto conn = request.headers.find("connection");
    if (conn != request.headers.end() && lower(conn->second) == "close") {
      break;
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(fd);
  if (metrics_ != nullptr) {
    metrics_->gauge("http.active_connections")
        .set(static_cast<double>(conns_.size()));
  }
}

}  // namespace northup::http
