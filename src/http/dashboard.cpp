// The embedded dashboard page: one self-contained HTML string (no
// external assets, so it works on an air-gapped box and never mixes
// versions with a CDN). It polls /healthz + /timeseries (+ /jobs for
// the table) and renders canvas sparklines over the MetricsSampler
// ring buffers — the last N minutes of queue wait, brownout level,
// pool high-water, and cache hit rate, exactly what an operator wants
// at a glance when deciding whether the service is browning out.
#include "northup/http/control_plane.hpp"

namespace northup::http {

const char* dashboard_html() {
  return R"html(<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>northup-serve</title>
<style>
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 1.2rem 1.6rem; background: #10141a; color: #dce4ee;
    font: 14px/1.45 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
  }
  h1 { font-size: 1.1rem; margin: 0 0 .2rem; font-weight: 600; }
  h1 .status { padding: .1rem .55rem; border-radius: .6rem; font-size: .85rem; }
  h1 .ok { background: #14432a; color: #6ee7a0; }
  h1 .degraded { background: #4a3210; color: #f3c969; }
  h1 .down { background: #4a1a1a; color: #f08080; }
  #meta { color: #8a96a6; margin-bottom: 1rem; }
  #meta a { color: #6ab0f3; }
  .grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(260px, 1fr));
          gap: .8rem; margin-bottom: 1.2rem; }
  .card { background: #1a212b; border: 1px solid #2a3442; border-radius: .5rem;
          padding: .6rem .8rem; }
  .card .label { color: #8a96a6; font-size: .8rem; }
  .card .value { font-size: 1.3rem; margin: .15rem 0 .3rem; }
  .card canvas { width: 100%; height: 46px; display: block; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: .28rem .6rem; border-bottom: 1px solid #2a3442; }
  th { color: #8a96a6; font-weight: 500; font-size: .8rem; }
  td.state-done { color: #6ee7a0; }
  td.state-running { color: #6ab0f3; }
  td.state-queued { color: #8a96a6; }
  td.state-failed, td.state-rejected, td.state-expired { color: #f08080; }
  td.state-cancelled { color: #f3c969; }
</style>
</head>
<body>
<h1>northup-serve <span id="status" class="status down">connecting…</span></h1>
<div id="meta">
  brownout <span id="brownout">?</span> · queue <span id="queue">?</span> ·
  running <span id="running">?</span> · active jobs <span id="active">?</span> ·
  tenants <span id="tenants">?</span> · policy <span id="policy">?</span> ·
  <a href="/trace" download>download Chrome trace</a> ·
  <a href="/metrics">raw metrics</a>
</div>
<div class="grid" id="cards"></div>
<h1>jobs</h1>
<table>
  <thead><tr><th>id</th><th>name</th><th>tenant</th><th>kind</th><th>state</th>
             <th>wait s</th><th>latency s</th><th>result hash</th></tr></thead>
  <tbody id="jobs"></tbody>
</table>
<script>
"use strict";
// Sparkline cards. `series` picks ring-buffer series from /timeseries by
// exact name or prefix; `derive` computes a synthetic series instead
// (used for the cache hit rate, a ratio of two cumulative counters).
const CARDS = [
  { label: "queue oldest wait (s)", series: "svc.queue.oldest_wait" },
  { label: "brownout level", series: "svc.brownout", max: 3 },
  { label: "queue depth", series: "svc.queue.depth" },
  { label: "active jobs", series: "svc.jobs.active" },
  { label: "pool high-water", prefix: "pool.high_water." },
  { label: "cache hit rate", derive: hitRate, max: 1 },
];

function hitRate(all) {
  // hits/(hits+misses) per sample over the summed cache.* counters
  // (cumulative; a flat line at 1 is a fully warm cache).
  const hits = sumSeries(all, "cache.hits.");
  const misses = sumSeries(all, "cache.misses.");
  return hits.map(([t, h], i) => {
    const m = misses[i] ? misses[i][1] : 0;
    return [t, h + m > 0 ? h / (h + m) : 0];
  });
}

function sumSeries(all, prefix) {
  const parts = Object.keys(all).filter(k => k.startsWith(prefix));
  if (!parts.length) return [];
  const base = all[parts[0]].map(([t]) => [t, 0]);
  for (const k of parts) {
    all[k].forEach(([, v], i) => { if (base[i]) base[i][1] += v; });
  }
  return base;
}

const cardsEl = document.getElementById("cards");
for (const card of CARDS) {
  const div = document.createElement("div");
  div.className = "card";
  div.innerHTML = '<div class="label"></div><div class="value">–</div><canvas></canvas>';
  div.querySelector(".label").textContent = card.label;
  cardsEl.appendChild(div);
  card.valueEl = div.querySelector(".value");
  card.canvas = div.querySelector("canvas");
}

function drawSpark(canvas, points, max) {
  const dpr = window.devicePixelRatio || 1;
  const w = canvas.clientWidth, h = canvas.clientHeight;
  canvas.width = w * dpr; canvas.height = h * dpr;
  const ctx = canvas.getContext("2d");
  ctx.scale(dpr, dpr);
  ctx.clearRect(0, 0, w, h);
  if (points.length < 2) return;
  const t0 = points[0][0], t1 = points[points.length - 1][0] || t0 + 1;
  const top = max !== undefined ? max : Math.max(...points.map(p => p[1]), 1e-9);
  ctx.beginPath();
  for (let i = 0; i < points.length; i++) {
    const x = ((points[i][0] - t0) / (t1 - t0 || 1)) * (w - 2) + 1;
    const y = h - 2 - Math.min(points[i][1] / top, 1) * (h - 4);
    i ? ctx.lineTo(x, y) : ctx.moveTo(x, y);
  }
  ctx.strokeStyle = "#6ab0f3"; ctx.lineWidth = 1.5; ctx.stroke();
  ctx.lineTo(w - 1, h - 1); ctx.lineTo(1, h - 1); ctx.closePath();
  ctx.fillStyle = "rgba(106,176,243,0.15)"; ctx.fill();
}

function fmt(v) {
  if (!isFinite(v)) return "–";
  if (Math.abs(v) >= 100 || v === Math.round(v)) return String(Math.round(v));
  return v.toFixed(Math.abs(v) < 1 ? 3 : 2);
}

async function pollSeries() {
  const r = await fetch("/timeseries"); const body = await r.json();
  const all = body.series || {};
  for (const card of CARDS) {
    let pts = [];
    if (card.derive) pts = card.derive(all);
    else if (card.prefix) pts = sumSeries(all, card.prefix);
    else pts = all[card.series] || [];
    drawSpark(card.canvas, pts, card.max);
    card.valueEl.textContent = pts.length ? fmt(pts[pts.length - 1][1]) : "–";
  }
}

async function pollHealth() {
  const statusEl = document.getElementById("status");
  try {
    const r = await fetch("/healthz"); const h = await r.json();
    statusEl.textContent = h.status;
    statusEl.className = "status " + (h.status === "ok" ? "ok" : "degraded");
    document.getElementById("brownout").textContent = h.brownout;
    document.getElementById("queue").textContent = h.queue_depth;
    document.getElementById("running").textContent = h.running;
    document.getElementById("active").textContent = h.jobs_active;
    document.getElementById("tenants").textContent = h.active_tenants;
    document.getElementById("policy").textContent = h.policy;
  } catch (e) {
    statusEl.textContent = "unreachable";
    statusEl.className = "status down";
  }
}

async function pollJobs() {
  const r = await fetch("/jobs"); const body = await r.json();
  const ids = (body.jobs || []).slice(-20).reverse();
  const rows = await Promise.all(ids.map(async id => {
    try { return await (await fetch("/jobs/" + id)).json(); }
    catch (e) { return null; }
  }));
  const tbody = document.getElementById("jobs");
  tbody.replaceChildren();
  for (const j of rows) {
    if (!j) continue;
    const tr = document.createElement("tr");
    const cells = [j.id, j.name, j.tenant, j.kind, j.state,
                   fmt(j.queue_wait_s), fmt(j.latency_s),
                   j.stats ? j.stats.result_hash : (j.reject || "")];
    for (let i = 0; i < cells.length; i++) {
      const td = document.createElement("td");
      td.textContent = cells[i];
      if (i === 4) td.className = "state-" + j.state;
      tr.appendChild(td);
    }
    tbody.appendChild(tr);
  }
}

async function tick() {
  try { await Promise.all([pollHealth(), pollSeries(), pollJobs()]); }
  catch (e) { /* transient; next tick retries */ }
}
tick();
setInterval(tick, 1000);
</script>
</body>
</html>
)html";
}

}  // namespace northup::http
