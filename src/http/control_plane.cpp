#include "northup/http/control_plane.hpp"

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "northup/svc/overload.hpp"
#include "northup/util/assert.hpp"

namespace northup::http {

namespace json = util::json;

namespace {

const char* brownout_name(svc::BrownoutLevel level) {
  switch (level) {
    case svc::BrownoutLevel::kNormal: return "normal";
    case svc::BrownoutLevel::kShrunkGrants: return "shrunk_grants";
    case svc::BrownoutLevel::kFloorGrants: return "floor_grants";
    case svc::BrownoutLevel::kShedding: return "shedding";
  }
  return "unknown";
}

std::string hex_u64(std::uint64_t v) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Route-param job id. Returns false (and replies 400) on non-numeric.
bool parse_id(const Request& request, ResponseWriter& w, std::uint64_t& id) {
  const std::string& raw = request.params.at("id");
  id = 0;
  if (raw.empty() || raw.size() > 19) {
    w.reply(400, "application/json",
            "{\"error\": \"malformed job id: " + json::escape(raw) + "\"}\n");
    return false;
  }
  for (char c : raw) {
    if (c < '0' || c > '9') {
      w.reply(400, "application/json",
              "{\"error\": \"malformed job id: " + json::escape(raw) + "\"}\n");
      return false;
    }
    id = id * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

void reply_job_not_found(ResponseWriter& w, std::uint64_t id) {
  w.reply(404, "application/json",
          "{\"error\": \"no job with id " + std::to_string(id) +
              " (never issued, or aged out of the finished-job retention "
              "window)\"}\n");
}

algos::GemmConfig parse_gemm(const json::Value& config) {
  algos::GemmConfig c;
  c.n = config.u64("n", c.n);
  c.leaf_tile = config.u64("leaf_tile", c.leaf_tile);
  c.shard_reuse = config.boolean_or("shard_reuse", c.shard_reuse);
  c.capacity_safety = config.num("capacity_safety", c.capacity_safety);
  c.seed = config.u64("seed", c.seed);
  c.verify_samples = config.u64("verify_samples", c.verify_samples);
  // hash_result defaults ON over HTTP: the hash in the response is what
  // lets a client compare against an in-process run bit-for-bit.
  c.hash_result = config.boolean_or("hash_result", true);
  return c;
}

algos::HotspotConfig parse_hotspot(const json::Value& config) {
  algos::HotspotConfig c;
  c.n = config.u64("n", c.n);
  c.leaf_tile = config.u64("leaf_tile", c.leaf_tile);
  c.iterations = config.u64("iterations", c.iterations);
  c.capacity_safety = config.num("capacity_safety", c.capacity_safety);
  c.seed = config.u64("seed", c.seed);
  c.verify = config.boolean_or("verify", c.verify);
  c.hash_result = config.boolean_or("hash_result", true);
  c.device_traffic_factor =
      config.num("device_traffic_factor", c.device_traffic_factor);
  return c;
}

algos::SpmvConfig parse_spmv(const json::Value& config) {
  algos::SpmvConfig c;
  c.rows = static_cast<std::uint32_t>(config.u64("rows", c.rows));
  c.avg_nnz = static_cast<std::uint32_t>(config.u64("avg_nnz", c.avg_nnz));
  const std::string pattern = config.str("pattern", "uniform");
  if (pattern == "banded") {
    c.pattern = algos::SpmvConfig::Pattern::Banded;
  } else if (pattern == "uniform") {
    c.pattern = algos::SpmvConfig::Pattern::Uniform;
  } else if (pattern == "powerlaw") {
    c.pattern = algos::SpmvConfig::Pattern::PowerLaw;
  } else if (pattern == "dense_rows") {
    c.pattern = algos::SpmvConfig::Pattern::DenseRows;
  } else {
    throw util::Error("unknown spmv pattern '" + pattern +
                      "' (expected banded|uniform|powerlaw|dense_rows)");
  }
  c.seed = config.u64("seed", c.seed);
  c.nnz_per_workgroup = static_cast<std::uint32_t>(
      config.u64("nnz_per_workgroup", c.nnz_per_workgroup));
  c.capacity_safety = config.num("capacity_safety", c.capacity_safety);
  c.verify = config.boolean_or("verify", c.verify);
  c.hash_result = config.boolean_or("hash_result", true);
  c.device_traffic_factor =
      config.num("device_traffic_factor", c.device_traffic_factor);
  c.cpu_binning_factor =
      config.num("cpu_binning_factor", c.cpu_binning_factor);
  c.count_binning = config.boolean_or("count_binning", c.count_binning);
  c.repeats = static_cast<std::uint32_t>(config.u64("repeats", c.repeats));
  return c;
}

}  // namespace

ControlPlane::ControlPlane(svc::JobService& service,
                           obs::MetricsSampler* sampler,
                           ControlPlaneOptions options)
    : service_(service), sampler_(sampler), options_(options) {}

svc::JobRequest ControlPlane::parse_job_request(const json::Value& spec) {
  if (!spec.is_object()) {
    throw util::Error("job spec must be a JSON object");
  }
  const std::string kind = spec.str("kind");
  if (kind.empty()) {
    throw util::Error("job spec is missing the required \"kind\" field "
                      "(gemm|hotspot|spmv)");
  }

  svc::JobRequest request;
  const json::Value& config = spec.at("config");
  if (kind == "gemm") {
    request.config = parse_gemm(config);
  } else if (kind == "hotspot") {
    request.config = parse_hotspot(config);
  } else if (kind == "spmv") {
    request.config = parse_spmv(config);
  } else {
    throw util::Error("unknown job kind '" + kind +
                      "' (expected gemm|hotspot|spmv)");
  }

  request.name = spec.str("name");
  request.tenant = spec.str("tenant", request.tenant);
  if (request.name.size() > 128) {
    throw util::Error("job name exceeds 128 characters");
  }
  if (request.tenant.empty() || request.tenant.size() > 64) {
    throw util::Error("tenant must be 1..64 characters");
  }
  request.priority = static_cast<int>(spec.num("priority", 0.0));
  request.weight = spec.num("weight", request.weight);
  if (!(request.weight > 0.0)) {
    throw util::Error("weight must be > 0");
  }
  request.deadline_s = spec.num("deadline_s", 0.0);
  request.max_retries =
      static_cast<std::uint32_t>(spec.u64("max_retries", 0));

  if (spec.has("footprint")) {
    const json::Value& fp = spec.at("footprint");
    request.footprint.root_bytes = fp.u64("root_bytes", 0);
    request.footprint.staging_bytes = fp.u64("staging_bytes", 0);
    request.footprint.device_bytes = fp.u64("device_bytes", 0);
  }
  return request;
}

std::string ControlPlane::job_json(std::uint64_t id,
                                   const svc::JobHandle& handle) {
  const svc::JobResult r = handle.snapshot();
  const svc::JobRequest& request = handle.request();
  std::string out = "{";
  out += "\"id\": " + std::to_string(id);
  out += ", \"name\": \"" + json::escape(request.name) + "\"";
  out += ", \"tenant\": \"" + json::escape(request.tenant) + "\"";
  out += ", \"kind\": \"" + std::string(svc::kind_name(svc::kind_of(request))) +
         "\"";
  out += ", \"state\": \"" + std::string(svc::state_name(r.state)) + "\"";
  if (r.state == svc::JobState::Rejected) {
    out += ", \"reject\": \"" + std::string(svc::reason_name(r.reject)) + "\"";
  }
  if (!r.error.empty()) {
    out += ", \"error\": \"" + json::escape(r.error) + "\"";
  }
  out += ", \"queue_wait_s\": " + json::format_double(r.queue_wait_s);
  out += ", \"latency_s\": " + json::format_double(r.latency_s);
  out += ", \"attempts\": " + std::to_string(r.attempts);
  out += ", \"granted\": {\"root_bytes\": " +
         std::to_string(r.granted.root_bytes) +
         ", \"staging_bytes\": " + std::to_string(r.granted.staging_bytes) +
         ", \"device_bytes\": " + std::to_string(r.granted.device_bytes) + "}";
  if (r.state == svc::JobState::Done) {
    // result_hash as a hex *string*: JSON numbers are doubles and would
    // silently drop bits of a 64-bit hash.
    out += ", \"stats\": {\"makespan_s\": " + json::format_double(r.stats.makespan) +
           ", \"wall_seconds\": " + json::format_double(r.stats.wall_seconds) +
           ", \"bytes_moved\": " + std::to_string(r.stats.bytes_moved) +
           ", \"spawns\": " + std::to_string(r.stats.spawns) +
           ", \"verified\": " + (r.stats.verified ? "true" : "false") +
           ", \"max_rel_err\": " + json::format_double(r.stats.max_rel_err) +
           ", \"result_hash\": \"" + hex_u64(r.stats.result_hash) + "\"" +
           ", \"chunk_retries\": " + std::to_string(r.chunk_retries) +
           ", \"corruptions\": " + std::to_string(r.corruptions) + "}";
  }
  out += "}";
  return out;
}

std::string ControlPlane::healthz_json() const {
  obs::MetricsRegistry& metrics = service_.metrics();
  const svc::BrownoutLevel level = service_.overload().brownout_level();
  const bool overloaded = level != svc::BrownoutLevel::kNormal;

  std::string out = "{";
  out += std::string("\"status\": \"") + (overloaded ? "degraded" : "ok") +
         "\"";
  out += ", \"brownout_level\": " + std::to_string(static_cast<int>(level));
  out += std::string(", \"brownout\": \"") + brownout_name(level) + "\"";
  out += ", \"queue_depth\": " + std::to_string(service_.queue_depth());
  out += ", \"running\": " + std::to_string(service_.running_count());
  out += ", \"jobs_active\": " + std::to_string(service_.job_count());
  out += ", \"active_tenants\": " + std::to_string(service_.active_tenants());
  out += std::string(", \"policy\": \"") +
         svc::policy_name(service_.policy()) + "\"";

  // Circuit-breaker states, scraped from the resil gauges the per-job
  // runtimes fold into the machine registry (0 closed, 1 open, 2
  // half-open).
  out += ", \"breakers\": {";
  bool first = true;
  const std::string prefix = "resil.breaker_state.";
  for (const auto& [name, value] : metrics.gauge_values()) {
    if (name.rfind(prefix, 0) != 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "\"" + json::escape(name.substr(prefix.size())) +
           "\": " + json::format_double(value);
  }
  out += "}}";
  return out;
}

std::string ControlPlane::timeseries_json() const {
  std::string out = "{\"northup_serve\": 1";
  if (sampler_ == nullptr) {
    out += ", \"now_s\": 0, \"interval_ms\": 0, \"series\": {}}";
    return out;
  }
  out += ", \"now_s\": " + json::format_double(sampler_->now_seconds());
  out += ", \"interval_ms\": " +
         std::to_string(sampler_->interval().count());
  out += ", \"series\": {";
  bool first_series = true;
  for (const auto& [name, series] : sampler_->series()) {
    if (!first_series) out += ", ";
    first_series = false;
    out += "\"" + json::escape(name) + "\": [";
    bool first_sample = true;
    for (const auto& sample : series) {
      if (!first_sample) out += ", ";
      first_sample = false;
      out += "[" + json::format_double(sample.t_seconds) + ", " +
             json::format_double(sample.value) + "]";
    }
    out += "]";
  }
  out += "}}";
  return out;
}

void ControlPlane::mount(HttpServer& server) {
  server.handle("GET", "/metrics", [this](const Request&, ResponseWriter& w) {
    w.reply(200, "text/plain; version=0.0.4; charset=utf-8",
            service_.metrics().to_prometheus());
  });

  server.handle("GET", "/healthz", [this](const Request&, ResponseWriter& w) {
    w.reply(200, "application/json", healthz_json() + "\n");
  });

  server.handle("GET", "/timeseries",
                [this](const Request&, ResponseWriter& w) {
                  w.reply(200, "application/json", timeseries_json() + "\n");
                });

  server.handle("GET", "/trace", [this](const Request&, ResponseWriter& w) {
    w.set_header("Content-Disposition",
                 "attachment; filename=\"northup_jobs.trace.json\"");
    w.reply(200, "application/json", service_.job_trace().to_json());
  });

  server.handle("POST", "/jobs", [this](const Request& r, ResponseWriter& w) {
    handle_submit(r, w);
  });

  server.handle("GET", "/jobs", [this](const Request&, ResponseWriter& w) {
    std::string out = "{\"jobs\": [";
    bool first = true;
    for (std::uint64_t id : service_.job_ids()) {
      if (!first) out += ", ";
      first = false;
      out += std::to_string(id);
    }
    out += "]}\n";
    w.reply(200, "application/json", out);
  });

  server.handle("GET", "/jobs/{id}",
                [this](const Request& r, ResponseWriter& w) {
                  std::uint64_t id = 0;
                  if (!parse_id(r, w, id)) return;
                  svc::JobHandle handle = service_.find_job(id);
                  if (!handle.valid()) return reply_job_not_found(w, id);
                  w.reply(200, "application/json", job_json(id, handle) + "\n");
                });

  server.handle("DELETE", "/jobs/{id}",
                [this](const Request& r, ResponseWriter& w) {
                  std::uint64_t id = 0;
                  if (!parse_id(r, w, id)) return;
                  svc::JobHandle handle = service_.find_job(id);
                  if (!handle.valid()) return reply_job_not_found(w, id);
                  const bool cancelled = handle.cancel();
                  w.reply(200, "application/json",
                          "{\"id\": " + std::to_string(id) +
                              ", \"cancelled\": " +
                              (cancelled ? "true" : "false") +
                              ", \"state\": \"" +
                              svc::state_name(handle.state()) + "\"}\n");
                });

  server.handle("GET", "/jobs/{id}/events",
                [this](const Request& r, ResponseWriter& w) {
                  handle_job_events(r, w);
                });

  if (options_.enable_dashboard) {
    server.handle("GET", "/dashboard",
                  [](const Request&, ResponseWriter& w) {
                    w.reply(200, "text/html; charset=utf-8",
                            dashboard_html());
                  });
    server.handle("GET", "/", [](const Request&, ResponseWriter& w) {
      w.set_status(302);
      w.set_header("Location", "/dashboard");
      w.reply(302, "text/plain", "see /dashboard\n");
    });
  }
}

void ControlPlane::handle_submit(const Request& request, ResponseWriter& w) {
  json::Value body;
  try {
    body = json::parse(request.body, "POST /jobs");
  } catch (const util::Error& e) {
    w.reply(400, "application/json",
            "{\"error\": \"" + json::escape(e.what()) + "\"}\n");
    return;
  }

  // One object = one job; {"jobs": [...]} = a batch admitted under a
  // single service-lock pass (JobService::try_submit_batch).
  std::vector<svc::JobRequest> requests;
  const bool batch = body.has("jobs");
  try {
    if (batch) {
      const json::Value& jobs = body.at("jobs");
      if (!jobs.is_array() || jobs.array.empty()) {
        throw util::Error("\"jobs\" must be a non-empty array");
      }
      requests.reserve(jobs.array.size());
      for (const json::Value& spec : jobs.array) {
        requests.push_back(parse_job_request(spec));
      }
    } else {
      requests.push_back(parse_job_request(body));
    }
  } catch (const util::Error& e) {
    w.reply(400, "application/json",
            "{\"error\": \"" + json::escape(e.what()) + "\"}\n");
    return;
  }

  std::vector<svc::JobHandle> handles =
      batch ? service_.try_submit_batch(std::move(requests))
            : std::vector<svc::JobHandle>{
                  service_.try_submit(std::move(requests.front()))};

  // 200 even when individual jobs were rejected: the submission itself
  // succeeded and each entry carries its own typed state.
  std::string out = "{\"jobs\": [";
  for (std::size_t i = 0; i < handles.size(); ++i) {
    if (i > 0) out += ", ";
    out += job_json(handles[i].id(), handles[i]);
  }
  out += "]}\n";
  w.reply(200, "application/json", out);
}

void ControlPlane::handle_job_events(const Request& request,
                                     ResponseWriter& w) {
  std::uint64_t id = 0;
  if (!parse_id(request, w, id)) return;
  svc::JobHandle handle = service_.find_job(id);
  if (!handle.valid()) return reply_job_not_found(w, id);

  if (!w.begin_stream()) return;

  // Event grammar (docs/http.md): every state transition is
  //   event: state\ndata: {"id": N, "state": "..."}\n\n
  // and the terminal event is
  //   event: result\ndata: <full job JSON>\n\n
  // so a watcher of a rejected/cancelled job sees the typed reason.
  auto emit_state = [&](svc::JobState state) {
    return w.write_chunk("event: state\ndata: {\"id\": " + std::to_string(id) +
                         ", \"state\": \"" +
                         std::string(svc::state_name(state)) + "\"}\n\n");
  };

  svc::JobState last = handle.state();
  if (!emit_state(last)) return;

  const auto start = std::chrono::steady_clock::now();
  const auto budget = std::chrono::duration<double>(options_.sse_max_seconds);
  while (!handle.done()) {
    if (std::chrono::steady_clock::now() - start > budget) {
      w.write_chunk("event: timeout\ndata: {\"id\": " + std::to_string(id) +
                    "}\n\n");
      return;
    }
    const svc::JobState now = handle.wait_for_change(
        last, std::chrono::milliseconds(options_.sse_poll_ms));
    if (now != last) {
      last = now;
      if (!emit_state(last)) return;
    }
  }
  if (handle.state() != last && !emit_state(handle.state())) return;
  w.write_chunk("event: result\ndata: " + job_json(id, handle) + "\n\n");
}

}  // namespace northup::http
