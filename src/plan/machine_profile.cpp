#include "northup/plan/machine_profile.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "northup/util/assert.hpp"

namespace northup::plan {

namespace {

// --- JSON writing -----------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string fmt_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s(buf);
  // JSON has no inf/nan; clamp to 0 (a profile should never contain them).
  if (s.find("inf") != std::string::npos || s.find("nan") != std::string::npos)
    return "0";
  return s;
}

// --- JSON reading -----------------------------------------------------------
// The test-support minijson parser lives under tests/ and cannot be
// included from the library, so the profile carries its own minimal
// recursive-descent reader: objects, arrays, strings, numbers — the full
// subset to_json() emits.

struct Value {
  enum class Kind { Null, Number, String, Array, Object };
  Kind kind = Kind::Null;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool has(const std::string& key) const {
    return kind == Kind::Object && object.count(key) > 0;
  }
  double num(const std::string& key, double fallback = 0.0) const {
    auto it = object.find(key);
    return it != object.end() && it->second.kind == Kind::Number
               ? it->second.number
               : fallback;
  }
  std::string str(const std::string& key) const {
    auto it = object.find(key);
    return it != object.end() ? it->second.string : std::string();
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text, const std::string& origin)
      : text_(text), origin_(origin) {}

  Value parse() {
    Value v = value();
    ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw util::Error("malformed machine profile '" + origin_ + "': " + why +
                      " at byte " + std::to_string(pos_));
  }

  void ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }
  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value value() {
    ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.string = string();
        return v;
      }
      case 'n':
        if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
        pos_ += 4;
        return Value{};
      case 't':
        if (text_.compare(pos_, 4, "true") != 0) fail("bad literal");
        pos_ += 4;
        return Value{};
      case 'f':
        if (text_.compare(pos_, 5, "false") != 0) fail("bad literal");
        pos_ += 5;
        return Value{};
      default: return number();
    }
  }

  Value number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    Value v;
    v.kind = Value::Kind::Number;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'u':
            if (pos_ + 4 > text_.size()) fail("short \\u escape");
            pos_ += 4;
            out.push_back('?');
            break;
          default: out.push_back(esc);
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      ws();
      std::string key = string();
      ws();
      expect(':');
      v.object[std::move(key)] = value();
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& text_;
  const std::string& origin_;
  std::size_t pos_ = 0;
};

std::uint32_t as_node(const Value& obj, const std::string& key) {
  const double d = obj.num(key, static_cast<double>(kNoNode));
  return d < 0 ? kNoNode : static_cast<std::uint32_t>(d);
}

std::uint64_t as_u64(const Value& obj, const std::string& key) {
  const double d = obj.num(key, 0.0);
  return d < 0 ? 0 : static_cast<std::uint64_t>(d);
}

}  // namespace

const EdgeProfile* MachineProfile::find_edge(std::uint32_t src,
                                             std::uint32_t dst) const {
  for (const EdgeProfile& e : edges)
    if (e.src == src && e.dst == dst) return &e;
  return nullptr;
}

const ProcProfile* MachineProfile::find_proc(std::uint32_t node) const {
  // A node carrying several processors (the APU leaf) answers with the
  // fastest — matching algos::leaf_processor, which prefers the GPU.
  const ProcProfile* best = nullptr;
  for (const ProcProfile& p : procs) {
    if (p.node != node) continue;
    if (best == nullptr || p.flops_per_s > best->flops_per_s) best = &p;
  }
  return best;
}

const NodeProfile* MachineProfile::find_node(std::uint32_t node) const {
  for (const NodeProfile& n : nodes)
    if (n.node == node) return &n;
  return nullptr;
}

std::string MachineProfile::to_json() const {
  std::ostringstream os;
  os << "{\n  \"northup_machine_profile\": 1,\n  \"nodes\": [";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeProfile& n = nodes[i];
    os << (i ? "," : "") << "\n    {\"node\": " << n.node << ", \"name\": \""
       << json_escape(n.name) << "\", \"kind\": \"" << json_escape(n.kind)
       << "\", \"read_bytes_per_s\": " << fmt_num(n.read_bytes_per_s)
       << ", \"write_bytes_per_s\": " << fmt_num(n.write_bytes_per_s)
       << ", \"access_latency_s\": " << fmt_num(n.access_latency_s) << "}";
  }
  os << "\n  ],\n  \"edges\": [";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const EdgeProfile& e = edges[i];
    os << (i ? "," : "") << "\n    {\"src\": " << e.src << ", \"dst\": "
       << e.dst << ", \"src_name\": \"" << json_escape(e.src_name)
       << "\", \"dst_name\": \"" << json_escape(e.dst_name)
       << "\", \"bytes_per_s\": " << fmt_num(e.bytes_per_s)
       << ", \"latency_s\": " << fmt_num(e.latency_s)
       << ", \"samples\": " << e.samples << ", \"bytes\": " << e.bytes
       << ", \"seconds\": " << fmt_num(e.seconds) << "}";
  }
  os << "\n  ],\n  \"procs\": [";
  for (std::size_t i = 0; i < procs.size(); ++i) {
    const ProcProfile& p = procs[i];
    os << (i ? "," : "") << "\n    {\"node\": " << p.node << ", \"name\": \""
       << json_escape(p.name)
       << "\", \"flops_per_s\": " << fmt_num(p.flops_per_s)
       << ", \"mem_bytes_per_s\": " << fmt_num(p.mem_bytes_per_s)
       << ", \"launch_latency_s\": " << fmt_num(p.launch_latency_s)
       << ", \"compute_units\": " << p.compute_units
       << ", \"local_mem_bytes\": " << p.local_mem_bytes
       << ", \"launches\": " << p.launches << ", \"groups\": " << p.groups
       << ", \"seconds\": " << fmt_num(p.seconds) << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

void MachineProfile::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw util::Error("cannot open machine profile output file '" + path +
                      "'");
  }
  out << to_json();
  out.flush();
  if (!out) {
    throw util::Error("failed writing machine profile file '" + path + "'");
  }
}

MachineProfile MachineProfile::from_json(const std::string& text,
                                         const std::string& origin) {
  Parser parser(text, origin);
  const Value root = parser.parse();
  if (root.kind != Value::Kind::Object ||
      !root.has("northup_machine_profile")) {
    throw util::Error("malformed machine profile '" + origin +
                      "': missing \"northup_machine_profile\" marker");
  }
  if (root.num("northup_machine_profile") != 1.0) {
    throw util::Error("unsupported machine profile version in '" + origin +
                      "'");
  }
  MachineProfile profile;
  if (root.has("nodes")) {
    for (const Value& v : root.object.at("nodes").array) {
      NodeProfile n;
      n.node = as_node(v, "node");
      n.name = v.str("name");
      n.kind = v.str("kind");
      n.read_bytes_per_s = v.num("read_bytes_per_s");
      n.write_bytes_per_s = v.num("write_bytes_per_s");
      n.access_latency_s = v.num("access_latency_s");
      profile.nodes.push_back(std::move(n));
    }
  }
  if (root.has("edges")) {
    for (const Value& v : root.object.at("edges").array) {
      EdgeProfile e;
      e.src = as_node(v, "src");
      e.dst = as_node(v, "dst");
      e.src_name = v.str("src_name");
      e.dst_name = v.str("dst_name");
      e.bytes_per_s = v.num("bytes_per_s");
      e.latency_s = v.num("latency_s");
      e.samples = as_u64(v, "samples");
      e.bytes = as_u64(v, "bytes");
      e.seconds = v.num("seconds");
      profile.edges.push_back(std::move(e));
    }
  }
  if (root.has("procs")) {
    for (const Value& v : root.object.at("procs").array) {
      ProcProfile p;
      p.node = as_node(v, "node");
      p.name = v.str("name");
      p.flops_per_s = v.num("flops_per_s");
      p.mem_bytes_per_s = v.num("mem_bytes_per_s");
      p.launch_latency_s = v.num("launch_latency_s");
      p.compute_units = static_cast<std::uint32_t>(as_u64(v, "compute_units"));
      p.local_mem_bytes = as_u64(v, "local_mem_bytes");
      p.launches = as_u64(v, "launches");
      p.groups = as_u64(v, "groups");
      p.seconds = v.num("seconds");
      profile.procs.push_back(std::move(p));
    }
  }
  return profile;
}

MachineProfile MachineProfile::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw util::Error("cannot open machine profile file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw util::Error("failed reading machine profile file '" + path + "'");
  }
  return from_json(buf.str(), path);
}

}  // namespace northup::plan
