#include "northup/plan/feasibility.hpp"

#include <utility>

#include "northup/plan/calibrator.hpp"
#include "northup/util/assert.hpp"

namespace northup::plan {

FeasibilityEstimator::FeasibilityEstimator(MachineProfile profile,
                                           std::vector<std::uint32_t> chain)
    : tuner_(std::move(profile)), chain_(std::move(chain)) {
  NU_CHECK(!chain_.empty(), "feasibility chain must have at least one node");
}

FeasibilityEstimator FeasibilityEstimator::from_tree(
    const topo::TopoTree& tree) {
  Calibrator calibrator;
  calibrator.observe_topology(tree);
  std::vector<std::uint32_t> chain;
  topo::NodeId node = tree.root();
  chain.push_back(node);
  while (!tree.is_leaf(node)) {
    node = tree.get_children_list(node)[0];
    chain.push_back(node);
  }
  return FeasibilityEstimator(calibrator.finish(), std::move(chain));
}

CostEstimate FeasibilityEstimator::estimate(const WorkEstimate& w) const {
  CostEstimate cost;
  for (std::size_t level = 0; level + 1 < chain_.size(); ++level) {
    const std::uint32_t parent = chain_[level];
    const std::uint32_t child = chain_[level + 1];
    if (w.down_bytes > 0.0) {
      const AutoTuner::EdgeEstimate down = tuner_.edge(parent, child);
      if (down.bytes_per_s > 0.0) {
        cost.transfer_s += w.down_bytes / down.bytes_per_s + down.latency_s;
      }
    }
    if (w.up_bytes > 0.0) {
      const AutoTuner::EdgeEstimate up = tuner_.edge(child, parent);
      if (up.bytes_per_s > 0.0) {
        cost.transfer_s += w.up_bytes / up.bytes_per_s + up.latency_s;
      }
    }
  }

  if (w.flops > 0.0 || w.compute_bytes > 0.0) {
    // Prefer the processor at the chain's leaf; fall back to the fastest
    // declared roofline anywhere in the profile.
    const ProcProfile* proc = profile().find_proc(chain_.back());
    if (proc == nullptr) {
      for (const ProcProfile& p : profile().procs) {
        if (proc == nullptr || p.flops_per_s > proc->flops_per_s) proc = &p;
      }
    }
    if (proc != nullptr) {
      double seconds = 0.0;
      if (proc->flops_per_s > 0.0) seconds = w.flops / proc->flops_per_s;
      if (proc->mem_bytes_per_s > 0.0) {
        const double mem_s = w.compute_bytes / proc->mem_bytes_per_s;
        if (mem_s > seconds) seconds = mem_s;
      }
      cost.compute_s = seconds;
    }
  }
  return cost;
}

bool FeasibilityEstimator::feasible(const WorkEstimate& w, double deadline_s,
                                    double margin,
                                    double queue_delay_s) const {
  if (deadline_s <= 0.0) return true;
  return estimate(w).total_s() * margin + queue_delay_s <= deadline_s;
}

}  // namespace northup::plan
