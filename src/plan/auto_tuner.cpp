#include "northup/plan/auto_tuner.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace northup::plan {

namespace {

/// Chunk transfer should outweigh access latency by this factor before
/// the tuner stops growing a chunk for latency's sake alone.
constexpr double kLatencyAmortization = 100.0;

/// A pipelined level wants at least this many chunks so fill/drain of
/// the transfer/compute overlap stays a small fraction of the level.
constexpr double kOverlapChunks = 8.0;

/// Occupancy saturates at 2 resident workgroups per compute unit (the
/// EventSim device model's knee).
constexpr double kGroupsPerCu = 2.0;

}  // namespace

AutoTuner::AutoTuner(MachineProfile profile) : profile_(std::move(profile)) {}

AutoTuner::EdgeEstimate AutoTuner::edge(std::uint32_t src,
                                        std::uint32_t dst) const {
  EdgeEstimate est;
  if (const EdgeProfile* e = profile_.find_edge(src, dst);
      e != nullptr && e->samples > 0 && e->bytes_per_s > 0.0) {
    est.bytes_per_s = e->bytes_per_s;
    est.latency_s = e->latency_s;
    est.measured = true;
    return est;
  }
  // Unobserved edge: bottleneck of the declared endpoint models (reading
  // from src, writing into dst), worst-case access latency.
  const NodeProfile* s = profile_.find_node(src);
  const NodeProfile* d = profile_.find_node(dst);
  double bw = 0.0;
  if (s != nullptr && s->read_bytes_per_s > 0.0) bw = s->read_bytes_per_s;
  if (d != nullptr && d->write_bytes_per_s > 0.0) {
    bw = bw > 0.0 ? std::min(bw, d->write_bytes_per_s)
                  : d->write_bytes_per_s;
  }
  est.bytes_per_s = bw > 0.0 ? bw : 1e9;
  est.latency_s = std::max(s != nullptr ? s->access_latency_s : 0.0,
                           d != nullptr ? d->access_latency_s : 0.0);
  return est;
}

double AutoTuner::compute_seconds(const Workload& w) const {
  if (w.compute_flops <= 0.0 && w.compute_bytes <= 0.0) return 0.0;
  const ProcProfile* proc = profile_.find_proc(w.compute_node);
  if (proc == nullptr) {
    for (const ProcProfile& p : profile_.procs) {
      if (proc == nullptr || p.flops_per_s > proc->flops_per_s) proc = &p;
    }
  }
  if (proc == nullptr) return 0.0;
  const double flops_s =
      w.compute_flops / std::max(proc->flops_per_s, 1.0);
  const double bytes_s =
      w.compute_bytes / std::max(proc->mem_bytes_per_s, 1.0);
  double occupancy = 1.0;
  if (w.groups_per_launch > 0.0 && proc->compute_units > 0) {
    occupancy = std::min(
        1.0, w.groups_per_launch / (kGroupsPerCu * proc->compute_units));
    occupancy = std::max(occupancy, 1e-3);
  }
  return std::max(flops_s, bytes_s) / occupancy +
         static_cast<double>(w.launches) * proc->launch_latency_s;
}

double AutoTuner::modeled_seconds(std::uint32_t parent, std::uint32_t child,
                                  const Workload& w, bool overlapped) const {
  const EdgeEstimate down = edge(parent, child);
  const EdgeEstimate up = edge(child, parent);
  const double chunks = static_cast<double>(std::max<std::uint64_t>(w.chunks, 1));
  double transfer = 0.0;
  if (w.down_bytes > 0) {
    transfer += w.down_accesses_per_chunk * chunks * down.latency_s +
                static_cast<double>(w.down_bytes) / down.bytes_per_s;
  }
  if (w.up_bytes > 0) {
    transfer += w.up_accesses_per_chunk * chunks * up.latency_s +
                static_cast<double>(w.up_bytes) / up.bytes_per_s;
  }
  const double compute = compute_seconds(w);
  if (!overlapped) return transfer + compute;
  // Window-2 double buffering: steady state is bounded by the slower of
  // the two streams; one chunk's compute fills the pipeline.
  return std::max(transfer, compute) + compute / chunks;
}

Mode AutoTuner::choose_mode(std::uint32_t parent, std::uint32_t child,
                            const Workload& serial_w, const Workload& pipe_w,
                            bool can_pipeline) const {
  if (!can_pipeline) return Mode::kSerial;
  const double serial = modeled_seconds(parent, child, serial_w, false);
  const double pipe = modeled_seconds(parent, child, pipe_w, true);
  // Ties keep the hand-configured double-buffered plan; only a modeled
  // strict improvement justifies diverging from it.
  return serial < pipe ? Mode::kSerial : Mode::kDoubleBuffer;
}

std::uint64_t AutoTuner::tune_chunk_bytes(std::uint32_t src,
                                          std::uint32_t dst,
                                          const Workload& w,
                                          std::uint64_t budget_bytes,
                                          std::uint64_t floor_bytes,
                                          bool overlapped) const {
  const EdgeEstimate e = edge(src, dst);
  // A blocking level has nothing to overlap: the full budget minimizes
  // per-chunk access latencies. A pipelined level wants enough chunks
  // that fill/drain is a small fraction of the level...
  double ideal = static_cast<double>(budget_bytes);
  const double total =
      static_cast<double>(w.down_bytes) + static_cast<double>(w.up_bytes);
  if (overlapped && total > 0.0) {
    ideal = std::min(ideal, total / kOverlapChunks);
  }
  // ... but never chunks so fine that the edge's per-access latency
  // stops being amortized. Linear in bandwidth, so a slower calibrated
  // edge can only shrink the chunk (never grow it) under a fixed budget.
  ideal = std::max(ideal,
                   e.bytes_per_s * kLatencyAmortization * e.latency_s);
  std::uint64_t chunk =
      ideal >= static_cast<double>(budget_bytes)
          ? budget_bytes
          : static_cast<std::uint64_t>(ideal);
  chunk = std::max(chunk, floor_bytes);
  chunk = std::min(chunk, budget_bytes);
  return chunk;
}

std::uint64_t AutoTuner::tune_nnz_cutoff(std::uint32_t leaf_node,
                                         std::uint64_t shard_nnz,
                                         std::uint64_t hand_cutoff) const {
  constexpr std::uint64_t kMinCutoff = 64;
  // Round the hand default down to a power of two.
  std::uint64_t cutoff = kMinCutoff;
  while (cutoff * 2 <= hand_cutoff) cutoff *= 2;
  const ProcProfile* proc = profile_.find_proc(leaf_node);
  if (proc == nullptr || shard_nnz == 0) return cutoff;
  // A CSR-stream workgroup stages its rows' nonzeros in local memory.
  if (proc->local_mem_bytes > 0) {
    const std::uint64_t max_floats = proc->local_mem_bytes / sizeof(float);
    while (cutoff > kMinCutoff && cutoff > max_floats) cutoff /= 2;
  }
  // Shrink until the shard yields enough workgroups to occupy the device.
  const std::uint64_t want_groups =
      static_cast<std::uint64_t>(kGroupsPerCu) *
      std::max<std::uint64_t>(proc->compute_units, 1);
  while (cutoff > kMinCutoff && shard_nnz / cutoff < want_groups) cutoff /= 2;
  return cutoff;
}

std::vector<std::uint32_t> AutoTuner::rank_children(
    std::uint32_t parent, const std::vector<std::uint32_t>& children) const {
  std::vector<std::pair<double, std::uint32_t>> scored;
  scored.reserve(children.size());
  for (std::uint32_t child : children) {
    scored.emplace_back(edge(parent, child).bytes_per_s, child);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  std::vector<std::uint32_t> out;
  out.reserve(scored.size());
  for (const auto& [bw, child] : scored) out.push_back(child);
  return out;
}

}  // namespace northup::plan
