#include "northup/plan/calibrator.hpp"

#include <algorithm>

namespace northup::plan {

void Calibrator::observe_topology(const topo::TopoTree& tree) {
  nodes_.clear();
  procs_.clear();
  for (topo::NodeId id : tree.preorder()) {
    const topo::Node& n = tree.node(id);
    NodeProfile np;
    np.node = id;
    np.name = n.name;
    np.kind = mem::to_string(n.memory.storage_type);
    np.read_bytes_per_s = n.memory.model.read_bytes_per_s;
    np.write_bytes_per_s = n.memory.model.write_bytes_per_s;
    np.access_latency_s = n.memory.model.access_latency_s;
    nodes_.push_back(std::move(np));
    for (const topo::ProcessorInfo& proc : n.processors) {
      ProcProfile pp;
      pp.node = id;
      pp.name = proc.name;
      pp.flops_per_s = proc.model.flops_per_s;
      pp.mem_bytes_per_s = proc.model.mem_bytes_per_s;
      pp.launch_latency_s = proc.model.launch_latency_s;
      pp.compute_units = static_cast<std::uint32_t>(
          proc.compute_units > 0 ? proc.compute_units : 1);
      pp.local_mem_bytes = proc.local_mem_bytes;
      procs_.push_back(std::move(pp));
    }
  }
}

void Calibrator::ingest(const obs::RecordedRun& run) {
  for (const analyze::EdgeMoveStats& e : analyze::edge_move_stats(run)) {
    auto [it, inserted] = edges_.try_emplace({e.src, e.dst}, e);
    if (inserted) continue;
    analyze::EdgeMoveStats& acc = it->second;
    acc.samples += e.samples;
    acc.bytes += e.bytes;
    acc.seconds += e.seconds;
    acc.sum_x += e.sum_x;
    acc.sum_y += e.sum_y;
    acc.sum_xx += e.sum_xx;
    acc.sum_xy += e.sum_xy;
  }
  for (const analyze::ComputeStats& c : analyze::compute_stats(run)) {
    auto [it, inserted] = computes_.try_emplace(c.node, c);
    if (inserted) continue;
    it->second.launches += c.launches;
    it->second.groups += c.groups;
    it->second.seconds += c.seconds;
  }
  ++runs_;
}

MachineProfile Calibrator::finish() const {
  MachineProfile profile;
  profile.nodes = nodes_;
  profile.procs = procs_;
  for (const auto& [key, stats] : edges_) {
    EdgeProfile e;
    e.src = stats.src;
    e.dst = stats.dst;
    e.src_name = stats.src_name;
    e.dst_name = stats.dst_name;
    e.bytes_per_s = stats.fitted_bytes_per_s();
    e.latency_s = stats.fitted_latency_s();
    // The intercept of a wall-clock fit absorbs host overhead (syscall,
    // instrumentation) that the runtime's cost model does not price per
    // access. Clamp the per-access latency to the declared worst-case of
    // the endpoints so plans optimized against this profile agree with
    // the makespan currency the runtime reports.
    double declared = 0.0;
    for (const NodeProfile& n : profile.nodes) {
      if (n.node == e.src || n.node == e.dst) {
        declared = std::max(declared, n.access_latency_s);
      }
    }
    e.latency_s = std::min(std::max(e.latency_s, 0.0), declared);
    e.samples = stats.samples;
    e.bytes = stats.bytes;
    e.seconds = stats.seconds;
    profile.edges.push_back(std::move(e));
  }
  // Attach measured launch evidence to the declared processor entries.
  // kCompute events carry the memory node the processor hangs off, so a
  // node with several processors (the APU leaf) credits the first entry —
  // fine for the tuner, which reasons per node.
  std::map<std::uint32_t, bool> credited;
  for (ProcProfile& p : profile.procs) {
    auto it = computes_.find(p.node);
    if (it == computes_.end() || credited[p.node]) continue;
    credited[p.node] = true;
    p.launches = it->second.launches;
    p.groups = it->second.groups;
    p.seconds = it->second.seconds;
  }
  return profile;
}

}  // namespace northup::plan
