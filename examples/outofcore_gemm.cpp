// Out-of-core dense matrix multiply (§IV-A) on a storage-backed system.
//
// Usage: outofcore_gemm [--n=512] [--storage=ssd|hdd] [--levels=2|3]
//                       [--staging=<size>] [--no-reuse]
//
// Prints the decomposition, the phase breakdown, and the verification
// verdict, comparing against the in-memory baseline.
#include <cstdio>
#include <string>

#include "northup/algos/gemm.hpp"
#include "northup/core/observability.hpp"
#include "northup/topo/presets.hpp"
#include "northup/util/bytes.hpp"
#include "northup/util/flags.hpp"

namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

int main(int argc, char** argv) {
  const northup::util::Flags flags(argc, argv);
  const auto n = static_cast<std::uint64_t>(flags.get_int("n", 512));
  const bool use_hdd = flags.get("storage", "ssd") == "hdd";
  const auto levels = flags.get_int("levels", 2);
  const auto kind = use_hdd ? nm::StorageKind::Hdd : nm::StorageKind::Ssd;

  // Staging defaults to half of one matrix: a 4x4 level-1 grid with the
  // row-shard-reuse working set resident.
  nt::PresetOptions opts;
  opts.root_capacity = std::max<std::uint64_t>(64ULL << 20, 4 * n * n * 4);
  opts.staging_capacity = flags.get_bytes(
      "staging", std::max<std::uint64_t>(256ULL << 10, n * n * 4 / 2));
  opts.device_capacity = std::max<std::uint64_t>(128ULL << 10, n * n * 4 / 4);

  na::GemmConfig cfg;
  cfg.n = n;
  cfg.shard_reuse = !flags.get_bool("no-reuse");
  cfg.verify_samples = 128;

  std::printf("out-of-core GEMM: n=%llu (%s per matrix), %s root, %d-level tree\n",
              static_cast<unsigned long long>(n),
              nu::format_bytes(n * n * 4).c_str(),
              use_hdd ? "disk" : "ssd", static_cast<int>(levels));

  nc::Runtime rt(levels >= 3 ? nt::dgpu_three_level(kind, opts)
                             : nt::apu_two_level(kind, opts));
  std::printf("%s\n", rt.tree().dump().c_str());

  const auto ooc = na::gemm_northup(rt, cfg);
  std::printf("northup out-of-core: %s\n  %s\n",
              nu::format_seconds(ooc.makespan).c_str(),
              ooc.breakdown.to_string().c_str());
  std::printf("  bytes moved: %s, recursive spawns: %llu\n",
              nu::format_bytes(ooc.bytes_moved).c_str(),
              static_cast<unsigned long long>(ooc.spawns));
  std::printf("  shard cache: %llu hits, %llu misses, %llu evictions\n",
              static_cast<unsigned long long>(
                  rt.metrics().counter_sum("cache.hits.")),
              static_cast<unsigned long long>(
                  rt.metrics().counter_sum("cache.misses.")),
              static_cast<unsigned long long>(
                  rt.metrics().counter_sum("cache.evictions.")));
  std::printf("  verification: %s (max rel err %.2e)\n",
              ooc.verified ? "PASS" : "FAIL", ooc.max_rel_err);
  nc::dump_observability(rt, flags, "ooc");

  nt::PresetOptions big = opts;
  big.staging_capacity = 4 * n * n * 4;
  big.device_capacity = 4 * n * n * 4;
  nc::Runtime im_rt(levels >= 3 ? nt::dgpu_three_level(kind, big)
                                : nt::apu_two_level(kind, big));
  const auto im = na::gemm_inmemory(im_rt, cfg);
  std::printf("in-memory baseline:  %s  (out-of-core slowdown: %.2fx)\n",
              nu::format_seconds(im.makespan).c_str(),
              ooc.makespan / im.makespan);
  nc::dump_observability(im_rt, flags, "inmem");
  return ooc.verified && im.verified ? 0 : 1;
}
