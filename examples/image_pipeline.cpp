// Out-of-core image pipeline using the high-level API: grid_map (the
// generic Listing-3 driver) + TypedBuffer (the type-safe handle). A
// gamma-correction pass runs over an image larger than "main memory",
// chunked automatically through whatever tree the machine description
// provides.
//
// Usage: image_pipeline [--width=4096] [--height=4096] [--gamma=2.2]
//                       [--staging=1M] [--topo=apu|dgpu|deep]
#include <cmath>
#include <cstdio>

#include "northup/core/grid.hpp"
#include "northup/core/observability.hpp"
#include "northup/data/typed_buffer.hpp"
#include "northup/topo/presets.hpp"
#include "northup/util/bytes.hpp"
#include "northup/util/flags.hpp"
#include "northup/util/rng.hpp"

namespace nc = northup::core;
namespace nt = northup::topo;
namespace nd = northup::data;
namespace nu = northup::util;

int main(int argc, char** argv) {
  const nu::Flags flags(argc, argv);
  const auto width = static_cast<std::uint64_t>(flags.get_int("width", 2048));
  const auto height =
      static_cast<std::uint64_t>(flags.get_int("height", 2048));
  const auto gamma = static_cast<float>(flags.get_double("gamma", 2.2));
  const std::string topo = flags.get("topo", "apu");

  nt::PresetOptions opts;
  opts.root_capacity = std::max<std::uint64_t>(width * height * 8 + (64 << 20),
                                               128ULL << 20);
  opts.staging_capacity = flags.get_bytes("staging", 1ULL << 20);
  opts.device_capacity = opts.staging_capacity / 2;

  nc::Runtime rt(topo == "dgpu"
                     ? nt::dgpu_three_level(northup::mem::StorageKind::Ssd,
                                            opts)
                     : topo == "deep"
                           ? nt::deep_four_level(opts)
                           : nt::apu_two_level(
                                 northup::mem::StorageKind::Ssd, opts));
  auto& dm = rt.dm();
  const auto root = rt.tree().root();

  std::printf("gamma pipeline: %llux%llu image (%s), gamma=%.2f, %s tree\n",
              static_cast<unsigned long long>(width),
              static_cast<unsigned long long>(height),
              nu::format_bytes(width * height * 4).c_str(),
              static_cast<double>(gamma), topo.c_str());

  // Synthesize the "image" on storage.
  nd::TypedBuffer<float> image(dm, width * height, root);
  nd::TypedBuffer<float> corrected(dm, width * height, root);
  {
    nu::Xoshiro256 rng(2026);
    std::vector<float> row(width);
    for (std::uint64_t r = 0; r < height; ++r) {
      for (auto& px : row) px = static_cast<float>(rng.uniform());
      image.write(row.data(), width, r * width);
    }
  }

  // The pipeline: one grid_map pass, chunk sizes decided by the runtime.
  const float inv_gamma = 1.0f / gamma;
  rt.run([&](nc::ExecContext& ctx) {
    nc::GridJob job{height, width, sizeof(float), 0.85};
    nc::grid_map(
        ctx, job, image.raw(), corrected.raw(),
        [&](nc::ExecContext& leaf, nd::Buffer& in, nd::Buffer& out,
            std::uint64_t rows, std::uint64_t cols) {
          auto* proc = leaf.get_devices().empty()
                           ? rt.find_processor(nt::ProcessorType::Gpu)
                           : leaf.get_devices().front();
          float* src = reinterpret_cast<float*>(dm.host_view(in));
          float* dst = reinterpret_cast<float*>(dm.host_view(out));
          const std::uint64_t n = rows * cols;
          const auto groups =
              static_cast<std::uint32_t>((n + 4095) / 4096);
          std::vector<northup::sim::TaskId> deps;
          if (in.ready != northup::sim::kInvalidTask) deps.push_back(in.ready);
          auto launch = proc->launch(
              "gamma", groups,
              [=](northup::device::WorkGroupCtx& wg) {
                const std::uint64_t lo = wg.group_id * 4096ULL;
                const std::uint64_t hi =
                    std::min<std::uint64_t>(lo + 4096, n);
                for (std::uint64_t i = lo; i < hi; ++i) {
                  dst[i] = std::pow(src[i], inv_gamma);
                }
              },
              {30.0 * static_cast<double>(n),
               8.0 * static_cast<double>(n)},
              deps);
          out.ready = launch.task;
        });
  });

  // Spot-check a few pixels.
  nu::Xoshiro256 check(2026 ^ 0xc0ffee);
  std::uint64_t bad = 0;
  for (int s = 0; s < 64; ++s) {
    const auto idx = check.bounded(width * height);
    float in_px = 0.0f, out_px = 0.0f;
    image.read(&in_px, 1, idx);
    corrected.read(&out_px, 1, idx);
    if (std::abs(out_px - std::pow(in_px, inv_gamma)) > 1e-5f) ++bad;
  }

  std::printf("virtual time %s, %llu chunks, spot-check mismatches: %llu\n",
              nu::format_seconds(rt.makespan()).c_str(),
              static_cast<unsigned long long>(rt.spawn_count()),
              static_cast<unsigned long long>(bad));
  nc::dump_observability(rt, flags);
  return bad == 0 ? 0 : 1;
}
