// Sparse analytics (CSR-Adaptive SpMV, §IV-C) across the synthetic input
// family that stands in for the Florida collection: regular banded,
// uniform random, power-law, and an adversarial dense-rows mix.
//
// Usage: sparse_analytics [--rows=65536] [--nnz=16]
#include <cstdio>

#include "northup/algos/csr_adaptive.hpp"
#include "northup/core/observability.hpp"
#include "northup/topo/presets.hpp"
#include "northup/util/flags.hpp"
#include "northup/util/table.hpp"

namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

int main(int argc, char** argv) {
  const northup::util::Flags flags(argc, argv);
  const auto rows = static_cast<std::uint32_t>(flags.get_int("rows", 65536));
  const auto avg_nnz = static_cast<std::uint32_t>(flags.get_int("nnz", 16));

  nt::PresetOptions opts;
  opts.root_capacity = 512ULL << 20;
  // Staging: the dense vector stays resident, shards stream past it.
  opts.staging_capacity = rows * 4ULL * 3;

  struct Pattern {
    const char* name;
    na::SpmvConfig::Pattern pattern;
  };
  const Pattern patterns[] = {
      {"banded", na::SpmvConfig::Pattern::Banded},
      {"uniform", na::SpmvConfig::Pattern::Uniform},
      {"power-law", na::SpmvConfig::Pattern::PowerLaw},
      {"dense-rows", na::SpmvConfig::Pattern::DenseRows},
  };

  std::printf("CSR-Adaptive SpMV, %u rows, ~%u nnz/row, SSD-backed\n\n",
              rows, avg_nnz);
  nu::TextTable table;
  table.set_header({"pattern", "nnz", "stream/vector blocks", "shards",
                    "virtual time (ms)", "verified"});

  bool all_ok = true;
  for (const auto& p : patterns) {
    na::SpmvConfig cfg;
    cfg.rows = rows;
    cfg.avg_nnz = avg_nnz;
    cfg.pattern = p.pattern;
    cfg.verify = true;

    const auto matrix = cfg.make_matrix();
    const auto blocks =
        na::bin_rows(matrix.row_ptr.data(), matrix.rows,
                     cfg.nnz_per_workgroup);
    std::uint64_t stream = 0, vector = 0;
    for (const auto& b : blocks) {
      (b.kind == na::RowBlockKind::Stream ? stream : vector) += 1;
    }

    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, opts));
    const auto stats = na::spmv_northup(rt, cfg);
    all_ok = all_ok && stats.verified;

    table.add_row({p.name, std::to_string(matrix.nnz()),
                   std::to_string(stream) + "/" + std::to_string(vector),
                   std::to_string(stats.spawns),
                   nu::TextTable::num(stats.makespan * 1e3, 2),
                   stats.verified ? "yes" : "NO"});
    nc::dump_observability(rt, flags, p.name);
  }
  std::printf("%s", table.render().c_str());
  return all_ok ? 0 : 1;
}
