// Thermal simulation (HotSpot-2D, §IV-B): iterated stencil sweeps over a
// chip-temperature grid too large for "main memory", with block halos
// exchanged through storage between sweeps.
//
// Usage: thermal_sim [--n=512] [--iterations=4] [--storage=ssd|hdd]
#include <cstdio>
#include <string>

#include "northup/algos/hotspot.hpp"
#include "northup/core/observability.hpp"
#include "northup/topo/presets.hpp"
#include "northup/util/bytes.hpp"
#include "northup/util/flags.hpp"

namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

int main(int argc, char** argv) {
  const northup::util::Flags flags(argc, argv);
  const auto n = static_cast<std::uint64_t>(flags.get_int("n", 512));
  const auto iters =
      static_cast<std::uint64_t>(flags.get_int("iterations", 4));
  const bool use_hdd = flags.get("storage", "ssd") == "hdd";
  const auto kind = use_hdd ? nm::StorageKind::Hdd : nm::StorageKind::Ssd;

  nt::PresetOptions opts;
  opts.root_capacity = std::max<std::uint64_t>(64ULL << 20, 8 * n * n * 4);
  opts.staging_capacity = std::max<std::uint64_t>(64ULL << 10, n * n * 4 / 4);

  na::HotspotConfig cfg;
  cfg.n = n;
  cfg.iterations = iters;
  cfg.verify = true;

  std::printf(
      "thermal simulation: %llux%llu grid (%s), %llu sweeps, %s root\n",
      static_cast<unsigned long long>(n), static_cast<unsigned long long>(n),
      nu::format_bytes(n * n * 4).c_str(),
      static_cast<unsigned long long>(iters), use_hdd ? "disk" : "ssd");

  nc::Runtime rt(nt::apu_two_level(kind, opts));
  const auto stats = na::hotspot_northup(rt, cfg);

  std::printf("virtual time: %s  (%s)\n",
              nu::format_seconds(stats.makespan).c_str(),
              stats.breakdown.to_string().c_str());
  std::printf("blocks processed (spawns): %llu, bytes moved: %s\n",
              static_cast<unsigned long long>(stats.spawns),
              nu::format_bytes(stats.bytes_moved).c_str());
  std::printf(
      "verification vs reference after %llu sweeps: %s (max rel err %.2e)\n",
      static_cast<unsigned long long>(iters),
      stats.verified ? "PASS" : "FAIL", stats.max_rel_err);
  nc::dump_observability(rt, flags);
  return stats.verified ? 0 : 1;
}
