// Topology explorer: load a machine description (config file or preset),
// dump the tree the way the runtime sees it, and probe each memory node
// with the unified data API — then project how the system would behave
// with a faster storage device (§V-D).
//
// Usage: topology_explorer [config-file]
//        topology_explorer --preset apu|dgpu|deep|fig2
#include <cstdio>
#include <cstring>
#include <string>

#include "northup/algos/hotspot.hpp"
#include "northup/core/observability.hpp"
#include "northup/data/scoped_buffer.hpp"
#include "northup/memsim/projection.hpp"
#include "northup/topo/config.hpp"
#include "northup/topo/presets.hpp"
#include "northup/util/bytes.hpp"
#include "northup/util/flags.hpp"
#include "northup/util/table.hpp"

namespace nd = northup::data;

namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

namespace {

nt::TopoTree select_tree(int argc, char** argv) {
  if (argc > 2 && std::strcmp(argv[1], "--preset") == 0) {
    const std::string which = argv[2];
    if (which == "apu") return nt::apu_two_level();
    if (which == "dgpu") return nt::dgpu_three_level();
    if (which == "deep") return nt::deep_four_level();
    if (which == "fig2") return nt::asymmetric_fig2();
    std::fprintf(stderr, "unknown preset '%s'\n", which.c_str());
    std::exit(1);
  }
  if (argc > 1) return nt::load_config_file(argv[1]);
  return nt::dgpu_three_level();
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nc::Runtime rt(select_tree(argc, argv));
  const auto& tree = rt.tree();

  std::printf("=== topology (%zu nodes, max level %d) ===\n%s\n",
              tree.node_count(), tree.get_max_treelevel(),
              tree.dump().c_str());
  std::printf("=== config round-trip ===\n%s\n",
              nt::to_config(tree).c_str());

  // Probe every node: allocate, write, read back, report modeled costs.
  std::printf("=== per-node probe (64 KiB round trip) ===\n");
  nu::TextTable table;
  table.set_header({"node", "kind", "capacity", "read (model)",
                    "write (model)"});
  for (nt::NodeId id = 0; id < tree.node_count(); ++id) {
    auto& storage = rt.dm().storage(id);
    nd::ScopedBuffer buf(rt.dm(), 64 << 10, id);
    std::vector<std::uint8_t> data(64 << 10, 0x5a);
    rt.dm().write_from_host(*buf, data.data(), data.size());
    std::vector<std::uint8_t> back(64 << 10);
    rt.dm().read_to_host(back.data(), *buf, back.size());
    NU_CHECK(back == data, "probe round-trip failed");
    table.add_row({tree.node(id).name,
                   nm::to_string(tree.fetch_node_type(id)),
                   nu::format_bytes(tree.memory(id).capacity),
                   nu::format_seconds(storage.sim_read_time(64 << 10)),
                   nu::format_seconds(storage.sim_write_time(64 << 10))});
  }
  std::printf("%s\n", table.render().c_str());
  nc::dump_observability(rt, flags, "probe");

  // If the root is file-backed, run a stencil sweep and project faster
  // storage from the recorded I/O trace.
  if (nm::is_file_backed(tree.fetch_node_type(tree.root()))) {
    nc::RuntimeOptions ropts;
    ropts.trace_io = true;
    nc::Runtime traced(select_tree(argc, argv), ropts);
    na::HotspotConfig cfg;
    cfg.n = 256;
    cfg.verify = false;
    const auto stats = na::hotspot_northup(traced, cfg);

    std::printf("=== faster-storage projection (stencil sweep, §V-D) ===\n");
    const auto& trace = traced.dm().storage(traced.tree().root()).trace();
    nu::TextTable proj;
    proj.set_header({"storage r/w", "projected overall"});
    const auto labels = nm::fig9_storage_labels();
    const auto sweep = nm::fig9_storage_sweep();
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto p = nm::project_storage(trace, sweep[i], stats.breakdown.io,
                                         stats.makespan, labels[i]);
      proj.add_row({p.label, nu::format_seconds(p.overall_time)});
    }
    std::printf("%s", proj.render().c_str());
    nc::dump_observability(traced, flags, "stencil");
  }
  return 0;
}
