// Quickstart: a tour of the Northup public API.
//
//  1. Describe the machine as a topological tree (here: a preset; see
//     topology_explorer.cpp for the config-file route).
//  2. Instantiate the Runtime (storages, processors, queues, simulator).
//  3. Allocate buffers with the unified Table I interface and move data
//     between levels without caring what each level physically is.
//  4. Write the application as a recursive function over ExecContext:
//     decompose at inner nodes, compute at leaves.
//
// The program computes, out-of-core, the element-wise square of a vector
// that starts on "disk": the smallest possible Northup application.
#include <cstdio>
#include <vector>

#include "northup/core/observability.hpp"
#include "northup/core/runtime.hpp"
#include "northup/data/scoped_buffer.hpp"
#include "northup/topo/presets.hpp"
#include "northup/util/bytes.hpp"
#include "northup/util/flags.hpp"

namespace nc = northup::core;
namespace nt = northup::topo;
namespace nd = northup::data;
namespace ndv = northup::device;
namespace nu = northup::util;

int main(int argc, char** argv) {
  // --trace-out=<file> / --metrics-out=<file> dump the run's task graph
  // (Chrome trace JSON, open in Perfetto) and the metrics registry.
  nu::Flags flags(argc, argv);
  // --- 1. The machine: SSD root (level 0) + DRAM leaf with a CPU and an
  //        integrated GPU (level 1). Capacities are tiny on purpose so the
  //        runtime is forced to chunk.
  nt::PresetOptions opts;
  opts.root_capacity = 16ULL << 20;
  opts.staging_capacity = 64ULL << 10;  // 64 KiB of "main memory"
  nt::TopoTree tree = nt::apu_two_level(northup::mem::StorageKind::Ssd, opts);
  std::printf("System topology:\n%s\n", tree.dump().c_str());

  // --- 2. The runtime.
  nc::Runtime rt(std::move(tree));
  auto& dm = rt.dm();

  // --- 3. Problem setup: 64 Ki floats on the storage root.
  constexpr std::uint64_t kN = 64 << 10;
  constexpr std::uint64_t kBytes = kN * sizeof(float);
  std::vector<float> input(kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    input[i] = static_cast<float>(i % 1000) * 0.25f;
  }

  const auto root = rt.tree().root();
  nd::ScopedBuffer in_root(dm, kBytes, root);
  nd::ScopedBuffer out_root(dm, kBytes, root);
  dm.write_from_host(*in_root, input.data(), kBytes);

  // --- 4. The recursive application: Listing 3's shape.
  std::uint64_t chunks_processed = 0;
  rt.run([&](nc::ExecContext& ctx) {
    const auto child = ctx.child(0);
    // Chunk size from the child's capacity (§III-C): two buffers in
    // flight (in + out) with a safety margin.
    const std::uint64_t chunk_bytes =
        ctx.available_bytes(child) / 2 * 9 / 10 / sizeof(float) *
        sizeof(float);
    for (std::uint64_t off = 0; off < kBytes; off += chunk_bytes) {
      const std::uint64_t len = std::min(chunk_bytes, kBytes - off);

      nd::ScopedBuffer in_c(dm, len, child);
      nd::ScopedBuffer out_c(dm, len, child);
      // storage -> DRAM
      dm.move_data_down(*in_c, *in_root, {.size = len, .src_offset = off});

      ctx.northup_spawn(child, [&](nc::ExecContext& leaf) {
        // At the leaf: query the attached processors and launch a kernel
        // on the GPU, one workgroup per 4 KiB tile.
        auto* gpu = leaf.get_device(nt::ProcessorType::Gpu);
        float* src = reinterpret_cast<float*>(dm.host_view(*in_c));
        float* dst = reinterpret_cast<float*>(dm.host_view(*out_c));
        const std::uint64_t n = len / sizeof(float);
        const auto groups =
            static_cast<std::uint32_t>((n + 1023) / 1024);
        ndv::KernelCost cost{static_cast<double>(n),
                             2.0 * static_cast<double>(len)};
        std::vector<northup::sim::TaskId> deps;
        if (in_c->ready != northup::sim::kInvalidTask) {
          deps.push_back(in_c->ready);
        }
        auto launch = gpu->launch(
            "square", groups,
            [=](ndv::WorkGroupCtx& wg) {
              const std::uint64_t lo = wg.group_id * 1024ULL;
              const std::uint64_t hi = std::min<std::uint64_t>(lo + 1024, n);
              for (std::uint64_t i = lo; i < hi; ++i) dst[i] = src[i] * src[i];
            },
            cost, deps);
        out_c->ready = launch.task;
      });

      // DRAM -> storage; in_c/out_c release at scope exit.
      dm.move_data_up(*out_root, *out_c, {.size = len, .dst_offset = off});
      ++chunks_processed;
    }
  });

  // --- Verify and report.
  std::vector<float> output(kN);
  dm.read_to_host(output.data(), *out_root, kBytes);
  std::uint64_t bad = 0;
  for (std::uint64_t i = 0; i < kN; ++i) {
    if (output[i] != input[i] * input[i]) ++bad;
  }

  std::printf("processed %llu chunks, %llu mismatches\n",
              static_cast<unsigned long long>(chunks_processed),
              static_cast<unsigned long long>(bad));
  std::printf("virtual execution time: %s (spawns: %llu)\n",
              northup::util::format_seconds(rt.makespan()).c_str(),
              static_cast<unsigned long long>(rt.spawn_count()));
  nc::dump_observability(rt, flags);
  return bad == 0 ? 0 : 1;
}
