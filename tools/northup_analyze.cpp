// northup-analyze — offline what-if profiler for flight-recorder runs.
//
// Usage:
//   northup-analyze <run.nulog>                  summary + validation
//   northup-analyze <run.nulog> --report         full report (critical
//                                                path + what-if re-cost)
//   northup-analyze <run.nulog> --trace-out=f    Perfetto-loadable Chrome
//                                                trace of the measured run
//   northup-analyze <run.nulog> --summary-json=f machine-readable per-phase
//                                                critical-path attribution +
//                                                per-edge measured bandwidths
//                                                (the plan::Calibrator's
//                                                input contract)
//   northup-analyze <run.nulog> --whatif         §V-D storage sweep only
//
// Produce a .nulog with Runtime::write_event_log(), the --eventlog-out
// flag on any example/benchmark harness, or EventLog::write_file().
#include <cstdio>
#include <exception>
#include <string>

#include "northup/analyze/analyze.hpp"
#include "northup/util/flags.hpp"

namespace na = northup::analyze;
namespace no = northup::obs;
namespace nu = northup::util;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <run.nulog> [--report] [--whatif] "
               "[--trace-out=<file>] [--summary-json=<file>]\n",
               prog);
  return 2;
}

void print_summary(const no::RecordedRun& run) {
  const na::Summary s = na::summarize(run);
  std::printf("events %llu  spans %llu  threads %u  wall %.6f s  dropped %llu\n",
              static_cast<unsigned long long>(s.events),
              static_cast<unsigned long long>(s.spans), s.thread_count,
              s.wall_seconds, static_cast<unsigned long long>(s.dropped));
  std::printf(
      "moves %llu (%llu B)  io %llu  compute %llu  cache %llu/%llu  "
      "retries %llu  breaker %llu  allocs %llu\n",
      static_cast<unsigned long long>(s.moves),
      static_cast<unsigned long long>(s.bytes_moved),
      static_cast<unsigned long long>(s.ios),
      static_cast<unsigned long long>(s.computes),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.cache_misses),
      static_cast<unsigned long long>(s.retries),
      static_cast<unsigned long long>(s.breaker_transitions),
      static_cast<unsigned long long>(s.allocs));
  const na::ValidationReport v = na::validate(run);
  std::printf("validation: %s\n", v.ok ? "ok" : "PROBLEMS");
  for (const std::string& p : v.problems) {
    std::printf("  ! %s\n", p.c_str());
  }
}

void print_whatif(const no::RecordedRun& run) {
  const na::WhatIf w = na::whatif_storage(run);
  std::printf("what-if storage re-cost: measured io %.6f s of %.6f s total\n",
              w.measured_io_s, w.measured_total_s);
  std::printf("  %-16s io %.6f s  overall %.6f s\n", w.identity.label.c_str(),
              w.identity.io_time, w.identity.overall_time);
  for (const auto& p : w.sweep) {
    std::printf("  %-16s io %.6f s  overall %.6f s\n", p.label.c_str(),
                p.io_time, p.overall_time);
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const nu::Flags flags(argc, argv);
    if (flags.positional().size() != 1) return usage(argv[0]);
    const no::RecordedRun run = no::EventLog::read_file(flags.positional()[0]);

    if (flags.get_bool("report")) {
      std::printf("%s", na::report(run).c_str());
    } else {
      print_summary(run);
      if (flags.get_bool("whatif")) print_whatif(run);
    }

    const std::string trace = flags.get("trace-out");
    if (!trace.empty()) {
      na::write_chrome_trace(run, trace);
      std::printf("wrote Chrome trace to %s\n", trace.c_str());
    }

    const std::string summary = flags.get("summary-json");
    if (!summary.empty()) {
      na::write_summary_json(run, summary);
      std::printf("wrote summary JSON to %s\n", summary.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "northup-analyze: %s\n", e.what());
    return 1;
  }
}
