// northup-serve — the HTTP observability plane as a binary: a
// JobService wrapped in the embedded HttpServer, with a MetricsSampler
// feeding /timeseries and the dashboard.
//
// Usage:
//   northup-serve                          serve on 127.0.0.1:<ephemeral>
//   northup-serve --port=8080              fixed port
//   northup-serve --bind=0.0.0.0           non-local bind (read the
//                                          security note in docs/http.md
//                                          first: no TLS, no auth)
//   northup-serve --run-once=<spec.json>   no server: run one job spec
//                                          in-process through the exact
//                                          parse path POST /jobs uses and
//                                          print the job JSON (the CI
//                                          smoke leg compares its
//                                          result_hash with the HTTP run)
//
// Service shape knobs: --levels=2|3, --svc-workers=N, --queue-depth=N,
// --policy=fifo|wfq, --overload (enable the overload controller),
// --http-workers=N, --sample-ms=N, --sample-max=N.
//
// The first stdout line in serve mode is
//   northup-serve listening on http://<bind>:<port>
// which is the contract scripts/serve_smoke.py parses the ephemeral
// port out of.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "northup/http/control_plane.hpp"
#include "northup/http/server.hpp"
#include "northup/obs/sampler.hpp"
#include "northup/svc/service.hpp"
#include "northup/util/assert.hpp"
#include "northup/util/flags.hpp"
#include "northup/util/json.hpp"

namespace nh = northup::http;
namespace ns = northup::svc;
namespace nu = northup::util;

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }

ns::ServiceOptions service_options(const nu::Flags& flags) {
  ns::ServiceOptions options;
  options.machine_levels =
      static_cast<int>(flags.get_int("levels", options.machine_levels));
  NU_CHECK(options.machine_levels == 2 || options.machine_levels == 3,
           "--levels must be 2 or 3");
  options.workers = static_cast<std::size_t>(
      flags.get_int("svc-workers", static_cast<std::int64_t>(options.workers)));
  options.max_queue_depth = static_cast<std::size_t>(flags.get_int(
      "queue-depth", static_cast<std::int64_t>(options.max_queue_depth)));
  const std::string policy = flags.get("policy", "wfq");
  NU_CHECK(policy == "fifo" || policy == "wfq",
           "--policy must be fifo or wfq");
  options.policy = policy == "fifo" ? ns::SchedulingPolicy::Fifo
                                    : ns::SchedulingPolicy::WeightedFair;
  options.overload.enable = flags.get_bool("overload");
  return options;
}

int run_once(ns::JobService& service, const std::string& spec_path) {
  std::ifstream in(spec_path);
  NU_CHECK(in.good(), "cannot open job spec " + spec_path);
  std::ostringstream text;
  text << in.rdbuf();
  const nu::json::Value spec = nu::json::parse(text.str(), spec_path);
  ns::JobHandle handle =
      service.submit(nh::ControlPlane::parse_job_request(spec));
  handle.wait();
  std::printf("%s\n", nh::ControlPlane::job_json(handle.id(), handle).c_str());
  return handle.state() == ns::JobState::Done ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const nu::Flags flags(argc, argv);
    ns::JobService service(service_options(flags));

    const std::string spec = flags.get("run-once");
    if (!spec.empty()) return run_once(service, spec);

    northup::obs::MetricsSampler sampler(
        service.metrics(),
        std::chrono::milliseconds(flags.get_int("sample-ms", 250)),
        static_cast<std::size_t>(flags.get_int("sample-max", 2048)),
        /*include_counters=*/true);
    sampler.start();

    nh::ServerOptions server_options;
    server_options.bind_address = flags.get("bind", "127.0.0.1");
    server_options.port =
        static_cast<std::uint16_t>(flags.get_int("port", 0));
    server_options.workers = static_cast<std::size_t>(
        flags.get_int("http-workers",
                      static_cast<std::int64_t>(server_options.workers)));
    nh::HttpServer server(server_options, &service.metrics());
    nh::ControlPlane plane(service, &sampler);
    plane.mount(server);
    server.start();

    std::printf("northup-serve listening on %s\n", server.url().c_str());
    std::printf("  dashboard %s/dashboard  metrics %s/metrics\n",
                server.url().c_str(), server.url().c_str());
    std::fflush(stdout);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    while (!g_stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }

    std::printf("northup-serve: shutting down\n");
    server.stop();
    sampler.stop();
    service.wait_all();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "northup-serve: %s\n", e.what());
    return 1;
  }
}
