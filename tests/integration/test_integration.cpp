// Cross-module integration tests: config-file-driven systems, the
// portability claim (identical application code and results across
// topologies), capacity stress, resource-leak checks, and trace/stat
// consistency.
#include <gtest/gtest.h>

#include <vector>

#include "northup/algos/csr_adaptive.hpp"
#include "northup/algos/gemm.hpp"
#include "northup/algos/hotspot.hpp"
#include "northup/topo/config.hpp"
#include "northup/topo/presets.hpp"

namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;

namespace {

nt::PresetOptions tight() {
  nt::PresetOptions o;
  o.root_capacity = 64ULL << 20;
  o.staging_capacity = 256ULL << 10;
  o.device_capacity = 160ULL << 10;
  return o;
}

}  // namespace

TEST(Integration, ConfigFileToVerifiedGemm) {
  // A machine described entirely in the text format, instantiated and
  // driven through the full out-of-core pipeline.
  const auto tree = nt::parse_config(R"(
node disk kind=hdd cap=64M
node mem parent=disk kind=dram cap=256K
proc cpu0 node=mem type=cpu gflops=17 membw=15G cus=4
proc gpu0 node=mem type=gpu gflops=405 membw=18G cus=8 localmem=32K
)");
  nc::Runtime rt(tree);
  na::GemmConfig cfg;
  cfg.n = 128;
  cfg.verify_samples = 64;
  const auto stats = na::gemm_northup(rt, cfg);
  EXPECT_TRUE(stats.verified) << stats.max_rel_err;
  EXPECT_GT(stats.breakdown.io, 0.0);
}

TEST(Integration, HotspotResultsIdenticalAcrossTopologies) {
  // §I's portability claim: "Once the code is written, it should work
  // across heterogeneous architectures." The stencil result is a pure
  // per-cell function of the inputs, so every topology must produce the
  // exact same bytes no matter how the runtime decomposed the grid.
  na::HotspotConfig cfg;
  cfg.n = 64;
  cfg.iterations = 2;
  cfg.verify = true;

  std::vector<double> errs;
  {
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, tight()));
    errs.push_back(na::hotspot_northup(rt, cfg).max_rel_err);
  }
  {
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Hdd, tight()));
    errs.push_back(na::hotspot_northup(rt, cfg).max_rel_err);
  }
  {
    nc::Runtime rt(nt::dgpu_three_level(nm::StorageKind::Ssd, tight()));
    errs.push_back(na::hotspot_northup(rt, cfg).max_rel_err);
  }
  {
    nc::Runtime rt(nt::deep_four_level(tight()));
    errs.push_back(na::hotspot_northup(rt, cfg).max_rel_err);
  }
  // Identical to the reference on every topology — not merely "close".
  for (double e : errs) EXPECT_EQ(e, 0.0);
}

TEST(Integration, SpmvResultsIdenticalAcrossTopologies) {
  na::SpmvConfig cfg;
  cfg.rows = 2048;
  cfg.avg_nnz = 8;
  cfg.pattern = na::SpmvConfig::Pattern::PowerLaw;

  std::vector<double> errs;
  for (int which = 0; which < 3; ++which) {
    nt::TopoTree tree = which == 0
                            ? nt::apu_two_level(nm::StorageKind::Ssd, tight())
                            : which == 1
                                  ? nt::dgpu_three_level(nm::StorageKind::Ssd,
                                                         tight())
                                  : nt::deep_four_level(tight());
    nc::Runtime rt(std::move(tree));
    errs.push_back(na::spmv_northup(rt, cfg).max_rel_err);
  }
  for (double e : errs) EXPECT_EQ(e, 0.0);
}

TEST(Integration, TightCapacityIncreasesChunksButStaysCorrect) {
  na::GemmConfig cfg;
  cfg.n = 128;
  cfg.verify_samples = 32;

  auto loose = tight();
  loose.staging_capacity = 1ULL << 20;
  nc::Runtime rt_loose(nt::apu_two_level(nm::StorageKind::Ssd, loose));
  const auto s_loose = na::gemm_northup(rt_loose, cfg);

  auto cramped = tight();
  cramped.staging_capacity = 48ULL << 10;  // barely fits 3 x 32x32 + strip
  nc::Runtime rt_cramped(nt::apu_two_level(nm::StorageKind::Ssd, cramped));
  const auto s_cramped = na::gemm_northup(rt_cramped, cfg);

  EXPECT_TRUE(s_loose.verified);
  EXPECT_TRUE(s_cramped.verified);
  EXPECT_GT(s_cramped.spawns, s_loose.spawns);
}

TEST(Integration, NoStorageLeaksAfterRuns) {
  nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, tight()));
  na::GemmConfig gemm_cfg;
  gemm_cfg.n = 64;
  gemm_cfg.verify_samples = 0;
  na::gemm_northup(rt, gemm_cfg);

  na::HotspotConfig hs_cfg;
  hs_cfg.n = 64;
  hs_cfg.verify = false;
  na::hotspot_northup(rt, hs_cfg);

  for (nt::NodeId id = 0; id < rt.tree().node_count(); ++id) {
    EXPECT_EQ(rt.dm().storage(id).used(), 0u)
        << "leak on node " << rt.tree().node(id).name;
  }
}

TEST(Integration, IoTraceMatchesStorageStats) {
  nc::RuntimeOptions ropts;
  ropts.trace_io = true;
  nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, tight()), ropts);
  na::HotspotConfig cfg;
  cfg.n = 64;
  cfg.verify = false;
  na::hotspot_northup(rt, cfg);

  const auto& storage = rt.dm().storage(rt.tree().root());
  const auto& trace = storage.trace();
  ASSERT_FALSE(trace.empty());
  std::uint64_t traced_read = 0, traced_written = 0;
  for (const auto& rec : trace) {
    (rec.is_write ? traced_written : traced_read) += rec.bytes;
  }
  EXPECT_EQ(traced_read, storage.stats().bytes_read);
  EXPECT_EQ(traced_written, storage.stats().bytes_written);
}

TEST(Integration, DeterministicAcrossRepeatedRuns) {
  na::SpmvConfig cfg;
  cfg.rows = 2048;
  cfg.avg_nnz = 8;
  cfg.verify = false;

  auto run_once = [&] {
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, tight()));
    return na::spmv_northup(rt, cfg);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.bytes_moved, b.bytes_moved);
  EXPECT_EQ(a.spawns, b.spawns);
}

TEST(Integration, InMemoryBeatsOutOfCoreOnEveryApp) {
  // The global sanity property behind Fig 6.
  auto big = tight();
  big.staging_capacity = 32ULL << 20;

  {
    na::GemmConfig cfg;
    cfg.n = 256;
    cfg.verify_samples = 0;
    nc::Runtime im(nt::apu_two_level(nm::StorageKind::Ssd, big));
    nc::Runtime ooc(nt::apu_two_level(nm::StorageKind::Ssd, tight()));
    EXPECT_LT(na::gemm_inmemory(im, cfg).makespan,
              na::gemm_northup(ooc, cfg).makespan);
  }
  {
    na::HotspotConfig cfg;
    cfg.n = 256;
    cfg.verify = false;
    nc::Runtime im(nt::apu_two_level(nm::StorageKind::Ssd, big));
    nc::Runtime ooc(nt::apu_two_level(nm::StorageKind::Ssd, tight()));
    EXPECT_LT(na::hotspot_inmemory(im, cfg).makespan,
              na::hotspot_northup(ooc, cfg).makespan);
  }
  {
    na::SpmvConfig cfg;
    cfg.rows = 8192;
    cfg.verify = false;
    nc::Runtime im(nt::apu_two_level(nm::StorageKind::Ssd, big));
    nc::Runtime ooc(nt::apu_two_level(nm::StorageKind::Ssd, tight()));
    EXPECT_LT(na::spmv_inmemory(im, cfg).makespan,
              na::spmv_northup(ooc, cfg).makespan);
  }
}
