// Property test: the recursive machinery works on *randomly generated*
// topologies, not just the presets — arbitrary depth, branching, and
// capacity ladders. For each seeded tree we run grid_map over a dataset
// and check exact results, leak-freedom, and level invariants.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "northup/core/grid.hpp"
#include "northup/topo/presets.hpp"
#include "northup/util/rng.hpp"

namespace nc = northup::core;
namespace nt = northup::topo;
namespace nm = northup::mem;
namespace ns = northup::sim;
namespace nu = northup::util;

namespace {

/// Builds a random tree: a spine (first-child chain) of depth 2-4 with
/// shrinking capacities, plus random side branches. Every leaf gets a
/// processor; the spine leaf gets the GPU.
nt::TopoTree random_tree(std::uint64_t seed) {
  nu::Xoshiro256 rng(seed);
  nt::TopoTree tree;

  const std::uint64_t root_cap = 32ULL << 20;
  tree.add_root("root", {nm::StorageKind::Ssd, root_cap,
                         ns::ModelPresets::ssd(), 0});

  const int depth = static_cast<int>(2 + rng.bounded(3));  // 2..4 levels
  nt::NodeId spine = tree.root();
  std::uint64_t cap = 256ULL << 10;
  std::vector<nt::NodeId> all_inner{spine};
  for (int level = 1; level <= depth; ++level) {
    const auto kind = level == depth && rng.bounded(2) == 0
                          ? nm::StorageKind::DeviceMem
                          : nm::StorageKind::Dram;
    const auto model = kind == nm::StorageKind::DeviceMem
                           ? ns::ModelPresets::pcie_opencl()
                           : ns::ModelPresets::dram();
    spine = tree.add_child(spine, "spine" + std::to_string(level),
                           {kind, cap, model, level});
    all_inner.push_back(spine);
    cap = std::max<std::uint64_t>(cap / (1 + rng.bounded(3)), 24ULL << 10);
  }
  tree.attach_processor(spine, nt::preset_apu_gpu());

  // Random side branches with CPU leaves.
  const auto branches = rng.bounded(3);
  for (std::uint64_t b = 0; b < branches; ++b) {
    const auto parent = all_inner[rng.bounded(all_inner.size())];
    const auto leaf = tree.add_child(
        parent, "side" + std::to_string(b),
        {nm::StorageKind::Dram, 64ULL << 10, ns::ModelPresets::dram(),
         99});
    tree.attach_processor(leaf, nt::preset_cpu());
  }
  tree.validate();
  return tree;
}

}  // namespace

class RandomTopology : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopology, GridMapIsExactAndLeakFree) {
  nc::Runtime rt(random_tree(GetParam()));

  constexpr std::uint64_t kRows = 48, kCols = 48;
  constexpr std::uint64_t kBytes = kRows * kCols * 4;
  auto& dm = rt.dm();
  auto in = dm.alloc(kBytes, rt.tree().root());
  auto out = dm.alloc(kBytes, rt.tree().root());
  std::vector<float> data(kRows * kCols);
  std::iota(data.begin(), data.end(), 1.0f);
  dm.write_from_host(in, data.data(), kBytes);

  rt.run([&](nc::ExecContext& ctx) {
    nc::GridJob job{kRows, kCols, 4, 0.85};
    nc::grid_map(ctx, job, in, out,
                 [&](nc::ExecContext& leaf, northup::data::Buffer& cin,
                     northup::data::Buffer& cout, std::uint64_t rows,
                     std::uint64_t cols) {
                   auto* proc = leaf.get_devices().front();
                   float* src =
                       reinterpret_cast<float*>(dm.host_view(cin));
                   float* dst =
                       reinterpret_cast<float*>(dm.host_view(cout));
                   const std::uint64_t n = rows * cols;
                   proc->launch(
                       "x3", 1,
                       [=](northup::device::WorkGroupCtx&) {
                         for (std::uint64_t i = 0; i < n; ++i) {
                           dst[i] = 3.0f * src[i];
                         }
                       },
                       {static_cast<double>(n), 8.0 * n});
                 });
  });

  std::vector<float> got(kRows * kCols);
  dm.read_to_host(got.data(), out, kBytes);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(got[i], 3.0f * data[i]) << "seed " << GetParam() << " at " << i;
  }
  dm.release(in);
  dm.release(out);

  // Leak-freedom and level invariants on the random shape.
  for (nt::NodeId id = 0; id < rt.tree().node_count(); ++id) {
    EXPECT_EQ(dm.storage(id).used(), 0u);
    const auto parent = rt.tree().get_parent(id);
    if (parent != nt::kInvalidNode) {
      EXPECT_EQ(rt.tree().get_level(id), rt.tree().get_level(parent) + 1);
    }
  }
  EXPECT_GT(rt.makespan(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopology,
                         ::testing::Range<std::uint64_t>(1, 13));
