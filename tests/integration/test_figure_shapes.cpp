// Figure-shape regression tests: pin the qualitative results the paper
// reports so a future model or runtime change that silently breaks the
// reproduction fails CI instead of shipping. Uses the same configurations
// as the bench harnesses (bench/bench_common.hpp).
#include <gtest/gtest.h>

#include "bench_common.hpp"
#include "northup/memsim/projection.hpp"
#include "northup/sched/steal_sim.hpp"
#include "northup/util/stats.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;

namespace {

double inmem_makespan(const char* app) {
  auto opts = std::string(app) == "gemm"
                  ? nb::gemm_outofcore_options(nm::StorageKind::Ssd)
                  : std::string(app) == "hotspot"
                        ? nb::hotspot_outofcore_options(nm::StorageKind::Ssd)
                        : nb::spmv_outofcore_options(nm::StorageKind::Ssd);
  nc::Runtime rt(
      nt::apu_two_level(nm::StorageKind::Ssd, nb::inmemory_options(opts)));
  if (std::string(app) == "gemm") {
    return na::gemm_inmemory(rt, nb::fig_gemm()).makespan;
  }
  if (std::string(app) == "hotspot") {
    return na::hotspot_inmemory(rt, nb::fig_hotspot()).makespan;
  }
  return na::spmv_inmemory(rt, nb::fig_spmv()).makespan;
}

double outofcore_makespan(const char* app, nm::StorageKind kind) {
  if (std::string(app) == "gemm") {
    nc::Runtime rt(nt::apu_two_level(kind, nb::gemm_outofcore_options(kind)));
    return na::gemm_northup(rt, nb::fig_gemm()).makespan;
  }
  if (std::string(app) == "hotspot") {
    nc::Runtime rt(
        nt::apu_two_level(kind, nb::hotspot_outofcore_options(kind)));
    return na::hotspot_northup(rt, nb::fig_hotspot()).makespan;
  }
  nc::Runtime rt(nt::apu_two_level(kind, nb::spmv_outofcore_options(kind)));
  return na::spmv_northup(rt, nb::fig_spmv()).makespan;
}

}  // namespace

TEST(FigureShapes, Fig6HeadlineInBand) {
  // Paper: SSD out-of-core averages 17% slower than in-memory.
  std::vector<double> norms;
  for (const char* app : {"gemm", "hotspot", "spmv"}) {
    norms.push_back(outofcore_makespan(app, nm::StorageKind::Ssd) /
                    inmem_makespan(app));
  }
  const double headline = northup::util::geomean(norms) - 1.0;
  EXPECT_GE(headline, 0.10);
  EXPECT_LE(headline, 0.30);
}

TEST(FigureShapes, Fig6DiskSubstantiallySlowerThanSsd) {
  // Paper: disk costs 2-2.5x for the memory-bound apps.
  for (const char* app : {"hotspot", "spmv"}) {
    const double ssd = outofcore_makespan(app, nm::StorageKind::Ssd);
    const double hdd = outofcore_makespan(app, nm::StorageKind::Hdd);
    const double im = inmem_makespan(app);
    EXPECT_GT(hdd / im, 2.0) << app;
    EXPECT_LT(hdd / im, 3.5) << app;
    EXPECT_GT(hdd, 1.5 * ssd) << app;
  }
}

TEST(FigureShapes, Fig7GpuShareRisesDiskToSsd) {
  for (auto make_opts :
       {nb::hotspot_outofcore_options, nb::spmv_outofcore_options}) {
    double shares[2];
    int i = 0;
    for (auto kind : {nm::StorageKind::Hdd, nm::StorageKind::Ssd}) {
      nc::Runtime rt(nt::apu_two_level(kind, make_opts(kind)));
      const auto stats =
          make_opts == nb::hotspot_outofcore_options
              ? na::hotspot_northup(rt, nb::fig_hotspot())
              : na::spmv_northup(rt, nb::fig_spmv());
      shares[i++] = stats.breakdown.shares().at("gpu");
    }
    EXPECT_GT(shares[1], shares[0] * 1.5);  // ssd share >> disk share
  }
}

TEST(FigureShapes, Fig9ProjectionGainsInBand) {
  // Paper: up to ~65% I/O gain moving 1400/600 -> 3500/2100.
  nc::RuntimeOptions ropts;
  ropts.trace_io = true;
  nc::Runtime rt(
      nt::apu_two_level(nm::StorageKind::Ssd,
                        nb::hotspot_outofcore_options(nm::StorageKind::Ssd)),
      ropts);
  const auto base = na::hotspot_northup(rt, nb::fig_hotspot());
  const auto& trace = rt.dm().storage(rt.tree().root()).trace();
  auto fast = nm::fig9_storage_sweep().back();
  fast.access_latency_s *= nb::kModelScale;
  const double fast_io = nm::replay_trace_time(trace, fast);
  const double gain = 1.0 - fast_io / base.breakdown.io;
  EXPECT_GE(gain, 0.55);
  EXPECT_LE(gain, 0.75);
}

TEST(FigureShapes, Fig11ThirtyTwoQueuesBestAndInBand) {
  // Mirror of the bench model: GPU throughput saturates with queue count.
  auto gpu_total = [](std::size_t q) {
    return static_cast<double>(q) / (static_cast<double>(q) + 8.0);
  };
  auto run_point = [&](std::size_t q, bool with_cpu) {
    northup::sched::StealSim sim;
    std::vector<std::size_t> workers;
    for (std::size_t i = 0; i < q; ++i) {
      workers.push_back(sim.add_worker({"g", gpu_total(q) / q, true}));
    }
    if (with_cpu) {
      for (int t = 0; t < 4; ++t) {
        workers.push_back(sim.add_worker({"c", 0.0625, true}));
      }
    }
    std::size_t next = 0;
    for (int i = 0; i < 16 * 32; ++i) {
      sim.add_task(workers[next++ % workers.size()], 8192.0);
    }
    return sim.run(true).makespan;
  };
  const double baseline = run_point(32, false);
  double best_improvement = -1.0;
  std::size_t best_q = 0;
  for (std::size_t q : {8u, 16u, 32u}) {
    const double improvement = baseline / run_point(q, true) - 1.0;
    if (improvement > best_improvement) {
      best_improvement = improvement;
      best_q = q;
    }
  }
  EXPECT_EQ(best_q, 32u);
  EXPECT_GE(best_improvement, 0.10);
  EXPECT_LE(best_improvement, 0.35);
}

TEST(FigureShapes, RuntimeOverheadUnderOnePercent) {
  for (const char* app : {"gemm", "hotspot", "spmv"}) {
    nc::Runtime rt(nt::apu_two_level(
        nm::StorageKind::Ssd,
        std::string(app) == "gemm"
            ? nb::gemm_outofcore_options(nm::StorageKind::Ssd)
            : std::string(app) == "hotspot"
                  ? nb::hotspot_outofcore_options(nm::StorageKind::Ssd)
                  : nb::spmv_outofcore_options(nm::StorageKind::Ssd)));
    const auto stats =
        std::string(app) == "gemm"
            ? na::gemm_northup(rt, nb::fig_gemm())
            : std::string(app) == "hotspot"
                  ? na::hotspot_northup(rt, nb::fig_hotspot())
                  : na::spmv_northup(rt, nb::fig_spmv());
    EXPECT_LT(stats.breakdown.runtime_overhead_fraction(), 0.01) << app;
  }
}
