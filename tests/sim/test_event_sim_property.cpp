// Property tests for EventSim: on randomly generated task graphs, the
// schedule must satisfy the defining invariants regardless of shape.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "northup/sim/event_sim.hpp"
#include "northup/util/rng.hpp"

namespace ns = northup::sim;
namespace nu = northup::util;

namespace {

struct RandomSchedule {
  // unique_ptr: EventSim is pinned (internal mutex), but the builder
  // returns the schedule by value.
  std::unique_ptr<ns::EventSim> sim_ptr = std::make_unique<ns::EventSim>();
  ns::EventSim& sim = *sim_ptr;
  std::vector<ns::TaskId> tasks;
};

/// Builds a random DAG: `n` tasks over `r` resources, each depending on
/// up to 3 random earlier tasks, with durations in [0, 10).
RandomSchedule build_random(std::uint64_t seed, std::size_t n,
                            std::size_t r) {
  RandomSchedule s;
  nu::Xoshiro256 rng(seed);
  std::vector<ns::ResourceId> resources;
  for (std::size_t i = 0; i < r; ++i) {
    resources.push_back(s.sim.add_resource("res" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<ns::TaskId> deps;
    if (!s.tasks.empty()) {
      const auto dep_count = rng.bounded(4);
      for (std::uint64_t d = 0; d < dep_count; ++d) {
        deps.push_back(s.tasks[rng.bounded(s.tasks.size())]);
      }
    }
    const auto resource = resources[rng.bounded(resources.size())];
    const double duration = rng.uniform(0.0, 10.0);
    const char* phase = (i % 3 == 0) ? "io" : (i % 3 == 1) ? "gpu" : "cpu";
    s.tasks.push_back(
        s.sim.add_task("t" + std::to_string(i), phase, resource, duration,
                       std::move(deps)));
  }
  return s;
}

}  // namespace

class EventSimProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventSimProperty, StartsRespectDependencies) {
  auto s = build_random(GetParam(), 200, 4);
  for (ns::TaskId id : s.tasks) {
    const auto timing = s.sim.timing(id);
    EXPECT_GE(timing.finish, timing.start);
    for (ns::TaskId dep : s.sim.task(id).deps) {
      EXPECT_GE(timing.start, s.sim.timing(dep).finish)
          << "task " << id << " started before dep " << dep;
    }
  }
}

TEST_P(EventSimProperty, ResourcesNeverOverlap) {
  auto s = build_random(GetParam(), 200, 4);
  // Group intervals per resource; within a resource, sorted by id they
  // must be non-overlapping and in order (FIFO execution).
  std::map<ns::ResourceId, double> last_finish;
  for (ns::TaskId id : s.tasks) {
    const auto& spec = s.sim.task(id);
    const auto timing = s.sim.timing(id);
    auto it = last_finish.find(spec.resource);
    if (it != last_finish.end()) {
      EXPECT_GE(timing.start, it->second - 1e-12);
    }
    last_finish[spec.resource] = timing.finish;
  }
}

TEST_P(EventSimProperty, MakespanBounds) {
  auto s = build_random(GetParam(), 200, 4);
  // Lower bound: the busiest resource. Upper bound: the serial sum.
  double serial = 0.0;
  double busiest = 0.0;
  for (std::size_t r = 0; r < s.sim.resource_count(); ++r) {
    const double busy = s.sim.resource_busy(static_cast<ns::ResourceId>(r));
    serial += busy;
    busiest = std::max(busiest, busy);
  }
  EXPECT_GE(s.sim.makespan() + 1e-9, busiest);
  EXPECT_LE(s.sim.makespan(), serial + 1e-9);
}

TEST_P(EventSimProperty, PhaseTotalsEqualResourceTotals) {
  auto s = build_random(GetParam(), 200, 4);
  double phase_sum = 0.0;
  for (const auto& [phase, total] : s.sim.phase_totals()) phase_sum += total;
  double resource_sum = 0.0;
  for (std::size_t r = 0; r < s.sim.resource_count(); ++r) {
    resource_sum += s.sim.resource_busy(static_cast<ns::ResourceId>(r));
  }
  EXPECT_NEAR(phase_sum, resource_sum, 1e-9);
}

TEST_P(EventSimProperty, CriticalPathIsContiguousAndEndsAtMakespan) {
  auto s = build_random(GetParam(), 200, 4);
  const auto path = s.sim.critical_path();
  ASSERT_FALSE(path.empty());
  EXPECT_NEAR(s.sim.timing(path.back()).finish, s.sim.makespan(), 1e-12);
  // Each step starts exactly when its predecessor on the path finishes.
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_NEAR(s.sim.timing(path[i]).start,
                s.sim.timing(path[i - 1]).finish, 1e-9);
  }
  // The path's first task starts at 0 (nothing blocked it).
  EXPECT_DOUBLE_EQ(s.sim.timing(path.front()).start, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventSimProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u,
                                           99u, 12345u));
