// EventSim tests: FIFO resource semantics, dependency scheduling,
// overlap, phase totals, critical path, and model arithmetic.
#include <gtest/gtest.h>

#include "northup/sim/event_sim.hpp"
#include "northup/sim/models.hpp"

namespace ns = northup::sim;

TEST(EventSim, EmptyHasZeroMakespan) {
  ns::EventSim sim;
  EXPECT_DOUBLE_EQ(sim.makespan(), 0.0);
  EXPECT_TRUE(sim.critical_path().empty());
}

TEST(EventSim, TasksOnOneResourceSerialize) {
  ns::EventSim sim;
  const auto r = sim.add_resource("io");
  const auto t1 = sim.add_task("a", "io", r, 1.0);
  const auto t2 = sim.add_task("b", "io", r, 2.0);
  EXPECT_DOUBLE_EQ(sim.timing(t1).finish, 1.0);
  EXPECT_DOUBLE_EQ(sim.timing(t2).start, 1.0);
  EXPECT_DOUBLE_EQ(sim.makespan(), 3.0);
}

TEST(EventSim, TasksOnDistinctResourcesOverlap) {
  ns::EventSim sim;
  const auto io = sim.add_resource("io");
  const auto gpu = sim.add_resource("gpu");
  sim.add_task("read", "io", io, 2.0);
  sim.add_task("kernel", "gpu", gpu, 3.0);
  EXPECT_DOUBLE_EQ(sim.makespan(), 3.0);  // not 5.0
}

TEST(EventSim, DependencyDelaysStart) {
  ns::EventSim sim;
  const auto io = sim.add_resource("io");
  const auto gpu = sim.add_resource("gpu");
  const auto read = sim.add_task("read", "io", io, 2.0);
  const auto kernel = sim.add_task("kernel", "gpu", gpu, 1.0, {read});
  EXPECT_DOUBLE_EQ(sim.timing(kernel).start, 2.0);
  EXPECT_DOUBLE_EQ(sim.makespan(), 3.0);
}

TEST(EventSim, PipelineOverlapsStages) {
  // Classic double buffering: read(i+1) runs while compute(i) runs.
  ns::EventSim sim;
  const auto io = sim.add_resource("io");
  const auto gpu = sim.add_resource("gpu");
  ns::TaskId prev_kernel = ns::kInvalidTask;
  for (int i = 0; i < 4; ++i) {
    const auto read = sim.add_task("read", "io", io, 1.0);
    std::vector<ns::TaskId> deps{read};
    const auto kernel = sim.add_task("kernel", "gpu", gpu, 1.0, deps);
    prev_kernel = kernel;
  }
  // Serial would be 8; pipelined is 1 (first read) + 4 kernels = 5.
  EXPECT_DOUBLE_EQ(sim.makespan(), 5.0);
  EXPECT_EQ(sim.timing(prev_kernel).finish, 5.0);
}

TEST(EventSim, PhaseTotalsAggregate) {
  ns::EventSim sim;
  const auto r = sim.add_resource("x");
  sim.add_task("a", "io", r, 1.0);
  sim.add_task("b", "io", r, 2.0);
  sim.add_task("c", "gpu", r, 4.0);
  const auto totals = sim.phase_totals();
  EXPECT_DOUBLE_EQ(totals.at("io"), 3.0);
  EXPECT_DOUBLE_EQ(totals.at("gpu"), 4.0);
}

TEST(EventSim, ResourceBusyCountsDurations) {
  ns::EventSim sim;
  const auto a = sim.add_resource("a");
  const auto b = sim.add_resource("b");
  sim.add_task("t1", "p", a, 1.5);
  sim.add_task("t2", "p", b, 2.5);
  EXPECT_DOUBLE_EQ(sim.resource_busy(a), 1.5);
  EXPECT_DOUBLE_EQ(sim.resource_busy(b), 2.5);
}

TEST(EventSim, CriticalPathFollowsBlockingChain) {
  ns::EventSim sim;
  const auto io = sim.add_resource("io");
  const auto gpu = sim.add_resource("gpu");
  const auto read = sim.add_task("read", "io", io, 5.0);
  sim.add_task("small", "gpu", gpu, 0.1);
  const auto kernel = sim.add_task("kernel", "gpu", gpu, 1.0, {read});
  const auto path = sim.critical_path();
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], read);
  EXPECT_EQ(path[1], kernel);
}

TEST(EventSim, RejectsForwardDependencies) {
  ns::EventSim sim;
  const auto r = sim.add_resource("x");
  EXPECT_THROW(sim.add_task("bad", "p", r, 1.0, {5}), northup::util::Error);
}

TEST(EventSim, RejectsUnknownResource) {
  ns::EventSim sim;
  EXPECT_THROW(sim.add_task("bad", "p", 3, 1.0), northup::util::Error);
}

TEST(EventSim, ResetKeepsResources) {
  ns::EventSim sim;
  const auto r = sim.add_resource("x");
  sim.add_task("a", "p", r, 1.0);
  sim.reset_tasks();
  EXPECT_DOUBLE_EQ(sim.makespan(), 0.0);
  EXPECT_EQ(sim.task_count(), 0u);
  const auto t = sim.add_task("b", "p", r, 1.0);
  EXPECT_DOUBLE_EQ(sim.timing(t).start, 0.0);  // resource clock reset too
}

TEST(BandwidthModel, ReadWriteAsymmetry) {
  ns::BandwidthModel m{1000.0, 500.0, 0.0};
  EXPECT_DOUBLE_EQ(m.read_time(1000), 1.0);
  EXPECT_DOUBLE_EQ(m.write_time(1000), 2.0);
}

TEST(BandwidthModel, AccessLatencyScalesWithFragmentation) {
  ns::BandwidthModel m{1e9, 1e9, 1e-3};
  const double one = m.read_time(1000, 1);
  const double many = m.read_time(1000, 100);
  EXPECT_NEAR(many - one, 99e-3, 1e-9);
}

TEST(RooflineModel, ComputeVsMemoryBound) {
  ns::RooflineModel m{100.0, 10.0, 0.0};
  // High intensity: compute-bound.
  EXPECT_DOUBLE_EQ(m.kernel_time(1000.0, 1.0), 10.0);
  // Low intensity: memory-bound.
  EXPECT_DOUBLE_EQ(m.kernel_time(1.0, 1000.0), 100.0);
  EXPECT_DOUBLE_EQ(m.ridge_point(), 10.0);
}

TEST(RooflineModel, OccupancyPenalty) {
  ns::RooflineModel m{100.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(m.kernel_time(1000.0, 1.0, 0.5), 20.0);
}

TEST(ModelPresets, SaneOrderings) {
  EXPECT_GT(ns::ModelPresets::ssd().read_bytes_per_s,
            ns::ModelPresets::hdd().read_bytes_per_s);
  EXPECT_GT(ns::ModelPresets::dram().read_bytes_per_s,
            ns::ModelPresets::nvm().read_bytes_per_s);
  EXPECT_GT(ns::ModelPresets::dgpu().flops_per_s,
            ns::ModelPresets::cpu().flops_per_s);
  EXPECT_LT(ns::ModelPresets::hdd().read_bytes_per_s,
            ns::ModelPresets::nvm().read_bytes_per_s);
}
