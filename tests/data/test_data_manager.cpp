// DataManager tests: Table I semantics, kind-dispatched move costs,
// multi-hop staging, 2-D block moves, ready-task chaining, and a
// parameterized round-trip sweep over every (src, dst) storage-kind pair.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "northup/data/data_manager.hpp"
#include "northup/io/posix_file.hpp"
#include "northup/topo/presets.hpp"

namespace nd = northup::data;
namespace nt = northup::topo;
namespace nm = northup::mem;
namespace ns = northup::sim;
namespace ni = northup::io;

namespace {

/// Fixture with a 4-node tree covering all storage kinds:
/// ssd root -> { dram -> device, nvm }.
class DataManagerTest : public ::testing::Test {
 protected:
  DataManagerTest() : dir_("dm-test") {
    constexpr std::uint64_t kCap = 1 << 20;
    root_ = tree_.add_root(
        "ssd", {nm::StorageKind::Ssd, kCap, ns::ModelPresets::ssd(), 0});
    dram_ = tree_.add_child(
        root_, "dram", {nm::StorageKind::Dram, kCap,
                        ns::ModelPresets::dram(), 1});
    dev_ = tree_.add_child(
        dram_, "dev", {nm::StorageKind::DeviceMem, kCap,
                       ns::ModelPresets::pcie3_x16(), 2});
    nvm_ = tree_.add_child(
        root_, "nvm", {nm::StorageKind::Nvm, kCap,
                       ns::ModelPresets::nvm(), 3});
    tree_.validate();

    dm_ = std::make_unique<nd::DataManager>(tree_, &sim_);
    dm_->bind_storage(root_, std::make_unique<nm::FileStorage>(
                                 "ssd", nm::StorageKind::Ssd, kCap,
                                 ns::ModelPresets::ssd(), dir_.path()));
    dm_->bind_storage(dram_, std::make_unique<nm::HostStorage>(
                                 "dram", nm::StorageKind::Dram, kCap,
                                 ns::ModelPresets::dram()));
    dm_->bind_storage(dev_, std::make_unique<nm::HostStorage>(
                                "dev", nm::StorageKind::DeviceMem, kCap,
                                ns::ModelPresets::pcie3_x16()));
    dm_->bind_storage(nvm_, std::make_unique<nm::HostStorage>(
                                "nvm", nm::StorageKind::Nvm, kCap,
                                ns::ModelPresets::nvm()));
  }

  nt::NodeId node_for(const std::string& name) {
    return tree_.find(name);
  }

  ni::TempDir dir_;
  nt::TopoTree tree_;
  ns::EventSim sim_;
  std::unique_ptr<nd::DataManager> dm_;
  nt::NodeId root_, dram_, dev_, nvm_;
};

}  // namespace

TEST_F(DataManagerTest, AllocChargesSetupAndTracksReady) {
  auto buf = dm_->alloc(1024, dram_);
  EXPECT_TRUE(buf.valid());
  EXPECT_NE(buf.ready, ns::kInvalidTask);
  EXPECT_GT(sim_.phase_totals().at("setup"), 0.0);
  dm_->release(buf);
  EXPECT_FALSE(buf.valid());
}

TEST_F(DataManagerTest, FileToDramIsIoPhase) {
  auto src = dm_->alloc(1024, root_);
  auto dst = dm_->alloc(1024, dram_);
  dm_->move_data(dst, src, {.size = 1024});
  const auto totals = sim_.phase_totals();
  EXPECT_GT(totals.at("io"), 0.0);
  EXPECT_EQ(totals.count("transfer"), 0u);
  dm_->release(src);
  dm_->release(dst);
}

TEST_F(DataManagerTest, DramToDeviceIsTransferPhase) {
  auto src = dm_->alloc(1024, dram_);
  auto dst = dm_->alloc(1024, dev_);
  dm_->move_data(dst, src, {.size = 1024});
  EXPECT_GT(sim_.phase_totals().at("transfer"), 0.0);
  dm_->release(src);
  dm_->release(dst);
}

TEST_F(DataManagerTest, FileToDeviceIsStagedTwoLegs) {
  auto src = dm_->alloc(1024, root_);
  auto dst = dm_->alloc(4096, dev_);
  const auto before = sim_.task_count();
  dm_->move_data(dst, src, {.size = 1024, .dst_offset = 128});
  // Two legs: an io read plus a DMA write, serialized.
  EXPECT_EQ(sim_.task_count(), before + 2);
  const auto totals = sim_.phase_totals();
  EXPECT_GT(totals.at("io"), 0.0);
  EXPECT_GT(totals.at("transfer"), 0.0);
  dm_->release(src);
  dm_->release(dst);
}

TEST_F(DataManagerTest, MoveDataDownValidatesParentage) {
  auto at_root = dm_->alloc(64, root_);
  auto at_dev = dm_->alloc(64, dev_);
  // dev's parent is dram, not root.
  EXPECT_THROW(dm_->move_data_down(at_dev, at_root, {.size = 64}),
               northup::util::Error);
  auto at_dram = dm_->alloc(64, dram_);
  EXPECT_NO_THROW(dm_->move_data_down(at_dram, at_root, {.size = 64}));
  EXPECT_NO_THROW(dm_->move_data_up(at_root, at_dram, {.size = 64}));
  dm_->release(at_root);
  dm_->release(at_dev);
  dm_->release(at_dram);
}

TEST_F(DataManagerTest, ReadyChainingSerializesDependentMoves) {
  auto a = dm_->alloc(1024, root_);
  auto b = dm_->alloc(1024, dram_);
  auto c = dm_->alloc(1024, dev_);
  dm_->move_data(b, a, {.size = 1024});  // io
  const auto t1 = b.ready;
  dm_->move_data(c, b, {.size = 1024});  // transfer, must start after t1
  ASSERT_NE(c.ready, ns::kInvalidTask);
  EXPECT_GE(sim_.timing(c.ready).start, sim_.timing(t1).finish);
  for (auto* buf : {&a, &b, &c}) dm_->release(*buf);
}

TEST_F(DataManagerTest, Block2dMovesStridedData) {
  // 4x4 source matrix at dram, extract the 2x2 center into a dense block.
  auto src = dm_->alloc(16 * 4, dram_);
  auto dst = dm_->alloc(4 * 4, dram_);
  std::vector<float> m(16);
  std::iota(m.begin(), m.end(), 0.0f);
  dm_->write_from_host(src, m.data(), m.size() * 4);
  dm_->move_block_2d(dst, src, 2, 2 * 4, 0, 2 * 4, (1 * 4 + 1) * 4, 4 * 4);
  float got[4];
  dm_->read_to_host(got, dst, sizeof(got));
  EXPECT_FLOAT_EQ(got[0], 5.0f);
  EXPECT_FLOAT_EQ(got[1], 6.0f);
  EXPECT_FLOAT_EQ(got[2], 9.0f);
  EXPECT_FLOAT_EQ(got[3], 10.0f);
  dm_->release(src);
  dm_->release(dst);
}

TEST_F(DataManagerTest, FragmentedFileMovesCostMoreThanContiguous) {
  auto src = dm_->alloc(128 << 10, root_);
  auto dst1 = dm_->alloc(64 << 10, dram_);
  auto dst2 = dm_->alloc(64 << 10, dram_);
  sim_.reset_tasks();
  src.ready = dst1.ready = dst2.ready = ns::kInvalidTask;

  dm_->move_data(dst1, src, {.size = 64 << 10});
  const double contiguous = sim_.phase_totals().at("io");
  // Same bytes gathered as 256 strided rows (pitch 512 > row 256) — one
  // I/O call per fragment on the file side.
  dm_->move_block_2d(dst2, src, 256, 256, 0, 256, 0, 512);
  const double total = sim_.phase_totals().at("io");
  EXPECT_GT(total - contiguous, contiguous);
  for (auto* buf : {&src, &dst1, &dst2}) dm_->release(*buf);
}

TEST_F(DataManagerTest, DenseSideOfBlockMoveIsOneRequest) {
  // Contiguous file source scattered into a pitched DRAM destination:
  // the file read is a single sequential request, so the cost matches a
  // plain contiguous move.
  auto src = dm_->alloc(64 << 10, root_);
  auto dst1 = dm_->alloc(64 << 10, dram_);
  auto dst2 = dm_->alloc(128 << 10, dram_);
  sim_.reset_tasks();
  src.ready = dst1.ready = dst2.ready = ns::kInvalidTask;

  dm_->move_data(dst1, src, {.size = 64 << 10});
  const double contiguous = sim_.phase_totals().at("io");
  dm_->move_block_2d(dst2, src, 256, 256, 0, 512, 0, 256);
  const double total = sim_.phase_totals().at("io");
  EXPECT_NEAR(total - contiguous, contiguous, contiguous * 1e-9);
  for (auto* buf : {&src, &dst1, &dst2}) dm_->release(*buf);
}

TEST_F(DataManagerTest, FillZeroesBuffer) {
  auto buf = dm_->alloc(64, dram_);
  dm_->fill(buf, std::byte{0xab}, 64);
  std::uint8_t got[64];
  dm_->read_to_host(got, buf, 64);
  for (auto v : got) EXPECT_EQ(v, 0xab);
  dm_->release(buf);
}

TEST_F(DataManagerTest, HostViewRequiresHostStorage) {
  auto at_dram = dm_->alloc(64, dram_);
  EXPECT_NE(dm_->host_view(at_dram), nullptr);
  auto at_file = dm_->alloc(64, root_);
  EXPECT_THROW(dm_->host_view(at_file), northup::util::Error);
  dm_->release(at_dram);
  dm_->release(at_file);
}

TEST_F(DataManagerTest, BytesMovedAccumulates) {
  auto a = dm_->alloc(1024, root_);
  auto b = dm_->alloc(1024, dram_);
  const auto before = dm_->bytes_moved();
  dm_->move_data(b, a, {.size = 512});
  EXPECT_EQ(dm_->bytes_moved(), before + 512);
  dm_->release(a);
  dm_->release(b);
}

TEST_F(DataManagerTest, UnboundNodeRejected) {
  nt::TopoTree other;
  other.add_root("x", {nm::StorageKind::Dram, 1024,
                       ns::ModelPresets::dram(), 0});
  nd::DataManager empty(other, nullptr);
  EXPECT_THROW(empty.alloc(64, 0), northup::util::Error);
}

TEST_F(DataManagerTest, MismatchedBackendKindRejected) {
  EXPECT_THROW(
      dm_->bind_storage(root_, std::make_unique<nm::HostStorage>(
                                   "wrong", nm::StorageKind::Dram, 1024,
                                   ns::ModelPresets::dram())),
      northup::util::Error);
}

// --- Parameterized round-trip over every storage-kind pair. ---

using KindPair = std::tuple<const char*, const char*>;

class MovePairTest : public DataManagerTest,
                     public ::testing::WithParamInterface<KindPair> {};

TEST_P(MovePairTest, RoundTripsThroughPair) {
  const auto [src_name, dst_name] = GetParam();
  const auto src_node = node_for(src_name);
  const auto dst_node = node_for(dst_name);
  auto src = dm_->alloc(512, src_node);
  auto dst = dm_->alloc(512, dst_node);

  std::vector<std::uint8_t> payload(512);
  std::iota(payload.begin(), payload.end(), 0);
  dm_->write_from_host(src, payload.data(), payload.size());
  dm_->move_data(dst, src, {.size = 512});

  std::vector<std::uint8_t> got(512);
  dm_->read_to_host(got.data(), dst, got.size());
  EXPECT_EQ(got, payload);

  dm_->release(src);
  dm_->release(dst);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, MovePairTest,
    ::testing::Combine(::testing::Values("ssd", "dram", "dev", "nvm"),
                       ::testing::Values("ssd", "dram", "dev", "nvm")),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_to_" +
             std::get<1>(info.param);
    });
