// TypedBuffer<T> tests: element-based API, RAII release, move semantics,
// and interop with the untyped Table-I interface.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "northup/data/typed_buffer.hpp"
#include "northup/memsim/storage.hpp"
#include "northup/topo/tree.hpp"

namespace nd = northup::data;
namespace nt = northup::topo;
namespace nm = northup::mem;
namespace ns = northup::sim;

namespace {

class TypedBufferTest : public ::testing::Test {
 protected:
  TypedBufferTest() {
    root_ = tree_.add_root(
        "dram", {nm::StorageKind::Dram, 1 << 20, ns::ModelPresets::dram(),
                 0});
    tree_.validate();
    dm_ = std::make_unique<nd::DataManager>(tree_, nullptr);
    dm_->bind_storage(root_, std::make_unique<nm::HostStorage>(
                                 "dram", nm::StorageKind::Dram, 1 << 20,
                                 ns::ModelPresets::dram()));
  }

  nt::TopoTree tree_;
  std::unique_ptr<nd::DataManager> dm_;
  nt::NodeId root_;
};

}  // namespace

TEST_F(TypedBufferTest, ElementRoundTrip) {
  nd::TypedBuffer<double> buf(*dm_, 100, root_);
  EXPECT_EQ(buf.count(), 100u);
  EXPECT_EQ(buf.bytes(), 800u);

  std::vector<double> data(100);
  std::iota(data.begin(), data.end(), 0.5);
  buf.write(data.data(), data.size());
  std::vector<double> back(100);
  buf.read(back.data(), back.size());
  EXPECT_EQ(back, data);
}

TEST_F(TypedBufferTest, OffsetAccessIsElementIndexed) {
  nd::TypedBuffer<std::uint32_t> buf(*dm_, 16, root_);
  const std::uint32_t v = 0xabcd1234;
  buf.write(&v, 1, 7);
  std::uint32_t got = 0;
  buf.read(&got, 1, 7);
  EXPECT_EQ(got, v);
  // Element 7 of a uint32 buffer lives at byte offset 28.
  std::uint32_t raw = 0;
  dm_->read_to_host(&raw, buf.raw(), 4, 28);
  EXPECT_EQ(raw, v);
}

TEST_F(TypedBufferTest, OutOfRangeAccessRejected) {
  nd::TypedBuffer<float> buf(*dm_, 8, root_);
  float x = 0.0f;
  EXPECT_THROW(buf.write(&x, 1, 8), northup::util::Error);
  EXPECT_THROW(buf.read(&x, 9, 0), northup::util::Error);
}

TEST_F(TypedBufferTest, RaiiReleasesStorage) {
  const auto before = dm_->storage(root_).used();
  {
    nd::TypedBuffer<float> buf(*dm_, 256, root_);
    EXPECT_EQ(dm_->storage(root_).used(), before + 1024);
  }
  EXPECT_EQ(dm_->storage(root_).used(), before);
}

TEST_F(TypedBufferTest, MoveTransfersOwnership) {
  nd::TypedBuffer<float> a(*dm_, 64, root_);
  const auto used = dm_->storage(root_).used();
  nd::TypedBuffer<float> b(std::move(a));
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(dm_->storage(root_).used(), used);  // no double accounting
  b.reset();
  EXPECT_EQ(dm_->storage(root_).used(), used - 256);
}

TEST_F(TypedBufferTest, CopyFromMovesElements) {
  nd::TypedBuffer<std::int64_t> src(*dm_, 10, root_);
  nd::TypedBuffer<std::int64_t> dst(*dm_, 10, root_);
  std::vector<std::int64_t> data(10);
  std::iota(data.begin(), data.end(), -5);
  src.write(data.data(), data.size());

  dst.copy_from(src, 4, 2, 3);  // dst[2..5] = src[3..6]
  std::vector<std::int64_t> got(4);
  dst.read(got.data(), 4, 2);
  EXPECT_EQ(got, (std::vector<std::int64_t>{-2, -1, 0, 1}));
}

TEST_F(TypedBufferTest, HostPtrSeesWrites) {
  nd::TypedBuffer<float> buf(*dm_, 4, root_);
  const float vals[4] = {1, 2, 3, 4};
  buf.write(vals, 4);
  const float* p = buf.host_ptr();
  EXPECT_FLOAT_EQ(p[2], 3.0f);
}
