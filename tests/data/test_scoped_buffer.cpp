// ScopedBuffer RAII semantics: release on scope exit (capacity restored),
// move-only ownership transfer, detach, and idempotent reset — plus the
// CopySpec move overloads and their offset handling.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "northup/data/scoped_buffer.hpp"
#include "northup/memsim/storage.hpp"
#include "northup/topo/tree.hpp"

namespace nd = northup::data;
namespace nm = northup::mem;
namespace ns = northup::sim;
namespace nt = northup::topo;

namespace {

/// Two byte-addressable nodes (nvm root -> dram child): enough for
/// alloc/release accounting and parent<->child moves without file I/O.
class ScopedBufferTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kCap = 1 << 20;

  ScopedBufferTest() {
    root_ = tree_.add_root(
        "nvm", {nm::StorageKind::Nvm, kCap, ns::ModelPresets::nvm(), 0});
    dram_ = tree_.add_child(
        root_, "dram",
        {nm::StorageKind::Dram, kCap, ns::ModelPresets::dram(), 1});
    tree_.validate();
    dm_ = std::make_unique<nd::DataManager>(tree_, &sim_);
    dm_->bind_storage(root_, std::make_unique<nm::HostStorage>(
                                 "nvm", nm::StorageKind::Nvm, kCap,
                                 ns::ModelPresets::nvm()));
    dm_->bind_storage(dram_, std::make_unique<nm::HostStorage>(
                                 "dram", nm::StorageKind::Dram, kCap,
                                 ns::ModelPresets::dram()));
  }

  std::uint64_t available(nt::NodeId node) {
    return dm_->storage(node).available();
  }

  nt::TopoTree tree_;
  ns::EventSim sim_;
  std::unique_ptr<nd::DataManager> dm_;
  nt::NodeId root_ = 0, dram_ = 0;
};

}  // namespace

TEST_F(ScopedBufferTest, ReleasesOnScopeExit) {
  const auto before = available(dram_);
  {
    nd::ScopedBuffer buf(*dm_, 4096, dram_);
    EXPECT_TRUE(buf.valid());
    EXPECT_EQ(buf.size(), 4096u);
    EXPECT_EQ(buf.node(), dram_);
    EXPECT_LT(available(dram_), before);
  }
  EXPECT_EQ(available(dram_), before);
}

TEST_F(ScopedBufferTest, MoveTransfersOwnership) {
  const auto before = available(dram_);
  {
    nd::ScopedBuffer a(*dm_, 4096, dram_);
    nd::ScopedBuffer b(std::move(a));
    EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): probing
    EXPECT_TRUE(b.valid());
    EXPECT_LT(available(dram_), before);

    nd::ScopedBuffer c;
    c = std::move(b);
    EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move): probing
    EXPECT_TRUE(c.valid());
    EXPECT_LT(available(dram_), before);  // still exactly one allocation
  }
  EXPECT_EQ(available(dram_), before);
}

TEST_F(ScopedBufferTest, MoveAssignReleasesThePreviousBuffer) {
  const auto before = available(dram_);
  nd::ScopedBuffer a(*dm_, 4096, dram_);
  {
    nd::ScopedBuffer b(*dm_, 8192, dram_);
    a = std::move(b);  // a's original 4096 must release here
  }
  EXPECT_EQ(available(dram_), before - 8192);
  a.reset();
  EXPECT_EQ(available(dram_), before);
  a.reset();  // idempotent
  EXPECT_EQ(available(dram_), before);
}

TEST_F(ScopedBufferTest, DetachRelinquishesOwnership) {
  const auto before = available(dram_);
  nd::Buffer raw;
  {
    nd::ScopedBuffer buf(*dm_, 4096, dram_);
    raw = buf.detach();
    EXPECT_FALSE(buf.valid());
  }
  // Scope exit must NOT have released the detached allocation.
  EXPECT_EQ(available(dram_), before - 4096);
  dm_->release(raw);
  EXPECT_EQ(available(dram_), before);
}

TEST_F(ScopedBufferTest, AdoptsARawHandle) {
  const auto before = available(dram_);
  nd::Buffer raw = dm_->alloc(4096, dram_);
  {
    nd::ScopedBuffer buf(*dm_, raw);
    EXPECT_TRUE(buf.valid());
  }
  EXPECT_EQ(available(dram_), before);
}

TEST_F(ScopedBufferTest, TableICallsGoThroughDereference) {
  nd::ScopedBuffer src(*dm_, 4096, root_);
  nd::ScopedBuffer dst(*dm_, 4096, dram_);
  std::vector<std::uint8_t> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  dm_->write_from_host(*src, data.data(), data.size());
  dm_->move_data_down(*dst, *src, {.size = 4096});
  std::vector<std::uint8_t> back(4096);
  dm_->read_to_host(back.data(), *dst, back.size());
  EXPECT_EQ(back, data);
}

TEST_F(ScopedBufferTest, CopySpecOffsetsAreHonored) {
  nd::ScopedBuffer src(*dm_, 8192, root_);
  nd::ScopedBuffer dst(*dm_, 4096, dram_);
  std::vector<std::uint8_t> data(8192);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  dm_->write_from_host(*src, data.data(), data.size());

  dm_->move_data(*dst, *src, {.size = 2048, .src_offset = 1024});

  std::vector<std::uint8_t> back(2048);
  dm_->read_to_host(back.data(), *dst, 2048);
  EXPECT_TRUE(std::memcmp(back.data(), data.data() + 1024, 2048) == 0);
}
