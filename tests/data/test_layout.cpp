// Layout-transforming move tests (§VI extension): transpose and
// AoS<->SoA round trips, cost charging, and error cases.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "northup/data/layout.hpp"
#include "northup/memsim/storage.hpp"
#include "northup/topo/tree.hpp"

namespace nd = northup::data;
namespace nt = northup::topo;
namespace nm = northup::mem;
namespace ns = northup::sim;

namespace {

class LayoutTest : public ::testing::Test {
 protected:
  LayoutTest() {
    constexpr std::uint64_t kCap = 1 << 20;
    root_ = tree_.add_root(
        "dram", {nm::StorageKind::Dram, kCap, ns::ModelPresets::dram(), 0});
    child_ = tree_.add_child(
        root_, "dev", {nm::StorageKind::DeviceMem, kCap,
                       ns::ModelPresets::pcie3_x16(), 1});
    tree_.validate();
    dm_ = std::make_unique<nd::DataManager>(tree_, &sim_);
    dm_->bind_storage(root_, std::make_unique<nm::HostStorage>(
                                 "dram", nm::StorageKind::Dram, kCap,
                                 ns::ModelPresets::dram()));
    dm_->bind_storage(child_, std::make_unique<nm::HostStorage>(
                                  "dev", nm::StorageKind::DeviceMem, kCap,
                                  ns::ModelPresets::pcie3_x16()));
  }

  nt::TopoTree tree_;
  ns::EventSim sim_;
  std::unique_ptr<nd::DataManager> dm_;
  nt::NodeId root_, child_;
};

}  // namespace

TEST_F(LayoutTest, TransposeMovesCorrectImage) {
  constexpr std::uint64_t kRows = 3, kCols = 5;
  auto src = dm_->alloc(kRows * kCols * 4, root_);
  auto dst = dm_->alloc(kRows * kCols * 4, child_);
  std::vector<float> m(kRows * kCols);
  std::iota(m.begin(), m.end(), 0.0f);
  dm_->write_from_host(src, m.data(), m.size() * 4);

  nd::move_transposed(*dm_, dst, src, kRows, kCols, 4);

  std::vector<float> t(kRows * kCols);
  dm_->read_to_host(t.data(), dst, t.size() * 4);
  for (std::uint64_t r = 0; r < kRows; ++r) {
    for (std::uint64_t c = 0; c < kCols; ++c) {
      EXPECT_EQ(t[c * kRows + r], m[r * kCols + c]);
    }
  }
  dm_->release(src);
  dm_->release(dst);
}

TEST_F(LayoutTest, DoubleTransposeIsIdentity) {
  constexpr std::uint64_t kRows = 7, kCols = 4;
  auto a = dm_->alloc(kRows * kCols * 4, root_);
  auto b = dm_->alloc(kRows * kCols * 4, child_);
  auto c = dm_->alloc(kRows * kCols * 4, root_);
  std::vector<float> m(kRows * kCols);
  std::iota(m.begin(), m.end(), 100.0f);
  dm_->write_from_host(a, m.data(), m.size() * 4);

  nd::move_transposed(*dm_, b, a, kRows, kCols, 4);
  nd::move_transposed(*dm_, c, b, kCols, kRows, 4);

  std::vector<float> got(kRows * kCols);
  dm_->read_to_host(got.data(), c, got.size() * 4);
  EXPECT_EQ(got, m);
  for (auto* buf : {&a, &b, &c}) dm_->release(*buf);
}

TEST_F(LayoutTest, AosSoaRoundTrip) {
  // 6 records x 3 float fields.
  constexpr std::uint64_t kRecords = 6, kFields = 3;
  auto aos = dm_->alloc(kRecords * kFields * 4, root_);
  auto soa = dm_->alloc(kRecords * kFields * 4, child_);
  auto back = dm_->alloc(kRecords * kFields * 4, root_);
  std::vector<float> data(kRecords * kFields);
  std::iota(data.begin(), data.end(), 0.0f);
  dm_->write_from_host(aos, data.data(), data.size() * 4);

  nd::move_reinterleaved(*dm_, soa, aos, kRecords, kFields, 4,
                         nd::LayoutTransform::AosToSoa);
  std::vector<float> soa_image(kRecords * kFields);
  dm_->read_to_host(soa_image.data(), soa, soa_image.size() * 4);
  // Field f of record r lands at f*records + r.
  for (std::uint64_t r = 0; r < kRecords; ++r) {
    for (std::uint64_t f = 0; f < kFields; ++f) {
      EXPECT_EQ(soa_image[f * kRecords + r], data[r * kFields + f]);
    }
  }

  nd::move_reinterleaved(*dm_, back, soa, kRecords, kFields, 4,
                         nd::LayoutTransform::SoaToAos);
  std::vector<float> got(kRecords * kFields);
  dm_->read_to_host(got.data(), back, got.size() * 4);
  EXPECT_EQ(got, data);
  for (auto* buf : {&aos, &soa, &back}) dm_->release(*buf);
}

TEST_F(LayoutTest, TransformChargesCpuPhase) {
  auto src = dm_->alloc(64 * 64 * 4, root_);
  auto dst = dm_->alloc(64 * 64 * 4, child_);
  nd::move_transposed(*dm_, dst, src, 64, 64, 4);
  const auto totals = sim_.phase_totals();
  EXPECT_GT(totals.at("cpu"), 0.0);       // the permutation pass
  EXPECT_GT(totals.at("transfer"), 0.0);  // the movement legs
  EXPECT_NE(dst.ready, ns::kInvalidTask);
  dm_->release(src);
  dm_->release(dst);
}

TEST_F(LayoutTest, RejectsBadArguments) {
  auto src = dm_->alloc(64, root_);
  auto dst = dm_->alloc(64, child_);
  EXPECT_THROW(nd::move_transposed(*dm_, dst, src, 0, 4, 4),
               northup::util::Error);
  EXPECT_THROW(nd::move_reinterleaved(*dm_, dst, src, 4, 2, 4,
                                      nd::LayoutTransform::Transpose),
               northup::util::Error);
  dm_->release(src);
  dm_->release(dst);
}
