// ControlPlane tests: the full HTTP observability plane mounted over a
// real JobService — /metrics while jobs run, the job API round trip
// (including the bit-identical-hash contract and typed cancellation
// over SSE), batched submission, /healthz, and /timeseries.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "northup/http/control_plane.hpp"
#include "northup/http/server.hpp"
#include "northup/obs/sampler.hpp"
#include "northup/svc/service.hpp"
#include "northup/util/assert.hpp"
#include "northup/util/json.hpp"
#include "support/http_client.hpp"

namespace nh = northup::http;
namespace nj = northup::util::json;
namespace nsv = northup::svc;
using northup::testhttp::Client;
using northup::testhttp::Response;

namespace {

nsv::ServiceOptions small_machine() {
  nsv::ServiceOptions opts;
  opts.machine_levels = 2;
  opts.machine.root_capacity = 64ULL << 20;
  opts.machine.staging_capacity = 8ULL << 20;
  opts.workers = 1;  // deterministic queueing for the cancel tests
  return opts;
}

constexpr const char* kGemm64 =
    R"({"kind": "gemm", "name": "t", "config": {"n": 64, "verify_samples": 8}})";

/// Serves one plane over one service; tears down in order.
struct Plane {
  explicit Plane(nsv::ServiceOptions opts = small_machine(),
                 northup::obs::MetricsSampler* sampler = nullptr)
      : service(std::move(opts)), plane(service, sampler) {
    nh::ServerOptions server_options;
    server_options.idle_timeout_ms = 1000;
    server.emplace(server_options, &service.metrics());
    plane.mount(*server);
    server->start();
  }

  Response get(const std::string& target) {
    Client client(server->port());
    return client.request("GET", target);
  }

  nj::Value get_json(const std::string& target) {
    const Response r = get(target);
    EXPECT_EQ(r.status, 200) << target << ": " << r.body;
    return nj::parse(r.body, target);
  }

  nsv::JobService service;
  nh::ControlPlane plane;
  std::optional<nh::HttpServer> server;
};

std::uint64_t wait_done(Plane& p, std::uint64_t id,
                        const char* want = "done") {
  for (int spin = 0; spin < 600; ++spin) {
    const nj::Value doc = p.get_json("/jobs/" + std::to_string(id));
    if (doc.str("state") == want) return id;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "job " << id << " never reached " << want;
  return id;
}

}  // namespace

TEST(ControlPlane, MetricsParseWhileJobsExecute) {
  Plane p;
  Client submit(p.server->port());
  const Response posted = submit.request("POST", "/jobs", kGemm64);
  ASSERT_EQ(posted.status, 200) << posted.body;
  const nj::Value doc = nj::parse(posted.body, "POST /jobs");
  const std::uint64_t id = doc.at("jobs").array.at(0).u64("id");
  ASSERT_GT(id, 0u);

  // Scrape immediately — jobs are executing right now. The text must
  // be well-formed exposition: every line a comment or name+value.
  const Response metrics = p.get("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers.at("content-type").find("text/plain"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("# TYPE svc_jobs_submitted counter"),
            std::string::npos)
      << metrics.body.substr(0, 500);
  std::istringstream lines(metrics.body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << "bad line: " << line;
  }

  wait_done(p, id);
  const nj::Value done = p.get_json("/jobs/" + std::to_string(id));
  EXPECT_TRUE(done.at("stats").boolean_or("verified", false)) << posted.body;
  EXPECT_EQ(done.at("stats").str("result_hash").substr(0, 2), "0x");
}

TEST(ControlPlane, HttpJobHashMatchesInProcessRun) {
  Plane p;
  Client submit(p.server->port());
  const Response posted = submit.request("POST", "/jobs", kGemm64);
  ASSERT_EQ(posted.status, 200);
  const std::uint64_t id =
      nj::parse(posted.body, "post").at("jobs").array.at(0).u64("id");
  wait_done(p, id);
  const std::string http_hash =
      p.get_json("/jobs/" + std::to_string(id)).at("stats").str("result_hash");

  // Same spec through the same parser, straight into the service.
  nsv::JobHandle local = p.service.submit(
      nh::ControlPlane::parse_job_request(nj::parse(kGemm64, "spec")));
  local.wait();
  ASSERT_EQ(local.result().state, nsv::JobState::Done);
  char expect[32];
  std::snprintf(expect, sizeof expect, "0x%016llx",
                static_cast<unsigned long long>(
                    local.result().stats.result_hash));
  EXPECT_EQ(http_hash, expect);
}

TEST(ControlPlane, BatchSubmitAdmitsInOrderUnderOneLockPass) {
  Plane p;
  Client submit(p.server->port());
  const std::string batch = std::string("{\"jobs\": [") + kGemm64 + ", " +
                            kGemm64 + ", " + kGemm64 + "]}";
  const Response posted = submit.request("POST", "/jobs", batch);
  ASSERT_EQ(posted.status, 200) << posted.body;
  const nj::Value doc = nj::parse(posted.body, "batch");
  ASSERT_EQ(doc.at("jobs").array.size(), 3u);
  std::uint64_t prev = 0;
  for (const nj::Value& job : doc.at("jobs").array) {
    const std::uint64_t id = job.u64("id");
    EXPECT_GT(id, prev) << "batch ids must be issued in request order";
    prev = id;
    EXPECT_NE(job.str("state"), "");
  }
  for (const nj::Value& job : doc.at("jobs").array) {
    wait_done(p, job.u64("id"));
  }
}

TEST(ControlPlane, CancelQueuedJobYieldsTypedTerminalOverSse) {
  Plane p;
  // Worker count is 1: the second job stays queued behind the first.
  Client submit(p.server->port());
  const std::string slow =
      R"({"kind": "gemm", "config": {"n": 256, "verify_samples": 0}})";
  const std::string batch =
      "{\"jobs\": [" + slow + ", " + slow + ", " + slow + "]}";
  const Response posted = submit.request("POST", "/jobs", batch);
  ASSERT_EQ(posted.status, 200);
  const nj::Value doc = nj::parse(posted.body, "batch");
  const std::uint64_t victim = doc.at("jobs").array.at(2).u64("id");

  // Attach the SSE watcher, then cancel over the API.
  Client watcher(p.server->port());
  watcher.send_raw("GET /jobs/" + std::to_string(victim) +
                   "/events HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::string head = watcher.read_until("\r\n\r\n");
  EXPECT_NE(head.find("text/event-stream"), std::string::npos);
  const std::string first = watcher.read_until("\n\n");
  EXPECT_NE(first.find("event: state"), std::string::npos) << first;

  Client cancel(p.server->port());
  const Response deleted =
      cancel.request("DELETE", "/jobs/" + std::to_string(victim));
  ASSERT_EQ(deleted.status, 200) << deleted.body;
  EXPECT_TRUE(nj::parse(deleted.body, "del").boolean_or("cancelled", false));

  // The stream must deliver the cancelled transition and then the
  // typed result event before closing.
  std::string stream;
  for (int events = 0; events < 8; ++events) {
    const std::string event = watcher.read_until("\n\n");
    stream += event;
    if (event.find("event: result") != std::string::npos) break;
  }
  EXPECT_NE(stream.find("\"state\": \"cancelled\""), std::string::npos)
      << stream;
  EXPECT_NE(stream.find("event: result"), std::string::npos) << stream;

  // Poll agrees with the stream.
  const nj::Value after = p.get_json("/jobs/" + std::to_string(victim));
  EXPECT_EQ(after.str("state"), "cancelled");
  const nj::Value list = p.get_json("/jobs");
  EXPECT_GE(list.at("jobs").array.size(), 3u);
}

TEST(ControlPlane, RejectedJobIsFetchableWithTypedReason) {
  nsv::ServiceOptions opts = small_machine();
  opts.machine.root_capacity = 1ULL << 20;  // gemm n=512 can never fit
  Plane p(opts);
  Client submit(p.server->port());
  const Response posted = submit.request(
      "POST", "/jobs", R"({"kind": "gemm", "config": {"n": 512}})");
  ASSERT_EQ(posted.status, 200);
  const nj::Value job =
      nj::parse(posted.body, "post").at("jobs").array.at(0);
  EXPECT_EQ(job.str("state"), "rejected");
  EXPECT_EQ(job.str("reject"), "footprint_too_large");
  // Registered despite immediate rejection: GET by id still works.
  const nj::Value fetched = p.get_json("/jobs/" + std::to_string(job.u64("id")));
  EXPECT_EQ(fetched.str("reject"), "footprint_too_large");
}

TEST(ControlPlane, SubmitErrorsAreTyped400s) {
  Plane p;
  Client client(p.server->port());
  Response r = client.request("POST", "/jobs", "{not json");
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("malformed JSON from POST /jobs"),
            std::string::npos)
      << r.body;
  r = client.request("POST", "/jobs", R"({"kind": "sort"})");
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("unknown job kind"), std::string::npos);
  r = client.request("POST", "/jobs",
                     R"({"kind": "gemm", "weight": -1})");
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("weight"), std::string::npos);
  r = client.request("POST", "/jobs", R"({"jobs": []})");
  EXPECT_EQ(r.status, 400);
  EXPECT_EQ(client.request("GET", "/jobs/oops").status, 400);
  EXPECT_EQ(client.request("GET", "/jobs/12345").status, 404);
}

TEST(ControlPlane, HealthzReportsServiceState) {
  Plane p;
  const nj::Value h = p.get_json("/healthz");
  EXPECT_EQ(h.str("status"), "ok");
  EXPECT_EQ(h.str("brownout"), "normal");
  EXPECT_DOUBLE_EQ(h.num("brownout_level", -1.0), 0.0);
  EXPECT_TRUE(h.has("queue_depth"));
  EXPECT_TRUE(h.has("jobs_active"));
  EXPECT_TRUE(h.has("active_tenants"));
  EXPECT_TRUE(h.at("breakers").is_object());
}

TEST(ControlPlane, TimeseriesServesSamplerRings) {
  nsv::ServiceOptions opts = small_machine();
  nsv::JobService service(std::move(opts));
  northup::obs::MetricsSampler sampler(service.metrics(),
                                       std::chrono::milliseconds(50),
                                       /*max_samples=*/32,
                                       /*include_counters=*/true);
  nh::ControlPlane plane(service, &sampler);
  nh::HttpServer server({}, &service.metrics());
  plane.mount(server);
  server.start();

  service.submit(nh::ControlPlane::parse_job_request(
                     nj::parse(kGemm64, "spec")))
      .wait();
  sampler.sample_once();
  sampler.sample_once();

  Client client(server.port());
  const Response r = client.request("GET", "/timeseries");
  ASSERT_EQ(r.status, 200);
  const nj::Value doc = nj::parse(r.body, "/timeseries");
  EXPECT_DOUBLE_EQ(doc.num("northup_serve", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(doc.num("interval_ms", 0.0), 50.0);
  EXPECT_GE(doc.num("now_s", -1.0), 0.0);
  const nj::Value& series = doc.at("series");
  ASSERT_TRUE(series.is_object());
  ASSERT_TRUE(series.has("svc.jobs.active"));
  const nj::Value& active = series.at("svc.jobs.active");
  ASSERT_GE(active.array.size(), 2u);
  for (const nj::Value& sample : active.array) {
    ASSERT_EQ(sample.array.size(), 2u);
  }
  // Counters ride along for the dashboard's cache-hit-rate card.
  EXPECT_TRUE(series.has("svc.jobs.submitted"));
}

TEST(ControlPlane, DashboardAndTraceAreServed) {
  Plane p;
  const Response dash = p.get("/dashboard");
  EXPECT_EQ(dash.status, 200);
  EXPECT_NE(dash.headers.at("content-type").find("text/html"),
            std::string::npos);
  EXPECT_NE(dash.body.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(dash.body.find("/timeseries"), std::string::npos);
  EXPECT_NE(dash.body.find("/trace"), std::string::npos);

  Client client(p.server->port());
  const Response root = client.request("GET", "/");
  EXPECT_EQ(root.status, 302);
  EXPECT_EQ(root.headers.at("location"), "/dashboard");

  const Response trace = p.get("/trace");
  EXPECT_EQ(trace.status, 200);
  EXPECT_NE(trace.body.find("traceEvents"), std::string::npos);
}

TEST(ControlPlane, ParseJobRequestCoversAllKindsAndOverrides) {
  const nj::Value spec = nj::parse(
      R"({"kind": "spmv", "tenant": "acme", "priority": 2, "weight": 1.5,
          "deadline_s": 9.5, "max_retries": 1,
          "config": {"rows": 5000, "avg_nnz": 8, "pattern": "powerlaw",
                     "repeats": 2},
          "footprint": {"root_bytes": 1024, "staging_bytes": 512,
                        "device_bytes": 256}})",
      "spec");
  const nsv::JobRequest r = nh::ControlPlane::parse_job_request(spec);
  EXPECT_EQ(r.tenant, "acme");
  EXPECT_EQ(r.priority, 2);
  EXPECT_DOUBLE_EQ(r.weight, 1.5);
  EXPECT_DOUBLE_EQ(r.deadline_s, 9.5);
  EXPECT_EQ(r.max_retries, 1u);
  EXPECT_EQ(r.footprint.root_bytes, 1024u);
  EXPECT_EQ(r.footprint.device_bytes, 256u);
  const auto& config = std::get<northup::algos::SpmvConfig>(r.config);
  EXPECT_EQ(config.rows, 5000u);
  EXPECT_EQ(config.pattern, northup::algos::SpmvConfig::Pattern::PowerLaw);
  EXPECT_EQ(config.repeats, 2u);
  EXPECT_TRUE(config.hash_result);  // HTTP default: hash on

  EXPECT_THROW(nh::ControlPlane::parse_job_request(
                   nj::parse(R"({"config": {}})", "x")),
               northup::util::Error);
  EXPECT_THROW(
      nh::ControlPlane::parse_job_request(nj::parse(
          R"({"kind": "spmv", "config": {"pattern": "diag"}})", "x")),
      northup::util::Error);
  EXPECT_THROW(nh::ControlPlane::parse_job_request(
                   nj::parse(R"({"kind": "hotspot", "tenant": ""})", "x")),
               northup::util::Error);
}
