// HttpServer protocol-level tests, driven through an independent
// blocking client (tests/support/http_client.hpp): routing and
// captures, framing, keep-alive, error statuses, streaming, limits,
// concurrency, and graceful shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "northup/http/server.hpp"
#include "northup/obs/metrics.hpp"
#include "northup/util/assert.hpp"
#include "support/http_client.hpp"

namespace nh = northup::http;
namespace no = northup::obs;
using northup::testhttp::Client;
using northup::testhttp::Response;

namespace {

nh::ServerOptions quick_options() {
  nh::ServerOptions options;
  options.idle_timeout_ms = 500;  // keep EOF-path tests fast
  return options;
}

}  // namespace

TEST(HttpServer, RoutesAndCapturesParams) {
  nh::HttpServer server(quick_options());
  server.handle("GET", "/ping", [](const nh::Request&, nh::ResponseWriter& w) {
    w.reply(200, "text/plain", "pong");
  });
  server.handle("GET", "/items/{id}/parts/{part}",
                [](const nh::Request& r, nh::ResponseWriter& w) {
                  w.reply(200, "text/plain",
                          r.params.at("id") + ":" + r.params.at("part"));
                });
  server.start();
  ASSERT_NE(server.port(), 0);

  Client client(server.port());
  Response r = client.request("GET", "/ping");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "pong");

  // Keep-alive: same socket serves the second request, with a
  // percent-encoded capture decoded before it reaches the handler.
  r = client.request("GET", "/items/a%2Fb/parts/7");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "a/b:7");
}

TEST(HttpServer, QueryStringAndBodyReachHandlers) {
  nh::HttpServer server(quick_options());
  server.handle("POST", "/echo",
                [](const nh::Request& r, nh::ResponseWriter& w) {
                  w.reply(200, "text/plain",
                          r.query.at("tag") + "|" + r.body);
                });
  server.start();
  Client client(server.port());
  const Response r =
      client.request("POST", "/echo?tag=x%20y&unused=1", "the body");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "x y|the body");
}

TEST(HttpServer, NotFoundVsMethodNotAllowed) {
  nh::HttpServer server(quick_options());
  server.handle("GET", "/only-get",
                [](const nh::Request&, nh::ResponseWriter& w) {
                  w.reply(200, "text/plain", "ok");
                });
  server.start();
  Client client(server.port());
  EXPECT_EQ(client.request("GET", "/missing").status, 404);
  EXPECT_EQ(client.request("DELETE", "/only-get").status, 405);
  EXPECT_EQ(client.request("GET", "/only-get").status, 200);
}

TEST(HttpServer, HandlerExceptionBecomes500AndConnectionSurvives) {
  nh::HttpServer server(quick_options());
  server.handle("GET", "/boom", [](const nh::Request&, nh::ResponseWriter&) {
    NU_CHECK(false, "handler exploded");
  });
  server.handle("GET", "/fine", [](const nh::Request&, nh::ResponseWriter& w) {
    w.reply(200, "text/plain", "fine");
  });
  server.start();
  Client client(server.port());
  EXPECT_EQ(client.request("GET", "/boom").status, 500);
  EXPECT_EQ(client.request("GET", "/fine").status, 200);
}

TEST(HttpServer, OversizedRequestGets413) {
  nh::ServerOptions options = quick_options();
  options.max_request_bytes = 512;
  nh::HttpServer server(options);
  server.handle("POST", "/sink",
                [](const nh::Request&, nh::ResponseWriter& w) {
                  w.reply(200, "text/plain", "ok");
                });
  server.start();
  Client client(server.port());
  const Response r =
      client.request("POST", "/sink", std::string(2048, 'x'));
  EXPECT_EQ(r.status, 413);
}

TEST(HttpServer, MalformedRequestLineGets400) {
  nh::HttpServer server(quick_options());
  server.start();
  Client client(server.port());
  client.send_raw("NONSENSE\r\n\r\n");
  EXPECT_EQ(client.read_response().status, 400);
}

TEST(HttpServer, HeadOmitsBodyButKeepsContentLength) {
  nh::HttpServer server(quick_options());
  server.handle("HEAD", "/doc", [](const nh::Request&, nh::ResponseWriter& w) {
    w.reply(200, "text/plain", "0123456789");
  });
  server.start();
  Client client(server.port());
  client.send_raw("HEAD /doc HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::string head = client.read_until("\r\n\r\n");
  EXPECT_NE(head.find("200"), std::string::npos);
  EXPECT_NE(head.find("Content-Length: 10"), std::string::npos);
  EXPECT_TRUE(client.at_eof() || true);  // no body follows
}

TEST(HttpServer, StreamingWritesChunksImmediately) {
  nh::HttpServer server(quick_options());
  server.handle("GET", "/stream",
                [](const nh::Request&, nh::ResponseWriter& w) {
                  ASSERT_TRUE(w.begin_stream());
                  EXPECT_TRUE(w.streaming());
                  w.write_chunk("event: a\ndata: 1\n\n");
                  w.write_chunk("event: b\ndata: 2\n\n");
                });
  server.start();
  Client client(server.port());
  client.send_raw("GET /stream HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::string head = client.read_until("\r\n\r\n");
  EXPECT_NE(head.find("200"), std::string::npos);
  EXPECT_NE(head.find("text/event-stream"), std::string::npos);
  EXPECT_NE(head.find("Connection: close"), std::string::npos);
  EXPECT_NE(client.read_until("\n\n").find("event: a"), std::string::npos);
  EXPECT_NE(client.read_until("\n\n").find("event: b"), std::string::npos);
}

TEST(HttpServer, ConcurrentRequestsAcrossConnections) {
  nh::ServerOptions options = quick_options();
  options.workers = 4;
  no::MetricsRegistry metrics;
  nh::HttpServer server(options, &metrics);
  std::atomic<int> hits{0};
  server.handle("GET", "/work",
                [&hits](const nh::Request&, nh::ResponseWriter& w) {
                  hits.fetch_add(1);
                  w.reply(200, "text/plain", "done");
                });
  server.start();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client(server.port());
      for (int i = 0; i < kPerThread; ++i) {
        if (client.request("GET", "/work").status == 200) ok.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(hits.load(), kThreads * kPerThread);
  EXPECT_EQ(metrics.counter("http.responses.2xx").value(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_GE(metrics.counter("http.connections").value(),
            static_cast<std::uint64_t>(kThreads));
}

TEST(HttpServer, StopIsGracefulAndIdempotent) {
  nh::HttpServer server(quick_options());
  server.handle("GET", "/ping", [](const nh::Request&, nh::ResponseWriter& w) {
    w.reply(200, "text/plain", "pong");
  });
  server.start();
  EXPECT_TRUE(server.running());
  {
    Client client(server.port());
    EXPECT_EQ(client.request("GET", "/ping").status, 200);
  }
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
  EXPECT_THROW(Client{server.port()}, std::runtime_error);
}

TEST(HttpServer, BindFailureNamesAddressInError) {
  nh::HttpServer first(quick_options());
  first.start();
  nh::ServerOptions clash = quick_options();
  clash.port = first.port();
  nh::HttpServer second(clash);
  try {
    second.start();
    FAIL() << "expected util::Error";
  } catch (const northup::util::Error& e) {
    EXPECT_NE(std::string(e.what()).find(std::to_string(first.port())),
              std::string::npos)
        << e.what();
  }
}

TEST(HttpServer, UrlDecodeContract) {
  EXPECT_EQ(nh::url_decode("a%2Fb"), "a/b");
  EXPECT_EQ(nh::url_decode("x+y"), "x y");
  EXPECT_EQ(nh::url_decode("%zz"), "%zz");  // malformed passes through
  EXPECT_EQ(nh::url_decode("caf%C3%A9"), "caf\xc3\xa9");
}
