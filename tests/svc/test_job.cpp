// Job-model unit tests: kind dispatch, footprint estimation invariants
// (floor <= preferred, root covers the exact input/output bytes), and the
// explicit footprint override.
#include <gtest/gtest.h>

#include "northup/svc/job.hpp"

namespace na = northup::algos;
namespace nsv = northup::svc;

TEST(JobModel, KindOfFollowsConfigAlternative) {
  nsv::JobRequest r;
  r.config = na::GemmConfig{};
  EXPECT_EQ(nsv::kind_of(r), nsv::JobKind::Gemm);
  r.config = na::HotspotConfig{};
  EXPECT_EQ(nsv::kind_of(r), nsv::JobKind::Hotspot);
  r.config = na::SpmvConfig{};
  EXPECT_EQ(nsv::kind_of(r), nsv::JobKind::Spmv);
  EXPECT_STREQ(nsv::kind_name(nsv::JobKind::Gemm), "gemm");
  EXPECT_STREQ(nsv::kind_name(nsv::JobKind::Hotspot), "hotspot");
  EXPECT_STREQ(nsv::kind_name(nsv::JobKind::Spmv), "spmv");
}

TEST(JobModel, FloorNeverExceedsPreferred) {
  for (const std::uint64_t n : {64u, 128u, 256u}) {
    nsv::JobRequest r;
    r.config = na::GemmConfig{.n = n};
    const auto preferred = nsv::estimate_footprint(r);
    const auto floor = nsv::min_footprint(r);
    EXPECT_LE(floor.root_bytes, preferred.root_bytes) << "n=" << n;
    EXPECT_LE(floor.staging_bytes, preferred.staging_bytes) << "n=" << n;
    EXPECT_LE(floor.device_bytes, preferred.device_bytes) << "n=" << n;
  }
}

TEST(JobModel, GemmRootCoversExactMatrixBytes) {
  nsv::JobRequest r;
  r.config = na::GemmConfig{.n = 128};
  // A, B, C are allocated exactly on the root; the floor must cover them.
  EXPECT_GE(nsv::min_footprint(r).root_bytes, 3u * 128 * 128 * 4);
}

TEST(JobModel, HotspotRootCoversGridsAndHalos) {
  nsv::JobRequest r;
  r.config = na::HotspotConfig{.n = 64};
  EXPECT_GE(nsv::min_footprint(r).root_bytes, 3u * 64 * 64 * 4);
  // Staging floor must fit the leaf-tile in-flight set with safety slack.
  EXPECT_GE(nsv::min_footprint(r).staging_bytes, 4u * 16 * 16 * 4);
}

TEST(JobModel, SpmvStagingKeepsDenseVectorResident) {
  nsv::JobRequest r;
  r.config = na::SpmvConfig{.rows = 10000, .avg_nnz = 8};
  const auto floor = nsv::min_footprint(r);
  // x must stay resident below the root — twice, plus a shard budget.
  EXPECT_GE(floor.staging_bytes, 2u * 10000 * 4);
  EXPECT_GE(floor.device_bytes, 2u * 10000 * 4);
}

TEST(JobModel, ExplicitFootprintOverridesEstimation) {
  nsv::JobRequest r;
  r.config = na::GemmConfig{.n = 256};
  r.footprint = {.root_bytes = 111, .staging_bytes = 222, .device_bytes = 333};
  const auto preferred = nsv::estimate_footprint(r);
  const auto floor = nsv::min_footprint(r);
  EXPECT_EQ(preferred.root_bytes, 111u);
  EXPECT_EQ(preferred.staging_bytes, 222u);
  EXPECT_EQ(floor.device_bytes, 333u);
  EXPECT_EQ(floor.root_bytes, preferred.root_bytes);
}
