// Overload-control tests (ISSUE 9): token-bucket mechanics under an
// explicit clock, the brownout ladder's hysteresis, the CoDel shed law,
// and the end-to-end service behaviors built on them — typed rate-limit
// and infeasible-deadline rejections, shedding under sustained queue
// delay with weighted-fair victim selection (3-tenant fairness), and the
// dequeue-to-dispatch deadline race regression.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "northup/svc/service.hpp"

namespace na = northup::algos;
namespace nsv = northup::svc;

using Clock = std::chrono::steady_clock;

namespace {

Clock::time_point at(Clock::time_point base, double seconds) {
  return base + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(seconds));
}

nsv::ServiceOptions small_machine() {
  nsv::ServiceOptions opts;
  opts.machine_levels = 2;  // APU preset: storage -> DRAM leaf
  opts.machine.root_capacity = 64ULL << 20;
  opts.machine.staging_capacity = 8ULL << 20;
  opts.workers = 2;
  return opts;
}

na::GemmConfig small_gemm() {
  na::GemmConfig config;
  config.n = 64;
  config.verify_samples = 32;
  return config;
}

/// Pins every byte of the machine's staging level so nothing can be
/// admitted until release; returns the blocking grant.
nsv::JobFootprint block_staging(nsv::JobService& service) {
  nsv::AdmissionController& adm = service.admission();
  nsv::JobFootprint want;
  want.staging_bytes = adm.level_capacity(1) - adm.reserved_bytes(1);
  nsv::JobFootprint granted;
  EXPECT_TRUE(adm.try_reserve(want, want, granted));
  return granted;
}

}  // namespace

// ------------------------------------------------------------- TokenBucket

TEST(TokenBucket, StartsFullAndRefillsAtRate) {
  const auto t0 = Clock::now();
  nsv::TokenBucket bucket(/*rate=*/100.0, /*burst=*/1000.0, t0);
  EXPECT_DOUBLE_EQ(bucket.available(t0), 1000.0);  // idle tenants may burst

  EXPECT_TRUE(bucket.try_charge(1000.0, t0));
  EXPECT_DOUBLE_EQ(bucket.available(t0), 0.0);
  EXPECT_FALSE(bucket.try_charge(1.0, t0));

  // 2 s at 100 B/s refills 200 tokens; refill caps at burst.
  EXPECT_DOUBLE_EQ(bucket.available(at(t0, 2.0)), 200.0);
  EXPECT_TRUE(bucket.try_charge(200.0, at(t0, 2.0)));
  EXPECT_DOUBLE_EQ(bucket.available(at(t0, 1000.0)), 1000.0);
}

TEST(TokenBucket, ZeroRateMeansUnlimited) {
  const auto t0 = Clock::now();
  nsv::TokenBucket bucket(0.0, 64.0, t0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(bucket.try_charge(1e12, t0));
  }
}

TEST(TokenBucket, ChargeLargerThanBurstNeverPasses) {
  const auto t0 = Clock::now();
  nsv::TokenBucket bucket(1e6, 100.0, t0);
  EXPECT_FALSE(bucket.try_charge(101.0, at(t0, 1000.0)));
}

// ------------------------------------------------------ OverloadController

TEST(OverloadController, TenantLimitOverridesInheritDefaults) {
  nsv::OverloadOptions opts;
  opts.enable = true;
  opts.default_rate_bytes_per_s = 100.0;
  opts.default_burst_bytes = 1000.0;
  opts.tenant_limits["vip"] = {.rate_bytes_per_s = 1e9, .burst_bytes = 0.0};
  nsv::OverloadController ctl(opts, nullptr);

  const nsv::TenantLimit plain = ctl.limit_for("someone");
  EXPECT_DOUBLE_EQ(plain.rate_bytes_per_s, 100.0);
  EXPECT_DOUBLE_EQ(plain.burst_bytes, 1000.0);
  const nsv::TenantLimit vip = ctl.limit_for("vip");
  EXPECT_DOUBLE_EQ(vip.rate_bytes_per_s, 1e9);
  EXPECT_DOUBLE_EQ(vip.burst_bytes, 1000.0);  // burst 0 inherits the default
}

TEST(OverloadController, BucketsArePerTenant) {
  nsv::OverloadOptions opts;
  opts.enable = true;
  opts.default_rate_bytes_per_s = 1.0;  // effectively no refill
  opts.default_burst_bytes = 100.0;
  nsv::OverloadController ctl(opts, nullptr);

  const auto t0 = Clock::now();
  EXPECT_TRUE(ctl.try_charge("a", 100.0, t0));
  EXPECT_FALSE(ctl.try_charge("a", 100.0, t0));  // a's bucket is empty
  EXPECT_TRUE(ctl.try_charge("b", 100.0, t0));   // b's is untouched
}

TEST(OverloadController, BrownoutLadderStepsUpImmediatelyDownAfterDwell) {
  nsv::OverloadOptions opts;
  opts.enable = true;
  opts.target_queue_delay_s = 1.0;
  opts.reserved_pressure_watermark = 0.8;
  opts.brownout_hold_s = 0.25;
  nsv::OverloadController ctl(opts, nullptr);
  const auto t0 = Clock::now();

  EXPECT_EQ(ctl.brownout_level(), nsv::BrownoutLevel::kNormal);
  EXPECT_DOUBLE_EQ(ctl.grant_scale(), 1.0);
  EXPECT_FALSE(ctl.checksums_disabled());

  // Reserved pressure alone drives the ladder: 0.4/0.8 = 0.5 -> level 1.
  ctl.update(t0, 0.0, 0.4);
  EXPECT_EQ(ctl.brownout_level(), nsv::BrownoutLevel::kShrunkGrants);
  EXPECT_DOUBLE_EQ(ctl.grant_scale(), 0.5);

  // 0.64/0.8 = 0.8 >= 0.75 -> level 2: floor grants, checksums off.
  ctl.update(at(t0, 0.01), 0.0, 0.64);
  EXPECT_EQ(ctl.brownout_level(), nsv::BrownoutLevel::kFloorGrants);
  EXPECT_DOUBLE_EQ(ctl.grant_scale(), 0.0);
  EXPECT_TRUE(ctl.checksums_disabled());

  // Full pressure -> level 3 (shedding grade).
  ctl.update(at(t0, 0.02), 0.0, 0.8);
  EXPECT_EQ(ctl.brownout_level(), nsv::BrownoutLevel::kShedding);

  // Pressure clears: nothing moves inside the dwell...
  ctl.update(at(t0, 0.1), 0.0, 0.0);
  EXPECT_EQ(ctl.brownout_level(), nsv::BrownoutLevel::kShedding);
  // ...then the ladder descends one level per dwell, not all at once.
  ctl.update(at(t0, 0.4), 0.0, 0.0);
  EXPECT_EQ(ctl.brownout_level(), nsv::BrownoutLevel::kFloorGrants);
  ctl.update(at(t0, 0.5), 0.0, 0.0);
  EXPECT_EQ(ctl.brownout_level(), nsv::BrownoutLevel::kFloorGrants);
  ctl.update(at(t0, 0.7), 0.0, 0.0);
  EXPECT_EQ(ctl.brownout_level(), nsv::BrownoutLevel::kShrunkGrants);
  ctl.update(at(t0, 1.0), 0.0, 0.0);
  EXPECT_EQ(ctl.brownout_level(), nsv::BrownoutLevel::kNormal);
}

TEST(OverloadController, BrownoutDisabledKeepsFullGrantsButStillSheds) {
  nsv::OverloadOptions opts;
  opts.enable = true;
  opts.enable_brownout = false;
  opts.target_queue_delay_s = 1.0;
  opts.reserved_pressure_watermark = 0.8;
  nsv::OverloadController ctl(opts, nullptr);
  const auto t0 = Clock::now();

  ctl.update(t0, 0.0, 0.5);  // mid pressure: would be level 1
  EXPECT_EQ(ctl.brownout_level(), nsv::BrownoutLevel::kNormal);
  EXPECT_DOUBLE_EQ(ctl.grant_scale(), 1.0);
  ctl.update(at(t0, 0.01), 0.0, 0.9);  // full pressure: shedding grade
  EXPECT_EQ(ctl.brownout_level(), nsv::BrownoutLevel::kShedding);
  EXPECT_FALSE(ctl.checksums_disabled());  // never trades integrity
}

TEST(OverloadController, CoDelShedsAfterFullIntervalAboveTarget) {
  nsv::OverloadOptions opts;
  opts.enable = true;
  opts.target_queue_delay_s = 1.0;
  opts.shed_interval_s = 0.1;
  nsv::OverloadController ctl(opts, nullptr);
  const auto t0 = Clock::now();

  // Above target but the interval has not elapsed yet: no shed.
  ctl.update(t0, 2.0, 0.0);
  EXPECT_FALSE(ctl.take_shed(t0));
  EXPECT_FALSE(ctl.take_shed(at(t0, 0.05)));

  // A full interval above target arms the law; the first shed fires.
  ctl.update(at(t0, 0.1), 2.0, 0.0);
  EXPECT_TRUE(ctl.take_shed(at(t0, 0.1)));
  // The next shed waits interval/sqrt(1), the one after interval/sqrt(2):
  // persistent pressure sheds at an accelerating cadence.
  EXPECT_FALSE(ctl.take_shed(at(t0, 0.1)));
  EXPECT_FALSE(ctl.take_shed(at(t0, 0.15)));
  EXPECT_TRUE(ctl.take_shed(at(t0, 0.2)));
  EXPECT_FALSE(ctl.take_shed(at(t0, 0.25)));
  EXPECT_TRUE(ctl.take_shed(at(t0, 0.275)));  // 0.2 + 0.1/sqrt(2)

  // Dropping below target disarms and resets the control law.
  ctl.update(at(t0, 0.2), 0.1, 0.0);
  EXPECT_FALSE(ctl.take_shed(at(t0, 10.0)));
}

TEST(OverloadController, DisabledControllerIsInert) {
  nsv::OverloadController ctl(nsv::OverloadOptions{}, nullptr);
  const auto t0 = Clock::now();
  EXPECT_FALSE(ctl.enabled());
  EXPECT_TRUE(ctl.try_charge("anyone", 1e18, t0));
  ctl.update(t0, 1e6, 1.0);
  EXPECT_EQ(ctl.brownout_level(), nsv::BrownoutLevel::kNormal);
  EXPECT_FALSE(ctl.take_shed(at(t0, 1e3)));
}

// ------------------------------------------------- end-to-end JobService

TEST(ServiceOverload, RateLimitRejectsTypedAndPerTenant) {
  auto opts = small_machine();
  opts.overload.enable = true;
  // One small_gemm costs 3*64*64*4 = 49152 job bytes; the burst admits
  // exactly one and the refill is negligible.
  opts.overload.default_rate_bytes_per_s = 1.0;
  opts.overload.default_burst_bytes = 60000.0;
  opts.overload.tenant_limits["vip"] = {.rate_bytes_per_s = 1e12,
                                        .burst_bytes = 1e12};
  nsv::JobService service(opts);

  nsv::JobRequest request;
  request.config = small_gemm();
  nsv::JobHandle first = service.try_submit(request);
  nsv::JobHandle second = service.try_submit(request);
  request.tenant = "vip";
  nsv::JobHandle vip = service.try_submit(request);

  EXPECT_EQ(second.wait().state, nsv::JobState::Rejected);
  EXPECT_EQ(second.result().reject, nsv::RejectReason::RateLimited);
  EXPECT_NE(second.result().error.find("admission rate"), std::string::npos);
  EXPECT_EQ(first.wait().state, nsv::JobState::Done) << first.result().error;
  EXPECT_EQ(vip.wait().state, nsv::JobState::Done) << vip.result().error;

  const auto counters = service.metrics().counter_values();
  EXPECT_EQ(counters.at("svc.rejected.rate_limited"), 1u);
  EXPECT_EQ(counters.at("svc.ratelimit.rejected.default"), 1u);
  EXPECT_GT(counters.at("svc.ratelimit.charged_bytes"), 0u);
}

TEST(ServiceOverload, InfeasibleDeadlineRejectedBeforeQueueing) {
  auto opts = small_machine();
  opts.overload.enable = true;
  nsv::JobService service(opts);

  nsv::JobRequest request;
  request.config = small_gemm();
  request.deadline_s = 1e-7;  // far below any storage round-trip
  nsv::JobHandle doomed = service.submit(request);
  EXPECT_EQ(doomed.wait().state, nsv::JobState::Rejected);
  EXPECT_EQ(doomed.result().reject, nsv::RejectReason::InfeasibleDeadline);
  EXPECT_NE(doomed.result().error.find("infeasible"), std::string::npos);

  request.deadline_s = 30.0;  // generous: passes the feasibility gate
  nsv::JobHandle fine = service.submit(request);
  EXPECT_EQ(fine.wait().state, nsv::JobState::Done) << fine.result().error;

  const auto counters = service.metrics().counter_values();
  EXPECT_EQ(counters.at("svc.rejected.infeasible_deadline"), 1u);
}

TEST(ServiceOverload, ShedsQueuedWorkUnderSustainedDelay) {
  auto opts = small_machine();
  opts.max_queue_depth = 32;
  opts.overload.enable = true;
  opts.overload.target_queue_delay_s = 0.02;
  opts.overload.shed_interval_s = 0.01;
  nsv::JobService service(opts);
  const nsv::JobFootprint blocker = block_staging(service);

  nsv::JobRequest request;
  request.config = small_gemm();
  std::vector<nsv::JobHandle> handles;
  for (int i = 0; i < 6; ++i) handles.push_back(service.try_submit(request));

  // Let the oldest wait climb past the target for a full interval, with
  // kick() providing the dispatch points a quiet service would get from
  // submissions and completions.
  for (int spin = 0; spin < 40; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    service.kick();
    if (service.queue_depth() == 0) break;
  }

  std::size_t shed = 0;
  for (auto& handle : handles) {
    if (handle.done() && handle.result().state == nsv::JobState::Rejected) {
      EXPECT_EQ(handle.result().reject, nsv::RejectReason::Shed);
      EXPECT_NE(handle.result().error.find("shed"), std::string::npos);
      ++shed;
    }
  }
  EXPECT_GT(shed, 0u);
  const auto counters = service.metrics().counter_values();
  EXPECT_EQ(counters.at("svc.rejected.shed"), shed);
  EXPECT_EQ(counters.at("svc.shed.jobs"), shed);
  EXPECT_GT(counters.at("svc.shed.bytes"), 0u);

  service.admission().release(blocker);
  service.kick();  // released capacity is only seen at a dispatch point
  service.wait_all();
}

TEST(ServiceOverload, SheddingFairnessTracksTenantWeights) {
  // Three tenants at weights 1/2/4 flood a one-worker service past its
  // target queue delay: shedding must take from the most over-quota
  // tenant first (tail of the weighted-fair order), so admitted shares
  // track the weights and nobody starves outright.
  auto opts = small_machine();
  opts.workers = 1;
  opts.machine.staging_capacity = 4ULL << 20;
  opts.max_queue_depth = 64;
  opts.policy = nsv::SchedulingPolicy::WeightedFair;
  opts.overload.enable = true;
  opts.overload.target_queue_delay_s = 0.02;
  opts.overload.shed_interval_s = 0.005;
  nsv::JobService service(opts);

  const std::map<std::string, double> weights = {
      {"light", 1.0}, {"mid", 2.0}, {"heavy", 4.0}};
  std::map<std::string, std::vector<nsv::JobHandle>> handles;
  nsv::JobRequest request;
  request.config = small_gemm();
  // Pin the reservation to most of staging so only one job is admitted
  // at a time: overloaded demand then lives in the *pending* set (where
  // the shedder can see its sojourn), not the worker pool's backlog.
  request.footprint = {.root_bytes = 1ULL << 20,
                       .staging_bytes = 3ULL << 20,
                       .device_bytes = 0};
  for (int round = 0; round < 12; ++round) {
    for (const auto& [tenant, weight] : weights) {
      request.tenant = tenant;
      request.weight = weight;
      handles[tenant].push_back(service.try_submit(request));
    }
  }
  service.wait_all();

  std::map<std::string, int> done;
  std::size_t shed = 0;
  for (auto& [tenant, list] : handles) {
    for (auto& handle : list) {
      const nsv::JobResult& result = handle.wait();
      if (result.state == nsv::JobState::Done) ++done[tenant];
      if (result.state == nsv::JobState::Rejected) {
        EXPECT_EQ(result.reject, nsv::RejectReason::Shed);
        ++shed;
      }
    }
  }

  EXPECT_GT(shed, 0u) << "overload never engaged; the test lost its point";
  // No starvation: every tenant finishes at least one job.
  EXPECT_GE(done["light"], 1);
  EXPECT_GE(done["mid"], 1);
  EXPECT_GE(done["heavy"], 1);
  // Admitted share tracks weight (monotone, with slack for timing noise).
  EXPECT_GE(done["heavy"] + 1, done["mid"]);
  EXPECT_GE(done["mid"] + 1, done["light"]);
  EXPECT_GE(done["heavy"], done["light"]);
}

TEST(ServiceOverload, DeadlineRaceBetweenDequeueAndDispatchExpires) {
  // Regression (ISSUE 9 satellite): a job admitted and handed to the
  // worker pool used to run to completion even when its deadline passed
  // while the pool task waited behind another job for the single worker.
  // It must finish Expired without touching a runtime.
  auto opts = small_machine();
  opts.workers = 1;
  opts.file_kind = northup::mem::StorageKind::Hdd;
  opts.paced_storage = true;  // job exec tracks the modeled (slow) tier
  nsv::JobService service(opts);

  // A couple of sweeps through a paced HDD model (8 ms per storage
  // access): around a second of wall clock, far past b's deadline.
  na::HotspotConfig slow;
  slow.n = 256;
  slow.iterations = 2;
  slow.verify = false;
  nsv::JobRequest occupant;
  occupant.config = slow;
  nsv::JobHandle a = service.submit(occupant);

  // Both grants fit: b is reserved and dispatched immediately, but its
  // pool task sits behind a on the only worker while the clock runs.
  nsv::JobRequest request;
  request.config = small_gemm();
  request.deadline_s = 0.01;
  nsv::JobHandle b = service.submit(request);

  const nsv::JobResult& rb = b.wait();
  EXPECT_EQ(rb.state, nsv::JobState::Expired) << rb.error;
  EXPECT_NE(rb.error.find("between dequeue and dispatch"), std::string::npos)
      << rb.error;
  EXPECT_EQ(a.wait().state, nsv::JobState::Done) << a.result().error;
  EXPECT_GE(service.metrics().counter_values().at("svc.jobs.expired"), 1u);

  service.wait_all();
  // The expired job's grant was released, not leaked.
  EXPECT_EQ(service.metrics().gauge_values().at("svc.reserved.dram"), 0.0);
}

TEST(ServiceOverload, RejectionCountersSumToSubmittedMinusAdmitted) {
  auto opts = small_machine();
  opts.max_queue_depth = 2;
  opts.overload.enable = true;
  opts.overload.default_rate_bytes_per_s = 1.0;
  opts.overload.default_burst_bytes = 150000.0;  // admits three small_gemms
  nsv::JobService service(opts);
  const nsv::JobFootprint blocker = block_staging(service);

  nsv::JobRequest request;
  request.config = small_gemm();
  std::vector<nsv::JobHandle> handles;
  for (int i = 0; i < 6; ++i) handles.push_back(service.try_submit(request));

  std::size_t rejected = 0;
  for (auto& handle : handles) {
    if (handle.done() && handle.result().state == nsv::JobState::Rejected) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 4u);  // 3 pass the bucket, queue holds 2 of those

  const auto counters = service.metrics().counter_values();
  std::uint64_t per_reason = 0;
  for (const auto& [name, value] : counters) {
    if (name.rfind("svc.rejected.", 0) == 0) per_reason += value;
  }
  EXPECT_EQ(per_reason, rejected);
  EXPECT_EQ(counters.at("svc.rejected.rate_limited"), 3u);
  EXPECT_EQ(counters.at("svc.rejected.queue_full"), 1u);

  service.admission().release(blocker);
  service.kick();  // released capacity is only seen at a dispatch point
  service.wait_all();
}
