// JobScheduler ordering-policy tests: FIFO arrival order with
// head-of-line blocking, weighted-fair priority/virtual-time ordering,
// and the idle-tenant rejoin rule.
#include <gtest/gtest.h>

#include <memory>

#include "northup/svc/scheduler.hpp"

namespace nsv = northup::svc;

namespace {

std::shared_ptr<nsv::JobControl> make_job(std::uint64_t seq,
                                          const std::string& tenant,
                                          int priority = 0,
                                          double weight = 1.0) {
  auto job = std::make_shared<nsv::JobControl>();
  job->id = seq + 1;
  job->seq = seq;
  job->request.tenant = tenant;
  job->request.priority = priority;
  job->request.weight = weight;
  return job;
}

}  // namespace

TEST(JobScheduler, FifoKeepsArrivalOrderAndBlocksHeadOfLine) {
  nsv::JobScheduler sched(nsv::SchedulingPolicy::Fifo);
  auto a = make_job(0, "t1", /*priority=*/0);
  auto b = make_job(1, "t2", /*priority=*/9);  // priority is ignored
  sched.enqueue(a);
  sched.enqueue(b);
  const auto order = sched.ordered();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].get(), a.get());
  EXPECT_EQ(order[1].get(), b.get());
  EXPECT_TRUE(sched.head_of_line_blocking());
}

TEST(JobScheduler, WeightedFairOrdersByPriorityThenVirtualTime) {
  nsv::JobScheduler sched(nsv::SchedulingPolicy::WeightedFair);
  EXPECT_FALSE(sched.head_of_line_blocking());
  // heavy has consumed lots of service; light none; vip outranks both.
  // (light enqueues first: a tenant joining later never keeps a clock
  // below the already-pending floor.)
  sched.charge("heavy", 1.0, 10.0);
  auto l = make_job(0, "light");
  auto h = make_job(1, "heavy");
  auto v = make_job(2, "heavy", /*priority=*/1);
  sched.enqueue(l);
  sched.enqueue(h);
  sched.enqueue(v);
  const auto order = sched.ordered();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].get(), v.get());  // priority wins outright
  EXPECT_EQ(order[1].get(), l.get());  // lower virtual time next
  EXPECT_EQ(order[2].get(), h.get());
}

TEST(JobScheduler, WeightDividesChargedService) {
  nsv::JobScheduler sched(nsv::SchedulingPolicy::WeightedFair);
  sched.charge("gold", 4.0, 8.0);    // 2 s of virtual time
  sched.charge("bronze", 1.0, 4.0);  // 4 s of virtual time
  EXPECT_DOUBLE_EQ(sched.virtual_time("gold"), 2.0);
  EXPECT_DOUBLE_EQ(sched.virtual_time("bronze"), 4.0);
  auto g = make_job(0, "gold");
  auto b = make_job(1, "bronze");
  sched.enqueue(b);
  sched.enqueue(g);
  EXPECT_EQ(sched.ordered()[0].get(), g.get());
}

TEST(JobScheduler, IdleTenantRejoinsAtPendingFloorNotZero) {
  nsv::JobScheduler sched(nsv::SchedulingPolicy::WeightedFair);
  sched.charge("busy", 1.0, 5.0);
  auto busy = make_job(0, "busy");
  sched.enqueue(busy);
  // "fresh" was idle the whole time; it must not start infinitely ahead —
  // it rejoins at the floor of the pending tenants' clocks.
  auto fresh = make_job(1, "fresh");
  sched.enqueue(fresh);
  EXPECT_DOUBLE_EQ(sched.virtual_time("fresh"), 5.0);
  // Ties resolve by arrival order.
  EXPECT_EQ(sched.ordered()[0].get(), busy.get());
}

TEST(JobScheduler, EraseRemovesExactlyThatJob) {
  nsv::JobScheduler sched(nsv::SchedulingPolicy::Fifo);
  auto a = make_job(0, "t");
  auto b = make_job(1, "t");
  sched.enqueue(a);
  sched.enqueue(b);
  EXPECT_TRUE(sched.erase(a.get()));
  EXPECT_FALSE(sched.erase(a.get()));  // already gone
  ASSERT_EQ(sched.depth(), 1u);
  EXPECT_EQ(sched.ordered()[0].get(), b.get());
}
