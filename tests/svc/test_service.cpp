// End-to-end JobService behavior: capacity fast-rejection with a useful
// error, bounded-queue backpressure, deadline expiry and cancellation of
// queued jobs, fault-injected retry, and the concurrent == serial
// numerical guarantee, plus the observability surface (latency
// histograms, queue gauges, per-job Chrome trace).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "northup/svc/service.hpp"

namespace na = northup::algos;
namespace nsv = northup::svc;

namespace {

nsv::ServiceOptions small_machine() {
  nsv::ServiceOptions opts;
  opts.machine_levels = 2;  // APU preset: storage -> DRAM leaf
  opts.machine.root_capacity = 64ULL << 20;
  opts.machine.staging_capacity = 8ULL << 20;
  opts.workers = 2;
  return opts;
}

na::GemmConfig small_gemm() {
  na::GemmConfig config;
  config.n = 64;
  config.verify_samples = 32;
  return config;
}

/// Pins every byte of the machine's staging level so nothing can be
/// admitted until release; returns the blocking grant.
nsv::JobFootprint block_staging(nsv::JobService& service) {
  nsv::AdmissionController& adm = service.admission();
  nsv::JobFootprint want;
  want.staging_bytes =
      adm.level_capacity(1) - adm.reserved_bytes(1);
  nsv::JobFootprint granted;
  EXPECT_TRUE(adm.try_reserve(want, want, granted));
  return granted;
}

}  // namespace

TEST(JobService, RejectsImpossibleJobWithNodeAndByteDetail) {
  auto opts = small_machine();
  opts.machine.root_capacity = 1ULL << 20;  // 1 MiB root
  nsv::JobService service(opts);

  nsv::JobRequest request;
  request.config = na::GemmConfig{.n = 512};  // needs 3 MiB on the root
  nsv::JobHandle handle = service.submit(request);

  const nsv::JobResult& result = handle.wait();
  EXPECT_EQ(result.state, nsv::JobState::Rejected);
  EXPECT_NE(result.error.find("storage"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("can never be admitted"), std::string::npos);
  EXPECT_NE(result.error.find("B"), std::string::npos);  // byte counts
  EXPECT_EQ(result.reject, nsv::RejectReason::FootprintTooLarge);
  EXPECT_EQ(service.metrics().counter_values().at(
                "svc.rejected.footprint_too_large"),
            1u);
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(JobService, BoundedQueueAppliesBackpressure) {
  auto opts = small_machine();
  opts.max_queue_depth = 2;
  opts.policy = nsv::SchedulingPolicy::Fifo;
  nsv::JobService service(opts);

  const nsv::JobFootprint blocker = block_staging(service);
  nsv::JobRequest request;
  request.config = small_gemm();

  nsv::JobHandle a = service.submit(request);
  nsv::JobHandle b = service.submit(request);
  EXPECT_EQ(service.queue_depth(), 2u);
  EXPECT_EQ(a.state(), nsv::JobState::Queued);

  nsv::JobHandle c = service.try_submit(request);
  const nsv::JobResult& rejected = c.wait();
  EXPECT_EQ(rejected.state, nsv::JobState::Rejected);
  EXPECT_NE(rejected.error.find("queue full"), std::string::npos);
  EXPECT_EQ(rejected.reject, nsv::RejectReason::QueueFull);
  EXPECT_EQ(service.metrics().counter_values().at("svc.rejected.queue_full"),
            1u);

  service.admission().release(blocker);
  service.kick();
  EXPECT_EQ(a.wait().state, nsv::JobState::Done);
  EXPECT_EQ(b.wait().state, nsv::JobState::Done);
  service.wait_all();
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(service.running_count(), 0u);
}

TEST(JobService, DeadlineExpiresJobStillQueued) {
  nsv::JobService service(small_machine());
  const nsv::JobFootprint blocker = block_staging(service);

  nsv::JobRequest request;
  request.config = small_gemm();
  request.deadline_s = 0.05;
  nsv::JobHandle handle = service.submit(request);
  EXPECT_EQ(handle.state(), nsv::JobState::Queued);

  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  service.kick();  // dispatch point: notices the passed deadline

  const nsv::JobResult& result = handle.wait();
  EXPECT_EQ(result.state, nsv::JobState::Expired);
  EXPECT_NE(result.error.find("deadline"), std::string::npos);
  EXPECT_EQ(service.metrics().counter_values().at("svc.jobs.expired"), 1u);
  service.admission().release(blocker);
}

TEST(JobService, CancelRemovesQueuedJob) {
  nsv::JobService service(small_machine());
  const nsv::JobFootprint blocker = block_staging(service);

  nsv::JobRequest request;
  request.config = small_gemm();
  nsv::JobHandle handle = service.submit(request);
  EXPECT_TRUE(handle.cancel());
  EXPECT_EQ(handle.wait().state, nsv::JobState::Cancelled);
  EXPECT_FALSE(handle.cancel());  // already terminal
  EXPECT_EQ(service.metrics().counter_values().at("svc.jobs.cancelled"), 1u);
  service.admission().release(blocker);
}

TEST(JobService, FaultInjectedJobRetriesAndSucceeds) {
  nsv::JobService service(small_machine());

  nsv::JobRequest request;
  request.config = small_gemm();
  request.fault = {.failing_attempts = 1,
                   .kind = northup::mem::FaultKind::Write,
                   .countdown = 1};
  request.max_retries = 1;
  nsv::JobHandle handle = service.submit(request);

  const nsv::JobResult& result = handle.wait();
  EXPECT_EQ(result.state, nsv::JobState::Done) << result.error;
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_TRUE(result.stats.verified);
  const auto counters = service.metrics().counter_values();
  EXPECT_EQ(counters.at("svc.jobs.retries"), 1u);
  EXPECT_EQ(counters.at("svc.jobs.io_faults"), 1u);
  EXPECT_EQ(counters.at("svc.jobs.completed"), 1u);
}

TEST(JobService, FaultWithoutRetryBudgetFails) {
  nsv::JobService service(small_machine());

  nsv::JobRequest request;
  request.config = small_gemm();
  request.fault = {.failing_attempts = 1,
                   .kind = northup::mem::FaultKind::Write,
                   .countdown = 1};
  request.max_retries = 0;
  nsv::JobHandle handle = service.submit(request);

  const nsv::JobResult& result = handle.wait();
  EXPECT_EQ(result.state, nsv::JobState::Failed);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_NE(result.error.find("I/O fault"), std::string::npos) << result.error;
  EXPECT_EQ(service.metrics().counter_values().at("svc.jobs.failed"), 1u);
}

TEST(JobService, ConcurrentJobsMatchSerialNumerically) {
  // Pin the footprint so the grant — and therefore the per-job runtime's
  // capacities and block decomposition — is identical whether the jobs
  // run concurrently or one at a time.
  nsv::JobRequest request;
  request.config = small_gemm();
  request.footprint = {.root_bytes = 1ULL << 20,
                       .staging_bytes = 2ULL << 20,
                       .device_bytes = 0};

  auto serial_opts = small_machine();
  serial_opts.workers = 1;
  nsv::JobService serial(serial_opts);
  const nsv::JobResult first = serial.submit(request).wait();
  const nsv::JobResult second = serial.submit(request).wait();
  ASSERT_EQ(first.state, nsv::JobState::Done) << first.error;
  EXPECT_EQ(first.stats.max_rel_err, second.stats.max_rel_err);

  nsv::JobService concurrent(small_machine());  // staging fits both grants
  request.tenant = "alice";
  nsv::JobHandle a = concurrent.submit(request);
  request.tenant = "bob";
  nsv::JobHandle b = concurrent.submit(request);
  const nsv::JobResult& ra = a.wait();
  const nsv::JobResult& rb = b.wait();
  ASSERT_EQ(ra.state, nsv::JobState::Done) << ra.error;
  ASSERT_EQ(rb.state, nsv::JobState::Done) << rb.error;

  // Same grant, same seed, same decomposition: bitwise-identical stats.
  EXPECT_TRUE(ra.stats.verified);
  EXPECT_TRUE(rb.stats.verified);
  EXPECT_EQ(ra.stats.max_rel_err, first.stats.max_rel_err);
  EXPECT_EQ(rb.stats.max_rel_err, first.stats.max_rel_err);
  EXPECT_EQ(ra.stats.bytes_moved, first.stats.bytes_moved);
  EXPECT_EQ(ra.stats.makespan, first.stats.makespan);
}

TEST(JobService, ObservabilitySurfaceIsPopulated) {
  nsv::JobService service(small_machine());
  nsv::JobRequest request;
  request.config = small_gemm();
  request.tenant = "alice";
  nsv::JobHandle a = service.submit(request);
  request.tenant = "bob";
  nsv::JobHandle b = service.submit(request);
  a.wait();
  b.wait();

  const auto histograms = service.metrics().histogram_values();
  ASSERT_TRUE(histograms.count("svc.latency.queue_wait"));
  ASSERT_TRUE(histograms.count("svc.latency.e2e"));
  EXPECT_EQ(histograms.at("svc.latency.e2e").count, 2u);
  EXPECT_GT(histograms.at("svc.latency.e2e").max, 0.0);

  const auto gauges = service.metrics().gauge_values();
  EXPECT_TRUE(gauges.count("svc.queue.depth"));
  EXPECT_TRUE(gauges.count("svc.queue.high_water"));
  EXPECT_TRUE(gauges.count("svc.reserved.storage"));
  EXPECT_TRUE(gauges.count("svc.reserved.dram"));
  EXPECT_DOUBLE_EQ(gauges.at("svc.reserved.dram"), 0.0);  // all released

  // The job trace interleaves both tenants' queue/run spans.
  EXPECT_GT(service.job_trace().event_count(), 0u);
  const std::string trace = service.job_trace().to_json();
  EXPECT_NE(trace.find("tenant:alice"), std::string::npos);
  EXPECT_NE(trace.find("tenant:bob"), std::string::npos);
  EXPECT_NE(trace.find("\"cat\": \"run\""), std::string::npos);

  const std::string json = service.metrics().to_json();
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"svc.latency.e2e\""), std::string::npos);
}

TEST(JobService, CancellationInterruptsChunkRetryBackoff) {
  // Every root read fails forever and the chunk retry policy sleeps long
  // between attempts: without cancellation this job would spin in the
  // data plane for minutes. Cancel must land mid-backoff.
  auto opts = small_machine();
  opts.workers = 1;
  opts.resilience.retry.max_attempts = 1000;
  opts.resilience.retry.base_backoff_s = 0.5;
  opts.resilience.retry.max_backoff_s = 0.5;
  nsv::JobService service(opts);

  nsv::JobRequest request;
  request.config = small_gemm();
  request.chaos.seed = 3;
  request.chaos.read_fault_rate = 1.0;

  nsv::JobHandle handle = service.submit(request);
  while (handle.state() == nsv::JobState::Queued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Let the job hit the failing read and enter retry/backoff.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto cancel_time = std::chrono::steady_clock::now();
  handle.cancel();
  const nsv::JobResult& result = handle.wait();
  const double cancel_latency =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    cancel_time)
          .count();

  EXPECT_EQ(result.state, nsv::JobState::Cancelled);
  EXPECT_GE(result.chunk_retries, 1u);
  // The sliced backoff sleep re-checks the abort hook every millisecond;
  // anything near the 0.5 s backoff (let alone 1000 of them) means the
  // cancellation was not honored mid-sleep.
  EXPECT_LT(cancel_latency, 2.0);
}

TEST(JobService, BackoffSleepsNeverOverrunTheJobDeadline) {
  // The retry policy wants 5 s backoffs but the job's deadline is 0.4 s:
  // sleeps must be clamped to the remaining budget and the job must fail
  // with a deadline error shortly after it passes.
  auto opts = small_machine();
  opts.workers = 1;
  opts.resilience.retry.max_attempts = 100;
  opts.resilience.retry.base_backoff_s = 5.0;
  opts.resilience.retry.max_backoff_s = 5.0;
  nsv::JobService service(opts);

  nsv::JobRequest request;
  request.config = small_gemm();
  request.deadline_s = 0.4;
  request.chaos.seed = 3;
  request.chaos.read_fault_rate = 1.0;

  const auto submit_time = std::chrono::steady_clock::now();
  nsv::JobHandle handle = service.submit(request);
  const nsv::JobResult& result = handle.wait();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    submit_time)
          .count();

  EXPECT_EQ(result.state, nsv::JobState::Failed);
  EXPECT_NE(result.error.find("deadline"), std::string::npos) << result.error;
  EXPECT_GE(result.chunk_retries, 1u);
  // One un-clamped 5 s backoff would already blow this bound.
  EXPECT_LT(elapsed, 2.5);
}

TEST(JobService, RegistryTracksActiveJobsAndTenants) {
  nsv::JobService service(small_machine());
  EXPECT_EQ(service.job_count(), 0u);
  EXPECT_EQ(service.active_tenants(), 0u);
  const nsv::JobFootprint blocker = block_staging(service);

  nsv::JobRequest request;
  request.config = small_gemm();
  request.tenant = "alice";
  nsv::JobHandle a = service.submit(request);
  nsv::JobHandle b = service.submit(request);
  request.tenant = "bob";
  nsv::JobHandle c = service.submit(request);

  EXPECT_EQ(service.job_count(), 3u);
  EXPECT_EQ(service.active_tenants(), 2u);
  // The svc.jobs.active gauge mirrors job_count incrementally.
  EXPECT_DOUBLE_EQ(service.metrics().gauge_values().at("svc.jobs.active"),
                   3.0);

  // find_job resolves live jobs by id; job_ids lists ascending.
  nsv::JobHandle found = service.find_job(b.id());
  ASSERT_TRUE(found.valid());
  EXPECT_EQ(found.id(), b.id());
  const std::vector<std::uint64_t> ids = service.job_ids();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_FALSE(service.find_job(999).valid());

  service.admission().release(blocker);
  service.kick();
  a.wait();
  b.wait();
  c.wait();
  service.wait_all();
  EXPECT_EQ(service.job_count(), 0u);
  EXPECT_EQ(service.active_tenants(), 0u);
  EXPECT_DOUBLE_EQ(service.metrics().gauge_values().at("svc.jobs.active"),
                   0.0);
  // Terminal jobs stay findable (retention window).
  EXPECT_TRUE(service.find_job(a.id()).valid());
  EXPECT_EQ(service.find_job(a.id()).state(), nsv::JobState::Done);
}

TEST(JobService, FinishedJobsEvictPastRetentionBound) {
  auto opts = small_machine();
  opts.max_finished_jobs = 2;
  nsv::JobService service(opts);

  nsv::JobRequest request;
  request.config = small_gemm();
  std::vector<nsv::JobHandle> handles;
  for (int i = 0; i < 4; ++i) handles.push_back(service.submit(request));
  for (auto& h : handles) h.wait();
  service.wait_all();

  // Only the newest two terminal jobs remain findable; the handles the
  // caller already holds keep working regardless.
  EXPECT_EQ(service.job_ids().size(), 2u);
  EXPECT_FALSE(service.find_job(handles[0].id()).valid());
  EXPECT_TRUE(service.find_job(handles[3].id()).valid());
  EXPECT_EQ(handles[0].result().state, nsv::JobState::Done);
}

TEST(JobService, RejectedJobIsRegisteredAsTerminal) {
  auto opts = small_machine();
  opts.machine.root_capacity = 1ULL << 20;
  nsv::JobService service(opts);
  nsv::JobRequest request;
  request.config = na::GemmConfig{.n = 512};
  nsv::JobHandle handle = service.submit(request);
  EXPECT_EQ(handle.wait().state, nsv::JobState::Rejected);
  // Registered (fetchable by id) but never counted active.
  EXPECT_TRUE(service.find_job(handle.id()).valid());
  EXPECT_EQ(service.job_count(), 0u);
  EXPECT_DOUBLE_EQ(service.metrics().gauge_values().at("svc.jobs.active"),
                   0.0);
}

TEST(JobService, SnapshotIsSafeWhileRunningAndWaitForChangeWakes) {
  nsv::JobService service(small_machine());
  const nsv::JobFootprint blocker = block_staging(service);
  nsv::JobRequest request;
  request.config = small_gemm();
  nsv::JobHandle handle = service.submit(request);

  const nsv::JobResult queued = handle.snapshot();
  EXPECT_EQ(queued.state, nsv::JobState::Queued);

  // wait_for_change times out while nothing happens...
  EXPECT_EQ(handle.wait_for_change(nsv::JobState::Queued,
                                   std::chrono::milliseconds(50)),
            nsv::JobState::Queued);

  // ...and wakes promptly (well inside the timeout) once the admission
  // blocker is released and the job starts running.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    service.admission().release(blocker);
    service.kick();
  });
  const nsv::JobState next = handle.wait_for_change(
      nsv::JobState::Queued, std::chrono::milliseconds(5000));
  EXPECT_NE(next, nsv::JobState::Queued);
  releaser.join();
  handle.wait();
  EXPECT_EQ(handle.snapshot().state, nsv::JobState::Done);
}

TEST(JobService, TrySubmitBatchAdmitsAllUnderOnePass) {
  auto opts = small_machine();
  opts.max_queue_depth = 4;
  nsv::JobService service(opts);
  const nsv::JobFootprint blocker = block_staging(service);

  nsv::JobRequest request;
  request.config = small_gemm();
  // 6 requests into a queue of 4: the first four are admitted in
  // order, the overflow is rejected queue-full — all in one call.
  std::vector<nsv::JobRequest> batch(6, request);
  std::vector<nsv::JobHandle> handles =
      service.try_submit_batch(std::move(batch));
  ASSERT_EQ(handles.size(), 6u);
  for (std::size_t i = 0; i + 1 < handles.size(); ++i) {
    EXPECT_LT(handles[i].id(), handles[i + 1].id());
  }
  EXPECT_EQ(service.queue_depth(), 4u);
  EXPECT_EQ(handles[4].state(), nsv::JobState::Rejected);
  EXPECT_EQ(handles[5].state(), nsv::JobState::Rejected);
  EXPECT_EQ(handles[4].result().reject, nsv::RejectReason::QueueFull);

  service.admission().release(blocker);
  service.kick();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(handles[i].wait().state, nsv::JobState::Done);
  }
}
