// io module tests: PosixFile exactness, TempDir lifecycle, chunk store,
// and tiled-matrix preprocessing round trips.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>
#include <vector>

#include "northup/io/chunked_store.hpp"
#include "northup/io/posix_file.hpp"

namespace ni = northup::io;
namespace fs = std::filesystem;

TEST(PosixFile, WriteReadRoundTrip) {
  ni::TempDir dir("posix");
  ni::PosixFile f(dir.file("a.bin"));
  const std::string payload = "hello northup";
  f.pwrite_exact(payload.data(), payload.size(), 0);
  std::string got(payload.size(), '\0');
  f.pread_exact(got.data(), got.size(), 0);
  EXPECT_EQ(got, payload);
}

TEST(PosixFile, PositionalAccessDoesNotInterfere) {
  ni::TempDir dir("posix");
  ni::PosixFile f(dir.file("b.bin"));
  f.truncate(100);
  const char x = 'x';
  const char y = 'y';
  f.pwrite_exact(&x, 1, 10);
  f.pwrite_exact(&y, 1, 90);
  char got = 0;
  f.pread_exact(&got, 1, 10);
  EXPECT_EQ(got, 'x');
  f.pread_exact(&got, 1, 90);
  EXPECT_EQ(got, 'y');
}

TEST(PosixFile, TruncateAndSize) {
  ni::TempDir dir("posix");
  ni::PosixFile f(dir.file("c.bin"));
  EXPECT_EQ(f.size(), 0u);
  f.truncate(4096);
  EXPECT_EQ(f.size(), 4096u);
  f.truncate(100);
  EXPECT_EQ(f.size(), 100u);
}

TEST(PosixFile, ReadPastEofThrows) {
  ni::TempDir dir("posix");
  ni::PosixFile f(dir.file("d.bin"));
  f.truncate(10);
  char buf[20];
  EXPECT_THROW(f.pread_exact(buf, 20, 0), northup::util::IoError);
}

TEST(PosixFile, MoveTransfersDescriptor) {
  ni::TempDir dir("posix");
  ni::PosixFile a(dir.file("e.bin"));
  const int fd = a.fd();
  ni::PosixFile b(std::move(a));
  EXPECT_EQ(b.fd(), fd);
  EXPECT_FALSE(a.is_open());  // NOLINT(bugprone-use-after-move)
  char c = 'z';
  b.pwrite_exact(&c, 1, 0);  // still usable
}

TEST(PosixFile, OperationsOnClosedFileThrow) {
  ni::PosixFile f;
  char buf[1];
  EXPECT_THROW(f.pread_exact(buf, 1, 0), northup::util::Error);
  EXPECT_THROW(f.pwrite_exact(buf, 1, 0), northup::util::Error);
  EXPECT_THROW(f.truncate(1), northup::util::Error);
}

TEST(PosixFile, OpenMissingWithoutCreateThrows) {
  ni::TempDir dir("posix");
  EXPECT_THROW(ni::PosixFile(dir.file("missing.bin"), {.create = false}),
               northup::util::IoError);
}

TEST(TempDir, CreatesAndRemoves) {
  std::string path;
  {
    ni::TempDir dir("lifecycle");
    path = dir.path();
    EXPECT_TRUE(fs::is_directory(path));
    ni::PosixFile f(dir.file("inner.bin"));
    f.truncate(10);
  }
  EXPECT_FALSE(fs::exists(path));
}

TEST(TempDir, UniquePaths) {
  ni::TempDir a("same-tag");
  ni::TempDir b("same-tag");
  EXPECT_NE(a.path(), b.path());
}

TEST(ChunkedStore, WriteReadEraseChunks) {
  ni::TempDir dir("chunks");
  ni::ChunkedFileStore store(dir.path());
  std::vector<std::uint8_t> data(256);
  std::iota(data.begin(), data.end(), 0);
  store.write_chunk(7, data.data(), data.size());
  EXPECT_TRUE(store.has_chunk(7));
  EXPECT_EQ(store.chunk_bytes(7), 256u);

  std::vector<std::uint8_t> got(100);
  store.read_chunk(7, got.data(), got.size(), 50);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], static_cast<std::uint8_t>(50 + i));
  }

  store.erase_chunk(7);
  EXPECT_FALSE(store.has_chunk(7));
  EXPECT_THROW(store.chunk_bytes(7), northup::util::Error);
}

TEST(ChunkedStore, RewriteReplacesContent) {
  ni::TempDir dir("chunks");
  ni::ChunkedFileStore store(dir.path());
  const std::uint32_t a = 0x11111111, b = 0x22222222;
  store.write_chunk(0, &a, sizeof(a));
  store.write_chunk(0, &b, sizeof(b));
  std::uint32_t got = 0;
  store.read_chunk(0, &got, sizeof(got));
  EXPECT_EQ(got, b);
}

TEST(TiledMatrix, RoundTripsEvenTiles) {
  ni::TempDir dir("tiles");
  ni::ChunkedFileStore store(dir.path());
  constexpr std::size_t kRows = 8, kCols = 8, kTile = 4;
  std::vector<float> m(kRows * kCols);
  std::iota(m.begin(), m.end(), 0.0f);
  const auto tiles = ni::write_tiled_matrix(store, m.data(), kRows, kCols,
                                            sizeof(float), kTile, kTile);
  EXPECT_EQ(tiles, 4u);

  std::vector<float> tile(kTile * kTile);
  ni::read_matrix_tile(store, tile.data(), kRows, kCols, sizeof(float),
                       kTile, kTile, 1, 1);
  for (std::size_t r = 0; r < kTile; ++r) {
    for (std::size_t c = 0; c < kTile; ++c) {
      EXPECT_EQ(tile[r * kTile + c], m[(4 + r) * kCols + (4 + c)]);
    }
  }
}

TEST(TiledMatrix, ClipsEdgeTiles) {
  ni::TempDir dir("tiles");
  ni::ChunkedFileStore store(dir.path());
  constexpr std::size_t kRows = 5, kCols = 7, kTile = 4;
  std::vector<float> m(kRows * kCols);
  std::iota(m.begin(), m.end(), 0.0f);
  const auto tiles = ni::write_tiled_matrix(store, m.data(), kRows, kCols,
                                            sizeof(float), kTile, kTile);
  EXPECT_EQ(tiles, 4u);  // 2x2 grid with clipped edges

  // Bottom-right tile is 1 x 3.
  std::vector<float> tile(1 * 3);
  ni::read_matrix_tile(store, tile.data(), kRows, kCols, sizeof(float),
                       kTile, kTile, 1, 1);
  EXPECT_EQ(tile[0], m[4 * kCols + 4]);
  EXPECT_EQ(tile[2], m[4 * kCols + 6]);
}

TEST(PosixFile, DirectIoRequestFallsBackGracefully) {
  // O_DIRECT|O_SYNC per §III-D; tmpfs rejects O_DIRECT, and the wrapper
  // must fall back to buffered I/O rather than fail.
  ni::TempDir dir("direct");
  ni::PosixFile f(dir.file("d.bin"), {.create = true, .direct = true});
  const char payload[] = "direct-io";
  f.pwrite_exact(payload, sizeof(payload), 0);
  char got[16] = {};
  f.pread_exact(got, sizeof(payload), 0);
  EXPECT_STREQ(got, "direct-io");
  f.fsync_file();
}

TEST(PosixFile, EofErrorNamesRequestedAndGotSizes) {
  ni::TempDir dir("posix");
  ni::PosixFile f(dir.file("eof.bin"));
  f.truncate(10);
  char buf[32];
  try {
    f.pread_exact(buf, 32, 0);
    FAIL() << "expected IoError";
  } catch (const northup::util::IoError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("requested 32 B"), std::string::npos) << msg;
    EXPECT_NE(msg.find("got 10 B"), std::string::npos) << msg;
    EXPECT_NE(msg.find("eof.bin"), std::string::npos) << msg;
  }
}

TEST(PosixFile, FadviseIsBestEffort) {
  ni::TempDir dir("posix");
  ni::PosixFile f(dir.file("adv.bin"));
  f.truncate(1 << 16);
  // Whatever the platform supports, fadvise must not throw; the bool is
  // advisory just like MmapFile::advise.
  f.fadvise(ni::Advice::kSequential);
  f.fadvise(ni::Advice::kWillNeed, 0, 4096);
  f.fadvise(ni::Advice::kDontNeed);
  f.fadvise(ni::Advice::kNormal);
}

TEST(PosixFile, PreallocateExtendsFile) {
  ni::TempDir dir("posix");
  ni::PosixFile f(dir.file("pre.bin"));
  f.preallocate(1 << 16);
  EXPECT_EQ(f.size(), std::uint64_t{1} << 16);
  // Idempotent on an already-large file: never shrinks.
  f.preallocate(4096);
  EXPECT_EQ(f.size(), std::uint64_t{1} << 16);
}

TEST(ChunkedStore, ZeroSizeChunk) {
  ni::TempDir dir("chunks");
  ni::ChunkedFileStore store(dir.path());
  store.write_chunk(3, nullptr, 0);
  EXPECT_TRUE(store.has_chunk(3));
  EXPECT_EQ(store.chunk_bytes(3), 0u);
  // Zero-byte reads succeed; reading actual bytes past EOF throws.
  store.read_chunk(3, nullptr, 0);
  char c;
  EXPECT_THROW(store.read_chunk(3, &c, 1), northup::util::IoError);
  store.erase_chunk(3);
  EXPECT_FALSE(store.has_chunk(3));
}

TEST(ChunkedStore, ReopensExistingStore) {
  ni::TempDir dir("chunks");
  std::vector<std::uint8_t> data(128);
  std::iota(data.begin(), data.end(), 1);
  {
    ni::ChunkedFileStore store(dir.path());
    store.write_chunk(0, data.data(), data.size());
    store.write_chunk(12, data.data(), 64);
  }
  // A second store over the same directory adopts the chunk files left by
  // the first — the §V-B preprocessing output is reusable across runs.
  ni::ChunkedFileStore store(dir.path());
  EXPECT_EQ(store.chunk_count(), 2u);
  ASSERT_TRUE(store.has_chunk(0));
  ASSERT_TRUE(store.has_chunk(12));
  EXPECT_EQ(store.chunk_bytes(0), 128u);
  EXPECT_EQ(store.chunk_bytes(12), 64u);
  std::vector<std::uint8_t> got(128);
  store.read_chunk(0, got.data(), got.size());
  EXPECT_EQ(got, data);
}

TEST(ChunkedStore, ReopenIgnoresForeignFiles) {
  ni::TempDir dir("chunks");
  {
    ni::ChunkedFileStore store(dir.path());
    const int x = 42;
    store.write_chunk(5, &x, sizeof(x));
  }
  // Stray files that don't match chunk_<id>.bin must not be adopted.
  ni::PosixFile(dir.file("notes.txt")).pwrite_exact("hi", 2, 0);
  ni::PosixFile(dir.file("chunk_abc.bin")).pwrite_exact("hi", 2, 0);
  ni::ChunkedFileStore store(dir.path());
  EXPECT_EQ(store.chunk_count(), 1u);
  EXPECT_TRUE(store.has_chunk(5));
}

TEST(ChunkedStore, ChunkFilesOutliveTheStore) {
  // The TempDir (and the chunk files in it) outlive the store object:
  // dropping the store must only close descriptors, never delete data.
  ni::TempDir dir("chunks");
  const double pi = 3.14159;
  {
    ni::ChunkedFileStore store(dir.path());
    store.write_chunk(9, &pi, sizeof(pi));
  }
  EXPECT_TRUE(fs::exists(fs::path(dir.path()) / "chunk_9.bin"));
  {
    ni::ChunkedFileStore store(dir.path());
    double got = 0.0;
    store.read_chunk(9, &got, sizeof(got));
    EXPECT_EQ(got, pi);
  }
  EXPECT_TRUE(fs::exists(fs::path(dir.path()) / "chunk_9.bin"));
}
