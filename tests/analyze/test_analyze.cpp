// northup-analyze golden tests.
//
// Two layers: a hand-built RecordedRun with nanosecond-exact expectations
// for the critical-path walk, and a real (small, deterministic) Runtime
// run asserting the ISSUE-5 acceptance criteria — critical path bounded
// by the makespan, per-phase attribution summing to the path length,
// every event's span parent resolving, the identity-model what-if
// reproducing the measured I/O time, and the emitted trace being valid
// Chrome-trace JSON.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "northup/analyze/analyze.hpp"
#include "northup/core/runtime.hpp"
#include "northup/data/scoped_buffer.hpp"
#include "northup/io/posix_file.hpp"
#include "northup/topo/presets.hpp"
#include "support/minijson.hpp"

namespace na = northup::analyze;
namespace nc = northup::core;
namespace nd = northup::data;
namespace ni = northup::io;
namespace no = northup::obs;
namespace nt = northup::topo;

using northup::testjson::Json;
using northup::testjson::JsonParser;

namespace {

/// run[0,100] (runtime) > {move[10,60] (io), B[70,90] (runtime) >
/// compute[75,85] (cpu)}. Times in ns. The kIo event mirrors the move
/// and must NOT appear on the critical path (it would double-charge it).
no::RecordedRun synthetic_run() {
  no::RecordedRun run;
  run.names = {"", "run", "runtime", "move", "io", "B", "compute", "cpu"};
  run.node_names[0] = "storage";
  run.node_names[1] = "dram";
  run.thread_count = 1;

  auto ev = [](std::uint64_t ts, std::uint64_t dur, no::EventKind kind,
               no::SpanId span, no::SpanId parent, std::uint32_t name,
               std::uint32_t phase) {
    no::Event e;
    e.ts_ns = ts;
    e.dur_ns = dur;
    e.kind = kind;
    e.span = span;
    e.parent = parent;
    e.name = name;
    e.phase = phase;
    return e;
  };

  no::Event begin_run = ev(0, 0, no::EventKind::kSpanBegin, 1, 0, 1, 2);
  no::Event move = ev(10, 50, no::EventKind::kMove, 1, 0, 3, 4);
  move.value = 1000;
  move.node = 0;
  move.node2 = 1;
  no::Event io = ev(10, 50, no::EventKind::kIo, 1, 0, 3, 4);
  io.value = 1000;
  io.node = 0;
  io.aux = 0;  // read
  no::Event begin_b = ev(70, 0, no::EventKind::kSpanBegin, 2, 1, 5, 2);
  no::Event compute = ev(75, 10, no::EventKind::kCompute, 2, 0, 6, 7);
  compute.node = 1;
  no::Event end_b = ev(90, 0, no::EventKind::kSpanEnd, 2, 0, 5, 2);
  no::Event end_run = ev(100, 0, no::EventKind::kSpanEnd, 1, 0, 1, 2);

  run.events = {begin_run, move, io, begin_b, compute, end_b, end_run};
  return run;
}

/// Chrome-trace structural checks shared with the real-run test: top
/// keys, every s-flow has a matching f-flow, X events are well-formed.
void check_chrome_trace(const std::string& json) {
  const Json root = JsonParser(json).parse();
  ASSERT_TRUE(root.has("traceEvents"));
  ASSERT_TRUE(root.has("displayTimeUnit"));
  std::set<double> flow_starts;
  std::set<double> flow_ends;
  std::size_t x_events = 0;
  for (const Json& e : root.at("traceEvents").array) {
    ASSERT_TRUE(e.has("ph"));
    const std::string ph = e.at("ph").string;
    if (ph == "X") {
      ++x_events;
      EXPECT_TRUE(e.has("pid"));
      EXPECT_TRUE(e.has("tid"));
      EXPECT_TRUE(e.has("ts"));
      EXPECT_TRUE(e.has("dur"));
      EXPECT_TRUE(e.has("name"));
      EXPECT_GE(e.at("dur").number, 0.0);
    } else if (ph == "s") {
      flow_starts.insert(e.at("id").number);
    } else if (ph == "f") {
      EXPECT_EQ(e.at("bp").string, "e");
      flow_ends.insert(e.at("id").number);
    }
  }
  EXPECT_GT(x_events, 0u);
  EXPECT_EQ(flow_starts, flow_ends);  // every flow resolves
}

}  // namespace

TEST(Analyze, SummarizeCountsSyntheticRun) {
  const no::RecordedRun run = synthetic_run();
  const na::Summary s = na::summarize(run);
  EXPECT_EQ(s.events, 7u);
  EXPECT_EQ(s.spans, 2u);
  EXPECT_EQ(s.moves, 1u);
  EXPECT_EQ(s.ios, 1u);
  EXPECT_EQ(s.computes, 1u);
  EXPECT_EQ(s.bytes_moved, 1000u);
  EXPECT_NEAR(s.wall_seconds, 100e-9, 1e-15);
}

TEST(Analyze, ValidateAcceptsWellFormedAndFlagsOrphans) {
  no::RecordedRun run = synthetic_run();
  EXPECT_TRUE(na::validate(run).ok);

  // Orphan parent: a span whose parent id was never begun.
  no::Event bad;
  bad.ts_ns = 5;
  bad.kind = no::EventKind::kSpanBegin;
  bad.span = 99;
  bad.parent = 12345;
  run.events.push_back(bad);
  const na::ValidationReport r = na::validate(run);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.orphan_parents, 1u);
  EXPECT_EQ(r.unclosed_spans, 1u);  // span 99 never ends either
  EXPECT_FALSE(r.problems.empty());
}

TEST(Analyze, CriticalPathAttributionIsExactOnSyntheticRun) {
  const no::RecordedRun run = synthetic_run();
  const na::CriticalPath cp = na::measured_critical_path(run);
  EXPECT_NEAR(cp.length_s, 100e-9, 1e-15);

  // io: the move [10,60]; cpu: the compute [75,85]; runtime: the two
  // spans' own gaps [0,10]+[60,70]+[70,75]+[85,90]+[90,100] = 40 ns.
  ASSERT_EQ(cp.phase_seconds.count("io"), 1u);
  ASSERT_EQ(cp.phase_seconds.count("cpu"), 1u);
  ASSERT_EQ(cp.phase_seconds.count("runtime"), 1u);
  EXPECT_NEAR(cp.phase_seconds.at("io"), 50e-9, 1e-15);
  EXPECT_NEAR(cp.phase_seconds.at("cpu"), 10e-9, 1e-15);
  EXPECT_NEAR(cp.phase_seconds.at("runtime"), 40e-9, 1e-15);

  // Attribution must sum exactly to the path length, and segments must
  // tile the window in increasing time order.
  double total = 0.0;
  for (const auto& [phase, secs] : cp.phase_seconds) total += secs;
  EXPECT_NEAR(total, cp.length_s, 1e-12);
  double cursor = 0.0;
  for (const na::PathSegment& seg : cp.segments) {
    EXPECT_NEAR(seg.begin_s, cursor, 1e-15);
    EXPECT_GT(seg.end_s, seg.begin_s);
    cursor = seg.end_s;
  }
  EXPECT_NEAR(cursor, cp.length_s, 1e-15);
}

TEST(Analyze, IdentityWhatIfReproducesMeasuredIoOnSyntheticRun) {
  const no::RecordedRun run = synthetic_run();
  EXPECT_NEAR(na::measured_io_seconds(run), 50e-9, 1e-15);
  const auto records = na::io_records(run);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].is_write);
  EXPECT_EQ(records[0].bytes, 1000u);

  const na::WhatIf w = na::whatif_storage(run);
  EXPECT_NEAR(w.identity.io_time, w.measured_io_s,
              w.measured_io_s * 1e-9 + 1e-15);
  EXPECT_FALSE(w.sweep.empty());
}

TEST(Analyze, ChromeTraceOfSyntheticRunIsValid) {
  const std::string json = na::chrome_trace_json(synthetic_run());
  check_chrome_trace(json);
  // Node tracks are named after the recorded node names.
  EXPECT_NE(json.find("\"storage\""), std::string::npos);
  EXPECT_NE(json.find("\"dram\""), std::string::npos);
  // Counter tracks exist for the destination node of the move.
  EXPECT_NE(json.find("\"bw dram\""), std::string::npos);
  EXPECT_NE(json.find("\"occupancy dram\""), std::string::npos);
}

TEST(Analyze, EmptyRunProducesEmptyButValidOutputs) {
  const no::RecordedRun empty;
  EXPECT_EQ(na::summarize(empty).events, 0u);
  EXPECT_TRUE(na::validate(empty).ok);
  const na::CriticalPath cp = na::measured_critical_path(empty);
  EXPECT_DOUBLE_EQ(cp.length_s, 0.0);
  EXPECT_TRUE(cp.segments.empty());
  const Json root = JsonParser(na::chrome_trace_json(empty)).parse();
  EXPECT_TRUE(root.has("traceEvents"));
}

namespace {

/// A small deterministic out-of-core run: chunked staging descent over a
/// file-backed root, one spawn per chunk. Produces moves, I/O legs,
/// allocs, and a three-deep span chain (run -> spawn -> moves).
void golden_run(nc::Runtime& rt) {
  auto& dm = rt.dm();
  const auto root = rt.tree().root();
  constexpr std::uint64_t kBytes = 32 << 10;
  constexpr std::uint64_t kChunk = 16 << 10;
  nd::ScopedBuffer in_root(dm, kBytes, root);
  nd::ScopedBuffer out_root(dm, kBytes, root);
  std::vector<float> host(kBytes / sizeof(float), 2.0f);
  dm.write_from_host(*in_root, host.data(), kBytes);

  rt.run([&](nc::ExecContext& ctx) {
    const auto child = ctx.child(0);
    for (std::uint64_t off = 0; off < kBytes; off += kChunk) {
      ctx.northup_spawn(child, [&, off](nc::ExecContext&) {
        nd::ScopedBuffer stage(dm, kChunk, child);
        dm.move_data_down(*stage, *in_root,
                          {.size = kChunk, .src_offset = off});
        dm.move_data_up(*out_root, *stage,
                        {.size = kChunk, .dst_offset = off});
      });
    }
  });
  dm.read_to_host(host.data(), *out_root, kBytes);
}

}  // namespace

TEST(AnalyzeGolden, RealRunSatisfiesAcceptanceCriteria) {
  nt::PresetOptions opts;
  opts.root_capacity = 1ULL << 20;
  opts.staging_capacity = 64ULL << 10;
  nc::Runtime rt(nt::apu_two_level(northup::mem::StorageKind::Ssd, opts));
  golden_run(rt);

  ASSERT_NE(rt.event_log(), nullptr);
  EXPECT_EQ(rt.event_log()->dropped(), 0u);
  const no::RecordedRun run = rt.event_log()->snapshot();

  // Every event's span chain resolves; spans all close.
  const na::ValidationReport v = na::validate(run);
  EXPECT_TRUE(v.ok) << (v.problems.empty() ? "" : v.problems.front());

  const na::Summary s = na::summarize(run);
  EXPECT_GE(s.spans, 3u);   // run + 2 spawns
  EXPECT_GE(s.moves, 5u);   // host in + 2x(down+up) + host out
  EXPECT_GT(s.ios, 0u);     // the preset root is file-backed
  EXPECT_GE(s.allocs, 4u);
  EXPECT_EQ(s.dropped, 0u);

  // The flight-recorder span chain: every spawn span's parent is the run
  // span, and moves inside chunks attribute to the spawn spans.
  std::set<no::SpanId> span_ids;
  for (const no::Event& e : run.events) {
    if (e.kind == no::EventKind::kSpanBegin) span_ids.insert(e.span);
  }
  for (const no::Event& e : run.events) {
    if (e.kind == no::EventKind::kSpanBegin && e.parent != no::kNoSpan) {
      EXPECT_EQ(span_ids.count(e.parent), 1u);
    }
  }

  // Critical path: bounded by the measured makespan (== recorded
  // window), attribution sums to the length.
  const na::CriticalPath cp = na::measured_critical_path(run);
  EXPECT_GT(cp.length_s, 0.0);
  EXPECT_LE(cp.length_s, s.wall_seconds + 1e-12);
  double total = 0.0;
  for (const auto& [phase, secs] : cp.phase_seconds) total += secs;
  EXPECT_NEAR(total, cp.length_s, cp.length_s * 1e-9 + 1e-12);

  // Identity what-if reproduces the measured I/O time.
  const na::WhatIf w = na::whatif_storage(run);
  EXPECT_GT(w.measured_io_s, 0.0);
  EXPECT_NEAR(w.identity.io_time, w.measured_io_s, w.measured_io_s * 1e-6);
  EXPECT_GE(w.measured_total_s, w.measured_io_s);
  EXPECT_FALSE(w.sweep.empty());

  // The emitted trace is valid Chrome-trace JSON.
  check_chrome_trace(na::chrome_trace_json(run));

  // The report renders without blowing up and mentions the validation.
  const std::string rep = na::report(run);
  EXPECT_NE(rep.find("validation: ok"), std::string::npos) << rep;

  // .nulog round trip feeds the same analysis.
  ni::TempDir dir("analyze-golden");
  const std::string path = dir.path() + "/run.nulog";
  rt.write_event_log(path);
  const no::RecordedRun back = no::EventLog::read_file(path);
  EXPECT_EQ(back.events.size(), run.events.size());
  EXPECT_TRUE(na::validate(back).ok);
}
