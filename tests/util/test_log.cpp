// Logger tests: level gating and names.
#include <gtest/gtest.h>

#include "northup/util/log.hpp"

namespace nu = northup::util;

namespace {

/// RAII guard restoring the global log level.
class LevelGuard {
 public:
  LevelGuard() : saved_(nu::Log::level()) {}
  ~LevelGuard() { nu::Log::set_level(saved_); }

 private:
  nu::LogLevel saved_;
};

}  // namespace

TEST(Log, LevelRoundTrips) {
  LevelGuard guard;
  nu::Log::set_level(nu::LogLevel::Debug);
  EXPECT_EQ(nu::Log::level(), nu::LogLevel::Debug);
  nu::Log::set_level(nu::LogLevel::Error);
  EXPECT_EQ(nu::Log::level(), nu::LogLevel::Error);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(nu::Log::level_name(nu::LogLevel::Trace), "TRACE");
  EXPECT_STREQ(nu::Log::level_name(nu::LogLevel::Info), "INFO");
  EXPECT_STREQ(nu::Log::level_name(nu::LogLevel::Error), "ERROR");
}

TEST(Log, MacroGatesBelowActiveLevel) {
  LevelGuard guard;
  nu::Log::set_level(nu::LogLevel::Error);
  // The streamed expression must not be evaluated when gated.
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return "x";
  };
  NU_LOG_DEBUG << count();
  EXPECT_EQ(evaluations, 0);
  nu::Log::set_level(nu::LogLevel::Trace);
  NU_LOG_DEBUG << count();
  EXPECT_EQ(evaluations, 1);
}
