// util::json — the shared JSON reader/writer behind the HTTP control
// plane. The parser faces *client* input, so malformed-document
// behavior (typed errors naming origin + byte offset) matters as much
// as the happy path.
#include <gtest/gtest.h>

#include <string>

#include "northup/util/assert.hpp"
#include "northup/util/json.hpp"

namespace nj = northup::util::json;

TEST(Json, ParsesFullGrammar) {
  const nj::Value v = nj::parse(
      R"({"s": "a\"b\\c\nd", "i": -42, "f": 2.5e-1, "t": true, "f2": false,
          "n": null, "arr": [1, [2], {"k": 3}], "obj": {"nested": "x"},
          "u": "café"})",
      "test");
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.str("s"), "a\"b\\c\nd");
  EXPECT_DOUBLE_EQ(v.num("i"), -42.0);
  EXPECT_DOUBLE_EQ(v.num("f"), 0.25);
  EXPECT_TRUE(v.boolean_or("t", false));
  EXPECT_FALSE(v.boolean_or("f2", true));
  EXPECT_TRUE(v.at("n").is_null());
  ASSERT_EQ(v.at("arr").array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("arr").array[1].array.at(0).number, 2.0);
  EXPECT_DOUBLE_EQ(v.at("arr").array[2].num("k"), 3.0);
  EXPECT_EQ(v.at("obj").str("nested"), "x");
  EXPECT_EQ(v.str("u"), "caf\xc3\xa9");  // \u escape -> UTF-8
}

TEST(Json, TolerantAccessorsFallBack) {
  const nj::Value v = nj::parse(R"({"n": 7, "s": "x"})", "test");
  EXPECT_DOUBLE_EQ(v.num("missing", 1.5), 1.5);
  EXPECT_EQ(v.u64("n"), 7u);
  EXPECT_EQ(v.u64("s", 9), 9u);  // wrong kind -> fallback
  EXPECT_EQ(v.str("n", "d"), "d");
  EXPECT_TRUE(v.at("missing").is_null());
  EXPECT_FALSE(v.has("missing"));
}

TEST(Json, MalformedInputNamesOriginAndOffset) {
  try {
    nj::parse(R"({"a": )", "POST /jobs");
    FAIL() << "expected util::Error";
  } catch (const northup::util::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("POST /jobs"), std::string::npos) << what;
    EXPECT_NE(what.find("byte"), std::string::npos) << what;
  }
  EXPECT_THROW(nj::parse("", "x"), northup::util::Error);
  EXPECT_THROW(nj::parse("{\"a\": 1} trailing", "x"), northup::util::Error);
  EXPECT_THROW(nj::parse("{'single': 1}", "x"), northup::util::Error);
  EXPECT_THROW(nj::parse("[1, 2,]", "x"), northup::util::Error);
  EXPECT_THROW(nj::parse("\"unterminated", "x"), northup::util::Error);
  EXPECT_THROW(nj::parse("truth", "x"), northup::util::Error);
}

TEST(Json, EscapeAndFormatDouble) {
  EXPECT_EQ(nj::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(nj::escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(nj::format_double(0.1), "0.1");  // shortest round trip
  EXPECT_EQ(nj::format_double(3.0), "3");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(nj::format_double(inf), "0");  // documents always parse
  // Emit -> parse -> exact same double.
  const double third = 1.0 / 3.0;
  const nj::Value v =
      nj::parse("[" + nj::format_double(third) + "]", "roundtrip");
  EXPECT_DOUBLE_EQ(v.array.at(0).number, third);
}
