// Unit tests for the util module: byte parsing/formatting, statistics,
// RNG determinism, tables, aligned buffers, and the check macros.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "northup/util/aligned.hpp"
#include "northup/util/assert.hpp"
#include "northup/util/bytes.hpp"
#include "northup/util/rng.hpp"
#include "northup/util/stats.hpp"
#include "northup/util/table.hpp"
#include "northup/util/timer.hpp"

namespace nu = northup::util;

TEST(Bytes, ParsesPlainNumbers) {
  EXPECT_EQ(nu::parse_bytes("0"), 0u);
  EXPECT_EQ(nu::parse_bytes("4096"), 4096u);
}

TEST(Bytes, ParsesBinarySuffixes) {
  EXPECT_EQ(nu::parse_bytes("1K"), 1024u);
  EXPECT_EQ(nu::parse_bytes("2M"), 2ULL << 20);
  EXPECT_EQ(nu::parse_bytes("2G"), 2ULL << 30);
  EXPECT_EQ(nu::parse_bytes("1T"), 1ULL << 40);
}

TEST(Bytes, AcceptsSuffixVariants) {
  EXPECT_EQ(nu::parse_bytes("2g"), 2ULL << 30);
  EXPECT_EQ(nu::parse_bytes("2GB"), 2ULL << 30);
  EXPECT_EQ(nu::parse_bytes("2GiB"), 2ULL << 30);
  EXPECT_EQ(nu::parse_bytes("1.5K"), 1536u);
}

TEST(Bytes, RejectsMalformedInput) {
  EXPECT_THROW(nu::parse_bytes(""), nu::Error);
  EXPECT_THROW(nu::parse_bytes("G"), nu::Error);
  EXPECT_THROW(nu::parse_bytes("12X"), nu::Error);
}

TEST(Bytes, FormatRoundTripsMagnitude) {
  EXPECT_EQ(nu::format_bytes(512), "512 B");
  EXPECT_EQ(nu::format_bytes(2ULL << 30), "2.0 GiB");
  EXPECT_EQ(nu::format_bytes(1536), "1.5 KiB");
}

TEST(Bytes, FormatsSecondsAdaptively) {
  EXPECT_EQ(nu::format_seconds(2.5), "2.500 s");
  EXPECT_EQ(nu::format_seconds(0.0025), "2.500 ms");
  EXPECT_EQ(nu::format_seconds(2.5e-6), "2.500 us");
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  nu::RunningStats rs;
  for (double x : xs) rs.add(x);
  const double mean =
      std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean, 1e-12);
  EXPECT_NEAR(rs.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  nu::RunningStats rs;
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  rs.add(42.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(nu::percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(nu::percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(nu::percentile(xs, 50), 25.0);
}

TEST(Percentile, RejectsBadArgs) {
  EXPECT_THROW(nu::percentile({}, 50), nu::Error);
  EXPECT_THROW(nu::percentile({1.0}, 101), nu::Error);
}

TEST(Geomean, KnownValues) {
  EXPECT_NEAR(nu::geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(nu::geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_THROW(nu::geomean({1.0, -1.0}), nu::Error);
}

TEST(Rng, DeterministicForSameSeed) {
  nu::Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  nu::Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInRange) {
  nu::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BoundedCoversRangeUniformly) {
  nu::Xoshiro256 rng(7);
  std::vector<int> histogram(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.bounded(10)];
  for (int count : histogram) {
    EXPECT_GT(count, kDraws / 10 * 0.9);
    EXPECT_LT(count, kDraws / 10 * 1.1);
  }
}

TEST(Rng, RangeIsInclusive) {
  nu::Xoshiro256 rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(TextTable, AlignsColumns) {
  nu::TextTable t;
  t.set_header({"a", "long-header"});
  t.add_row({"xxxxx", "1"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a      long-header"), std::string::npos);
  EXPECT_NE(out.find("xxxxx  1"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  nu::TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), nu::Error);
}

TEST(AlignedBuffer, RespectsAlignment) {
  nu::AlignedBuffer buf(1000, 4096);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 4096, 0u);
  EXPECT_EQ(buf.size(), 1000u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  nu::AlignedBuffer a(64);
  std::byte* p = a.data();
  nu::AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): testing move
}

TEST(AlignedBuffer, RejectsNonPowerOfTwoAlignment) {
  EXPECT_THROW(nu::AlignedBuffer(64, 48), nu::Error);
}

TEST(CheckMacro, ThrowsWithContext) {
  try {
    NU_CHECK(1 == 2, "math is broken");
    FAIL() << "NU_CHECK did not throw";
  } catch (const nu::Error& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"),
              std::string::npos);
  }
}

TEST(Timer, AccumulatesAcrossIntervals) {
  nu::AccumulatingTimer acc;
  {
    nu::ScopedTimer guard(acc);
    volatile int sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  const double first = acc.total_seconds();
  EXPECT_GT(first, 0.0);
  {
    nu::ScopedTimer guard(acc);
  }
  EXPECT_GE(acc.total_seconds(), first);
}
