// CLI flag parser tests.
#include <gtest/gtest.h>

#include "northup/util/assert.hpp"
#include "northup/util/flags.hpp"

namespace nu = northup::util;

namespace {
nu::Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return nu::Flags(static_cast<int>(argv.size()), argv.data());
}
}  // namespace

TEST(Flags, EqualsAndSpaceForms) {
  const auto f = parse({"--n=512", "--storage", "hdd"});
  EXPECT_EQ(f.get_int("n", 0), 512);
  EXPECT_EQ(f.get("storage"), "hdd");
}

TEST(Flags, BareBooleans) {
  // Note: a bare flag followed by a non-flag token would consume it as a
  // value (the space form is greedy), so positionals come first or the
  // `=` form is used.
  const auto f = parse({"positional", "--verify", "--fast"});
  EXPECT_TRUE(f.get_bool("verify"));
  EXPECT_TRUE(f.get_bool("fast"));
  EXPECT_FALSE(f.get_bool("absent"));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "positional");
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x"));
  EXPECT_TRUE(parse({"--x=on"}).get_bool("x"));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=off"}).get_bool("x", true));
  EXPECT_THROW(parse({"--x=maybe"}).get_bool("x"), nu::Error);
}

TEST(Flags, DefaultsWhenAbsent) {
  const auto f = parse({});
  EXPECT_EQ(f.get("name", "fallback"), "fallback");
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("x", 2.5), 2.5);
  EXPECT_EQ(f.get_bytes("cap", 1024), 1024u);
}

TEST(Flags, ByteSizes) {
  const auto f = parse({"--cap=2G", "--staging", "512K"});
  EXPECT_EQ(f.get_bytes("cap", 0), 2ULL << 30);
  EXPECT_EQ(f.get_bytes("staging", 0), 512ULL << 10);
}

TEST(Flags, MalformedValuesThrow) {
  EXPECT_THROW(parse({"--n=abc"}).get_int("n", 0), nu::Error);
  EXPECT_THROW(parse({"--x=1.2.3"}).get_double("x", 0), nu::Error);
  EXPECT_THROW(parse({"--="}), nu::Error);
}

TEST(Flags, FlagFollowedByFlagIsBoolean) {
  const auto f = parse({"--a", "--b=2"});
  EXPECT_TRUE(f.get_bool("a"));
  EXPECT_EQ(f.get_int("b", 0), 2);
}

TEST(Flags, NegativeNumbersAsValues) {
  const auto f = parse({"--delta=-3"});
  EXPECT_EQ(f.get_int("delta", 0), -3);
}
