// Storage backend tests, parameterized over backend type where the
// behaviour must be identical (round trips, capacity accounting, stats).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "northup/io/posix_file.hpp"
#include "northup/memsim/projection.hpp"
#include "northup/memsim/storage.hpp"

namespace nm = northup::mem;
namespace ni = northup::io;
namespace nsim = northup::sim;

namespace {

/// Factory fixture: builds each Storage backend kind with 1 MiB capacity.
class StorageParamTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    const std::string which = GetParam();
    if (which == "dram") {
      storage_ = std::make_unique<nm::HostStorage>(
          "dram", nm::StorageKind::Dram, 1 << 20,
          nsim::ModelPresets::dram());
    } else if (which == "nvm") {
      storage_ = std::make_unique<nm::HostStorage>(
          "nvm", nm::StorageKind::Nvm, 1 << 20, nsim::ModelPresets::nvm());
    } else if (which == "device") {
      storage_ = std::make_unique<nm::HostStorage>(
          "dev", nm::StorageKind::DeviceMem, 1 << 20,
          nsim::ModelPresets::pcie3_x16());
    } else if (which == "ssd") {
      dir_ = std::make_unique<ni::TempDir>("storage-test");
      storage_ = std::make_unique<nm::FileStorage>(
          "ssd", nm::StorageKind::Ssd, 1 << 20, nsim::ModelPresets::ssd(),
          dir_->path());
    } else {
      FAIL() << "unknown backend " << which;
    }
  }

  std::unique_ptr<ni::TempDir> dir_;
  std::unique_ptr<nm::Storage> storage_;
};

}  // namespace

TEST_P(StorageParamTest, RoundTripsBytes) {
  auto alloc = storage_->alloc(4096);
  std::vector<std::uint8_t> out(4096), in(4096);
  std::iota(out.begin(), out.end(), 0);
  storage_->write(alloc, 0, out.data(), out.size());
  storage_->read(in.data(), alloc, 0, in.size());
  EXPECT_EQ(in, out);
  storage_->release(alloc);
}

TEST_P(StorageParamTest, OffsetReadWrite) {
  auto alloc = storage_->alloc(256);
  const std::uint8_t payload[4] = {0xde, 0xad, 0xbe, 0xef};
  storage_->write(alloc, 100, payload, 4);
  std::uint8_t got[4] = {};
  storage_->read(got, alloc, 100, 4);
  EXPECT_EQ(std::memcmp(got, payload, 4), 0);
  storage_->release(alloc);
}

TEST_P(StorageParamTest, CapacityAccounting) {
  EXPECT_EQ(storage_->used(), 0u);
  auto a = storage_->alloc(1000);
  auto b = storage_->alloc(2000);
  EXPECT_EQ(storage_->used(), 3000u);
  EXPECT_EQ(storage_->available(), (1u << 20) - 3000u);
  storage_->release(a);
  EXPECT_EQ(storage_->used(), 2000u);
  storage_->release(b);
  EXPECT_EQ(storage_->used(), 0u);
  EXPECT_EQ(storage_->stats().peak_used, 3000u);
}

TEST_P(StorageParamTest, ThrowsOnCapacityExceeded) {
  auto a = storage_->alloc(900 << 10);
  EXPECT_THROW(storage_->alloc(200 << 10), northup::util::CapacityError);
  storage_->release(a);
  // After release the same allocation fits.
  auto b = storage_->alloc(200 << 10);
  storage_->release(b);
}

TEST_P(StorageParamTest, OutOfBoundsAccessRejected) {
  auto a = storage_->alloc(100);
  std::uint8_t buf[64] = {};
  EXPECT_THROW(storage_->read(buf, a, 90, 20), northup::util::Error);
  EXPECT_THROW(storage_->write(a, 90, buf, 20), northup::util::Error);
  storage_->release(a);
}

TEST_P(StorageParamTest, DoubleReleaseRejected) {
  auto a = storage_->alloc(64);
  auto copy = a;
  storage_->release(a);
  EXPECT_THROW(storage_->release(copy), northup::util::Error);
}

TEST_P(StorageParamTest, StatsCountAccesses) {
  auto a = storage_->alloc(1024);
  std::vector<std::uint8_t> buf(512, 7);
  storage_->write(a, 0, buf.data(), 512);
  storage_->read(buf.data(), a, 0, 256);
  const auto& s = storage_->stats();
  EXPECT_EQ(s.bytes_written, 512u);
  EXPECT_EQ(s.bytes_read, 256u);
  EXPECT_EQ(s.num_writes, 1u);
  EXPECT_EQ(s.num_reads, 1u);
  storage_->release(a);
}

TEST_P(StorageParamTest, TraceRecordsAccessesInOrder) {
  storage_->set_trace_enabled(true);
  auto a = storage_->alloc(1024);
  std::vector<std::uint8_t> buf(128, 1);
  storage_->write(a, 0, buf.data(), 128);
  storage_->read(buf.data(), a, 0, 64);
  ASSERT_EQ(storage_->trace().size(), 2u);
  EXPECT_TRUE(storage_->trace()[0].is_write);
  EXPECT_EQ(storage_->trace()[0].bytes, 128u);
  EXPECT_FALSE(storage_->trace()[1].is_write);
  EXPECT_EQ(storage_->trace()[1].bytes, 64u);
  storage_->release(a);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, StorageParamTest,
                         ::testing::Values("dram", "nvm", "device", "ssd"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(StorageKind, Classification) {
  EXPECT_TRUE(nm::is_file_backed(nm::StorageKind::Ssd));
  EXPECT_TRUE(nm::is_file_backed(nm::StorageKind::Hdd));
  EXPECT_FALSE(nm::is_file_backed(nm::StorageKind::Dram));
  EXPECT_TRUE(nm::is_host_addressable(nm::StorageKind::Dram));
  EXPECT_TRUE(nm::is_host_addressable(nm::StorageKind::Nvm));
  EXPECT_FALSE(nm::is_host_addressable(nm::StorageKind::DeviceMem));
}

TEST(FileStorage, RejectsMismatchedKind) {
  ni::TempDir dir("fs-kind");
  EXPECT_THROW(nm::FileStorage("x", nm::StorageKind::Dram, 1024,
                               nsim::ModelPresets::ssd(), dir.path()),
               northup::util::Error);
}

TEST(FileStorage, PersistsDataAcrossAllocations) {
  ni::TempDir dir("fs-persist");
  nm::FileStorage fs("ssd", nm::StorageKind::Ssd, 1 << 20,
                     nsim::ModelPresets::ssd(), dir.path());
  auto a = fs.alloc(64);
  auto b = fs.alloc(64);
  const char pa[] = "alpha";
  const char pb[] = "beta";
  fs.write(a, 0, pa, sizeof(pa));
  fs.write(b, 0, pb, sizeof(pb));
  char got[16] = {};
  fs.read(got, a, 0, sizeof(pa));
  EXPECT_STREQ(got, "alpha");
  fs.read(got, b, 0, sizeof(pb));
  EXPECT_STREQ(got, "beta");
  fs.release(a);
  fs.release(b);
}

// --- Paced mode (wall-clock bandwidth emulation). ---

TEST(PacedStorage, OffByDefaultAndTogglable) {
  nm::HostStorage s("dram", nm::StorageKind::Dram, 1 << 20,
                    nsim::ModelPresets::dram());
  EXPECT_FALSE(s.paced());
  s.set_paced(true);
  EXPECT_TRUE(s.paced());
}

TEST(PacedStorage, AccessSleepsOutModeledCost) {
  // 10 MB/s, zero latency: a 256 KiB access models ~25 ms. The paced
  // read/write must take at least that on the wall clock; a generous
  // upper bound guards against pacing the wrong duration.
  nm::HostStorage s("slow", nm::StorageKind::Dram, 1 << 20,
                    nsim::BandwidthModel{10e6, 10e6, 0.0});
  s.set_paced(true);
  auto a = s.alloc(256 << 10);
  std::vector<char> buf(256 << 10, 'x');
  const auto t0 = std::chrono::steady_clock::now();
  s.write(a, 0, buf.data(), buf.size());
  s.read(buf.data(), a, 0, buf.size());
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(secs, 0.050);  // two modeled 25 ms accesses
  EXPECT_LT(secs, 2.0);
  s.release(a);
}

// --- §V-D projection. ---

TEST(Projection, ReplayMatchesModelArithmetic) {
  std::vector<nm::IoRecord> trace = {{false, 1000}, {true, 1000}};
  nsim::BandwidthModel m{1000.0, 500.0, 0.0};
  EXPECT_DOUBLE_EQ(nm::replay_trace_time(trace, m), 1.0 + 2.0);
}

TEST(Projection, FasterStorageShrinksIoAndOverall) {
  std::vector<nm::IoRecord> trace = {{false, 14000}, {true, 6000}};
  const auto base = nsim::ModelPresets::ssd(1400, 600);
  const auto fast = nsim::ModelPresets::ssd(3500, 2100);
  const double base_io = nm::replay_trace_time(trace, base);
  const auto p = nm::project_storage(trace, fast, base_io, base_io + 5.0,
                                     "3500/2100");
  EXPECT_LT(p.io_time, base_io);
  EXPECT_DOUBLE_EQ(p.overall_time, 5.0 + p.io_time);
}

TEST(Projection, SweepIsMonotonicallyFaster) {
  std::vector<nm::IoRecord> trace;
  for (int i = 0; i < 100; ++i) trace.push_back({i % 3 == 0, 1u << 20});
  double prev = 1e100;
  for (const auto& model : nm::fig9_storage_sweep()) {
    const double t = nm::replay_trace_time(trace, model);
    EXPECT_LT(t, prev);
    prev = t;
  }
  EXPECT_EQ(nm::fig9_storage_sweep().size(), nm::fig9_storage_labels().size());
}

TEST(Projection, RejectsInconsistentBaseline) {
  std::vector<nm::IoRecord> trace = {{false, 100}};
  EXPECT_THROW(nm::project_storage(trace, nsim::ModelPresets::ssd(), 10.0,
                                   5.0, "x"),
               northup::util::Error);
}
