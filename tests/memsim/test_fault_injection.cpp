// Fault-injection tests: the wrapper's own semantics plus propagation of
// injected I/O failures out of a deep recursive execution.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "northup/core/runtime.hpp"
#include "northup/memsim/fault_injection.hpp"
#include "northup/topo/presets.hpp"

namespace nm = northup::mem;
namespace ns = northup::sim;
namespace nt = northup::topo;
namespace nc = northup::core;

namespace {

std::unique_ptr<nm::FaultInjectingStorage> make_wrapped() {
  return std::make_unique<nm::FaultInjectingStorage>(
      std::make_unique<nm::HostStorage>("inner", nm::StorageKind::Dram,
                                        1 << 20,
                                        ns::ModelPresets::dram()));
}

}  // namespace

TEST(FaultInjection, ForwardsWhenDisarmed) {
  auto storage = make_wrapped();
  auto a = storage->alloc(128);
  const std::uint32_t v = 0xfeedface;
  storage->write(a, 0, &v, sizeof(v));
  std::uint32_t got = 0;
  storage->read(&got, a, 0, sizeof(got));
  EXPECT_EQ(got, v);
  EXPECT_EQ(storage->faults_fired(), 0u);
  storage->release(a);
}

TEST(FaultInjection, FiresOnNthRead) {
  auto storage = make_wrapped();
  auto a = storage->alloc(128);
  std::uint8_t buf[16];
  storage->arm(nm::FaultKind::Read, 3);
  EXPECT_NO_THROW(storage->read(buf, a, 0, 16));
  EXPECT_NO_THROW(storage->read(buf, a, 0, 16));
  EXPECT_THROW(storage->read(buf, a, 0, 16), northup::util::IoError);
  EXPECT_EQ(storage->faults_fired(), 1u);
  // The fault auto-disarms after firing.
  EXPECT_NO_THROW(storage->read(buf, a, 0, 16));
  storage->release(a);
}

TEST(FaultInjection, KindsAreIndependent) {
  auto storage = make_wrapped();
  auto a = storage->alloc(128);
  std::uint8_t buf[16] = {};
  storage->arm(nm::FaultKind::Write, 1);
  EXPECT_NO_THROW(storage->read(buf, a, 0, 16));  // reads unaffected
  EXPECT_THROW(storage->write(a, 0, buf, 16), northup::util::IoError);
  storage->release(a);
}

TEST(FaultInjection, AllocFaultLeavesCapacityConsistent) {
  auto storage = make_wrapped();
  storage->arm(nm::FaultKind::Alloc, 1);
  EXPECT_THROW(storage->alloc(128), northup::util::IoError);
  EXPECT_EQ(storage->used(), 0u);  // nothing was accounted
  auto a = storage->alloc(128);    // next alloc succeeds
  EXPECT_EQ(storage->used(), 128u);
  storage->release(a);
}

TEST(FaultInjection, DisarmCancelsPendingFault) {
  auto storage = make_wrapped();
  auto a = storage->alloc(128);
  std::uint8_t buf[16];
  storage->arm(nm::FaultKind::Read, 1);
  storage->disarm();
  EXPECT_NO_THROW(storage->read(buf, a, 0, 16));
  storage->release(a);
}

TEST(FaultInjection, PropagatesOutOfRecursiveExecution) {
  // Replace the DRAM staging node's backend with a faulting wrapper and
  // check the error surfaces from inside a spawned recursive task.
  nc::Runtime rt(nt::apu_two_level());
  const auto dram = rt.tree().find("dram");
  auto wrapped = std::make_unique<nm::FaultInjectingStorage>(
      std::make_unique<nm::HostStorage>("dram", nm::StorageKind::Dram,
                                        rt.tree().memory(dram).capacity,
                                        ns::ModelPresets::dram()));
  auto* faults = wrapped.get();
  rt.dm().bind_storage(dram, std::move(wrapped));

  auto root_buf = rt.dm().alloc(4096, rt.tree().root());
  faults->arm(nm::FaultKind::Write, 1);

  EXPECT_THROW(
      rt.run([&](nc::ExecContext& ctx) {
        auto staged = rt.dm().alloc(4096, ctx.child(0));
        ctx.northup_spawn(ctx.child(0), [&](nc::ExecContext&) {
          // The functional write into the staged DRAM copy faults.
          rt.dm().move_data(staged, root_buf, {.size = 4096});
        });
        rt.dm().release(staged);
      }),
      northup::util::IoError);
  EXPECT_EQ(faults->faults_fired(), 1u);
  rt.dm().release(root_buf);
}

// ---------------------------------------------------------------------------
// FaultPlan: seeded probabilistic chaos.

TEST(FaultPlan, SeededFaultsAreReproducibleAndCounted) {
  nm::FaultPlan plan;
  plan.seed = 1234;
  plan.read_fault_rate = 0.5;

  auto run_once = [&] {
    auto storage = make_wrapped();
    storage->set_plan(plan);
    auto a = storage->alloc(64);
    std::uint8_t buf[16];
    std::uint64_t caught = 0;
    for (int i = 0; i < 100; ++i) {
      try {
        storage->read(buf, a, 0, 16);
      } catch (const northup::util::IoError& e) {
        EXPECT_TRUE(e.transient());  // plan faults default to transient
        ++caught;
      }
    }
    EXPECT_EQ(storage->faults_fired(), caught);
    storage->release(a);
    return caught;
  };

  const std::uint64_t first = run_once();
  EXPECT_GT(first, 0u);
  EXPECT_LT(first, 100u);
  EXPECT_EQ(run_once(), first);  // same seed, same schedule
}

TEST(FaultPlan, PermanentFlagMakesErrorsNonRetryable) {
  auto storage = make_wrapped();
  nm::FaultPlan plan;
  plan.read_fault_rate = 1.0;
  plan.permanent = true;
  storage->set_plan(plan);
  auto a = storage->alloc(64);
  std::uint8_t buf[8];
  try {
    storage->read(buf, a, 0, 8);
    FAIL() << "expected an injected fault";
  } catch (const northup::util::IoError& e) {
    EXPECT_FALSE(e.transient());
  }
  storage->release(a);
}

TEST(FaultPlan, TransientBurstOutlivesTheFaultBudget) {
  auto storage = make_wrapped();
  nm::FaultPlan plan;
  plan.read_fault_rate = 1.0;
  plan.transient_ops = 3;  // one roll fails this op and the next two
  plan.max_faults = 1;
  storage->set_plan(plan);
  auto a = storage->alloc(64);
  std::uint8_t buf[8];
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(storage->read(buf, a, 0, 8), northup::util::IoError);
  }
  // Budget exhausted and the burst is over: reads work again.
  EXPECT_NO_THROW(storage->read(buf, a, 0, 8));
  EXPECT_EQ(storage->faults_fired(), 3u);
  storage->release(a);
}

TEST(FaultPlan, WriteCorruptionFlipsExactlyOneBit) {
  auto storage = make_wrapped();
  nm::FaultPlan plan;
  plan.seed = 7;
  plan.write_corrupt_rate = 1.0;
  storage->set_plan(plan);
  auto a = storage->alloc(64);
  std::uint8_t wrote[16];
  std::memset(wrote, 0xA5, sizeof(wrote));
  storage->write(a, 0, wrote, sizeof(wrote));
  ASSERT_EQ(storage->corruptions_injected(), 1u);

  storage->set_plan({});  // clean reads
  std::uint8_t got[16];
  storage->read(got, a, 0, sizeof(got));
  int bit_diffs = 0;
  for (std::size_t i = 0; i < sizeof(got); ++i) {
    bit_diffs += __builtin_popcount(got[i] ^ wrote[i]);
  }
  EXPECT_EQ(bit_diffs, 1);
  storage->release(a);
}

TEST(FaultPlan, ReadCorruptionLeavesStoredBytesIntact) {
  auto storage = make_wrapped();
  auto a = storage->alloc(64);
  std::uint8_t wrote[16];
  std::memset(wrote, 0x3C, sizeof(wrote));
  storage->write(a, 0, wrote, sizeof(wrote));

  nm::FaultPlan plan;
  plan.seed = 11;
  plan.read_corrupt_rate = 1.0;
  storage->set_plan(plan);
  std::uint8_t got[16];
  storage->read(got, a, 0, sizeof(got));
  EXPECT_NE(std::memcmp(got, wrote, sizeof(got)), 0);
  EXPECT_GE(storage->corruptions_injected(), 1u);

  storage->set_plan({});
  storage->read(got, a, 0, sizeof(got));
  EXPECT_EQ(std::memcmp(got, wrote, sizeof(got)), 0);  // media was clean
  storage->release(a);
}

TEST(FaultPlan, LatencySpikesAreCounted) {
  auto storage = make_wrapped();
  nm::FaultPlan plan;
  plan.latency_spike_rate = 1.0;
  plan.latency_spike_s = 1e-4;
  storage->set_plan(plan);
  auto a = storage->alloc(64);
  std::uint8_t buf[8];
  storage->read(buf, a, 0, 8);
  storage->write(a, 0, buf, 8);
  EXPECT_EQ(storage->spikes_injected(), 2u);
  storage->release(a);
}

TEST(FaultPlan, CountersStayConsistentUnderConcurrency) {
  // Every read faults (rate 1.0), so all 2000 concurrent ops exercise
  // the wrapper's locked decision path and its counters exclusively —
  // the inner backend (whose bookkeeping, like the rest of the data
  // plane, is serialized by the runtime) is never entered.
  auto storage = make_wrapped();
  nm::FaultPlan plan;
  plan.seed = 99;
  plan.read_fault_rate = 1.0;
  storage->set_plan(plan);
  auto a = storage->alloc(256);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 500;
  std::atomic<std::uint64_t> caught{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      std::uint8_t buf[32];
      for (int i = 0; i < kOpsPerThread; ++i) {
        try {
          storage->read(buf, a, 0, sizeof(buf));
        } catch (const northup::util::IoError&) {
          caught.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(caught.load(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(storage->faults_fired(), caught.load());
  storage->release(a);
}

// ---------------------------------------------------------------------------
// Runtime-path integration: plan faults are absorbed by the data plane.

namespace {

/// Wraps the root storage of a runtime and hands the test a pointer to
/// the wrapper so it can install plans mid-test.
nc::RuntimeOptions capture_root_faults(nm::FaultInjectingStorage** out) {
  nc::RuntimeOptions options;
  options.storage_decorator =
      [out](nt::NodeId node, const nt::TopoTree& tree,
            std::unique_ptr<nm::Storage> storage)
      -> std::unique_ptr<nm::Storage> {
    if (node != tree.root()) return storage;
    auto wrapped =
        std::make_unique<nm::FaultInjectingStorage>(std::move(storage));
    *out = wrapped.get();
    return wrapped;
  };
  return options;
}

}  // namespace

TEST(FaultInjection, AllocFaultIsRetriedThroughTheDataManager) {
  nm::FaultInjectingStorage* faults = nullptr;
  nc::Runtime rt(nt::apu_two_level(), capture_root_faults(&faults));
  ASSERT_NE(faults, nullptr);

  nm::FaultPlan plan;
  plan.seed = 5;
  plan.alloc_fault_rate = 1.0;
  plan.max_faults = 1;  // first alloc faults transiently, retry succeeds
  faults->set_plan(plan);

  auto buffer = rt.dm().alloc(4096, rt.tree().root());
  EXPECT_TRUE(buffer.valid());
  EXPECT_EQ(faults->faults_fired(), 1u);
  EXPECT_GE(rt.resilience().retries(), 1u);
  EXPECT_EQ(rt.dm().storage(rt.tree().root()).used(), 4096u);
  rt.dm().release(buffer);
}

TEST(FaultInjection, DirtyWritebackFaultIsAbsorbedOnEviction) {
  nm::FaultInjectingStorage* faults = nullptr;
  nc::Runtime rt(nt::apu_two_level(), capture_root_faults(&faults));
  ASSERT_NE(faults, nullptr);
  auto& dm = rt.dm();
  const nt::NodeId root = rt.tree().root();
  const nt::NodeId dram = rt.tree().get_children_list(root)[0];

  auto src = dm.alloc(4096, root);
  dm.fill(src, std::byte{0x11}, 4096);

  // Pull a shard into the DRAM cache, dirty it, and release it so the
  // new bytes only exist in the cache until writeback.
  auto* shard = dm.move_data_down_cached(src, dram, 4096);
  ASSERT_NE(shard, nullptr);
  dm.fill(*shard, std::byte{0x77}, 4096);
  dm.release_cached(shard, /*dirty=*/true);

  // The writeback's root write faults transiently once; the chunk retry
  // loop must absorb it without losing the dirty bytes.
  nm::FaultPlan plan;
  plan.seed = 21;
  plan.write_fault_rate = 1.0;
  plan.max_faults = 1;
  faults->set_plan(plan);
  rt.cache_manager()->flush();
  EXPECT_EQ(faults->faults_fired(), 1u);
  EXPECT_GE(rt.resilience().retries(), 1u);

  std::vector<std::uint8_t> got(4096);
  dm.read_to_host(got.data(), src, got.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], 0x77u) << "writeback lost byte " << i;
  }
  dm.release(src);
}
