// Fault-injection tests: the wrapper's own semantics plus propagation of
// injected I/O failures out of a deep recursive execution.
#include <gtest/gtest.h>

#include "northup/core/runtime.hpp"
#include "northup/memsim/fault_injection.hpp"
#include "northup/topo/presets.hpp"

namespace nm = northup::mem;
namespace ns = northup::sim;
namespace nt = northup::topo;
namespace nc = northup::core;

namespace {

std::unique_ptr<nm::FaultInjectingStorage> make_wrapped() {
  return std::make_unique<nm::FaultInjectingStorage>(
      std::make_unique<nm::HostStorage>("inner", nm::StorageKind::Dram,
                                        1 << 20,
                                        ns::ModelPresets::dram()));
}

}  // namespace

TEST(FaultInjection, ForwardsWhenDisarmed) {
  auto storage = make_wrapped();
  auto a = storage->alloc(128);
  const std::uint32_t v = 0xfeedface;
  storage->write(a, 0, &v, sizeof(v));
  std::uint32_t got = 0;
  storage->read(&got, a, 0, sizeof(got));
  EXPECT_EQ(got, v);
  EXPECT_EQ(storage->faults_fired(), 0u);
  storage->release(a);
}

TEST(FaultInjection, FiresOnNthRead) {
  auto storage = make_wrapped();
  auto a = storage->alloc(128);
  std::uint8_t buf[16];
  storage->arm(nm::FaultKind::Read, 3);
  EXPECT_NO_THROW(storage->read(buf, a, 0, 16));
  EXPECT_NO_THROW(storage->read(buf, a, 0, 16));
  EXPECT_THROW(storage->read(buf, a, 0, 16), northup::util::IoError);
  EXPECT_EQ(storage->faults_fired(), 1u);
  // The fault auto-disarms after firing.
  EXPECT_NO_THROW(storage->read(buf, a, 0, 16));
  storage->release(a);
}

TEST(FaultInjection, KindsAreIndependent) {
  auto storage = make_wrapped();
  auto a = storage->alloc(128);
  std::uint8_t buf[16] = {};
  storage->arm(nm::FaultKind::Write, 1);
  EXPECT_NO_THROW(storage->read(buf, a, 0, 16));  // reads unaffected
  EXPECT_THROW(storage->write(a, 0, buf, 16), northup::util::IoError);
  storage->release(a);
}

TEST(FaultInjection, AllocFaultLeavesCapacityConsistent) {
  auto storage = make_wrapped();
  storage->arm(nm::FaultKind::Alloc, 1);
  EXPECT_THROW(storage->alloc(128), northup::util::IoError);
  EXPECT_EQ(storage->used(), 0u);  // nothing was accounted
  auto a = storage->alloc(128);    // next alloc succeeds
  EXPECT_EQ(storage->used(), 128u);
  storage->release(a);
}

TEST(FaultInjection, DisarmCancelsPendingFault) {
  auto storage = make_wrapped();
  auto a = storage->alloc(128);
  std::uint8_t buf[16];
  storage->arm(nm::FaultKind::Read, 1);
  storage->disarm();
  EXPECT_NO_THROW(storage->read(buf, a, 0, 16));
  storage->release(a);
}

TEST(FaultInjection, PropagatesOutOfRecursiveExecution) {
  // Replace the DRAM staging node's backend with a faulting wrapper and
  // check the error surfaces from inside a spawned recursive task.
  nc::Runtime rt(nt::apu_two_level());
  const auto dram = rt.tree().find("dram");
  auto wrapped = std::make_unique<nm::FaultInjectingStorage>(
      std::make_unique<nm::HostStorage>("dram", nm::StorageKind::Dram,
                                        rt.tree().memory(dram).capacity,
                                        ns::ModelPresets::dram()));
  auto* faults = wrapped.get();
  rt.dm().bind_storage(dram, std::move(wrapped));

  auto root_buf = rt.dm().alloc(4096, rt.tree().root());
  faults->arm(nm::FaultKind::Write, 1);

  EXPECT_THROW(
      rt.run([&](nc::ExecContext& ctx) {
        auto staged = rt.dm().alloc(4096, ctx.child(0));
        ctx.northup_spawn(ctx.child(0), [&](nc::ExecContext&) {
          // The functional write into the staged DRAM copy faults.
          rt.dm().move_data(staged, root_buf, {.size = 4096});
        });
        rt.dm().release(staged);
      }),
      northup::util::IoError);
  EXPECT_EQ(faults->faults_fired(), 1u);
  rt.dm().release(root_buf);
}
