// Parallel functional workgroup execution: results must be identical to
// serial execution for every case study, and concurrent groups must see
// private local-memory arenas.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "northup/algos/gemm.hpp"
#include "northup/algos/hotspot.hpp"
#include "northup/device/processor.hpp"
#include "northup/topo/presets.hpp"

namespace ndv = northup::device;
namespace nsc = northup::sched;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace na = northup::algos;
namespace nm = northup::mem;

TEST(ParallelExec, EveryGroupRunsExactlyOnce) {
  nsc::WorkStealingPool pool(4);
  auto info = nt::preset_apu_gpu();
  ndv::Processor proc(info, nullptr);
  proc.set_parallel_executor(&pool);

  constexpr std::uint32_t kGroups = 200;
  std::vector<std::atomic<int>> hits(kGroups);
  proc.launch("count", kGroups,
              [&](ndv::WorkGroupCtx& wg) {
                hits[wg.group_id].fetch_add(1, std::memory_order_relaxed);
              },
              {1.0, 1.0});
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelExec, LocalMemoryArenasAreDistinctUnderConcurrency) {
  nsc::WorkStealingPool pool(4);
  auto info = nt::preset_apu_gpu();
  ndv::Processor proc(info, nullptr);
  proc.set_parallel_executor(&pool);

  // Each group writes its id into local memory, spins briefly, then
  // checks the value survived: a shared arena would be stomped.
  std::atomic<int> corrupted{0};
  proc.launch("arena", 64,
              [&](ndv::WorkGroupCtx& wg) {
                auto* slot = wg.local_array<std::uint32_t>(1);
                *slot = wg.group_id;
                volatile int sink = 0;
                for (int i = 0; i < 2000; ++i) sink = sink + i;
                if (*slot != wg.group_id) {
                  corrupted.fetch_add(1, std::memory_order_relaxed);
                }
              },
              {1.0, 1.0});
  EXPECT_EQ(corrupted.load(), 0);
}

TEST(ParallelExec, GemmResultsMatchSerial) {
  na::GemmConfig cfg;
  cfg.n = 128;
  cfg.verify_samples = 64;
  nt::PresetOptions opts;
  opts.staging_capacity = 160ULL << 10;

  nc::RuntimeOptions par;
  par.parallel_leaf_threads = 4;
  nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, opts), par);
  const auto stats = na::gemm_northup(rt, cfg);
  EXPECT_TRUE(stats.verified) << stats.max_rel_err;
}

TEST(ParallelExec, HotspotBitExactUnderParallelism) {
  // The stencil is bit-exact vs the reference; parallel workgroups must
  // not change a single ulp (disjoint output tiles, read-only inputs).
  na::HotspotConfig cfg;
  cfg.n = 128;
  cfg.iterations = 2;
  nt::PresetOptions opts;
  opts.staging_capacity = 96ULL << 10;

  nc::RuntimeOptions par;
  par.parallel_leaf_threads = 4;
  nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, opts), par);
  const auto stats = na::hotspot_northup(rt, cfg);
  EXPECT_TRUE(stats.verified);
  EXPECT_EQ(stats.max_rel_err, 0.0);
}

TEST(ParallelExec, VirtualTimingUnchangedByExecutionMode) {
  na::HotspotConfig cfg;
  cfg.n = 128;
  cfg.verify = false;
  nt::PresetOptions opts;
  opts.staging_capacity = 96ULL << 10;

  nc::Runtime serial(nt::apu_two_level(nm::StorageKind::Ssd, opts));
  const auto s = na::hotspot_northup(serial, cfg);

  nc::RuntimeOptions par;
  par.parallel_leaf_threads = 4;
  nc::Runtime parallel(nt::apu_two_level(nm::StorageKind::Ssd, opts), par);
  const auto p = na::hotspot_northup(parallel, cfg);

  EXPECT_DOUBLE_EQ(s.makespan, p.makespan);
  EXPECT_EQ(s.spawns, p.spawns);
}
