// Simulated-processor tests: functional workgroup execution, local
// memory, roofline costing, occupancy, and stream ordering.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "northup/device/processor.hpp"
#include "northup/device/stream.hpp"
#include "northup/topo/presets.hpp"

namespace ndv = northup::device;
namespace nt = northup::topo;
namespace ns = northup::sim;

namespace {

nt::ProcessorInfo gpu_info() {
  auto info = nt::preset_apu_gpu();
  info.model = {100e9, 10e9, 0.0};  // clean numbers for assertions
  info.compute_units = 8;
  return info;
}

}  // namespace

TEST(Processor, ExecutesEveryWorkgroupExactlyOnce) {
  ndv::Processor proc(gpu_info(), nullptr);
  std::vector<int> hits(64, 0);
  proc.launch("count", 64,
              [&](ndv::WorkGroupCtx& wg) { ++hits[wg.group_id]; },
              {1.0, 1.0});
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Processor, WorkgroupSeesGroupCount) {
  ndv::Processor proc(gpu_info(), nullptr);
  proc.launch("meta", 5,
              [&](ndv::WorkGroupCtx& wg) {
                EXPECT_EQ(wg.group_count, 5u);
                EXPECT_LT(wg.group_id, 5u);
              },
              {1.0, 1.0});
}

TEST(Processor, LocalMemoryIsUsableScratch) {
  ndv::Processor proc(gpu_info(), nullptr);
  std::vector<float> sums(4, 0.0f);
  proc.launch("local", 4,
              [&](ndv::WorkGroupCtx& wg) {
                float* scratch = wg.local_array<float>(16);
                for (int i = 0; i < 16; ++i) {
                  scratch[i] = static_cast<float>(i + wg.group_id);
                }
                sums[wg.group_id] =
                    std::accumulate(scratch, scratch + 16, 0.0f);
              },
              {1.0, 1.0});
  EXPECT_FLOAT_EQ(sums[0], 120.0f);
  EXPECT_FLOAT_EQ(sums[1], 136.0f);
}

TEST(Processor, LocalMemoryOverflowThrows) {
  auto info = gpu_info();
  info.local_mem_bytes = 64;
  ndv::Processor proc(info, nullptr);
  EXPECT_THROW(proc.launch("overflow", 1,
                           [&](ndv::WorkGroupCtx& wg) {
                             wg.local_array<float>(1000);
                           },
                           {1.0, 1.0}),
               northup::util::Error);
}

TEST(Processor, RooflinePicksBindingTerm) {
  ndv::Processor proc(gpu_info(), nullptr);  // 100 GF/s, 10 GB/s
  // Compute-bound: 100e9 flops -> 1 s.
  EXPECT_DOUBLE_EQ(proc.kernel_seconds(16, {100e9, 1.0}), 1.0);
  // Memory-bound: 10e9 bytes -> 1 s.
  EXPECT_DOUBLE_EQ(proc.kernel_seconds(16, {1.0, 10e9}), 1.0);
}

TEST(Processor, OccupancyPenalizesSmallLaunches) {
  ndv::Processor proc(gpu_info(), nullptr);  // 8 CUs -> full at 16 groups
  EXPECT_DOUBLE_EQ(proc.occupancy(16), 1.0);
  EXPECT_DOUBLE_EQ(proc.occupancy(32), 1.0);
  EXPECT_DOUBLE_EQ(proc.occupancy(4), 0.25);
  // A 4-group launch takes 4x the time of the same work at full occupancy.
  EXPECT_DOUBLE_EQ(proc.kernel_seconds(4, {100e9, 1.0}), 4.0);
}

TEST(Processor, LaunchChargesSimTask) {
  ns::EventSim sim;
  ndv::Processor proc(gpu_info(), &sim);
  const auto result =
      proc.launch("k", 16, [](ndv::WorkGroupCtx&) {}, {100e9, 1.0});
  ASSERT_NE(result.task, ns::kInvalidTask);
  EXPECT_DOUBLE_EQ(result.sim_seconds, 1.0);
  EXPECT_DOUBLE_EQ(sim.makespan(), 1.0);
  EXPECT_DOUBLE_EQ(sim.phase_totals().at("gpu"), 1.0);
  EXPECT_EQ(proc.launch_count(), 1u);
}

TEST(Processor, CpuLaunchesUseCpuPhase) {
  ns::EventSim sim;
  ndv::Processor proc(nt::preset_cpu(), &sim);
  proc.launch_costed("host-work", 1, {1e9, 1e6});
  EXPECT_EQ(sim.phase_totals().count("gpu"), 0u);
  EXPECT_GT(sim.phase_totals().at("cpu"), 0.0);
}

TEST(Processor, KernelsOnOneProcessorSerialize) {
  ns::EventSim sim;
  ndv::Processor proc(gpu_info(), &sim);
  proc.launch_costed("k1", 16, {100e9, 1.0});
  const auto r2 = proc.launch_costed("k2", 16, {100e9, 1.0});
  EXPECT_DOUBLE_EQ(sim.timing(r2.task).start, 1.0);
}

TEST(Processor, KernelsOnDistinctProcessorsOverlap) {
  ns::EventSim sim;
  ndv::Processor a(gpu_info(), &sim);
  ndv::Processor b(gpu_info(), &sim);
  a.launch_costed("ka", 16, {100e9, 1.0});
  b.launch_costed("kb", 16, {100e9, 1.0});
  EXPECT_DOUBLE_EQ(sim.makespan(), 1.0);
}

TEST(Processor, ZeroGroupLaunchRejected) {
  ndv::Processor proc(gpu_info(), nullptr);
  EXPECT_THROW(proc.launch("bad", 0, [](ndv::WorkGroupCtx&) {}, {1.0, 1.0}),
               northup::util::Error);
}

TEST(Stream, OpsSerializeWithinAStream) {
  ns::EventSim sim;
  ndv::Processor proc(gpu_info(), &sim);

  nt::TopoTree tree;
  const auto root = tree.add_root(
      "dram", {northup::mem::StorageKind::Dram, 1 << 20,
               ns::ModelPresets::dram(), 0});
  northup::data::DataManager dm(tree, &sim);
  dm.bind_storage(root, std::make_unique<northup::mem::HostStorage>(
                            "dram", northup::mem::StorageKind::Dram, 1 << 20,
                            ns::ModelPresets::dram()));

  ndv::Stream stream(proc, dm, "s0");
  auto a = dm.alloc(1 << 16, root);
  auto b = dm.alloc(1 << 16, root);
  stream.copy(b, a, 1 << 16);
  const auto copy_task = stream.last();
  const auto launch = stream.launch("k", 16, [](ndv::WorkGroupCtx&) {},
                                    {100e9, 1.0});
  // The kernel must start after the stream's earlier copy finished.
  EXPECT_GE(sim.timing(launch.task).start, sim.timing(copy_task).finish);
  dm.release(a);
  dm.release(b);
}

TEST(Stream, WaitOrdersAcrossStreams) {
  ns::EventSim sim;
  ndv::Processor gpu_a(gpu_info(), &sim);
  ndv::Processor gpu_b(gpu_info(), &sim);

  nt::TopoTree tree;
  tree.add_root("dram", {northup::mem::StorageKind::Dram, 1 << 20,
                         ns::ModelPresets::dram(), 0});
  northup::data::DataManager dm(tree, &sim);

  ndv::Stream s1(gpu_a, dm, "s1");
  ndv::Stream s2(gpu_b, dm, "s2");
  const auto first = s1.launch("k1", 16, [](ndv::WorkGroupCtx&) {},
                               {100e9, 1.0});
  s2.wait(first.task);
  const auto second = s2.launch("k2", 16, [](ndv::WorkGroupCtx&) {},
                                {100e9, 1.0});
  EXPECT_GE(sim.timing(second.task).start, sim.timing(first.task).finish);
}
