// Property tests for the sparse generators (the Florida-collection
// stand-ins) and CSR invariants, parameterized over seeds and shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "northup/algos/sparse.hpp"

namespace na = northup::algos;

class SparseGenProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(SparseGenProperty, GeneratorsProduceValidCsr) {
  const auto [seed, rows_exp] = GetParam();
  const auto rows = static_cast<std::uint32_t>(1 << rows_exp);

  for (int which = 0; which < 4; ++which) {
    na::Csr m;
    switch (which) {
      case 0: m = na::banded_matrix(rows, 4, seed); break;
      case 1: m = na::uniform_matrix(rows, rows, 8, seed); break;
      case 2: m = na::powerlaw_matrix(rows, rows, 8, 1.8, seed); break;
      default: m = na::dense_rows_matrix(rows, rows, 6, 4, rows / 2, seed);
    }
    ASSERT_NO_THROW(m.validate()) << "generator " << which;
    EXPECT_EQ(m.rows, rows);
    EXPECT_GT(m.nnz(), 0u);
  }
}

TEST_P(SparseGenProperty, UniformMeanNnzNearTarget) {
  const auto [seed, rows_exp] = GetParam();
  const auto rows = static_cast<std::uint32_t>(1 << rows_exp);
  const auto m = na::uniform_matrix(rows, rows, 16, seed);
  const double avg = static_cast<double>(m.nnz()) / m.rows;
  EXPECT_NEAR(avg, 16.0, 2.0);
}

TEST_P(SparseGenProperty, BandedStaysInBand) {
  const auto [seed, rows_exp] = GetParam();
  const auto rows = static_cast<std::uint32_t>(1 << rows_exp);
  constexpr std::uint32_t kHalfBand = 3;
  const auto m = na::banded_matrix(rows, kHalfBand, seed);
  for (std::uint32_t r = 0; r < m.rows; ++r) {
    for (std::uint32_t i = m.row_ptr[r]; i < m.row_ptr[r + 1]; ++i) {
      const auto c = static_cast<std::int64_t>(m.col_id[i]);
      EXPECT_LE(std::abs(c - static_cast<std::int64_t>(r)), kHalfBand);
    }
  }
}

TEST_P(SparseGenProperty, SpmvReferenceIsLinear) {
  // A(x + y) == Ax + Ay within float tolerance — sanity on the reference
  // used to verify everything else.
  const auto [seed, rows_exp] = GetParam();
  const auto rows = static_cast<std::uint32_t>(1 << rows_exp);
  const auto m = na::powerlaw_matrix(rows, rows, 8, 1.8, seed);
  const auto x = na::random_vector(rows, seed + 1);
  const auto y = na::random_vector(rows, seed + 2);
  std::vector<float> xy(rows);
  for (std::uint32_t i = 0; i < rows; ++i) xy[i] = x[i] + y[i];

  const auto ax = na::spmv_reference(m, x);
  const auto ay = na::spmv_reference(m, y);
  const auto axy = na::spmv_reference(m, xy);
  std::vector<float> sum(rows);
  for (std::uint32_t i = 0; i < rows; ++i) sum[i] = ax[i] + ay[i];
  EXPECT_LT(na::max_rel_diff(axy, sum), 1e-4);
}

TEST_P(SparseGenProperty, GeneratorsAreDeterministic) {
  const auto [seed, rows_exp] = GetParam();
  const auto rows = static_cast<std::uint32_t>(1 << rows_exp);
  const auto a = na::uniform_matrix(rows, rows, 8, seed);
  const auto b = na::uniform_matrix(rows, rows, 8, seed);
  EXPECT_EQ(a.row_ptr, b.row_ptr);
  EXPECT_EQ(a.col_id, b.col_id);
  EXPECT_EQ(a.data, b.data);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, SparseGenProperty,
    ::testing::Combine(::testing::Values<std::uint64_t>(3, 17, 5150),
                       ::testing::Values(8, 10, 12)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_rows2e" +
             std::to_string(std::get<1>(info.param));
    });
