// GEMM case-study tests: numerics of the leaf kernel, correctness of the
// out-of-core recursion on both evaluated topologies, the shard-reuse
// ablation, and the in-memory-vs-out-of-core performance shape.
#include <gtest/gtest.h>

#include "northup/algos/dense.hpp"
#include "northup/algos/gemm.hpp"
#include "northup/topo/presets.hpp"

namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;

namespace {

nt::PresetOptions small_options() {
  nt::PresetOptions opts;
  opts.root_capacity = 64ULL << 20;
  opts.staging_capacity = 512ULL << 10;  // forces multi-block decomposition
  opts.device_capacity = 128ULL << 10;
  return opts;
}

na::GemmConfig small_config() {
  na::GemmConfig cfg;
  cfg.n = 128;
  cfg.verify_samples = 64;
  return cfg;
}

}  // namespace

TEST(GemmReference, MatchesHandComputed) {
  na::Matrix a(2, 3);
  na::Matrix b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  na::Matrix c = na::gemm_reference(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(GemmInMemory, ApuTwoLevelVerifies) {
  nc::Runtime rt(nt::apu_two_level(northup::mem::StorageKind::Ssd,
                                   small_options()));
  const auto stats = na::gemm_inmemory(rt, small_config());
  EXPECT_TRUE(stats.verified) << "max rel err " << stats.max_rel_err;
  EXPECT_GT(stats.makespan, 0.0);
  EXPECT_GT(stats.breakdown.gpu, 0.0);
  // In-memory: no file storage was touched during the measured phase.
  EXPECT_EQ(stats.breakdown.io, 0.0);
}

TEST(GemmNorthup, ApuTwoLevelVerifies) {
  auto opts = small_options();
  opts.staging_capacity = 128ULL << 10;  // forces a 2x2 level-1 grid
  nc::Runtime rt(nt::apu_two_level(northup::mem::StorageKind::Ssd, opts));
  const auto stats = na::gemm_northup(rt, small_config());
  EXPECT_TRUE(stats.verified) << "max rel err " << stats.max_rel_err;
  EXPECT_GT(stats.breakdown.io, 0.0);   // chunks really came from storage
  EXPECT_GT(stats.breakdown.gpu, 0.0);
  EXPECT_GT(stats.spawns, 1u);          // recursion actually decomposed
}

TEST(GemmNorthup, DiscreteGpuThreeLevelVerifies) {
  nc::Runtime rt(nt::dgpu_three_level(northup::mem::StorageKind::Ssd,
                                      small_options()));
  const auto stats = na::gemm_northup(rt, small_config());
  EXPECT_TRUE(stats.verified) << "max rel err " << stats.max_rel_err;
  EXPECT_GT(stats.breakdown.io, 0.0);
  EXPECT_GT(stats.breakdown.transfer, 0.0);  // PCIe leg exists
  EXPECT_GT(stats.breakdown.gpu, 0.0);
}

TEST(GemmNorthup, HddSlowerThanSsd) {
  nc::Runtime ssd(nt::apu_two_level(northup::mem::StorageKind::Ssd,
                                    small_options()));
  nc::Runtime hdd(nt::apu_two_level(northup::mem::StorageKind::Hdd,
                                    small_options()));
  auto cfg = small_config();
  cfg.verify_samples = 0;
  const auto s = na::gemm_northup(ssd, cfg);
  const auto h = na::gemm_northup(hdd, cfg);
  EXPECT_GT(h.makespan, s.makespan);
}

TEST(GemmNorthup, ShardReuseReducesIo) {
  auto cfg = small_config();
  cfg.verify_samples = 0;
  cfg.n = 256;

  nc::Runtime with(nt::apu_two_level(northup::mem::StorageKind::Ssd,
                                     small_options()));
  cfg.shard_reuse = true;
  const auto reuse = na::gemm_northup(with, cfg);

  nc::Runtime without(nt::apu_two_level(northup::mem::StorageKind::Ssd,
                                        small_options()));
  cfg.shard_reuse = false;
  const auto no_reuse = na::gemm_northup(without, cfg);

  EXPECT_LT(reuse.breakdown.io, no_reuse.breakdown.io);
}

TEST(GemmBlockChooser, RespectsCapacityAndDivisibility) {
  // 256x256 floats: block 64 with reuse needs (4+2)*64*64*4 = 96 KiB.
  const auto b = na::choose_gemm_block(256, 16, 128ULL << 10, true, 0.9);
  EXPECT_EQ(256 % b, 0u);
  EXPECT_GE(b, 16u);
  const double resident = (256.0 / b + 2.0) * b * b * 4.0;
  EXPECT_LE(resident, 128.0 * 1024.0 * 0.9);
}

TEST(GemmBlockChooser, ThrowsWhenNothingFits) {
  EXPECT_THROW(na::choose_gemm_block(256, 16, 1024, true, 0.9),
               northup::util::CapacityError);
}
