// Temporal-blocking (ghost zone) stencil tests: the k-sweeps-per-load
// execution must be bit-exact against the iterated reference for every
// halo width, block position, and topology — this exercises the extended-
// region assembly (strips + corners), the shrinking compute regions, and
// the global-edge clamping simultaneously.
#include <gtest/gtest.h>

#include "northup/algos/hotspot_temporal.hpp"
#include "northup/topo/presets.hpp"

namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;

namespace {

nt::PresetOptions tight() {
  nt::PresetOptions o;
  o.root_capacity = 64ULL << 20;
  o.staging_capacity = 96ULL << 10;  // forces 64x64 blocks at n=128
  return o;
}

}  // namespace

TEST(HotspotTemporal, KEqualsOneMatchesPlainNorthup) {
  na::HotspotConfig cfg;
  cfg.n = 128;
  cfg.iterations = 2;
  nc::Runtime a(nt::apu_two_level(nm::StorageKind::Ssd, tight()));
  const auto temporal = na::hotspot_temporal_northup(a, cfg, 1);
  EXPECT_TRUE(temporal.verified);
  EXPECT_EQ(temporal.max_rel_err, 0.0);
}

TEST(HotspotTemporal, TwoSweepsPerLoadIsBitExact) {
  na::HotspotConfig cfg;
  cfg.n = 128;
  cfg.iterations = 4;
  nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, tight()));
  const auto stats = na::hotspot_temporal_northup(rt, cfg, 2);
  EXPECT_TRUE(stats.verified) << stats.max_rel_err;
  EXPECT_EQ(stats.max_rel_err, 0.0);
}

TEST(HotspotTemporal, FourSweepsPerLoadIsBitExact) {
  na::HotspotConfig cfg;
  cfg.n = 128;
  cfg.iterations = 4;
  nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, tight()));
  const auto stats = na::hotspot_temporal_northup(rt, cfg, 4);
  EXPECT_TRUE(stats.verified) << stats.max_rel_err;
  EXPECT_EQ(stats.max_rel_err, 0.0);
}

TEST(HotspotTemporal, SingleBlockGridStillWorks) {
  // Whole grid in one block: every side is a global edge; no strips or
  // corners are loaded and all reads clamp.
  na::HotspotConfig cfg;
  cfg.n = 64;
  cfg.iterations = 3;
  auto opts = tight();
  opts.staging_capacity = 512ULL << 10;
  nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, opts));
  const auto stats = na::hotspot_temporal_northup(rt, cfg, 3);
  EXPECT_TRUE(stats.verified) << stats.max_rel_err;
  EXPECT_EQ(stats.max_rel_err, 0.0);
}

TEST(HotspotTemporal, ReducesStorageTrafficVersusPlain) {
  na::HotspotConfig cfg;
  cfg.n = 128;
  cfg.iterations = 4;
  cfg.verify = false;

  nc::Runtime plain_rt(nt::apu_two_level(nm::StorageKind::Ssd, tight()));
  const auto plain = na::hotspot_northup(plain_rt, cfg);

  nc::Runtime temporal_rt(nt::apu_two_level(nm::StorageKind::Ssd, tight()));
  const auto temporal = na::hotspot_temporal_northup(temporal_rt, cfg, 4);

  // One load+store per 4 sweeps instead of per sweep: far fewer bytes
  // through the root, at the price of redundant halo compute.
  EXPECT_LT(temporal.bytes_moved, plain.bytes_moved);
  EXPECT_GT(temporal.breakdown.gpu, plain.breakdown.gpu * 0.99);
}

TEST(HotspotTemporal, RejectsBadSweepCounts) {
  na::HotspotConfig cfg;
  cfg.n = 128;
  cfg.iterations = 3;
  nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, tight()));
  EXPECT_THROW(na::hotspot_temporal_northup(rt, cfg, 2),
               northup::util::Error);  // 3 % 2 != 0
  EXPECT_THROW(na::hotspot_temporal_northup(rt, cfg, 0),
               northup::util::Error);
}
