// CSR-Adaptive SpMV tests: CSR generators, row binning, and out-of-core
// correctness across input patterns and topologies.
#include <gtest/gtest.h>

#include "northup/algos/csr_adaptive.hpp"
#include "northup/topo/presets.hpp"

namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;

namespace {

nt::PresetOptions tight_options() {
  nt::PresetOptions opts;
  opts.root_capacity = 64ULL << 20;
  opts.staging_capacity = 256ULL << 10;
  opts.device_capacity = 160ULL << 10;
  return opts;
}

na::SpmvConfig small_config(na::SpmvConfig::Pattern pattern) {
  na::SpmvConfig cfg;
  cfg.rows = 4096;
  cfg.avg_nnz = 8;
  cfg.pattern = pattern;
  return cfg;
}

}  // namespace

TEST(CsrGenerators, AllPatternsValidate) {
  for (auto pattern :
       {na::SpmvConfig::Pattern::Banded, na::SpmvConfig::Pattern::Uniform,
        na::SpmvConfig::Pattern::PowerLaw,
        na::SpmvConfig::Pattern::DenseRows}) {
    const auto m = small_config(pattern).make_matrix();
    EXPECT_NO_THROW(m.validate());
    EXPECT_GT(m.nnz(), 0u);
  }
}

TEST(CsrGenerators, PowerLawIsSkewed) {
  const auto m = na::powerlaw_matrix(8192, 8192, 16, 1.8, 3);
  std::uint32_t max_len = 0;
  for (std::uint32_t r = 0; r < m.rows; ++r) {
    max_len = std::max(max_len, m.row_len(r));
  }
  const double avg = static_cast<double>(m.nnz()) / m.rows;
  EXPECT_GT(max_len, 8 * avg);  // heavy tail exists
}

TEST(BinRows, GroupsShortRowsAndIsolatesLongOnes) {
  // rows: 4, 4, 4, 20(long), 4 — cap 8.
  std::vector<std::uint32_t> rp = {0, 4, 8, 12, 32, 36};
  const auto blocks = na::bin_rows(rp.data(), 5, 8);
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks[0].kind, na::RowBlockKind::Stream);
  EXPECT_EQ(blocks[0].row_count, 2u);  // 4+4 fits, +4 would exceed
  EXPECT_EQ(blocks[1].kind, na::RowBlockKind::Stream);
  EXPECT_EQ(blocks[1].row_count, 1u);
  EXPECT_EQ(blocks[2].kind, na::RowBlockKind::Vector);
  EXPECT_EQ(blocks[2].first_row, 3u);
  EXPECT_EQ(blocks[3].kind, na::RowBlockKind::Stream);
}

TEST(BinRows, CoversEveryRowExactlyOnce) {
  const auto m = na::powerlaw_matrix(2000, 2000, 12, 1.8, 11);
  const auto blocks = na::bin_rows(m.row_ptr.data(), m.rows, 256);
  std::uint32_t next = 0;
  for (const auto& b : blocks) {
    EXPECT_EQ(b.first_row, next);
    next += b.row_count;
  }
  EXPECT_EQ(next, m.rows);
}

TEST(SpmvInMemory, MatchesReference) {
  auto opts = tight_options();
  opts.staging_capacity = 8ULL << 20;
  nc::Runtime rt(nt::apu_two_level(northup::mem::StorageKind::Ssd, opts));
  const auto stats =
      na::spmv_inmemory(rt, small_config(na::SpmvConfig::Pattern::Uniform));
  EXPECT_TRUE(stats.verified) << "max rel err " << stats.max_rel_err;
  // The baseline bins at load time, so no CPU binning cost is measured.
  EXPECT_EQ(stats.breakdown.cpu, 0.0);
}

TEST(SpmvNorthup, BinningIsCountedOnCpu) {
  nc::Runtime rt(nt::apu_two_level(northup::mem::StorageKind::Ssd,
                                   tight_options()));
  const auto stats =
      na::spmv_northup(rt, small_config(na::SpmvConfig::Pattern::Uniform));
  EXPECT_GT(stats.breakdown.cpu, 0.0);  // per-shard binning ran on the CPU
}

TEST(SpmvNorthup, UniformVerifiesOnApu) {
  nc::Runtime rt(nt::apu_two_level(northup::mem::StorageKind::Ssd,
                                   tight_options()));
  const auto stats =
      na::spmv_northup(rt, small_config(na::SpmvConfig::Pattern::Uniform));
  EXPECT_TRUE(stats.verified) << "max rel err " << stats.max_rel_err;
  EXPECT_GT(stats.breakdown.io, 0.0);
  EXPECT_GT(stats.spawns, 1u);  // multiple shards
}

TEST(SpmvNorthup, PowerLawVerifiesOnDiscreteGpu) {
  nc::Runtime rt(nt::dgpu_three_level(northup::mem::StorageKind::Ssd,
                                      tight_options()));
  const auto stats =
      na::spmv_northup(rt, small_config(na::SpmvConfig::Pattern::PowerLaw));
  EXPECT_TRUE(stats.verified) << "max rel err " << stats.max_rel_err;
  EXPECT_GT(stats.breakdown.transfer, 0.0);
}

TEST(SpmvNorthup, DenseRowsVerifies) {
  nc::Runtime rt(nt::apu_two_level(northup::mem::StorageKind::Ssd,
                                   tight_options()));
  const auto stats =
      na::spmv_northup(rt, small_config(na::SpmvConfig::Pattern::DenseRows));
  EXPECT_TRUE(stats.verified) << "max rel err " << stats.max_rel_err;
}

TEST(SpmvNorthup, BandedVerifiesOnDeepTree) {
  nc::Runtime rt(nt::deep_four_level(tight_options()));
  const auto stats =
      na::spmv_northup(rt, small_config(na::SpmvConfig::Pattern::Banded));
  EXPECT_TRUE(stats.verified) << "max rel err " << stats.max_rel_err;
}
