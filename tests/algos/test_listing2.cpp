// Listing-2 contrast tests: the hard-coded two-level version produces the
// same results as the Listing-3-style recursion on the one system it
// supports, and fails on every other topology that gemm_northup handles.
#include <gtest/gtest.h>

#include "northup/algos/listing2.hpp"
#include "northup/topo/presets.hpp"

namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;

namespace {
nt::PresetOptions tight() {
  nt::PresetOptions o;
  o.root_capacity = 64ULL << 20;
  o.staging_capacity = 160ULL << 10;
  o.device_capacity = 128ULL << 10;
  return o;
}
}  // namespace

TEST(Listing2, VerifiesOnItsOneSupportedSystem) {
  nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, tight()));
  na::GemmConfig cfg;
  cfg.n = 128;
  cfg.verify_samples = 64;
  const auto stats = na::gemm_listing2(rt, cfg);
  EXPECT_TRUE(stats.verified) << stats.max_rel_err;
  EXPECT_GT(stats.breakdown.io, 0.0);
}

TEST(Listing2, MatchesNorthupResultsWhereBothRun) {
  na::GemmConfig cfg;
  cfg.n = 128;
  cfg.verify_samples = 64;
  cfg.shard_reuse = false;  // Listing 2 has no reuse optimization

  nc::Runtime a(nt::apu_two_level(nm::StorageKind::Ssd, tight()));
  const auto listing2 = na::gemm_listing2(a, cfg);
  nc::Runtime b(nt::apu_two_level(nm::StorageKind::Ssd, tight()));
  const auto northup = na::gemm_northup(b, cfg);

  EXPECT_TRUE(listing2.verified);
  EXPECT_TRUE(northup.verified);
  // Same blocking, same kernels: identical measured storage traffic
  // (bytes_moved would also count each harness's preprocessing writes,
  // which legitimately differ).
  const auto& sa = a.dm().storage(a.tree().root()).stats();
  const auto& sb = b.dm().storage(b.tree().root()).stats();
  EXPECT_EQ(sa.bytes_read, sb.bytes_read);
  EXPECT_EQ(sa.bytes_written, sb.bytes_written);
}

TEST(Listing2, FailsOnThreeLevelSystem) {
  nc::Runtime rt(nt::dgpu_three_level(nm::StorageKind::Ssd, tight()));
  na::GemmConfig cfg;
  cfg.n = 128;
  EXPECT_THROW(na::gemm_listing2(rt, cfg), northup::util::TopologyError);
  // The Listing-3-style code runs on the same system unchanged.
  cfg.verify_samples = 32;
  EXPECT_TRUE(na::gemm_northup(rt, cfg).verified);
}

TEST(Listing2, FailsOnDeepAndNvmSystems) {
  na::GemmConfig cfg;
  cfg.n = 128;
  {
    nc::Runtime rt(nt::deep_four_level(tight()));
    EXPECT_THROW(na::gemm_listing2(rt, cfg), northup::util::TopologyError);
  }
  {
    nc::Runtime rt(nt::nvm_root_two_level(tight()));
    EXPECT_THROW(na::gemm_listing2(rt, cfg), northup::util::TopologyError);
  }
}
