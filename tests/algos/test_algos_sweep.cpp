// Parameterized correctness sweeps over problem sizes, capacities, and
// topologies for the three case studies — the property: out-of-core
// execution is always correct no matter how the runtime decomposes.
#include <gtest/gtest.h>

#include "northup/algos/csr_adaptive.hpp"
#include "northup/algos/gemm.hpp"
#include "northup/algos/hotspot.hpp"
#include "northup/topo/presets.hpp"

namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;

namespace {

nt::TopoTree make_tree(const std::string& topo, std::uint64_t staging) {
  nt::PresetOptions opts;
  opts.root_capacity = 128ULL << 20;
  opts.staging_capacity = staging;
  opts.device_capacity = std::max<std::uint64_t>(staging / 2, 64ULL << 10);
  if (topo == "apu") return nt::apu_two_level(nm::StorageKind::Ssd, opts);
  if (topo == "dgpu") return nt::dgpu_three_level(nm::StorageKind::Ssd, opts);
  return nt::deep_four_level(opts);
}

}  // namespace

// --- GEMM sweep: (n, staging KiB, topology, reuse). ---

using GemmParam = std::tuple<std::uint64_t, std::uint64_t, const char*, bool>;

class GemmSweep : public ::testing::TestWithParam<GemmParam> {};

TEST_P(GemmSweep, OutOfCoreVerifies) {
  const auto [n, staging_kib, topo, reuse] = GetParam();
  nc::Runtime rt(make_tree(topo, staging_kib << 10));
  na::GemmConfig cfg;
  cfg.n = n;
  cfg.shard_reuse = reuse;
  cfg.verify_samples = 48;
  const auto stats = na::gemm_northup(rt, cfg);
  EXPECT_TRUE(stats.verified) << "max rel err " << stats.max_rel_err;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(64, 128, 192),
                       ::testing::Values<std::uint64_t>(64, 384),
                       ::testing::Values("apu", "dgpu"),
                       ::testing::Bool()),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) + "k_" +
             std::get<2>(info.param) +
             (std::get<3>(info.param) ? "_reuse" : "_noreuse");
    });

// --- HotSpot sweep: (n, iterations, topology). ---

using HotspotParam = std::tuple<std::uint64_t, std::uint64_t, const char*>;

class HotspotSweep : public ::testing::TestWithParam<HotspotParam> {};

TEST_P(HotspotSweep, OutOfCoreMatchesReferenceExactly) {
  const auto [n, iters, topo] = GetParam();
  nc::Runtime rt(make_tree(topo, 96ULL << 10));
  na::HotspotConfig cfg;
  cfg.n = n;
  cfg.iterations = iters;
  const auto stats = na::hotspot_northup(rt, cfg);
  EXPECT_TRUE(stats.verified);
  EXPECT_EQ(stats.max_rel_err, 0.0);  // per-cell math: bit-exact
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSweeps, HotspotSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(64, 96, 128),
                       ::testing::Values<std::uint64_t>(1, 2, 4),
                       ::testing::Values("apu", "dgpu", "deep")),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_it" +
             std::to_string(std::get<1>(info.param)) + "_" +
             std::get<2>(info.param);
    });

// --- SpMV sweep: (pattern, avg_nnz, topology). ---

using SpmvParam = std::tuple<int, std::uint32_t, const char*>;

class SpmvSweep : public ::testing::TestWithParam<SpmvParam> {};

namespace {
// Outside the INSTANTIATE macro: brace initializers confuse the
// preprocessor's argument splitting.
const char* spmv_pattern_name(int pattern) {
  switch (pattern) {
    case 0: return "banded";
    case 1: return "uniform";
    case 2: return "powerlaw";
    default: return "denserows";
  }
}
}  // namespace

TEST_P(SpmvSweep, OutOfCoreMatchesReferenceExactly) {
  const auto [pattern, avg_nnz, topo] = GetParam();
  nc::Runtime rt(make_tree(topo, 192ULL << 10));
  na::SpmvConfig cfg;
  cfg.rows = 3000;  // deliberately not a power of two
  cfg.avg_nnz = avg_nnz;
  cfg.pattern = static_cast<na::SpmvConfig::Pattern>(pattern);
  const auto stats = na::spmv_northup(rt, cfg);
  EXPECT_TRUE(stats.verified);
  EXPECT_EQ(stats.max_rel_err, 0.0);  // same accumulation order: bit-exact
}

INSTANTIATE_TEST_SUITE_P(
    PatternsAndShapes, SpmvSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values<std::uint32_t>(4, 24),
                       ::testing::Values("apu", "dgpu")),
    [](const auto& info) {
      return std::string(spmv_pattern_name(std::get<0>(info.param))) +
             "_nnz" + std::to_string(std::get<1>(info.param)) + "_" +
             std::get<2>(info.param);
    });
