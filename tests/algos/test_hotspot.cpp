// HotSpot-2D tests: the reference kernel, halo correctness of the
// out-of-core block exchange across multiple sweeps, and topology
// portability of the same recursion.
#include <gtest/gtest.h>

#include "northup/algos/hotspot.hpp"
#include "northup/topo/presets.hpp"

namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;

namespace {

nt::PresetOptions tight_options() {
  nt::PresetOptions opts;
  opts.root_capacity = 64ULL << 20;
  opts.staging_capacity = 96ULL << 10;  // forces 64x64 blocks at n=128
  opts.device_capacity = 64ULL << 10;
  return opts;
}

na::HotspotConfig small_config() {
  na::HotspotConfig cfg;
  cfg.n = 128;
  return cfg;
}

}  // namespace

TEST(HotspotReference, HeatDiffusesFromHotCell) {
  na::Matrix temp(8, 8, 80.0f);
  temp.at(4, 4) = 200.0f;
  na::Matrix power(8, 8, 0.0f);
  na::HotSpotParams p;
  const na::Matrix out = na::hotspot_reference(temp, power, p);
  // The hot cell cools, its neighbours warm.
  EXPECT_LT(out.at(4, 4), 200.0f);
  EXPECT_GT(out.at(4, 5), 80.0f);
  EXPECT_GT(out.at(3, 4), 80.0f);
  // A far-away cell at ambient with no power stays put.
  EXPECT_FLOAT_EQ(out.at(0, 0), 80.0f);
}

TEST(HotspotInMemory, MatchesReference) {
  // The in-memory baseline models the 16 GB configuration: DRAM holds the
  // whole working set (§V-A).
  auto opts = tight_options();
  opts.staging_capacity = 8ULL << 20;
  nc::Runtime rt(nt::apu_two_level(northup::mem::StorageKind::Ssd, opts));
  auto cfg = small_config();
  cfg.iterations = 2;
  const auto stats = na::hotspot_inmemory(rt, cfg);
  EXPECT_TRUE(stats.verified) << "max rel err " << stats.max_rel_err;
  EXPECT_EQ(stats.breakdown.io, 0.0);
  EXPECT_GT(stats.breakdown.gpu, 0.0);
}

TEST(HotspotNorthup, SingleSweepMatchesReference) {
  nc::Runtime rt(nt::apu_two_level(northup::mem::StorageKind::Ssd,
                                   tight_options()));
  const auto stats = na::hotspot_northup(rt, small_config());
  EXPECT_TRUE(stats.verified) << "max rel err " << stats.max_rel_err;
  EXPECT_GT(stats.breakdown.io, 0.0);
  EXPECT_GT(stats.spawns, 1u);
}

TEST(HotspotNorthup, MultiSweepHaloExchangeIsExact) {
  // Three sweeps force the block-edge republication path: any halo slot
  // mis-wiring shows up as a growing boundary error.
  nc::Runtime rt(nt::apu_two_level(northup::mem::StorageKind::Ssd,
                                   tight_options()));
  auto cfg = small_config();
  cfg.iterations = 3;
  const auto stats = na::hotspot_northup(rt, cfg);
  EXPECT_TRUE(stats.verified) << "max rel err " << stats.max_rel_err;
}

TEST(HotspotNorthup, DiscreteGpuThreeLevelVerifies) {
  nc::Runtime rt(nt::dgpu_three_level(northup::mem::StorageKind::Ssd,
                                      tight_options()));
  auto cfg = small_config();
  cfg.iterations = 2;
  const auto stats = na::hotspot_northup(rt, cfg);
  EXPECT_TRUE(stats.verified) << "max rel err " << stats.max_rel_err;
  EXPECT_GT(stats.breakdown.transfer, 0.0);
}

TEST(HotspotNorthup, DeepFourLevelVerifies) {
  // The same application code runs unchanged on a 4-level
  // HDD -> NVM -> DRAM -> device hierarchy (the paper's portability claim).
  auto opts = tight_options();
  opts.root_capacity = 64ULL << 20;
  nc::Runtime rt(nt::deep_four_level(opts));
  const auto stats = na::hotspot_northup(rt, small_config());
  EXPECT_TRUE(stats.verified) << "max rel err " << stats.max_rel_err;
}

TEST(HotspotBlockChooser, FitsAndDivides) {
  const auto b = na::choose_hotspot_block(256, 16, 200ULL << 10, 0.9);
  EXPECT_EQ(256 % b, 0u);
  const double bytes = (3.0 * b * b + 4.0 * b) * 4.0;
  EXPECT_LE(bytes, 200.0 * 1024.0 * 0.9);
}
