// NodeHealth unit tests: sliding-window failure accounting and the
// Closed / Open / Half-Open circuit-breaker state machine.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "northup/resil/node_health.hpp"

namespace nr = northup::resil;

namespace {

/// Short cooldown so Open -> Half-Open transitions are testable without
/// slowing the suite down.
nr::HealthOptions fast_options() {
  nr::HealthOptions options;
  options.window = 8;
  options.min_samples = 4;
  options.failure_threshold = 0.5;
  options.open_cooldown_s = 0.01;
  options.half_open_probes = 2;
  options.degrade_factor = 0.5;
  return options;
}

void trip(nr::NodeHealth& health, std::size_t failures = 4) {
  for (std::size_t i = 0; i < failures; ++i) health.record_failure();
}

void wait_cooldown() {
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
}

}  // namespace

TEST(NodeHealth, StartsClosedAndHealthy) {
  nr::NodeHealth health(fast_options());
  EXPECT_EQ(health.state(), nr::BreakerState::Closed);
  EXPECT_TRUE(health.allow());
  EXPECT_DOUBLE_EQ(health.capacity_scale(), 1.0);
  EXPECT_DOUBLE_EQ(health.failure_rate(), 0.0);
  EXPECT_EQ(health.trips(), 0u);
}

TEST(NodeHealth, NoTripBeforeMinSamples) {
  nr::NodeHealth health(fast_options());
  trip(health, 3);  // min_samples is 4
  EXPECT_EQ(health.state(), nr::BreakerState::Closed);
}

TEST(NodeHealth, TripsAtThresholdWithEnoughSamples) {
  nr::NodeHealth health(fast_options());
  // 2 successes + 2 failures = 4 samples at 50%: exactly at threshold.
  health.record_success(1e-4);
  health.record_success(1e-4);
  health.record_failure();
  health.record_failure();
  EXPECT_EQ(health.state(), nr::BreakerState::Open);
  EXPECT_FALSE(health.allow());
  EXPECT_DOUBLE_EQ(health.capacity_scale(), 0.0);
  EXPECT_EQ(health.trips(), 1u);
}

TEST(NodeHealth, CooldownAdmitsProbes) {
  nr::NodeHealth health(fast_options());
  trip(health);
  EXPECT_FALSE(health.allow());
  wait_cooldown();
  EXPECT_EQ(health.state(), nr::BreakerState::HalfOpen);
  EXPECT_TRUE(health.allow());  // probe traffic admitted
  EXPECT_DOUBLE_EQ(health.capacity_scale(), fast_options().degrade_factor);
}

TEST(NodeHealth, ProbeSuccessesCloseTheBreaker) {
  nr::NodeHealth health(fast_options());
  trip(health);
  wait_cooldown();
  ASSERT_EQ(health.state(), nr::BreakerState::HalfOpen);
  health.record_success(1e-4);
  EXPECT_EQ(health.state(), nr::BreakerState::HalfOpen);  // 1 of 2 probes
  health.record_success(1e-4);
  EXPECT_EQ(health.state(), nr::BreakerState::Closed);
  EXPECT_DOUBLE_EQ(health.capacity_scale(), 1.0);  // window was reset
}

TEST(NodeHealth, ProbeFailureReopens) {
  nr::NodeHealth health(fast_options());
  trip(health);
  wait_cooldown();
  ASSERT_EQ(health.state(), nr::BreakerState::HalfOpen);
  health.record_failure();
  EXPECT_EQ(health.state(), nr::BreakerState::Open);
  EXPECT_EQ(health.trips(), 2u);
}

TEST(NodeHealth, DirtyWindowDegradesCapacityWhileClosed) {
  auto options = fast_options();
  options.failure_threshold = 0.6;
  nr::NodeHealth health(options);
  // 2 failures in 6 samples = 33% > threshold/2 (30%) but below the trip.
  for (int i = 0; i < 4; ++i) health.record_success(1e-4);
  health.record_failure();
  health.record_failure();
  EXPECT_EQ(health.state(), nr::BreakerState::Closed);
  EXPECT_DOUBLE_EQ(health.capacity_scale(), options.degrade_factor);
}

TEST(NodeHealth, WindowSlidesOldOutcomesOut) {
  nr::NodeHealth health(fast_options());
  health.record_failure();
  health.record_failure();
  // 8 successes push both failures out of the window of 8.
  for (int i = 0; i < 8; ++i) health.record_success(1e-4);
  EXPECT_DOUBLE_EQ(health.failure_rate(), 0.0);
  EXPECT_EQ(health.state(), nr::BreakerState::Closed);
}

TEST(NodeHealth, TracksMeanLatencyOfSuccesses) {
  nr::NodeHealth health(fast_options());
  health.record_success(0.010);
  health.record_success(0.030);
  health.record_failure();  // failures do not pollute the latency mean
  EXPECT_NEAR(health.mean_latency(), 0.020, 1e-12);
}

TEST(NodeHealth, ObserverSeesEveryTransition) {
  nr::NodeHealth health(fast_options());
  std::vector<nr::BreakerState> seen;
  health.set_observer([&](nr::BreakerState s) { seen.push_back(s); });
  trip(health);
  wait_cooldown();
  (void)health.state();       // Open -> HalfOpen on read
  health.record_success(1e-4);
  health.record_success(1e-4);  // -> Closed
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], nr::BreakerState::Open);
  EXPECT_EQ(seen[1], nr::BreakerState::HalfOpen);
  EXPECT_EQ(seen[2], nr::BreakerState::Closed);
}
