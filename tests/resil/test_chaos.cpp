// End-to-end chaos tests: seeded probabilistic faults on the deep
// storage node must be absorbed by the chunk-level retry loop (and the
// checksum re-transfer path) with bit-identical results, and a
// permanently failing node must trip its circuit breaker so the planner
// reroutes to a healthy sibling.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "northup/algos/csr_adaptive.hpp"
#include "northup/algos/gemm.hpp"
#include "northup/algos/hotspot.hpp"
#include "northup/core/runtime.hpp"
#include "northup/io/posix_file.hpp"
#include "northup/memsim/fault_injection.hpp"
#include "northup/topo/presets.hpp"

namespace na = northup::algos;
namespace nc = northup::core;
namespace nd = northup::data;
namespace nm = northup::mem;
namespace nr = northup::resil;
namespace ns = northup::sim;
namespace nt = northup::topo;
namespace nu = northup::util;

namespace {

/// Runtime options that wrap the root (deep-storage) node in a
/// FaultInjectingStorage running `plan`, with end-to-end checksums on.
nc::RuntimeOptions chaos_options(const nm::FaultPlan& plan) {
  nc::RuntimeOptions options;
  options.resilience.verify_checksums = true;
  options.storage_decorator =
      [plan](nt::NodeId node, const nt::TopoTree& tree,
             std::unique_ptr<nm::Storage> storage)
      -> std::unique_ptr<nm::Storage> {
    if (node != tree.root()) return storage;
    auto wrapped =
        std::make_unique<nm::FaultInjectingStorage>(std::move(storage));
    wrapped->set_plan(plan);
    return wrapped;
  };
  return options;
}

/// Transient read/write faults, occasional bit flips, small latency
/// spikes — the "bad but recoverable device" mix.
nm::FaultPlan mixed_plan(std::uint64_t seed) {
  nm::FaultPlan plan;
  plan.seed = seed;
  plan.read_fault_rate = 0.03;
  plan.write_fault_rate = 0.02;
  plan.read_corrupt_rate = 0.01;
  plan.write_corrupt_rate = 0.01;
  plan.latency_spike_rate = 0.01;
  plan.latency_spike_s = 1e-4;
  return plan;
}

/// Small staging capacity forces a real multi-block decomposition, so
/// the chaos plan sees many root-storage transfers.
nt::PresetOptions small_staging(std::uint64_t staging_bytes) {
  nt::PresetOptions preset;
  preset.staging_capacity = staging_bytes;
  return preset;
}

}  // namespace

TEST(Chaos, GemmBitIdenticalUnderSeededFaults) {
  const auto preset = small_staging(8ULL << 10);
  na::GemmConfig config;
  config.n = 64;
  config.verify_samples = 16;
  config.hash_result = true;

  nc::Runtime clean(nt::apu_two_level(nm::StorageKind::Ssd, preset));
  const na::RunStats baseline = na::gemm_northup(clean, config);
  ASSERT_TRUE(baseline.verified);
  ASSERT_NE(baseline.result_hash, 0u);

  nc::Runtime chaotic(nt::apu_two_level(nm::StorageKind::Ssd, preset),
                      chaos_options(mixed_plan(0xc4a05)));
  const na::RunStats faulted = na::gemm_northup(chaotic, config);
  EXPECT_TRUE(faulted.verified);
  EXPECT_EQ(faulted.result_hash, baseline.result_hash);
  EXPECT_GT(chaotic.resilience().retries(), 0u);
}

TEST(Chaos, HotspotBitIdenticalUnderSeededFaults) {
  const auto preset = small_staging(16ULL << 10);
  na::HotspotConfig config;
  config.n = 64;
  config.iterations = 2;
  config.hash_result = true;

  nc::Runtime clean(nt::apu_two_level(nm::StorageKind::Ssd, preset));
  const na::RunStats baseline = na::hotspot_northup(clean, config);
  ASSERT_TRUE(baseline.verified);

  nc::Runtime chaotic(nt::apu_two_level(nm::StorageKind::Ssd, preset),
                      chaos_options(mixed_plan(0x4075907)));
  const na::RunStats faulted = na::hotspot_northup(chaotic, config);
  EXPECT_TRUE(faulted.verified);
  EXPECT_EQ(faulted.result_hash, baseline.result_hash);
  EXPECT_GT(chaotic.resilience().retries(), 0u);
}

TEST(Chaos, SpmvBitIdenticalUnderSeededFaults) {
  const auto preset = small_staging(16ULL << 10);
  na::SpmvConfig config;
  config.rows = 1024;
  config.avg_nnz = 8;
  config.hash_result = true;

  nc::Runtime clean(nt::apu_two_level(nm::StorageKind::Ssd, preset));
  const na::RunStats baseline = na::spmv_northup(clean, config);
  ASSERT_TRUE(baseline.verified);

  nc::Runtime chaotic(nt::apu_two_level(nm::StorageKind::Ssd, preset),
                      chaos_options(mixed_plan(0x59a1e)));
  const na::RunStats faulted = na::spmv_northup(chaotic, config);
  EXPECT_TRUE(faulted.verified);
  EXPECT_EQ(faulted.result_hash, baseline.result_hash);
  EXPECT_GT(chaotic.resilience().retries(), 0u);
}

TEST(Chaos, ChecksumsCatchSilentCorruption) {
  // Corruption only — no plain I/O faults — so every retry the run
  // records is a checksum-detected mismatch being repaired.
  const auto preset = small_staging(8ULL << 10);
  na::GemmConfig config;
  config.n = 64;
  config.verify_samples = 16;
  config.hash_result = true;

  nc::Runtime clean(nt::apu_two_level(nm::StorageKind::Ssd, preset));
  const na::RunStats baseline = na::gemm_northup(clean, config);

  nm::FaultPlan plan;
  plan.seed = 0xbadb17;
  plan.read_corrupt_rate = 0.03;
  plan.write_corrupt_rate = 0.03;
  // A verified transfer rolls the corrupt rate several times (write +
  // read-back), so give the retry loop more headroom than the default.
  nc::RuntimeOptions options = chaos_options(plan);
  options.resilience.retry.max_attempts = 8;
  nc::Runtime chaotic(nt::apu_two_level(nm::StorageKind::Ssd, preset),
                      options);
  const na::RunStats faulted = na::gemm_northup(chaotic, config);
  EXPECT_TRUE(faulted.verified);
  EXPECT_EQ(faulted.result_hash, baseline.result_hash);
  EXPECT_GT(chaotic.resilience().corruption_detected(), 0u);
  EXPECT_GE(chaotic.metrics().counter("resil.corruption.detected").value(),
            chaotic.resilience().corruption_detected());
}

TEST(Chaos, BreakerQuarantinesFaultyNodeAndPlannerReroutes) {
  // Root DRAM with two DRAM children; "left" writes always fail with a
  // permanent-class error (a dead device).
  nt::TopoTree tree;
  nt::MemoryInfo info;
  info.storage_type = nm::StorageKind::Dram;
  info.capacity = 1ULL << 20;
  info.model = ns::ModelPresets::dram();
  const nt::NodeId root = tree.add_root("root", info);
  info.capacity = 256ULL << 10;
  tree.add_child(root, "left", info);
  tree.add_child(root, "right", info);

  nm::FaultPlan dead;
  dead.write_fault_rate = 1.0;
  dead.permanent = true;

  nc::RuntimeOptions options;
  options.storage_decorator =
      [dead](nt::NodeId node, const nt::TopoTree& t,
             std::unique_ptr<nm::Storage> storage)
      -> std::unique_ptr<nm::Storage> {
    if (t.node(node).name != "left") return storage;
    auto wrapped =
        std::make_unique<nm::FaultInjectingStorage>(std::move(storage));
    wrapped->set_plan(dead);
    return wrapped;
  };
  nc::Runtime rt(tree, options);
  auto& dm = rt.dm();
  const nt::NodeId left = rt.tree().find("left");
  const nt::NodeId right = rt.tree().find("right");

  nd::Buffer src = dm.alloc(4096, rt.tree().root());
  dm.fill(src, std::byte{0x5a}, 4096);

  std::vector<nt::NodeId> landed;
  rt.run([&](nc::ExecContext& ctx) {
    for (int i = 0; i < 6; ++i) {
      // The planner always asks for a healthy child; while "left" looks
      // fine it keeps getting picked (and keeps failing).
      const nt::NodeId target = ctx.healthy_child();
      nd::Buffer b = dm.alloc(4096, target);
      try {
        dm.move_data(b, src, {.size = 4096});
        landed.push_back(target);
      } catch (const nu::IoError&) {
        // Permanent fault: the chunk retry loop rethrew immediately.
      }
      dm.release(b);
    }
  });

  // Each iteration records a successful alloc and a failed move at
  // "left", so after two failed moves the window holds 4 samples at a
  // 50% failure rate — enough to trip. The remaining four transfers
  // landed on the healthy sibling.
  EXPECT_EQ(rt.resilience().breaker_state(left), nr::BreakerState::Open);
  ASSERT_EQ(landed.size(), 4u);
  for (const nt::NodeId node : landed) EXPECT_EQ(node, right);

  // Planner surface: a quarantined node advertises zero capacity.
  EXPECT_DOUBLE_EQ(rt.resilience().capacity_scale(left), 0.0);
  rt.run([&](nc::ExecContext& ctx) {
    EXPECT_EQ(ctx.available_bytes(left), 0u);
    EXPECT_GT(ctx.available_bytes(right), 0u);
  });

  // Observability: breaker gauge, trip counter, and the quarantine
  // instant in the Chrome trace.
  EXPECT_DOUBLE_EQ(rt.metrics().gauge("resil.breaker_state.left").value(),
                   2.0);
  EXPECT_GE(rt.metrics().counter("resil.breaker.trips").value(), 1u);

  northup::io::TempDir dir("chaos-trace");
  const std::string path = dir.file("trace.json");
  rt.write_chrome_trace(path);
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("quarantine@left"), std::string::npos);

  dm.release(src);
}
