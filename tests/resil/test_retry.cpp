// RetryPolicy units (classification, backoff schedule) and the
// ResilienceManager retry loop driven through fake operations.
#include <gtest/gtest.h>

#include <cerrno>
#include <vector>

#include "northup/resil/resilience.hpp"
#include "northup/resil/retry.hpp"
#include "northup/topo/presets.hpp"
#include "northup/util/assert.hpp"

namespace nr = northup::resil;
namespace nt = northup::topo;
namespace nu = northup::util;

namespace {

std::exception_ptr as_ptr(const auto& e) { return std::make_exception_ptr(e); }

/// Manager over the APU preset tree with a no-op sleeper (tests drive
/// many retries; real backoff sleeps would dominate the suite).
struct Fixture {
  explicit Fixture(nr::ResilOptions options = {})
      : tree(nt::apu_two_level()), mgr(tree, options) {
    mgr.set_sleeper([this](double s) { sleeps.push_back(s); });
  }

  nt::TopoTree tree;
  nr::ResilienceManager mgr;
  std::vector<double> sleeps;
};

}  // namespace

TEST(RetryPolicy, ClassifiesStructurally) {
  EXPECT_EQ(nr::classify(as_ptr(nu::IoError("flaky", EIO))),
            nr::ErrorClass::TransientIo);
  EXPECT_EQ(nr::classify(as_ptr(nu::IoError("interrupted", EINTR))),
            nr::ErrorClass::TransientIo);
  EXPECT_EQ(nr::classify(as_ptr(nu::IoError("gone", ENXIO))),
            nr::ErrorClass::Permanent);
  EXPECT_EQ(nr::classify(as_ptr(nu::IoError("eof", 0, /*transient=*/false))),
            nr::ErrorClass::Permanent);
  EXPECT_EQ(nr::classify(as_ptr(nu::CorruptionError("mismatch"))),
            nr::ErrorClass::Corruption);
  EXPECT_EQ(nr::classify(as_ptr(std::runtime_error("logic"))),
            nr::ErrorClass::Permanent);
}

TEST(RetryPolicy, BackoffGrowsAndClamps) {
  const nr::RetryPolicy policy{.max_attempts = 8,
                               .base_backoff_s = 1e-3,
                               .backoff_multiplier = 2.0,
                               .max_backoff_s = 5e-3};
  EXPECT_DOUBLE_EQ(policy.backoff_for(1), 1e-3);
  EXPECT_DOUBLE_EQ(policy.backoff_for(2), 2e-3);
  EXPECT_DOUBLE_EQ(policy.backoff_for(3), 4e-3);
  EXPECT_DOUBLE_EQ(policy.backoff_for(4), 5e-3);  // clamped
  EXPECT_DOUBLE_EQ(policy.backoff_for(7), 5e-3);
}

TEST(ResilienceManager, SucceedsWithoutRetryNoise) {
  Fixture f;
  int calls = 0;
  f.mgr.run_op(0, 1, "move", [&] { ++calls; });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(f.mgr.retries(), 0u);
  EXPECT_TRUE(f.sleeps.empty());
}

TEST(ResilienceManager, RetriesTransientUntilSuccess) {
  Fixture f;
  int calls = 0;
  f.mgr.run_op(0, 1, "move", [&] {
    if (++calls < 3) throw nu::IoError("flaky read", EIO);
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(f.mgr.retries(), 2u);
  ASSERT_EQ(f.sleeps.size(), 2u);
  // Jittered exponential: each sleep is backoff_for(k) * [1 +- jitter].
  const nr::RetryPolicy policy;  // defaults
  EXPECT_GE(f.sleeps[0], policy.base_backoff_s * (1.0 - policy.jitter));
  EXPECT_LE(f.sleeps[0], policy.base_backoff_s * (1.0 + policy.jitter));
  EXPECT_GE(f.sleeps[1], 2 * policy.base_backoff_s * (1.0 - policy.jitter));
  EXPECT_LE(f.sleeps[1], 2 * policy.base_backoff_s * (1.0 + policy.jitter));
}

TEST(ResilienceManager, PermanentErrorsAreNotRetried) {
  Fixture f;
  int calls = 0;
  EXPECT_THROW(f.mgr.run_op(0, 1, "move",
                            [&] {
                              ++calls;
                              throw nu::IoError("dead device", ENXIO);
                            }),
               nu::IoError);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(f.mgr.retries(), 0u);
}

TEST(ResilienceManager, ExhaustsAttemptsThenRethrows) {
  nr::ResilOptions options;
  options.retry.max_attempts = 3;
  Fixture f(options);
  int calls = 0;
  EXPECT_THROW(f.mgr.run_op(0, 1, "move",
                            [&] {
                              ++calls;
                              throw nu::IoError("always flaky", EIO);
                            }),
               nu::IoError);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(f.mgr.retries(), 2u);
}

TEST(ResilienceManager, CorruptionIsRetriedAndCountedSeparately) {
  Fixture f;
  int calls = 0;
  f.mgr.run_op(0, 1, "move", [&] {
    if (++calls < 2) throw nu::CorruptionError("checksum mismatch");
  });
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(f.mgr.retries(), 1u);
  EXPECT_EQ(f.mgr.corruption_detected(), 1u);
}

TEST(ResilienceManager, AbortCheckStopsRetrying) {
  Fixture f;
  f.mgr.set_abort_check([] { return true; });
  int calls = 0;
  EXPECT_THROW(f.mgr.run_op(0, 1, "move",
                            [&] {
                              ++calls;
                              throw nu::IoError("flaky", EIO);
                            }),
               nu::IoError);
  EXPECT_EQ(calls, 1);  // cancelled before the first retry
  EXPECT_EQ(f.mgr.retries(), 0u);
}

TEST(ResilienceManager, OpDeadlineBoundsTheRetryLoop) {
  nr::ResilOptions options;
  options.retry.max_attempts = 100;
  options.retry.op_deadline_s = 1e-9;  // already passed after one attempt
  Fixture f(options);
  int calls = 0;
  EXPECT_THROW(f.mgr.run_op(0, 1, "move",
                            [&] {
                              ++calls;
                              throw nu::IoError("flaky", EIO);
                            }),
               nu::IoError);
  EXPECT_EQ(calls, 1);
}

TEST(ResilienceManager, ExternalDeadlineStopsRetrying) {
  Fixture f;
  f.mgr.set_deadline(std::chrono::steady_clock::now());  // already passed
  int calls = 0;
  EXPECT_THROW(f.mgr.run_op(0, 1, "move",
                            [&] {
                              ++calls;
                              throw nu::IoError("flaky", EIO);
                            }),
               nu::IoError);
  EXPECT_EQ(calls, 1);
  f.mgr.clear_deadline();
  calls = 0;
  f.mgr.run_op(0, 1, "move", [&] {
    if (++calls < 2) throw nu::IoError("flaky", EIO);
  });
  EXPECT_EQ(calls, 2);  // deadline cleared: retries resume
}

TEST(ResilienceManager, RepeatedFailuresTripTheEndpointBreaker) {
  nr::ResilOptions options;
  options.retry.max_attempts = 4;
  Fixture f(options);
  EXPECT_EQ(f.mgr.breaker_state(1), nr::BreakerState::Closed);
  EXPECT_THROW(f.mgr.run_op(0, 1, "move",
                            [&] { throw nu::IoError("always flaky", EIO); }),
               nu::IoError);
  // 4 failed attempts >= min_samples at 100% failure rate: Open.
  EXPECT_EQ(f.mgr.breaker_state(1), nr::BreakerState::Open);
  EXPECT_EQ(f.mgr.capacity_scale(1), 0.0);
}
