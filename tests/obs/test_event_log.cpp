// obs::EventLog flight-recorder unit tests: interning, span nesting and
// cross-thread adoption, ring-buffer drop accounting, snapshot ordering,
// and the .nulog binary round-trip (including failure paths that must
// name the file).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "northup/io/posix_file.hpp"
#include "northup/obs/event_log.hpp"
#include "northup/util/assert.hpp"

namespace ni = northup::io;
namespace no = northup::obs;
namespace nu = northup::util;

namespace {

no::Event make_event(std::uint64_t ts, no::EventKind kind,
                     std::uint32_t name = 0, std::uint64_t value = 0) {
  no::Event e;
  e.ts_ns = ts;
  e.kind = kind;
  e.name = name;
  e.value = value;
  return e;
}

}  // namespace

TEST(EventLog, InternReturnsStableIdsAndRoundTrips) {
  no::EventLog log;
  const std::uint32_t a = log.intern("io");
  const std::uint32_t b = log.intern("cpu");
  EXPECT_NE(a, b);
  EXPECT_EQ(log.intern("io"), a);  // idempotent
  const no::RecordedRun run = log.snapshot();
  EXPECT_EQ(run.name_of(a), "io");
  EXPECT_EQ(run.name_of(b), "cpu");
  EXPECT_EQ(run.name_of(0xdeadu), "?");  // unknown ids stay printable
}

TEST(EventLog, SnapshotMergesSortedByTimestamp) {
  no::EventLog log;
  const std::uint32_t n = log.intern("ev");
  log.record(make_event(30, no::EventKind::kInstant, n));
  log.record(make_event(10, no::EventKind::kInstant, n));
  log.record(make_event(20, no::EventKind::kInstant, n));
  const no::RecordedRun run = log.snapshot();
  ASSERT_EQ(run.events.size(), 3u);
  EXPECT_EQ(run.events[0].ts_ns, 10u);
  EXPECT_EQ(run.events[1].ts_ns, 20u);
  EXPECT_EQ(run.events[2].ts_ns, 30u);
  EXPECT_EQ(run.dropped, 0u);
  EXPECT_EQ(run.thread_count, 1u);
}

TEST(EventLog, RingOverwritesOldestAndCountsDrops) {
  no::EventLog log(4);
  const std::uint32_t n = log.intern("ev");
  for (std::uint64_t i = 0; i < 10; ++i) {
    log.record(make_event(i, no::EventKind::kInstant, n, i));
  }
  EXPECT_EQ(log.dropped(), 6u);
  const no::RecordedRun run = log.snapshot();
  ASSERT_EQ(run.events.size(), 4u);  // only the newest `capacity` survive
  EXPECT_EQ(run.dropped, 6u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(run.events[i].value, i + 6);
  }
}

TEST(EventLog, SpanNestingPropagatesParents) {
  no::EventLog log;
  const std::uint32_t name = log.intern("s");
  const std::uint32_t phase = log.intern("p");
  EXPECT_EQ(log.current_span(), no::kNoSpan);
  const no::SpanId outer = log.begin_span(name, phase, 1);
  EXPECT_EQ(log.current_span(), outer);
  const no::SpanId inner = log.begin_span(name, phase, 2);
  EXPECT_EQ(log.current_span(), inner);
  log.instant(no::EventKind::kInstant, name, 2);
  log.end_span(inner);
  EXPECT_EQ(log.current_span(), outer);
  log.end_span(outer);
  EXPECT_EQ(log.current_span(), no::kNoSpan);

  const no::RecordedRun run = log.snapshot();
  ASSERT_EQ(run.events.size(), 5u);  // 2 begins + instant + 2 ends
  const no::Event& b_outer = run.events[0];
  const no::Event& b_inner = run.events[1];
  const no::Event& mid = run.events[2];
  EXPECT_EQ(b_outer.kind, no::EventKind::kSpanBegin);
  EXPECT_EQ(b_outer.parent, no::kNoSpan);
  EXPECT_EQ(b_inner.parent, outer);
  EXPECT_EQ(mid.span, inner);  // events attribute to the innermost span
}

TEST(EventLog, SpanScopeRestoresOnExitAndIgnoresNullLog) {
  no::EventLog log;
  {
    no::SpanScope outer(&log, "outer", "phase");
    EXPECT_EQ(log.current_span(), outer.id());
    {
      no::SpanScope inner(&log, "inner", "phase", 3);
      EXPECT_EQ(log.current_span(), inner.id());
    }
    EXPECT_EQ(log.current_span(), outer.id());
  }
  EXPECT_EQ(log.current_span(), no::kNoSpan);
  // Null-log scope must be a safe no-op (disabled-recorder path).
  no::SpanScope none(nullptr, "x", "y");
  EXPECT_EQ(none.id(), no::kNoSpan);
}

TEST(EventLog, SpanAdoptCarriesSpanAcrossThreads) {
  no::EventLog log;
  const std::uint32_t name = log.intern("work");
  const no::SpanId parent = log.begin_span(name, name, no::kNoNode);
  const no::EventLog::Context ctx = no::EventLog::current_context();
  EXPECT_EQ(ctx.log, &log);
  EXPECT_EQ(ctx.span, parent);

  std::thread worker([&] {
    EXPECT_EQ(log.current_span(), no::kNoSpan);  // fresh thread: no span
    {
      no::SpanAdopt adopt(ctx);
      EXPECT_EQ(log.current_span(), parent);
      log.instant(no::EventKind::kInstant, name, no::kNoNode);
    }
    EXPECT_EQ(log.current_span(), no::kNoSpan);  // restored after adopt
  });
  worker.join();
  log.end_span(parent);

  const no::RecordedRun run = log.snapshot();
  EXPECT_EQ(run.thread_count, 2u);
  bool found = false;
  for (const no::Event& e : run.events) {
    if (e.kind == no::EventKind::kInstant) {
      EXPECT_EQ(e.span, parent);
      EXPECT_NE(e.tid, run.events[0].tid);  // recorded on the worker thread
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EventLog, StaleContextAdoptIsNoOp) {
  no::EventLog::Context stale;
  stale.log = reinterpret_cast<no::EventLog*>(0x1234);  // never dereferenced
  stale.log_uid = 0xffffffffu;  // uid that no live log has
  stale.span = 42;
  no::SpanAdopt adopt(stale);  // must not crash or adopt
  no::EventLog log;
  EXPECT_EQ(log.current_span(), no::kNoSpan);
}

TEST(EventLog, ConcurrentRecordFromManyThreads) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  no::EventLog log(1 << 14);
  const std::uint32_t n = log.intern("ev");
  std::vector<std::thread> threads;
  std::atomic<int> start{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.fetch_add(1);
      while (start.load() < kThreads) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        log.record(make_event(static_cast<std::uint64_t>(i),
                              no::EventKind::kInstant, n,
                              static_cast<std::uint64_t>(t)));
      }
    });
  }
  for (auto& th : threads) th.join();
  const no::RecordedRun run = log.snapshot();
  EXPECT_EQ(run.thread_count, kThreads);
  EXPECT_EQ(run.dropped, 0u);
  EXPECT_EQ(run.events.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(EventLog, BinaryRoundTripPreservesEverything) {
  no::EventLog log(4);  // small ring: drops must survive the round trip
  log.set_node_name(0, "storage");
  log.set_node_name(1, "dram");
  const std::uint32_t n = log.intern("move");
  const std::uint32_t p = log.intern("io");
  for (std::uint64_t i = 0; i < 6; ++i) {
    no::Event e = make_event(i * 10, no::EventKind::kMove, n, 4096);
    e.dur_ns = 5;
    e.phase = p;
    e.node = 0;
    e.node2 = 1;
    e.aux = 1;
    log.record(e);
  }

  ni::TempDir dir("nulog-test");
  const std::string path = dir.path() + "/run.nulog";
  log.write_file(path);
  const no::RecordedRun back = no::EventLog::read_file(path);
  const no::RecordedRun orig = log.snapshot();

  EXPECT_EQ(back.names, orig.names);
  EXPECT_EQ(back.node_names, orig.node_names);
  EXPECT_EQ(back.dropped, orig.dropped);
  EXPECT_EQ(back.thread_count, orig.thread_count);
  ASSERT_EQ(back.events.size(), orig.events.size());
  for (std::size_t i = 0; i < back.events.size(); ++i) {
    EXPECT_EQ(back.events[i].ts_ns, orig.events[i].ts_ns);
    EXPECT_EQ(back.events[i].dur_ns, orig.events[i].dur_ns);
    EXPECT_EQ(back.events[i].value, orig.events[i].value);
    EXPECT_EQ(back.events[i].name, orig.events[i].name);
    EXPECT_EQ(back.events[i].kind, orig.events[i].kind);
    EXPECT_EQ(back.events[i].node, orig.events[i].node);
    EXPECT_EQ(back.events[i].node2, orig.events[i].node2);
    EXPECT_EQ(back.events[i].aux, orig.events[i].aux);
  }
  EXPECT_EQ(back.node_name(0), "storage");
  EXPECT_EQ(back.node_name(7), "node7");  // unknown nodes stay printable
}

TEST(EventLog, WriteFileReportsTargetPathOnFailure) {
  no::EventLog log;
  ni::TempDir dir("nulog-unwritable");
  const std::string path = dir.path() + "/missing/sub/run.nulog";
  try {
    log.write_file(path);
    FAIL() << "expected util::Error";
  } catch (const nu::Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error must name the target path: " << e.what();
  }
}

TEST(EventLog, ReadFileRejectsMissingAndMalformedInput) {
  ni::TempDir dir("nulog-bad");
  const std::string missing = dir.path() + "/nope.nulog";
  try {
    no::EventLog::read_file(missing);
    FAIL() << "expected util::Error";
  } catch (const nu::Error& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos);
  }

  const std::string garbage = dir.path() + "/garbage.nulog";
  {
    std::ofstream out(garbage);
    out << "this is not a nulog file";
  }
  EXPECT_THROW(no::EventLog::read_file(garbage), nu::Error);
}
