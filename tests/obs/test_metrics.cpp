// MetricsRegistry unit tests plus the DataManager integration invariant:
// the per-edge bytes_moved.* counters sum to DataManager::bytes_moved().
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "northup/core/runtime.hpp"
#include "northup/data/scoped_buffer.hpp"
#include "northup/io/posix_file.hpp"
#include "northup/obs/metrics.hpp"
#include "northup/topo/presets.hpp"

namespace nc = northup::core;
namespace nd = northup::data;
namespace ni = northup::io;
namespace no = northup::obs;
namespace nt = northup::topo;

TEST(Counter, AddAndIncrement) {
  no::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndRecordMax) {
  no::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.record_max(1.0);  // lower value must not win
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.record_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.set(0.5);  // set overrides unconditionally
  EXPECT_DOUBLE_EQ(g.value(), 0.5);
}

TEST(MetricsRegistry, GetOrCreateReturnsStableReference) {
  no::MetricsRegistry reg;
  no::Counter& a = reg.counter("x");
  a.add(3);
  // Second lookup must return the same object, not a fresh zero.
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  no::Gauge& g = reg.gauge("y");
  g.set(1.5);
  EXPECT_EQ(&reg.gauge("y"), &g);
}

TEST(MetricsRegistry, CounterSumByPrefix) {
  no::MetricsRegistry reg;
  reg.counter("bytes_moved.a->b").add(10);
  reg.counter("bytes_moved.b->c").add(32);
  reg.counter("bytes_movedX").add(100);  // not under the dotted prefix
  reg.counter("other").add(7);
  EXPECT_EQ(reg.counter_sum("bytes_moved."), 42u);
  EXPECT_EQ(reg.counter_sum("nope."), 0u);
}

TEST(MetricsRegistry, SnapshotsAreSortedByName) {
  no::MetricsRegistry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("g").set(3.0);
  const auto counters = reg.counter_values();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters.begin()->first, "a");
  EXPECT_EQ(counters.at("b"), 2u);
  EXPECT_DOUBLE_EQ(reg.gauge_values().at("g"), 3.0);
}

TEST(Histogram, EmptyReadsAsZero) {
  no::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.p99, 0.0);
}

TEST(Histogram, ExactAccumulatorsAndBucketedQuantiles) {
  no::Histogram h;
  // 100 samples spread over two decades: 1ms .. 100ms.
  for (int i = 1; i <= 100; ++i) h.record(1e-3 * i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), 5.050, 1e-9);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 0.100);
  EXPECT_NEAR(h.mean(), 0.0505, 1e-12);
  // Log buckets at 6/octave carry <= ~12% relative error.
  EXPECT_NEAR(h.quantile(0.5), 0.050, 0.050 * 0.13);
  EXPECT_NEAR(h.quantile(0.95), 0.095, 0.095 * 0.13);
  // Quantiles are clamped into the exact [min, max] envelope.
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(Histogram, SingleSampleQuantilesCollapseToIt) {
  no::Histogram h;
  h.record(0.25);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 0.25);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.25);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.25);
}

TEST(Histogram, NonPositiveValuesStillCount) {
  no::Histogram h;
  h.record(0.0);
  h.record(-1.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(MetricsRegistry, HistogramJsonSectionOnlyWhenPresent) {
  no::MetricsRegistry reg;
  reg.counter("c").add(1);
  // Golden metrics dumps from before histograms existed must not change.
  EXPECT_EQ(reg.to_json().find("\"histograms\""), std::string::npos);
  reg.histogram("svc.latency.e2e").record(0.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"svc.latency.e2e\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  const auto snaps = reg.histogram_values();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps.at("svc.latency.e2e").count, 1u);
}

TEST(MetricsRegistry, ToJsonListsCountersAndGauges) {
  no::MetricsRegistry reg;
  reg.counter("dm.moves").add(5);
  reg.gauge("sim.makespan_seconds").set(0.25);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"dm.moves\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"sim.makespan_seconds\""), std::string::npos);
}

TEST(MetricsRegistry, WriteJsonMatchesToJson) {
  no::MetricsRegistry reg;
  reg.counter("k").add(9);
  ni::TempDir dir("metrics-test");
  const std::string path = dir.path() + "/m.json";
  reg.write_json(path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), reg.to_json());
}

namespace {

/// A quickstart-shaped run: chunked square through the two-level tree.
nc::Runtime make_runtime() {
  nt::PresetOptions opts;
  opts.root_capacity = 1ULL << 20;
  opts.staging_capacity = 64ULL << 10;
  return nc::Runtime(
      nt::apu_two_level(northup::mem::StorageKind::Ssd, opts));
}

}  // namespace

TEST(MetricsIntegration, EdgeCountersSumToDataManagerBytesMoved) {
  nc::Runtime rt = make_runtime();
  auto& dm = rt.dm();
  const auto root = rt.tree().root();
  const auto dram = rt.tree().find("dram");

  constexpr std::uint64_t kBytes = 16 << 10;
  std::vector<float> host(kBytes / sizeof(float), 1.5f);

  nd::ScopedBuffer on_root(dm, kBytes, root);
  nd::ScopedBuffer staged(dm, kBytes, dram);
  dm.write_from_host(*on_root, host.data(), kBytes);
  dm.move_data_down(*staged, *on_root, {.size = kBytes});
  dm.move_data_up(*on_root, *staged, {.size = kBytes});
  dm.read_to_host(host.data(), *on_root, kBytes);

  EXPECT_GT(dm.bytes_moved(), 0u);
  EXPECT_EQ(rt.metrics().counter_sum("bytes_moved."), dm.bytes_moved());

  // The apu_two_level preset names its file root "storage".
  const auto counters = rt.metrics().counter_values();
  EXPECT_EQ(counters.at("bytes_moved.host->storage"), kBytes);
  EXPECT_EQ(counters.at("bytes_moved.storage->dram"), kBytes);
  EXPECT_EQ(counters.at("bytes_moved.dram->storage"), kBytes);
  EXPECT_EQ(counters.at("bytes_moved.storage->host"), kBytes);
  EXPECT_EQ(counters.at("dm.moves"), 2u);
  EXPECT_EQ(counters.at("dm.allocs"), 2u);
}

TEST(MetricsIntegration, SpawnAndStorageCountersTrackTheRun) {
  nc::Runtime rt = make_runtime();
  auto& dm = rt.dm();
  const auto root = rt.tree().root();

  nd::ScopedBuffer buf(dm, 4096, root);
  rt.run([&](nc::ExecContext& ctx) {
    ctx.northup_spawn(ctx.child(0), [](nc::ExecContext&) {});
  });

  const auto counters = rt.metrics().counter_values();
  EXPECT_EQ(counters.at("runtime.spawns"), rt.spawn_count());
  EXPECT_GE(counters.at("storage.storage.allocs"), 1u);
  // write_metrics_json stamps the simulator gauges before dumping.
  ni::TempDir dir("metrics-run");
  rt.write_metrics_json(dir.path() + "/m.json");
  const auto gauges = rt.metrics().gauge_values();
  EXPECT_DOUBLE_EQ(gauges.at("sim.makespan_seconds"), rt.makespan());
}
