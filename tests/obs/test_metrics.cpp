// MetricsRegistry unit tests plus the DataManager integration invariant:
// the per-edge bytes_moved.* counters sum to DataManager::bytes_moved().
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "northup/core/runtime.hpp"
#include "northup/data/scoped_buffer.hpp"
#include "northup/io/posix_file.hpp"
#include "northup/obs/metrics.hpp"
#include "northup/obs/sampler.hpp"
#include "northup/topo/presets.hpp"
#include "northup/util/assert.hpp"
#include "support/minijson.hpp"

namespace nc = northup::core;
namespace nd = northup::data;
namespace ni = northup::io;
namespace no = northup::obs;
namespace nt = northup::topo;

TEST(Counter, AddAndIncrement) {
  no::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndRecordMax) {
  no::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.record_max(1.0);  // lower value must not win
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.record_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.set(0.5);  // set overrides unconditionally
  EXPECT_DOUBLE_EQ(g.value(), 0.5);
}

TEST(MetricsRegistry, GetOrCreateReturnsStableReference) {
  no::MetricsRegistry reg;
  no::Counter& a = reg.counter("x");
  a.add(3);
  // Second lookup must return the same object, not a fresh zero.
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  no::Gauge& g = reg.gauge("y");
  g.set(1.5);
  EXPECT_EQ(&reg.gauge("y"), &g);
}

TEST(MetricsRegistry, CounterSumByPrefix) {
  no::MetricsRegistry reg;
  reg.counter("bytes_moved.a->b").add(10);
  reg.counter("bytes_moved.b->c").add(32);
  reg.counter("bytes_movedX").add(100);  // not under the dotted prefix
  reg.counter("other").add(7);
  EXPECT_EQ(reg.counter_sum("bytes_moved."), 42u);
  EXPECT_EQ(reg.counter_sum("nope."), 0u);
}

TEST(MetricsRegistry, SnapshotsAreSortedByName) {
  no::MetricsRegistry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("g").set(3.0);
  const auto counters = reg.counter_values();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters.begin()->first, "a");
  EXPECT_EQ(counters.at("b"), 2u);
  EXPECT_DOUBLE_EQ(reg.gauge_values().at("g"), 3.0);
}

TEST(Histogram, EmptyReadsAsZero) {
  no::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.p99, 0.0);
}

TEST(Histogram, ExactAccumulatorsAndBucketedQuantiles) {
  no::Histogram h;
  // 100 samples spread over two decades: 1ms .. 100ms.
  for (int i = 1; i <= 100; ++i) h.record(1e-3 * i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), 5.050, 1e-9);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 0.100);
  EXPECT_NEAR(h.mean(), 0.0505, 1e-12);
  // Log buckets at 6/octave carry <= ~12% relative error.
  EXPECT_NEAR(h.quantile(0.5), 0.050, 0.050 * 0.13);
  EXPECT_NEAR(h.quantile(0.95), 0.095, 0.095 * 0.13);
  // Quantiles are clamped into the exact [min, max] envelope.
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(Histogram, SingleSampleQuantilesCollapseToIt) {
  no::Histogram h;
  h.record(0.25);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 0.25);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.25);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.25);
}

TEST(Histogram, NonPositiveValuesStillCount) {
  no::Histogram h;
  h.record(0.0);
  h.record(-1.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, ValuesBelowLowestBucketStillQuantile) {
  no::Histogram h;
  // Far below kLowest (1e-9): everything lands in the bottom bucket, but
  // the exact min/max envelope keeps quantiles honest.
  for (int i = 0; i < 10; ++i) h.record(1e-15);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-15);
  EXPECT_DOUBLE_EQ(h.max(), 1e-15);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1e-15);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1e-15);
}

TEST(Histogram, TopBucketSaturationKeepsQuantilesInEnvelope) {
  no::Histogram h;
  // Far above the highest finite bucket boundary: saturates the top
  // bucket without overflow, quantiles clamp to the exact max.
  h.record(1e30);
  h.record(2e30);
  h.record(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max(), 2e30);
  EXPECT_LE(h.quantile(1.0), h.max());
  EXPECT_GE(h.quantile(0.9), 1.0);
  EXPECT_DOUBLE_EQ(h.sum(), 3e30 + 1.0);
}

TEST(Histogram, ZeroAndNegativeMixWithPositives) {
  no::Histogram h;
  h.record(0.0);
  h.record(-5.0);
  h.record(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  EXPECT_NEAR(h.sum(), -4.0, 1e-12);
  // Quantiles stay inside the exact envelope even though non-positive
  // values share the lowest bucket.
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(Histogram, ConcurrentRecordKeepsExactCountAndSum) {
  no::Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i) h.record(1e-6 * i);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const double expected_sum =
      kThreads * (1e-6 * kPerThread * (kPerThread + 1) / 2.0);
  EXPECT_NEAR(h.sum(), expected_sum, expected_sum * 1e-9);
  EXPECT_DOUBLE_EQ(h.min(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max(), 1e-6 * kPerThread);
}

TEST(MetricsRegistry, HistogramJsonSectionOnlyWhenPresent) {
  no::MetricsRegistry reg;
  reg.counter("c").add(1);
  // Golden metrics dumps from before histograms existed must not change.
  EXPECT_EQ(reg.to_json().find("\"histograms\""), std::string::npos);
  reg.histogram("svc.latency.e2e").record(0.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"svc.latency.e2e\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  const auto snaps = reg.histogram_values();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps.at("svc.latency.e2e").count, 1u);
}

TEST(MetricsRegistry, ToJsonListsCountersAndGauges) {
  no::MetricsRegistry reg;
  reg.counter("dm.moves").add(5);
  reg.gauge("sim.makespan_seconds").set(0.25);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"dm.moves\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"sim.makespan_seconds\""), std::string::npos);
}

TEST(MetricsRegistry, WriteJsonMatchesToJson) {
  no::MetricsRegistry reg;
  reg.counter("k").add(9);
  ni::TempDir dir("metrics-test");
  const std::string path = dir.path() + "/m.json";
  reg.write_json(path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), reg.to_json());
}

TEST(MetricsRegistry, JsonDoublesAreShortestRoundTrip) {
  no::MetricsRegistry reg;
  reg.gauge("tenth").set(0.1);
  reg.gauge("third").set(1.0 / 3.0);
  const std::string json = reg.to_json();
  // std::to_chars shortest form: "0.1", not "0.1000000000000000055511...".
  EXPECT_NE(json.find("\"tenth\": 0.1"), std::string::npos) << json;
  EXPECT_EQ(json.find("0.10000000000000000"), std::string::npos) << json;
  // Round-trip: the emitted text parses back to the exact double.
  const auto root = northup::testjson::JsonParser(json).parse();
  EXPECT_DOUBLE_EQ(root.at("gauges").at("third").number, 1.0 / 3.0);
}

TEST(MetricsRegistry, PrometheusExportTypesAndSanitizesNames) {
  no::MetricsRegistry reg;
  reg.counter("bytes_moved.storage->dram").add(42);
  reg.gauge("sim.makespan_seconds").set(0.5);
  reg.histogram("svc.latency.e2e").record(0.25);
  const std::string text = reg.to_prometheus();
  // "->" and "." are outside [a-zA-Z0-9_:] and must be sanitized.
  EXPECT_EQ(text.find("->"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE bytes_moved_storage__dram counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("bytes_moved_storage__dram 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sim_makespan_seconds gauge"),
            std::string::npos);
  EXPECT_NE(text.find("sim_makespan_seconds 0.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE svc_latency_e2e summary"), std::string::npos);
  EXPECT_NE(text.find("svc_latency_e2e{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("svc_latency_e2e_count 1"), std::string::npos);
  EXPECT_NE(text.find("svc_latency_e2e_sum 0.25"), std::string::npos);
}

TEST(PromNames, SanitizeNameContract) {
  // The one documented mapping: bytes outside [a-zA-Z0-9_:] become '_',
  // a leading digit gets a '_' prefix (keeping the digit), empty -> "_".
  EXPECT_EQ(no::prom_sanitize_name("svc.latency.e2e"), "svc_latency_e2e");
  EXPECT_EQ(no::prom_sanitize_name("bytes_moved.storage->dram"),
            "bytes_moved_storage__dram");
  EXPECT_EQ(no::prom_sanitize_name("edge:a::b"), "edge:a::b");  // legal as-is
  EXPECT_EQ(no::prom_sanitize_name("9lives"), "_9lives");
  EXPECT_EQ(no::prom_sanitize_name(""), "_");
  EXPECT_EQ(no::prom_sanitize_name("a b\tc"), "a_b_c");
}

TEST(PromNames, EscapeLabelValueContract) {
  // Exactly the three escapes the exposition format defines.
  EXPECT_EQ(no::prom_escape_label_value("plain"), "plain");
  EXPECT_EQ(no::prom_escape_label_value("back\\slash"), "back\\\\slash");
  EXPECT_EQ(no::prom_escape_label_value("quo\"te"), "quo\\\"te");
  EXPECT_EQ(no::prom_escape_label_value("new\nline"), "new\\nline");
  EXPECT_EQ(no::prom_escape_label_value("a\\\"b\nc"), "a\\\\\\\"b\\nc");
}

TEST(MetricsRegistry, PrometheusEscapesLabelValues) {
  no::MetricsRegistry reg;
  reg.counter("http.requests{path=/jobs/\"x\\y\nz\"}").add(3);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(
      text.find("http_requests{path=\"/jobs/\\\"x\\\\y\\nz\\\"\"} 3"),
      std::string::npos)
      << text;
  // No raw newline may survive inside a sample line: every line must
  // still look like `name{...} value`.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(line[0] == '#' || line.find(' ') != std::string::npos)
        << "broken sample line: " << line;
  }
}

TEST(MetricsRegistry, PrometheusSharesOneTypeLineAcrossLabeledSeries) {
  no::MetricsRegistry reg;
  reg.counter("svc.tenant.jobs{tenant=alice}").add(1);
  reg.counter("svc.tenant.jobs{tenant=bob}").add(2);
  // Sorts between the two labeled series ('.' < '{'), which must not
  // split the family or duplicate its TYPE line.
  reg.counter("svc.tenant.jobs.other").add(7);
  const std::string text = reg.to_prometheus();
  std::size_t type_count = 0;
  for (std::size_t pos = text.find("# TYPE svc_tenant_jobs counter");
       pos != std::string::npos;
       pos = text.find("# TYPE svc_tenant_jobs counter", pos + 1)) {
    ++type_count;
  }
  EXPECT_EQ(type_count, 1u) << text;
  const std::size_t a = text.find("svc_tenant_jobs{tenant=\"alice\"} 1");
  const std::size_t b = text.find("svc_tenant_jobs{tenant=\"bob\"} 2");
  ASSERT_NE(a, std::string::npos) << text;
  ASSERT_NE(b, std::string::npos) << text;
  // Contiguous family block: nothing between the two labeled samples.
  EXPECT_EQ(text.find('\n', a) + 1, b) << text;
  EXPECT_NE(text.find("# TYPE svc_tenant_jobs_other counter"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistry, PrometheusSanitizesLabelKeysAndMalformedBlocks) {
  no::MetricsRegistry reg;
  reg.gauge("pool.depth{worker-id=3}").set(4.0);
  // A '{'-block that doesn't end in '}' or has no '=' folds into the
  // base name instead of emitting an unparseable half-block.
  reg.counter("weird{notalabel}").add(1);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("pool_depth{worker_id=\"3\"} 4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("weird_notalabel 1"), std::string::npos) << text;
}

TEST(MetricsRegistry, PrometheusHistogramCarriesLabelsOnEverySeries) {
  no::MetricsRegistry reg;
  reg.histogram("svc.latency.e2e{tenant=t1}").record(0.5);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE svc_latency_e2e summary"), std::string::npos);
  EXPECT_NE(
      text.find("svc_latency_e2e{tenant=\"t1\",quantile=\"0.99\"} 0.5"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("svc_latency_e2e_sum{tenant=\"t1\"} 0.5"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("svc_latency_e2e_count{tenant=\"t1\"} 1"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistry, WriteJsonReportsTargetPathOnFailure) {
  no::MetricsRegistry reg;
  ni::TempDir dir("metrics-unwritable");
  const std::string path = dir.path() + "/missing/sub/m.json";
  try {
    reg.write_json(path);
    FAIL() << "expected util::Error";
  } catch (const northup::util::Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error must name the target path: " << e.what();
  }
}

TEST(MetricsRegistry, WritePrometheusReportsTargetPathOnFailure) {
  no::MetricsRegistry reg;
  ni::TempDir dir("prom-unwritable");
  const std::string path = dir.path() + "/missing/sub/m.prom";
  try {
    reg.write_prometheus(path);
    FAIL() << "expected util::Error";
  } catch (const northup::util::Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

TEST(MetricsSampler, SampleOnceBuildsBoundedSeries) {
  no::MetricsRegistry reg;
  no::Gauge& g = reg.gauge("g");
  no::MetricsSampler sampler(reg, std::chrono::milliseconds(50),
                             /*max_samples=*/3);
  for (int i = 1; i <= 5; ++i) {
    g.set(static_cast<double>(i));
    sampler.sample_once();
  }
  EXPECT_EQ(sampler.sweeps(), 5u);
  const auto series = sampler.series();
  ASSERT_EQ(series.count("g"), 1u);
  const auto& s = series.at("g");
  ASSERT_EQ(s.size(), 3u);  // bounded: oldest two dropped
  EXPECT_DOUBLE_EQ(s[0].value, 3.0);
  EXPECT_DOUBLE_EQ(s[2].value, 5.0);
  EXPECT_LE(s[0].t_seconds, s[2].t_seconds);

  // to_json parses and carries the series as [t, v] pairs.
  const auto root = northup::testjson::JsonParser(sampler.to_json()).parse();
  EXPECT_TRUE(root.has("interval_ms"));
  const auto& arr = root.at("series").at("g").array;
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[2].array[1].number, 5.0);
}

TEST(MetricsSampler, BackgroundThreadSamplesAndStops) {
  no::MetricsRegistry reg;
  reg.gauge("g").set(1.0);
  no::MetricsSampler sampler(reg, std::chrono::milliseconds(1));
  sampler.start();
  sampler.start();  // idempotent
  // The run loop samples immediately, then every interval.
  for (int spin = 0; spin < 200 && sampler.sweeps() < 3; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
  sampler.stop();  // idempotent
  const std::uint64_t after_stop = sampler.sweeps();
  EXPECT_GE(after_stop, 3u);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(sampler.sweeps(), after_stop);  // no samples after stop
}

namespace {

/// A quickstart-shaped run: chunked square through the two-level tree.
nc::Runtime make_runtime() {
  nt::PresetOptions opts;
  opts.root_capacity = 1ULL << 20;
  opts.staging_capacity = 64ULL << 10;
  return nc::Runtime(
      nt::apu_two_level(northup::mem::StorageKind::Ssd, opts));
}

}  // namespace

TEST(MetricsIntegration, EdgeCountersSumToDataManagerBytesMoved) {
  nc::Runtime rt = make_runtime();
  auto& dm = rt.dm();
  const auto root = rt.tree().root();
  const auto dram = rt.tree().find("dram");

  constexpr std::uint64_t kBytes = 16 << 10;
  std::vector<float> host(kBytes / sizeof(float), 1.5f);

  nd::ScopedBuffer on_root(dm, kBytes, root);
  nd::ScopedBuffer staged(dm, kBytes, dram);
  dm.write_from_host(*on_root, host.data(), kBytes);
  dm.move_data_down(*staged, *on_root, {.size = kBytes});
  dm.move_data_up(*on_root, *staged, {.size = kBytes});
  dm.read_to_host(host.data(), *on_root, kBytes);

  EXPECT_GT(dm.bytes_moved(), 0u);
  EXPECT_EQ(rt.metrics().counter_sum("bytes_moved."), dm.bytes_moved());

  // The apu_two_level preset names its file root "storage".
  const auto counters = rt.metrics().counter_values();
  EXPECT_EQ(counters.at("bytes_moved.host->storage"), kBytes);
  EXPECT_EQ(counters.at("bytes_moved.storage->dram"), kBytes);
  EXPECT_EQ(counters.at("bytes_moved.dram->storage"), kBytes);
  EXPECT_EQ(counters.at("bytes_moved.storage->host"), kBytes);
  EXPECT_EQ(counters.at("dm.moves"), 2u);
  EXPECT_EQ(counters.at("dm.allocs"), 2u);
}

TEST(MetricsIntegration, SpawnAndStorageCountersTrackTheRun) {
  nc::Runtime rt = make_runtime();
  auto& dm = rt.dm();
  const auto root = rt.tree().root();

  nd::ScopedBuffer buf(dm, 4096, root);
  rt.run([&](nc::ExecContext& ctx) {
    ctx.northup_spawn(ctx.child(0), [](nc::ExecContext&) {});
  });

  const auto counters = rt.metrics().counter_values();
  EXPECT_EQ(counters.at("runtime.spawns"), rt.spawn_count());
  EXPECT_GE(counters.at("storage.storage.allocs"), 1u);
  // write_metrics_json stamps the simulator gauges before dumping.
  ni::TempDir dir("metrics-run");
  rt.write_metrics_json(dir.path() + "/m.json");
  const auto gauges = rt.metrics().gauge_values();
  EXPECT_DOUBLE_EQ(gauges.at("sim.makespan_seconds"), rt.makespan());
}
