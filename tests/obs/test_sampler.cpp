// MetricsSampler tests: bounded ring retention, counter series, and the
// concurrent sample/read contract the /timeseries endpoint leans on
// (a server worker serializes series() while the background thread
// samples — the TSan CI leg runs this suite to prove it race-free).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "northup/obs/metrics.hpp"
#include "northup/obs/sampler.hpp"

namespace no = northup::obs;

TEST(MetricsSampler, RingRetainsNewestAndStaysBounded) {
  no::MetricsRegistry reg;
  no::Gauge& g = reg.gauge("g");
  no::MetricsSampler sampler(reg, std::chrono::milliseconds(10),
                             /*max_samples=*/4);
  EXPECT_EQ(sampler.max_samples(), 4u);
  EXPECT_EQ(sampler.interval(), std::chrono::milliseconds(10));
  for (int i = 1; i <= 11; ++i) {
    g.set(static_cast<double>(i));
    sampler.sample_once();
  }
  const auto series = sampler.series();
  ASSERT_EQ(series.count("g"), 1u);
  const auto& s = series.at("g");
  // Bounded at 4, oldest-first, holding exactly the newest samples —
  // the overwrite-in-place path has wrapped nearly twice.
  ASSERT_EQ(s.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(s[static_cast<std::size_t>(i)].value, 8.0 + i);
  }
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_LE(s[i - 1].t_seconds, s[i].t_seconds);
  }
  EXPECT_GE(sampler.now_seconds(), s.back().t_seconds);
}

TEST(MetricsSampler, CountersSampledOnlyWhenEnabled) {
  no::MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(1.0);

  no::MetricsSampler gauges_only(reg, std::chrono::milliseconds(10), 16);
  gauges_only.sample_once();
  EXPECT_EQ(gauges_only.series().count("c"), 0u);
  EXPECT_EQ(gauges_only.series().count("g"), 1u);

  no::MetricsSampler with_counters(reg, std::chrono::milliseconds(10), 16,
                                   /*include_counters=*/true);
  with_counters.sample_once();
  reg.counter("c").add(2);
  with_counters.sample_once();
  const auto series = with_counters.series();
  ASSERT_EQ(series.count("c"), 1u);
  const auto& c = series.at("c");
  // Cumulative values, not deltas: consumers diff adjacent points.
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[0].value, 5.0);
  EXPECT_DOUBLE_EQ(c[1].value, 7.0);
}

TEST(MetricsSampler, ConcurrentSampleAndReadIsRaceFree) {
  no::MetricsRegistry reg;
  no::Gauge& g = reg.gauge("g");
  no::Counter& c = reg.counter("c");
  no::MetricsSampler sampler(reg, std::chrono::milliseconds(1),
                             /*max_samples=*/8, /*include_counters=*/true);
  sampler.start();

  std::atomic<bool> stop{false};
  // Writers mutate the registry while readers serialize the rings —
  // the exact interleaving of a live /timeseries scrape.
  std::thread writer([&] {
    for (std::uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      g.set(static_cast<double>(i));
      c.increment();
      std::this_thread::yield();
    }
  });
  std::thread manual_sampler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      sampler.sample_once();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto series = sampler.series();
        for (const auto& [name, samples] : series) {
          EXPECT_LE(samples.size(), 8u) << name;
          for (std::size_t i = 1; i < samples.size(); ++i) {
            EXPECT_LE(samples[i - 1].t_seconds, samples[i].t_seconds);
          }
        }
        (void)sampler.to_json();
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  manual_sampler.join();
  for (std::thread& t : readers) t.join();
  sampler.stop();

  const auto series = sampler.series();
  ASSERT_EQ(series.count("g"), 1u);
  ASSERT_EQ(series.count("c"), 1u);
  EXPECT_LE(series.at("g").size(), 8u);
  EXPECT_GE(sampler.sweeps(), 2u);
}
