// Chrome-trace schema validation: the export parses as JSON, metadata
// precedes timed events, X events are time-sorted onto named (pid, tid)
// tracks, and every dependency flow "s"/"f" pair resolves — both for a
// hand-built EventSim and for a quickstart-shaped Runtime dump.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "northup/core/runtime.hpp"
#include "northup/data/scoped_buffer.hpp"
#include "northup/io/posix_file.hpp"
#include "northup/obs/trace_writer.hpp"
#include "northup/topo/presets.hpp"
#include "northup/util/assert.hpp"
#include "support/minijson.hpp"

namespace nc = northup::core;
namespace nd = northup::data;
namespace ni = northup::io;
namespace no = northup::obs;
namespace ns = northup::sim;
namespace nt = northup::topo;

using northup::testjson::Json;
using northup::testjson::JsonParser;

namespace {

/// Asserts the trace-schema invariants shared by every export.
/// Returns the number of "X" (complete) events.
std::size_t validate_trace(const Json& root) {
  EXPECT_TRUE(root.has("traceEvents"));
  EXPECT_TRUE(root.has("displayTimeUnit"));
  const auto& events = root.at("traceEvents").array;

  bool seen_timed = false;
  double last_ts = -1.0;
  std::size_t x_events = 0;
  std::set<double> pids_with_tasks;
  std::map<double, std::string> process_names;
  std::map<double, double> flow_starts;  // id -> ts
  std::map<double, double> flow_ends;

  for (const auto& ev : events) {
    EXPECT_TRUE(ev.has("ph"));
    const std::string ph = ev.at("ph").string;
    if (ph == "M") {
      // Metadata must precede every timed event.
      EXPECT_FALSE(seen_timed) << "metadata event after a timed event";
      if (ev.at("name").string == "process_name") {
        process_names[ev.at("pid").number] =
            ev.at("args").at("name").string;
      }
      continue;
    }
    seen_timed = true;
    EXPECT_TRUE(ev.has("ts"));
    EXPECT_GE(ev.at("ts").number, last_ts) << "events not sorted by ts";
    last_ts = ev.at("ts").number;
    if (ph == "X") {
      ++x_events;
      EXPECT_TRUE(ev.has("pid"));
      EXPECT_TRUE(ev.has("tid"));
      EXPECT_TRUE(ev.has("dur"));
      EXPECT_TRUE(ev.has("name"));
      EXPECT_GE(ev.at("dur").number, 0.0);
      pids_with_tasks.insert(ev.at("pid").number);
    } else if (ph == "s" || ph == "f") {
      const double id = ev.at("id").number;
      if (ph == "s") {
        EXPECT_EQ(flow_starts.count(id), 0u) << "duplicate flow start";
        flow_starts[id] = ev.at("ts").number;
      } else {
        EXPECT_EQ(flow_ends.count(id), 0u) << "duplicate flow end";
        EXPECT_EQ(ev.at("bp").string, "e");
        flow_ends[id] = ev.at("ts").number;
      }
    } else {
      ADD_FAILURE() << "unexpected phase '" << ph << "'";
    }
  }

  // Every flow id resolves to exactly one s/f pair, ordered in time.
  EXPECT_EQ(flow_starts.size(), flow_ends.size());
  for (const auto& [id, start_ts] : flow_starts) {
    const auto it = flow_ends.find(id);
    EXPECT_TRUE(it != flow_ends.end()) << "unresolved flow id " << id;
    if (it != flow_ends.end()) {
      EXPECT_LE(start_ts, it->second);
    }
  }
  // Every pid that carries tasks is named.
  for (double pid : pids_with_tasks) {
    EXPECT_EQ(process_names.count(pid), 1u) << "unnamed pid " << pid;
  }
  return x_events;
}

Json parse_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return JsonParser(buf.str()).parse();
}

}  // namespace

TEST(TraceWriter, HandBuiltGraphExportsValidSchema) {
  ns::EventSim sim;
  const auto io = sim.add_resource("ssd.io");
  const auto gpu = sim.add_resource("gpu.cu");
  const auto t0 = sim.add_task("read", "io", io, 1.0);
  const auto t1 = sim.add_task("kernel", "gpu", gpu, 2.0, {t0});
  sim.add_task("write", "io", io, 0.5, {t1});

  no::TraceLayout layout;
  layout.tracks[io] = {0, 0};
  layout.process_names[0] = "ssd";
  // gpu is deliberately unmapped: it must land in the synthetic process.

  const std::string json = no::TraceWriter(sim, layout).to_json();
  const Json root = JsonParser(json).parse();
  EXPECT_EQ(validate_trace(root), 3u);  // one X event per task

  // The fallback process exists and is named "sim".
  bool has_sim_process = false;
  for (const auto& ev : root.at("traceEvents").array) {
    if (ev.at("ph").string == "M" &&
        ev.at("name").string == "process_name" &&
        ev.at("args").at("name").string == "sim") {
      has_sim_process = true;
    }
  }
  EXPECT_TRUE(has_sim_process);
}

TEST(TraceWriter, WriteFileReportsTargetPathOnFailure) {
  ni::TempDir dir("trace-unwritable");
  const std::string path = dir.path() + "/missing/sub/trace.json";
  ns::EventSim sim;
  try {
    no::TraceWriter(sim, {}).write_file(path);
    FAIL() << "expected util::Error";
  } catch (const northup::util::Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error must name the target path: " << e.what();
  }
}

TEST(TraceWriter, EmptySimProducesParseableTrace) {
  ns::EventSim sim;
  const Json root = JsonParser(no::TraceWriter(sim, {}).to_json()).parse();
  EXPECT_EQ(validate_trace(root), 0u);
}

TEST(TraceWriter, QuickstartRunDumpsValidChromeTrace) {
  nt::PresetOptions opts;
  opts.root_capacity = 1ULL << 20;
  opts.staging_capacity = 64ULL << 10;
  nc::Runtime rt(nt::apu_two_level(northup::mem::StorageKind::Ssd, opts));
  auto& dm = rt.dm();
  const auto root_node = rt.tree().root();
  const auto dram = rt.tree().find("dram");

  constexpr std::uint64_t kBytes = 32 << 10;
  nd::ScopedBuffer in_root(dm, kBytes, root_node);
  nd::ScopedBuffer out_root(dm, kBytes, root_node);
  std::vector<float> host(kBytes / sizeof(float), 2.0f);
  dm.write_from_host(*in_root, host.data(), kBytes);

  rt.run([&](nc::ExecContext& ctx) {
    const auto child = ctx.child(0);
    constexpr std::uint64_t kChunk = 16 << 10;
    for (std::uint64_t off = 0; off < kBytes; off += kChunk) {
      nd::ScopedBuffer stage(dm, kChunk, child);
      dm.move_data_down(*stage, *in_root, {.size = kChunk, .src_offset = off});
      ctx.northup_spawn(child, [](nc::ExecContext&) {});
      dm.move_data_up(*out_root, *stage, {.size = kChunk, .dst_offset = off});
    }
  });

  ni::TempDir dir("trace-test");
  const std::string path = dir.path() + "/trace.json";
  rt.write_chrome_trace(path);

  const Json root = parse_file(path);
  const std::size_t x_events = validate_trace(root);
  ASSERT_NE(rt.event_sim(), nullptr);
  EXPECT_EQ(x_events, rt.event_sim()->task_count());

  // Timed events stay within the virtual-makespan window (µs scale).
  const double horizon_us = rt.makespan() * 1e6 + 1.0;
  for (const auto& ev : root.at("traceEvents").array) {
    if (ev.at("ph").string != "X") continue;
    EXPECT_LE(ev.at("ts").number + ev.at("dur").number, horizon_us);
  }
}
