// Scheduler tests: Chase-Lev deque semantics (single-threaded laws plus a
// multi-threaded stress), work queues, the pool, and the steal simulator.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "northup/sched/chase_lev.hpp"
#include "northup/sched/pool.hpp"
#include "northup/sched/steal_sim.hpp"
#include "northup/sched/work_queue.hpp"
#include "northup/topo/presets.hpp"

namespace nsc = northup::sched;
namespace nt = northup::topo;

TEST(ChaseLev, LifoForOwner) {
  nsc::ChaseLevDeque<int> dq(8);
  EXPECT_TRUE(dq.push_bottom(1));
  EXPECT_TRUE(dq.push_bottom(2));
  EXPECT_TRUE(dq.push_bottom(3));
  int v = 0;
  EXPECT_TRUE(dq.pop_bottom(v));
  EXPECT_EQ(v, 3);
  EXPECT_TRUE(dq.pop_bottom(v));
  EXPECT_EQ(v, 2);
}

TEST(ChaseLev, FifoForThief) {
  nsc::ChaseLevDeque<int> dq(8);
  dq.push_bottom(1);
  dq.push_bottom(2);
  int v = 0;
  EXPECT_TRUE(dq.steal_top(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(dq.steal_top(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(dq.steal_top(v));
}

TEST(ChaseLev, PopOnEmptyFails) {
  nsc::ChaseLevDeque<int> dq(8);
  int v = 0;
  EXPECT_FALSE(dq.pop_bottom(v));
  dq.push_bottom(7);
  EXPECT_TRUE(dq.pop_bottom(v));
  EXPECT_FALSE(dq.pop_bottom(v));
}

TEST(ChaseLev, FullDequeRejectsPush) {
  nsc::ChaseLevDeque<int> dq(4);
  EXPECT_EQ(dq.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(dq.push_bottom(i));
  EXPECT_FALSE(dq.push_bottom(99));
  int v = 0;
  EXPECT_TRUE(dq.steal_top(v));
  EXPECT_TRUE(dq.push_bottom(99));  // space freed by the steal
}

TEST(ChaseLev, CapacityRoundsUpToPowerOfTwo) {
  nsc::ChaseLevDeque<int> dq(5);
  EXPECT_EQ(dq.capacity(), 8u);
}

TEST(ChaseLev, StressOwnerVsThieves) {
  // One owner pushes/pops; three thieves steal. Every pushed value must be
  // consumed exactly once across all consumers.
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  nsc::ChaseLevDeque<int> dq(1 << 15);
  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      int v;
      while (!done.load(std::memory_order_acquire)) {
        if (dq.steal_top(v)) {
          consumed_sum.fetch_add(v, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
      while (dq.steal_top(v)) {
        consumed_sum.fetch_add(v, std::memory_order_relaxed);
        consumed_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  long long owner_sum = 0;
  int owner_count = 0;
  for (int i = 1; i <= kItems; ++i) {
    while (!dq.push_bottom(i)) {
      int v;
      if (dq.pop_bottom(v)) {
        owner_sum += v;
        ++owner_count;
      }
    }
    if (i % 3 == 0) {
      int v;
      if (dq.pop_bottom(v)) {
        owner_sum += v;
        ++owner_count;
      }
    }
  }
  int v;
  while (dq.pop_bottom(v)) {
    owner_sum += v;
    ++owner_count;
  }
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  const long long expected =
      static_cast<long long>(kItems) * (kItems + 1) / 2;
  EXPECT_EQ(owner_count + consumed_count.load(), kItems);
  EXPECT_EQ(owner_sum + consumed_sum.load(), expected);
}

TEST(WorkQueue, FifoAndOwnerEnd) {
  nsc::WorkQueue q("test");
  int order = 0;
  q.push({1, [] {}});
  q.push({2, [] {}});
  q.push({3, [] {}});
  EXPECT_EQ(q.size(), 3u);
  nsc::QueueTask t;
  EXPECT_TRUE(q.pop(t));
  EXPECT_EQ(t.id, 1u);  // thief end: head
  EXPECT_TRUE(q.pop_back(t));
  EXPECT_EQ(t.id, 3u);  // owner end: tail
  EXPECT_EQ(q.enqueued_total(), 3u);
  (void)order;
}

TEST(NodeQueueSet, SubtreePendingAggregates) {
  const auto tree = nt::asymmetric_fig2();
  nsc::NodeQueueSet qs(tree);
  qs.create_queues(tree.root(), 1);
  const auto n2 = tree.find("n2");
  const auto n5 = tree.find("n5");
  qs.create_queues(n2, 2);
  qs.create_queues(n5, 1);
  qs.queue(n2, 0).push({0, [] {}});
  qs.queue(n2, 1).push({1, [] {}});
  qs.queue(n5, 0).push({2, [] {}});
  // n2's subtree includes n5.
  EXPECT_EQ(qs.subtree_pending(n2), 3u);
  EXPECT_EQ(qs.subtree_pending(tree.root()), 3u);
  EXPECT_EQ(qs.subtree_pending(tree.find("n1")), 0u);
}

TEST(Pool, RunsAllSubmittedTasks) {
  nsc::WorkStealingPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(Pool, NestedSubmissionsComplete) {
  nsc::WorkStealingPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&, i] {
      for (int j = 0; j < 50; ++j) {
        pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(Pool, WaitIdleOnEmptyPoolReturns) {
  nsc::WorkStealingPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(StealSim, BalancedLoadNeedsNoStealing) {
  nsc::StealSim sim;
  const auto a = sim.add_worker({"a", 1.0, true});
  const auto b = sim.add_worker({"b", 1.0, true});
  for (int i = 0; i < 10; ++i) {
    sim.add_task(a, 1.0);
    sim.add_task(b, 1.0);
  }
  const auto r = sim.run(true);
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
  EXPECT_EQ(r.steals, 0u);
}

TEST(StealSim, StealingFixesImbalance) {
  nsc::StealSim sim;
  const auto a = sim.add_worker({"a", 1.0, true});
  sim.add_worker({"b", 1.0, true});
  for (int i = 0; i < 10; ++i) sim.add_task(a, 1.0);

  const auto without = sim.run(false);
  EXPECT_DOUBLE_EQ(without.makespan, 10.0);

  const auto with = sim.run(true);
  EXPECT_DOUBLE_EQ(with.makespan, 5.0);
  EXPECT_EQ(with.steals, 5u);
}

TEST(StealSim, FasterWorkerExecutesMore) {
  nsc::StealSim sim;
  const auto fast = sim.add_worker({"gpu", 4.0, true});
  const auto slow = sim.add_worker({"cpu", 1.0, true});
  for (int i = 0; i < 50; ++i) {
    sim.add_task(fast, 1.0);
    sim.add_task(slow, 1.0);
  }
  const auto r = sim.run(true);
  EXPECT_GT(r.executed[fast], r.executed[slow]);
  // Combined throughput bound: 100 units at 5 units/s.
  EXPECT_NEAR(r.makespan, 20.0, 2.0);
}

TEST(StealSim, RunIsRepeatable) {
  nsc::StealSim sim;
  const auto a = sim.add_worker({"a", 1.0, true});
  sim.add_worker({"b", 2.0, true});
  for (int i = 0; i < 20; ++i) sim.add_task(a, 1.0);
  const auto r1 = sim.run(true);
  const auto r2 = sim.run(true);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.steals, r2.steals);
}

TEST(StealSim, NonStealingWorkerKeepsOnlyItsQueue) {
  nsc::StealSim sim;
  const auto a = sim.add_worker({"a", 1.0, false});
  sim.add_worker({"b", 1.0, false});
  for (int i = 0; i < 10; ++i) sim.add_task(a, 1.0);
  const auto r = sim.run(true);  // stealing on, but workers opted out
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
  EXPECT_EQ(r.executed[a], 10u);
}
