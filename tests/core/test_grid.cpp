// grid_map (generic Listing-3 driver) tests: element-wise maps through
// 2-, 3-, and 4-level trees, edge chunks, capacity-driven chunk counts,
// and a parameterized sweep over dataset shapes.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "northup/core/grid.hpp"
#include "northup/topo/presets.hpp"

namespace nc = northup::core;
namespace nt = northup::topo;
namespace nm = northup::mem;

namespace {

nt::PresetOptions tiny() {
  nt::PresetOptions o;
  o.root_capacity = 16ULL << 20;
  o.staging_capacity = 16ULL << 10;  // forces several chunks
  o.device_capacity = 8ULL << 10;
  return o;
}

/// Leaf kernel: negate every float in the chunk via the leaf processor.
nc::GridLeafFn negate_leaf() {
  return [](nc::ExecContext& ctx, northup::data::Buffer& in,
            northup::data::Buffer& out, std::uint64_t rows,
            std::uint64_t cols) {
    auto& dm = ctx.dm();
    auto* proc = ctx.get_devices().empty()
                     ? ctx.runtime().find_processor(nt::ProcessorType::Gpu)
                     : ctx.get_devices().front();
    float* src = reinterpret_cast<float*>(dm.host_view(in));
    float* dst = reinterpret_cast<float*>(dm.host_view(out));
    const std::uint64_t n = rows * cols;
    std::vector<northup::sim::TaskId> deps;
    if (in.ready != northup::sim::kInvalidTask) deps.push_back(in.ready);
    auto launch = proc->launch(
        "negate", 1,
        [=](northup::device::WorkGroupCtx&) {
          for (std::uint64_t i = 0; i < n; ++i) dst[i] = -src[i];
        },
        {static_cast<double>(n), 8.0 * static_cast<double>(n)}, deps);
    out.ready = launch.task;
  };
}

/// Runs grid_map over a rows x cols float dataset on `tree` and verifies
/// every element was negated exactly once.
void run_and_verify(nt::TopoTree tree, std::uint64_t rows,
                    std::uint64_t cols, std::uint64_t* spawns_out = nullptr) {
  nc::Runtime rt(std::move(tree));
  auto& dm = rt.dm();
  const auto root = rt.tree().root();
  const std::uint64_t bytes = rows * cols * 4;

  std::vector<float> input(rows * cols);
  std::iota(input.begin(), input.end(), 1.0f);
  auto in = dm.alloc(bytes, root);
  auto out = dm.alloc(bytes, root);
  dm.write_from_host(in, input.data(), bytes);

  rt.run([&](nc::ExecContext& ctx) {
    nc::GridJob job{rows, cols, 4, 0.85};
    nc::grid_map(ctx, job, in, out, negate_leaf());
  });

  std::vector<float> result(rows * cols);
  dm.read_to_host(result.data(), out, bytes);
  for (std::size_t i = 0; i < input.size(); ++i) {
    ASSERT_EQ(result[i], -input[i]) << "at " << i;
  }
  if (spawns_out != nullptr) *spawns_out = rt.spawn_count();
  dm.release(in);
  dm.release(out);
}

}  // namespace

TEST(GridMap, TwoLevelTree) {
  run_and_verify(nt::apu_two_level(nm::StorageKind::Ssd, tiny()), 64, 64);
}

TEST(GridMap, ThreeLevelTree) {
  run_and_verify(nt::dgpu_three_level(nm::StorageKind::Ssd, tiny()), 64, 64);
}

TEST(GridMap, FourLevelTree) {
  run_and_verify(nt::deep_four_level(tiny()), 64, 64);
}

TEST(GridMap, NonSquareWithRaggedEdges) {
  // 50 x 37 does not divide evenly by any chunk grid: edge chunks clip.
  run_and_verify(nt::apu_two_level(nm::StorageKind::Ssd, tiny()), 50, 37);
}

TEST(GridMap, SingleElement) {
  run_and_verify(nt::apu_two_level(nm::StorageKind::Ssd, tiny()), 1, 1);
}

TEST(GridMap, TighterCapacityMeansMoreChunks) {
  std::uint64_t loose_spawns = 0, tight_spawns = 0;
  auto loose = tiny();
  loose.staging_capacity = 64ULL << 10;
  run_and_verify(nt::apu_two_level(nm::StorageKind::Ssd, loose), 64, 64,
                 &loose_spawns);
  auto cramped = tiny();
  cramped.staging_capacity = 4ULL << 10;
  run_and_verify(nt::apu_two_level(nm::StorageKind::Ssd, cramped), 64, 64,
                 &tight_spawns);
  EXPECT_GT(tight_spawns, loose_spawns);
}

TEST(GridMap, RejectsEmptyJob) {
  nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, tiny()));
  auto in = rt.dm().alloc(64, rt.tree().root());
  auto out = rt.dm().alloc(64, rt.tree().root());
  rt.run([&](nc::ExecContext& ctx) {
    nc::GridJob job{0, 4, 4, 0.85};
    EXPECT_THROW(nc::grid_map(ctx, job, in, out, negate_leaf()),
                 northup::util::Error);
  });
  rt.dm().release(in);
  rt.dm().release(out);
}

TEST(GridMap, RejectsUndersizedBuffers) {
  nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, tiny()));
  auto in = rt.dm().alloc(64, rt.tree().root());
  auto out = rt.dm().alloc(64, rt.tree().root());
  rt.run([&](nc::ExecContext& ctx) {
    nc::GridJob job{100, 100, 4, 0.85};  // needs 40 KB, buffers hold 64 B
    EXPECT_THROW(nc::grid_map(ctx, job, in, out, negate_leaf()),
                 northup::util::Error);
  });
  rt.dm().release(in);
  rt.dm().release(out);
}

// Parameterized sweep: shapes x topologies.
class GridSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t,
                                                 const char*>> {};

TEST_P(GridSweep, NegatesEverywhere) {
  const auto [rows, cols, topo_name] = GetParam();
  nt::TopoTree tree = std::string(topo_name) == "apu"
                          ? nt::apu_two_level(nm::StorageKind::Ssd, tiny())
                          : std::string(topo_name) == "dgpu"
                                ? nt::dgpu_three_level(nm::StorageKind::Ssd,
                                                       tiny())
                                : nt::deep_four_level(tiny());
  run_and_verify(std::move(tree), rows, cols);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndTopologies, GridSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(8, 33, 100),
                       ::testing::Values<std::uint64_t>(8, 65),
                       ::testing::Values("apu", "dgpu", "deep")),
    [](const auto& info) {
      return std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param)) + "_" +
             std::get<2>(info.param);
    });
