// Core runtime tests: system instantiation from a topology, the paper's
// context API, recursive spawning through work queues, capacity-driven
// planning, and the profiler.
#include <gtest/gtest.h>

#include <vector>

#include "northup/core/chunking.hpp"
#include "northup/core/profiler.hpp"
#include "northup/core/runtime.hpp"
#include "northup/topo/config.hpp"
#include "northup/topo/presets.hpp"

namespace nc = northup::core;
namespace nt = northup::topo;
namespace nm = northup::mem;

TEST(Runtime, BindsStorageForEveryNode) {
  nc::Runtime rt(nt::dgpu_three_level());
  for (nt::NodeId id = 0; id < rt.tree().node_count(); ++id) {
    EXPECT_TRUE(rt.dm().is_bound(id));
    EXPECT_EQ(rt.dm().storage(id).kind(), rt.tree().fetch_node_type(id));
  }
}

TEST(Runtime, CreatesProcessorsFromTopology) {
  nc::Runtime rt(nt::apu_two_level());
  const auto leaf = rt.tree().leaves().front();
  EXPECT_EQ(rt.processors_at(leaf).size(), 2u);
  EXPECT_NE(rt.processor_at(leaf, nt::ProcessorType::Cpu), nullptr);
  EXPECT_NE(rt.processor_at(leaf, nt::ProcessorType::Gpu), nullptr);
  EXPECT_EQ(rt.processor_at(leaf, nt::ProcessorType::Fpga), nullptr);
  EXPECT_NE(rt.find_processor(nt::ProcessorType::Gpu), nullptr);
}

TEST(Runtime, WorksFromParsedConfig) {
  const auto tree = nt::parse_config(R"(
node root kind=ssd cap=16M
node dram parent=root kind=dram cap=1M
proc gpu node=dram type=gpu gflops=100 membw=10G cus=8 localmem=32K
)");
  nc::Runtime rt(tree);
  EXPECT_NE(rt.find_processor(nt::ProcessorType::Gpu), nullptr);
  auto buf = rt.dm().alloc(1024, rt.tree().find("root"));
  EXPECT_TRUE(buf.valid());
  rt.dm().release(buf);
}

TEST(ExecContext, PaperQueryApi) {
  nc::Runtime rt(nt::dgpu_three_level());
  rt.run([&](nc::ExecContext& ctx) {
    EXPECT_EQ(ctx.get_level(), 0);
    EXPECT_EQ(ctx.get_max_treelevel(), 2);
    EXPECT_FALSE(ctx.is_leaf());
    EXPECT_TRUE(nm::is_file_backed(ctx.fetch_node_type()));
    EXPECT_EQ(ctx.get_parent(), nt::kInvalidNode);
    ASSERT_EQ(ctx.get_children_list().size(), 1u);
    EXPECT_EQ(ctx.child(0), ctx.get_children_list()[0]);
    EXPECT_THROW(ctx.child(5), northup::util::Error);
  });
}

TEST(ExecContext, SpawnDescendsLevels) {
  nc::Runtime rt(nt::dgpu_three_level());
  std::vector<int> levels;
  rt.run([&](nc::ExecContext& ctx) {
    levels.push_back(ctx.get_level());
    ctx.northup_spawn(ctx.child(0), [&](nc::ExecContext& c1) {
      levels.push_back(c1.get_level());
      c1.northup_spawn(c1.child(0), [&](nc::ExecContext& c2) {
        levels.push_back(c2.get_level());
        EXPECT_TRUE(c2.is_leaf());
      });
    });
  });
  EXPECT_EQ(levels, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(rt.spawn_count(), 2u);
  EXPECT_GT(rt.bookkeeping_wall_seconds(), 0.0);
}

TEST(ExecContext, SpawnRejectsNonChild) {
  nc::Runtime rt(nt::dgpu_three_level());
  rt.run([&](nc::ExecContext& ctx) {
    const auto grandchild = rt.tree().find("gpu-mem");
    EXPECT_THROW(ctx.northup_spawn(grandchild, [](nc::ExecContext&) {}),
                 northup::util::Error);
  });
}

TEST(ExecContext, SpawnChargesRuntimePhase) {
  nc::Runtime rt(nt::apu_two_level());
  rt.run([&](nc::ExecContext& ctx) {
    ctx.northup_spawn(ctx.child(0), [](nc::ExecContext&) {});
  });
  const auto breakdown = nc::Breakdown::from(*rt.event_sim());
  EXPECT_GT(breakdown.runtime, 0.0);
}

TEST(ExecContext, AvailableBytesTracksAllocations) {
  nc::Runtime rt(nt::apu_two_level());
  rt.run([&](nc::ExecContext& ctx) {
    const auto before = ctx.available_bytes(ctx.child(0));
    auto buf = rt.dm().alloc(4096, ctx.child(0));
    EXPECT_EQ(ctx.available_bytes(ctx.child(0)), before - 4096);
    rt.dm().release(buf);
    EXPECT_EQ(ctx.available_bytes(ctx.child(0)), before);
  });
}

TEST(Runtime, SimDisabledStillExecutesFunctionally) {
  nc::RuntimeOptions opts;
  opts.enable_sim = false;
  nc::Runtime rt(nt::apu_two_level(), opts);
  EXPECT_EQ(rt.event_sim(), nullptr);
  bool ran = false;
  rt.run([&](nc::ExecContext& ctx) {
    ctx.northup_spawn(ctx.child(0), [&](nc::ExecContext&) { ran = true; });
  });
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(rt.makespan(), 0.0);
}

TEST(Runtime, AsymmetricTreeSpawnsIntoBothSubtrees) {
  nc::Runtime rt(nt::asymmetric_fig2());
  std::vector<std::string> visited;
  rt.run([&](nc::ExecContext& ctx) {
    for (const auto child : ctx.get_children_list()) {
      ctx.northup_spawn(child, [&](nc::ExecContext& c) {
        visited.push_back(rt.tree().node(c.get_cur_treenode()).name);
      });
    }
  });
  EXPECT_EQ(visited, (std::vector<std::string>{"n1", "n2"}));
}

// --- Chunk planning. ---

TEST(Chunking, ChunkCountCoversWorkingSet) {
  // 100 KiB into a 16 KiB child with 0.9 safety: budget 14.4 KiB/chunk.
  const auto n = nc::choose_chunk_count(100 << 10, 16 << 10, 1, 0.9);
  EXPECT_EQ(n, 7u);
  // Two simultaneous copies halve the budget.
  const auto n2 = nc::choose_chunk_count(100 << 10, 16 << 10, 2, 0.9);
  EXPECT_GE(n2, 2 * n - 1);
}

TEST(Chunking, GridFitsBudgetAndStaysSquare) {
  const auto grid = nc::choose_grid(1000, 1000, 4, 2, 64 << 10, 0.9);
  const auto chunk_bytes = nc::ceil_div(1000, grid.x) *
                           nc::ceil_div(1000, grid.y) * 4 * 2;
  EXPECT_LE(static_cast<double>(chunk_bytes), 64.0 * 1024 * 0.9);
  // Near-square: dimensions within 2x of each other.
  EXPECT_LE(grid.x, 2 * grid.y + 1);
  EXPECT_LE(grid.y, 2 * grid.x + 1);
}

TEST(Chunking, SingleChunkWhenEverythingFits) {
  const auto grid = nc::choose_grid(100, 100, 4, 1, 1 << 20, 0.9);
  EXPECT_EQ(grid.count(), 1u);
}

TEST(Chunking, ThrowsWhenElementTooBig) {
  EXPECT_THROW(nc::choose_grid(10, 10, 1 << 20, 1, 1024, 0.9),
               northup::util::Error);
}

// --- Profiler. ---

TEST(Breakdown, CollectsPhaseTotalsAndShares) {
  northup::sim::EventSim sim;
  const auto r = sim.add_resource("x");
  sim.add_task("a", "gpu", r, 3.0);
  sim.add_task("b", "io", r, 1.0);
  const auto bd = nc::Breakdown::from(sim);
  EXPECT_DOUBLE_EQ(bd.gpu, 3.0);
  EXPECT_DOUBLE_EQ(bd.io, 1.0);
  EXPECT_DOUBLE_EQ(bd.component_total(), 4.0);
  EXPECT_DOUBLE_EQ(bd.makespan, 4.0);
  EXPECT_DOUBLE_EQ(bd.shares().at("gpu"), 0.75);
  EXPECT_DOUBLE_EQ(bd.runtime_overhead_fraction(), 0.0);
  EXPECT_FALSE(bd.to_string().empty());
}
