// ScheduleReport tests over hand-built and application-recorded traces.
#include <gtest/gtest.h>

#include "northup/algos/hotspot.hpp"
#include "northup/core/schedule_report.hpp"
#include "northup/topo/presets.hpp"

namespace nc = northup::core;
namespace ns = northup::sim;
namespace nt = northup::topo;
namespace na = northup::algos;

TEST(ScheduleReport, HandBuiltPipeline) {
  ns::EventSim sim;
  const auto io = sim.add_resource("io");
  const auto gpu = sim.add_resource("gpu");
  ns::TaskId prev = ns::kInvalidTask;
  for (int i = 0; i < 4; ++i) {
    const auto read = sim.add_task("r", "io", io, 1.0);
    std::vector<ns::TaskId> deps{read};
    if (prev != ns::kInvalidTask) deps.push_back(prev);
    prev = sim.add_task("k", "gpu", gpu, 2.0, deps);
  }
  const auto report = nc::ScheduleReport::from(sim);
  EXPECT_DOUBLE_EQ(report.makespan, 9.0);        // 1 + 4*2
  EXPECT_DOUBLE_EQ(report.serialized_total, 12.0);
  EXPECT_NEAR(report.parallelism, 12.0 / 9.0, 1e-12);
  // Busiest engine first.
  ASSERT_EQ(report.resources.size(), 2u);
  EXPECT_EQ(report.resources[0].name, "gpu");
  EXPECT_NEAR(report.resources[0].utilization, 8.0 / 9.0, 1e-12);
  // Critical path: first read then the kernel chain.
  EXPECT_EQ(report.critical_path_length, 5u);
  EXPECT_DOUBLE_EQ(report.critical_path_by_phase.at("io"), 1.0);
  EXPECT_DOUBLE_EQ(report.critical_path_by_phase.at("gpu"), 8.0);
  EXPECT_FALSE(report.to_string().empty());
}

TEST(ScheduleReport, EmptyTrace) {
  ns::EventSim sim;
  const auto report = nc::ScheduleReport::from(sim);
  EXPECT_DOUBLE_EQ(report.makespan, 0.0);
  EXPECT_EQ(report.critical_path_length, 0u);
}

TEST(ScheduleReport, ApplicationTraceIsConsistent) {
  nt::PresetOptions opts;
  opts.staging_capacity = 96ULL << 10;
  nc::Runtime rt(nt::apu_two_level(northup::mem::StorageKind::Ssd, opts));
  na::HotspotConfig cfg;
  cfg.n = 128;
  cfg.verify = false;
  na::hotspot_northup(rt, cfg);

  const auto report = nc::ScheduleReport::from(*rt.event_sim());
  EXPECT_GT(report.makespan, 0.0);
  EXPECT_GE(report.serialized_total, report.makespan);
  EXPECT_GE(report.parallelism, 1.0);
  double busiest = 0.0;
  for (const auto& r : report.resources) {
    EXPECT_GE(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0 + 1e-9);
    busiest = std::max(busiest, r.busy_seconds);
  }
  EXPECT_EQ(report.resources.front().busy_seconds, busiest);
  // The critical-path phase times sum to at most the makespan.
  double path_total = 0.0;
  for (const auto& [phase, t] : report.critical_path_by_phase) path_total += t;
  EXPECT_LE(path_total, report.makespan + 1e-9);
}
