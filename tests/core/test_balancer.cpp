// SubtreeBalancer and AdaptiveMapper tests (§III-C multi-branch spawning,
// §III-E profile-guided processor mapping) on the Fig 2 asymmetric tree.
#include <gtest/gtest.h>

#include "northup/core/adaptive.hpp"
#include "northup/core/balancer.hpp"
#include "northup/topo/presets.hpp"

namespace nc = northup::core;
namespace nt = northup::topo;

TEST(SubtreeBalancer, DistributesChunksAcrossBranches) {
  nc::Runtime rt(nt::asymmetric_fig2());
  nc::SubtreeBalancer balancer(rt);
  const auto n1 = rt.tree().find("n1");
  const auto n2 = rt.tree().find("n2");

  std::map<nt::NodeId, int> executed;
  rt.run([&](nc::ExecContext& ctx) {
    balancer.balanced_spawn(ctx, 10, [&](nc::ExecContext& c, std::uint64_t) {
      ++executed[c.get_cur_treenode()];
    });
  });
  // Both branches got work, roughly evenly (synchronous drain means the
  // dispatch-history tiebreak alternates them).
  EXPECT_EQ(executed[n1], 5);
  EXPECT_EQ(executed[n2], 5);
  EXPECT_EQ(balancer.dispatch_counts().at(n1), 5u);
  EXPECT_EQ(balancer.dispatch_counts().at(n2), 5u);
}

TEST(SubtreeBalancer, PrefersIdleSubtree) {
  nc::Runtime rt(nt::asymmetric_fig2());
  nc::SubtreeBalancer balancer(rt);
  const auto root = rt.tree().root();
  const auto n1 = rt.tree().find("n1");
  const auto n2 = rt.tree().find("n2");

  // Pre-load n1's queue so it looks busy.
  rt.queues().queue(n1, 0).push({0, [] {}});
  rt.queues().queue(n1, 0).push({1, [] {}});
  EXPECT_EQ(balancer.pick_child(root), n2);

  // Pending work deeper inside n2's subtree counts against n2 as well.
  const auto n5 = rt.tree().find("n5");
  rt.queues().create_queues(n5, 1);
  for (int i = 0; i < 5; ++i) rt.queues().queue(n5, 0).push({2, [] {}});
  EXPECT_EQ(balancer.pick_child(root), n1);
}

TEST(SubtreeBalancer, PickOnLeafThrows) {
  nc::Runtime rt(nt::asymmetric_fig2());
  nc::SubtreeBalancer balancer(rt);
  EXPECT_THROW(balancer.pick_child(rt.tree().find("n1")),
               northup::util::Error);
}

TEST(SubtreeBalancer, WeightedSplitFollowsSpeedRatio) {
  nc::Runtime rt(nt::asymmetric_fig2());
  nc::SubtreeBalancer balancer(rt);
  const auto n1 = rt.tree().find("n1");
  const auto n2 = rt.tree().find("n2");

  std::map<nt::NodeId, int> executed;
  rt.run([&](nc::ExecContext& ctx) {
    // Branch speeds 1 : 4 -> chunk counts should land near 20 : 80.
    std::map<nt::NodeId, double> speeds{{n1, 1.0}, {n2, 4.0}};
    balancer.balanced_spawn_weighted(
        ctx, 100, 1.0, speeds, [&](nc::ExecContext& c, std::uint64_t) {
          ++executed[c.get_cur_treenode()];
        });
  });
  EXPECT_EQ(executed[n1] + executed[n2], 100);
  EXPECT_NEAR(executed[n2], 80, 1);
}

TEST(SubtreeBalancer, WeightedRejectsMissingSpeed) {
  nc::Runtime rt(nt::asymmetric_fig2());
  nc::SubtreeBalancer balancer(rt);
  rt.run([&](nc::ExecContext& ctx) {
    std::map<nt::NodeId, double> speeds{{rt.tree().find("n1"), 1.0}};
    EXPECT_THROW(balancer.balanced_spawn_weighted(
                     ctx, 4, 1.0, speeds,
                     [](nc::ExecContext&, std::uint64_t) {}),
                 northup::util::Error);
  });
}

TEST(SubtreeSpeed, FindsProcessorDownTheBranch) {
  nc::Runtime rt(nt::asymmetric_fig2());
  const northup::device::KernelCost cost{1e9, 1e6};
  // n1 is a CPU leaf; n2's first-child path reaches the discrete GPU.
  const double cpu_speed = nc::subtree_speed(rt, rt.tree().find("n1"), cost);
  const double gpu_speed = nc::subtree_speed(rt, rt.tree().find("n2"), cost);
  EXPECT_GT(cpu_speed, 0.0);
  EXPECT_GT(gpu_speed, 10.0 * cpu_speed);  // compute-bound: dGPU >> CPU
}

TEST(AdaptiveMapper, ProbesUnknownProcessorsFirst) {
  nc::Runtime rt(nt::asymmetric_fig2());
  auto* cpu = rt.find_processor(nt::ProcessorType::Cpu);
  auto* gpu = rt.find_processor(nt::ProcessorType::Gpu);
  std::vector<northup::device::Processor*> candidates{cpu, gpu};

  nc::AdaptiveMapper mapper;
  auto* first = mapper.pick(candidates);
  mapper.observe(first, 100.0, 1.0);
  auto* second = mapper.pick(candidates);
  EXPECT_NE(first, second);  // the unprofiled one gets probed
}

TEST(AdaptiveMapper, PrefersFasterProcessorAfterProfiling) {
  nc::Runtime rt(nt::asymmetric_fig2());
  auto* cpu = rt.find_processor(nt::ProcessorType::Cpu);
  auto* gpu = rt.find_processor(nt::ProcessorType::Gpu);
  std::vector<northup::device::Processor*> candidates{cpu, gpu};

  nc::AdaptiveMapper mapper;
  mapper.observe(cpu, 100.0, 1.0);   // 100 units/s
  mapper.observe(gpu, 100.0, 0.1);   // 1000 units/s
  EXPECT_EQ(mapper.pick(candidates), gpu);
  EXPECT_GT(mapper.throughput(gpu), mapper.throughput(cpu));
  EXPECT_EQ(mapper.observations(gpu), 1u);
}

TEST(AdaptiveMapper, AdaptsWhenPerformanceShifts) {
  nc::Runtime rt(nt::asymmetric_fig2());
  auto* cpu = rt.find_processor(nt::ProcessorType::Cpu);
  auto* gpu = rt.find_processor(nt::ProcessorType::Gpu);
  std::vector<northup::device::Processor*> candidates{cpu, gpu};

  nc::AdaptiveMapper mapper(0.5);
  mapper.observe(gpu, 100.0, 0.1);
  mapper.observe(cpu, 100.0, 1.0);
  ASSERT_EQ(mapper.pick(candidates), gpu);
  // The GPU degrades (e.g., contended); repeated slow samples flip the
  // choice.
  for (int i = 0; i < 8; ++i) mapper.observe(gpu, 100.0, 10.0);
  EXPECT_EQ(mapper.pick(candidates), cpu);
}

TEST(AdaptiveMapper, DrivenByRealLaunchResults) {
  // End-to-end: feed actual LaunchResults from the simulated processors;
  // the mapper should discover that the GPU wins on a big parallel chunk.
  nc::Runtime rt(nt::apu_two_level());
  const auto leaf = rt.tree().leaves().front();
  auto* cpu = rt.processor_at(leaf, nt::ProcessorType::Cpu);
  auto* gpu = rt.processor_at(leaf, nt::ProcessorType::Gpu);

  nc::AdaptiveMapper mapper;
  const northup::device::KernelCost cost{1e9, 1e8};  // compute-heavy chunk
  const double work = 1e9;
  for (auto* proc : {cpu, gpu}) {
    const auto result = proc->launch_costed("probe", 64, cost);
    mapper.observe(proc, work, result.sim_seconds);
  }
  EXPECT_EQ(mapper.pick({cpu, gpu}), gpu);
}

TEST(AdaptiveMapper, RejectsBadInputs) {
  EXPECT_THROW(nc::AdaptiveMapper(0.0), northup::util::Error);
  nc::AdaptiveMapper mapper;
  EXPECT_THROW(mapper.pick({}), northup::util::Error);
  EXPECT_THROW(mapper.observe(nullptr, 1.0, 1.0), northup::util::Error);
}
