// MmapFile tests: mapping lifecycle, persistence through the mapping,
// resize/remap, sync, best-effort advice, and touch-ahead prefetch.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "northup/io/mmap_file.hpp"
#include "northup/io/posix_file.hpp"

namespace ni = northup::io;

TEST(MmapFile, MapsAndPersistsThroughTheMapping) {
  ni::TempDir dir("mmap");
  const std::string path = dir.file("a.bin");
  {
    ni::MmapFile m(path, 4096);
    ASSERT_TRUE(m.is_mapped());
    EXPECT_EQ(m.size(), 4096u);
    std::memcpy(m.data(), "northup", 7);
    m.sync();
  }
  // The mapping *is* the file: bytes written through it survive close.
  ni::PosixFile f(path, {.create = false});
  char got[8] = {};
  f.pread_exact(got, 7, 0);
  EXPECT_STREQ(got, "northup");
}

TEST(MmapFile, SeesWritesMadeThroughTheFile) {
  ni::TempDir dir("mmap");
  const std::string path = dir.file("b.bin");
  ni::MmapFile m(path, 4096);
  m.file().pwrite_exact("xyz", 3, 100);
  EXPECT_EQ(std::memcmp(m.data() + 100, "xyz", 3), 0);
}

TEST(MmapFile, ResizeRemapsAndKeepsPrefix) {
  ni::TempDir dir("mmap");
  ni::MmapFile m(dir.file("c.bin"), 4096);
  std::memset(m.data(), 0x5a, 4096);
  m.resize(2 * 4096);
  EXPECT_EQ(m.size(), 2 * 4096u);
  EXPECT_EQ(static_cast<unsigned char>(m.data()[4095]), 0x5au);
  std::memset(m.data() + 4096, 0x33, 4096);
  m.resize(4096);  // shrink
  EXPECT_EQ(m.size(), 4096u);
  EXPECT_EQ(static_cast<unsigned char>(m.data()[0]), 0x5au);
}

TEST(MmapFile, AdviceIsBestEffort) {
  ni::TempDir dir("mmap");
  ni::MmapFile m(dir.file("d.bin"), 4096);
  // Whatever the platform supports, advise must not throw.
  m.advise(ni::Advice::kSequential);
  m.advise(ni::Advice::kRandom, 0, 4096);
  m.advise(ni::Advice::kWillNeed);
  m.advise(ni::Advice::kNormal);
}

TEST(MmapFile, PrefetchWalksTheRange) {
  ni::TempDir dir("mmap");
  const std::uint64_t size = 8 * ni::MmapFile::page_size();
  ni::MmapFile m(dir.file("e.bin"), size);
  EXPECT_EQ(m.prefetch(), size);
  // Sub-range: clamped to the mapping, page-aligned walk.
  EXPECT_GT(m.prefetch(ni::MmapFile::page_size(), 10), 0u);
}

TEST(MmapFile, SyncSubRangeAndAsync) {
  ni::TempDir dir("mmap");
  ni::MmapFile m(dir.file("f.bin"), 4 * ni::MmapFile::page_size());
  std::memset(m.data(), 1, m.size());
  m.sync(ni::MmapFile::page_size(), ni::MmapFile::page_size(), true);
  m.sync(0, 0, /*wait=*/false);
}

TEST(MmapFile, MoveTransfersMapping) {
  ni::TempDir dir("mmap");
  ni::MmapFile a(dir.file("g.bin"), 4096);
  std::byte* const data = a.data();
  ni::MmapFile b(std::move(a));
  EXPECT_EQ(b.data(), data);
  EXPECT_FALSE(a.is_mapped());  // NOLINT(bugprone-use-after-move)
  std::memset(b.data(), 2, 4096);
}

TEST(MmapFile, UnmapAndCloseAreIdempotent) {
  ni::TempDir dir("mmap");
  ni::MmapFile m(dir.file("h.bin"), 4096);
  m.unmap();
  m.unmap();
  EXPECT_FALSE(m.is_mapped());
  EXPECT_TRUE(m.file().is_open());
  m.close();
  m.close();
  EXPECT_FALSE(m.file().is_open());
}

TEST(MmapFile, AdoptsOpenFile) {
  ni::TempDir dir("mmap");
  ni::PosixFile f(dir.file("i.bin"));
  f.truncate(4096);
  std::vector<char> payload(4096);
  std::iota(payload.begin(), payload.end(), 0);
  f.pwrite_exact(payload.data(), payload.size(), 0);
  ni::MmapFile m(std::move(f), 4096);
  EXPECT_EQ(std::memcmp(m.data(), payload.data(), payload.size()), 0);
}

TEST(MmapFile, RejectsZeroSize) {
  ni::TempDir dir("mmap");
  EXPECT_THROW(ni::MmapFile(dir.file("j.bin"), 0), northup::util::Error);
}
