// End-to-end mmapio integration: RuntimeOptions::mmap_storage wires
// MmapStorage under file-backed nodes, the data plane takes zero-copy
// paths, host_view works on file-resident buffers, the async pool serves
// FileStorage when io_threads > 0, and every transport produces
// bit-identical bytes.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "northup/cache/buffer_pool.hpp"
#include "northup/cache/cache_manager.hpp"
#include "northup/core/runtime.hpp"
#include "northup/topo/presets.hpp"
#include "northup/util/crc32.hpp"

namespace nc = northup::core;
namespace nt = northup::topo;
namespace nd = northup::data;
namespace ncache = northup::cache;
namespace nu = northup::util;

namespace {

std::vector<std::byte> pattern(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(i * 131 + 17);
  }
  return v;
}

/// Pushes `payload` root -> leaf-adjacent DRAM and back, returning a hash
/// of the bytes read back. Exercises alloc, write_from_host, both move
/// directions, and read_to_host on whatever transports `rt` is built on.
std::uint64_t round_trip_hash(nc::Runtime& rt,
                              const std::vector<std::byte>& payload) {
  auto& dm = rt.dm();
  const nt::NodeId root = rt.tree().root();
  const nt::NodeId dram = rt.tree().get_children_list(root).front();
  auto on_root = dm.alloc(payload.size(), root);
  auto on_dram = dm.alloc(payload.size(), dram);
  dm.write_from_host(on_root, payload.data(), payload.size());
  dm.move_data_down(on_dram, on_root, {.size = payload.size()});
  dm.move_data_up(on_root, on_dram, {.size = payload.size()});
  std::vector<std::byte> got(payload.size());
  dm.read_to_host(got.data(), on_root, got.size());
  dm.release(on_root);
  dm.release(on_dram);
  return nu::crc32(got.data(), got.size());
}

}  // namespace

TEST(MmapRuntime, BindsMmapStorageUnderFileNodes) {
  nc::RuntimeOptions opts;
  opts.mmap_storage = true;
  nc::Runtime rt(nt::dgpu_three_level(), opts);
  const nt::NodeId root = rt.tree().root();
  ASSERT_TRUE(northup::mem::is_file_backed(rt.dm().storage(root).kind()));
  auto buf = rt.dm().alloc(4096, root);
  // The tentpole property: a file-resident buffer has a host mapping.
  EXPECT_NE(rt.dm().try_host_view(buf), nullptr);
  rt.dm().release(buf);
}

TEST(MmapRuntime, LegacyFileStorageHasNoHostView) {
  nc::Runtime rt(nt::dgpu_three_level());
  auto buf = rt.dm().alloc(4096, rt.tree().root());
  EXPECT_EQ(rt.dm().try_host_view(buf), nullptr);
  EXPECT_THROW(rt.dm().host_view(buf), northup::util::Error);
  rt.dm().release(buf);
}

TEST(MmapRuntime, HostViewAliasesBufferBytes) {
  nc::RuntimeOptions opts;
  opts.mmap_storage = true;
  nc::Runtime rt(nt::dgpu_three_level(), opts);
  auto buf = rt.dm().alloc(4096, rt.tree().root());
  const auto payload = pattern(4096);
  rt.dm().write_from_host(buf, payload.data(), payload.size());
  std::byte* const view = rt.dm().host_view(buf);
  EXPECT_EQ(std::memcmp(view, payload.data(), payload.size()), 0);
  // Mutations through the view are the buffer's bytes — no copy between.
  view[0] = std::byte{0xee};
  std::byte got{};
  rt.dm().read_to_host(&got, buf, 1);
  EXPECT_EQ(got, std::byte{0xee});
  rt.dm().release(buf);
}

TEST(MmapRuntime, MovesTakeZeroCopyPathAndStayCosted) {
  nc::RuntimeOptions opts;
  opts.mmap_storage = true;
  nc::Runtime rt(nt::dgpu_three_level(), opts);
  const auto payload = pattern(1 << 16);
  round_trip_hash(rt, payload);
  // Zero-copy dispatch engaged...
  EXPECT_GT(rt.metrics().counter("dm.zero_copy_moves").value(), 0u);
  // ...while the storage tier still charged every byte (§V-D costing).
  const auto stats = rt.dm().storage(rt.tree().root()).stats();
  EXPECT_GE(stats.bytes_written, payload.size());
  EXPECT_GE(stats.bytes_read, payload.size());
}

TEST(MmapRuntime, AllTransportsProduceIdenticalBytes) {
  const auto payload = pattern((1 << 18) + 333);

  nc::Runtime legacy(nt::dgpu_three_level());
  const std::uint64_t h_legacy = round_trip_hash(legacy, payload);

  nc::RuntimeOptions async_opts;
  async_opts.io_threads = 2;
  nc::Runtime async_rt(nt::dgpu_three_level(), async_opts);
  ASSERT_NE(async_rt.io_pool(), nullptr);
  const std::uint64_t h_async = round_trip_hash(async_rt, payload);

  nc::RuntimeOptions mmap_opts;
  mmap_opts.mmap_storage = true;
  nc::Runtime mmap_rt(nt::dgpu_three_level(), mmap_opts);
  const std::uint64_t h_mmap = round_trip_hash(mmap_rt, payload);

  EXPECT_EQ(h_legacy, h_async);
  EXPECT_EQ(h_legacy, h_mmap);
}

TEST(MmapRuntime, AsyncPoolServesFileStorageTraffic) {
  nc::RuntimeOptions opts;
  opts.io_threads = 2;
  nc::Runtime rt(nt::dgpu_three_level(), opts);
  rt.io_pool()->attach_metrics(rt.metrics());
  const auto payload = pattern(1 << 18);  // above the 64 KiB routing floor
  round_trip_hash(rt, payload);
  EXPECT_GT(rt.metrics().counter("io.async.requests").value(), 0u);
  EXPECT_GE(rt.metrics().counter("io.async.bytes_written").value(),
            payload.size());
}

TEST(MmapRuntime, MmapModeSkipsAsyncPool) {
  nc::RuntimeOptions opts;
  opts.mmap_storage = true;
  opts.io_threads = 4;
  nc::Runtime rt(nt::dgpu_three_level(), opts);
  EXPECT_EQ(rt.io_pool(), nullptr);  // no syscalls to stripe
}

TEST(MmapRuntime, ScopedViewPinsMappedBytes) {
  nc::RuntimeOptions opts;
  opts.mmap_storage = true;
  nc::Runtime rt(nt::dgpu_three_level(), opts);
  ASSERT_NE(rt.cache_manager(), nullptr);
  const nt::NodeId root = rt.tree().root();
  ncache::BufferPool& pool = *rt.cache_manager()->pool(root);
  auto buf = rt.dm().alloc(4096, root);
  {
    ncache::ScopedView view(pool, buf);
    ASSERT_TRUE(view.valid());
    EXPECT_EQ(pool.view_bytes(), 4096u);
    EXPECT_EQ(pool.pinned_bytes(), 4096u);
    std::memset(view.data(), 9, 4096);
  }
  EXPECT_EQ(pool.view_bytes(), 0u);
  EXPECT_EQ(pool.pinned_bytes(), 0u);
  rt.dm().release(buf);
}

TEST(MmapRuntime, PacedMmapChargesVirtualTime) {
  // note_access must pace/cost like read()/write(): with the event sim
  // attached, a move between file and DRAM advances modeled time.
  nc::RuntimeOptions opts;
  opts.mmap_storage = true;
  nc::Runtime rt(nt::dgpu_three_level(), opts);
  auto* es = rt.event_sim();
  ASSERT_NE(es, nullptr);
  const auto payload = pattern(1 << 16);
  round_trip_hash(rt, payload);
  EXPECT_GT(es->makespan(), 0.0);
}
