// AsyncIoPool tests: future-based submissions, striped parallel
// transfers, inline (zero-worker) mode, EOF propagation, the io_uring
// runtime probe, and metrics.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "northup/io/async_pool.hpp"
#include "northup/io/posix_file.hpp"
#include "northup/obs/metrics.hpp"

namespace ni = northup::io;
namespace nobs = northup::obs;

namespace {

std::vector<char> pattern(std::size_t n) {
  std::vector<char> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<char>(i * 31 + 7);
  return v;
}

}  // namespace

TEST(AsyncIoPool, SubmitReadWriteFutures) {
  ni::TempDir dir("aio");
  ni::PosixFile f(dir.file("a.bin"));
  ni::AsyncIoPool pool;
  const auto payload = pattern(1 << 12);
  auto wf = pool.submit_write(f, payload.data(), payload.size(), 64);
  wf.get();
  EXPECT_TRUE(wf.ready());
  std::vector<char> got(payload.size());
  auto rf = pool.submit_read(f, got.data(), got.size(), 64);
  rf.get();
  EXPECT_EQ(got, payload);
}

TEST(AsyncIoPool, ParallelRoundTripStriped) {
  ni::TempDir dir("aio");
  ni::PosixFile f(dir.file("b.bin"));
  ni::AsyncIoPool::Options opts;
  opts.threads = 3;
  opts.stripe_bytes = 4096;  // force many stripes
  ni::AsyncIoPool pool(opts);
  const auto payload = pattern(100 * 1024 + 123);  // not stripe-aligned
  pool.pwrite_parallel(f, payload.data(), payload.size(), 512);
  std::vector<char> got(payload.size());
  pool.pread_parallel(f, got.data(), got.size(), 512);
  EXPECT_EQ(got, payload);
}

TEST(AsyncIoPool, InlineModeWithZeroWorkers) {
  ni::TempDir dir("aio");
  ni::PosixFile f(dir.file("c.bin"));
  ni::AsyncIoPool::Options opts;
  opts.threads = 0;
  opts.try_io_uring = false;
  ni::AsyncIoPool pool(opts);
  EXPECT_EQ(pool.threads(), 0u);
  EXPECT_FALSE(pool.using_io_uring());
  const auto payload = pattern(3 << 20);
  pool.pwrite_parallel(f, payload.data(), payload.size(), 0);
  std::vector<char> got(payload.size());
  pool.pread_parallel(f, got.data(), got.size(), 0);
  EXPECT_EQ(got, payload);
}

TEST(AsyncIoPool, UringBackendRoundTripWhenAvailable) {
  if (!ni::AsyncIoPool::io_uring_supported()) {
    GTEST_SKIP() << "io_uring unavailable (kernel or seccomp); worker "
                    "fallback is covered by the other tests";
  }
  ni::TempDir dir("aio");
  ni::PosixFile f(dir.file("d.bin"));
  ni::AsyncIoPool::Options opts;
  opts.threads = 2;
  opts.stripe_bytes = 1 << 16;
  opts.uring_entries = 4;  // force multiple submission rounds
  ni::AsyncIoPool pool(opts);
  ASSERT_TRUE(pool.using_io_uring());
  const auto payload = pattern(2 * 1024 * 1024 + 77);
  pool.pwrite_parallel(f, payload.data(), payload.size(), 128);
  std::vector<char> got(payload.size());
  pool.pread_parallel(f, got.data(), got.size(), 128);
  EXPECT_EQ(got, payload);
}

TEST(AsyncIoPool, ReadPastEofFails) {
  ni::TempDir dir("aio");
  ni::PosixFile f(dir.file("e.bin"));
  f.truncate(100);
  ni::AsyncIoPool pool;
  std::vector<char> got(4096);
  auto rf = pool.submit_read(f, got.data(), got.size(), 0);
  EXPECT_THROW(rf.get(), northup::util::IoError);
  EXPECT_THROW(pool.pread_parallel(f, got.data(), got.size(), 0),
               northup::util::IoError);
}

TEST(AsyncIoPool, ZeroByteTransfersAreNoOps) {
  ni::TempDir dir("aio");
  ni::PosixFile f(dir.file("f.bin"));
  ni::AsyncIoPool pool;
  pool.pwrite_parallel(f, nullptr, 0, 0);
  pool.pread_parallel(f, nullptr, 0, 0);
}

TEST(AsyncIoPool, MetricsCountTraffic) {
  ni::TempDir dir("aio");
  ni::PosixFile f(dir.file("g.bin"));
  nobs::MetricsRegistry reg;
  ni::AsyncIoPool::Options opts;
  opts.stripe_bytes = 1 << 12;
  ni::AsyncIoPool pool(opts);
  pool.attach_metrics(reg);
  const auto payload = pattern(64 * 1024);
  pool.pwrite_parallel(f, payload.data(), payload.size(), 0);
  std::vector<char> got(payload.size());
  pool.pread_parallel(f, got.data(), got.size(), 0);
  EXPECT_EQ(reg.counter("io.async.bytes_written").value(), payload.size());
  EXPECT_EQ(reg.counter("io.async.bytes_read").value(), payload.size());
  EXPECT_GE(reg.counter("io.async.requests").value(), 2u);
}
