// MmapStorage tests: mapped allocations, staged read/write equivalence,
// note_access accounting, advice/prefetch/sync, release cleanup, and the
// io.mmap.* metric set.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "northup/io/posix_file.hpp"
#include "northup/memsim/mmap_storage.hpp"
#include "northup/obs/metrics.hpp"
#include "northup/sim/models.hpp"

namespace nm = northup::mem;
namespace ni = northup::io;
namespace nobs = northup::obs;
namespace nsim = northup::sim;
namespace fs = std::filesystem;

namespace {

std::unique_ptr<nm::MmapStorage> make_storage(
    const ni::TempDir& dir, nm::MmapStorage::Options options = {}) {
  return std::make_unique<nm::MmapStorage>(
      "ssd", nm::StorageKind::Ssd, 1 << 20, nsim::ModelPresets::ssd(),
      dir.path(), options);
}

}  // namespace

TEST(MmapStorage, RejectsByteAddressableKinds) {
  ni::TempDir dir("mmapstore");
  EXPECT_THROW(nm::MmapStorage("x", nm::StorageKind::Dram, 1024,
                               nsim::ModelPresets::ssd(), dir.path()),
               northup::util::Error);
}

TEST(MmapStorage, MappedAllocationRoundTrips) {
  ni::TempDir dir("mmapstore");
  auto st = make_storage(dir);
  auto alloc = st->alloc(4096);
  std::byte* const view = st->mapped(alloc);
  ASSERT_NE(view, nullptr);

  // write() must land in the mapping; mapping writes must be read()able.
  std::vector<char> payload(4096, 'q');
  st->write(alloc, 0, payload.data(), payload.size());
  EXPECT_EQ(std::memcmp(view, payload.data(), payload.size()), 0);
  view[10] = std::byte{0x7f};
  char got = 0;
  st->read(&got, alloc, 10, 1);
  EXPECT_EQ(got, 0x7f);
  st->release(alloc);
}

TEST(MmapStorage, ReleaseRemovesBackingFile) {
  ni::TempDir dir("mmapstore");
  auto st = make_storage(dir);
  auto alloc = st->alloc(4096);
  ASSERT_EQ(std::distance(fs::directory_iterator(dir.path()),
                          fs::directory_iterator()),
            1);
  st->release(alloc);
  EXPECT_EQ(std::distance(fs::directory_iterator(dir.path()),
                          fs::directory_iterator()),
            0);
}

TEST(MmapStorage, NoteAccessMirrorsReadWriteAccounting) {
  ni::TempDir dir("mmapstore");
  auto st = make_storage(dir);
  auto alloc = st->alloc(4096);
  st->note_access(/*is_write=*/true, 1000);
  st->note_access(/*is_write=*/false, 500);
  const auto stats = st->stats();
  EXPECT_EQ(stats.bytes_written, 1000u);
  EXPECT_EQ(stats.bytes_read, 500u);
  EXPECT_EQ(stats.num_writes, 1u);
  EXPECT_EQ(stats.num_reads, 1u);
  st->release(alloc);
}

TEST(MmapStorage, AdvisePrefetchSync) {
  ni::TempDir dir("mmapstore");
  nm::MmapStorage::Options opts;
  opts.prefetch_on_alloc = true;
  auto st = make_storage(dir, opts);
  auto alloc = st->alloc(8 * 4096);
  st->advise(alloc, ni::Advice::kSequential);
  EXPECT_EQ(st->prefetch(alloc), alloc.size);
  std::memset(st->mapped(alloc), 3, alloc.size);
  st->sync(alloc, /*wait=*/true);
  st->sync(alloc, /*wait=*/false);
  st->release(alloc);
}

TEST(MmapStorage, MetricsTrackMappingLifecycle) {
  ni::TempDir dir("mmapstore");
  nobs::MetricsRegistry reg;
  auto st = make_storage(dir);
  st->attach_metrics(reg);
  auto a = st->alloc(4096);
  auto b = st->alloc(8192);
  EXPECT_EQ(reg.counter("io.mmap.maps").value(), 2u);
  EXPECT_EQ(reg.gauge("io.mmap.mapped_bytes").value(), 4096.0 + 8192.0);
  st->prefetch(a);
  EXPECT_EQ(reg.counter("io.mmap.prefetches").value(), 1u);
  EXPECT_EQ(reg.counter("io.mmap.prefetched_bytes").value(), 4096u);
  st->advise(a, ni::Advice::kRandom);
  EXPECT_EQ(reg.counter("io.mmap.advices").value(), 1u);
  st->sync(a);
  EXPECT_EQ(reg.counter("io.mmap.syncs").value(), 1u);
  st->release(a);
  st->release(b);
  EXPECT_EQ(reg.counter("io.mmap.unmaps").value(), 2u);
  EXPECT_EQ(reg.gauge("io.mmap.mapped_bytes").value(), 0.0);
}

TEST(MmapStorage, PersistsDataAcrossAllocations) {
  // Same contract FileStorage honors: content survives while allocated,
  // and a fresh allocation never leaks a previous allocation's bytes
  // beyond what a fresh file would.
  ni::TempDir dir("mmapstore");
  auto st = make_storage(dir);
  auto a = st->alloc(4096);
  std::vector<char> payload(4096, 'z');
  st->write(a, 0, payload.data(), payload.size());
  auto b = st->alloc(4096);
  std::vector<char> got(4096);
  st->read(got.data(), a, 0, got.size());
  EXPECT_EQ(got, payload);
  st->release(a);
  st->release(b);
}
