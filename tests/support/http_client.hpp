// Minimal blocking HTTP/1.1 loopback client for the http test suites.
// Deliberately independent of northup::http so the server is tested
// against a second implementation of the protocol, not its own code.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>

namespace northup::testhttp {

struct Response {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  std::string body;
};

/// One blocking connection to 127.0.0.1:`port`. Supports several
/// sequential requests on the same socket (keep-alive) and raw reads
/// for SSE streams.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("connect() failed");
    }
  }

  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  /// Sends raw bytes verbatim (malformed-request tests).
  void send_raw(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, 0);
      if (n <= 0) throw std::runtime_error("send() failed");
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Sends one well-formed request and reads the framed response.
  Response request(const std::string& method, const std::string& target,
                   const std::string& body = "",
                   const std::string& extra_headers = "") {
    std::string req = method + " " + target + " HTTP/1.1\r\n" +
                      "Host: 127.0.0.1\r\n" + extra_headers;
    if (!body.empty() || method == "POST") {
      req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    req += "\r\n" + body;
    send_raw(req);
    return read_response();
  }

  /// Reads status line + headers + Content-Length-framed body. For
  /// Connection: close responses without a length, reads to EOF.
  Response read_response() {
    Response resp;
    std::string head = read_until("\r\n\r\n");
    std::size_t line_end = head.find("\r\n");
    const std::string status_line = head.substr(0, line_end);
    if (status_line.size() < 12 || status_line.compare(0, 5, "HTTP/") != 0) {
      throw std::runtime_error("bad status line: " + status_line);
    }
    resp.status = std::stoi(status_line.substr(9, 3));
    std::size_t pos = line_end + 2;
    while (pos < head.size()) {
      const std::size_t end = head.find("\r\n", pos);
      if (end == std::string::npos || end == pos) break;
      const std::string line = head.substr(pos, end - pos);
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::string name = line.substr(0, colon);
        for (char& c : name) c = static_cast<char>(::tolower(c));
        std::size_t v = colon + 1;
        while (v < line.size() && line[v] == ' ') ++v;
        resp.headers[name] = line.substr(v);
      }
      pos = end + 2;
    }
    const auto it = resp.headers.find("content-length");
    if (it != resp.headers.end()) {
      const std::size_t want = std::stoull(it->second);
      resp.body = std::move(buffer_);
      buffer_.clear();
      while (resp.body.size() < want) {
        if (!fill()) throw std::runtime_error("short body");
        resp.body += buffer_;
        buffer_.clear();
      }
      if (resp.body.size() > want) {
        buffer_ = resp.body.substr(want);
        resp.body.resize(want);
      }
    } else {
      // No framing: read until the server closes (SSE / close responses).
      resp.body = std::move(buffer_);
      buffer_.clear();
      while (fill()) {
        resp.body += buffer_;
        buffer_.clear();
      }
    }
    return resp;
  }

  /// Reads from the socket until `token` appears in the accumulated
  /// stream; returns everything up to and including it, keeping the
  /// rest buffered. Used for SSE event-by-event assertions.
  std::string read_until(const std::string& token) {
    std::size_t start = 0;
    while (true) {
      const std::size_t found = buffer_.find(token, start);
      if (found != std::string::npos) {
        std::string out = buffer_.substr(0, found + token.size());
        buffer_.erase(0, found + token.size());
        return out;
      }
      start = buffer_.size() > token.size() ? buffer_.size() - token.size() : 0;
      if (!fill()) {
        throw std::runtime_error("EOF before \"" + token +
                                 "\"; got: " + buffer_);
      }
    }
  }

  /// True when the peer has closed (next read returns EOF).
  bool at_eof() { return !buffer_.empty() ? false : !fill(); }

 private:
  bool fill() {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace northup::testhttp
