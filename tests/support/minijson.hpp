// Minimal JSON value/parser shared by the observability tests — just
// enough structure checking for the trace/metrics schemas (objects,
// arrays, strings, numbers, bools, null). Throws std::runtime_error on
// malformed input; no gtest dependency.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace northup::testjson {

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  bool has(const std::string& key) const {
    return kind == Kind::Object && object.count(key) > 0;
  }
  const Json& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("json parse error at " + std::to_string(pos_) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Json v;
        v.kind = Json::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': return parse_bool();
      case 'n': parse_literal("null"); return Json{};
      default: return parse_number();
    }
  }

  void parse_literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) fail("bad literal");
    pos_ += lit.size();
  }

  Json parse_bool() {
    Json v;
    v.kind = Json::Kind::Bool;
    if (peek() == 't') {
      parse_literal("true");
      v.boolean = true;
    } else {
      parse_literal("false");
    }
    return v;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    Json v;
    v.kind = Json::Kind::Number;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'u': pos_ += 4; out.push_back('?'); break;
          default: out.push_back(esc);
        }
      } else {
        out.push_back(c);
      }
    }
    expect('"');
    return out;
  }

  Json parse_array() {
    expect('[');
    Json v;
    v.kind = Json::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json parse_object() {
    expect('{');
    Json v;
    v.kind = Json::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace northup::testjson
