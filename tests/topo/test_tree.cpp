// Topological tree tests: construction, the paper's query API, asymmetric
// shapes, validation, presets, and dump output.
#include <gtest/gtest.h>

#include "northup/topo/presets.hpp"
#include "northup/topo/tree.hpp"

namespace nt = northup::topo;
namespace nm = northup::mem;
namespace ns = northup::sim;

namespace {

nt::MemoryInfo dram(std::uint64_t cap = 1 << 20) {
  return {nm::StorageKind::Dram, cap, ns::ModelPresets::dram(), 0};
}

nt::MemoryInfo ssd(std::uint64_t cap = 1 << 30) {
  return {nm::StorageKind::Ssd, cap, ns::ModelPresets::ssd(), 0};
}

}  // namespace

TEST(TopoTree, RootIsLevelZero) {
  nt::TopoTree tree;
  const auto root = tree.add_root("root", ssd());
  EXPECT_EQ(tree.get_level(root), 0);
  EXPECT_EQ(tree.get_parent(root), nt::kInvalidNode);
  EXPECT_TRUE(tree.is_leaf(root));
  EXPECT_EQ(tree.get_max_treelevel(), 0);
}

TEST(TopoTree, LevelsIncreaseDownward) {
  // The paper numbers the slowest storage 0 and faster levels higher.
  nt::TopoTree tree;
  const auto root = tree.add_root("root", ssd());
  const auto mid = tree.add_child(root, "dram", dram());
  const auto leaf = tree.add_child(mid, "dev", dram());
  EXPECT_EQ(tree.get_level(mid), 1);
  EXPECT_EQ(tree.get_level(leaf), 2);
  EXPECT_EQ(tree.get_max_treelevel(), 2);
  EXPECT_FALSE(tree.is_leaf(mid));
  EXPECT_TRUE(tree.is_leaf(leaf));
}

TEST(TopoTree, ChildrenAndParentQueries) {
  nt::TopoTree tree;
  const auto root = tree.add_root("root", ssd());
  const auto a = tree.add_child(root, "a", dram());
  const auto b = tree.add_child(root, "b", dram());
  const auto& kids = tree.get_children_list(root);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0], a);
  EXPECT_EQ(kids[1], b);
  EXPECT_EQ(tree.get_parent(a), root);
  EXPECT_EQ(tree.get_parent(b), root);
}

TEST(TopoTree, FetchNodeType) {
  nt::TopoTree tree;
  const auto root = tree.add_root("root", ssd());
  const auto child = tree.add_child(root, "c", dram());
  EXPECT_EQ(tree.fetch_node_type(root), nm::StorageKind::Ssd);
  EXPECT_EQ(tree.fetch_node_type(child), nm::StorageKind::Dram);
}

TEST(TopoTree, FindByName) {
  nt::TopoTree tree;
  tree.add_root("root", ssd());
  EXPECT_NE(tree.find("root"), nt::kInvalidNode);
  EXPECT_EQ(tree.find("missing"), nt::kInvalidNode);
}

TEST(TopoTree, SecondRootRejected) {
  nt::TopoTree tree;
  tree.add_root("root", ssd());
  EXPECT_THROW(tree.add_root("another", ssd()), northup::util::Error);
}

TEST(TopoTree, ProcessorsAttach) {
  nt::TopoTree tree;
  const auto root = tree.add_root("root", ssd());
  const auto leaf = tree.add_child(root, "dram", dram());
  tree.attach_processor(leaf, nt::preset_cpu());
  tree.attach_processor(leaf, nt::preset_apu_gpu());
  ASSERT_EQ(tree.processors(leaf).size(), 2u);
  EXPECT_EQ(tree.processors(leaf)[0].type, nt::ProcessorType::Cpu);
  EXPECT_EQ(tree.processors(leaf)[1].type, nt::ProcessorType::Gpu);
}

TEST(TopoTree, PreorderVisitsEveryNodeOnce) {
  const auto tree = nt::asymmetric_fig2();
  const auto order = tree.preorder();
  EXPECT_EQ(order.size(), tree.node_count());
  EXPECT_EQ(order.front(), tree.root());
}

TEST(TopoTree, LeavesOfAsymmetricTree) {
  const auto tree = nt::asymmetric_fig2();
  const auto leaves = tree.leaves();
  // Fig 2 shape: n1 (CPU), n4 (CPU), n5 (GPU) are leaves.
  EXPECT_EQ(leaves.size(), 3u);
  for (const auto leaf : leaves) {
    EXPECT_FALSE(tree.processors(leaf).empty());
  }
  // Asymmetry: leaves sit at different levels.
  int min_level = 100, max_level = 0;
  for (const auto leaf : leaves) {
    min_level = std::min(min_level, tree.get_level(leaf));
    max_level = std::max(max_level, tree.get_level(leaf));
  }
  EXPECT_LT(min_level, max_level);
}

TEST(TopoTree, DumpShowsHierarchy) {
  const auto tree = nt::apu_two_level();
  const auto text = tree.dump();
  EXPECT_NE(text.find("storage"), std::string::npos);
  EXPECT_NE(text.find("dram"), std::string::npos);
  EXPECT_NE(text.find("+gpu:apu-gpu"), std::string::npos);
  EXPECT_NE(text.find("+cpu:a10-cpu"), std::string::npos);
}

TEST(TopoTree, ValidateRejectsZeroCapacity) {
  nt::TopoTree tree;
  tree.add_root("root", {nm::StorageKind::Dram, 0, ns::ModelPresets::dram(),
                         0});
  EXPECT_THROW(tree.validate(), northup::util::TopologyError);
}

TEST(Presets, ApuTwoLevelShape) {
  const auto tree = nt::apu_two_level();
  EXPECT_EQ(tree.node_count(), 2u);
  EXPECT_EQ(tree.get_max_treelevel(), 1);
  EXPECT_TRUE(nm::is_file_backed(tree.fetch_node_type(tree.root())));
  const auto leaf = tree.leaves().front();
  EXPECT_EQ(tree.processors(leaf).size(), 2u);  // CPU + GPU on the APU leaf
}

TEST(Presets, DgpuThreeLevelShape) {
  const auto tree = nt::dgpu_three_level();
  EXPECT_EQ(tree.node_count(), 3u);
  EXPECT_EQ(tree.get_max_treelevel(), 2);
  // The CPU attaches to the non-leaf DRAM node (§III-B).
  const auto dram_node = tree.find("dram");
  ASSERT_NE(dram_node, nt::kInvalidNode);
  EXPECT_FALSE(tree.is_leaf(dram_node));
  ASSERT_EQ(tree.processors(dram_node).size(), 1u);
  EXPECT_EQ(tree.processors(dram_node)[0].type, nt::ProcessorType::Cpu);
  // The GPU owns the device-memory leaf.
  const auto dev = tree.find("gpu-mem");
  EXPECT_EQ(tree.fetch_node_type(dev), nm::StorageKind::DeviceMem);
  EXPECT_EQ(tree.processors(dev)[0].type, nt::ProcessorType::Gpu);
}

TEST(Presets, DeepFourLevelShape) {
  const auto tree = nt::deep_four_level();
  EXPECT_EQ(tree.get_max_treelevel(), 3);
  EXPECT_EQ(tree.fetch_node_type(tree.root()), nm::StorageKind::Hdd);
  EXPECT_EQ(tree.fetch_node_type(tree.find("nvm")), nm::StorageKind::Nvm);
}

TEST(Presets, FlopsScaleAppliesToProcessorsOnly) {
  nt::PresetOptions opts;
  opts.proc_flops_scale = 0.5;
  const auto scaled = nt::apu_two_level(nm::StorageKind::Ssd, opts);
  const auto normal = nt::apu_two_level(nm::StorageKind::Ssd, {});
  const auto leaf_s = scaled.leaves().front();
  const auto leaf_n = normal.leaves().front();
  EXPECT_DOUBLE_EQ(scaled.processors(leaf_s)[1].model.flops_per_s,
                   normal.processors(leaf_n)[1].model.flops_per_s * 0.5);
  EXPECT_DOUBLE_EQ(scaled.processors(leaf_s)[1].model.mem_bytes_per_s,
                   normal.processors(leaf_n)[1].model.mem_bytes_per_s);
}
