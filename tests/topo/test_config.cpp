// Topology config parser tests: happy path, defaults, error reporting
// with line numbers, and round-tripping through to_config.
#include <gtest/gtest.h>

#include "northup/topo/config.hpp"

namespace nt = northup::topo;
namespace nm = northup::mem;

namespace {

constexpr const char* kSample = R"(
# A discrete-GPU box.
node storage kind=ssd cap=64G read=1400M write=600M
node dram parent=storage kind=dram cap=2G
node gpumem parent=dram kind=device cap=16G
proc cpu0 node=dram type=cpu gflops=48 cus=4
proc gpu0 node=gpumem type=gpu gflops=2600 membw=192G cus=44 localmem=32K
)";

}  // namespace

TEST(TopoConfig, ParsesSample) {
  const auto tree = nt::parse_config(kSample);
  EXPECT_EQ(tree.node_count(), 3u);
  EXPECT_EQ(tree.fetch_node_type(tree.find("storage")), nm::StorageKind::Ssd);
  EXPECT_EQ(tree.get_level(tree.find("gpumem")), 2);
  const auto& gpu = tree.processors(tree.find("gpumem"))[0];
  EXPECT_EQ(gpu.name, "gpu0");
  EXPECT_DOUBLE_EQ(gpu.model.flops_per_s, 2600e9);
  EXPECT_EQ(gpu.compute_units, 44);
  EXPECT_EQ(gpu.local_mem_bytes, 32u << 10);
}

TEST(TopoConfig, BandwidthOverridesApply) {
  const auto tree = nt::parse_config(
      "node root kind=ssd cap=1G read=2000M write=1000M latency=0.001");
  const auto& model = tree.memory(tree.root()).model;
  EXPECT_DOUBLE_EQ(model.read_bytes_per_s, 2000.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(model.write_bytes_per_s, 1000.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(model.access_latency_s, 0.001);
}

TEST(TopoConfig, DefaultsModelsByKind) {
  const auto tree = nt::parse_config("node root kind=hdd cap=1G");
  EXPECT_DOUBLE_EQ(tree.memory(tree.root()).model.read_bytes_per_s, 150e6);
}

TEST(TopoConfig, CommentsAndBlankLinesIgnored) {
  const auto tree = nt::parse_config(
      "\n# leading comment\nnode root kind=dram cap=1M  # trailing\n\n");
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(TopoConfig, ErrorsCarryLineNumbers) {
  try {
    nt::parse_config("node a kind=dram cap=1M\nnode b kind=banana cap=1M");
    FAIL() << "expected TopologyError";
  } catch (const northup::util::TopologyError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TopoConfig, RejectsUnknownParent) {
  EXPECT_THROW(nt::parse_config("node a parent=ghost kind=dram cap=1M"),
               northup::util::TopologyError);
}

TEST(TopoConfig, RejectsDuplicateName) {
  EXPECT_THROW(nt::parse_config(
                   "node a kind=dram cap=1M\nnode a parent=a kind=dram cap=1M"),
               northup::util::TopologyError);
}

TEST(TopoConfig, RejectsSecondRoot) {
  EXPECT_THROW(
      nt::parse_config("node a kind=dram cap=1M\nnode b kind=dram cap=1M"),
      northup::util::TopologyError);
}

TEST(TopoConfig, RejectsMissingRequiredKeys) {
  EXPECT_THROW(nt::parse_config("node a cap=1M"),
               northup::util::TopologyError);
  EXPECT_THROW(nt::parse_config("node a kind=dram"),
               northup::util::TopologyError);
  EXPECT_THROW(nt::parse_config("node a kind=dram cap=1M\nproc p node=a"),
               northup::util::TopologyError);
}

TEST(TopoConfig, RejectsUnknownDirective) {
  EXPECT_THROW(nt::parse_config("widget a kind=dram cap=1M"),
               northup::util::TopologyError);
}

TEST(TopoConfig, RejectsEmptyConfig) {
  EXPECT_THROW(nt::parse_config("# nothing here\n"),
               northup::util::TopologyError);
}

TEST(TopoConfig, RoundTripsThroughToConfig) {
  const auto tree = nt::parse_config(kSample);
  const auto text = nt::to_config(tree);
  const auto again = nt::parse_config(text);
  ASSERT_EQ(again.node_count(), tree.node_count());
  for (nt::NodeId id = 0; id < tree.node_count(); ++id) {
    EXPECT_EQ(again.node(id).name, tree.node(id).name);
    EXPECT_EQ(again.fetch_node_type(id), tree.fetch_node_type(id));
    EXPECT_EQ(again.memory(id).capacity, tree.memory(id).capacity);
    EXPECT_EQ(again.get_level(id), tree.get_level(id));
    ASSERT_EQ(again.processors(id).size(), tree.processors(id).size());
    for (std::size_t p = 0; p < tree.processors(id).size(); ++p) {
      EXPECT_EQ(again.processors(id)[p].name, tree.processors(id)[p].name);
      EXPECT_NEAR(again.processors(id)[p].model.flops_per_s,
                  tree.processors(id)[p].model.flops_per_s, 1e6);
    }
  }
}
