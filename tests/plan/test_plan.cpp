// northup::plan unit tests (ISSUE 8 satellite).
//
// Three layers: MachineProfile JSON round-trip fidelity plus the load
// error contract (every failure names the offending path), the AutoTuner
// sizing invariants — most importantly the monotonicity guarantee that
// halving an edge's calibrated bandwidth never *increases* the tuned
// chunk size — and Calibrator fit recovery from a synthetic RecordedRun,
// including the clamp that keeps a wall-clock-fitted access latency
// inside the declared storage model.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "northup/io/posix_file.hpp"
#include "northup/obs/event_log.hpp"
#include "northup/plan/auto_tuner.hpp"
#include "northup/plan/calibrator.hpp"
#include "northup/plan/feasibility.hpp"
#include "northup/plan/machine_profile.hpp"
#include "northup/topo/presets.hpp"
#include "northup/util/assert.hpp"

namespace nio = northup::io;
namespace nm = northup::mem;
namespace no = northup::obs;
namespace np = northup::plan;
namespace nt = northup::topo;
namespace nu = northup::util;

namespace {

np::MachineProfile sample_profile() {
  np::MachineProfile p;
  np::NodeProfile storage;
  storage.node = 0;
  storage.name = "storage";
  storage.kind = "ssd";
  storage.read_bytes_per_s = 3.5e9;
  storage.write_bytes_per_s = 2.0e9;
  storage.access_latency_s = 60e-6;
  np::NodeProfile dram;
  dram.node = 1;
  dram.name = "dram \"fast\"";  // exercises string escaping
  dram.kind = "dram";
  dram.read_bytes_per_s = 40e9;
  dram.write_bytes_per_s = 40e9;
  dram.access_latency_s = 1e-7;
  p.nodes = {storage, dram};

  np::EdgeProfile e;
  e.src = 0;
  e.dst = 1;
  e.src_name = "storage";
  e.dst_name = "dram \"fast\"";
  e.bytes_per_s = 3.1e9;
  e.latency_s = 42e-6;
  e.samples = 17;
  e.bytes = 123456789;
  e.seconds = 0.0403125;
  p.edges = {e};

  np::ProcProfile proc;
  proc.node = 1;
  proc.name = "cpu";
  proc.flops_per_s = 5e10;
  proc.mem_bytes_per_s = 2.5e10;
  proc.launch_latency_s = 3e-6;
  proc.compute_units = 8;
  proc.local_mem_bytes = 32768;
  proc.launches = 9;
  proc.groups = 1024;
  proc.seconds = 0.25;
  p.procs = {proc};
  return p;
}

}  // namespace

TEST(MachineProfile, JsonRoundTripPreservesEveryField) {
  const np::MachineProfile p = sample_profile();
  const np::MachineProfile q = np::MachineProfile::from_json(p.to_json());

  ASSERT_EQ(q.nodes.size(), 2u);
  EXPECT_EQ(q.nodes[0].node, 0u);
  EXPECT_EQ(q.nodes[0].name, "storage");
  EXPECT_EQ(q.nodes[0].kind, "ssd");
  EXPECT_DOUBLE_EQ(q.nodes[0].read_bytes_per_s, 3.5e9);
  EXPECT_DOUBLE_EQ(q.nodes[0].write_bytes_per_s, 2.0e9);
  EXPECT_DOUBLE_EQ(q.nodes[0].access_latency_s, 60e-6);
  EXPECT_EQ(q.nodes[1].name, "dram \"fast\"");

  ASSERT_EQ(q.edges.size(), 1u);
  EXPECT_EQ(q.edges[0].src, 0u);
  EXPECT_EQ(q.edges[0].dst, 1u);
  EXPECT_EQ(q.edges[0].src_name, "storage");
  EXPECT_EQ(q.edges[0].dst_name, "dram \"fast\"");
  EXPECT_DOUBLE_EQ(q.edges[0].bytes_per_s, 3.1e9);
  EXPECT_DOUBLE_EQ(q.edges[0].latency_s, 42e-6);
  EXPECT_EQ(q.edges[0].samples, 17u);
  EXPECT_EQ(q.edges[0].bytes, 123456789u);
  EXPECT_DOUBLE_EQ(q.edges[0].seconds, 0.0403125);

  ASSERT_EQ(q.procs.size(), 1u);
  EXPECT_EQ(q.procs[0].node, 1u);
  EXPECT_EQ(q.procs[0].name, "cpu");
  EXPECT_DOUBLE_EQ(q.procs[0].flops_per_s, 5e10);
  EXPECT_DOUBLE_EQ(q.procs[0].mem_bytes_per_s, 2.5e10);
  EXPECT_DOUBLE_EQ(q.procs[0].launch_latency_s, 3e-6);
  EXPECT_EQ(q.procs[0].compute_units, 8u);
  EXPECT_EQ(q.procs[0].local_mem_bytes, 32768u);
  EXPECT_EQ(q.procs[0].launches, 9u);
  EXPECT_EQ(q.procs[0].groups, 1024u);
  EXPECT_DOUBLE_EQ(q.procs[0].seconds, 0.25);
}

TEST(MachineProfile, FileRoundTripThroughWriteAndLoad) {
  nio::TempDir scratch("plan_test");
  const std::string path = scratch.file("profile.json");
  const np::MachineProfile p = sample_profile();
  p.write_json(path);
  const np::MachineProfile q = np::MachineProfile::load(path);
  EXPECT_EQ(q.to_json(), p.to_json());
}

TEST(MachineProfile, LoadErrorsNameThePath) {
  nio::TempDir scratch("plan_test");

  const std::string missing = scratch.file("no_such_profile.json");
  try {
    np::MachineProfile::load(missing);
    FAIL() << "load of a missing file must throw";
  } catch (const nu::Error& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("cannot open machine profile"),
              std::string::npos)
        << e.what();
  }

  const std::string corrupt = scratch.file("corrupt.json");
  std::ofstream(corrupt) << "{\"northup_machine_profile\": 1, \"nodes\": [";
  try {
    np::MachineProfile::load(corrupt);
    FAIL() << "load of truncated JSON must throw";
  } catch (const nu::Error& e) {
    EXPECT_NE(std::string(e.what()).find(corrupt), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("malformed machine profile"),
              std::string::npos)
        << e.what();
  }

  const std::string wrong_kind = scratch.file("wrong_kind.json");
  std::ofstream(wrong_kind) << "{\"traceEvents\": []}";
  EXPECT_THROW(np::MachineProfile::load(wrong_kind), nu::Error);

  const std::string future = scratch.file("future.json");
  std::ofstream(future) << "{\"northup_machine_profile\": 99}";
  try {
    np::MachineProfile::load(future);
    FAIL() << "load of a future version must throw";
  } catch (const nu::Error& e) {
    EXPECT_NE(std::string(e.what()).find(future), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("unsupported machine profile"),
              std::string::npos)
        << e.what();
  }
}

namespace {

/// Two-node profile with one measured 0→1 edge; the access latency is
/// deliberately large so the latency-amortization term is what binds the
/// tuned chunk size (the regime the monotonicity invariant is about).
np::MachineProfile tuning_profile(double bytes_per_s, double latency_s) {
  np::MachineProfile p = sample_profile();
  p.edges[0].bytes_per_s = bytes_per_s;
  p.edges[0].latency_s = latency_s;
  return p;
}

}  // namespace

TEST(AutoTuner, ChunkSizeMonotoneInBandwidth) {
  np::Workload w;
  w.down_bytes = 256ULL << 20;
  const std::uint64_t budget = 8ULL << 20;
  const std::uint64_t floor = 4096;

  for (const bool overlapped : {false, true}) {
    std::uint64_t prev = UINT64_MAX;
    // Sweep bandwidth downward by halving: the tuned chunk must never
    // grow. The 1 ms latency keeps the amortization term the active
    // bound across most of the sweep.
    for (double bw = 1e12; bw >= 1e3; bw /= 2.0) {
      const np::AutoTuner tuner(tuning_profile(bw, 1e-3));
      const std::uint64_t chunk =
          tuner.tune_chunk_bytes(0, 1, w, budget, floor, overlapped);
      EXPECT_LE(chunk, prev) << "bw=" << bw << " overlapped=" << overlapped;
      EXPECT_GE(chunk, floor);
      EXPECT_LE(chunk, budget);
      prev = chunk;
    }
  }
}

TEST(AutoTuner, BlockingLevelTakesTheFullBudget) {
  // Nothing to overlap: finer chunks only multiply access latencies, so
  // a blocking level always gets the whole budget regardless of edge.
  np::Workload w;
  w.down_bytes = 256ULL << 20;
  const std::uint64_t budget = 8ULL << 20;
  for (double bw : {1e6, 1e9, 1e12}) {
    const np::AutoTuner tuner(tuning_profile(bw, 1e-9));
    EXPECT_EQ(tuner.tune_chunk_bytes(0, 1, w, budget, 4096, false), budget);
  }
}

TEST(AutoTuner, OverlappedLevelSplitsIntoMultipleChunks) {
  // Fast edge, negligible latency: an overlapped level is bounded so the
  // workload yields enough chunks to hide pipeline fill/drain.
  np::Workload w;
  w.down_bytes = 64ULL << 20;
  const std::uint64_t budget = 32ULL << 20;
  const np::AutoTuner tuner(tuning_profile(1e12, 1e-9));
  const std::uint64_t chunk = tuner.tune_chunk_bytes(0, 1, w, budget, 4096, true);
  EXPECT_LT(chunk, budget);
  EXPECT_GE(w.down_bytes / chunk, 8u);
}

TEST(AutoTuner, UnmeasuredEdgeFallsBackToDeclaredModel) {
  const np::AutoTuner tuner(sample_profile());
  // 1→0 was never measured: bottleneck of dram read (40e9) and storage
  // write (2e9), worst-case declared access latency.
  const auto est = tuner.edge(1, 0);
  EXPECT_FALSE(est.measured);
  EXPECT_DOUBLE_EQ(est.bytes_per_s, 2.0e9);
  EXPECT_DOUBLE_EQ(est.latency_s, 60e-6);
  EXPECT_TRUE(tuner.edge(0, 1).measured);
}

TEST(AutoTuner, NnzCutoffFillsTheDeviceAndRespectsLocalMemory) {
  np::MachineProfile p = sample_profile();
  p.procs[0].compute_units = 8;
  p.procs[0].local_mem_bytes = 16384;  // 4096 floats
  const np::AutoTuner tuner(p);
  // Hand default 1000 rounds down to 512; a 2048-nnz shard only fills
  // 2*8 = 16 workgroups at cutoff 128.
  EXPECT_EQ(tuner.tune_nnz_cutoff(1, 2048, 1000), 128u);
  // Large shard: the pow2-rounded hand default stands.
  EXPECT_EQ(tuner.tune_nnz_cutoff(1, 1ULL << 24, 1000), 512u);
  // Tiny local memory caps the cutoff at the 64-row floor.
  p.procs[0].local_mem_bytes = 256;  // 64 floats
  const np::AutoTuner small(p);
  EXPECT_EQ(small.tune_nnz_cutoff(1, 1ULL << 24, 1000), 64u);
}

TEST(AutoTuner, RankChildrenPrefersObservedBandwidth) {
  np::MachineProfile p = sample_profile();
  np::NodeProfile slow;
  slow.node = 2;
  slow.name = "dram2";
  slow.kind = "dram";
  slow.read_bytes_per_s = 40e9;
  slow.write_bytes_per_s = 40e9;
  p.nodes.push_back(slow);
  // Child 2's measured edge is faster than child 1's.
  np::EdgeProfile fast = p.edges[0];
  fast.dst = 2;
  fast.bytes_per_s = 9e9;
  p.edges.push_back(fast);
  const np::AutoTuner tuner(p);
  const std::vector<std::uint32_t> ranked = tuner.rank_children(0, {1, 2});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 2u);
  EXPECT_EQ(ranked[1], 1u);
}

TEST(AutoTuner, ChooseModeKeepsSerialWhenTransferDominates) {
  // HDD-class edge: double-buffering halves the chunk, doubling the
  // per-chunk access count of a 1/chunk-volume plan; the serial
  // fat-chunk candidate models strictly cheaper.
  np::Workload serial_w;
  serial_w.down_bytes = 64ULL << 20;
  serial_w.chunks = 8;
  np::Workload pipe_w = serial_w;
  pipe_w.chunks = 16;
  pipe_w.down_bytes = 2 * serial_w.down_bytes;  // 1/chunk traffic inflation
  const np::AutoTuner tuner(tuning_profile(80e6, 5e-3));
  EXPECT_EQ(tuner.choose_mode(0, 1, serial_w, pipe_w, true),
            np::Mode::kSerial);
  EXPECT_EQ(tuner.choose_mode(0, 1, serial_w, pipe_w, false),
            np::Mode::kSerial);
  // Transfer and compute comparable (~1 s each at 67 MB/s and 5e10
  // flops on the 5e10 flops/s proc): hiding one behind the other nearly
  // halves the level, so overlap wins.
  np::Workload light = serial_w;
  light.compute_flops = 5e10;
  light.compute_node = 1;
  np::Workload light_pipe = light;
  const np::AutoTuner balanced(tuning_profile(67e6, 1e-9));
  EXPECT_EQ(balanced.choose_mode(0, 1, light, light_pipe, true),
            np::Mode::kDoubleBuffer);
}

namespace {

/// A RecordedRun whose 0→1 moves follow duration = latency + bytes/bw
/// exactly, for fit-recovery checks. Times in ns.
no::RecordedRun synthetic_moves(double bytes_per_s, double latency_s) {
  no::RecordedRun run;
  run.names = {"", "move"};
  run.node_names[0] = "storage";
  run.node_names[1] = "dram";
  run.thread_count = 1;
  std::uint64_t ts = 0;
  for (std::uint64_t bytes : {1ULL << 16, 1ULL << 18, 1ULL << 20}) {
    no::Event e;
    e.kind = no::EventKind::kMove;
    e.name = 1;
    e.node = 0;
    e.node2 = 1;
    e.value = bytes;
    e.ts_ns = ts;
    e.dur_ns = static_cast<std::uint64_t>(
        (latency_s + static_cast<double>(bytes) / bytes_per_s) * 1e9);
    ts += e.dur_ns + 1000;
    run.events.push_back(e);
  }
  return run;
}

}  // namespace

TEST(Calibrator, RecoversBandwidthAndClampsLatencyToDeclaredModel) {
  nt::TopoTree tree = nt::apu_two_level(nm::StorageKind::Ssd);
  const double declared_latency =
      tree.node(0).memory.model.access_latency_s;

  // The synthetic intercept (2 ms) models host overhead far above the
  // declared SSD access latency — exactly what a wall-clock fit absorbs.
  np::Calibrator calibrator;
  calibrator.observe_topology(tree);
  calibrator.ingest(synthetic_moves(1e9, 2e-3));
  EXPECT_EQ(calibrator.runs(), 1u);
  const np::MachineProfile profile = calibrator.finish();

  const np::EdgeProfile* e = profile.find_edge(0, 1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->samples, 3u);
  EXPECT_NEAR(e->bytes_per_s, 1e9, 1e9 * 0.01);
  // Clamped into [0, declared]: the 2 ms intercept must not leak into
  // the profile, or plans tuned against it would disagree with the
  // runtime's virtual makespan.
  EXPECT_LE(e->latency_s, declared_latency);
  EXPECT_GE(e->latency_s, 0.0);

  // Declared state came from the topology walk.
  EXPECT_EQ(profile.nodes.size(), tree.preorder().size());
  EXPECT_FALSE(profile.procs.empty());
}

TEST(Calibrator, MergesEvidenceAcrossRuns) {
  np::Calibrator calibrator;
  calibrator.observe_topology(nt::apu_two_level(nm::StorageKind::Ssd));
  calibrator.ingest(synthetic_moves(1e9, 0.0));
  calibrator.ingest(synthetic_moves(1e9, 0.0));
  EXPECT_EQ(calibrator.runs(), 2u);
  const np::MachineProfile profile = calibrator.finish();
  const np::EdgeProfile* e = profile.find_edge(0, 1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->samples, 6u);
  EXPECT_NEAR(e->bytes_per_s, 1e9, 1e9 * 0.01);
}

TEST(Feasibility, EstimateUsesMeasuredEdgeAndProcessorRoofline) {
  const np::FeasibilityEstimator est(sample_profile(), {0, 1});

  // Down bytes cross the measured 3.1 GB/s edge plus one latency charge.
  np::WorkEstimate transfer_bound;
  transfer_bound.down_bytes = 3.1e9;
  const np::CostEstimate t = est.estimate(transfer_bound);
  EXPECT_NEAR(t.transfer_s, 1.0 + 42e-6, 1e-9);
  EXPECT_DOUBLE_EQ(t.compute_s, 0.0);
  EXPECT_DOUBLE_EQ(t.total_s(), t.transfer_s);

  // Flops burn on the 5e10 flops/s roofline; ideal overlap means the
  // slower of the two sides is the total.
  np::WorkEstimate compute_bound = transfer_bound;
  compute_bound.flops = 1e11;  // 2 s of compute vs ~1 s of transfer
  const np::CostEstimate c = est.estimate(compute_bound);
  EXPECT_DOUBLE_EQ(c.compute_s, 2.0);
  EXPECT_DOUBLE_EQ(c.total_s(), 2.0);

  // Memory-bound kernels hit the roofline's bandwidth leg instead.
  np::WorkEstimate mem_bound;
  mem_bound.compute_bytes = 5e10;  // 2 s at 2.5e10 B/s
  EXPECT_DOUBLE_EQ(est.estimate(mem_bound).compute_s, 2.0);
}

TEST(Feasibility, FeasibleHonorsMarginAndQueueDelay) {
  const np::FeasibilityEstimator est(sample_profile(), {0, 1});
  np::WorkEstimate w;
  w.down_bytes = 3.1e9;  // ~1 s lower bound

  EXPECT_TRUE(est.feasible(w, 10.0));
  EXPECT_FALSE(est.feasible(w, 0.5));
  EXPECT_FALSE(est.feasible(w, 2.5, /*margin=*/3.0));
  EXPECT_TRUE(est.feasible(w, 3.5, /*margin=*/3.0));
  EXPECT_FALSE(est.feasible(w, 1.5, 1.0, /*queue_delay_s=*/1.0));
  EXPECT_TRUE(est.feasible(w, 2.5, 1.0, /*queue_delay_s=*/1.0));
  // Non-positive deadlines mean "no deadline".
  EXPECT_TRUE(est.feasible(w, 0.0));
  EXPECT_TRUE(est.feasible(w, -1.0));
}

TEST(Feasibility, FromTreeWalksRootToLeafWithDeclaredModels) {
  const nt::TopoTree tree = nt::apu_two_level(nm::StorageKind::Ssd);
  const np::FeasibilityEstimator est = np::FeasibilityEstimator::from_tree(tree);
  ASSERT_EQ(est.chain().size(), 2u);
  EXPECT_EQ(est.chain().front(), tree.root());

  np::WorkEstimate w;
  w.down_bytes = 1e6;
  w.up_bytes = 1e6;
  const np::CostEstimate cost = est.estimate(w);
  EXPECT_GT(cost.transfer_s, 0.0);
  // Any real storage round-trip dwarfs a 1 microsecond deadline.
  EXPECT_FALSE(est.feasible(w, 1e-6));
  EXPECT_TRUE(est.feasible(w, 60.0));
}
