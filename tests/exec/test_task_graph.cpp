// Unit tests of the continuation-DAG executor: ordering through diamond
// and fan-in shapes, failure poisoning, cancellation, future/promise
// error propagation, BackoffYield re-arming, streams, and the inline
// mode's blocking-call failure semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "northup/exec/stream.hpp"
#include "northup/exec/task_graph.hpp"
#include "northup/sched/pool.hpp"

namespace ne = northup::exec;
namespace ns = northup::sched;

namespace {

/// Thread-safe append-only trace of node executions.
class Trace {
 public:
  void record(std::string label) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back(std::move(label));
  }
  std::vector<std::string> entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_;
  }
  std::size_t index_of(const std::string& label) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i] == label) return i;
    }
    return entries_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> entries_;
};

}  // namespace

TEST(TaskGraphInline, RunsAtSubmissionInProgramOrder) {
  ne::TaskGraph graph;  // no pool: inline mode
  EXPECT_FALSE(graph.is_async());
  Trace trace;
  const auto a = graph.add([&](ne::RunStatus) { trace.record("a"); });
  // The node already ran inside add().
  EXPECT_EQ(trace.entries().size(), 1u);
  const auto b = graph.add([&](ne::RunStatus) { trace.record("b"); }, {a});
  graph.add([&](ne::RunStatus) { trace.record("c"); }, {a, b});
  graph.wait_all();
  EXPECT_EQ(trace.entries(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TaskGraphAsync, DiamondRespectsDependencies) {
  ns::WorkStealingPool pool(3);
  ne::TaskGraph graph(&pool);
  EXPECT_TRUE(graph.is_async());
  Trace trace;
  const auto top = graph.add([&](ne::RunStatus) { trace.record("top"); });
  const auto left = graph.add(
      [&](ne::RunStatus) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        trace.record("left");
      },
      {top});
  const auto right = graph.add([&](ne::RunStatus) { trace.record("right"); },
                               {top});
  graph.add([&](ne::RunStatus) { trace.record("bottom"); }, {left, right});
  graph.wait_all();

  EXPECT_EQ(trace.entries().size(), 4u);
  EXPECT_EQ(trace.index_of("top"), 0u);
  EXPECT_EQ(trace.index_of("bottom"), 3u);
}

TEST(TaskGraphAsync, FanInWaitsForAllProducers) {
  ns::WorkStealingPool pool(4);
  ne::TaskGraph graph(&pool);
  std::atomic<int> produced{0};
  int seen_at_sink = -1;
  std::vector<ne::TaskHandle> producers;
  for (int i = 0; i < 8; ++i) {
    producers.push_back(graph.add([&](ne::RunStatus) {
      std::this_thread::sleep_for(std::chrono::microseconds(100 * (8 - 1)));
      produced.fetch_add(1);
    }));
  }
  graph.add([&](ne::RunStatus) { seen_at_sink = produced.load(); },
            producers);
  graph.wait_all();
  EXPECT_EQ(seen_at_sink, 8);
}

TEST(TaskGraphAsync, FailurePoisonsTransitiveDependents) {
  ns::WorkStealingPool pool(2);
  ne::TaskGraph graph(&pool);
  std::atomic<bool> mid_ok{false};
  std::atomic<bool> leaf_ok{false};
  ne::RunStatus mid_status{};
  ne::RunStatus leaf_status{};

  const auto bad = graph.add([&](ne::RunStatus) {
    throw std::runtime_error("injected failure");
  });
  const auto mid = graph.add(
      [&](ne::RunStatus s) {
        mid_status = s;
        if (s == ne::RunStatus::kOk) mid_ok = true;
      },
      {bad});
  graph.add(
      [&](ne::RunStatus s) {
        leaf_status = s;
        if (s == ne::RunStatus::kOk) leaf_ok = true;
      },
      {mid});
  graph.wait_all();

  EXPECT_EQ(mid_status, ne::RunStatus::kDepFailed);
  EXPECT_EQ(leaf_status, ne::RunStatus::kDepFailed);
  EXPECT_FALSE(mid_ok.load());
  EXPECT_FALSE(leaf_ok.load());
  // The root cause is recorded for the run to rethrow.
  ASSERT_TRUE(graph.first_error() != nullptr);
  EXPECT_THROW(std::rethrow_exception(graph.first_error()),
               std::runtime_error);
}

TEST(TaskGraphAsync, CancelSkipsUnstartedNodes) {
  ns::WorkStealingPool pool(1);
  ne::TaskGraph graph(&pool);
  std::atomic<bool> gate{false};
  std::atomic<int> ran{0};
  ne::RunStatus tail_status = ne::RunStatus::kOk;

  const auto head = graph.add([&](ne::RunStatus) {
    while (!gate.load()) std::this_thread::yield();
    ran.fetch_add(1);
  });
  graph.add(
      [&](ne::RunStatus s) {
        tail_status = s;
        if (s == ne::RunStatus::kOk) ran.fetch_add(1);
      },
      {head});
  graph.cancel();
  gate = true;
  graph.wait_all();

  // The running head completed; the unstarted tail ran as cancelled.
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(tail_status, ne::RunStatus::kCancelled);
  // Cancellation is not a root-cause failure.
  EXPECT_TRUE(graph.first_error() == nullptr);
}

TEST(TaskGraphInline, GenuineFailureThrowsAtSubmission) {
  // Inline mode keeps blocking-call semantics: the error propagates out
  // of add() at the submission site.
  ne::TaskGraph graph;
  EXPECT_THROW(graph.add([](ne::RunStatus) {
                 throw std::runtime_error("inline body failure");
               }),
               std::runtime_error);
  // Dependents submitted afterwards are poisoned, not thrown through.
  bool ok = false;
  ne::RunStatus status{};
  // The failed node is node 0.
  graph.add(
      [&](ne::RunStatus s) {
        status = s;
        if (s == ne::RunStatus::kOk) ok = true;
      },
      {ne::TaskHandle{&graph, 0}});
  EXPECT_EQ(status, ne::RunStatus::kDepFailed);
  EXPECT_FALSE(ok);
}

TEST(FutureTest, ValueFlowsThroughPromise) {
  ne::Promise<int> promise;
  auto fut = promise.future();
  EXPECT_FALSE(fut.ready());
  promise.set_value(42);
  EXPECT_TRUE(fut.ready());
  EXPECT_EQ(fut.get(), 42);
}

TEST(FutureTest, ThenChainsAndPropagatesErrors) {
  ne::Promise<int> promise;
  auto doubled = promise.future().then([](int& v) { return v * 2; });
  auto failed = doubled.then([](int&) -> int {
    throw std::logic_error("continuation failure");
  });
  auto after_failed = failed.then([](int& v) { return v + 1; });
  promise.set_value(21);
  EXPECT_EQ(doubled.get(), 42);
  EXPECT_THROW(failed.get(), std::logic_error);
  // The error skips downstream bodies and reaches the tail future.
  EXPECT_THROW(after_failed.get(), std::logic_error);
}

TEST(FutureTest, CancelPreventsUnstartedProducer) {
  ns::WorkStealingPool pool(1);
  ne::TaskGraph graph(&pool);
  std::atomic<bool> gate{false};

  graph.add([&](ne::RunStatus) {
    while (!gate.load()) std::this_thread::yield();
  });

  ne::Promise<int> promise;
  std::atomic<bool> body_computed{false};
  const auto task = graph.add(
      [&, promise](ne::RunStatus s) {
        if (s != ne::RunStatus::kOk) {
          promise.set_exception(std::make_exception_ptr(
              ne::CancelledError("task cancelled before start")));
          return;
        }
        body_computed = true;
        promise.set_value(7);
      },
      {ne::TaskHandle{&graph, 0}});
  auto fut = promise.future(task);

  fut.cancel();
  gate = true;
  graph.wait_all();

  EXPECT_FALSE(body_computed.load());
  EXPECT_THROW(fut.get(), ne::CancelledError);
}

TEST(TaskGraphAsync, BackoffYieldReArmsWithResumeState) {
  ns::WorkStealingPool pool(1);
  ne::TaskGraph graph(&pool);
  std::atomic<int> entries{0};
  std::atomic<int> resumed_at{0};

  graph.add([&](ne::RunStatus) {
    entries.fetch_add(1);
    ASSERT_TRUE(ne::TaskGraph::current_can_yield());
    auto* rs = ne::TaskGraph::current_resume();
    ASSERT_NE(rs, nullptr);
    auto it = rs->slots.find("step");
    if (it == rs->slots.end()) {
      rs->slots["step"] = std::make_shared<int>(1);
      throw ne::BackoffYield{0.005};
    }
    resumed_at = *static_cast<int*>(it->second.get());
  });
  graph.wait_all();

  EXPECT_EQ(entries.load(), 2);  // original run + timer re-arm
  EXPECT_EQ(resumed_at.load(), 1);
}

TEST(TaskGraphAsync, YieldInhibitScopeBlocksYielding) {
  ns::WorkStealingPool pool(1);
  ne::TaskGraph graph(&pool);
  bool yieldable_outside = false;
  bool yieldable_inside = true;
  graph.add([&](ne::RunStatus) {
    yieldable_outside = ne::TaskGraph::current_can_yield();
    ne::YieldInhibitScope inhibit;
    yieldable_inside = ne::TaskGraph::current_can_yield();
  });
  graph.wait_all();
  EXPECT_TRUE(yieldable_outside);
  EXPECT_FALSE(yieldable_inside);
}

TEST(TaskGraphInline, NeverYieldable) {
  ne::TaskGraph graph;
  bool yieldable = true;
  graph.add([&](ne::RunStatus) {
    yieldable = ne::TaskGraph::current_can_yield();
  });
  EXPECT_FALSE(yieldable);
  // Outside any node body there is nothing to yield either.
  EXPECT_FALSE(ne::TaskGraph::current_can_yield());
}

TEST(StreamTest, SerializesItsOwnWorkAgainstOtherStreams) {
  ns::WorkStealingPool pool(4);
  ne::TaskGraph graph(&pool);
  ne::Stream s1(graph);
  ne::Stream s2(graph);
  Trace trace;
  for (int i = 0; i < 4; ++i) {
    s1.submit([&trace, i](ne::RunStatus) {
      trace.record("s1:" + std::to_string(i));
    });
    s2.submit([&trace, i](ne::RunStatus) {
      trace.record("s2:" + std::to_string(i));
    });
  }
  // Rendezvous: behind both streams.
  Trace* tp = &trace;
  graph.add([tp](ne::RunStatus) { tp->record("joined"); },
            {s1.last(), s2.last()});
  graph.wait_all();

  const auto entries = trace.entries();
  EXPECT_EQ(entries.size(), 9u);
  EXPECT_EQ(entries.back(), "joined");
  for (int i = 0; i < 3; ++i) {
    EXPECT_LT(trace.index_of("s1:" + std::to_string(i)),
              trace.index_of("s1:" + std::to_string(i + 1)));
    EXPECT_LT(trace.index_of("s2:" + std::to_string(i)),
              trace.index_of("s2:" + std::to_string(i + 1)));
  }
}

TEST(TaskGraphTest, InvalidDependencyHandlesAreSkipped) {
  ne::TaskGraph graph;
  ne::TaskHandle previous;  // "previous iteration" sentinel, invalid
  int runs = 0;
  for (int i = 0; i < 3; ++i) {
    previous = graph.add([&](ne::RunStatus) { ++runs; }, {previous});
  }
  graph.wait_all();
  EXPECT_EQ(runs, 3);
}
