// End-to-end tests of the pipelined execution mode: the same planner
// submissions, run on a pool-backed TaskGraph, must produce bit-identical
// results to the deterministic inline mode.
//
// Capacity pinning: a pipelined planner halves the child budget (it keeps
// up to a window of staging in flight), which would normally shrink the
// chosen block size and change GEMM's accumulation grouping. The presets
// here pick a staging capacity whose full and halved budgets select the
// same block, so the decompositions — and hence the result hashes — are
// directly comparable.
#include <gtest/gtest.h>

#include "northup/algos/csr_adaptive.hpp"
#include "northup/algos/gemm.hpp"
#include "northup/algos/hotspot.hpp"
#include "northup/topo/presets.hpp"

namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;

namespace {

nt::PresetOptions pinned_options() {
  nt::PresetOptions opts;
  opts.root_capacity = 64ULL << 20;
  // 160 KiB: for n=128 / no reuse the block budget (x0.85) is ~136 KiB
  // and its pipelined half ~68 KiB — both in [48 KiB, 196 KiB), so both
  // modes pick block 64 and a 2x2 level-1 grid.
  opts.staging_capacity = 160ULL << 10;
  opts.device_capacity = 128ULL << 10;
  return opts;
}

nc::RuntimeOptions pipelined(std::size_t threads) {
  nc::RuntimeOptions opts;
  opts.pipeline_threads = threads;
  return opts;
}

na::GemmConfig gemm_config() {
  na::GemmConfig cfg;
  cfg.n = 128;
  cfg.verify_samples = 32;
  cfg.hash_result = true;
  return cfg;
}

}  // namespace

TEST(AsyncPipeline, GemmHashMatchesForkJoin) {
  auto cfg = gemm_config();
  cfg.shard_reuse = false;  // resident set 3b^2: block pinning is simplest

  nc::Runtime inline_rt(
      nt::apu_two_level(northup::mem::StorageKind::Ssd, pinned_options()));
  const auto fork_join = na::gemm_northup(inline_rt, cfg);
  ASSERT_TRUE(fork_join.verified);

  nc::Runtime async_rt(
      nt::apu_two_level(northup::mem::StorageKind::Ssd, pinned_options()),
      pipelined(3));
  const auto pipelined_stats = na::gemm_northup(async_rt, cfg);
  ASSERT_TRUE(pipelined_stats.verified);

  EXPECT_EQ(fork_join.result_hash, pipelined_stats.result_hash);
  EXPECT_NE(fork_join.result_hash, 0u);
}

TEST(AsyncPipeline, GemmShardReuseHashMatchesForkJoin) {
  auto cfg = gemm_config();
  cfg.shard_reuse = true;

  nc::Runtime inline_rt(
      nt::apu_two_level(northup::mem::StorageKind::Ssd, pinned_options()));
  const auto fork_join = na::gemm_northup(inline_rt, cfg);
  ASSERT_TRUE(fork_join.verified);

  nc::Runtime async_rt(
      nt::apu_two_level(northup::mem::StorageKind::Ssd, pinned_options()),
      pipelined(3));
  const auto pipelined_stats = na::gemm_northup(async_rt, cfg);
  ASSERT_TRUE(pipelined_stats.verified);

  EXPECT_EQ(fork_join.result_hash, pipelined_stats.result_hash);
}

TEST(AsyncPipeline, GemmSingleWorkerStillCorrect) {
  // One pipeline worker: everything serializes but through the pool, so
  // every cross-thread completion path still runs.
  auto cfg = gemm_config();
  cfg.shard_reuse = false;
  nc::Runtime rt(
      nt::apu_two_level(northup::mem::StorageKind::Ssd, pinned_options()),
      pipelined(1));
  const auto stats = na::gemm_northup(rt, cfg);
  EXPECT_TRUE(stats.verified) << "max rel err " << stats.max_rel_err;
}

TEST(AsyncPipeline, HotspotHashMatchesForkJoin) {
  na::HotspotConfig cfg;
  cfg.n = 128;
  cfg.iterations = 3;  // odd: exercises the post-run buffer-role swap
  cfg.hash_result = true;

  nc::Runtime inline_rt(
      nt::apu_two_level(northup::mem::StorageKind::Ssd, pinned_options()));
  const auto fork_join = na::hotspot_northup(inline_rt, cfg);
  ASSERT_TRUE(fork_join.verified);

  nc::Runtime async_rt(
      nt::apu_two_level(northup::mem::StorageKind::Ssd, pinned_options()),
      pipelined(3));
  const auto pipelined_stats = na::hotspot_northup(async_rt, cfg);
  ASSERT_TRUE(pipelined_stats.verified);

  // The stencil update of a cell is blocking-independent, so the hash
  // must match even if the two modes picked different block sizes.
  EXPECT_EQ(fork_join.result_hash, pipelined_stats.result_hash);
  EXPECT_NE(fork_join.result_hash, 0u);
}

TEST(AsyncPipeline, HotspotEvenIterationsMatch) {
  na::HotspotConfig cfg;
  cfg.n = 128;
  cfg.iterations = 4;
  cfg.hash_result = true;

  nc::Runtime inline_rt(
      nt::apu_two_level(northup::mem::StorageKind::Ssd, pinned_options()));
  const auto fork_join = na::hotspot_northup(inline_rt, cfg);

  nc::Runtime async_rt(
      nt::apu_two_level(northup::mem::StorageKind::Ssd, pinned_options()),
      pipelined(3));
  const auto pipelined_stats = na::hotspot_northup(async_rt, cfg);

  EXPECT_EQ(fork_join.result_hash, pipelined_stats.result_hash);
}

TEST(AsyncPipeline, SpmvHashMatchesForkJoin) {
  na::SpmvConfig cfg;
  cfg.rows = 2048;
  cfg.verify = true;
  cfg.hash_result = true;
  cfg.repeats = 2;  // exercises the cross-repeat upload serialization

  nc::Runtime inline_rt(
      nt::apu_two_level(northup::mem::StorageKind::Ssd, pinned_options()));
  const auto fork_join = na::spmv_northup(inline_rt, cfg);
  ASSERT_TRUE(fork_join.verified);

  nc::Runtime async_rt(
      nt::apu_two_level(northup::mem::StorageKind::Ssd, pinned_options()),
      pipelined(3));
  const auto pipelined_stats = na::spmv_northup(async_rt, cfg);
  ASSERT_TRUE(pipelined_stats.verified);

  // Each y row's reduction is shard-independent: the hash must match
  // regardless of how the two modes split rows.
  EXPECT_EQ(fork_join.result_hash, pipelined_stats.result_hash);
  EXPECT_NE(fork_join.result_hash, 0u);
}
