// BufferPool capacity accounting: eviction-backed allocation, pinned
// bytes blocking eviction, high-water tracking, and the rich
// over-capacity error from DataManager::alloc.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "northup/cache/cache_manager.hpp"
#include "northup/memsim/storage.hpp"
#include "northup/topo/tree.hpp"
#include "northup/util/assert.hpp"

namespace ncache = northup::cache;
namespace nd = northup::data;
namespace nm = northup::mem;
namespace ns = northup::sim;
namespace nt = northup::topo;

namespace {

constexpr std::uint64_t kRootCap = 1 << 20;
constexpr std::uint64_t kDramCap = 8192;
constexpr std::uint64_t kShard = 4096;

/// nvm root -> small dram child with a CacheManager attached; the dram
/// node holds exactly two kShard entries.
class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() {
    root_ = tree_.add_root(
        "nvm", {nm::StorageKind::Nvm, kRootCap, ns::ModelPresets::nvm(), 0});
    dram_ = tree_.add_child(
        root_, "dram",
        {nm::StorageKind::Dram, kDramCap, ns::ModelPresets::dram(), 1});
    tree_.validate();
    dm_ = std::make_unique<nd::DataManager>(tree_, &sim_);
    dm_->bind_storage(root_, std::make_unique<nm::HostStorage>(
                                 "nvm", nm::StorageKind::Nvm, kRootCap,
                                 ns::ModelPresets::nvm()));
    dm_->bind_storage(dram_, std::make_unique<nm::HostStorage>(
                                 "dram", nm::StorageKind::Dram, kDramCap,
                                 ns::ModelPresets::dram()));
    cm_ = std::make_unique<ncache::CacheManager>(*dm_);
    src_ = dm_->alloc(kRootCap / 2, root_);
  }

  ~BufferPoolTest() override { dm_->release(src_); }

  ncache::ShardCache& cache() { return *cm_->shard_cache(dram_); }
  ncache::BufferPool& pool() { return *cm_->pool(dram_); }

  nt::TopoTree tree_;
  ns::EventSim sim_;
  std::unique_ptr<nd::DataManager> dm_;
  std::unique_ptr<ncache::CacheManager> cm_;
  nt::NodeId root_ = 0, dram_ = 0;
  nd::Buffer src_;
};

}  // namespace

TEST_F(BufferPoolTest, AllocEvictsCachedShardsInsteadOfThrowing) {
  // Fill the node with two unpinned cached shards...
  for (std::uint64_t off : {std::uint64_t{0}, kShard}) {
    nd::Buffer* s = dm_->move_data_down_cached(src_, dram_, kShard, off);
    dm_->release_cached(s);
  }
  EXPECT_EQ(dm_->storage(dram_).available(), 0u);
  EXPECT_EQ(dm_->reclaimable_bytes(dram_), kDramCap);

  // ...then a plain allocation succeeds by shedding LRU entries.
  nd::Buffer plain = dm_->alloc(kShard, dram_);
  EXPECT_TRUE(plain.valid());
  EXPECT_EQ(cache().evictions(), 1u);
  dm_->release(plain);
}

TEST_F(BufferPoolTest, OverCapacityAllocNamesNodeSizeAndRemaining) {
  nd::Buffer held = dm_->alloc(kShard, dram_);
  try {
    dm_->alloc(kDramCap, dram_);  // kShard short of fitting
    FAIL() << "expected CapacityError";
  } catch (const northup::util::CapacityError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("dram"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(kDramCap)), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(kDramCap - kShard)), std::string::npos)
        << msg;
  }
  dm_->release(held);
}

TEST_F(BufferPoolTest, PinnedShardsRefuseEviction) {
  nd::Buffer* a = dm_->move_data_down_cached(src_, dram_, kShard, 0);
  nd::Buffer* b = dm_->move_data_down_cached(src_, dram_, kShard, kShard);
  EXPECT_EQ(pool().pinned_bytes(), 2 * kShard);

  // Everything resident is pinned: the evictor runs dry and the alloc
  // must fail instead of yanking a buffer a kernel may be reading.
  EXPECT_THROW(dm_->alloc(kShard, dram_), northup::util::CapacityError);
  EXPECT_EQ(cache().evictions(), 0u);

  dm_->release_cached(a);
  dm_->release_cached(b);
  EXPECT_EQ(pool().pinned_bytes(), 0u);
  nd::Buffer freed = dm_->alloc(kShard, dram_);
  EXPECT_TRUE(freed.valid());
  dm_->release(freed);
}

TEST_F(BufferPoolTest, HighWaterTracksPeakUsageWithinCapacity) {
  nd::Buffer* a = dm_->move_data_down_cached(src_, dram_, kShard, 0);
  EXPECT_EQ(pool().high_water(), kShard);
  nd::Buffer* b = dm_->move_data_down_cached(src_, dram_, kShard, kShard);
  EXPECT_EQ(pool().high_water(), kDramCap);
  dm_->release_cached(a);
  dm_->release_cached(b);

  // Churn past capacity: high water saturates at the node's capacity —
  // the pool never oversubscribes the storage.
  for (std::uint64_t i = 0; i < 8; ++i) {
    nd::Buffer* s =
        dm_->move_data_down_cached(src_, dram_, kShard, (i % 4) * kShard);
    dm_->release_cached(s);
  }
  EXPECT_GT(cache().evictions(), 0u);
  EXPECT_LE(pool().high_water(), kDramCap);
  EXPECT_LE(pool().bytes_in_use(), pool().capacity());
}

TEST_F(BufferPoolTest, UnboundNodeStillFailsCleanly) {
  nt::TopoTree other;
  other.add_root("lone",
                 {nm::StorageKind::Dram, 1024, ns::ModelPresets::dram(), 0});
  other.validate();
  nd::DataManager unbound(other, nullptr);
  EXPECT_THROW(unbound.alloc(64, 0), northup::util::Error);
}
