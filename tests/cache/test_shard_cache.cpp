// ShardCache semantics: hit/miss keying, LRU eviction order, dirty
// writeback, invalidation on source write/release (zombies included),
// the hits+misses == cached-calls invariant, zero-cost hits in virtual
// time, and the Runtime-level enable_shard_cache switch.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "northup/cache/cache_manager.hpp"
#include "northup/core/runtime.hpp"
#include "northup/memsim/storage.hpp"
#include "northup/topo/presets.hpp"
#include "northup/topo/tree.hpp"

namespace ncache = northup::cache;
namespace nc = northup::core;
namespace nd = northup::data;
namespace nm = northup::mem;
namespace ns = northup::sim;
namespace nt = northup::topo;

namespace {

constexpr std::uint64_t kRootCap = 1 << 20;
constexpr std::uint64_t kDramCap = 8192;
constexpr std::uint64_t kShard = 4096;

class ShardCacheTest : public ::testing::Test {
 protected:
  ShardCacheTest() {
    root_ = tree_.add_root(
        "nvm", {nm::StorageKind::Nvm, kRootCap, ns::ModelPresets::nvm(), 0});
    dram_ = tree_.add_child(
        root_, "dram",
        {nm::StorageKind::Dram, kDramCap, ns::ModelPresets::dram(), 1});
    tree_.validate();
    dm_ = std::make_unique<nd::DataManager>(tree_, &sim_);
    dm_->bind_storage(root_, std::make_unique<nm::HostStorage>(
                                 "nvm", nm::StorageKind::Nvm, kRootCap,
                                 ns::ModelPresets::nvm()));
    dm_->bind_storage(dram_, std::make_unique<nm::HostStorage>(
                                 "dram", nm::StorageKind::Dram, kDramCap,
                                 ns::ModelPresets::dram()));
    cm_ = std::make_unique<ncache::CacheManager>(*dm_);
    src_ = dm_->alloc(16 * kShard, root_);
    std::vector<std::uint8_t> init(16 * kShard);
    std::iota(init.begin(), init.end(), 0);
    dm_->write_from_host(src_, init.data(), init.size());
  }

  ~ShardCacheTest() override {
    if (src_.valid()) dm_->release(src_);
  }

  ncache::ShardCache& cache() { return *cm_->shard_cache(dram_); }

  nd::Buffer* get(std::uint64_t off) {
    return dm_->move_data_down_cached(src_, dram_, kShard, off);
  }

  nt::TopoTree tree_;
  ns::EventSim sim_;
  std::unique_ptr<nd::DataManager> dm_;
  std::unique_ptr<ncache::CacheManager> cm_;
  nt::NodeId root_ = 0, dram_ = 0;
  nd::Buffer src_;
};

}  // namespace

TEST_F(ShardCacheTest, RepeatDownloadHitsWithoutMovingBytes) {
  nd::Buffer* a = get(0);
  dm_->release_cached(a);
  EXPECT_EQ(cache().misses(), 1u);

  const auto moved = dm_->bytes_moved();
  const double makespan = sim_.makespan();
  nd::Buffer* again = get(0);
  EXPECT_EQ(again, a);  // same resident shard
  EXPECT_EQ(cache().hits(), 1u);
  EXPECT_EQ(dm_->bytes_moved(), moved);     // no functional transfer
  EXPECT_EQ(sim_.makespan(), makespan);     // no virtual-time transfer
  dm_->release_cached(again);

  // A different region is a different key.
  nd::Buffer* other = get(kShard);
  EXPECT_EQ(cache().misses(), 2u);
  dm_->release_cached(other);
}

TEST_F(ShardCacheTest, HitChargesZeroDurationCachePhaseTask) {
  dm_->release_cached(get(0));
  const auto before = sim_.task_count();
  dm_->release_cached(get(0));  // hit
  ASSERT_GT(sim_.task_count(), before);
  bool found = false;
  for (ns::TaskId id = before; id < sim_.task_count(); ++id) {
    if (sim_.task(id).phase == nd::phase::kCache) {
      const auto t = sim_.timing(id);
      EXPECT_DOUBLE_EQ(t.finish, t.start);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ShardCacheTest, DenseBlock2dSharesKeyWithContiguousDownload) {
  dm_->release_cached(get(0));
  // Same bytes requested as 4 touching rows: collapses to the same key.
  nd::Buffer* dense = dm_->move_block_2d_down_cached(src_, dram_, 4,
                                                     kShard / 4, 0, kShard / 4);
  EXPECT_EQ(cache().hits(), 1u);
  EXPECT_EQ(cache().misses(), 1u);
  dm_->release_cached(dense);
}

TEST_F(ShardCacheTest, EvictionIsLeastRecentlyUsed) {
  dm_->release_cached(get(0));       // A: miss
  dm_->release_cached(get(kShard));  // B: miss
  dm_->release_cached(get(0));       // A: hit, now newer than B
  EXPECT_EQ(cache().hits(), 1u);

  dm_->release_cached(get(2 * kShard));  // C: miss, evicts LRU (= B)
  EXPECT_EQ(cache().evictions(), 1u);

  dm_->release_cached(get(0));  // A survived the eviction
  EXPECT_EQ(cache().hits(), 2u);
  dm_->release_cached(get(kShard));  // B is gone: miss again
  EXPECT_EQ(cache().misses(), 4u);
}

TEST_F(ShardCacheTest, DirtyShardWritesBackToParentOnEviction) {
  nd::Buffer* s = get(0);
  auto* bytes = dm_->host_view(*s);
  std::memset(bytes, 0xEE, kShard);
  dm_->release_cached(s, /*dirty=*/true);

  // Still cached: the parent region is stale until eviction/flush.
  cache().flush();
  EXPECT_EQ(cache().entry_count(), 0u);

  std::vector<std::uint8_t> back(kShard);
  dm_->read_to_host(back.data(), src_, kShard);
  for (auto v : back) ASSERT_EQ(v, 0xEE);
}

TEST_F(ShardCacheTest, SourceWriteInvalidatesOverlappingEntries) {
  dm_->release_cached(get(0));
  dm_->release_cached(get(2 * kShard));
  EXPECT_EQ(cache().entry_count(), 2u);

  // Overwrite the first region through the DataManager: only the
  // overlapping entry drops.
  std::vector<std::uint8_t> fresh(kShard, 0x11);
  dm_->write_from_host(src_, fresh.data(), kShard);
  EXPECT_EQ(cache().entry_count(), 1u);

  nd::Buffer* reread = get(0);
  EXPECT_EQ(cache().hits(), 0u);  // stale entry was not served
  EXPECT_EQ(dm_->host_view(*reread)[0], std::byte{0x11});
  dm_->release_cached(reread);
  dm_->release_cached(get(2 * kShard));  // untouched entry still hits
  EXPECT_EQ(cache().hits(), 1u);
}

TEST_F(ShardCacheTest, MoveDataUpIntoSourceInvalidates) {
  dm_->release_cached(get(0));
  nd::Buffer scratch = dm_->alloc(kShard, dram_);
  dm_->fill(scratch, std::byte{0x22}, kShard);
  dm_->move_data_up(src_, scratch, {.size = kShard});
  EXPECT_EQ(cache().entry_count(), 0u);
  dm_->release(scratch);
}

TEST_F(ShardCacheTest, SourceReleaseDropsItsEntries) {
  nd::Buffer other = dm_->alloc(kShard, root_);
  nd::Buffer* s = dm_->move_data_down_cached(other, dram_, kShard, 0);
  dm_->release_cached(s);
  EXPECT_EQ(cache().entry_count(), 1u);
  dm_->release(other);
  EXPECT_EQ(cache().entry_count(), 0u);
}

TEST_F(ShardCacheTest, PinnedEntryInvalidatedBecomesZombie) {
  nd::Buffer* s = get(0);  // stays pinned
  std::vector<std::uint8_t> fresh(kShard, 0x33);
  dm_->write_from_host(src_, fresh.data(), kShard);

  // Unreachable for new lookups, but the handed-out buffer stays valid.
  EXPECT_EQ(cache().entry_count(), 0u);
  EXPECT_TRUE(cache().owns(s));
  EXPECT_TRUE(s->valid());

  const auto used_before = dm_->storage(dram_).used();
  dm_->release_cached(s);  // last release frees the zombie
  EXPECT_FALSE(cache().owns(s));
  EXPECT_LT(dm_->storage(dram_).used(), used_before);
}

TEST_F(ShardCacheTest, HitsPlusMissesEqualsCachedCalls) {
  std::uint64_t calls = 0;
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t off = 0; off < 6 * kShard; off += kShard) {
      dm_->release_cached(get(off));
      ++calls;
    }
  }
  EXPECT_EQ(cache().hits() + cache().misses(), calls);
  EXPECT_GT(cache().evictions(), 0u);  // 6 shards churn through 2 slots
}

TEST(ShardCacheRuntime, MetricsCountersMatchCacheStats) {
  nt::PresetOptions opts;
  opts.root_capacity = 1 << 20;
  opts.staging_capacity = 16 << 10;
  nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, opts));
  auto& dm = rt.dm();
  const auto root = rt.tree().root();
  const auto dram = rt.tree().find("dram");

  nd::Buffer src = dm.alloc(64 << 10, root);
  std::uint64_t calls = 0;
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t off = 0; off < 8; ++off) {
      nd::Buffer* s = dm.move_data_down_cached(src, dram, 4096, off * 4096);
      dm.release_cached(s);
      ++calls;
    }
  }
  auto* cache = rt.shard_cache_at(dram);
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->hits() + cache->misses(), calls);

  const auto counters = rt.metrics().counter_values();
  EXPECT_EQ(counters.at("cache.hits.dram"), cache->hits());
  EXPECT_EQ(counters.at("cache.misses.dram"), cache->misses());
  EXPECT_EQ(rt.metrics().counter_sum("cache.hits.") +
                rt.metrics().counter_sum("cache.misses."),
            calls);
  if (cache->evictions() > 0) {
    EXPECT_EQ(counters.at("cache.evictions.dram"), cache->evictions());
  }
  const auto gauges = rt.metrics().gauge_values();
  EXPECT_GT(gauges.at("pool.high_water.dram"), 0.0);
  EXPECT_LE(gauges.at("pool.high_water.dram"),
            static_cast<double>(rt.tree().memory(dram).capacity));
  dm.release(src);
}

TEST(ShardCacheRuntime, DisabledCacheLeavesPlainSemantics) {
  nc::RuntimeOptions ropts;
  ropts.enable_shard_cache = false;
  nc::Runtime rt(nt::apu_two_level(), ropts);
  const auto dram = rt.tree().find("dram");
  EXPECT_EQ(rt.cache_manager(), nullptr);
  EXPECT_EQ(rt.pool_at(dram), nullptr);
  EXPECT_FALSE(rt.dm().has_shard_cache(dram));
  EXPECT_EQ(rt.dm().reclaimable_bytes(dram), 0u);

  nd::Buffer src = rt.dm().alloc(4096, rt.tree().root());
  EXPECT_THROW(rt.dm().move_data_down_cached(src, dram, 4096),
               northup::util::Error);
  rt.dm().release(src);
}
